package cache

import "repro/internal/block"

// TagStore is the replacement-policy-agnostic cache interface the
// simulator drives. Cache (LRU), Sieve, S3FIFO, FIFO and Clock all
// satisfy it; the §3.1 replacement ablation swaps them under identical
// allocation policies to show that no replacement policy rescues unsieved
// ensemble caching — the allocation-write and pollution problems are the
// allocation policy's.
//
// Duplicate-insert contract: Insert on an already-resident key updates
// the policy's hit state exactly as Touch would (LRU promotes to MRU,
// SIEVE sets the visited bit, S3-FIFO bumps the frequency counter, CLOCK
// sets the reference bit, FIFO does nothing), allocates no frame, evicts
// nothing, and returns (0, false). Every implementation in this package
// follows it, so the ablation compares replacement policies rather than
// accidental duplicate-insert semantics; TestDuplicateInsertSemantics
// enforces it across all engines.
type TagStore interface {
	// Name identifies the replacement policy.
	Name() string
	// Touch looks up key and notes a hit; reports residency.
	Touch(key block.Key) bool
	// Contains reports residency without touching.
	Contains(key block.Key) bool
	// Insert allocates a frame, evicting a victim when full. Resident
	// keys follow the duplicate-insert contract above.
	Insert(key block.Key) (evicted block.Key, wasEvicted bool)
	// Len and Capacity report occupancy.
	Len() int
	Capacity() int
}

// Name implements TagStore for the LRU Cache.
func (c *Cache) Name() string { return "LRU" }

var _ TagStore = (*Cache)(nil)

// fifoEntry is a queue slot; it is live iff the table still maps its key
// to its sequence number (Remove leaves stale slots behind rather than
// splicing the queue).
type fifoEntry struct {
	key block.Key
	seq uint64
}

// FIFO is a first-in-first-out tag store: eviction order is insertion
// order; hits do not refresh a block's position. The queue is compacted
// whenever the drained prefix or stale slots dominate, keeping resident
// memory O(capacity) — two queue lengths at most — rather than growing
// with the eviction count.
type FIFO struct {
	capacity int
	table    map[block.Key]uint64
	queue    []fifoEntry
	head     int
	nextSeq  uint64
}

// NewFIFO returns a FIFO tag store with the given capacity in blocks.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("cache: FIFO capacity must be ≥1")
	}
	return &FIFO{capacity: capacity, table: make(map[block.Key]uint64)}
}

// Name implements TagStore.
func (f *FIFO) Name() string { return "FIFO" }

// Touch implements TagStore (hits do not affect FIFO order).
func (f *FIFO) Touch(key block.Key) bool {
	_, ok := f.table[key]
	return ok
}

// Contains implements TagStore.
func (f *FIFO) Contains(key block.Key) bool {
	_, ok := f.table[key]
	return ok
}

// Len implements TagStore.
func (f *FIFO) Len() int { return len(f.table) }

// Capacity implements TagStore.
func (f *FIFO) Capacity() int { return f.capacity }

// Insert implements TagStore. Inserting a resident key is a no-op — the
// Touch-equivalent under FIFO, where hits do not move blocks.
func (f *FIFO) Insert(key block.Key) (block.Key, bool) {
	if _, ok := f.table[key]; ok {
		return 0, false
	}
	var evicted block.Key
	var wasEvicted bool
	if len(f.table) >= f.capacity {
		// Pop the oldest live entry, skipping slots staled by Remove.
		for {
			e := f.queue[f.head]
			f.head++
			if f.table[e.key] == e.seq {
				delete(f.table, e.key)
				evicted, wasEvicted = e.key, true
				break
			}
		}
	}
	f.nextSeq++
	f.table[key] = f.nextSeq
	f.queue = append(f.queue, fifoEntry{key: key, seq: f.nextSeq})
	f.compact()
	return evicted, wasEvicted
}

// compact rewrites the queue without the drained prefix and stale slots
// once either could dominate, bounding the queue to < 2×capacity slots.
func (f *FIFO) compact() {
	if f.head == 0 && len(f.queue) < 2*f.capacity {
		return
	}
	if f.head*2 < len(f.queue) && len(f.queue) < 2*f.capacity {
		return
	}
	live := f.queue[:0]
	for _, e := range f.queue[f.head:] {
		if f.table[e.key] == e.seq {
			live = append(live, e)
		}
	}
	f.queue = live
	f.head = 0
}

// Victim implements Policy: the oldest live entry.
func (f *FIFO) Victim() (block.Key, bool) {
	for f.head < len(f.queue) {
		e := f.queue[f.head]
		if f.table[e.key] == e.seq {
			return e.key, true
		}
		f.head++
	}
	return 0, false
}

// Remove implements Policy. The queue slot goes stale and is reclaimed by
// the next compaction.
func (f *FIFO) Remove(key block.Key) bool {
	if _, ok := f.table[key]; !ok {
		return false
	}
	delete(f.table, key)
	return true
}

// Keys implements Policy: live entries newest-first.
func (f *FIFO) Keys() []block.Key {
	out := make([]block.Key, 0, len(f.table))
	for i := len(f.queue) - 1; i >= f.head; i-- {
		e := f.queue[i]
		if f.table[e.key] == e.seq {
			out = append(out, e.key)
		}
	}
	return out
}

// Swap implements Policy via the generic path.
func (f *FIFO) Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	return swapTags(f, keys)
}

var _ TagStore = (*FIFO)(nil)

// Clock is the classic second-chance approximation of LRU: a circular
// buffer of frames with reference bits; the hand sweeps past referenced
// frames (clearing their bit) and evicts the first unreferenced one.
type Clock struct {
	capacity int
	frames   []clockFrame
	index    map[block.Key]int
	hand     int
}

type clockFrame struct {
	key        block.Key
	referenced bool
	used       bool
}

// NewClock returns a Clock tag store with the given capacity in blocks.
func NewClock(capacity int) *Clock {
	if capacity < 1 {
		panic("cache: Clock capacity must be ≥1")
	}
	return &Clock{
		capacity: capacity,
		frames:   make([]clockFrame, capacity),
		index:    make(map[block.Key]int),
	}
}

// Name implements TagStore.
func (c *Clock) Name() string { return "CLOCK" }

// Touch implements TagStore.
func (c *Clock) Touch(key block.Key) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	c.frames[i].referenced = true
	return true
}

// Contains implements TagStore.
func (c *Clock) Contains(key block.Key) bool {
	_, ok := c.index[key]
	return ok
}

// Len implements TagStore.
func (c *Clock) Len() int { return len(c.index) }

// Capacity implements TagStore.
func (c *Clock) Capacity() int { return c.capacity }

// Insert implements TagStore. New frames are installed with the reference
// bit clear: a block earns its second chance by being touched after
// insertion. (Installing referenced frames would make every insertion
// sweep clear the whole ring and degrade CLOCK to FIFO under allocation
// storms — exactly the regime unsieved policies create.)
func (c *Clock) Insert(key block.Key) (block.Key, bool) {
	if i, ok := c.index[key]; ok {
		c.frames[i].referenced = true
		return 0, false
	}
	// Free frame available?
	if len(c.index) < c.capacity {
		for i := range c.frames {
			slot := (c.hand + i) % c.capacity
			if !c.frames[slot].used {
				c.frames[slot] = clockFrame{key: key, used: true}
				c.index[key] = slot
				return 0, false
			}
		}
	}
	// Sweep for a victim.
	for {
		f := &c.frames[c.hand]
		if f.referenced {
			f.referenced = false
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		evicted := f.key
		delete(c.index, evicted)
		*f = clockFrame{key: key, used: true}
		c.index[key] = c.hand
		c.hand = (c.hand + 1) % c.capacity
		return evicted, true
	}
}

// Victim implements Policy: it sweeps exactly as an eviction would —
// clearing reference bits and advancing the hand past empty or referenced
// frames — and stops with the hand ON the victim, so Victim followed by
// Insert (when full) evicts the reported key.
func (c *Clock) Victim() (block.Key, bool) {
	if len(c.index) == 0 {
		return 0, false
	}
	for {
		f := &c.frames[c.hand]
		if !f.used {
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		if f.referenced {
			f.referenced = false
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		return f.key, true
	}
}

// Remove implements Policy. The freed frame is found again by Insert's
// free-frame scan; the hand needs no repair because it addresses ring
// positions, not blocks.
func (c *Clock) Remove(key block.Key) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	delete(c.index, key)
	c.frames[i] = clockFrame{}
	return true
}

// Keys implements Policy: referenced frames first, each group ordered by
// distance ahead of the hand (the frames the sweep reaches last — the
// likeliest survivors — lead), so the prefix of Keys is the safest set to
// preserve.
func (c *Clock) Keys() []block.Key {
	out := make([]block.Key, 0, len(c.index))
	for _, wantRef := range [2]bool{true, false} {
		for i := 0; i < c.capacity; i++ {
			slot := (c.hand + c.capacity - 1 - i) % c.capacity
			f := &c.frames[slot]
			if f.used && f.referenced == wantRef {
				out = append(out, f.key)
			}
		}
	}
	return out
}

// Swap implements Policy via the generic path.
func (c *Clock) Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	return swapTags(c, keys)
}

var _ TagStore = (*Clock)(nil)
