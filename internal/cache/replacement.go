package cache

import "repro/internal/block"

// TagStore is the replacement-policy-agnostic cache interface the
// simulator drives. Cache (LRU), FIFO and Clock all satisfy it; the §3.1
// replacement ablation swaps them under identical allocation policies to
// show that no replacement policy rescues unsieved ensemble caching — the
// allocation-write and pollution problems are the allocation policy's.
type TagStore interface {
	// Name identifies the replacement policy.
	Name() string
	// Touch looks up key and notes a hit; reports residency.
	Touch(key block.Key) bool
	// Contains reports residency without touching.
	Contains(key block.Key) bool
	// Insert allocates a frame, evicting a victim when full.
	Insert(key block.Key) (evicted block.Key, wasEvicted bool)
	// Len and Capacity report occupancy.
	Len() int
	Capacity() int
}

// Name implements TagStore for the LRU Cache.
func (c *Cache) Name() string { return "LRU" }

var _ TagStore = (*Cache)(nil)

// FIFO is a first-in-first-out tag store: eviction order is insertion
// order; hits do not refresh a block's position.
type FIFO struct {
	capacity int
	table    map[block.Key]bool
	queue    []block.Key
	head     int
}

// NewFIFO returns a FIFO tag store with the given capacity in blocks.
func NewFIFO(capacity int) *FIFO {
	if capacity < 1 {
		panic("cache: FIFO capacity must be ≥1")
	}
	return &FIFO{capacity: capacity, table: make(map[block.Key]bool)}
}

// Name implements TagStore.
func (f *FIFO) Name() string { return "FIFO" }

// Touch implements TagStore (hits do not affect FIFO order).
func (f *FIFO) Touch(key block.Key) bool { return f.table[key] }

// Contains implements TagStore.
func (f *FIFO) Contains(key block.Key) bool { return f.table[key] }

// Len implements TagStore.
func (f *FIFO) Len() int { return len(f.table) }

// Capacity implements TagStore.
func (f *FIFO) Capacity() int { return f.capacity }

// Insert implements TagStore.
func (f *FIFO) Insert(key block.Key) (block.Key, bool) {
	if f.table[key] {
		return 0, false
	}
	var evicted block.Key
	var wasEvicted bool
	if len(f.table) >= f.capacity {
		evicted = f.queue[f.head]
		f.head++
		delete(f.table, evicted)
		wasEvicted = true
	}
	f.table[key] = true
	f.queue = append(f.queue, key)
	// Compact the drained prefix occasionally.
	if f.head > f.capacity && f.head*2 > len(f.queue) {
		f.queue = append(f.queue[:0], f.queue[f.head:]...)
		f.head = 0
	}
	return evicted, wasEvicted
}

var _ TagStore = (*FIFO)(nil)

// Clock is the classic second-chance approximation of LRU: a circular
// buffer of frames with reference bits; the hand sweeps past referenced
// frames (clearing their bit) and evicts the first unreferenced one.
type Clock struct {
	capacity int
	frames   []clockFrame
	index    map[block.Key]int
	hand     int
}

type clockFrame struct {
	key        block.Key
	referenced bool
	used       bool
}

// NewClock returns a Clock tag store with the given capacity in blocks.
func NewClock(capacity int) *Clock {
	if capacity < 1 {
		panic("cache: Clock capacity must be ≥1")
	}
	return &Clock{
		capacity: capacity,
		frames:   make([]clockFrame, capacity),
		index:    make(map[block.Key]int),
	}
}

// Name implements TagStore.
func (c *Clock) Name() string { return "CLOCK" }

// Touch implements TagStore.
func (c *Clock) Touch(key block.Key) bool {
	i, ok := c.index[key]
	if !ok {
		return false
	}
	c.frames[i].referenced = true
	return true
}

// Contains implements TagStore.
func (c *Clock) Contains(key block.Key) bool {
	_, ok := c.index[key]
	return ok
}

// Len implements TagStore.
func (c *Clock) Len() int { return len(c.index) }

// Capacity implements TagStore.
func (c *Clock) Capacity() int { return c.capacity }

// Insert implements TagStore. New frames are installed with the reference
// bit clear: a block earns its second chance by being touched after
// insertion. (Installing referenced frames would make every insertion
// sweep clear the whole ring and degrade CLOCK to FIFO under allocation
// storms — exactly the regime unsieved policies create.)
func (c *Clock) Insert(key block.Key) (block.Key, bool) {
	if i, ok := c.index[key]; ok {
		c.frames[i].referenced = true
		return 0, false
	}
	// Free frame available?
	if len(c.index) < c.capacity {
		for i := range c.frames {
			slot := (c.hand + i) % c.capacity
			if !c.frames[slot].used {
				c.frames[slot] = clockFrame{key: key, used: true}
				c.index[key] = slot
				return 0, false
			}
		}
	}
	// Sweep for a victim.
	for {
		f := &c.frames[c.hand]
		if f.referenced {
			f.referenced = false
			c.hand = (c.hand + 1) % c.capacity
			continue
		}
		evicted := f.key
		delete(c.index, evicted)
		*f = clockFrame{key: key, used: true}
		c.index[key] = c.hand
		c.hand = (c.hand + 1) % c.capacity
		return evicted, true
	}
}

var _ TagStore = (*Clock)(nil)
