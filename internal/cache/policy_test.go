package cache

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

// newPolicies builds one instance of every engine at the given capacity.
func newPolicies(capacity int) []Policy {
	return []Policy{
		New(capacity), NewSieve(capacity), NewS3FIFO(capacity),
		NewFIFO(capacity), NewClock(capacity),
	}
}

func TestNewPolicyRegistry(t *testing.T) {
	want := map[string]string{
		"":        "LRU",
		"lru":     "LRU",
		"LRU":     "LRU",
		"sieve":   "SIEVE",
		"SIEVE":   "SIEVE",
		"s3fifo":  "S3-FIFO",
		"s3-fifo": "S3-FIFO",
		"fifo":    "FIFO",
		"clock":   "CLOCK",
	}
	for arg, name := range want {
		p, err := NewPolicy(arg, 8)
		if err != nil {
			t.Fatalf("NewPolicy(%q): %v", arg, err)
		}
		if p.Name() != name || p.Capacity() != 8 {
			t.Errorf("NewPolicy(%q) = %s/%d, want %s/8", arg, p.Name(), p.Capacity(), name)
		}
	}
	if _, err := NewPolicy("arc", 8); err == nil {
		t.Error("unknown policy accepted")
	}
	for _, name := range PolicyNames() {
		if _, err := NewPolicy(name, 4); err != nil {
			t.Errorf("PolicyNames entry %q not constructible: %v", name, err)
		}
	}
}

// TestDuplicateInsertSemantics pins the duplicate-insert contract across
// every engine: Insert on a resident key must behave exactly as Touch —
// same return, no allocation, no eviction, and (run against a twin
// instance that used Touch instead) an identical eviction future.
func TestDuplicateInsertSemantics(t *testing.T) {
	const capacity = 8
	for pi, name := range []string{"lru", "sieve", "s3fifo", "fifo", "clock"} {
		t.Run(name, func(t *testing.T) {
			touched, _ := NewPolicy(name, capacity)
			inserted, _ := NewPolicy(name, capacity)
			rng := rand.New(rand.NewSource(int64(100 + pi)))
			next := uint64(0)
			fill := func(p Policy) {
				for i := uint64(0); i < capacity; i++ {
					p.Insert(key(i))
				}
			}
			fill(touched)
			fill(inserted)
			next = capacity
			for round := 0; round < 2000; round++ {
				// Hit a random resident key: one twin via Touch, the other
				// via duplicate Insert.
				keys := touched.Keys()
				r := keys[rng.Intn(len(keys))]
				if !inserted.Contains(r) {
					t.Fatalf("round %d: twins diverged on residency of %v", round, r)
				}
				if !touched.Touch(r) {
					t.Fatalf("round %d: Touch(%v) missed", round, r)
				}
				ev, wasEv := inserted.Insert(r)
				if wasEv || ev != 0 {
					t.Fatalf("round %d: duplicate Insert(%v) evicted %v", round, r, ev)
				}
				if inserted.Len() != touched.Len() {
					t.Fatalf("round %d: duplicate Insert changed Len to %d", round, inserted.Len())
				}
				// Now force an eviction in both: the twins must evict the
				// same victim, proving the duplicate Insert carried exactly
				// Touch's state change.
				next++
				evT, okT := touched.Insert(key(next))
				evI, okI := inserted.Insert(key(next))
				if okT != okI || evT != evI {
					t.Fatalf("round %d: eviction diverged: Touch-twin (%v,%v) vs Insert-twin (%v,%v)",
						round, evT, okT, evI, okI)
				}
			}
		})
	}
}

// TestVictimMatchesInsert pins the Victim contract: at capacity, the key
// Victim reports is exactly what the next Insert evicts — including for
// the sweeping policies (SIEVE, CLOCK, S3-FIFO) whose Victim advances
// hands and clears bits the way the eviction itself would.
func TestVictimMatchesInsert(t *testing.T) {
	const capacity = 16
	for _, p := range newPolicies(capacity) {
		t.Run(p.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			for i := uint64(0); i < capacity; i++ {
				p.Insert(key(i))
			}
			next := uint64(capacity)
			for round := 0; round < 1000; round++ {
				// Random touches to move the recency/visited state around.
				for j := 0; j < rng.Intn(4); j++ {
					keys := p.Keys()
					p.Touch(keys[rng.Intn(len(keys))])
				}
				v, ok := p.Victim()
				if !ok {
					t.Fatalf("round %d: no victim at capacity", round)
				}
				next++
				evicted, wasEvicted := p.Insert(key(next))
				if !wasEvicted || evicted != v {
					t.Fatalf("round %d: Victim said %v, Insert evicted %v (ok=%v)",
						round, v, evicted, wasEvicted)
				}
			}
		})
	}
}

// TestSwapContract exercises Policy.Swap on every engine: exact final
// set, hottest prefix kept, overflow counted (never silently dropped),
// moved counting only true move-ins, and evicted covering everything
// that left.
func TestSwapContract(t *testing.T) {
	const capacity = 8
	for _, p := range newPolicies(capacity) {
		t.Run(p.Name(), func(t *testing.T) {
			for i := uint64(0); i < capacity; i++ {
				p.Insert(key(i))
			}
			// Keep 4 residents (0..3), add 6 fresh (100..105): 10 keys into
			// 8 slots → overflow 2, and the dropped tail must be the cold
			// end of the slice, not the hot prefix.
			sel := []block.Key{
				key(100), key(0), key(101), key(1), key(102), key(2),
				key(103), key(3), key(104), key(105),
			}
			moved, evicted, overflow := p.Swap(sel)
			if overflow != 2 {
				t.Fatalf("overflow = %d, want 2", overflow)
			}
			if moved != 4 {
				t.Errorf("moved = %d, want 4 (100..103 move in; 0..3 are retained)", moved)
			}
			if p.Len() != capacity {
				t.Fatalf("Len = %d, want %d", p.Len(), capacity)
			}
			for _, k := range sel[:capacity] {
				if !p.Contains(k) {
					t.Errorf("installed prefix key %v missing", k)
				}
			}
			for _, k := range sel[capacity:] {
				if p.Contains(k) {
					t.Errorf("overflow key %v resident", k)
				}
			}
			// 4..7 left; their frames' owners must learn it.
			got := make(map[block.Key]bool)
			for _, k := range evicted {
				got[k] = true
			}
			for i := uint64(4); i < capacity; i++ {
				if !got[key(i)] {
					t.Errorf("evicted list missing %v: %v", key(i), evicted)
				}
			}
			// A second identical swap moves nothing and overflows the same.
			moved, evicted, overflow = p.Swap(sel)
			if moved != 0 || len(evicted) != 0 || overflow != 2 {
				t.Errorf("idempotent swap: moved=%d evicted=%v overflow=%d", moved, evicted, overflow)
			}
		})
	}
}

func TestSieveEvictionOrder(t *testing.T) {
	s := NewSieve(3)
	s.Insert(key(1))
	s.Insert(key(2))
	s.Insert(key(3))
	// Only key 1 (the oldest) is visited: the hand clears its bit and
	// evicts the next unvisited block toward the head, key 2.
	if !s.Touch(key(1)) {
		t.Fatal("key 1 lost")
	}
	if ev, ok := s.Insert(key(4)); !ok || ev != key(2) {
		t.Fatalf("evicted %v, want key 2 (key 1 spent its visited bit)", ev)
	}
	// The hand now rests past key 2's slot at key 3; key 1's bit is spent,
	// so the next eviction takes key 3.
	if ev, ok := s.Insert(key(5)); !ok || ev != key(3) {
		t.Fatalf("evicted %v, want key 3", ev)
	}
	for _, k := range []uint64{1, 4, 5} {
		if !s.Contains(key(k)) {
			t.Errorf("key %d missing", k)
		}
	}
}

func TestSieveHandRepairOnRemove(t *testing.T) {
	s := NewSieve(4)
	for i := uint64(1); i <= 4; i++ {
		s.Insert(key(i))
	}
	// Park the hand on the victim, then Remove that exact key: the hand
	// must advance (toward newer) rather than dangle.
	v, _ := s.Victim()
	if !s.Remove(v) {
		t.Fatal("victim not resident")
	}
	// Insert + evict repeatedly; no crash and no over-capacity.
	for i := uint64(10); i < 30; i++ {
		s.Insert(key(i))
		if s.Len() > s.Capacity() {
			t.Fatalf("over capacity after removing the hand's block")
		}
	}
	// Remove the newest block while the hand sits on it (hand wraps).
	s2 := NewSieve(2)
	s2.Insert(key(1))
	s2.Insert(key(2))
	s2.Touch(key(1))
	if v, _ := s2.Victim(); v != key(2) {
		t.Fatalf("victim = %v, want key 2", v)
	}
	// Hand is on key 2; removing it forces the wrap-to-nil repair path.
	s2.Remove(key(2))
	if ev, ok := s2.Insert(key(3)); ok {
		t.Fatalf("eviction %v from non-full sieve", ev)
	}
	if ev, ok := s2.Insert(key(4)); !ok || ev != key(1) {
		t.Fatalf("evicted %v, want key 1 (visited bit spent at Victim)", ev)
	}
}

func TestSieveKeepsHotBlockUnderStorm(t *testing.T) {
	// A block touched between insertions survives an insertion storm under
	// SIEVE (its visited bit is refreshed every lap) — the property that
	// lets SIEVE match LRU on the skewed workloads the sieve admits.
	hot := key(999)
	s := NewSieve(8)
	s.Insert(hot)
	for i := uint64(0); i < 100; i++ {
		s.Touch(hot)
		s.Insert(key(i))
	}
	if !s.Contains(hot) {
		t.Error("SIEVE evicted the constantly-touched block")
	}
}

func TestS3FIFOGhostPromotesToMain(t *testing.T) {
	s := NewS3FIFO(10) // small target 1, main 9, ghost 9
	for i := uint64(0); i < 10; i++ {
		s.Insert(key(i))
	}
	// Key 0 is the small queue's oldest and unaccessed: one more insert
	// demotes it quickly — but the ghost remembers it.
	if ev, ok := s.Insert(key(100)); !ok || ev != key(0) {
		t.Fatalf("evicted %v, want key 0", ev)
	}
	// Its return is a ghost hit: key 0 re-enters straight into main and
	// now survives a storm of one-hit wonders churning the small queue.
	s.Insert(key(0))
	for i := uint64(200); i < 208; i++ {
		s.Insert(key(i))
	}
	if !s.Contains(key(0)) {
		t.Error("ghost-readmitted block did not survive in main")
	}
}

func TestS3FIFOGhostStaysBounded(t *testing.T) {
	s := NewS3FIFO(20)
	for i := uint64(0); i < 100000; i++ {
		s.Insert(key(i))
	}
	gcap := s.ghostCap()
	if len(s.ghost) > gcap {
		t.Errorf("ghost map has %d entries, cap %d", len(s.ghost), gcap)
	}
	if len(s.ghostQ) > 2*gcap {
		t.Errorf("ghost queue has %d slots, want ≤ %d", len(s.ghostQ), 2*gcap)
	}
}

func TestS3FIFOPromotionOnAccess(t *testing.T) {
	// A probationary block that IS accessed gets promoted to main at
	// small-queue eviction time instead of being demoted.
	s := NewS3FIFO(10)
	for i := uint64(0); i < 10; i++ {
		s.Insert(key(i))
	}
	s.Touch(key(0)) // oldest small entry, now freq>0
	ev, ok := s.Insert(key(100))
	if !ok {
		t.Fatal("no eviction at capacity")
	}
	if ev == key(0) {
		t.Error("accessed probationary block was evicted, not promoted")
	}
	if !s.Contains(key(0)) {
		t.Error("promoted block missing")
	}
}
