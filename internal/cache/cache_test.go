package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
)

func key(n uint64) block.Key { return block.MakeKey(0, 0, n) }

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestInsertTouchContains(t *testing.T) {
	c := New(2)
	if c.Touch(key(1)) {
		t.Error("hit in empty cache")
	}
	if _, ev := c.Insert(key(1)); ev {
		t.Error("eviction from non-full cache")
	}
	if !c.Contains(key(1)) || !c.Touch(key(1)) {
		t.Error("block 1 should be resident")
	}
	c.Insert(key(2))
	if c.Len() != 2 || c.Capacity() != 2 {
		t.Errorf("len=%d cap=%d", c.Len(), c.Capacity())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Insert(key(1))
	c.Insert(key(2))
	// Touch 1 so 2 becomes the victim.
	c.Touch(key(1))
	evicted, ok := c.Insert(key(3))
	if !ok || evicted != key(2) {
		t.Errorf("evicted %v,%v; want key 2", evicted, ok)
	}
	if c.Contains(key(2)) || !c.Contains(key(1)) || !c.Contains(key(3)) {
		t.Error("wrong residency after eviction")
	}
}

func TestInsertResidentPromotes(t *testing.T) {
	c := New(2)
	c.Insert(key(1))
	c.Insert(key(2))
	// Re-inserting 1 must promote it, not evict.
	if _, ev := c.Insert(key(1)); ev {
		t.Error("re-insert evicted")
	}
	if v, _ := c.LRU(); v != key(2) {
		t.Errorf("LRU = %v, want key 2", v)
	}
}

func TestRemove(t *testing.T) {
	c := New(2)
	c.Insert(key(1))
	if !c.Remove(key(1)) || c.Remove(key(1)) {
		t.Error("Remove semantics wrong")
	}
	if c.Len() != 0 || c.Contains(key(1)) {
		t.Error("block still resident after Remove")
	}
	if _, ok := c.LRU(); ok {
		t.Error("LRU of empty cache")
	}
}

func TestKeysMRUOrder(t *testing.T) {
	c := New(3)
	c.Insert(key(1))
	c.Insert(key(2))
	c.Insert(key(3))
	c.Touch(key(1))
	got := c.Keys()
	want := []block.Key{key(1), key(3), key(2)}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys() = %v, want %v", got, want)
		}
	}
}

func TestReplaceAll(t *testing.T) {
	c := New(4)
	c.Insert(key(1))
	c.Insert(key(2))
	c.Insert(key(3))
	// New epoch keeps 2 and 3, adds 5 and 6: two moves.
	moved := c.ReplaceAll([]block.Key{key(5), key(2), key(6), key(3)})
	if moved != 2 {
		t.Errorf("moved = %d, want 2", moved)
	}
	if c.Len() != 4 || c.Contains(key(1)) {
		t.Error("epoch set wrong")
	}
	for _, k := range []uint64{2, 3, 5, 6} {
		if !c.Contains(key(k)) {
			t.Errorf("key %d missing", k)
		}
	}
	// MRU order follows slice order.
	if got := c.Keys(); got[0] != key(5) || got[3] != key(3) {
		t.Errorf("Keys() = %v", got)
	}
}

func TestReplaceAllTruncatesToCapacity(t *testing.T) {
	c := New(2)
	moved := c.ReplaceAll([]block.Key{key(1), key(2), key(3), key(4)})
	if moved != 2 || c.Len() != 2 {
		t.Errorf("moved=%d len=%d", moved, c.Len())
	}
	if !c.Contains(key(1)) || !c.Contains(key(2)) {
		t.Error("should keep the highest-priority prefix")
	}
}

func TestReplaceAllEmpty(t *testing.T) {
	c := New(2)
	c.Insert(key(1))
	if moved := c.ReplaceAll(nil); moved != 0 {
		t.Errorf("moved = %d", moved)
	}
	if c.Len() != 0 {
		t.Error("cache should be empty")
	}
}

// TestInvariants drives random operations and checks structural invariants
// after each: size ≤ capacity, Keys() consistent with table, list links
// intact.
func TestInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := New(16)
	resident := make(map[block.Key]bool)
	for i := 0; i < 20000; i++ {
		k := key(uint64(rng.Intn(64)))
		switch rng.Intn(4) {
		case 0:
			if got := c.Touch(k); got != resident[k] {
				t.Fatalf("op %d: Touch(%v) = %v, shadow says %v", i, k, got, resident[k])
			}
		case 1:
			evicted, ok := c.Insert(k)
			resident[k] = true
			if ok {
				if !resident[evicted] {
					t.Fatalf("op %d: evicted non-resident %v", i, evicted)
				}
				delete(resident, evicted)
			}
		case 2:
			got := c.Remove(k)
			if got != resident[k] {
				t.Fatalf("op %d: Remove(%v) = %v", i, k, got)
			}
			delete(resident, k)
		case 3:
			if c.Len() != len(resident) {
				t.Fatalf("op %d: Len %d vs shadow %d", i, c.Len(), len(resident))
			}
		}
		if c.Len() > c.Capacity() {
			t.Fatalf("op %d: over capacity", i)
		}
	}
	keys := c.Keys()
	if len(keys) != c.Len() {
		t.Fatalf("Keys len %d vs Len %d", len(keys), c.Len())
	}
	for _, k := range keys {
		if !resident[k] {
			t.Fatalf("stale key %v", k)
		}
	}
}

// Property: after any insert sequence, the cache holds the most recently
// used distinct keys.
func TestLRUPolicyProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		const capacity = 8
		c := New(capacity)
		var recency []block.Key // most recent last, unique
		for _, op := range ops {
			k := key(uint64(op % 32))
			c.Insert(k)
			for i, r := range recency {
				if r == k {
					recency = append(recency[:i], recency[i+1:]...)
					break
				}
			}
			recency = append(recency, k)
		}
		want := recency
		if len(want) > capacity {
			want = want[len(want)-capacity:]
		}
		if c.Len() != len(want) {
			return false
		}
		for _, k := range want {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertTouch(b *testing.B) {
	c := New(1 << 16)
	rng := rand.New(rand.NewSource(1))
	keys := make([]block.Key, 1<<18)
	for i := range keys {
		keys[i] = key(uint64(rng.Intn(1 << 20)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&(1<<18-1)]
		if !c.Touch(k) {
			c.Insert(k)
		}
	}
}

func TestPartitionCapacity(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{total: 10, n: 1, want: []int{10}},
		{total: 10, n: 2, want: []int{5, 5}},
		{total: 10, n: 4, want: []int{3, 3, 2, 2}},
		{total: 7, n: 4, want: []int{2, 2, 2, 1}},
		{total: 4, n: 4, want: []int{1, 1, 1, 1}},
	}
	for _, c := range cases {
		got := PartitionCapacity(c.total, c.n)
		sum := 0
		for i, v := range got {
			sum += v
			if v != c.want[i] {
				t.Errorf("PartitionCapacity(%d,%d) = %v, want %v", c.total, c.n, got, c.want)
				break
			}
		}
		if sum != c.total {
			t.Errorf("PartitionCapacity(%d,%d) sums to %d", c.total, c.n, sum)
		}
	}
	for _, bad := range []struct{ total, n int }{{0, 1}, {3, 4}, {5, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PartitionCapacity(%d,%d): want panic", bad.total, bad.n)
				}
			}()
			PartitionCapacity(bad.total, bad.n)
		}()
	}
}
