// Package cache implements the disk-cache tag store used by every
// SieveStore configuration: a fully-associative cache of 512-byte block
// frames with LRU replacement (the paper's continuous configurations —
// SieveStore-C, AOD, WMNA — all share this replacement policy, §4), plus
// the batch-replacement operation SieveStore-D's discrete epochs use.
//
// The package tracks only metadata (tags and recency); data movement is the
// concern of internal/store and internal/core.
package cache

import (
	"fmt"

	"repro/internal/block"
)

// node is an intrusive doubly-linked LRU list element.
type node struct {
	key        block.Key
	prev, next *node
}

// Cache is a fully-associative, LRU-replacement tag store. It is not
// goroutine-safe; concurrent users (internal/core) serialize access.
type Cache struct {
	capacity int
	table    map[block.Key]*node
	// head.next is the MRU element, tail.prev the LRU victim.
	head, tail node
	// free keeps evicted nodes for reuse to avoid steady-state allocation.
	free *node
}

// New returns a cache with the given capacity in blocks.
func New(capacity int) *Cache {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: capacity must be ≥1, got %d", capacity))
	}
	hint := capacity
	if hint > 1<<20 {
		// Don't pre-size gigantic tables; they grow on demand.
		hint = 1 << 20
	}
	c := &Cache{
		capacity: capacity,
		table:    make(map[block.Key]*node, hint),
	}
	c.head.next = &c.tail
	c.tail.prev = &c.head
	return c
}

// Capacity returns the cache capacity in blocks.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return len(c.table) }

// Contains reports residency without updating recency.
func (c *Cache) Contains(key block.Key) bool {
	_, ok := c.table[key]
	return ok
}

// Touch looks up key and, on a hit, promotes it to most-recently-used.
// It returns whether the block was resident.
func (c *Cache) Touch(key block.Key) bool {
	n, ok := c.table[key]
	if !ok {
		return false
	}
	c.unlink(n)
	c.pushFront(n)
	return true
}

// Insert allocates a frame for key (as MRU). If the cache is full the LRU
// block is evicted and returned. Inserting a resident key just promotes it.
func (c *Cache) Insert(key block.Key) (evicted block.Key, wasEvicted bool) {
	if n, ok := c.table[key]; ok {
		c.unlink(n)
		c.pushFront(n)
		return 0, false
	}
	if len(c.table) >= c.capacity {
		victim := c.tail.prev
		c.unlink(victim)
		delete(c.table, victim.key)
		evicted, wasEvicted = victim.key, true
		victim.next = c.free
		c.free = victim
	}
	n := c.alloc(key)
	c.table[key] = n
	c.pushFront(n)
	return evicted, wasEvicted
}

// Remove evicts key if resident, reporting whether it was.
func (c *Cache) Remove(key block.Key) bool {
	n, ok := c.table[key]
	if !ok {
		return false
	}
	c.unlink(n)
	delete(c.table, key)
	n.next = c.free
	c.free = n
	return true
}

// LRU returns the current replacement victim without evicting it.
func (c *Cache) LRU() (block.Key, bool) {
	if len(c.table) == 0 {
		return 0, false
	}
	return c.tail.prev.key, true
}

// Victim implements Policy; for LRU it is the tail of the recency list.
func (c *Cache) Victim() (block.Key, bool) { return c.LRU() }

// Keys returns the resident blocks from MRU to LRU.
func (c *Cache) Keys() []block.Key {
	out := make([]block.Key, 0, len(c.table))
	for n := c.head.next; n != &c.tail; n = n.next {
		out = append(out, n.key)
	}
	return out
}

// Swap installs exactly the given block set, in MRU order of the slice,
// evicting everything else — SieveStore-D's end-of-epoch batch allocation.
// It returns the number of blocks that actually had to move in (were not
// already resident) — the paper's observation that replacement and
// allocation "cancel" for blocks retained across epochs (§3.2) — plus the
// keys that were evicted, so callers tracking per-block state (frames,
// dirty bits) can reclaim theirs in the same pass. Keys beyond capacity
// cannot be installed; they are dropped from the cold tail and counted in
// overflow so callers can surface the loss (core tracks it in
// Stats.SelectOverflow).
func (c *Cache) Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	if over := len(keys) - c.capacity; over > 0 {
		overflow = over
		keys = keys[:c.capacity]
	}
	incoming := make(map[block.Key]bool, len(keys))
	for _, k := range keys {
		incoming[k] = true
	}
	// Evict residents not in the new set.
	for n := c.head.next; n != &c.tail; {
		next := n.next
		if !incoming[n.key] {
			evicted = append(evicted, n.key)
			c.unlink(n)
			delete(c.table, n.key)
			n.next = c.free
			c.free = n
		}
		n = next
	}
	// Insert the new set back-to-front so keys[0] ends most-recently-used.
	for i := len(keys) - 1; i >= 0; i-- {
		if !c.Contains(keys[i]) {
			moved++
		}
		c.Insert(keys[i])
	}
	return moved, evicted, overflow
}

// ReplaceAll is Swap for callers that do not need the evicted keys or the
// overflow count (the sim's discrete epochs, whose selections are sized
// to capacity).
func (c *Cache) ReplaceAll(keys []block.Key) (moved int) {
	moved, _, _ = c.Swap(keys)
	return moved
}

func (c *Cache) alloc(key block.Key) *node {
	if c.free != nil {
		n := c.free
		c.free = n.next
		n.key, n.prev, n.next = key, nil, nil
		return n
	}
	return &node{key: key}
}

func (c *Cache) unlink(n *node) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (c *Cache) pushFront(n *node) {
	n.prev = &c.head
	n.next = c.head.next
	c.head.next.prev = n
	c.head.next = n
}

// PartitionCapacity splits a total block capacity as evenly as possible
// across n partitions: every partition gets total/n blocks and the first
// total%n partitions get one extra, so the sum is exactly total and no
// two partitions differ by more than one block. It panics when n < 1 or
// total < n (a partition of capacity zero cannot hold a cache).
func PartitionCapacity(total, n int) []int {
	if n < 1 {
		panic("cache: PartitionCapacity with n < 1")
	}
	if total < n {
		panic("cache: PartitionCapacity with total < n")
	}
	caps := make([]int, n)
	base, extra := total/n, total%n
	for i := range caps {
		caps[i] = base
		if i < extra {
			caps[i]++
		}
	}
	return caps
}
