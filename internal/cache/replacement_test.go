package cache

import (
	"math/rand"
	"testing"

	"repro/internal/block"
)

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO(2)
	if f.Name() != "FIFO" || f.Capacity() != 2 {
		t.Error("identity wrong")
	}
	f.Insert(key(1))
	f.Insert(key(2))
	// Touching 1 must NOT protect it: FIFO evicts insertion order.
	if !f.Touch(key(1)) {
		t.Fatal("hit lost")
	}
	evicted, ok := f.Insert(key(3))
	if !ok || evicted != key(1) {
		t.Errorf("evicted %v, want key 1", evicted)
	}
	if f.Len() != 2 || f.Contains(key(1)) || !f.Contains(key(3)) {
		t.Error("state wrong after eviction")
	}
	// Inserting a resident key is a no-op.
	if _, ok := f.Insert(key(2)); ok {
		t.Error("resident insert evicted")
	}
}

func TestFIFOQueueCompaction(t *testing.T) {
	// The queue must stay O(capacity) at every point of a long insert
	// storm — not just after a final compaction — including with Removes
	// staling slots in the middle of the queue.
	f := NewFIFO(4)
	for i := uint64(0); i < 10000; i++ {
		f.Insert(key(i))
		if i%3 == 0 {
			f.Remove(key(i))
		}
		if len(f.queue) > 2*f.capacity {
			t.Fatalf("insert %d: queue grew to %d slots (head=%d), want ≤ %d",
				i, len(f.queue), f.head, 2*f.capacity)
		}
	}
	// 9999 was removed (9999%3==0); the two newest survivors remain.
	for _, i := range []uint64{9997, 9998} {
		if !f.Contains(key(i)) {
			t.Fatalf("key %d missing", i)
		}
	}
}

func TestClockSecondChance(t *testing.T) {
	c := NewClock(3)
	if c.Name() != "CLOCK" || c.Capacity() != 3 {
		t.Error("identity wrong")
	}
	c.Insert(key(1))
	c.Insert(key(2))
	c.Insert(key(3))
	// Only key 2 has been touched since insertion.
	if !c.Touch(key(2)) {
		t.Fatal("key 2 lost")
	}
	// The hand sits at slot 0 (key 1, unreferenced): evicted first.
	evicted, ok := c.Insert(key(4))
	if !ok || evicted != key(1) {
		t.Errorf("evicted %v, want key 1", evicted)
	}
	// Next insertion: the sweep reaches key 2 (referenced → second
	// chance, bit cleared) and evicts key 3 (unreferenced).
	evicted, ok = c.Insert(key(5))
	if !ok || evicted != key(3) {
		t.Errorf("evicted %v, want key 3 (second chance for key 2)", evicted)
	}
	if !c.Contains(key(2)) {
		t.Error("referenced block lost its second chance")
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestClockApproximatesLRUUnderReuse(t *testing.T) {
	// A hot block touched between every insertion must survive a long
	// insertion storm under CLOCK (second chance) but not under FIFO.
	hot := key(999)
	clock := NewClock(8)
	fifo := NewFIFO(8)
	clock.Insert(hot)
	fifo.Insert(hot)
	for i := uint64(0); i < 100; i++ {
		clock.Touch(hot)
		fifo.Touch(hot)
		clock.Insert(key(i))
		fifo.Insert(key(i))
	}
	if !clock.Contains(hot) {
		t.Error("CLOCK evicted the constantly-referenced block")
	}
	if fifo.Contains(hot) {
		t.Error("FIFO kept a block through 100 insertions at capacity 8")
	}
}

// TestTagStoreInvariants drives every replacement engine with the same
// random operation stream — now including the Policy surface (Remove,
// Victim, Keys) — and checks the shared invariants against a shadow map.
func TestTagStoreInvariants(t *testing.T) {
	stores := []Policy{New(16), NewFIFO(16), NewClock(16), NewSieve(16), NewS3FIFO(16)}
	for _, s := range stores {
		t.Run(s.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			resident := make(map[block.Key]bool)
			for i := 0; i < 20000; i++ {
				k := key(uint64(rng.Intn(48)))
				switch rng.Intn(5) {
				case 0:
					if got := s.Touch(k); got != resident[k] {
						t.Fatalf("op %d: Touch(%v) = %v, shadow %v", i, k, got, resident[k])
					}
				case 1:
					evicted, ok := s.Insert(k)
					if ok {
						if !resident[evicted] {
							t.Fatalf("op %d: evicted non-resident %v", i, evicted)
						}
						delete(resident, evicted)
					}
					resident[k] = true
				case 2:
					if got := s.Contains(k); got != resident[k] {
						t.Fatalf("op %d: Contains(%v) = %v", i, k, got)
					}
				case 3:
					if got := s.Remove(k); got != resident[k] {
						t.Fatalf("op %d: Remove(%v) = %v, shadow %v", i, k, got, resident[k])
					}
					delete(resident, k)
				case 4:
					v, ok := s.Victim()
					if ok != (len(resident) > 0) {
						t.Fatalf("op %d: Victim ok=%v with %d resident", i, ok, len(resident))
					}
					if ok && !resident[v] {
						t.Fatalf("op %d: Victim %v not resident", i, v)
					}
				}
				if s.Len() > s.Capacity() {
					t.Fatalf("op %d: over capacity", i)
				}
				if s.Len() != len(resident) {
					t.Fatalf("op %d: Len %d vs shadow %d", i, s.Len(), len(resident))
				}
			}
			keys := s.Keys()
			if len(keys) != s.Len() {
				t.Fatalf("Keys() has %d entries, Len %d", len(keys), s.Len())
			}
			seen := make(map[block.Key]bool, len(keys))
			for _, k := range keys {
				if !resident[k] {
					t.Fatalf("Keys() lists non-resident %v", k)
				}
				if seen[k] {
					t.Fatalf("Keys() lists %v twice", k)
				}
				seen[k] = true
			}
		})
	}
}

func TestReplacementConstructorsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewFIFO(0) },
		func() { NewClock(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("zero capacity accepted")
				}
			}()
			f()
		}()
	}
}
