package cache

import (
	"fmt"
	"strings"

	"repro/internal/block"
)

// Policy is the full replacement-engine interface internal/core drives: a
// TagStore plus the victim peeking, point removal, enumeration, and batch
// replacement that the store's write-back flushing, invalidation,
// snapshotting, and SieveStore-D epoch swaps need. Every implementation in
// this package (LRU Cache, SIEVE, S3-FIFO, FIFO, CLOCK) satisfies it, so
// the cache proper and the §3.1 replacement ablation draw from one set of
// engines.
//
// Contract (beyond TagStore's):
//
//   - Victim reports the key the next Insert of a non-resident key would
//     evict, without evicting it. Policies that approximate recency with a
//     sweeping cursor (SIEVE, CLOCK) may advance the cursor and clear
//     visited/reference bits while locating the victim — exactly the state
//     changes the eviction itself would have made — so Victim followed by
//     Insert behaves as one eviction. The result is only meaningful when
//     the policy is full (Len() == Capacity()); ok is false when empty.
//   - Remove evicts key if resident, repairing any internal cursor that
//     pointed at it (the SIEVE/CLOCK hand), and reports whether it was.
//   - Keys returns the resident keys ordered hottest-first where the
//     policy defines an order (LRU: MRU→LRU; queue policies: newest
//     first), so saving the prefix of Keys preserves the most valuable
//     blocks.
//   - Swap installs exactly the given block set, hottest-first, evicting
//     everything else. It returns how many keys actually moved in (were
//     not already resident), the evicted keys, and overflow: how many of
//     the given keys could NOT be installed because they exceed capacity.
//     Overflow keys are dropped from the cold tail, never silently —
//     callers surface the count (core tracks it in Stats.SelectOverflow).
type Policy interface {
	TagStore
	Victim() (block.Key, bool)
	Remove(key block.Key) bool
	Keys() []block.Key
	Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int)
}

var (
	_ Policy = (*Cache)(nil)
	_ Policy = (*Sieve)(nil)
	_ Policy = (*S3FIFO)(nil)
	_ Policy = (*FIFO)(nil)
	_ Policy = (*Clock)(nil)
)

// PolicyNames lists the registered replacement engines, default first.
func PolicyNames() []string { return []string{"lru", "sieve", "s3fifo", "fifo", "clock"} }

// NewPolicy builds the named replacement engine with the given capacity in
// blocks. Names are case-insensitive; "" means the default ("lru", the
// paper's policy).
func NewPolicy(name string, capacity int) (Policy, error) {
	switch strings.ToLower(name) {
	case "", "lru":
		return New(capacity), nil
	case "sieve":
		return NewSieve(capacity), nil
	case "s3fifo", "s3-fifo":
		return NewS3FIFO(capacity), nil
	case "fifo":
		return NewFIFO(capacity), nil
	case "clock":
		return NewClock(capacity), nil
	}
	return nil, fmt.Errorf("cache: unknown policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
}

// swapTags implements the Swap contract generically on top of Remove and
// Insert for policies without a batch-optimized path. Evictions of keys
// outside the new set happen first, so the inserts that follow never
// trigger the policy's own eviction; already-resident keys are refreshed
// via Insert's Touch-equivalent duplicate handling. Inserting coldest
// first leaves keys[0] hottest.
func swapTags(p Policy, keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	if over := len(keys) - p.Capacity(); over > 0 {
		overflow = over
		keys = keys[:p.Capacity()]
	}
	incoming := make(map[block.Key]bool, len(keys))
	for _, k := range keys {
		incoming[k] = true
	}
	for _, k := range p.Keys() {
		if !incoming[k] {
			p.Remove(k)
			evicted = append(evicted, k)
		}
	}
	for i := len(keys) - 1; i >= 0; i-- {
		if !p.Contains(keys[i]) {
			moved++
		}
		p.Insert(keys[i])
	}
	return moved, evicted, overflow
}
