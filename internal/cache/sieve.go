package cache

import (
	"fmt"

	"repro/internal/block"
)

// sieveNode is an intrusive doubly-linked list element with the SIEVE
// visited bit.
type sieveNode struct {
	key        block.Key
	prev, next *sieveNode
	visited    bool
}

// Sieve implements the SIEVE replacement policy (Zhang et al., NSDI'24):
// a FIFO-ordered list with one visited bit per block and a lazy eviction
// hand. Hits set the visited bit and nothing else — no list surgery, no
// promotion — which is what makes SIEVE's hit path cheaper than LRU's
// under a lock. The hand sweeps from the oldest block toward the newest,
// clearing visited bits, and evicts the first unvisited block it meets;
// new blocks enter at the head (newest). Retained blocks therefore need a
// touch per hand lap to survive, a "quick demotion" that composes well
// with SieveStore's selective allocation: the sieve admits only hot
// blocks, so cheap, promotion-free replacement gives up almost nothing
// (the golden-trace suite pins the hit-ratio gap to LRU at under 1%).
//
// Not goroutine-safe; concurrent users (internal/core) serialize access.
type Sieve struct {
	capacity int
	table    map[block.Key]*sieveNode
	// head.next is the newest block, tail.prev the oldest.
	head, tail sieveNode
	// hand is the eviction scan position; nil means start at the oldest.
	// It always points at a live node (Remove repairs it).
	hand *sieveNode
	// free keeps evicted nodes for reuse to avoid steady-state allocation.
	free *sieveNode
}

// NewSieve returns a SIEVE tag store with the given capacity in blocks.
func NewSieve(capacity int) *Sieve {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: SIEVE capacity must be ≥1, got %d", capacity))
	}
	hint := capacity
	if hint > 1<<20 {
		hint = 1 << 20
	}
	s := &Sieve{
		capacity: capacity,
		table:    make(map[block.Key]*sieveNode, hint),
	}
	s.head.next = &s.tail
	s.tail.prev = &s.head
	return s
}

// Name implements TagStore.
func (s *Sieve) Name() string { return "SIEVE" }

// Capacity implements TagStore.
func (s *Sieve) Capacity() int { return s.capacity }

// Len implements TagStore.
func (s *Sieve) Len() int { return len(s.table) }

// Contains implements TagStore.
func (s *Sieve) Contains(key block.Key) bool {
	_, ok := s.table[key]
	return ok
}

// Touch implements TagStore: a hit sets the visited bit, nothing more.
func (s *Sieve) Touch(key block.Key) bool {
	n, ok := s.table[key]
	if !ok {
		return false
	}
	n.visited = true
	return true
}

// Insert implements TagStore. Inserting a resident key marks it visited
// (the Touch-equivalent duplicate-insert contract); a new key enters at
// the head, evicting the hand's victim when full.
func (s *Sieve) Insert(key block.Key) (evicted block.Key, wasEvicted bool) {
	if n, ok := s.table[key]; ok {
		n.visited = true
		return 0, false
	}
	if len(s.table) >= s.capacity {
		victim := s.sweep()
		s.retire(victim)
		evicted, wasEvicted = victim.key, true
	}
	n := s.alloc(key)
	s.table[key] = n
	s.pushFront(n)
	return evicted, wasEvicted
}

// sweep locates the current eviction victim: starting at the hand (or the
// oldest block), it clears visited bits while moving toward newer blocks,
// wrapping to the oldest when it passes the newest, and stops at the
// first unvisited block. The hand is left ON the victim, so Victim
// followed by Insert evicts exactly the reported key. Terminates because
// every step either clears a bit or lands on an already-clear block.
func (s *Sieve) sweep() *sieveNode {
	n := s.hand
	if n == nil {
		n = s.tail.prev
	}
	for n.visited {
		n.visited = false
		n = n.prev
		if n == &s.head {
			n = s.tail.prev
		}
	}
	s.hand = n
	return n
}

// Victim implements Policy: the key the next eviction would remove. The
// sweep's bit-clearing is the same state change eviction itself performs.
func (s *Sieve) Victim() (block.Key, bool) {
	if len(s.table) == 0 {
		return 0, false
	}
	return s.sweep().key, true
}

// Remove implements Policy, repairing the hand when it points at the
// removed block (it advances toward newer blocks, as a sweep would).
func (s *Sieve) Remove(key block.Key) bool {
	n, ok := s.table[key]
	if !ok {
		return false
	}
	if s.hand == n {
		s.hand = n.prev
		if s.hand == &s.head {
			s.hand = nil
		}
	}
	s.unlink(n)
	delete(s.table, key)
	n.next = s.free
	s.free = n
	return true
}

// retire evicts a live node, repairing the hand exactly like Remove.
func (s *Sieve) retire(n *sieveNode) {
	if s.hand == n {
		s.hand = n.prev
		if s.hand == &s.head {
			s.hand = nil
		}
	}
	s.unlink(n)
	delete(s.table, n.key)
	n.next = s.free
	s.free = n
}

// Keys implements Policy: resident blocks newest-first (insertion order;
// the hand's sweep region sits at the tail end).
func (s *Sieve) Keys() []block.Key {
	out := make([]block.Key, 0, len(s.table))
	for n := s.head.next; n != &s.tail; n = n.next {
		out = append(out, n.key)
	}
	return out
}

// Swap implements Policy via the generic path; retained blocks come out
// visited (they were selected as hot), new blocks unvisited.
func (s *Sieve) Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	return swapTags(s, keys)
}

func (s *Sieve) alloc(key block.Key) *sieveNode {
	if s.free != nil {
		n := s.free
		s.free = n.next
		n.key, n.prev, n.next, n.visited = key, nil, nil, false
		return n
	}
	return &sieveNode{key: key}
}

func (s *Sieve) unlink(n *sieveNode) {
	n.prev.next = n.next
	n.next.prev = n.prev
}

func (s *Sieve) pushFront(n *sieveNode) {
	n.prev = &s.head
	n.next = s.head.next
	s.head.next.prev = n
	s.head.next = n
}
