package cache

import (
	"fmt"

	"repro/internal/block"
)

// s3Node is an intrusive doubly-linked queue element with the S3-FIFO
// access-frequency counter (saturating at 3, as in the paper).
type s3Node struct {
	key        block.Key
	prev, next *s3Node
	freq       uint8
	main       bool
}

// s3Queue is a FIFO of s3Nodes: head.next is the newest entry, tail.prev
// the oldest.
type s3Queue struct {
	head, tail s3Node
	n          int
}

func (q *s3Queue) init() {
	q.head.next = &q.tail
	q.tail.prev = &q.head
}

func (q *s3Queue) pushFront(n *s3Node) {
	n.prev = &q.head
	n.next = q.head.next
	q.head.next.prev = n
	q.head.next = n
	q.n++
}

func (q *s3Queue) unlink(n *s3Node) {
	n.prev.next = n.next
	n.next.prev = n.prev
	q.n--
}

// oldest returns the eviction-side entry; only valid when q.n > 0.
func (q *s3Queue) oldest() *s3Node { return q.tail.prev }

// ghostEntry records an evicted-from-small key in the ghost FIFO; the
// entry is live iff the ghost map still holds its sequence number (the
// same stale-entry trick FIFO's queue uses).
type ghostEntry struct {
	key block.Key
	seq uint64
}

// S3FIFO implements the S3-FIFO replacement policy (Yang et al.,
// SOSP'23): a small probationary FIFO (~10% of capacity) absorbing new
// blocks, a main FIFO holding proven ones, and a ghost queue remembering
// keys recently evicted from small. A block evicted from small while
// unaccessed is gone after one pass ("quick demotion"); one that was
// accessed is promoted to main, and one that misses but is remembered by
// the ghost re-enters directly into main. Hits only bump a 2-bit
// frequency counter — like SIEVE, no list surgery on the hit path.
//
// Not goroutine-safe; concurrent users (internal/core) serialize access.
type S3FIFO struct {
	capacity int
	smallCap int
	table    map[block.Key]*s3Node
	small    s3Queue
	main     s3Queue
	// ghost maps a remembered key to the seq of its live queue entry.
	ghost     map[block.Key]uint64
	ghostQ    []ghostEntry
	ghostHead int
	ghostSeq  uint64
	free      *s3Node
}

// NewS3FIFO returns an S3-FIFO tag store with the given total capacity in
// blocks (small + main). The ghost queue remembers up to main-capacity
// keys and costs O(capacity) memory.
func NewS3FIFO(capacity int) *S3FIFO {
	if capacity < 1 {
		panic(fmt.Sprintf("cache: S3-FIFO capacity must be ≥1, got %d", capacity))
	}
	smallCap := capacity / 10
	if smallCap < 1 {
		smallCap = 1
	}
	s := &S3FIFO{
		capacity: capacity,
		smallCap: smallCap,
		table:    make(map[block.Key]*s3Node),
		ghost:    make(map[block.Key]uint64),
	}
	s.small.init()
	s.main.init()
	return s
}

// Name implements TagStore.
func (s *S3FIFO) Name() string { return "S3-FIFO" }

// Capacity implements TagStore.
func (s *S3FIFO) Capacity() int { return s.capacity }

// Len implements TagStore.
func (s *S3FIFO) Len() int { return len(s.table) }

// Contains implements TagStore.
func (s *S3FIFO) Contains(key block.Key) bool {
	_, ok := s.table[key]
	return ok
}

// Touch implements TagStore: a hit saturates the frequency counter.
func (s *S3FIFO) Touch(key block.Key) bool {
	n, ok := s.table[key]
	if !ok {
		return false
	}
	if n.freq < 3 {
		n.freq++
	}
	return true
}

// Insert implements TagStore. Inserting a resident key bumps its
// frequency exactly as Touch would (the duplicate-insert contract). A new
// key enters the main queue when the ghost remembers it, the small queue
// otherwise, evicting first when full.
func (s *S3FIFO) Insert(key block.Key) (evicted block.Key, wasEvicted bool) {
	if n, ok := s.table[key]; ok {
		if n.freq < 3 {
			n.freq++
		}
		return 0, false
	}
	if len(s.table) >= s.capacity {
		v := s.victim()
		s.evictNode(v)
		evicted, wasEvicted = v.key, true
	}
	n := s.alloc(key)
	if _, ghosted := s.ghost[key]; ghosted {
		delete(s.ghost, key)
		n.main = true
		s.main.pushFront(n)
	} else {
		s.small.pushFront(n)
	}
	s.table[key] = n
	return evicted, wasEvicted
}

// victim advances queue state (promotions from small, second chances in
// main) until the next eviction victim sits unprotected at its queue's
// tail, and returns it. The state changes are exactly those eviction
// performs, so a subsequent Insert evicts the reported key. Terminates:
// each pass either moves a small entry to main (bounded by small's
// length) or decrements a frequency counter (bounded total). Only valid
// when Len() > 0.
func (s *S3FIFO) victim() *s3Node {
	for {
		if s.small.n >= s.smallCap || s.main.n == 0 {
			t := s.small.oldest()
			if t.freq > 0 {
				// Accessed while probationary: promote to main.
				s.small.unlink(t)
				t.freq = 0
				t.main = true
				s.main.pushFront(t)
				continue
			}
			return t
		}
		t := s.main.oldest()
		if t.freq > 0 {
			// Second chance: decay and reinsert at the head.
			t.freq--
			s.main.unlink(t)
			s.main.pushFront(t)
			continue
		}
		return t
	}
}

// evictNode removes a victim returned by victim(), remembering
// small-queue evictions in the ghost.
func (s *S3FIFO) evictNode(n *s3Node) {
	if n.main {
		s.main.unlink(n)
	} else {
		s.small.unlink(n)
		s.ghostAdd(n.key)
	}
	delete(s.table, n.key)
	n.next = s.free
	s.free = n
}

// Victim implements Policy.
func (s *S3FIFO) Victim() (block.Key, bool) {
	if len(s.table) == 0 {
		return 0, false
	}
	return s.victim().key, true
}

// Remove implements Policy. The removed key is not ghosted: removal is
// the caller invalidating the block, not the policy demoting it.
func (s *S3FIFO) Remove(key block.Key) bool {
	n, ok := s.table[key]
	if !ok {
		return false
	}
	if n.main {
		s.main.unlink(n)
	} else {
		s.small.unlink(n)
	}
	delete(s.table, key)
	n.next = s.free
	s.free = n
	return true
}

// Keys implements Policy: main (proven-hot) blocks newest-first, then
// small (probationary) blocks newest-first.
func (s *S3FIFO) Keys() []block.Key {
	out := make([]block.Key, 0, len(s.table))
	for n := s.main.head.next; n != &s.main.tail; n = n.next {
		out = append(out, n.key)
	}
	for n := s.small.head.next; n != &s.small.tail; n = n.next {
		out = append(out, n.key)
	}
	return out
}

// Swap implements Policy via the generic path.
func (s *S3FIFO) Swap(keys []block.Key) (moved int, evicted []block.Key, overflow int) {
	return swapTags(s, keys)
}

// ghostCap bounds the ghost queue to the main queue's capacity (the
// paper's sizing), at least one entry.
func (s *S3FIFO) ghostCap() int {
	c := s.capacity - s.smallCap
	if c < 1 {
		c = 1
	}
	return c
}

func (s *S3FIFO) ghostAdd(key block.Key) {
	if _, ok := s.ghost[key]; ok {
		return
	}
	s.ghostSeq++
	s.ghost[key] = s.ghostSeq
	s.ghostQ = append(s.ghostQ, ghostEntry{key: key, seq: s.ghostSeq})
	gcap := s.ghostCap()
	for len(s.ghost) > gcap {
		e := s.ghostQ[s.ghostHead]
		s.ghostHead++
		if s.ghost[e.key] == e.seq {
			delete(s.ghost, e.key)
		}
	}
	// Keep the queue O(capacity): rewrite it without the drained prefix
	// and stale entries once either dominates.
	if s.ghostHead*2 >= len(s.ghostQ) && s.ghostHead > 0 || len(s.ghostQ) >= 2*gcap {
		live := s.ghostQ[:0]
		for _, e := range s.ghostQ[s.ghostHead:] {
			if s.ghost[e.key] == e.seq {
				live = append(live, e)
			}
		}
		s.ghostQ = live
		s.ghostHead = 0
	}
}

func (s *S3FIFO) alloc(key block.Key) *s3Node {
	if s.free != nil {
		n := s.free
		s.free = n.next
		n.key, n.prev, n.next, n.freq, n.main = key, nil, nil, 0, false
		return n
	}
	return &s3Node{key: key}
}
