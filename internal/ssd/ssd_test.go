package ssd

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIntelX25ESpec(t *testing.T) {
	d := IntelX25E()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The paper derives 140 MB/s random read and 13.2 MB/s random write
	// from the IOPS ratings.
	if got := d.RandomReadMBps(); math.Abs(got-143.4) > 1 {
		t.Errorf("RandomReadMBps = %.1f, want ≈143 (paper rounds to 140)", got)
	}
	if got := d.RandomWriteMBps(); math.Abs(got-13.5) > 0.5 {
		t.Errorf("RandomWriteMBps = %.1f, want ≈13.2", got)
	}
}

func TestValidate(t *testing.T) {
	d := DeviceSpec{Name: "bad"}
	if err := d.Validate(); err == nil {
		t.Error("want error for zero IOPS")
	}
}

func TestOccupancy(t *testing.T) {
	d := IntelX25E()
	// A full minute of reads at rated IOPS exactly saturates one drive.
	if got := d.Occupancy(35000*60, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("read-saturated occupancy = %v", got)
	}
	if got := d.Occupancy(0, 3300*60); math.Abs(got-1) > 1e-9 {
		t.Errorf("write-saturated occupancy = %v", got)
	}
	// Mixed load adds linearly.
	if got := d.Occupancy(35000*30, 3300*30); math.Abs(got-1) > 1e-9 {
		t.Errorf("mixed occupancy = %v", got)
	}
	if got := d.Occupancy(0, 0); got != 0 {
		t.Errorf("idle occupancy = %v", got)
	}
}

func TestDrivesFor(t *testing.T) {
	d := IntelX25E()
	cases := []struct {
		r, w   float64
		drives int
	}{
		{0, 0, 0},
		{1, 0, 1},
		{35000 * 60, 0, 1},
		{35000 * 60, 1000, 2},
		{35000 * 60 * 6.5, 0, 7},
	}
	for _, c := range cases {
		if got := d.DrivesFor(c.r, c.w); got != c.drives {
			t.Errorf("DrivesFor(%v,%v) = %d, want %d", c.r, c.w, got, c.drives)
		}
	}
}

func TestDrivesForIsCeilingOfOccupancy(t *testing.T) {
	d := IntelX25E()
	f := func(r, w uint32) bool {
		rp, wp := float64(r%100_000_000), float64(w%10_000_000)
		occ := d.Occupancy(rp, wp)
		drives := d.DrivesFor(rp, wp)
		if occ == 0 {
			return drives == 0
		}
		return float64(drives) >= occ-1e-9 && float64(drives-1) < occ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeYears(t *testing.T) {
	d := IntelX25E()
	// Paper §5.1: ≤500 M 512 B writes/day → ≥10 years on a 1 PB-endurance
	// drive. 1e15 / (5e8·512) / 365 = 10.7 years.
	daily := 5e8 * 512.0
	if got := d.LifetimeYears(daily); got < 10 || got > 11 {
		t.Errorf("LifetimeYears = %.2f, want ≈10.7", got)
	}
	if !math.IsInf(d.LifetimeYears(0), 1) {
		t.Error("zero writes should give infinite lifetime")
	}
}

func TestOccupancySeriesAndCoverage(t *testing.T) {
	d := IntelX25E()
	loads := []MinuteLoad{
		{Minute: 0, ReadPages: 1000},                        // tiny
		{Minute: 1, ReadPages: 35000 * 60},                  // exactly 1 drive
		{Minute: 2, ReadPages: 35000 * 90},                  // 1.5 drives
		{Minute: 3, WritePages: 3300 * 60 * 3.2},            // 4 drives
		{Minute: 4, ReadPages: 35000 * 30, WritePages: 100}, // <1
		{Minute: 5},                                           // idle
		{Minute: 6, ReadPages: 35000 * 15},                    // <1
		{Minute: 7, ReadPages: 100, WritePages: 50},           // <1
		{Minute: 8, ReadPages: 35000 * 59, WritePages: 0},     // <1
		{Minute: 9, ReadPages: 35000 * 60, WritePages: 3 * 9}, // barely 2
	}
	occ := OccupancySeries(&d, loads)
	if len(occ) != len(loads) {
		t.Fatal("series length")
	}
	sorted := DrivesNeeded(&d, loads)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("DrivesNeeded not sorted")
		}
	}
	if got := DrivesAtCoverage(sorted, 1.0); got != 4 {
		t.Errorf("100%% coverage = %d drives, want 4", got)
	}
	// 90% coverage tolerates the worst minute (the 4-drive one).
	if got := DrivesAtCoverage(sorted, 0.9); got != 2 {
		t.Errorf("90%% coverage = %d drives, want 2", got)
	}
	if got := DrivesAtCoverage(sorted, 0.5); got != 1 {
		t.Errorf("50%% coverage = %d drives, want 1", got)
	}
	if got := FractionUnderOccupancy(occ, 1.0); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("FractionUnderOccupancy(1.0) = %v, want 0.7", got)
	}
	table := CoverageTable(&d, loads)
	if len(table) != 4 || table[3].Coverage != 1.0 || table[3].Drives != 4 {
		t.Errorf("CoverageTable = %+v", table)
	}
}

func TestDrivesAtCoverageEdges(t *testing.T) {
	if DrivesAtCoverage(nil, 0.999) != 0 {
		t.Error("empty series should need 0 drives")
	}
	sorted := []int{1, 1, 1, 2}
	if got := DrivesAtCoverage(sorted, -1); got != 1 {
		t.Errorf("negative coverage = %d", got)
	}
	if got := DrivesAtCoverage(sorted, 2); got != 2 {
		t.Errorf("over-unity coverage = %d", got)
	}
	if FractionUnderOccupancy(nil, 1) != 1 {
		t.Error("empty occupancy should be fully under limit")
	}
}
