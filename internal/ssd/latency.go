package ssd

import "time"

// LatencyModel turns hit/miss counts into user-visible mean access latency
// — the storage-performance motivation of the paper's introduction, made
// explicit. Hits are served at SSD latency, misses at HDD latency;
// allocation-writes happen after the miss completes and are off the
// user-visible critical path (they cost occupancy, not latency).
type LatencyModel struct {
	HDDRead, HDDWrite time.Duration
	SSDRead, SSDWrite time.Duration
}

// X25ELatency returns per-operation latencies derived from the X25-E's
// random 4 KiB IOPS ratings (1/35000 s reads, 1/3300 s writes) and typical
// enterprise-HDD figures.
func X25ELatency() LatencyModel {
	return LatencyModel{
		HDDRead:  8 * time.Millisecond,
		HDDWrite: 9 * time.Millisecond,
		SSDRead:  time.Second / 35000,
		SSDWrite: time.Second / 3300,
	}
}

// Mean returns the mean user-visible latency per block access given the
// hit/miss breakdown.
func (m LatencyModel) Mean(readHits, writeHits, readMisses, writeMisses int64) time.Duration {
	total := readHits + writeHits + readMisses + writeMisses
	if total == 0 {
		return 0
	}
	sum := float64(readHits)*float64(m.SSDRead) +
		float64(writeHits)*float64(m.SSDWrite) +
		float64(readMisses)*float64(m.HDDRead) +
		float64(writeMisses)*float64(m.HDDWrite)
	return time.Duration(sum / float64(total))
}

// Speedup returns the ratio of the no-cache mean latency to the cached
// mean latency for the same access mix.
func (m LatencyModel) Speedup(readHits, writeHits, readMisses, writeMisses int64) float64 {
	cached := m.Mean(readHits, writeHits, readMisses, writeMisses)
	if cached == 0 {
		return 1
	}
	uncached := m.Mean(0, 0, readHits+readMisses, writeHits+writeMisses)
	return float64(uncached) / float64(cached)
}
