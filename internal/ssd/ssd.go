// Package ssd models the solid-state drive that backs the SieveStore cache:
// IOPS-based drive-occupancy accounting, drives-needed/coverage analysis,
// and write-endurance lifetime estimation, exactly as in the paper's
// methodology (§4, §5.1, §5.2).
package ssd

import (
	"fmt"
	"math"
	"sort"
)

// DeviceSpec describes an SSD's performance and endurance envelope.
type DeviceSpec struct {
	// Name identifies the device in reports.
	Name string
	// ReadIOPS and WriteIOPS are sustained random 4 KiB operation rates.
	ReadIOPS  float64
	WriteIOPS float64
	// SeqReadMBps and SeqWriteMBps are sustained sequential bandwidths.
	SeqReadMBps  float64
	SeqWriteMBps float64
	// EnduranceBytes is the total write volume the device is rated for.
	EnduranceBytes float64
}

// IntelX25E returns the paper's reference device: Intel's X25-E Extreme
// SATA SSD — 35 000 random read IOPS, 3 300 random write IOPS, 250/170 MB/s
// sequential read/write, 1 PB write endurance (§4, §5.1).
func IntelX25E() DeviceSpec {
	return DeviceSpec{
		Name:           "Intel X25-E",
		ReadIOPS:       35000,
		WriteIOPS:      3300,
		SeqReadMBps:    250,
		SeqWriteMBps:   170,
		EnduranceBytes: 1e15,
	}
}

// Validate checks the spec is usable for occupancy math.
func (d *DeviceSpec) Validate() error {
	if d.ReadIOPS <= 0 || d.WriteIOPS <= 0 {
		return fmt.Errorf("ssd: %s: IOPS ratings must be positive", d.Name)
	}
	return nil
}

// RandomReadMBps returns the effective random-read bandwidth for 4 KiB
// transfers (the paper notes this — 140 MB/s and 13.2 MB/s for the X25-E —
// is a tighter constraint than the sequential ratings, which is why
// occupancy is charged per-IOP).
func (d *DeviceSpec) RandomReadMBps() float64 { return d.ReadIOPS * 4096 / 1e6 }

// RandomWriteMBps returns the effective random-write bandwidth for 4 KiB
// transfers.
func (d *DeviceSpec) RandomWriteMBps() float64 { return d.WriteIOPS * 4096 / 1e6 }

// Occupancy converts per-minute page-I/O counts into drive-IOPS occupancy:
// each 4 KiB read occupies the drive for 1/ReadIOPS seconds and each 4 KiB
// write for 1/WriteIOPS seconds; occupancy is the fraction of the minute
// the drive is busy (>1 means more than one drive is needed).
func (d *DeviceSpec) Occupancy(readPages, writePages float64) float64 {
	busySeconds := readPages/d.ReadIOPS + writePages/d.WriteIOPS
	return busySeconds / 60
}

// DrivesFor returns the whole number of drives needed to serve the given
// per-minute page counts: the ceiling of the occupancy, minimum 1 when
// there is any traffic.
func (d *DeviceSpec) DrivesFor(readPages, writePages float64) int {
	occ := d.Occupancy(readPages, writePages)
	if occ == 0 {
		return 0
	}
	return int(math.Ceil(occ - 1e-9))
}

// LifetimeYears returns the device lifetime implied by a steady daily write
// volume (§5.1: the X25-E endures 1 PB, so <500 M 512 B writes/day gives
// >10 years).
func (d *DeviceSpec) LifetimeYears(bytesPerDay float64) float64 {
	if bytesPerDay <= 0 {
		return math.Inf(1)
	}
	return d.EnduranceBytes / bytesPerDay / 365
}

// MinuteLoad is one minute's SSD page-level traffic.
type MinuteLoad struct {
	// Minute is the zero-based minute index within the trace.
	Minute int
	// ReadPages and WritePages count 4 KiB device operations in the minute.
	ReadPages  float64
	WritePages float64
}

// OccupancySeries computes per-minute drive occupancy for a load series.
func OccupancySeries(spec *DeviceSpec, loads []MinuteLoad) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = spec.Occupancy(l.ReadPages, l.WritePages)
	}
	return out
}

// CoveragePoint reports how many drives are needed to cover a fraction of
// the trace's minutes.
type CoveragePoint struct {
	// Coverage is the fraction of minutes fully served (e.g. 0.999).
	Coverage float64
	// Drives is the number of drives required at that coverage.
	Drives int
}

// DrivesNeeded returns, for each minute, the integral number of drives
// required, sorted ascending (the paper's Figure 9 presentation: minutes
// ordered by drive requirement, not chronologically).
func DrivesNeeded(spec *DeviceSpec, loads []MinuteLoad) []int {
	out := make([]int, len(loads))
	for i, l := range loads {
		out[i] = spec.DrivesFor(l.ReadPages, l.WritePages)
	}
	sort.Ints(out)
	return out
}

// DrivesAtCoverage returns the number of drives needed to fully serve the
// busiest (1-coverage) fraction of minutes excluded — i.e. the drive count
// at the coverage-quantile of the sorted per-minute requirement. sorted
// must be ascending (as returned by DrivesNeeded).
func DrivesAtCoverage(sorted []int, coverage float64) int {
	if len(sorted) == 0 {
		return 0
	}
	if coverage >= 1 {
		return sorted[len(sorted)-1]
	}
	if coverage < 0 {
		coverage = 0
	}
	idx := int(math.Ceil(coverage*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// CoverageTable evaluates the standard coverage points the paper quotes.
func CoverageTable(spec *DeviceSpec, loads []MinuteLoad) []CoveragePoint {
	sorted := DrivesNeeded(spec, loads)
	points := []float64{0.90, 0.99, 0.999, 1.0}
	out := make([]CoveragePoint, len(points))
	for i, p := range points {
		out[i] = CoveragePoint{Coverage: p, Drives: DrivesAtCoverage(sorted, p)}
	}
	return out
}

// FractionUnderOccupancy returns the fraction of minutes whose occupancy is
// at most limit (e.g. 1.0 → "the drive occupancy stays under 1 X% of the
// time", §5.2).
func FractionUnderOccupancy(occ []float64, limit float64) float64 {
	if len(occ) == 0 {
		return 1
	}
	n := 0
	for _, o := range occ {
		if o <= limit {
			n++
		}
	}
	return float64(n) / float64(len(occ))
}
