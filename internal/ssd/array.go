package ssd

import (
	"fmt"
)

// This file models multi-drive SieveStore nodes — the paper's §7
// forward-looking scaling discussion (and the fallback its §5.2 results
// imply: the 9 minutes where SieveStore-C's load exceeds one X25-E are
// served by striping the cache across two drives).

// Array is a stripe set of identical SSDs serving one cache.
type Array struct {
	Spec DeviceSpec
	// Drives is the stripe width.
	Drives int
	// Imbalance models hash-striping skew: the hottest drive receives
	// Imbalance × the fair share of operations (1.0 = perfectly balanced;
	// hash-striped block caches typically measure 1.05–1.15).
	Imbalance float64
}

// NewArray returns an array with the given width and a mild default
// imbalance of 1.1.
func NewArray(spec DeviceSpec, drives int) (*Array, error) {
	if drives < 1 {
		return nil, fmt.Errorf("ssd: array needs ≥1 drive, got %d", drives)
	}
	return &Array{Spec: spec, Drives: drives, Imbalance: 1.1}, nil
}

// Occupancy returns the hottest member drive's occupancy under the given
// per-minute page loads: the fair share times the imbalance factor. A
// single-drive array has no imbalance by construction.
func (a *Array) Occupancy(readPages, writePages float64) float64 {
	imb := a.Imbalance
	if a.Drives == 1 {
		imb = 1
	}
	share := imb / float64(a.Drives)
	return a.Spec.Occupancy(readPages*share, writePages*share)
}

// Saturated reports whether any member drive exceeds full occupancy for
// the load.
func (a *Array) Saturated(readPages, writePages float64) bool {
	return a.Occupancy(readPages, writePages) > 1+1e-9
}

// MinDrivesFor returns the smallest stripe width whose hottest drive stays
// under full occupancy for every load in the series at the given coverage
// (fraction of minutes that must be fully served), assuming the array's
// imbalance factor. It answers the paper's scaling question: how does the
// SieveStore node grow with ensemble load?
func MinDrivesFor(spec DeviceSpec, imbalance float64, loads []MinuteLoad, coverage float64) int {
	if len(loads) == 0 {
		return 1
	}
	for drives := 1; ; drives++ {
		arr := Array{Spec: spec, Drives: drives, Imbalance: imbalance}
		over := 0
		for _, l := range loads {
			if arr.Saturated(l.ReadPages, l.WritePages) {
				over++
			}
		}
		served := 1 - float64(over)/float64(len(loads))
		if served >= coverage-1e-12 {
			return drives
		}
		if drives > 1<<20 {
			// Pathological input (e.g. +Inf load); report saturation.
			return drives
		}
	}
}

// ScalingPoint is one row of the scaling analysis: how many drives an
// ensemble multiple needs.
type ScalingPoint struct {
	// LoadFactor multiplies the measured load series (e.g. 2.0 models an
	// ensemble twice the measured size).
	LoadFactor float64
	// Drives is the minimal stripe width at 99.9% coverage.
	Drives int
	// PeakOccupancy is the hottest drive's worst minute at that width.
	PeakOccupancy float64
}

// ScalingTable evaluates drive needs as the ensemble grows by the given
// load factors — the §7 scaling projection.
func ScalingTable(spec DeviceSpec, imbalance float64, loads []MinuteLoad, factors []float64) []ScalingPoint {
	out := make([]ScalingPoint, 0, len(factors))
	for _, f := range factors {
		scaled := make([]MinuteLoad, len(loads))
		for i, l := range loads {
			scaled[i] = MinuteLoad{Minute: l.Minute, ReadPages: l.ReadPages * f, WritePages: l.WritePages * f}
		}
		drives := MinDrivesFor(spec, imbalance, scaled, 0.999)
		arr := Array{Spec: spec, Drives: drives, Imbalance: imbalance}
		peak := 0.0
		for _, l := range scaled {
			if occ := arr.Occupancy(l.ReadPages, l.WritePages); occ > peak {
				peak = occ
			}
		}
		out = append(out, ScalingPoint{LoadFactor: f, Drives: drives, PeakOccupancy: peak})
	}
	return out
}

// NetworkSpec models the SieveStore node's NICs for the paper's §3.3
// bandwidth feasibility check ("a reasonably configured node with four
// Gigabit Ethernet links").
type NetworkSpec struct {
	// Links is the number of network links.
	Links int
	// LinkMBps is each link's usable bandwidth in MB/s (1 GbE ≈ 125 MB/s
	// raw; ~117 MB/s usable).
	LinkMBps float64
}

// FourGigE returns the paper's assumed configuration.
func FourGigE() NetworkSpec { return NetworkSpec{Links: 4, LinkMBps: 117} }

// TotalMBps returns the aggregate bandwidth.
func (n NetworkSpec) TotalMBps() float64 { return float64(n.Links) * n.LinkMBps }

// Occupancy returns the fraction of a minute the NICs are busy moving the
// given byte volume (hit traffic served to clients plus allocation fills
// copied in).
func (n NetworkSpec) Occupancy(bytesInMinute float64) float64 {
	return bytesInMinute / (n.TotalMBps() * 1e6 * 60)
}

// WorstCaseSSDFraction returns the paper's §3.3 sanity check: the fraction
// of network capacity consumed if the SSD streams at its maximum sequential
// read rate ("even the maximum SSD throughput accounts for ~50% of the
// network bandwidth").
func (n NetworkSpec) WorstCaseSSDFraction(spec DeviceSpec) float64 {
	return spec.SeqReadMBps / n.TotalMBps()
}

// NetworkSeries converts an SSD page-load series into per-minute network
// occupancy (each page crosses the network once: hits outbound, allocation
// fills inbound).
func NetworkSeries(n NetworkSpec, loads []MinuteLoad) []float64 {
	out := make([]float64, len(loads))
	for i, l := range loads {
		out[i] = n.Occupancy((l.ReadPages + l.WritePages) * 4096)
	}
	return out
}

// MaxNetworkOccupancy returns the worst minute of the series.
func MaxNetworkOccupancy(n NetworkSpec, loads []MinuteLoad) float64 {
	max := 0.0
	for _, o := range NetworkSeries(n, loads) {
		if o > max {
			max = o
		}
	}
	return max
}
