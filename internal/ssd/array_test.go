package ssd

import (
	"math"
	"testing"
)

func TestNewArrayValidates(t *testing.T) {
	if _, err := NewArray(IntelX25E(), 0); err == nil {
		t.Error("zero-drive array accepted")
	}
	a, err := NewArray(IntelX25E(), 2)
	if err != nil || a.Drives != 2 || a.Imbalance != 1.1 {
		t.Errorf("array = %+v, err = %v", a, err)
	}
}

func TestArrayOccupancySingleDriveMatchesSpec(t *testing.T) {
	spec := IntelX25E()
	a, _ := NewArray(spec, 1)
	r, w := 35000.0*30, 3300.0*10
	if got, want := a.Occupancy(r, w), spec.Occupancy(r, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("single-drive occupancy %v != spec %v", got, want)
	}
}

func TestArrayOccupancyScalesWithWidth(t *testing.T) {
	spec := IntelX25E()
	load := 35000.0 * 60 * 3 // three drives' worth of reads
	a3, _ := NewArray(spec, 3)
	a3.Imbalance = 1.0
	if got := a3.Occupancy(load, 0); math.Abs(got-1) > 1e-9 {
		t.Errorf("balanced 3-drive occupancy = %v, want 1", got)
	}
	// With imbalance 1.2 the hottest drive is 20% over fair share.
	a3.Imbalance = 1.2
	if got := a3.Occupancy(load, 0); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("imbalanced occupancy = %v, want 1.2", got)
	}
	if !a3.Saturated(load, 0) {
		t.Error("imbalanced array should be saturated")
	}
}

func TestMinDrivesFor(t *testing.T) {
	spec := IntelX25E()
	loads := []MinuteLoad{
		{Minute: 0, ReadPages: 35000 * 30},     // 0.5 drive
		{Minute: 1, ReadPages: 35000 * 60 * 2}, // 2 drives
		{Minute: 2},
	}
	if got := MinDrivesFor(spec, 1.0, loads, 1.0); got != 2 {
		t.Errorf("balanced drives = %d, want 2", got)
	}
	// Imbalance forces a third drive for the peak minute.
	if got := MinDrivesFor(spec, 1.3, loads, 1.0); got != 3 {
		t.Errorf("imbalanced drives = %d, want 3", got)
	}
	// Lower coverage may ignore the peak minute.
	if got := MinDrivesFor(spec, 1.0, loads, 0.5); got != 1 {
		t.Errorf("50%% coverage drives = %d, want 1", got)
	}
	if got := MinDrivesFor(spec, 1.0, nil, 0.999); got != 1 {
		t.Errorf("empty loads = %d drives", got)
	}
}

func TestScalingTableMonotone(t *testing.T) {
	spec := IntelX25E()
	loads := []MinuteLoad{
		{Minute: 0, ReadPages: 35000 * 40, WritePages: 3300 * 5},
		{Minute: 1, ReadPages: 35000 * 20},
	}
	table := ScalingTable(spec, 1.1, loads, []float64{1, 2, 4, 8})
	if len(table) != 4 {
		t.Fatalf("rows = %d", len(table))
	}
	for i := 1; i < len(table); i++ {
		if table[i].Drives < table[i-1].Drives {
			t.Errorf("drive needs not monotone: %+v", table)
		}
	}
	for _, row := range table {
		if row.PeakOccupancy > 1+1e-9 {
			t.Errorf("scaling row leaves hottest drive saturated: %+v", row)
		}
	}
}

func TestNetworkSpec(t *testing.T) {
	n := FourGigE()
	if n.TotalMBps() != 468 {
		t.Errorf("total = %v", n.TotalMBps())
	}
	// Paper §3.3: the SSD's max sequential read rate (250 MB/s) is ≈50% of
	// a 4×GbE node's bandwidth.
	f := n.WorstCaseSSDFraction(IntelX25E())
	if f < 0.45 || f > 0.60 {
		t.Errorf("worst-case SSD fraction = %.2f, want ≈0.5", f)
	}
	// A minute of full-rate transfer saturates exactly.
	bytes := n.TotalMBps() * 1e6 * 60
	if got := n.Occupancy(bytes); math.Abs(got-1) > 1e-9 {
		t.Errorf("saturating occupancy = %v", got)
	}
}

func TestNetworkSeries(t *testing.T) {
	n := NetworkSpec{Links: 1, LinkMBps: 100}
	loads := []MinuteLoad{
		{Minute: 0, ReadPages: 100, WritePages: 50},
		{Minute: 1},
	}
	series := NetworkSeries(n, loads)
	want := 150 * 4096.0 / (100e6 * 60)
	if math.Abs(series[0]-want) > 1e-12 || series[1] != 0 {
		t.Errorf("series = %v", series)
	}
	if got := MaxNetworkOccupancy(n, loads); math.Abs(got-want) > 1e-12 {
		t.Errorf("max = %v", got)
	}
}

func TestLatencyModel(t *testing.T) {
	m := X25ELatency()
	// All misses: mean equals the HDD read latency for a pure-read mix.
	if got := m.Mean(0, 0, 100, 0); got != m.HDDRead {
		t.Errorf("all-miss mean = %v", got)
	}
	// All hits: SSD read latency.
	if got := m.Mean(100, 0, 0, 0); got != m.SSDRead {
		t.Errorf("all-hit mean = %v", got)
	}
	if got := m.Mean(0, 0, 0, 0); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
	// A 35% read-hit workload: mean must sit between the extremes and the
	// speedup above 1.
	mean := m.Mean(35, 0, 65, 0)
	if mean <= m.SSDRead || mean >= m.HDDRead {
		t.Errorf("mixed mean = %v", mean)
	}
	sp := m.Speedup(35, 0, 65, 0)
	if sp < 1.3 || sp > 1.7 {
		t.Errorf("speedup = %.2f, want ≈1.53 (1/0.65 adjusted for SSD latency)", sp)
	}
	if m.Speedup(0, 0, 0, 0) != 1 {
		t.Error("empty speedup")
	}
	// Write hits are slower than read hits but still far faster than HDD.
	if m.SSDWrite <= m.SSDRead || m.SSDWrite >= m.HDDWrite/10 {
		t.Errorf("SSD write latency %v implausible", m.SSDWrite)
	}
}
