package replay

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/workload"
)

// crossScale keeps the cross-validation affordable: a small but non-trivial
// ensemble trace.
const crossScale = 65536

func baseTime() time.Time { return time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC) }

// TestCrossValidationSimVsStore is the repository's bridge test: the
// trace-driven simulator and the real data-path store implement
// SieveStore-C independently (different code, same policy); replaying the
// same trace through both must produce closely matching capture behavior.
// They are not bit-identical by design — the simulator works per-block with
// completion-time interpolation, the store per-request at issue time — so
// the comparison uses a tolerance.
func TestCrossValidationSimVsStore(t *testing.T) {
	cfg := workload.Default(crossScale)
	cfg.Days = 4
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sieveCfg := sieve.CConfig{
		IMCTSize: 1 << 28 / crossScale, T1: 9, T2: 4,
		Window: 8 * time.Hour, Subwindows: 4,
	}
	capacityBlocks := 16 << 30 / 512 / crossScale

	// Simulator side.
	policy, err := sieve.NewC(sieveCfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.RunContinuous(gen, capacityBlocks, policy)
	if err != nil {
		t.Fatal(err)
	}

	// Real store side.
	clk := NewClock(baseTime())
	st, err := core.Open(BuildBackend(cfg), core.Options{
		CacheBytes: int64(capacityBlocks) * 512,
		Variant:    core.VariantC,
		SieveC:     sieveCfg,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reports, err := Run(st, gen, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var storeHits, storeAcc, simHits, simAcc int64
	for d, rep := range reports {
		storeHits += rep.Hits
		storeAcc += rep.Accesses
		simHits += simRes.Days[d].Hits()
		simAcc += simRes.Days[d].Accesses
	}
	if storeAcc == 0 || simAcc == 0 {
		t.Fatal("empty replay")
	}
	// Access counts differ only by block-alignment padding of sub-block
	// requests (<7% of requests touch extra blocks).
	if ratio := float64(storeAcc) / float64(simAcc); ratio < 0.98 || ratio > 1.05 {
		t.Errorf("access streams diverged: store %d vs sim %d", storeAcc, simAcc)
	}
	storeRatio := float64(storeHits) / float64(storeAcc)
	simRatio := float64(simHits) / float64(simAcc)
	if math.Abs(storeRatio-simRatio) > 0.25*math.Max(simRatio, 0.01) {
		t.Errorf("hit ratios diverged: store %.4f vs sim %.4f", storeRatio, simRatio)
	}
	t.Logf("cross-validation: store hit %.4f vs sim hit %.4f over %d accesses",
		storeRatio, simRatio, simAcc)
}

func TestClock(t *testing.T) {
	clk := NewClock(baseTime())
	if !clk.Now().Equal(baseTime()) {
		t.Error("clock not anchored")
	}
	clk.Set(int64(90 * time.Minute))
	if got := clk.Now().Sub(baseTime()); got != 90*time.Minute {
		t.Errorf("clock = %v", got)
	}
}

func TestRunRotatesDaily(t *testing.T) {
	cfg := workload.Default(crossScale)
	cfg.Days = 3
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := NewClock(baseTime())
	st, err := core.Open(BuildBackend(cfg), core.Options{
		CacheBytes: 512 * 512,
		Variant:    core.VariantD,
		Epoch:      24 * time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	reports, err := Run(st, gen, clk, Options{RotateDaily: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	if reports[0].Hits != 0 {
		t.Error("day 0 should be the bootstrap day")
	}
	if reports[2].Hits == 0 {
		t.Error("no hits after two epochs; rotation broken?")
	}
	if st.Stats().Epochs < 3 {
		t.Errorf("epochs = %d, want ≥3", st.Stats().Epochs)
	}
	if reports[1].Moves == 0 && reports[2].Moves == 0 {
		t.Error("no epoch moves recorded")
	}
}

func TestBuildBackendCoversWorkload(t *testing.T) {
	cfg := workload.Default(crossScale)
	cfg.Days = 1
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	be := BuildBackend(cfg)
	reqs, err := gen.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	for i := range reqs {
		r := &reqs[i]
		if err := be.ReadAt(r.Server, r.Volume, buf[:r.Length], r.Offset); err != nil {
			t.Fatalf("request %d (%+v): %v", i, r, err)
		}
	}
}

func TestRunSurfacesBackendErrors(t *testing.T) {
	cfg := workload.Default(crossScale)
	cfg.Days = 1
	gen, err := workload.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := NewClock(baseTime())
	faulty := store.NewFaulty(BuildBackend(cfg))
	st, err := core.Open(faulty, core.Options{CacheBytes: 64 * 512, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	faulty.FailAfter(50)
	_, err = Run(st, gen, clk, Options{})
	if err == nil {
		t.Fatal("injected backend fault not surfaced")
	}
	if !strings.Contains(err.Error(), "replay: day 0 request") {
		t.Errorf("error lacks context: %v", err)
	}
}

func TestDayReportHitRatio(t *testing.T) {
	r := DayReport{Accesses: 100, Hits: 25}
	if r.HitRatio() != 0.25 {
		t.Errorf("ratio = %v", r.HitRatio())
	}
	if (DayReport{}).HitRatio() != 0 {
		t.Error("empty day ratio")
	}
}
