// Package replay drives the real SieveStore data path (core.Store) with a
// block trace under a virtual clock: requests are issued in trace order,
// the store's injected clock follows trace time (so SieveStore-C windows
// and SieveStore-D epochs behave exactly as in the paper), and per-day
// statistics are collected for comparison against the simulator.
//
// This is both a library feature — replaying production traces against a
// candidate configuration — and the repository's cross-validation bridge:
// the simulator (internal/sim) and the store (internal/core) implement the
// same policies independently, and replaying the same trace through both
// must produce closely matching hit behavior.
package replay

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Clock is a virtual clock for core.Options.Now that follows trace time.
// It is safe for concurrent use.
type Clock struct {
	base time.Time
	ns   atomic.Int64
}

// NewClock returns a clock anchored at base (trace time zero).
func NewClock(base time.Time) *Clock { return &Clock{base: base} }

// Now implements the core.Options.Now contract.
func (c *Clock) Now() time.Time { return c.base.Add(time.Duration(c.ns.Load())) }

// Set moves the clock to the given trace time (nanoseconds since epoch).
func (c *Clock) Set(traceNS int64) { c.ns.Store(traceNS) }

// DayReport is one calendar day of a replay.
type DayReport struct {
	Day      int
	Requests int
	// Accesses/Hits/AllocWrites/Moves are deltas for this day, in blocks.
	Accesses    int64
	Hits        int64
	AllocWrites int64
	Moves       int64
}

// HitRatio returns the day's capture ratio.
func (d DayReport) HitRatio() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.Hits) / float64(d.Accesses)
}

// Options configures a replay.
type Options struct {
	// RotateDaily forces a SieveStore-D epoch rotation at each day
	// boundary (matching the paper's calendar-day epochs) instead of
	// relying on elapsed-time rotation alone.
	RotateDaily bool
}

// Run replays tr through st, stepping clk to each request's issue time.
// Requests are aligned outward to 512-byte block boundaries (the trace may
// contain sub-block requests; the store API is block-granular).
func Run(st *core.Store, tr sim.Trace, clk *Clock, opts Options) ([]DayReport, error) {
	reports := make([]DayReport, 0, tr.Days())
	var prev core.Stats
	buf := make([]byte, 0, 1<<20)
	for d := 0; d < tr.Days(); d++ {
		reqs, err := tr.Day(d)
		if err != nil {
			return reports, err
		}
		for i := range reqs {
			req := &reqs[i]
			clk.Set(req.Time)
			off := req.Offset / block.Size * block.Size
			end := (req.End() + block.Size - 1) / block.Size * block.Size
			if end == off {
				end = off + block.Size
			}
			n := int(end - off)
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			b := buf[:n]
			if req.Kind == block.Write {
				err = st.WriteAt(req.Server, req.Volume, b, off)
			} else {
				err = st.ReadAt(req.Server, req.Volume, b, off)
			}
			if err != nil {
				return reports, fmt.Errorf("replay: day %d request %d: %w", d, i, err)
			}
		}
		// Nudge the clock past midnight (it only moves when requests
		// arrive) and rotate the epoch if asked.
		clk.Set(int64(d+1) * trace.Day)
		if opts.RotateDaily && st.Variant() == core.VariantD {
			if err := st.RotateEpoch(); err != nil {
				return reports, err
			}
		}
		s := st.Stats()
		reports = append(reports, DayReport{
			Day:         d,
			Requests:    len(reqs),
			Accesses:    (s.Reads + s.Writes) - (prev.Reads + prev.Writes),
			Hits:        s.Hits() - prev.Hits(),
			AllocWrites: s.AllocWrites - prev.AllocWrites,
			Moves:       s.EpochMoves - prev.EpochMoves,
		})
		prev = s
	}
	return reports, nil
}

// BuildBackend constructs an in-memory ensemble with each server's scaled
// volume capacities from a workload configuration, ready to back a replay
// of that workload's trace.
func BuildBackend(cfg workload.Config) *store.Mem {
	backend := store.NewMem()
	for s, sp := range cfg.Servers {
		perVol := uint64(sp.CapacityGB*(1<<30)/float64(cfg.Scale)) / uint64(sp.Volumes)
		perVol = (perVol / block.Size) * block.Size
		for v := 0; v < sp.Volumes; v++ {
			// Slack beyond the nominal capacity absorbs sequential scan
			// requests that run past a chunk boundary.
			backend.AddVolume(s, v, perVol+1<<20)
		}
	}
	return backend
}
