package metrics

import (
	"sync"
	"testing"
)

func TestTraceRingSampling(t *testing.T) {
	// sampleEvery=1 samples everything without touching the counter.
	every := NewTraceRing(4, 1)
	for i := 0; i < 10; i++ {
		if !every.Sample() {
			t.Fatal("sampleEvery=1 must always sample")
		}
	}
	// sampleEvery=N samples exactly 1 in N.
	oneInFour := NewTraceRing(4, 4)
	sampled := 0
	for i := 0; i < 400; i++ {
		if oneInFour.Sample() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400, want 100", sampled)
	}
	// Degenerate constructor args clamp instead of panicking.
	r := NewTraceRing(0, 0)
	if !r.Sample() {
		t.Fatal("clamped ring must sample")
	}
	r.Record(OpTrace{Op: "read"})
	if r.Len() != 1 {
		t.Fatalf("clamped ring len = %d", r.Len())
	}
}

func TestTraceRingWrapAndOrder(t *testing.T) {
	r := NewTraceRing(4, 1)
	if got := r.Dump(); len(got) != 0 {
		t.Fatalf("empty ring dumped %d records", len(got))
	}
	for i := 0; i < 10; i++ {
		r.Record(OpTrace{Offset: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	got := r.Dump()
	if len(got) != 4 {
		t.Fatalf("dumped %d records", len(got))
	}
	// Newest first: offsets 9, 8, 7, 6; sequence numbers strictly decreasing.
	for i, rec := range got {
		if rec.Offset != uint64(9-i) {
			t.Errorf("record %d offset = %d, want %d", i, rec.Offset, 9-i)
		}
		if i > 0 && rec.Seq >= got[i-1].Seq {
			t.Errorf("seq not decreasing: %d then %d", got[i-1].Seq, rec.Seq)
		}
	}
	if got[0].Seq != 10 {
		t.Errorf("newest seq = %d, want 10", got[0].Seq)
	}
}

// TestTraceRingConcurrent records and dumps from many goroutines; the ring
// must stay internally consistent. Run under -race.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(64, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if r.Sample() {
					r.Record(OpTrace{Op: "read", Server: g, Offset: uint64(i)})
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, rec := range r.Dump() {
				if rec.Op != "read" {
					t.Errorf("torn record: %+v", rec)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Len() != 64 {
		t.Fatalf("len = %d, want 64", r.Len())
	}
	// Sequence numbers of the final dump are unique and contiguous-ish
	// (strictly decreasing from the newest).
	got := r.Dump()
	for i := 1; i < len(got); i++ {
		if got[i].Seq >= got[i-1].Seq {
			t.Fatalf("seq order broken at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}
