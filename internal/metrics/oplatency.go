package metrics

import (
	"sync/atomic"
	"time"
)

// OpLatency accumulates whole-call service times for one operation kind
// (e.g. all ReadAt calls of a store). It is lock-free and safe for
// concurrent use; the hot path is three atomic adds plus a CAS loop for
// the maximum. The zero value is ready to use.
type OpLatency struct {
	ops     atomic.Int64
	errs    atomic.Int64
	totalNS atomic.Int64
	maxNS   atomic.Int64
}

// Observe records one completed operation of duration d; failed marks
// operations that returned an error (their time still counts).
func (l *OpLatency) Observe(d time.Duration, failed bool) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	l.ops.Add(1)
	if failed {
		l.errs.Add(1)
	}
	l.totalNS.Add(ns)
	for {
		cur := l.maxNS.Load()
		if ns <= cur || l.maxNS.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot returns a consistent-enough point-in-time copy of the counters
// (each field is read atomically; the set is not fenced against concurrent
// Observe calls, which only ever grow the counters).
func (l *OpLatency) Snapshot() OpLatencySnapshot {
	return OpLatencySnapshot{
		Ops:        l.ops.Load(),
		Errors:     l.errs.Load(),
		TotalNanos: l.totalNS.Load(),
		MaxNanos:   l.maxNS.Load(),
	}
}

// OpLatencySnapshot is an exported, JSON-friendly view of an OpLatency.
// It is embedded in core.Stats and travels over the appliance's OpStats
// wire encoding.
type OpLatencySnapshot struct {
	Ops        int64 // completed operations
	Errors     int64 // operations that returned an error
	TotalNanos int64 // summed service time
	MaxNanos   int64 // worst single operation
}

// Mean returns the average service time. A snapshot with no operations —
// or a nonsensical one (negative Ops from a corrupt merge or hand-built
// value) — yields 0 rather than dividing by zero or reporting a negative
// duration.
func (s OpLatencySnapshot) Mean() time.Duration {
	if s.Ops <= 0 {
		return 0
	}
	return time.Duration(s.TotalNanos / s.Ops)
}

// Throughput returns operations per second over a wall-clock window.
// A zero, negative, or sub-nanosecond window, or a negative op count,
// yields 0 — never Inf or NaN.
func (s OpLatencySnapshot) Throughput(elapsed time.Duration) float64 {
	if elapsed <= 0 || s.Ops < 0 {
		return 0
	}
	return float64(s.Ops) / elapsed.Seconds()
}

// ErrorRate returns the fraction of operations that failed (0 if empty).
func (s OpLatencySnapshot) ErrorRate() float64 {
	if s.Ops <= 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Ops)
}

// Add merges two snapshots (e.g. across striped appliance nodes).
func (s OpLatencySnapshot) Add(o OpLatencySnapshot) OpLatencySnapshot {
	out := OpLatencySnapshot{
		Ops:        s.Ops + o.Ops,
		Errors:     s.Errors + o.Errors,
		TotalNanos: s.TotalNanos + o.TotalNanos,
		MaxNanos:   s.MaxNanos,
	}
	if o.MaxNanos > out.MaxNanos {
		out.MaxNanos = o.MaxNanos
	}
	return out
}
