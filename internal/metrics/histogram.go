package metrics

import (
	"math/bits"
	randv2 "math/rand/v2"
	"sync/atomic"
	"time"
)

// Log-linear bucket layout shared by Histogram and HistogramSnapshot.
//
// Values are nanoseconds. The first histSubCount buckets are exact
// (0..histSubCount-1 ns); above that, every power-of-two octave is split
// into histSubCount linear sub-buckets, so a bucket's width is at most
// 1/histSubCount of its lower bound — quantiles read back from the
// buckets carry ≤ 12.5% relative error. Values at or above histMaxValue
// (~18 minutes) clamp into the last bucket.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits // 8 sub-buckets per octave
	histMaxExp   = 40               // top octave: [2^40, 2^41) ns ≈ 18–37 min
	// HistogramBuckets is the fixed bucket count of every Histogram.
	HistogramBuckets = (histMaxExp-histSubBits+1)*histSubCount + histSubCount
)

// histMaxValue is the smallest value that clamps into the last bucket.
const histMaxValue = int64(1) << (histMaxExp + 1)

// histBucket maps a nanosecond value to its bucket index.
func histBucket(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubCount {
		return int(v)
	}
	if v >= histMaxValue {
		return HistogramBuckets - 1
	}
	exp := bits.Len64(uint64(v)) - 1 // ≥ histSubBits
	sub := int(v>>(uint(exp)-histSubBits)) & (histSubCount - 1)
	return (exp-histSubBits)*histSubCount + histSubCount + sub
}

// BucketUpper returns the inclusive upper bound, in nanoseconds, of
// bucket i — the largest value that maps there. The last bucket is
// open-ended and reports histMaxValue.
func BucketUpper(i int) int64 {
	if i < 0 {
		return 0
	}
	if i < histSubCount {
		return int64(i)
	}
	if i >= HistogramBuckets-1 {
		return histMaxValue
	}
	octave := (i - histSubCount) / histSubCount
	sub := (i - histSubCount) % histSubCount
	exp := uint(octave + histSubBits)
	lower := int64(1)<<exp + int64(sub)<<(exp-histSubBits)
	return lower + int64(1)<<(exp-histSubBits) - 1
}

// histStripes is the fixed stripe count. Observe picks a stripe with the
// runtime's per-thread fast random source, so concurrent observers land
// on different cache lines with high probability regardless of GOMAXPROCS.
const histStripes = 8

// histStripe is one independent accumulator. Stripes are merged only at
// Snapshot time.
type histStripe struct {
	counts [HistogramBuckets]atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	// _pad separates the tail of one stripe's hot fields from the head of
	// the next stripe's bucket array.
	_pad [64]byte //nolint:unused
}

// Histogram is a lock-free latency histogram: log-bucketed (≤ 12.5%
// relative bucket width), striped to histStripes independent accumulator
// sets so concurrent Observe calls rarely contend on a cache line. The
// zero value is ready to use; Observe performs no allocation — a bucket
// add, a sum add, and a CAS loop for the maximum, all on one randomly
// chosen stripe. The total count is not tracked separately: Snapshot
// derives it by summing the buckets.
type Histogram struct {
	stripes [histStripes]histStripe
}

// Observe records one value.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	s := &h.stripes[randv2.Uint64()%histStripes]
	s.counts[histBucket(ns)].Add(1)
	s.sum.Add(ns)
	for {
		cur := s.max.Load()
		if ns <= cur || s.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Snapshot merges the stripes into an exported point-in-time view. Like
// OpLatency.Snapshot, each field is read atomically but the set is not
// fenced against concurrent Observe calls (which only grow the counters).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Counts = make([]int64, HistogramBuckets)
	for i := range h.stripes {
		st := &h.stripes[i]
		for b := range st.counts {
			s.Counts[b] += st.counts[b].Load()
		}
		s.Sum += st.sum.Load()
		if m := st.max.Load(); m > s.Max {
			s.Max = m
		}
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// HistogramSnapshot is an exported, JSON-friendly view of a Histogram,
// mergeable across instances (shards, striped appliance nodes) with Add.
type HistogramSnapshot struct {
	Counts []int64 // per-bucket observation counts (len HistogramBuckets)
	Count  int64   // total observations
	Sum    int64   // summed nanoseconds
	Max    int64   // worst single observation, nanoseconds
}

// Add merges two snapshots into a new one. Either operand may be the zero
// snapshot (nil Counts).
func (s HistogramSnapshot) Add(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{
		Count: s.Count + o.Count,
		Sum:   s.Sum + o.Sum,
		Max:   s.Max,
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	if s.Counts == nil && o.Counts == nil {
		return out
	}
	out.Counts = make([]int64, HistogramBuckets)
	for i := range out.Counts {
		if i < len(s.Counts) {
			out.Counts[i] += s.Counts[i]
		}
		if i < len(o.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}

// Mean returns the average observed value (0 if empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count <= 0 {
		return 0
	}
	return time.Duration(s.Sum / s.Count)
}

// Quantile returns the value at quantile q in [0, 1], derived from the
// bucket counts: the upper bound of the bucket containing the q-th
// observation (≤ 12.5% above the true value), clamped to Max. Returns 0
// for an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Counts) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen > rank {
			v := BucketUpper(i)
			if s.Max > 0 && v > s.Max {
				v = s.Max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(s.Max)
}
