// Package metrics accumulates the per-minute SSD load series behind the
// paper's drive-occupancy analysis (Figures 8 and 9): page-granular read
// and write operation counts per trace minute, with helpers to densify,
// scale, and summarize the series.
package metrics

import "repro/internal/ssd"

// MinuteSeries accumulates 4 KiB-page operation counts per trace minute.
// The zero value is ready to use.
type MinuteSeries struct {
	reads  []float64
	writes []float64
}

func (m *MinuteSeries) grow(minute int) {
	for len(m.reads) <= minute {
		m.reads = append(m.reads, 0)
		m.writes = append(m.writes, 0)
	}
}

// AddReads charges `pages` read operations to the given minute.
func (m *MinuteSeries) AddReads(minute int, pages float64) {
	if minute < 0 {
		return
	}
	m.grow(minute)
	m.reads[minute] += pages
}

// AddWrites charges `pages` write operations to the given minute.
func (m *MinuteSeries) AddWrites(minute int, pages float64) {
	if minute < 0 {
		return
	}
	m.grow(minute)
	m.writes[minute] += pages
}

// Len returns the number of minutes covered (up to the last active one).
func (m *MinuteSeries) Len() int { return len(m.reads) }

// Loads densifies the series to at least totalMinutes entries (idle minutes
// appear with zero load, as in the paper's 10 080-minute accounting).
func (m *MinuteSeries) Loads(totalMinutes int) []ssd.MinuteLoad {
	n := len(m.reads)
	if totalMinutes > n {
		n = totalMinutes
	}
	out := make([]ssd.MinuteLoad, n)
	for i := range out {
		out[i].Minute = i
		if i < len(m.reads) {
			out[i].ReadPages = m.reads[i]
			out[i].WritePages = m.writes[i]
		}
	}
	return out
}

// TotalReads returns the total read pages across the series.
func (m *MinuteSeries) TotalReads() float64 {
	var t float64
	for _, v := range m.reads {
		t += v
	}
	return t
}

// TotalWrites returns the total write pages across the series.
func (m *MinuteSeries) TotalWrites() float64 {
	var t float64
	for _, v := range m.writes {
		t += v
	}
	return t
}

// ScaleLoads multiplies a load series by factor, returning a new slice.
// The synthetic workload is generated at 1/Scale of the paper's volume, so
// occupancy analysis scales the loads back up to paper volume before
// applying real device IOPS ratings.
func ScaleLoads(loads []ssd.MinuteLoad, factor float64) []ssd.MinuteLoad {
	out := make([]ssd.MinuteLoad, len(loads))
	for i, l := range loads {
		out[i] = ssd.MinuteLoad{Minute: l.Minute, ReadPages: l.ReadPages * factor, WritePages: l.WritePages * factor}
	}
	return out
}
