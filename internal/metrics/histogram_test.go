package metrics

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketLayout checks the log-linear mapping invariants for
// every bucket boundary and a sweep of random values: indices are
// monotone in the value, every value lands in a bucket whose upper bound
// covers it, and bucket widths stay within the 12.5% design error.
func TestHistogramBucketLayout(t *testing.T) {
	if got := histBucket(0); got != 0 {
		t.Fatalf("histBucket(0) = %d", got)
	}
	if got := histBucket(-5); got != 0 {
		t.Fatalf("histBucket(-5) = %d", got)
	}
	// Upper bounds are strictly increasing and consistent with histBucket.
	for i := 0; i < HistogramBuckets; i++ {
		u := BucketUpper(i)
		if i > 0 && u <= BucketUpper(i-1) {
			t.Fatalf("BucketUpper not increasing at %d: %d <= %d", i, u, BucketUpper(i-1))
		}
		if i < HistogramBuckets-1 {
			if got := histBucket(u); got != i {
				t.Fatalf("histBucket(BucketUpper(%d)=%d) = %d", i, u, got)
			}
			if got := histBucket(u + 1); got != i+1 {
				t.Fatalf("histBucket(%d) = %d, want %d", u+1, got, i+1)
			}
		}
	}
	// Clamp: everything at or above the top bucket's range stays in range.
	for _, v := range []int64{histMaxValue, histMaxValue + 1, 1 << 62} {
		if got := histBucket(v); got != HistogramBuckets-1 {
			t.Fatalf("histBucket(%d) = %d, want %d", v, got, HistogramBuckets-1)
		}
	}
	// Relative bucket width ≤ 12.5% above the exact range.
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		v := r.Int63n(histMaxValue)
		b := histBucket(v)
		u := BucketUpper(b)
		if u < v {
			t.Fatalf("value %d maps to bucket %d with upper %d < value", v, b, u)
		}
		if v >= histSubCount && float64(u-v) > 0.125*float64(v)+1 {
			t.Fatalf("value %d: bucket upper %d exceeds 12.5%% error", v, u)
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		0, time.Nanosecond, 100 * time.Nanosecond, time.Microsecond,
		50 * time.Microsecond, time.Millisecond, 20 * time.Millisecond,
		time.Second, -time.Second, // negative clamps to 0
	}
	var sum int64
	for _, d := range durations {
		h.Observe(d)
		if d > 0 {
			sum += d.Nanoseconds()
		}
	}
	s := h.Snapshot()
	if s.Count != int64(len(durations)) {
		t.Fatalf("count = %d, want %d", s.Count, len(durations))
	}
	if s.Sum != sum {
		t.Fatalf("sum = %d, want %d", s.Sum, sum)
	}
	if s.Max != time.Second.Nanoseconds() {
		t.Fatalf("max = %d, want 1s", s.Max)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", total, s.Count)
	}
	if m := s.Mean(); m <= 0 || m > time.Second {
		t.Fatalf("mean = %v", m)
	}
}

// TestHistogramQuantiles loads a known distribution and checks the
// read-back quantiles stay within the bucket error bound.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations: i microseconds for i in 1..1000.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Microsecond},
		{0.95, 950 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want || float64(got) > 1.125*float64(tc.want)+1 {
			t.Errorf("q%.3f = %v, want within [%v, %v*1.125]", tc.q, got, tc.want, tc.want)
		}
	}
	if got := s.Quantile(1); got > time.Duration(s.Max) {
		t.Errorf("q1 = %v beyond max %v", got, time.Duration(s.Max))
	}
	// Degenerate inputs.
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean should be 0")
	}
	if s.Quantile(-1) > s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Error("out-of-range quantiles should clamp")
	}
}

func TestHistogramSnapshotAdd(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	a.Observe(2 * time.Millisecond)
	b.Observe(3 * time.Millisecond)

	sa, sb := a.Snapshot(), b.Snapshot()
	sum := sa.Add(sb)
	if sum.Count != 3 || sum.Sum != (6*time.Millisecond).Nanoseconds() {
		t.Fatalf("merged = %+v", sum)
	}
	if sum.Max != (3 * time.Millisecond).Nanoseconds() {
		t.Fatalf("merged max = %d", sum.Max)
	}
	var total int64
	for _, c := range sum.Counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged bucket total = %d", total)
	}
	// Merging with empty operands (nil Counts) must work in both positions.
	var empty HistogramSnapshot
	if got := sa.Add(empty); got.Count != sa.Count || got.Sum != sa.Sum || got.Max != sa.Max {
		t.Errorf("Add(empty) = %+v", got)
	}
	if got := empty.Add(sa); got.Count != sa.Count || got.Sum != sa.Sum || got.Max != sa.Max {
		t.Errorf("empty.Add = %+v", got)
	}
	if got := empty.Add(empty); got.Counts != nil || got.Count != 0 {
		t.Errorf("empty.Add(empty) = %+v", got)
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while
// snapshots and merges run concurrently; final totals must be exact.
// Run under -race.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 5000
	)
	var h Histogram
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var merged HistogramSnapshot
		for {
			select {
			case <-stop:
				return
			default:
				merged = merged.Add(h.Snapshot())
				_ = merged.Quantile(0.99)
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Nanosecond)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()

	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*perG)
	}
	var total int64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total = %d, want %d", total, s.Count)
	}
	if s.Max != int64(goroutines*perG-1) {
		t.Fatalf("max = %d, want %d", s.Max, goroutines*perG-1)
	}
}

// BenchmarkHistogramObserve measures the hot-path cost of one Observe —
// it must be allocation-free (the acceptance bar for keeping the
// histogram on the store's hit path).
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

// BenchmarkHistogramObserveParallel is the striping rationale: concurrent
// observers should scale instead of serializing on one cache line.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Observe(time.Duration(i) * time.Nanosecond)
		}
	})
}
