package metrics

import "testing"

func TestFailureWindowCountsWithinRing(t *testing.T) {
	w := NewFailureWindow(4)
	if w.Size() != 4 || w.Len() != 0 || w.Failures() != 0 {
		t.Fatalf("fresh window: size=%d len=%d fails=%d", w.Size(), w.Len(), w.Failures())
	}
	w.Observe(true)
	w.Observe(false)
	w.Observe(true)
	if w.Len() != 3 || w.Failures() != 2 {
		t.Fatalf("after 3 observations: len=%d fails=%d, want 3/2", w.Len(), w.Failures())
	}
}

func TestFailureWindowEvictsOldest(t *testing.T) {
	w := NewFailureWindow(3)
	w.Observe(true)
	w.Observe(true)
	w.Observe(true)
	if w.Failures() != 3 {
		t.Fatalf("full of failures: fails=%d", w.Failures())
	}
	// Each success evicts one of the failures.
	for i := 3; i > 0; i-- {
		w.Observe(false)
		if w.Failures() != i-1 {
			t.Fatalf("after %d successes: fails=%d, want %d", 4-i, w.Failures(), i-1)
		}
	}
	if w.Len() != 3 {
		t.Fatalf("len=%d, want saturated 3", w.Len())
	}
}

func TestFailureWindowReset(t *testing.T) {
	w := NewFailureWindow(2)
	w.Observe(true)
	w.Observe(true)
	w.Reset()
	if w.Len() != 0 || w.Failures() != 0 {
		t.Fatalf("after reset: len=%d fails=%d", w.Len(), w.Failures())
	}
	w.Observe(false)
	w.Observe(true)
	if w.Failures() != 1 {
		t.Fatalf("after reset+observe: fails=%d, want 1", w.Failures())
	}
}

func TestFailureWindowMinimumSize(t *testing.T) {
	w := NewFailureWindow(0)
	if w.Size() != 1 {
		t.Fatalf("size=%d, want clamped 1", w.Size())
	}
	w.Observe(true)
	w.Observe(false)
	if w.Failures() != 0 || w.Len() != 1 {
		t.Fatalf("1-slot window: fails=%d len=%d", w.Failures(), w.Len())
	}
}
