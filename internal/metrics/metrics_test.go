package metrics

import (
	"math"
	"testing"
)

func TestMinuteSeriesAccumulation(t *testing.T) {
	var m MinuteSeries
	m.AddReads(5, 10)
	m.AddReads(5, 2)
	m.AddWrites(3, 4)
	m.AddReads(-1, 100) // ignored
	if m.Len() != 6 {
		t.Errorf("Len = %d, want 6", m.Len())
	}
	loads := m.Loads(0)
	if loads[5].ReadPages != 12 || loads[3].WritePages != 4 {
		t.Errorf("loads = %+v", loads)
	}
	if loads[5].Minute != 5 {
		t.Error("minute index wrong")
	}
	if m.TotalReads() != 12 || m.TotalWrites() != 4 {
		t.Errorf("totals = %v,%v", m.TotalReads(), m.TotalWrites())
	}
}

func TestLoadsPadding(t *testing.T) {
	var m MinuteSeries
	m.AddWrites(2, 1)
	loads := m.Loads(10)
	if len(loads) != 10 {
		t.Fatalf("len = %d", len(loads))
	}
	for i, l := range loads {
		if l.Minute != i {
			t.Fatalf("minute %d has index %d", i, l.Minute)
		}
	}
	if loads[9].ReadPages != 0 || loads[2].WritePages != 1 {
		t.Error("padding wrong")
	}
	// Padding shorter than the active range keeps all active minutes.
	if got := m.Loads(1); len(got) != 3 {
		t.Errorf("short pad len = %d", len(got))
	}
}

func TestScaleLoads(t *testing.T) {
	var m MinuteSeries
	m.AddReads(0, 3)
	m.AddWrites(0, 2)
	scaled := ScaleLoads(m.Loads(1), 512)
	if math.Abs(scaled[0].ReadPages-1536) > 1e-9 || math.Abs(scaled[0].WritePages-1024) > 1e-9 {
		t.Errorf("scaled = %+v", scaled[0])
	}
	// Original untouched.
	if m.Loads(1)[0].ReadPages != 3 {
		t.Error("ScaleLoads mutated source")
	}
}

func TestEmptySeries(t *testing.T) {
	var m MinuteSeries
	if m.Len() != 0 || m.TotalReads() != 0 || m.TotalWrites() != 0 {
		t.Error("zero value not empty")
	}
	if got := m.Loads(0); len(got) != 0 {
		t.Errorf("empty Loads = %v", got)
	}
}
