package metrics

// FailureWindow tracks the outcomes of the most recent N operations in a
// fixed ring, exposing how many of them failed. It is the arithmetic under
// a circuit breaker: the breaker trips when the failure count in the
// window crosses its threshold, which tolerates isolated errors on a
// mostly-healthy device while reacting within N requests to a dead one.
//
// The zero value is unusable; make one with NewFailureWindow. It is not
// safe for concurrent use — callers (the breaker) serialize access.
type FailureWindow struct {
	ring  []bool // true = failure
	count int    // observations recorded, saturating at len(ring)
	idx   int    // next slot to overwrite
	fails int    // failures currently in the ring
}

// NewFailureWindow returns a window over the last size outcomes (size ≥ 1).
func NewFailureWindow(size int) *FailureWindow {
	if size < 1 {
		size = 1
	}
	return &FailureWindow{ring: make([]bool, size)}
}

// Observe records one operation outcome, evicting the oldest.
func (w *FailureWindow) Observe(failed bool) {
	if w.count == len(w.ring) {
		if w.ring[w.idx] {
			w.fails--
		}
	} else {
		w.count++
	}
	w.ring[w.idx] = failed
	if failed {
		w.fails++
	}
	w.idx++
	if w.idx == len(w.ring) {
		w.idx = 0
	}
}

// Failures returns how many of the recorded outcomes in the window failed.
func (w *FailureWindow) Failures() int { return w.fails }

// Len returns how many outcomes are currently recorded (≤ Size).
func (w *FailureWindow) Len() int { return w.count }

// Size returns the window capacity.
func (w *FailureWindow) Size() int { return len(w.ring) }

// Reset forgets all recorded outcomes.
func (w *FailureWindow) Reset() {
	for i := range w.ring {
		w.ring[i] = false
	}
	w.count, w.idx, w.fails = 0, 0, 0
}
