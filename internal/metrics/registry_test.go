package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPromName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"sievestore.core.read_hits", "sievestore_core_read_hits"},
		{"already_legal:name", "already_legal:name"},
		{"9starts.with.digit", "_9starts_with_digit"},
		{"weird-chars/here", "weird_chars_here"},
	} {
		if got := promName(tc.in); got != tc.want {
			t.Errorf("promName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	var prepared int
	r.OnCollect(func() { prepared++ })
	r.Counter("test.reads", func() int64 { return 42 })
	r.Gauge("test.ratio", func() float64 { return 0.5 })

	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second)
	r.Histogram("test.latency", func() HistogramSnapshot { return h.Snapshot() })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if prepared != 1 {
		t.Errorf("prepare hook ran %d times, want 1", prepared)
	}
	for _, want := range []string{
		"# TYPE test_reads counter\ntest_reads 42\n",
		"# TYPE test_ratio gauge\ntest_ratio 0.5\n",
		"# TYPE test_latency histogram\n",
		"test_latency_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Parse the histogram series: buckets must be cumulative and monotone,
	// le values monotone, and +Inf must equal _count.
	var lastCum int64 = -1
	lastLE := -1.0
	var infCount, count int64 = -1, -1
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "test_latency_bucket{le=\"+Inf\"}") {
			fmt.Sscanf(line, "test_latency_bucket{le=\"+Inf\"} %d", &infCount)
			continue
		}
		if strings.HasPrefix(line, "test_latency_bucket{le=") {
			var le float64
			var c int64
			if _, err := fmt.Sscanf(line, "test_latency_bucket{le=%q} %d", &le, &c); err != nil {
				// Sscanf can't parse %q into float64; split manually.
				parts := strings.SplitN(line, "\"", 3)
				le, _ = strconv.ParseFloat(parts[1], 64)
				fields := strings.Fields(parts[2])
				c, _ = strconv.ParseInt(fields[len(fields)-1], 10, 64)
			}
			if le <= lastLE {
				t.Errorf("le not increasing: %g after %g", le, lastLE)
			}
			if c <= lastCum {
				t.Errorf("bucket counts not cumulative: %d after %d", c, lastCum)
			}
			lastLE, lastCum = le, c
			continue
		}
		if strings.HasPrefix(line, "test_latency_count ") {
			fmt.Sscanf(line, "test_latency_count %d", &count)
		}
	}
	if infCount != 3 || count != 3 {
		t.Errorf("+Inf=%d count=%d, want 3/3", infCount, count)
	}
	if lastCum != 3 {
		t.Errorf("last finite bucket = %d, want 3", lastCum)
	}
}

func TestRegistryJSONStatus(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", func() int64 { return 7 })
	r.Gauge("g", func() float64 { return 1.25 })
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	r.Histogram("lat", func() HistogramSnapshot { return h.Snapshot() })

	status := r.JSONStatus()
	if status["c"].(float64) != 7 || status["g"].(float64) != 1.25 {
		t.Errorf("scalars = %v / %v", status["c"], status["g"])
	}
	hs, ok := status["lat"].(HistogramStatus)
	if !ok {
		t.Fatalf("lat is %T", status["lat"])
	}
	if hs.Count != 100 || hs.MaxNS != (100*time.Microsecond).Nanoseconds() {
		t.Errorf("histogram status = %+v", hs)
	}
	if hs.P50NS < (50*time.Microsecond).Nanoseconds() || hs.P99NS < hs.P50NS {
		t.Errorf("quantiles out of order: %+v", hs)
	}
	// The whole map must survive a round trip through encoding/json.
	b, err := json.Marshal(status)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]any
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["lat"].(map[string]any)["count"].(float64) != 100 {
		t.Errorf("round-tripped count = %v", back["lat"])
	}
}

func TestRegistryNamesAndOverwrite(t *testing.T) {
	r := NewRegistry()
	r.Counter("b", func() int64 { return 1 })
	r.Gauge("a", func() float64 { return 2 })
	r.Histogram("c", func() HistogramSnapshot { return HistogramSnapshot{} })
	names := r.Names()
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
	// Last registration wins.
	r.Counter("b", func() int64 { return 99 })
	if v := r.JSONStatus()["b"].(float64); v != 99 {
		t.Errorf("re-registered counter = %v", v)
	}
}

func TestRegistryEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("empty", func() HistogramSnapshot { return HistogramSnapshot{} })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// No finite buckets, but +Inf/_sum/_count must still appear with zeros.
	for _, want := range []string{
		"empty_bucket{le=\"+Inf\"} 0\n", "empty_sum 0\n", "empty_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrent registers, collects, and renders concurrently.
// Run under -race.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var h Histogram
	r.Histogram("lat", func() HistogramSnapshot { return h.Snapshot() })
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				i++
				name := fmt.Sprintf("worker%d.counter%d", w, i%8)
				v := int64(i)
				r.Counter(name, func() int64 { return v })
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		_ = r.JSONStatus()
		_ = r.Names()
	}
	close(stop)
	wg.Wait()
}
