package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestOpLatencyBasic(t *testing.T) {
	var l OpLatency
	l.Observe(10*time.Millisecond, false)
	l.Observe(30*time.Millisecond, true)
	l.Observe(20*time.Millisecond, false)

	s := l.Snapshot()
	if s.Ops != 3 || s.Errors != 1 {
		t.Fatalf("ops/errors = %d/%d, want 3/1", s.Ops, s.Errors)
	}
	if s.TotalNanos != int64(60*time.Millisecond) {
		t.Errorf("total = %d", s.TotalNanos)
	}
	if s.MaxNanos != int64(30*time.Millisecond) {
		t.Errorf("max = %d", s.MaxNanos)
	}
	if got := s.Mean(); got != 20*time.Millisecond {
		t.Errorf("mean = %v, want 20ms", got)
	}
	if got := s.Throughput(2 * time.Second); got != 1.5 {
		t.Errorf("throughput = %v, want 1.5 ops/s", got)
	}
}

func TestOpLatencyZeroValues(t *testing.T) {
	var s OpLatencySnapshot
	if s.Mean() != 0 {
		t.Error("mean of empty snapshot should be 0")
	}
	if s.Throughput(time.Second) != 0 {
		t.Error("throughput of empty snapshot should be 0")
	}
	if s.Throughput(0) != 0 {
		t.Error("throughput over zero elapsed should be 0, not +Inf")
	}
	// Negative durations are clamped, not allowed to corrupt the counters.
	var l OpLatency
	l.Observe(-time.Second, false)
	if got := l.Snapshot(); got.TotalNanos != 0 || got.MaxNanos != 0 || got.Ops != 1 {
		t.Errorf("negative observe: %+v", got)
	}
}

func TestOpLatencySnapshotAdd(t *testing.T) {
	loaded := OpLatencySnapshot{Ops: 2, Errors: 1, TotalNanos: 100, MaxNanos: 70}
	other := OpLatencySnapshot{Ops: 3, Errors: 0, TotalNanos: 50, MaxNanos: 90}
	for _, tc := range []struct {
		name string
		a, b OpLatencySnapshot
		want OpLatencySnapshot
	}{
		{"both loaded", loaded, other,
			OpLatencySnapshot{Ops: 5, Errors: 1, TotalNanos: 150, MaxNanos: 90}},
		{"empty left", OpLatencySnapshot{}, loaded, loaded},
		{"empty right", loaded, OpLatencySnapshot{}, loaded},
		{"both empty", OpLatencySnapshot{}, OpLatencySnapshot{}, OpLatencySnapshot{}},
		{"max from left", OpLatencySnapshot{MaxNanos: 5}, OpLatencySnapshot{MaxNanos: 3},
			OpLatencySnapshot{MaxNanos: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Add(tc.b); got != tc.want {
				t.Errorf("Add = %+v, want %+v", got, tc.want)
			}
			// Add must be commutative.
			if got := tc.b.Add(tc.a); got != tc.want {
				t.Errorf("Add not commutative: %+v, want %+v", got, tc.want)
			}
		})
	}
}

func TestOpLatencySnapshotEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name     string
		s        OpLatencySnapshot
		elapsed  time.Duration
		wantMean time.Duration
		wantTput float64
		wantRate float64
	}{
		{"empty", OpLatencySnapshot{}, time.Second, 0, 0, 0},
		{"zero elapsed", OpLatencySnapshot{Ops: 4, TotalNanos: 400}, 0, 100, 0, 0},
		{"negative elapsed", OpLatencySnapshot{Ops: 4, TotalNanos: 400}, -time.Second, 100, 0, 0},
		{"negative ops", OpLatencySnapshot{Ops: -3, TotalNanos: 100, Errors: -1}, time.Second, 0, 0, 0},
		{"normal", OpLatencySnapshot{Ops: 2, Errors: 1, TotalNanos: 200}, time.Second, 100, 2, 0.5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.s.Mean(); got != tc.wantMean {
				t.Errorf("Mean = %v, want %v", got, tc.wantMean)
			}
			if got := tc.s.Throughput(tc.elapsed); got != tc.wantTput {
				t.Errorf("Throughput = %v, want %v", got, tc.wantTput)
			}
			if got := tc.s.ErrorRate(); got != tc.wantRate {
				t.Errorf("ErrorRate = %v, want %v", got, tc.wantRate)
			}
		})
	}
}

func TestOpLatencyConcurrent(t *testing.T) {
	const (
		goroutines = 8
		perG       = 1000
	)
	var l OpLatency
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Observe(time.Duration(i)*time.Microsecond, i%10 == 0)
			}
		}(g)
	}
	wg.Wait()

	s := l.Snapshot()
	if s.Ops != goroutines*perG {
		t.Errorf("ops = %d, want %d", s.Ops, goroutines*perG)
	}
	if s.Errors != goroutines*perG/10 {
		t.Errorf("errors = %d, want %d", s.Errors, goroutines*perG/10)
	}
	wantTotal := int64(goroutines) * int64(perG) * int64(perG-1) / 2 * 1000
	if s.TotalNanos != wantTotal {
		t.Errorf("total = %d, want %d", s.TotalNanos, wantTotal)
	}
	if s.MaxNanos != int64((perG-1)*1000) {
		t.Errorf("max = %d, want %d", s.MaxNanos, (perG-1)*1000)
	}
}
