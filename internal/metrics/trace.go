package metrics

import (
	"sync"
	"sync/atomic"
)

// OpTrace is one sampled operation's lifecycle record: where the request
// went (shard, cache, sieve, backend) and what it cost. Counts are in
// 512-byte blocks.
type OpTrace struct {
	Seq       uint64 `json:"seq"`                 // monotone per-ring sequence
	StartNS   int64  `json:"start_unix_ns"`       // arrival, UnixNano
	Op        string `json:"op"`                  // "read" or "write"
	Server    int    `json:"server"`              //
	Volume    int    `json:"volume"`              //
	Offset    uint64 `json:"offset"`              // byte offset
	Blocks    int    `json:"blocks"`              // request size in blocks
	Shard     int    `json:"shard"`               // shard of the first block
	Hits      int    `json:"hits"`                // blocks served/updated in cache
	TierHits  int    `json:"tier_hits,omitempty"` // of Hits, blocks served from the RAM tier
	Misses    int    `json:"misses"`              // blocks this op fetched/wrote through
	Coalesced int    `json:"coalesced"`           // blocks joined onto another op's flight
	Admitted  int    `json:"admitted"`            // blocks the sieve admitted (alloc writes)
	Bypass    bool   `json:"bypass,omitempty"`    // served on the degraded pass-through path
	Degraded  bool   `json:"degraded,omitempty"`  // store was degraded at arrival (probe ops)
	Err       string `json:"err,omitempty"`       // operation error, if any
	LatencyNS int64  `json:"latency_ns"`          // whole-call service time
}

// TraceRing is a fixed-size ring of sampled OpTrace records. Sampling is
// an atomic counter (Sample returns true for one in every sampleEvery
// calls — the unsampled hot path costs one atomic add); recording a
// sampled op takes a mutex, which is off the common path by construction.
// The zero-size ring is invalid; use NewTraceRing.
type TraceRing struct {
	sampleEvery uint64
	ctr         atomic.Uint64
	seq         atomic.Uint64

	mu   sync.Mutex
	recs []OpTrace
	n    int // records written, saturating at len(recs)
	next int // ring cursor
}

// NewTraceRing returns a ring holding the last size sampled records,
// sampling one in every sampleEvery operations (1 = every op).
func NewTraceRing(size int, sampleEvery int) *TraceRing {
	if size < 1 {
		size = 1
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	return &TraceRing{sampleEvery: uint64(sampleEvery), recs: make([]OpTrace, size)}
}

// Sample reports whether the current operation should be traced.
func (t *TraceRing) Sample() bool {
	if t.sampleEvery == 1 {
		return true
	}
	return t.ctr.Add(1)%t.sampleEvery == 0
}

// Record stores rec in the ring, stamping its sequence number.
func (t *TraceRing) Record(rec OpTrace) {
	rec.Seq = t.seq.Add(1)
	t.mu.Lock()
	t.recs[t.next] = rec
	t.next = (t.next + 1) % len(t.recs)
	if t.n < len(t.recs) {
		t.n++
	}
	t.mu.Unlock()
}

// Dump returns the ring's records, newest first.
func (t *TraceRing) Dump() []OpTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]OpTrace, 0, t.n)
	for i := 1; i <= t.n; i++ {
		out = append(out, t.recs[(t.next-i+len(t.recs))%len(t.recs)])
	}
	return out
}

// Len returns how many records the ring currently holds.
func (t *TraceRing) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}
