package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind distinguishes how a scalar metric is exported: counters are
// monotone totals, gauges are instantaneous levels.
type Kind int

const (
	// KindCounter is a monotonically non-decreasing total.
	KindCounter Kind = iota
	// KindGauge is an instantaneous level that can go up and down.
	KindGauge
)

// Registry collects named metrics — scalars read through getter functions
// and histograms read through snapshot functions — under stable dotted
// names (e.g. "sievestore.core.read_hits"), and renders them as
// Prometheus text format or a JSON-friendly map. Registration is cheap
// and idempotent per name (last registration wins); collection calls the
// getters at scrape time, so the registry itself holds no counter state.
// It is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	scalars  map[string]scalarEntry
	hists    map[string]func() HistogramSnapshot
	prepares []func()
}

type scalarEntry struct {
	kind Kind
	fn   func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		scalars: make(map[string]scalarEntry),
		hists:   make(map[string]func() HistogramSnapshot),
	}
}

// OnCollect registers fn to run once at the start of every collection
// (WritePrometheus, JSONStatus). Producers whose counters are expensive to
// snapshot (e.g. a cross-shard stats merge) refresh one cached snapshot
// here and register cheap field getters against it.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.prepares = append(r.prepares, fn)
}

// Counter registers a monotone total under name.
func (r *Registry) Counter(name string, fn func() int64) {
	r.scalar(name, KindCounter, func() float64 { return float64(fn()) })
}

// Gauge registers an instantaneous level under name.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.scalar(name, KindGauge, fn)
}

func (r *Registry) scalar(name string, kind Kind, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scalars[name] = scalarEntry{kind: kind, fn: fn}
}

// Histogram registers a histogram under name; fn is called at scrape time.
func (r *Registry) Histogram(name string, fn func() HistogramSnapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists[name] = fn
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.scalars)+len(r.hists))
	for n := range r.scalars {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// collect snapshots the registry under the read lock after running the
// prepare hooks.
func (r *Registry) collect() (scalars map[string]scalarSample, hists map[string]HistogramSnapshot) {
	r.mu.RLock()
	prepares := r.prepares
	r.mu.RUnlock()
	for _, p := range prepares {
		p()
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	scalars = make(map[string]scalarSample, len(r.scalars))
	for n, e := range r.scalars {
		scalars[n] = scalarSample{kind: e.kind, value: e.fn()}
	}
	hists = make(map[string]HistogramSnapshot, len(r.hists))
	for n, fn := range r.hists {
		hists[n] = fn()
	}
	return scalars, hists
}

type scalarSample struct {
	kind  Kind
	value float64
}

// promName converts a dotted metric name to a Prometheus-legal one:
// every character outside [a-zA-Z0-9_:] becomes '_'.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, sorted by name. Histograms are emitted with
// cumulative `le` buckets in seconds (only non-empty buckets plus +Inf,
// which keeps the output compact while remaining quantile-derivable),
// plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	scalars, hists := r.collect()
	names := make([]string, 0, len(scalars)+len(hists))
	for n := range scalars {
		names = append(names, n)
	}
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if s, ok := scalars[name]; ok {
			kind := "counter"
			if s.kind == KindGauge {
				kind = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %v\n", pn, kind, pn, s.value); err != nil {
				return err
			}
			continue
		}
		h := hists[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			cum += c
			le := float64(BucketUpper(i)) / 1e9
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, fmt.Sprintf("%g", le), cum); err != nil {
				return err
			}
		}
		// +Inf and _count repeat the cumulative bucket total (not h.Count,
		// which can drift by an in-flight Observe between stripe reads) so
		// the exposition is internally consistent, as Prometheus requires.
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
			pn, cum, pn, float64(h.Sum)/1e9, pn, cum); err != nil {
			return err
		}
	}
	return nil
}

// HistogramStatus is the JSON rendering of one histogram: totals plus
// derived quantiles (nanoseconds).
type HistogramStatus struct {
	Count  int64 `json:"count"`
	SumNS  int64 `json:"sum_ns"`
	MaxNS  int64 `json:"max_ns"`
	MeanNS int64 `json:"mean_ns"`
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
}

func histStatus(h HistogramSnapshot) HistogramStatus {
	return HistogramStatus{
		Count:  h.Count,
		SumNS:  h.Sum,
		MaxNS:  h.Max,
		MeanNS: h.Mean().Nanoseconds(),
		P50NS:  h.Quantile(0.50).Nanoseconds(),
		P95NS:  h.Quantile(0.95).Nanoseconds(),
		P99NS:  h.Quantile(0.99).Nanoseconds(),
		P999NS: h.Quantile(0.999).Nanoseconds(),
	}
}

// JSONStatus returns every registered metric as a JSON-encodable map:
// scalars under their dotted names, histograms as HistogramStatus
// objects. This is the /statusz body (the same data as /metrics, shaped
// for programs and humans rather than scrapers).
func (r *Registry) JSONStatus() map[string]any {
	scalars, hists := r.collect()
	out := make(map[string]any, len(scalars)+len(hists))
	for n, s := range scalars {
		out[n] = s.value
	}
	for n, h := range hists {
		out[n] = histStatus(h)
	}
	return out
}

// Uptime is a convenience gauge: registers name as seconds since start.
func (r *Registry) Uptime(name string, start time.Time, now func() time.Time) {
	if now == nil {
		now = time.Now
	}
	r.Gauge(name, func() float64 { return now().Sub(start).Seconds() })
}
