package sim

import (
	"fmt"

	"repro/internal/sieve"
	"repro/internal/ssd"
)

// This file simulates *real* per-server caching configurations (the paper's
// quadrants III and IV): one independent cache per server, each with an
// equal slice of the total capacity and its own allocation policy instance.
// Unlike the oracle per-server analyses in harness.go, these run the full
// continuous cache simulation per server, so they can be compared 1:1
// against the shared ensemble-level runs.

// PolicyFactory builds a fresh policy instance for one server's private
// cache. Each server must get its own instance: sieve metastate must not be
// shared across private caches.
type PolicyFactory func(server int) (sieve.Policy, error)

// RunPerServerContinuous simulates `servers` private caches, each of
// capacity totalCapacityBlocks/servers, and returns the aggregated result
// plus the per-server results. Requests are routed by their Server field;
// requests from servers ≥ `servers` are rejected.
func RunPerServerContinuous(tr Trace, servers, totalCapacityBlocks int, factory PolicyFactory) (*Result, []*Result, error) {
	if servers < 1 {
		return nil, nil, fmt.Errorf("sim: servers must be ≥1, got %d", servers)
	}
	perCap := totalCapacityBlocks / servers
	if perCap < 1 {
		return nil, nil, fmt.Errorf("sim: capacity %d too small for %d servers", totalCapacityBlocks, servers)
	}
	sims := make([]*Continuous, servers)
	for s := range sims {
		policy, err := factory(s)
		if err != nil {
			return nil, nil, err
		}
		sims[s] = NewContinuous(perCap, policy)
	}
	totalMinutes := 0
	for d := 0; d < tr.Days(); d++ {
		reqs, err := tr.Day(d)
		if err != nil {
			return nil, nil, err
		}
		for i := range reqs {
			s := reqs[i].Server
			if s < 0 || s >= servers {
				return nil, nil, fmt.Errorf("sim: request for unknown server %d", s)
			}
			sims[s].Process(&reqs[i])
		}
		totalMinutes = (d + 1) * 24 * 60
	}
	perServer := make([]*Result, servers)
	for s, c := range sims {
		perServer[s] = c.Result(totalMinutes)
		perServer[s].Name = fmt.Sprintf("%s[server %d]", perServer[s].Name, s)
	}
	combined := CombineResults("per-server "+perServer[0].Name, totalMinutes, perServer)
	return combined, perServer, nil
}

// CombineResults merges several simulation results into one aggregate: day
// statistics add; minute loads add element-wise. Used for per-server
// configurations whose caches are separate devices — note that for *drive
// provisioning* the per-server loads must NOT be combined (each private
// cache needs its own drive); use the individual results for Figure 9-style
// analyses of private configurations.
func CombineResults(name string, totalMinutes int, results []*Result) *Result {
	out := &Result{Name: name}
	maxDays := 0
	for _, r := range results {
		if len(r.Days) > maxDays {
			maxDays = len(r.Days)
		}
	}
	out.day(maxDays - 1) // allocate
	for _, r := range results {
		for _, d := range r.Days {
			agg := out.day(d.Day)
			agg.Accesses += d.Accesses
			agg.Reads += d.Reads
			agg.Writes += d.Writes
			agg.ReadHits += d.ReadHits
			agg.WriteHits += d.WriteHits
			agg.AllocWrites += d.AllocWrites
			agg.Evictions += d.Evictions
			agg.Moves += d.Moves
		}
	}
	n := totalMinutes
	for _, r := range results {
		if len(r.Minutes) > n {
			n = len(r.Minutes)
		}
	}
	out.Minutes = make([]ssd.MinuteLoad, n)
	for i := range out.Minutes {
		out.Minutes[i].Minute = i
	}
	for _, r := range results {
		for _, l := range r.Minutes {
			out.Minutes[l.Minute].ReadPages += l.ReadPages
			out.Minutes[l.Minute].WritePages += l.WritePages
		}
	}
	return out
}

// PerServerDriveNeeds computes the §5.3 cost side for private caches: each
// server's cache is a separate physical SSD, so the ensemble needs at least
// one drive per *active* server plus extra drives wherever a private
// cache's per-minute load exceeds one drive. Returns the total drives
// needed at the given time-coverage.
func PerServerDriveNeeds(spec *ssd.DeviceSpec, perServer []*Result, coverage float64) int {
	total := 0
	for _, r := range perServer {
		sorted := ssd.DrivesNeeded(spec, r.Minutes)
		d := ssd.DrivesAtCoverage(sorted, coverage)
		if d < 1 {
			// Even an idle private cache occupies a physical drive slot —
			// the minimum-drive-size problem the paper notes for
			// per-server deployment.
			d = 1
		}
		total += d
	}
	return total
}
