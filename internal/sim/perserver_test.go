package sim

import (
	"testing"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// skewedTwoServerTrace: server 0 has a hot block; server 1 only one-shots.
// The shared cache can dedicate all frames to server 0's hot set; the
// private split wastes server 1's half — the core §5.3 effect.
func skewedTwoServerTrace(hotBlocks int) Trace {
	day := func(d int) []block.Request {
		base := int64(d) * trace.Day
		var reqs []block.Request
		for h := 0; h < hotBlocks; h++ {
			for i := 0; i < 40; i++ {
				reqs = append(reqs, block.Request{
					Time:   base + int64(i)*int64(trace.Minute) + int64(h),
					Server: 0, Kind: block.Read,
					Offset: uint64(h) * block.Size, Length: block.Size,
				})
			}
		}
		for i := 0; i < 200; i++ {
			reqs = append(reqs, block.Request{
				Time:   base + int64(i)*int64(trace.Minute) + 777,
				Server: 1, Kind: block.Read,
				Offset: uint64(1000+400*d+i) * block.Size, Length: block.Size,
			})
		}
		trace.SortByTime(reqs)
		return reqs
	}
	return NewSliceTrace(day(0), day(1))
}

func aodFactory(int) (sieve.Policy, error) { return sieve.AOD{}, nil }

func TestRunPerServerContinuous(t *testing.T) {
	tr := skewedTwoServerTrace(8)
	combined, perServer, err := RunPerServerContinuous(tr, 2, 12, aodFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(perServer) != 2 {
		t.Fatalf("per-server results: %d", len(perServer))
	}
	// Server 0's 6-block private cache cannot hold its 8 hot blocks: a
	// round-robin scan over 8 blocks through a 6-frame LRU thrashes to
	// zero hits. The 12-frame shared cache holds all 8 with slack for the
	// cold churn.
	shared, err := RunContinuous(tr, 12, sieve.AOD{})
	if err != nil {
		t.Fatal(err)
	}
	if shared.Total().Hits() <= combined.Total().Hits() {
		t.Errorf("shared cache (%d hits) should beat private split (%d hits)",
			shared.Total().Hits(), combined.Total().Hits())
	}
	// The combined result must exactly sum the per-server ones.
	var sum int64
	for _, r := range perServer {
		sum += r.Total().Accesses
	}
	if combined.Total().Accesses != sum {
		t.Errorf("combined accesses %d != sum %d", combined.Total().Accesses, sum)
	}
	if combined.Total().Accesses != shared.Total().Accesses {
		t.Errorf("configurations saw different streams: %d vs %d",
			combined.Total().Accesses, shared.Total().Accesses)
	}
}

func TestRunPerServerContinuousValidation(t *testing.T) {
	tr := skewedTwoServerTrace(2)
	if _, _, err := RunPerServerContinuous(tr, 0, 8, aodFactory); err == nil {
		t.Error("zero servers accepted")
	}
	if _, _, err := RunPerServerContinuous(tr, 16, 8, aodFactory); err == nil {
		t.Error("capacity smaller than server count accepted")
	}
	// Requests from servers beyond the configured count must be rejected.
	if _, _, err := RunPerServerContinuous(tr, 1, 8, aodFactory); err == nil {
		t.Error("unknown-server request accepted")
	}
}

func TestCombineResultsMinuteLoads(t *testing.T) {
	a := &Result{Name: "a", Days: []DayStats{{Day: 0, Accesses: 10, ReadHits: 5, Reads: 10}},
		Minutes: []ssd.MinuteLoad{{Minute: 0, ReadPages: 3}}}
	b := &Result{Name: "b", Days: []DayStats{{Day: 0, Accesses: 20, ReadHits: 2, Reads: 20}},
		Minutes: []ssd.MinuteLoad{{Minute: 0, ReadPages: 1, WritePages: 4}, {Minute: 1, WritePages: 2}}}
	c := CombineResults("both", 3, []*Result{a, b})
	if c.Total().Accesses != 30 || c.Total().ReadHits != 7 {
		t.Errorf("combined day stats: %+v", c.Total())
	}
	if len(c.Minutes) != 3 {
		t.Fatalf("minutes = %d", len(c.Minutes))
	}
	if c.Minutes[0].ReadPages != 4 || c.Minutes[0].WritePages != 4 || c.Minutes[1].WritePages != 2 {
		t.Errorf("minute merge wrong: %+v", c.Minutes[:2])
	}
}

func TestPerServerDriveNeeds(t *testing.T) {
	spec := ssd.IntelX25E()
	// Two idle private caches still need two physical drives.
	idle := []*Result{
		{Minutes: []ssd.MinuteLoad{{Minute: 0}}},
		{Minutes: []ssd.MinuteLoad{{Minute: 0}}},
	}
	if got := PerServerDriveNeeds(&spec, idle, 0.999); got != 2 {
		t.Errorf("idle drives = %d, want 2", got)
	}
	// One server needing 2 drives plus one idle = 3 total.
	hot := []*Result{
		{Minutes: []ssd.MinuteLoad{{Minute: 0, ReadPages: 35000 * 61}}},
		{Minutes: []ssd.MinuteLoad{{Minute: 0}}},
	}
	if got := PerServerDriveNeeds(&spec, hot, 1.0); got != 3 {
		t.Errorf("hot drives = %d, want 3", got)
	}
}
