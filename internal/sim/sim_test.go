package sim

import (
	"testing"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/trace"
)

func req(t int64, n uint64, kind block.Kind) block.Request {
	return block.Request{Time: t, Server: 0, Volume: 0, Kind: kind, Offset: n * block.Size, Length: block.Size}
}

func TestContinuousAODBasics(t *testing.T) {
	c := NewContinuous(10, sieve.AOD{})
	// First access misses and allocates; second hits.
	c.Process(&[]block.Request{req(0, 1, block.Read)}[0])
	r2 := req(1000, 1, block.Read)
	c.Process(&r2)
	r3 := req(2000, 1, block.Write)
	c.Process(&r3)
	res := c.Result(0)
	d := res.Days[0]
	if d.Accesses != 3 || d.ReadHits != 1 || d.WriteHits != 1 || d.AllocWrites != 1 {
		t.Errorf("day0 = %+v", d)
	}
	if d.Reads != 2 || d.Writes != 1 {
		t.Errorf("kind split wrong: %+v", d)
	}
	if got := d.HitRatio(); got < 0.66 || got > 0.67 {
		t.Errorf("hit ratio = %v", got)
	}
	if d.SSDWrites() != 2 || d.SSDOps() != 3 {
		t.Errorf("ssd ops wrong: %+v", d)
	}
}

func TestContinuousWMNADoesNotAllocateWriteMiss(t *testing.T) {
	c := NewContinuous(10, sieve.WMNA{})
	w := req(0, 1, block.Write)
	c.Process(&w)
	w2 := req(1000, 1, block.Write)
	c.Process(&w2)
	res := c.Result(0)
	d := res.Days[0]
	if d.AllocWrites != 0 || d.Hits() != 0 {
		t.Errorf("write misses should not allocate: %+v", d)
	}
	r := req(2000, 1, block.Read)
	c.Process(&r)
	r2 := req(3000, 1, block.Write)
	c.Process(&r2)
	d = c.Result(0).Days[0]
	if d.AllocWrites != 1 || d.WriteHits != 1 {
		t.Errorf("read miss should allocate: %+v", d)
	}
}

func TestContinuousEvictions(t *testing.T) {
	c := NewContinuous(2, sieve.AOD{})
	for i := uint64(0); i < 5; i++ {
		r := req(int64(i)*1000, i, block.Read)
		c.Process(&r)
	}
	d := c.Result(0).Days[0]
	if d.Evictions != 3 || d.AllocWrites != 5 {
		t.Errorf("stats = %+v", d)
	}
}

func TestContinuousDaySplit(t *testing.T) {
	c := NewContinuous(10, sieve.AOD{})
	r1 := req(0, 1, block.Read)
	r2 := req(trace.Day+5, 1, block.Read)
	c.Process(&r1)
	c.Process(&r2)
	res := c.Result(2 * 24 * 60)
	if len(res.Days) != 2 {
		t.Fatalf("days = %d", len(res.Days))
	}
	if res.Days[0].AllocWrites != 1 || res.Days[1].ReadHits != 1 {
		t.Errorf("days = %+v", res.Days)
	}
	if len(res.Minutes) != 2*24*60 {
		t.Errorf("minutes = %d", len(res.Minutes))
	}
	total := res.Total()
	if total.Accesses != 2 || total.Hits() != 1 {
		t.Errorf("total = %+v", total)
	}
}

func TestContinuousMinuteCharging(t *testing.T) {
	c := NewContinuous(100, sieve.AOD{})
	// A 16-block (2-page) read miss at minute 3; allocation completes at
	// minute 4 (duration pushes completion across the boundary).
	r := block.Request{
		Time:     3 * trace.Minute,
		Duration: trace.Minute + 30*1e9,
		Server:   0, Volume: 0, Kind: block.Read,
		Offset: 0, Length: 16 * block.Size,
	}
	c.Process(&r)
	// A hit of 8 blocks (1 page) at minute 5.
	h := block.Request{Time: 5 * trace.Minute, Server: 0, Volume: 0, Kind: block.Read, Offset: 0, Length: 8 * block.Size}
	c.Process(&h)
	res := c.Result(10)
	if res.Minutes[4].WritePages != 2 {
		t.Errorf("alloc pages at minute 4 = %v", res.Minutes[4].WritePages)
	}
	if res.Minutes[5].ReadPages != 1 {
		t.Errorf("hit pages at minute 5 = %v", res.Minutes[5].ReadPages)
	}
	if res.Minutes[3].ReadPages != 0 || res.Minutes[3].WritePages != 0 {
		t.Errorf("minute 3 should be clean: %+v", res.Minutes[3])
	}
}

func TestPagesRoundsUp(t *testing.T) {
	cases := map[int64]float64{1: 1, 8: 1, 9: 2, 16: 2, 17: 3}
	for blocks, want := range cases {
		if got := pages(blocks); got != want {
			t.Errorf("pages(%d) = %v, want %v", blocks, got, want)
		}
	}
}

func TestDiscreteEpochSets(t *testing.T) {
	k := func(n uint64) block.Key { return block.MakeKey(0, 0, n) }
	day0 := []block.Request{req(10, 1, block.Read), req(20, 2, block.Read)}
	day1 := []block.Request{
		req(trace.Day+10, 1, block.Read),
		req(trace.Day+20, 1, block.Write),
		req(trace.Day+30, 2, block.Read),
	}
	tr := NewSliceTrace(day0, day1)
	sets := [][]block.Key{nil, {k(1)}}
	res, err := RunDiscreteSets("test", tr, 10, sets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Days[0].Hits() != 0 || res.Days[0].Moves != 0 {
		t.Errorf("day0 = %+v", res.Days[0])
	}
	d1 := res.Days[1]
	if d1.ReadHits != 1 || d1.WriteHits != 1 || d1.Moves != 1 {
		t.Errorf("day1 = %+v", d1)
	}
	// Block 2 was not in the epoch set: no allocation ever happens.
	if d1.AllocWrites != 0 || d1.Evictions != 0 {
		t.Errorf("discrete day1 side effects: %+v", d1)
	}
}

func TestDiscreteMovesCancelForRetainedBlocks(t *testing.T) {
	k := func(n uint64) block.Key { return block.MakeKey(0, 0, n) }
	day := func(d int) []block.Request {
		return []block.Request{req(int64(d)*trace.Day+5, 1, block.Read)}
	}
	tr := NewSliceTrace(day(0), day(1), day(2))
	sets := [][]block.Key{{k(1), k(2)}, {k(1), k(2)}, {k(2), k(3)}}
	res, err := RunDiscreteSets("test", tr, 10, sets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Days[0].Moves != 2 {
		t.Errorf("day0 moves = %d", res.Days[0].Moves)
	}
	if res.Days[1].Moves != 0 {
		t.Errorf("day1 moves = %d, want 0 (set unchanged)", res.Days[1].Moves)
	}
	if res.Days[2].Moves != 1 {
		t.Errorf("day2 moves = %d, want 1 (only block 3 moves)", res.Days[2].Moves)
	}
}

func TestDiscreteRejectsOutOfOrderDays(t *testing.T) {
	d := NewDiscrete("test", 4, func(int) []block.Key { return nil })
	r1 := req(trace.Day+1, 1, block.Read)
	r0 := req(1, 1, block.Read)
	if err := d.Process(&r1); err != nil {
		t.Fatal(err)
	}
	if err := d.Process(&r0); err == nil {
		t.Error("want error for day regression")
	}
}

func TestDiscreteSkipsEmptyDays(t *testing.T) {
	calls := []int{}
	d := NewDiscrete("test", 4, func(day int) []block.Key {
		calls = append(calls, day)
		return nil
	})
	r := req(2*trace.Day+1, 1, block.Read)
	if err := d.Process(&r); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 3 || calls[0] != 0 || calls[2] != 2 {
		t.Errorf("beginDay calls = %v", calls)
	}
}
