// Package sim is the trace-driven cache simulator: it drives allocation
// policies over block traces and produces the per-day hit/allocation
// statistics and per-minute SSD load series that all of the paper's
// evaluation figures (5–9 and §5.3) are built from.
//
// Two caching models are supported, mirroring the paper (§3):
//
//   - Continuous: a fully-associative LRU cache consulted on every access,
//     with a sieve.Policy deciding allocation on misses (SieveStore-C, AOD,
//     WMNA, RandSieve-C). Allocation-writes are timed at the originating
//     request's completion (§4) and charged to the SSD load series.
//   - Discrete: a per-epoch resident set with no replacement inside the
//     epoch (SieveStore-D, the per-day Ideal sieve, RandSieve-BlkD). Epoch
//     moves are counted but not charged to the minute series, matching the
//     paper's assumption that batch moves are staggered into slack periods.
package sim

import (
	"fmt"
	"io"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/ssd"
	"repro/internal/trace"
)

// DayStats aggregates one calendar day of simulation, in 512-byte block
// units (the paper's accounting granularity).
type DayStats struct {
	Day         int
	Accesses    int64 // total block accesses
	Reads       int64
	Writes      int64
	ReadHits    int64
	WriteHits   int64
	AllocWrites int64 // blocks written into the cache on allocation
	Evictions   int64
	// Moves counts discrete-epoch batch moves performed at the *start* of
	// this day (blocks copied into the cache; ≤0.5% of accesses for
	// SieveStore-D, §3.2).
	Moves int64
}

// Hits returns total hits.
func (d DayStats) Hits() int64 { return d.ReadHits + d.WriteHits }

// HitRatio returns the fraction of accesses captured.
func (d DayStats) HitRatio() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.Hits()) / float64(d.Accesses)
}

// SSDWrites returns all SSD write operations in block units (write hits
// plus allocation-writes).
func (d DayStats) SSDWrites() int64 { return d.WriteHits + d.AllocWrites }

// SSDOps returns all SSD operations in block units.
func (d DayStats) SSDOps() int64 { return d.ReadHits + d.SSDWrites() }

// Result is a full simulation outcome.
type Result struct {
	Name string
	// Days holds per-calendar-day statistics.
	Days []DayStats
	// Minutes is the SSD load series in trace-scale page operations.
	Minutes []ssd.MinuteLoad
}

// Total sums the per-day statistics.
func (r *Result) Total() DayStats {
	var t DayStats
	t.Day = -1
	for _, d := range r.Days {
		t.Accesses += d.Accesses
		t.Reads += d.Reads
		t.Writes += d.Writes
		t.ReadHits += d.ReadHits
		t.WriteHits += d.WriteHits
		t.AllocWrites += d.AllocWrites
		t.Evictions += d.Evictions
		t.Moves += d.Moves
	}
	return t
}

// day returns the stats bucket for calendar day d, growing as needed.
func (r *Result) day(d int) *DayStats {
	for len(r.Days) <= d {
		r.Days = append(r.Days, DayStats{Day: len(r.Days)})
	}
	return &r.Days[d]
}

// Continuous simulates a continuously-allocated cache under a sieve
// policy. The replacement policy is the tag store's (LRU by default, as in
// the paper; FIFO/CLOCK for the §3.1 replacement ablation).
type Continuous struct {
	cache   cache.TagStore
	policy  sieve.Policy
	result  Result
	minutes metrics.MinuteSeries
	accBuf  []block.Access
}

// NewContinuous returns a simulator over an LRU cache of capacityBlocks
// 512-byte frames (the paper's configuration).
func NewContinuous(capacityBlocks int, policy sieve.Policy) *Continuous {
	return NewContinuousTags(cache.New(capacityBlocks), policy)
}

// NewContinuousTags returns a simulator over an arbitrary tag store
// (replacement policy). The result is named policy/replacement when the
// replacement is not the default LRU.
func NewContinuousTags(tags cache.TagStore, policy sieve.Policy) *Continuous {
	name := policy.Name()
	if tags.Name() != "LRU" {
		name += "/" + tags.Name()
	}
	return &Continuous{
		cache:  tags,
		policy: policy,
		result: Result{Name: name},
	}
}

// Tags exposes the underlying tag store (for tests and warm-start).
func (c *Continuous) Tags() cache.TagStore { return c.cache }

// Process simulates one trace request.
func (c *Continuous) Process(req *block.Request) {
	day := trace.DayOf(req.Time)
	st := c.result.day(day)
	c.accBuf = trace.Expand(c.accBuf[:0], req)
	var readHit, writeHit, alloc int64
	lastAllocTime := req.Time
	for _, acc := range c.accBuf {
		st.Accesses++
		if acc.Kind == block.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		if c.cache.Touch(acc.Key) {
			if acc.Kind == block.Write {
				st.WriteHits++
				writeHit++
			} else {
				st.ReadHits++
				readHit++
			}
			continue
		}
		if c.policy.ShouldAllocate(acc) {
			if _, evicted := c.cache.Insert(acc.Key); evicted {
				st.Evictions++
			}
			st.AllocWrites++
			alloc++
			// Allocation can only start once the data has been fetched
			// from the ensemble: at the (interpolated) completion time.
			lastAllocTime = acc.Time
		}
	}
	// Charge SSD page operations: hits at the request's issue minute,
	// allocation-writes at the completing access's minute. Partial pages
	// are charged as whole pages (§4's conservative cost assessment).
	minute := trace.MinuteOf(req.Time)
	if readHit > 0 {
		c.minutes.AddReads(minute, pages(readHit))
	}
	if writeHit > 0 {
		c.minutes.AddWrites(minute, pages(writeHit))
	}
	if alloc > 0 {
		c.minutes.AddWrites(trace.MinuteOf(lastAllocTime), pages(alloc))
	}
}

// pages converts a block count to whole 4 KiB page operations.
func pages(blocks int64) float64 {
	return float64((blocks + block.BlocksPerPage - 1) / block.BlocksPerPage)
}

// Run drains a trace reader through the simulator.
func (c *Continuous) Run(r trace.Reader) error {
	for {
		req, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.Process(&req)
	}
}

// Result finalizes and returns the simulation result. totalMinutes pads the
// minute series (pass trace length; 0 keeps only active minutes).
func (c *Continuous) Result(totalMinutes int) *Result {
	c.result.Minutes = c.minutes.Loads(totalMinutes)
	return &c.result
}

// EpochSetFunc returns the resident set for a calendar day, hottest block
// first. It is consulted at the start of each day; returning an empty set
// models an unbootstrapped cache (SieveStore-D on day 0).
type EpochSetFunc func(day int) []block.Key

// Discrete simulates epoch-batch caching: at each day boundary the resident
// set is replaced wholesale and then remains fixed for the day (§3.2).
type Discrete struct {
	name     string
	capacity int
	cache    *cache.Cache
	sets     EpochSetFunc
	result   Result
	minutes  metrics.MinuteSeries
	curDay   int
	started  bool
	accBuf   []block.Access
}

// NewDiscrete returns a discrete-epoch simulator.
func NewDiscrete(name string, capacityBlocks int, sets EpochSetFunc) *Discrete {
	return &Discrete{
		name:     name,
		capacity: capacityBlocks,
		cache:    cache.New(capacityBlocks),
		sets:     sets,
		result:   Result{Name: name},
	}
}

// beginDay installs day d's resident set.
func (d *Discrete) beginDay(day int) {
	moved := d.cache.ReplaceAll(d.sets(day))
	st := d.result.day(day)
	st.Moves += int64(moved)
	d.curDay = day
	d.started = true
}

// Process simulates one trace request. Requests must arrive in
// non-decreasing day order.
func (d *Discrete) Process(req *block.Request) error {
	day := trace.DayOf(req.Time)
	if !d.started || day != d.curDay {
		if d.started && day < d.curDay {
			return fmt.Errorf("sim: discrete requests out of day order (%d after %d)", day, d.curDay)
		}
		for nd := d.nextDay(); nd <= day; nd++ {
			d.beginDay(nd)
		}
	}
	st := d.result.day(day)
	d.accBuf = trace.Expand(d.accBuf[:0], req)
	var readHit, writeHit int64
	for _, acc := range d.accBuf {
		st.Accesses++
		if acc.Kind == block.Write {
			st.Writes++
		} else {
			st.Reads++
		}
		if !d.cache.Contains(acc.Key) {
			continue
		}
		if acc.Kind == block.Write {
			st.WriteHits++
			writeHit++
		} else {
			st.ReadHits++
			readHit++
		}
	}
	minute := trace.MinuteOf(req.Time)
	if readHit > 0 {
		d.minutes.AddReads(minute, pages(readHit))
	}
	if writeHit > 0 {
		d.minutes.AddWrites(minute, pages(writeHit))
	}
	return nil
}

func (d *Discrete) nextDay() int {
	if !d.started {
		return 0
	}
	return d.curDay + 1
}

// Run drains a trace reader through the simulator.
func (d *Discrete) Run(r trace.Reader) error {
	for {
		req, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := d.Process(&req); err != nil {
			return err
		}
	}
}

// Result finalizes and returns the simulation result.
func (d *Discrete) Result(totalMinutes int) *Result {
	d.result.Minutes = d.minutes.Loads(totalMinutes)
	return &d.result
}
