package sim

import (
	"testing"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/trace"
)

// hotColdTrace builds a 2-day trace where block 0 is accessed `hot` times
// per day and blocks 1..cold are accessed once each per day.
func hotColdTrace(hot, cold int) Trace {
	day := func(d int) []block.Request {
		base := int64(d) * trace.Day
		var reqs []block.Request
		for i := 0; i < hot; i++ {
			reqs = append(reqs, block.Request{
				Time: base + int64(i+1)*int64(trace.Minute), Kind: block.Read,
				Offset: 0, Length: block.Size,
			})
		}
		for i := 1; i <= cold; i++ {
			reqs = append(reqs, block.Request{
				Time: base + int64(i)*int64(trace.Minute) + 500, Kind: block.Read,
				Offset: uint64(i) * block.Size, Length: block.Size,
			})
		}
		trace.SortByTime(reqs)
		return reqs
	}
	return NewSliceTrace(day(0), day(1))
}

func TestDayCountersAndTopSets(t *testing.T) {
	tr := hotColdTrace(50, 99)
	counters, err := DayCounters(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(counters) != 2 {
		t.Fatal("want 2 days")
	}
	if counters[0].Total() != 149 || counters[0].Unique() != 100 {
		t.Errorf("day0: total=%d unique=%d", counters[0].Total(), counters[0].Unique())
	}
	sets := TopSets(counters, 0.01)
	if len(sets[0]) != 1 || sets[0][0] != block.MakeKey(0, 0, 0) {
		t.Errorf("top set = %v", sets[0])
	}
}

func TestRunIdealCapturesHotBlock(t *testing.T) {
	tr := hotColdTrace(50, 99)
	counters, err := DayCounters(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunIdeal(tr, counters, 1000, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 2; d++ {
		if got := res.Days[d].Hits(); got != 50 {
			t.Errorf("day %d hits = %d, want 50", d, got)
		}
	}
	// Ideal allocates its set at each day's start: day 0 moves the hot
	// block in; day 1 keeps it (same top set).
	if res.Days[0].Moves != 1 || res.Days[1].Moves != 0 {
		t.Errorf("moves = %d,%d", res.Days[0].Moves, res.Days[1].Moves)
	}
}

func TestRunSieveStoreD(t *testing.T) {
	tr := hotColdTrace(50, 99)
	res, err := RunSieveStoreD(tr, 1000, 10, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Day 0: bootstrap, zero hits. Day 1: the hot block (50 accesses ≥ 10)
	// was selected; cold blocks (1 access) were not.
	if res.Days[0].Hits() != 0 {
		t.Errorf("day0 hits = %d", res.Days[0].Hits())
	}
	if res.Days[1].Hits() != 50 {
		t.Errorf("day1 hits = %d, want 50", res.Days[1].Hits())
	}
	if res.Days[1].Moves != 1 {
		t.Errorf("day1 moves = %d, want 1", res.Days[1].Moves)
	}
}

func TestRunContinuousSieveCCatchesHotBlock(t *testing.T) {
	tr := hotColdTrace(200, 99)
	policy, err := sieve.NewC(sieve.DefaultCConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunContinuous(tr, 1000, policy)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Total()
	// The hot block allocates after ~12 misses and hits thereafter:
	// ≥ 380 of 400 hot accesses over two days.
	if total.Hits() < 380 {
		t.Errorf("hits = %d, want most hot accesses", total.Hits())
	}
	// Cold blocks never allocate: allocation-writes stay tiny.
	if total.AllocWrites > 3 {
		t.Errorf("alloc-writes = %d, want ≤3", total.AllocWrites)
	}
}

func TestRunRandBlkD(t *testing.T) {
	tr := hotColdTrace(50, 99)
	counters, err := DayCounters(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunRandBlkD(tr, counters, 1000, 0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Day 1 allocates one random block of day 0's 100: hits are either 50
	// (lucky: picked the hot block) or 1 (a cold block).
	got := res.Days[1].Hits()
	if got != 50 && got != 1 {
		t.Errorf("day1 hits = %d, want 50 or 1", got)
	}
	if res.Days[0].Hits() != 0 {
		t.Errorf("day0 should be empty")
	}
}

func TestPerServerConfigurations(t *testing.T) {
	// Two servers: server 0 hot block with 90 accesses; server 1 only cold
	// singletons. A shared static cache beats an equally-split static one.
	day := func(d int) []block.Request {
		base := int64(d) * trace.Day
		var reqs []block.Request
		for i := 0; i < 90; i++ {
			reqs = append(reqs, block.Request{Time: base + int64(i), Server: 0, Kind: block.Read, Offset: 0, Length: block.Size})
		}
		for i := 1; i <= 30; i++ {
			reqs = append(reqs, block.Request{Time: base + int64(i), Server: 1, Kind: block.Read, Offset: uint64(i) * block.Size, Length: block.Size})
		}
		// A second warm block on server 0.
		for i := 0; i < 10; i++ {
			reqs = append(reqs, block.Request{Time: base + int64(i), Server: 0, Kind: block.Read, Offset: 512, Length: block.Size})
		}
		trace.SortByTime(reqs)
		return reqs
	}
	tr := NewSliceTrace(day(0))
	perServer, err := PerServerDayCounters(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	counters, err := DayCounters(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Elastic per-server top-50%: server 0 keeps its hot block (of 2
	// unique), server 1 keeps 15 singletons.
	elastic := PerServerTopFraction(perServer, 0.5)
	if elastic[0].Hits != 90+15 {
		t.Errorf("elastic hits = %d, want 105", elastic[0].Hits)
	}
	if elastic[0].Accesses != 130 {
		t.Errorf("accesses = %d", elastic[0].Accesses)
	}
	// Static split, 1 block each: server 0 captures 90, server 1 captures 1.
	static := PerServerStatic(perServer, 1)
	if static[0].Hits != 91 {
		t.Errorf("static hits = %d, want 91", static[0].Hits)
	}
	// Shared ensemble cache of the same total (2 blocks) takes the two
	// hottest blocks overall: 90 + 10.
	shared := EnsembleStatic(counters, 2)
	if shared[0].Hits != 100 {
		t.Errorf("shared hits = %d, want 100", shared[0].Hits)
	}
	if shared[0].Hits <= static[0].Hits {
		t.Error("ensemble sharing should beat static partitioning here")
	}
	if got := shared[0].HitRatio(); got < 0.76 || got > 0.78 {
		t.Errorf("shared ratio = %v", got)
	}
}

func TestPerServerTopFractionUsesOwnBlocksOnly(t *testing.T) {
	// All load on server 0; server 1 idle. Elastic per-server caching can
	// still capture server 0's hot set (its own top 1%), but the static
	// split wastes server 1's capacity.
	day0 := []block.Request{}
	for i := 0; i < 200; i++ {
		day0 = append(day0, block.Request{Time: int64(i), Server: 0, Kind: block.Read, Offset: 0, Length: block.Size})
	}
	for i := 1; i <= 99; i++ {
		day0 = append(day0, block.Request{Time: int64(i), Server: 0, Kind: block.Read, Offset: uint64(i) * block.Size, Length: block.Size})
	}
	trace.SortByTime(day0)
	tr := NewSliceTrace(day0)
	perServer, err := PerServerDayCounters(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	elastic := PerServerTopFraction(perServer, 0.01)
	if elastic[0].Hits != 200 {
		t.Errorf("elastic hits = %d", elastic[0].Hits)
	}
	if elastic[0].CapacityBlocks != 1 {
		t.Errorf("capacity = %d blocks, want 1 (idle server uses none)", elastic[0].CapacityBlocks)
	}
}

func TestSliceTraceReader(t *testing.T) {
	day0 := []block.Request{{Time: 1, Length: block.Size}}
	day1 := []block.Request{{Time: trace.Day + 1, Length: block.Size}}
	st := NewSliceTrace(day0, day1).(interface {
		Trace
		trace.Reader
	})
	got, err := trace.Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Errorf("collected %d", len(got))
	}
}
