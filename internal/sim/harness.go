package sim

import (
	"io"
	"math/rand"

	"repro/internal/analysis"
	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/sieved"
	"repro/internal/trace"
)

// Trace is a day-addressable request trace (satisfied by
// workload.Generator and by pre-split trace files).
type Trace interface {
	// Days returns the number of calendar days.
	Days() int
	// Day returns day d's requests in time order.
	Day(d int) ([]block.Request, error)
}

// DayCounters builds a per-day access counter for the whole ensemble.
func DayCounters(tr Trace) ([]*analysis.Counter, error) {
	out := make([]*analysis.Counter, tr.Days())
	for d := range out {
		reqs, err := tr.Day(d)
		if err != nil {
			return nil, err
		}
		c := analysis.NewCounter()
		for i := range reqs {
			c.AddRequest(&reqs[i])
		}
		out[d] = c
	}
	return out, nil
}

// TopSets returns each day's most-popular `frac` of blocks, hottest first
// (the per-day ideal sieve's resident sets).
func TopSets(counters []*analysis.Counter, frac float64) [][]block.Key {
	out := make([][]block.Key, len(counters))
	for d, c := range counters {
		out[d] = c.TopFraction(frac)
	}
	return out
}

// RunContinuous simulates a continuous policy over the whole trace.
func RunContinuous(tr Trace, capacityBlocks int, policy sieve.Policy) (*Result, error) {
	c := NewContinuous(capacityBlocks, policy)
	totalMinutes := 0
	for d := 0; d < tr.Days(); d++ {
		reqs, err := tr.Day(d)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			c.Process(&reqs[i])
		}
		totalMinutes = (d + 1) * 24 * 60
	}
	return c.Result(totalMinutes), nil
}

// RunDiscreteSets simulates a discrete-epoch cache whose day-d resident set
// is sets[d] (missing days get an empty set).
func RunDiscreteSets(name string, tr Trace, capacityBlocks int, sets [][]block.Key) (*Result, error) {
	d := NewDiscrete(name, capacityBlocks, func(day int) []block.Key {
		if day < len(sets) {
			return sets[day]
		}
		return nil
	})
	totalMinutes := 0
	for day := 0; day < tr.Days(); day++ {
		reqs, err := tr.Day(day)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			if err := d.Process(&reqs[i]); err != nil {
				return nil, err
			}
		}
		totalMinutes = (day + 1) * 24 * 60
	}
	return d.Result(totalMinutes), nil
}

// RunIdeal simulates the paper's ideal sieve: the top `frac` most popular
// blocks of each day are resident throughout that same day (an oracle; the
// left-most bar of Figure 5).
func RunIdeal(tr Trace, counters []*analysis.Counter, capacityBlocks int, frac float64) (*Result, error) {
	return RunDiscreteSets("Ideal", tr, capacityBlocks, TopSets(counters, frac))
}

// RunSieveStoreD simulates SieveStore-D (§3.2): day d's accesses are logged
// through the offline per-key-reduction pipeline; blocks whose day-d count
// reaches `threshold` become day d+1's resident set. Day 0 runs with an
// empty cache (the bootstrap day of Figure 5). dir hosts the spill files.
func RunSieveStoreD(tr Trace, capacityBlocks int, threshold int64, dir string) (*Result, error) {
	logger, err := sieved.NewLogger(dir, sieved.DefaultPartitions)
	if err != nil {
		return nil, err
	}
	defer logger.Close()
	sets := make([][]block.Key, tr.Days())
	d := NewDiscrete("SieveStore-D", capacityBlocks, func(day int) []block.Key {
		return sets[day]
	})
	for day := 0; day < tr.Days(); day++ {
		reqs, err := tr.Day(day)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			if err := d.Process(&reqs[i]); err != nil {
				return nil, err
			}
			if err := logger.LogRequest(&reqs[i]); err != nil {
				return nil, err
			}
		}
		if day+1 < tr.Days() {
			set, err := logger.EndEpoch(threshold)
			if err != nil {
				return nil, err
			}
			sets[day+1] = set
		}
	}
	return d.Result(tr.Days() * 24 * 60), nil
}

// RunRandBlkD simulates RandSieve-BlkD (Figure 5's random discrete sieve):
// a uniformly random `frac` of the blocks accessed on day d is
// batch-allocated for day d+1.
func RunRandBlkD(tr Trace, counters []*analysis.Counter, capacityBlocks int, frac float64, seed int64) (*Result, error) {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]block.Key, tr.Days())
	for d := 1; d < tr.Days(); d++ {
		prev := counters[d-1]
		keys := prev.TopFraction(1.0) // all accessed blocks, deterministic order
		n := int(frac * float64(len(keys)))
		if n < 1 && len(keys) > 0 {
			n = 1
		}
		rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
		sets[d] = keys[:n]
	}
	return RunDiscreteSets("RandSieve-BlkD", tr, capacityBlocks, sets)
}

// PerServerDayCounters builds per-day, per-server access counters.
func PerServerDayCounters(tr Trace, servers int) ([][]*analysis.Counter, error) {
	out := make([][]*analysis.Counter, tr.Days())
	for d := range out {
		out[d] = make([]*analysis.Counter, servers)
		for s := range out[d] {
			out[d][s] = analysis.NewCounter()
		}
		reqs, err := tr.Day(d)
		if err != nil {
			return nil, err
		}
		for i := range reqs {
			if s := reqs[i].Server; s < servers {
				out[d][s].AddRequest(&reqs[i])
			}
		}
	}
	return out, nil
}

// PerServerStats is one day of an ideal per-server caching configuration
// (§5.3, quadrants III/IV).
type PerServerStats struct {
	Day int
	// Hits is the total accesses captured across all per-server caches.
	Hits int64
	// Accesses is the ensemble's total accesses that day.
	Accesses int64
	// CapacityBlocks is the total cache capacity the configuration uses
	// that day (for the elastic iso-capacity comparison).
	CapacityBlocks int64
}

// HitRatio returns the day's capture ratio.
func (p PerServerStats) HitRatio() float64 {
	if p.Accesses == 0 {
		return 0
	}
	return float64(p.Hits) / float64(p.Accesses)
}

// PerServerTopFraction evaluates the elastic ideal per-server configuration:
// each server's cache holds the top `frac` of the blocks *it* accessed that
// day (the paper's conservative iso-capacity comparison, which even grants
// per-server SSDs elastic capacity). Because the set is oracle-chosen per
// day, hits equal the accesses to set members.
func PerServerTopFraction(perServer [][]*analysis.Counter, frac float64) []PerServerStats {
	out := make([]PerServerStats, len(perServer))
	for d, servers := range perServer {
		st := &out[d]
		st.Day = d
		for _, c := range servers {
			st.Accesses += c.Total()
			top := c.TopFraction(frac)
			st.CapacityBlocks += int64(len(top))
			for _, k := range top {
				st.Hits += c.Count(k)
			}
		}
	}
	return out
}

// PerServerStatic evaluates statically-partitioned per-server caches: each
// server gets capacityPerServer blocks and (ideally) fills them with its
// hottest blocks of the day. No server can borrow another's slack — the
// sharing loss the ensemble-level design eliminates.
func PerServerStatic(perServer [][]*analysis.Counter, capacityPerServer int) []PerServerStats {
	out := make([]PerServerStats, len(perServer))
	for d, servers := range perServer {
		st := &out[d]
		st.Day = d
		for _, c := range servers {
			st.Accesses += c.Total()
			st.CapacityBlocks += int64(capacityPerServer)
			for i, cnt := range c.SortedCounts() {
				if i >= capacityPerServer {
					break
				}
				st.Hits += cnt
			}
		}
	}
	return out
}

// EnsembleStatic evaluates the shared ensemble-level ideal at a given total
// capacity: the day's hottest blocks fill the shared cache. Used for the
// §5.3 iso-cost comparison against PerServerStatic with the same total.
func EnsembleStatic(counters []*analysis.Counter, capacityBlocks int) []PerServerStats {
	out := make([]PerServerStats, len(counters))
	for d, c := range counters {
		st := &out[d]
		st.Day = d
		st.Accesses = c.Total()
		st.CapacityBlocks = int64(capacityBlocks)
		for i, cnt := range c.SortedCounts() {
			if i >= capacityBlocks {
				break
			}
			st.Hits += cnt
		}
	}
	return out
}

var _ trace.Reader = (*sliceTrace)(nil) // compile-time interface sanity

// sliceTrace adapts pre-split day slices to the Trace interface and, for
// convenience, a whole-trace Reader.
type sliceTrace struct {
	days [][]block.Request
	d, i int
}

// NewSliceTrace wraps per-day request slices as a Trace.
func NewSliceTrace(days ...[]block.Request) Trace { return &sliceTrace{days: days} }

func (s *sliceTrace) Days() int { return len(s.days) }

func (s *sliceTrace) Day(d int) ([]block.Request, error) { return s.days[d], nil }

func (s *sliceTrace) Next() (block.Request, error) {
	for s.d < len(s.days) {
		if s.i < len(s.days[s.d]) {
			req := s.days[s.d][s.i]
			s.i++
			return req, nil
		}
		s.d++
		s.i = 0
	}
	return block.Request{}, io.EOF
}
