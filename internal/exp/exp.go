// Package exp is the experiment harness: it reruns every table and figure
// of the paper's evaluation (§2, §5) over the synthetic ensemble trace and
// returns typed rows that cmd/experiments prints and bench_test.go reports.
//
// All policies are simulated in lockstep, day by day, so each trace day is
// generated exactly once and memory stays bounded by a single day plus the
// policies' own metastate.
package exp

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/sieved"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes a full experiment run.
type Config struct {
	// Workload is the trace configuration (defaults to the Table 1
	// ensemble at the given scale).
	Workload workload.Config
	// CacheGB is the SieveStore cache size before scaling (16 GB in the
	// paper); BigCacheGB is the enlarged unsieved cache (32 GB).
	CacheGB    float64
	BigCacheGB float64
	// TopFrac is the ideal sieve's popularity cut (top 1%).
	TopFrac float64
	// DThreshold is SieveStore-D's epoch access-count threshold (10).
	DThreshold int64
	// SieveC configures SieveStore-C.
	SieveC sieve.CConfig
	// RandP is the random sieves' allocation fraction (1%).
	RandP float64
	// Seed drives the random sieves.
	Seed int64
	// SpillDir hosts SieveStore-D's partition logs; empty uses a temp dir.
	SpillDir string
	// TraceDir, when set, replays a day-split trace directory (see
	// tracegen -split / traceconv) instead of generating the synthetic
	// workload — the path for running the evaluation on real MSR traces.
	// Workload.Scale is still used to size the cache and to scale the
	// drive-occupancy analysis; set it to the trace's scale (1 for raw MSR
	// traces).
	TraceDir string
}

// DefaultConfig returns the paper's evaluation setup at the given trace
// scale.
func DefaultConfig(scale int) Config {
	sc := sieve.DefaultCConfig()
	// Size the IMCT relative to the trace footprint so the aliasing rate —
	// the phenomenon the two-tier design exists to tame — matches the
	// paper's setting at any scale (their IMCT was heavily aliased; the MCT
	// did the precise filtering).
	sc.IMCTSize = 1 << 28 / scale
	if sc.IMCTSize < 1024 {
		sc.IMCTSize = 1024
	}
	return Config{
		Workload:   workload.Default(scale),
		CacheGB:    16,
		BigCacheGB: 32,
		TopFrac:    0.01,
		DThreshold: sieved.DefaultThreshold,
		SieveC:     sc,
		RandP:      0.01,
		Seed:       7,
	}
}

// CacheBlocks converts an unscaled cache size in GB to scaled 512-byte
// frames.
func (c *Config) CacheBlocks(gb float64) int {
	blocks := gb * (1 << 30) / block.Size / float64(c.Workload.Scale)
	if blocks < 8 {
		blocks = 8
	}
	return int(blocks)
}

// Policy indices into Results.Policies.
const (
	PIdeal = iota
	PSieveD
	PSieveC
	PRandBlkD
	PRandC
	PAOD
	PAOD32
	PWMNA
	PWMNA32
	numPolicies
)

// DayInfo captures the per-day trace analyses behind Figures 2 and 3.
type DayInfo struct {
	Day      int
	Requests int
	Accesses int64
	Unique   int
	// Top1Share is the fraction of accesses to the day's top-1% blocks
	// (the ideal capture rate, Figure 2's knee).
	Top1Share float64
	// Once, LE4 and LE10 are the fractions of blocks with 1, ≤4 and ≤10
	// accesses (O1).
	Once, LE4, LE10 float64
	// Bins is the access-count distribution over percentile bins (Fig 2a).
	Bins []analysis.Bin
	// CDF is the cumulative popularity curve (Fig 2b/2c).
	CDF []analysis.CDFPoint
	// Composition is each server's share of the ensemble top-1% (Fig 3d).
	Composition []float64
	// OverlapWithPrev is the fraction of today's top-1% already in
	// yesterday's (O2's successive-day overlap).
	OverlapWithPrev float64
}

// SkewCurves holds the Figure 3(a–c) skew-variation CDFs.
type SkewCurves struct {
	// PrxyDay2 vs Src1Day2: server-to-server variation (Fig 3a).
	PrxyDay2, Src1Day2 []analysis.CDFPoint
	// WebVol0Day2 vs WebVol1Day2: volume-to-volume variation (Fig 3b).
	WebVol0Day2, WebVol1Day2 []analysis.CDFPoint
	// StgDay3 vs StgDay5: time variation (Fig 3c).
	StgDay3, StgDay5 []analysis.CDFPoint
}

// Results is the complete outcome of one experiment run.
type Results struct {
	Config Config
	Days   int
	// ServerNames is the roster in ID order.
	ServerNames []string
	// Policies holds one simulation result per policy index.
	Policies [numPolicies]*sim.Result
	// DayInfo holds per-day trace analyses.
	DayInfo []DayInfo
	// Skew holds the Figure 3(a–c) curves.
	Skew SkewCurves
	// PerServerElastic / PerServerStatic / EnsembleShared are the §5.3
	// configurations.
	PerServerElastic []sim.PerServerStats
	PerServerStatic  []sim.PerServerStats
	EnsembleShared   []sim.PerServerStats
	// TraceStats summarizes the generated trace (Table 1).
	TraceStats *trace.Stats
	// Elapsed is the wall time of the run.
	Elapsed time.Duration
}

// traceSource is what Run needs from a trace: day access plus a
// whole-trace reader for the summary statistics.
type traceSource interface {
	sim.Trace
	Reader() trace.Reader
}

// Run executes the full evaluation over the synthetic workload or, when
// cfg.TraceDir is set, over an on-disk day-split trace.
func Run(cfg Config) (*Results, error) {
	start := time.Now()
	var (
		src   traceSource
		names *trace.NameTable
	)
	if cfg.TraceDir != "" {
		dd, err := trace.OpenDayDir(cfg.TraceDir)
		if err != nil {
			return nil, err
		}
		src = dd
	} else {
		gen, err := workload.New(cfg.Workload)
		if err != nil {
			return nil, err
		}
		src = gen
		names = gen.Names()
	}
	days := src.Days()
	spill := cfg.SpillDir
	if spill == "" {
		dir, err := os.MkdirTemp("", "sievestore-d-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		spill = dir
	}
	logger, err := sieved.NewLogger(spill, sieved.DefaultPartitions)
	if err != nil {
		return nil, err
	}
	defer logger.Close()

	res := &Results{Config: cfg, Days: days}
	small := cfg.CacheBlocks(cfg.CacheGB)
	big := cfg.CacheBlocks(cfg.BigCacheGB)

	sieveC, err := sieve.NewC(cfg.SieveC)
	if err != nil {
		return nil, err
	}

	// Continuous runners.
	contRunners := []*sim.Continuous{
		sim.NewContinuous(small, sieveC),
		sim.NewContinuous(small, sieve.NewRandC(cfg.RandP, cfg.Seed)),
		sim.NewContinuous(small, sieve.AOD{}),
		sim.NewContinuous(big, sieve.AOD{}),
		sim.NewContinuous(small, sieve.WMNA{}),
		sim.NewContinuous(big, sieve.WMNA{}),
	}
	contIndex := []int{PSieveC, PRandC, PAOD, PAOD32, PWMNA, PWMNA32}

	// Discrete runners with day-fed sets. The ideal sieve's top-1% fits the
	// 16 GB-equivalent cache with room to spare (§2).
	var idealSet, dSet, randSet []block.Key
	ideal := sim.NewDiscrete("Ideal", small, func(int) []block.Key { return idealSet })
	sieveD := sim.NewDiscrete("SieveStore-D", small, func(int) []block.Key { return dSet })
	randD := sim.NewDiscrete("RandSieve-BlkD", small, func(int) []block.Key { return randSet })
	rng := rand.New(rand.NewSource(cfg.Seed))

	// servers grows as server IDs are discovered (known up front for the
	// synthetic roster; discovered from the data for TraceDir runs).
	servers := 0
	if cfg.TraceDir == "" {
		servers = len(cfg.Workload.Servers)
	}
	var prevTop, prevRandSample, prevDSet []block.Key

	for d := 0; d < days; d++ {
		reqs, err := src.Day(d)
		if err != nil {
			return nil, err
		}
		// --- Analyses for Figures 2 and 3 (plus the §5.3 counters). ---
		counter := analysis.NewCounter()
		perServer := make([]*analysis.Counter, servers)
		for s := range perServer {
			perServer[s] = analysis.NewCounter()
		}
		for i := range reqs {
			counter.AddRequest(&reqs[i])
			for sID := reqs[i].Server; sID >= len(perServer); {
				perServer = append(perServer, analysis.NewCounter())
			}
			perServer[reqs[i].Server].AddRequest(&reqs[i])
		}
		if len(perServer) > servers {
			servers = len(perServer)
		}
		top1 := counter.TopFraction(cfg.TopFrac)
		info := DayInfo{
			Day:         d,
			Requests:    len(reqs),
			Accesses:    counter.Total(),
			Unique:      counter.Unique(),
			Top1Share:   counter.TopShare(cfg.TopFrac),
			Once:        counter.CountLE(1),
			LE4:         counter.CountLE(4),
			LE10:        counter.CountLE(10),
			Bins:        counter.Bins(200),
			CDF:         counter.CDF(200),
			Composition: analysis.ShareByServer(top1, servers),
			// (padded to the final server count after the day loop)
		}
		if d > 0 {
			info.OverlapWithPrev = analysis.Overlap(prevTop, top1)
		}
		res.DayInfo = append(res.DayInfo, info)
		if names != nil {
			res.collectSkewCurves(names, d, reqs)
		}

		// §5.3 configurations (computed from the same counters).
		res.PerServerElastic = append(res.PerServerElastic,
			sim.PerServerTopFraction([][]*analysis.Counter{perServer}, cfg.TopFrac)...)
		res.PerServerStatic = append(res.PerServerStatic,
			sim.PerServerStatic([][]*analysis.Counter{perServer}, small/maxInt(servers, 1))...)
		res.EnsembleShared = append(res.EnsembleShared,
			sim.EnsembleStatic([]*analysis.Counter{counter}, small)...)
		res.PerServerElastic[d].Day = d
		res.PerServerStatic[d].Day = d
		res.EnsembleShared[d].Day = d

		// --- Simulations in lockstep. ---
		idealSet = top1
		dSet = prevDSet
		randSet = prevRandSample
		for i := range reqs {
			req := &reqs[i]
			for _, c := range contRunners {
				c.Process(req)
			}
			if err := ideal.Process(req); err != nil {
				return nil, err
			}
			if err := sieveD.Process(req); err != nil {
				return nil, err
			}
			if err := randD.Process(req); err != nil {
				return nil, err
			}
			if err := logger.LogRequest(req); err != nil {
				return nil, err
			}
		}
		// End of epoch: select SieveStore-D's next-day set and the random
		// discrete sample.
		next, err := logger.EndEpoch(cfg.DThreshold)
		if err != nil {
			return nil, err
		}
		prevDSet = next
		prevRandSample = randomSample(rng, counter, cfg.RandP)
		prevTop = top1
	}

	// Fill the server roster and pad early days' composition vectors to the
	// final server count (servers appearing later had zero share earlier).
	if names != nil {
		res.ServerNames = cfg.Workload.ServerNames()
	} else {
		for sID := 0; sID < servers; sID++ {
			res.ServerNames = append(res.ServerNames, fmt.Sprintf("server%d", sID))
		}
	}
	for i := range res.DayInfo {
		for len(res.DayInfo[i].Composition) < servers {
			res.DayInfo[i].Composition = append(res.DayInfo[i].Composition, 0)
		}
	}

	totalMinutes := days * 24 * 60
	res.Policies[PIdeal] = ideal.Result(totalMinutes)
	res.Policies[PSieveD] = sieveD.Result(totalMinutes)
	res.Policies[PRandBlkD] = randD.Result(totalMinutes)
	for i, c := range contRunners {
		res.Policies[contIndex[i]] = c.Result(totalMinutes)
	}
	res.Policies[PAOD32].Name = "AOD-32GB"
	res.Policies[PWMNA32].Name = "WMNA-32GB"

	st, err := trace.Summarize(src.Reader())
	if err != nil {
		return nil, err
	}
	res.TraceStats = st
	res.Elapsed = time.Since(start)
	return res, nil
}

// randomSample draws frac of the counter's unique blocks uniformly
// (RandSieve-BlkD's next-day set).
func randomSample(rng *rand.Rand, c *analysis.Counter, frac float64) []block.Key {
	keys := c.TopFraction(1.0)
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	n := int(frac * float64(len(keys)))
	if n < 1 && len(keys) > 0 {
		n = 1
	}
	return keys[:n]
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// collectSkewCurves extracts the Figure 3(a–c) scoped CDFs on the days the
// paper plots. It requires server names (synthetic runs only).
func (r *Results) collectSkewCurves(names *trace.NameTable, day int, reqs []block.Request) {
	scoped := func(server, volume int) []analysis.CDFPoint {
		c := analysis.NewCounter()
		for i := range reqs {
			if reqs[i].Server != server {
				continue
			}
			if volume >= 0 && reqs[i].Volume != volume {
				continue
			}
			c.AddRequest(&reqs[i])
		}
		return c.CDF(100)
	}
	lookup := func(name string) int {
		id, ok := names.Lookup(name)
		if !ok {
			return -1
		}
		return id
	}
	switch day {
	case 2:
		if id := lookup("prxy"); id >= 0 {
			r.Skew.PrxyDay2 = scoped(id, -1)
		}
		if id := lookup("src1"); id >= 0 {
			r.Skew.Src1Day2 = scoped(id, -1)
		}
		if id := lookup("web"); id >= 0 {
			r.Skew.WebVol0Day2 = scoped(id, 0)
			r.Skew.WebVol1Day2 = scoped(id, 1)
		}
	case 3:
		if id := lookup("stg"); id >= 0 {
			r.Skew.StgDay3 = scoped(id, -1)
		}
	case 5:
		if id := lookup("stg"); id >= 0 {
			r.Skew.StgDay5 = scoped(id, -1)
		}
	}
}

// Device returns the cost-model SSD spec.
func Device() ssd.DeviceSpec { return ssd.IntelX25E() }

// PolicyName returns the display name for a policy index.
func PolicyName(i int) string {
	switch i {
	case PIdeal:
		return "Ideal"
	case PSieveD:
		return "SieveStore-D"
	case PSieveC:
		return "SieveStore-C"
	case PRandBlkD:
		return "RandSieve-BlkD"
	case PRandC:
		return "RandSieve-C"
	case PAOD:
		return "AOD-16GB"
	case PAOD32:
		return "AOD-32GB"
	case PWMNA:
		return "WMNA-16GB"
	case PWMNA32:
		return "WMNA-32GB"
	}
	return fmt.Sprintf("policy-%d", i)
}
