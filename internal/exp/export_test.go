package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/workload"
)

func TestExportCSV(t *testing.T) {
	res := results(t)
	dir := t.TempDir()
	paths, err := res.ExportCSV(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig2a_access_counts.csv", "fig2bc_cdf.csv", "fig3d_composition.csv",
		"fig5_captured.csv", "fig6_alloc_writes.csv", "fig7_ssd_ops.csv",
		"fig8_occupancy.csv", "fig9_drives.csv", "sec53_perserver.csv",
	}
	if len(paths) != len(want) {
		t.Fatalf("wrote %d files, want %d: %v", len(paths), len(want), paths)
	}
	for i, name := range want {
		if filepath.Base(paths[i]) != name {
			t.Errorf("file %d = %s, want %s", i, filepath.Base(paths[i]), name)
		}
		data, err := os.ReadFile(paths[i])
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		if len(lines) < 2 {
			t.Errorf("%s has no data rows", name)
			continue
		}
		// Every row must have the header's column count.
		cols := len(strings.Split(lines[0], ","))
		for j, l := range lines[1:] {
			if got := len(strings.Split(l, ",")); got != cols {
				t.Errorf("%s row %d: %d cols, want %d", name, j+1, got, cols)
				break
			}
		}
	}
	// fig5 must contain every policy.
	data, _ := os.ReadFile(filepath.Join(dir, "fig5_captured.csv"))
	for p := 0; p < numPolicies; p++ {
		if !strings.Contains(string(data), PolicyName(p)) {
			t.Errorf("fig5 CSV missing %s", PolicyName(p))
		}
	}
}

func TestScalingAndNetwork(t *testing.T) {
	res := results(t)
	table := res.Scaling(PSieveC, []float64{1, 4, 16})
	if len(table) != 3 {
		t.Fatalf("rows = %d", len(table))
	}
	for i := 1; i < len(table); i++ {
		if table[i].Drives < table[i-1].Drives {
			t.Error("drive needs must grow with load")
		}
	}
	if table[0].Drives < 1 {
		t.Error("at least one drive")
	}
	maxOcc, worst := res.Network(PSieveC)
	if maxOcc < 0 || maxOcc > 2 {
		t.Errorf("network occupancy = %v, implausible", maxOcc)
	}
	if worst < 0.4 || worst > 0.7 {
		t.Errorf("worst-case SSD fraction = %v, want ≈0.5", worst)
	}
	report := res.ScalingReport()
	if !strings.Contains(report, "ensemble load") || !strings.Contains(report, "network") {
		t.Errorf("report incomplete:\n%s", report)
	}
}

func TestQuadrants(t *testing.T) {
	rows, err := Quadrants(DefaultConfig(expTestScale))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	qI, qII, qIII, qIV := rows[0], rows[1], rows[2], rows[3]
	// Quadrant I must dominate on hits and be cheapest on drives.
	if qI.HitRatio <= qII.HitRatio || qI.HitRatio <= qIII.HitRatio {
		t.Errorf("quadrant I not dominant: %+v", rows)
	}
	if qI.Drives > qIII.Drives || qI.Drives > qIV.Drives {
		t.Errorf("quadrant I not cheapest: I=%d III=%d IV=%d", qI.Drives, qIII.Drives, qIV.Drives)
	}
	// Per-server configurations pay at least one device per server.
	if qIII.Drives < 13 || qIV.Drives < 13 {
		t.Errorf("per-server drive floor missing: III=%d IV=%d", qIII.Drives, qIV.Drives)
	}
	// Sieving slashes allocation-writes in both deployment styles.
	if qI.AllocWrites*20 > qII.AllocWrites || qIV.AllocWrites*20 > qIII.AllocWrites {
		t.Errorf("sieving not reducing alloc-writes: %+v", rows)
	}
	out := FormatQuadrants(rows)
	if !strings.Contains(out, "Quadrant I dominates") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

func TestLatencyTable(t *testing.T) {
	res := results(t)
	out := res.LatencyTable()
	if !strings.Contains(out, "SieveStore-C") || !strings.Contains(out, "speedup") {
		t.Errorf("latency table incomplete:\n%s", out)
	}
	// SieveStore-C must show a larger speedup than the unsieved cache.
	if !strings.Contains(out, "x") {
		t.Error("no speedup column rendered")
	}
}

func TestAblationReplacement(t *testing.T) {
	rows, err := AblationReplacement(DefaultConfig(expTestScale))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rows[0].Name, "SieveStore-C") {
		t.Fatalf("row0 = %+v", rows[0])
	}
	// The modern promotion-free engines must be in the unsieved lineup.
	names := ""
	for _, r := range rows[1:] {
		names += r.Name + " "
	}
	for _, want := range []string{"SIEVE", "S3-FIFO"} {
		if !strings.Contains(names, want) {
			t.Errorf("ablation missing %s row: %s", want, names)
		}
	}
	// §3.1: the classic replacement policies (rows 1-3: LRU, CLOCK, FIFO)
	// cannot rescue the unsieved cache's hit ratio...
	for _, r := range rows[1:4] {
		if r.HitRatio >= rows[0].HitRatio {
			t.Errorf("unsieved %s (%.3f) matched sieved (%.3f)", r.Name, r.HitRatio, rows[0].HitRatio)
		}
	}
	// ...and NO unsieved policy — including the quick-demotion engines,
	// which can approach the sieved hit ratio — escapes allocating on
	// every miss: the allocation-write storm is the allocation policy's.
	for _, r := range rows[1:] {
		if r.AllocWrites < 10*rows[0].AllocWrites {
			t.Errorf("unsieved %s alloc-writes (%d) not dominated", r.Name, r.AllocWrites)
		}
	}
	// The classic unsieved variants cluster: replacement choice moves the
	// needle far less than sieving does.
	lo, hi := rows[1].HitRatio, rows[1].HitRatio
	for _, r := range rows[2:4] {
		if r.HitRatio < lo {
			lo = r.HitRatio
		}
		if r.HitRatio > hi {
			hi = r.HitRatio
		}
	}
	if hi-lo > rows[0].HitRatio-hi {
		t.Errorf("replacement spread (%.3f) exceeds the sieving gap (%.3f)", hi-lo, rows[0].HitRatio-hi)
	}
	out := FormatReplacement(rows)
	if !strings.Contains(out, "unsieved") || !strings.Contains(out, "sieved cache") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

func TestRunMinOracle(t *testing.T) {
	cfg := DefaultConfig(expTestScale)
	rows, err := RunMinOracle(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	aod, sel := rows[0], rows[1]
	// MIN maximizes hits: at least as many as the day's measured ideal.
	res := results(t)
	if aod.HitRatio() < res.Policies[PIdeal].Days[2].HitRatio()*0.9 {
		t.Errorf("MIN-AOD hit ratio %.3f below ideal's %.3f", aod.HitRatio(),
			res.Policies[PIdeal].Days[2].HitRatio())
	}
	// Selective allocation never hits less than AOD under MIN... it can
	// only skip useless allocations, so hits match or exceed.
	if sel.Hits < aod.Hits {
		t.Errorf("selective MIN hits %d < AOD MIN hits %d", sel.Hits, aod.Hits)
	}
	// The §3.1 punchline: AOD pays an allocation-write on every miss.
	if aod.Hits+aod.AllocWrites != aod.Accesses {
		t.Error("MIN-AOD conservation broken")
	}
	// And even selective oracle allocation uses far more allocation-writes
	// than the sieve (which allocates ~0.1-1% of accesses).
	cAllocs := res.Policies[PSieveC].Days[2].AllocWrites
	if sel.AllocWrites < 5*cAllocs {
		t.Errorf("oracle-selective allocs %d vs sieve %d: expected a wide gap", sel.AllocWrites, cAllocs)
	}
	out := FormatOracle(rows, res.Policies[PSieveC].Days[2])
	if !strings.Contains(out, "SieveStore-C") {
		t.Errorf("format incomplete:\n%s", out)
	}
}

func TestRunFromTraceDir(t *testing.T) {
	// Write the synthetic trace to a day directory, then run the full
	// evaluation from the files: results must match the generator run
	// exactly (same trace, same seeds).
	cfg := DefaultConfig(expTestScale)
	cfg.Workload.Days = 3
	gen, err := workload.New(cfg.Workload)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := trace.SplitByDay(gen.Reader(), dir); err != nil {
		t.Fatal(err)
	}

	fromGen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgDir := cfg
	cfgDir.TraceDir = dir
	fromDir, err := Run(cfgDir)
	if err != nil {
		t.Fatal(err)
	}
	if fromDir.Days != 3 {
		t.Fatalf("days = %d", fromDir.Days)
	}
	for p := 0; p < numPolicies; p++ {
		g := fromGen.Policies[p].Total()
		d := fromDir.Policies[p].Total()
		if g.Hits() != d.Hits() || g.Accesses != d.Accesses || g.AllocWrites != d.AllocWrites {
			t.Errorf("%s: generator %+v vs tracedir %+v", PolicyName(p), g, d)
		}
	}
	if len(fromDir.ServerNames) != 13 {
		t.Errorf("discovered %d servers", len(fromDir.ServerNames))
	}
	for _, di := range fromDir.DayInfo {
		if len(di.Composition) != len(fromDir.ServerNames) {
			t.Errorf("day %d composition has %d entries", di.Day, len(di.Composition))
		}
	}
	// Renderers must work without the synthetic name table.
	if out := fromDir.Table1(); !strings.Contains(out, "server0") {
		t.Errorf("Table1 from tracedir:\n%s", out)
	}
	if out := fromDir.Fig5(); !strings.Contains(out, "SieveStore-C") {
		t.Error("Fig5 from tracedir broken")
	}
}

func TestSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full runs")
	}
	cfg := DefaultConfig(expTestScale * 2)
	rows, err := SeedSweep(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The headline must hold for every seed: sieving beats unsieved.
		if r.GainC <= 1.0 {
			t.Errorf("seed %d: SieveStore-C gain %.2f ≤ 1", r.Seed, r.GainC)
		}
		if r.Ideal <= 0.05 || r.Ideal >= 0.6 {
			t.Errorf("seed %d: ideal hit %.3f implausible", r.Seed, r.Ideal)
		}
	}
	// Different seeds produce different traces.
	if rows[0].Ideal == rows[1].Ideal && rows[1].Ideal == rows[2].Ideal {
		t.Error("seeds did not change the trace")
	}
	if !strings.Contains(FormatSeedSweep(rows), "C-gain") {
		t.Error("format incomplete")
	}
}
