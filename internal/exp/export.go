package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/metrics"
	"repro/internal/ssd"
)

// This file exports the figure data as CSV series (one file per figure) so
// the plots can be regenerated with any plotting tool, and computes the §7
// scaling projection and §3.3 network feasibility check.

// ExportCSV writes every figure's data series under dir and returns the
// paths written.
func (r *Results) ExportCSV(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	write := func(name string, build func(*strings.Builder)) error {
		var b strings.Builder
		build(&b)
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	// Figure 2(a): day, bin upper percentile, average count, max count.
	if err := write("fig2a_access_counts.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,upper_percentile,avg_count,max_count")
		for _, di := range r.DayInfo {
			for _, bin := range di.Bins {
				fmt.Fprintf(b, "%d,%.6f,%.4f,%d\n", di.Day, bin.UpperPercentile, bin.AvgCount, bin.MaxCount)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 2(b,c): day, percentile, cumulative fraction.
	if err := write("fig2bc_cdf.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,percentile,cum_fraction")
		for _, di := range r.DayInfo {
			for _, p := range di.CDF {
				fmt.Fprintf(b, "%d,%.6f,%.6f\n", di.Day, p.Percentile, p.CumFraction)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 3(d): day, server, share of the ensemble top-1%.
	if err := write("fig3d_composition.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,server,share")
		for _, di := range r.DayInfo {
			for s, share := range di.Composition {
				fmt.Fprintf(b, "%d,%s,%.6f\n", di.Day, r.ServerNames[s], share)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 5: day, policy, hit ratio, read hits, write hits.
	if err := write("fig5_captured.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,policy,hit_ratio,read_hits,write_hits")
		for p := 0; p < numPolicies; p++ {
			for _, d := range r.Policies[p].Days {
				fmt.Fprintf(b, "%d,%s,%.6f,%d,%d\n", d.Day, PolicyName(p), d.HitRatio(), d.ReadHits, d.WriteHits)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 6: day, policy, allocation-writes (+ moves for discrete).
	if err := write("fig6_alloc_writes.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,policy,alloc_writes,moves")
		for p := 0; p < numPolicies; p++ {
			for _, d := range r.Policies[p].Days {
				fmt.Fprintf(b, "%d,%s,%d,%d\n", d.Day, PolicyName(p), d.AllocWrites, d.Moves)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 7: day, policy, SSD op breakdown.
	if err := write("fig7_ssd_ops.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,policy,read_hits,write_hits,alloc_writes")
		for _, p := range []int{PSieveD, PSieveC, PWMNA32, PAOD32} {
			for _, d := range r.Policies[p].Days {
				fmt.Fprintf(b, "%d,%s,%d,%d,%d\n", d.Day, PolicyName(p), d.ReadHits, d.WriteHits, d.AllocWrites+d.Moves)
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 8: minute, policy, occupancy (paper-scale).
	spec := Device()
	if err := write("fig8_occupancy.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "minute,policy,occupancy")
		for _, p := range []int{PSieveD, PSieveC, PWMNA32} {
			loads := metrics.ScaleLoads(r.Policies[p].Minutes, float64(r.Config.Workload.Scale))
			occ := ssd.OccupancySeries(&spec, loads)
			for m, o := range occ {
				// Keep the file tractable: skip idle minutes.
				if o > 0 {
					fmt.Fprintf(b, "%d,%s,%.6f\n", m, PolicyName(p), o)
				}
			}
		}
	}); err != nil {
		return written, err
	}

	// Figure 9: policy, minute-rank, drives needed (sorted ascending).
	if err := write("fig9_drives.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "policy,minute_rank,drives")
		for _, p := range []int{PSieveD, PSieveC, PWMNA, PWMNA32} {
			loads := metrics.ScaleLoads(r.Policies[p].Minutes, float64(r.Config.Workload.Scale))
			for rank, d := range ssd.DrivesNeeded(&spec, loads) {
				fmt.Fprintf(b, "%s,%d,%d\n", PolicyName(p), rank, d)
			}
		}
	}); err != nil {
		return written, err
	}

	// §5.3: day, configuration, hit ratio.
	if err := write("sec53_perserver.csv", func(b *strings.Builder) {
		fmt.Fprintln(b, "day,configuration,hit_ratio")
		for d := 0; d < r.Days; d++ {
			fmt.Fprintf(b, "%d,ensemble-shared,%.6f\n", d, r.EnsembleShared[d].HitRatio())
			fmt.Fprintf(b, "%d,perserver-top1,%.6f\n", d, r.PerServerElastic[d].HitRatio())
			fmt.Fprintf(b, "%d,perserver-split,%.6f\n", d, r.PerServerStatic[d].HitRatio())
		}
	}); err != nil {
		return written, err
	}
	return written, nil
}

// Scaling computes the §7 scaling projection for a policy: drives needed
// as the ensemble's load grows.
func (r *Results) Scaling(p int, factors []float64) []ssd.ScalingPoint {
	loads := metrics.ScaleLoads(r.Policies[p].Minutes, float64(r.Config.Workload.Scale))
	return ssd.ScalingTable(Device(), 1.1, loads, factors)
}

// Network computes the §3.3 network feasibility check for a policy on the
// paper's 4×GbE node.
func (r *Results) Network(p int) (maxOccupancy, worstCaseSSDFraction float64) {
	net := ssd.FourGigE()
	loads := metrics.ScaleLoads(r.Policies[p].Minutes, float64(r.Config.Workload.Scale))
	return ssd.MaxNetworkOccupancy(net, loads), net.WorstCaseSSDFraction(Device())
}

// ScalingReport renders the §7 / §3.3 analyses.
func (r *Results) ScalingReport() string {
	var b strings.Builder
	line(&b, "Section 7 scaling projection (SieveStore-C, 99.9%% coverage, 1.1 stripe imbalance):")
	for _, row := range r.Scaling(PSieveC, []float64{1, 2, 4, 8, 16}) {
		line(&b, "  %4.0fx ensemble load → %d drive(s), hottest-drive peak occupancy %.2f",
			row.LoadFactor, row.Drives, row.PeakOccupancy)
	}
	maxOcc, worst := r.Network(PSieveC)
	line(&b, "Section 3.3 network check (4x GbE): peak NIC occupancy %.3f; worst-case", maxOcc)
	line(&b, "  SSD-sequential-stream fraction of node bandwidth: %.2f (paper: ≈0.5)", worst)
	return b.String()
}
