package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/block"
	"repro/internal/metrics"
	"repro/internal/ssd"
)

// This file renders each reproduced table/figure as a plain-text table and
// computes the derived cost analyses (Figures 8–9, endurance). The same
// renderers back cmd/experiments and the benchmark harness, and their
// output is what EXPERIMENTS.md records.

// line formats one table row.
func line(b *strings.Builder, format string, args ...interface{}) {
	fmt.Fprintf(b, format+"\n", args...)
}

// Table1 renders the trace summary (paper Table 1 at the run's scale).
func (r *Results) Table1() string {
	var b strings.Builder
	line(&b, "Table 1: Trace summary (scale 1/%d; sizes are scaled equivalents)", r.Config.Workload.Scale)
	line(&b, "%-8s %8s %10s %12s %14s %12s", "Server", "Volumes", "Requests", "BlockAccs", "UniqueBlocks", "GB-touched")
	ids := make([]int, 0, len(r.TraceStats.Servers))
	for id := range r.TraceStats.Servers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := r.TraceStats.Servers[id]
		line(&b, "%-8s %8d %10d %12d %14d %12.2f",
			r.ServerNames[id], s.VolumeCount(), s.Requests, s.BlockAccesses, s.UniqueBlocks,
			float64(s.BytesAccessed)/(1<<30))
	}
	t := r.TraceStats
	line(&b, "%-8s %8s %10d %12d %14d %12.2f", "Total", "-", t.Requests, t.BlockAccesses, t.UniqueBlocks,
		float64(t.BytesAccessed)/(1<<30))
	return b.String()
}

// Fig2a renders the per-day binned access-count distribution (log-log in
// the paper); a few representative bins per day keep the table readable.
func (r *Results) Fig2a() string {
	var b strings.Builder
	line(&b, "Figure 2(a): average access count per popularity-percentile bin")
	line(&b, "%-5s %12s %12s %12s %12s %12s", "Day", "top0.5%", "top1%", "top3%", "top10%", "top50%")
	for _, di := range r.DayInfo {
		get := func(pct float64) float64 {
			for _, bin := range di.Bins {
				if bin.UpperPercentile >= pct {
					return bin.AvgCount
				}
			}
			return 0
		}
		line(&b, "%-5d %12.1f %12.1f %12.1f %12.1f %12.1f",
			di.Day, get(0.005), get(0.01), get(0.03), get(0.10), get(0.50))
	}
	return b.String()
}

// Fig2b renders the cumulative popularity CDF at headline percentiles.
func (r *Results) Fig2b() string {
	var b strings.Builder
	line(&b, "Figure 2(b,c): cumulative fraction of accesses captured by top-k%% blocks")
	line(&b, "%-5s %9s %9s %9s %9s %9s %9s", "Day", "0.5%", "1%", "2%", "5%", "20%", "100%")
	for _, di := range r.DayInfo {
		get := func(pct float64) float64 {
			for _, p := range di.CDF {
				if p.Percentile >= pct {
					return p.CumFraction
				}
			}
			return 1
		}
		line(&b, "%-5d %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f",
			di.Day, get(0.005), get(0.01), get(0.02), get(0.05), get(0.20), 1.0)
	}
	return b.String()
}

// Fig3 renders the skew-variation curves at the top-1% point plus the
// composition table (Figure 3).
func (r *Results) Fig3() string {
	var b strings.Builder
	top1 := func(points []analysis.CDFPoint) float64 {
		for _, p := range points {
			if p.Percentile >= 0.01 {
				return p.CumFraction
			}
		}
		if len(points) == 0 {
			return 0
		}
		return points[len(points)-1].CumFraction
	}
	line(&b, "Figure 3(a): server-to-server skew (top-1%% capture, day 2)")
	line(&b, "  prxy: %.3f   src1: %.3f", top1(r.Skew.PrxyDay2), top1(r.Skew.Src1Day2))
	line(&b, "Figure 3(b): volume-to-volume skew (web, day 2)")
	line(&b, "  web/vol0: %.3f   web/vol1: %.3f", top1(r.Skew.WebVol0Day2), top1(r.Skew.WebVol1Day2))
	line(&b, "Figure 3(c): time variation (stg)")
	line(&b, "  day3: %.3f   day5: %.3f", top1(r.Skew.StgDay3), top1(r.Skew.StgDay5))
	line(&b, "Figure 3(d): server composition of the ensemble top-1%% set")
	header := fmt.Sprintf("%-5s", "Day")
	for _, n := range r.ServerNames {
		header += fmt.Sprintf(" %6s", n)
	}
	line(&b, "%s", header)
	for _, di := range r.DayInfo {
		row := fmt.Sprintf("%-5d", di.Day)
		for _, share := range di.Composition {
			row += fmt.Sprintf(" %6.3f", share)
		}
		line(&b, "%s", row)
	}
	return b.String()
}

// Fig5 renders the accesses-captured comparison (Figure 5).
func (r *Results) Fig5() string {
	var b strings.Builder
	line(&b, "Figure 5: fraction of accesses captured per day (hit ratio)")
	header := fmt.Sprintf("%-5s", "Day")
	for p := 0; p < numPolicies; p++ {
		header += fmt.Sprintf(" %14s", PolicyName(p))
	}
	line(&b, "%s", header)
	for d := 0; d < r.Days; d++ {
		row := fmt.Sprintf("%-5d", d)
		for p := 0; p < numPolicies; p++ {
			row += fmt.Sprintf(" %14.3f", r.Policies[p].Days[d].HitRatio())
		}
		line(&b, "%s", row)
	}
	row := fmt.Sprintf("%-5s", "All")
	for p := 0; p < numPolicies; p++ {
		t := r.Policies[p].Total()
		row += fmt.Sprintf(" %14.3f", t.HitRatio())
	}
	line(&b, "%s", row)
	line(&b, "SieveStore-D vs best unsieved: %+.0f%%   SieveStore-C vs best unsieved: %+.0f%%",
		100*(r.GainOverUnsieved(PSieveD)-1), 100*(r.GainOverUnsieved(PSieveC)-1))
	return b.String()
}

// GainOverUnsieved returns the hits ratio of policy p to the best unsieved
// configuration, computed over steady-state days (excluding SieveStore-D's
// day-0 bootstrap and the partial first day, as the paper's averages do).
func (r *Results) GainOverUnsieved(p int) float64 {
	best := 0.0
	for _, u := range []int{PAOD, PAOD32, PWMNA, PWMNA32} {
		if h := r.steadyHits(u); h > best {
			best = h
		}
	}
	if best == 0 {
		return 0
	}
	return r.steadyHits(p) / best
}

// steadyHits sums hits over days 2..end (day 0 is partial; day 1 is
// SieveStore-D's bootstrap-affected day).
func (r *Results) steadyHits(p int) float64 {
	var hits int64
	for d := 2; d < len(r.Policies[p].Days); d++ {
		hits += r.Policies[p].Days[d].Hits()
	}
	return float64(hits)
}

// Fig6 renders allocation-writes per day (Figure 6; log scale in the
// paper). Discrete policies report their batch moves in the same table, as
// the paper's Figure 6 bars do for SieveStore-D.
func (r *Results) Fig6() string {
	var b strings.Builder
	line(&b, "Figure 6: allocation-writes per day (512B blocks; discrete policies: epoch moves)")
	header := fmt.Sprintf("%-5s", "Day")
	for p := 0; p < numPolicies; p++ {
		header += fmt.Sprintf(" %14s", PolicyName(p))
	}
	line(&b, "%s", header)
	for d := 0; d < r.Days; d++ {
		row := fmt.Sprintf("%-5d", d)
		for p := 0; p < numPolicies; p++ {
			day := r.Policies[p].Days[d]
			row += fmt.Sprintf(" %14d", day.AllocWrites+day.Moves)
		}
		line(&b, "%s", row)
	}
	dTotal := r.Policies[PSieveD].Total()
	cTotal := r.Policies[PSieveC].Total()
	uTotal := r.Policies[PWMNA32].Total()
	rTotal := r.Policies[PRandC].Total()
	line(&b, "Totals: SieveStore-D moves=%d SieveStore-C allocs=%d WMNA-32GB allocs=%d (%.0fx) RandSieve-C=%d (%.1fx SieveStore)",
		dTotal.Moves, cTotal.AllocWrites, uTotal.AllocWrites,
		float64(uTotal.AllocWrites)/float64(max64(1, cTotal.AllocWrites)),
		rTotal.AllocWrites,
		float64(rTotal.AllocWrites)/float64(max64(1, cTotal.AllocWrites)))
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Fig7 renders the total-SSD-accesses breakdown (Figure 7).
func (r *Results) Fig7() string {
	var b strings.Builder
	line(&b, "Figure 7: SSD operations per day (512B blocks): readHits / writeHits / allocWrites")
	for _, p := range []int{PSieveD, PSieveC, PWMNA32, PAOD32} {
		line(&b, "%s:", PolicyName(p))
		for d := 0; d < r.Days; d++ {
			day := r.Policies[p].Days[d]
			line(&b, "  day %d: %10d %10d %10d  (total %d)",
				d, day.ReadHits, day.WriteHits, day.AllocWrites+day.Moves, day.SSDOps()+day.Moves)
		}
	}
	return b.String()
}

// OccupancyAnalysis is the Figure 8/9 cost computation for one policy.
type OccupancyAnalysis struct {
	Policy string
	// MaxOccupancy is the worst minute's drive-IOPS occupancy.
	MaxOccupancy float64
	// FracUnder1 is the fraction of minutes needing at most one drive.
	FracUnder1 float64
	// Coverage lists drives needed at the paper's coverage points.
	Coverage []ssd.CoveragePoint
}

// Occupancy computes Figure 8/9 for a policy: the trace-scale load series
// is multiplied back to paper scale before applying the X25-E ratings, so
// the drive counts are directly comparable to the paper's.
func (r *Results) Occupancy(p int) OccupancyAnalysis {
	spec := Device()
	loads := metrics.ScaleLoads(r.Policies[p].Minutes, float64(r.Config.Workload.Scale))
	occ := ssd.OccupancySeries(&spec, loads)
	maxOcc := 0.0
	for _, o := range occ {
		if o > maxOcc {
			maxOcc = o
		}
	}
	return OccupancyAnalysis{
		Policy:       r.Policies[p].Name,
		MaxOccupancy: maxOcc,
		FracUnder1:   ssd.FractionUnderOccupancy(occ, 1.0),
		Coverage:     ssd.CoverageTable(&spec, loads),
	}
}

// Fig89 renders the drive-occupancy and drives-needed analysis.
func (r *Results) Fig89() string {
	var b strings.Builder
	line(&b, "Figures 8-9: drive IOPS occupancy and drives needed (scaled to paper volume, Intel X25-E)")
	line(&b, "%-16s %8s %10s %10s %10s %10s %10s", "Policy", "maxOcc", "under1", "d@90%", "d@99%", "d@99.9%", "d@100%")
	for _, p := range []int{PSieveD, PSieveC, PWMNA, PWMNA32, PAOD32} {
		a := r.Occupancy(p)
		line(&b, "%-16s %8.2f %9.2f%% %10d %10d %10d %10d",
			a.Policy, a.MaxOccupancy, 100*a.FracUnder1,
			a.Coverage[0].Drives, a.Coverage[1].Drives, a.Coverage[2].Drives, a.Coverage[3].Drives)
	}
	return b.String()
}

// Endurance computes the §5.1 endurance argument: daily SSD write volume at
// paper scale vs the X25-E's 1 PB rating.
func (r *Results) Endurance(p int) (bytesPerDay, lifetimeYears float64) {
	total := r.Policies[p].Total()
	days := float64(len(r.Policies[p].Days))
	if days == 0 {
		return 0, 0
	}
	bytesPerDay = float64(total.SSDWrites()+total.Moves) * block.Size *
		float64(r.Config.Workload.Scale) / days
	spec := Device()
	return bytesPerDay, spec.LifetimeYears(bytesPerDay)
}

// LatencyTable renders the derived mean-access-latency comparison (an
// extension experiment: the paper reports cost via occupancy; this converts
// the same hit/miss mix into the user-visible latency the introduction
// motivates).
func (r *Results) LatencyTable() string {
	model := ssd.X25ELatency()
	var b strings.Builder
	line(&b, "Derived mean block-access latency (X25-E hits, 8-9 ms HDD misses):")
	line(&b, "%-16s %14s %10s", "Policy", "mean latency", "speedup")
	for _, p := range []int{PIdeal, PSieveD, PSieveC, PWMNA32, PWMNA, PRandC} {
		t := r.Policies[p].Total()
		mean := model.Mean(t.ReadHits, t.WriteHits, t.Reads-t.ReadHits, t.Writes-t.WriteHits)
		sp := model.Speedup(t.ReadHits, t.WriteHits, t.Reads-t.ReadHits, t.Writes-t.WriteHits)
		line(&b, "%-16s %14s %9.2fx", r.Policies[p].Name, mean.Round(time.Microsecond), sp)
	}
	return b.String()
}

// Sec53 renders the ensemble-vs-per-server comparison (§5.3).
func (r *Results) Sec53() string {
	var b strings.Builder
	line(&b, "Section 5.3: ensemble-level vs per-server caching")
	line(&b, "%-5s %12s %12s %12s %12s %12s", "Day", "Ensemble", "PerSrv-1%", "PerSrv-split", "SieveStore-D", "SieveStore-C")
	for d := 0; d < r.Days; d++ {
		line(&b, "%-5d %12.3f %12.3f %12.3f %12.3f %12.3f",
			d,
			r.EnsembleShared[d].HitRatio(),
			r.PerServerElastic[d].HitRatio(),
			r.PerServerStatic[d].HitRatio(),
			r.Policies[PSieveD].Days[d].HitRatio(),
			r.Policies[PSieveC].Days[d].HitRatio())
	}
	line(&b, "(Ensemble and per-server columns are same-day oracle configurations; the")
	line(&b, " ensemble cache dominates the statically split per-server caches at equal cost,")
	line(&b, " and matches the elastic per-server ideal with a single shared device.)")
	return b.String()
}

// Summary renders the headline conclusions.
func (r *Results) Summary() string {
	var b strings.Builder
	dEnd, dLife := r.Endurance(PSieveD)
	cEnd, cLife := r.Endurance(PSieveC)
	line(&b, "SieveStore reproduction summary (scale 1/%d, %s elapsed)", r.Config.Workload.Scale, r.Elapsed.Round(1e9))
	line(&b, "  hits vs best unsieved: SieveStore-D %+.0f%%, SieveStore-C %+.0f%%",
		100*(r.GainOverUnsieved(PSieveD)-1), 100*(r.GainOverUnsieved(PSieveC)-1))
	cAlloc := r.Policies[PSieveC].Total().AllocWrites
	uAlloc := r.Policies[PWMNA32].Total().AllocWrites
	line(&b, "  allocation-writes: SieveStore-C %d vs WMNA-32GB %d (%.0fx reduction)",
		cAlloc, uAlloc, float64(uAlloc)/float64(max64(1, cAlloc)))
	sd := r.Occupancy(PSieveD)
	sc := r.Occupancy(PSieveC)
	w := r.Occupancy(PWMNA32)
	line(&b, "  drives @99.9%% coverage: SieveStore-D %d, SieveStore-C %d, WMNA-32GB %d",
		sd.Coverage[2].Drives, sc.Coverage[2].Drives, w.Coverage[2].Drives)
	line(&b, "  SSD endurance: D %.1f TB/day (%.0f yr), C %.1f TB/day (%.0f yr)",
		dEnd/1e12, dLife, cEnd/1e12, cLife)
	return b.String()
}
