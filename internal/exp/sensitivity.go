package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/sieve"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file implements the paper's sensitivity analyses (§5.1) and the
// design-choice ablations DESIGN.md calls out.

// DThresholdRow is one point of the SieveStore-D threshold sweep.
type DThresholdRow struct {
	Threshold int64
	// HitRatio is the whole-trace capture ratio (excluding the bootstrap
	// day, which no threshold can help).
	HitRatio float64
	// Moves is the total number of epoch batch moves.
	Moves int64
}

// SensitivityD sweeps SieveStore-D's epoch threshold. The discrete model
// makes this computable from per-day counters alone: day d's hits under
// threshold t are the day-d counts of blocks whose day-(d-1) count
// reached t.
func SensitivityD(cfg Config, thresholds []int64) ([]DThresholdRow, error) {
	gen, err := workload.New(cfg.Workload)
	if err != nil {
		return nil, err
	}
	days := cfg.Workload.Days
	counters := make([]*analysis.Counter, days)
	for d := 0; d < days; d++ {
		reqs, err := gen.Day(d)
		if err != nil {
			return nil, err
		}
		c := analysis.NewCounter()
		for i := range reqs {
			c.AddRequest(&reqs[i])
		}
		counters[d] = c
	}
	var totalAccesses int64
	for d := 1; d < days; d++ {
		totalAccesses += counters[d].Total()
	}
	capacity := cfg.CacheBlocks(cfg.CacheGB)
	rows := make([]DThresholdRow, 0, len(thresholds))
	for _, t := range thresholds {
		var hits, moves int64
		var prev map[block.Key]bool
		for d := 0; d < days; d++ {
			// TopFraction(1.0) is sorted hottest-first, so truncating at
			// the cache capacity keeps the hottest qualifying blocks —
			// exactly what the batch allocator does.
			sel := make(map[block.Key]bool)
			for _, k := range counters[d].TopFraction(1.0) {
				if counters[d].Count(k) < t || len(sel) >= capacity {
					break
				}
				sel[k] = true
			}
			if d > 0 {
				for k := range prev {
					hits += counters[d].Count(k)
				}
			}
			for k := range sel {
				if !prev[k] {
					moves++
				}
			}
			prev = sel
		}
		ratio := 0.0
		if totalAccesses > 0 {
			ratio = float64(hits) / float64(totalAccesses)
		}
		rows = append(rows, DThresholdRow{Threshold: t, HitRatio: ratio, Moves: moves})
	}
	return rows, nil
}

// CWindowRow is one point of the SieveStore-C window sweep.
type CWindowRow struct {
	Window   time.Duration
	HitRatio float64
	Allocs   int64
}

// SensitivityCWindow reruns SieveStore-C with different sliding-window
// lengths W (the paper observes degradation below 8 h and insensitivity
// above).
func SensitivityCWindow(cfg Config, windows []time.Duration) ([]CWindowRow, error) {
	rows := make([]CWindowRow, 0, len(windows))
	for _, w := range windows {
		gen, err := workload.New(cfg.Workload)
		if err != nil {
			return nil, err
		}
		sc := cfg.SieveC
		sc.Window = w
		policy, err := sieve.NewC(sc)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunContinuous(gen, cfg.CacheBlocks(cfg.CacheGB), policy)
		if err != nil {
			return nil, err
		}
		t := res.Total()
		rows = append(rows, CWindowRow{Window: w, HitRatio: t.HitRatio(), Allocs: t.AllocWrites})
	}
	return rows, nil
}

// AblationRow compares SieveStore-C against its single-tier (IMCT-only)
// ablation, which suffers aliased admissions (§3.3's motivation for the
// MCT).
type AblationRow struct {
	Name        string
	HitRatio    float64
	AllocWrites int64
}

// AblationSingleTier runs the two-tier sieve and the single-tier ablation
// side by side.
func AblationSingleTier(cfg Config) ([]AblationRow, error) {
	run := func(p sieve.Policy) (AblationRow, error) {
		gen, err := workload.New(cfg.Workload)
		if err != nil {
			return AblationRow{}, err
		}
		res, err := sim.RunContinuous(gen, cfg.CacheBlocks(cfg.CacheGB), p)
		if err != nil {
			return AblationRow{}, err
		}
		t := res.Total()
		return AblationRow{Name: p.Name(), HitRatio: t.HitRatio(), AllocWrites: t.AllocWrites}, nil
	}
	two, err := sieve.NewC(cfg.SieveC)
	if err != nil {
		return nil, err
	}
	one, err := sieve.NewSingleTier(cfg.SieveC)
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, 0, 2)
	for _, p := range []sieve.Policy{two, one} {
		row, err := run(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// SubwindowRow compares k-subwindow discretizations of the sliding window.
type SubwindowRow struct {
	Subwindows  int
	HitRatio    float64
	AllocWrites int64
}

// AblationSubwindows sweeps the window discretization k (the paper uses
// k = 4; the ablation shows the discretization loses little accuracy).
func AblationSubwindows(cfg Config, ks []int) ([]SubwindowRow, error) {
	rows := make([]SubwindowRow, 0, len(ks))
	for _, k := range ks {
		gen, err := workload.New(cfg.Workload)
		if err != nil {
			return nil, err
		}
		sc := cfg.SieveC
		sc.Subwindows = k
		policy, err := sieve.NewC(sc)
		if err != nil {
			return nil, err
		}
		res, err := sim.RunContinuous(gen, cfg.CacheBlocks(cfg.CacheGB), policy)
		if err != nil {
			return nil, err
		}
		t := res.Total()
		rows = append(rows, SubwindowRow{Subwindows: k, HitRatio: t.HitRatio(), AllocWrites: t.AllocWrites})
	}
	return rows, nil
}

// FormatSensitivity renders the sensitivity/ablation rows.
func FormatSensitivity(dRows []DThresholdRow, wRows []CWindowRow, aRows []AblationRow, kRows []SubwindowRow) string {
	var b strings.Builder
	line(&b, "Sensitivity (paper §5.1):")
	line(&b, "  SieveStore-D threshold sweep (hit ratio | moves):")
	for _, r := range dRows {
		line(&b, "    t=%-3d  %.3f  %d", r.Threshold, r.HitRatio, r.Moves)
	}
	line(&b, "  SieveStore-C window sweep:")
	for _, r := range wRows {
		line(&b, "    W=%-6s %.3f  allocs=%d", r.Window, r.HitRatio, r.Allocs)
	}
	line(&b, "Ablations:")
	for _, r := range aRows {
		line(&b, "  %-18s hit=%.3f alloc-writes=%d", r.Name, r.HitRatio, r.AllocWrites)
	}
	if len(aRows) == 2 && aRows[1].AllocWrites > 0 {
		line(&b, "  (single-tier admits %.1fx the allocation-writes of the two-tier sieve)",
			float64(aRows[1].AllocWrites)/float64(max64(1, aRows[0].AllocWrites)))
	}
	line(&b, "  Subwindow discretization k:")
	for _, r := range kRows {
		line(&b, "    k=%-2d  hit=%.3f alloc-writes=%d", r.Subwindows, r.HitRatio, r.AllocWrites)
	}
	return b.String()
}

// ReplacementRow compares replacement policies under a fixed allocation
// policy.
type ReplacementRow struct {
	Name        string
	HitRatio    float64
	AllocWrites int64
}

// AblationReplacement runs the §3.1 demonstration: the unsieved baseline
// under five replacement policies (LRU, CLOCK, FIFO, and the modern
// promotion-free SIEVE and S3-FIFO engines) against SieveStore-C under
// plain LRU. The classic policies cannot close the hit-ratio gap; the
// quick-demotion engines (S3-FIFO's probationary queue is itself a
// coarse admission filter) can come close on hits — but every unsieved
// row still allocates on every miss, paying an order of magnitude more
// allocation-writes. The cost-performance gap belongs to the allocation
// policy either way.
func AblationReplacement(cfg Config) ([]ReplacementRow, error) {
	capacity := cfg.CacheBlocks(cfg.CacheGB)
	run := func(tags cache.TagStore, p sieve.Policy) (ReplacementRow, error) {
		gen, err := workload.New(cfg.Workload)
		if err != nil {
			return ReplacementRow{}, err
		}
		c := sim.NewContinuousTags(tags, p)
		for d := 0; d < cfg.Workload.Days; d++ {
			reqs, err := gen.Day(d)
			if err != nil {
				return ReplacementRow{}, err
			}
			for i := range reqs {
				c.Process(&reqs[i])
			}
		}
		res := c.Result(0)
		t := res.Total()
		return ReplacementRow{Name: res.Name, HitRatio: t.HitRatio(), AllocWrites: t.AllocWrites}, nil
	}
	sieveC, err := sieve.NewC(cfg.SieveC)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		tags cache.TagStore
		p    sieve.Policy
	}{
		{cache.New(capacity), sieveC},
		{cache.New(capacity), sieve.WMNA{}},
		{cache.NewClock(capacity), sieve.WMNA{}},
		{cache.NewFIFO(capacity), sieve.WMNA{}},
		{cache.NewSieve(capacity), sieve.WMNA{}},
		{cache.NewS3FIFO(capacity), sieve.WMNA{}},
	}
	rows := make([]ReplacementRow, 0, len(configs))
	for _, c := range configs {
		row, err := run(c.tags, c.p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatReplacement renders the replacement ablation.
func FormatReplacement(rows []ReplacementRow) string {
	var b strings.Builder
	line(&b, "Replacement ablation (§3.1: replacement cannot substitute for sieving):")
	for _, r := range rows {
		line(&b, "  %-24s hit=%.3f alloc-writes=%d", r.Name, r.HitRatio, r.AllocWrites)
	}
	if len(rows) >= 2 {
		best := rows[1].HitRatio
		for _, r := range rows[2:] {
			if r.HitRatio > best {
				best = r.HitRatio
			}
		}
		if best < rows[0].HitRatio {
			line(&b, "  (best unsieved replacement reaches %.3f — still %.0f%% behind the sieved cache)",
				best, 100*(1-best/rows[0].HitRatio))
		} else {
			line(&b, "  (quick-demotion engines reach %.3f hits unsieved — but at ≥10× the sieved cache's allocation-writes)",
				best)
		}
	}
	return b.String()
}

// OracleRow is one configuration of the §3.1 oracle experiment over an
// actual trace day.
type OracleRow struct {
	Name        string
	Hits        int64
	AllocWrites int64
	Accesses    int64
}

// HitRatio returns the captured fraction.
func (r OracleRow) HitRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// RunMinOracle executes the §3.1 thought experiment on a real trace day:
// Belady's MIN with allocate-on-demand (the unbeatable replacement policy,
// still drowning in allocation-writes) and Belady with selective
// allocation (maximal hits, still orders of magnitude more allocation-
// writes than sieving needs). Both use clairvoyance no real system has.
func RunMinOracle(cfg Config, day int) ([]OracleRow, error) {
	gen, err := workload.New(cfg.Workload)
	if err != nil {
		return nil, err
	}
	reqs, err := gen.Day(day)
	if err != nil {
		return nil, err
	}
	var stream []block.Key
	var buf []block.Access
	for i := range reqs {
		buf = trace.Expand(buf[:0], &reqs[i])
		for _, a := range buf {
			stream = append(stream, a.Key)
		}
	}
	capacity := cfg.CacheBlocks(cfg.CacheGB)
	aod := sieve.BeladyAOD(stream, capacity)
	sel := sieve.BeladySelective(stream, capacity)
	n := int64(len(stream))
	return []OracleRow{
		{Name: "MIN + allocate-on-demand", Hits: int64(aod.Hits), AllocWrites: int64(aod.AllocWrites), Accesses: n},
		{Name: "MIN + selective-allocation", Hits: int64(sel.Hits), AllocWrites: int64(sel.AllocWrites), Accesses: n},
	}, nil
}

// FormatOracle renders the oracle rows next to a measured SieveStore-C day.
func FormatOracle(rows []OracleRow, sieveC sim.DayStats) string {
	var b strings.Builder
	line(&b, "§3.1 oracle experiment on one trace day (clairvoyant baselines):")
	for _, r := range rows {
		line(&b, "  %-28s hit=%.3f alloc-writes=%d (%.1f%% of accesses)",
			r.Name, r.HitRatio(), r.AllocWrites, 100*float64(r.AllocWrites)/float64(r.Accesses))
	}
	line(&b, "  %-28s hit=%.3f alloc-writes=%d (%.2f%% of accesses)",
		"SieveStore-C (no oracle)", sieveC.HitRatio(), sieveC.AllocWrites,
		100*float64(sieveC.AllocWrites)/float64(max64(1, sieveC.Accesses)))
	line(&b, "  Even clairvoyant replacement cannot avoid allocation-writes without sieving.")
	return b.String()
}

// SieveCDay runs SieveStore-C alone over the trace and returns one day's
// statistics — a cheap companion for the oracle comparison.
func SieveCDay(cfg Config, day int) (sim.DayStats, error) {
	gen, err := workload.New(cfg.Workload)
	if err != nil {
		return sim.DayStats{}, err
	}
	policy, err := sieve.NewC(cfg.SieveC)
	if err != nil {
		return sim.DayStats{}, err
	}
	res, err := sim.RunContinuous(gen, cfg.CacheBlocks(cfg.CacheGB), policy)
	if err != nil {
		return sim.DayStats{}, err
	}
	if day < 0 || day >= len(res.Days) {
		return sim.DayStats{}, fmt.Errorf("exp: day %d out of range", day)
	}
	return res.Days[day], nil
}

// SeedRow is one trace seed's headline gains.
type SeedRow struct {
	Seed  int64
	GainD float64 // SieveStore-D hits / best unsieved hits (steady days)
	GainC float64
	Ideal float64 // whole-trace ideal hit ratio
}

// SeedSweep reruns the full evaluation across several trace seeds to check
// that the headline conclusions (sieved > unsieved, orderings) are not
// artifacts of one random trace instance.
func SeedSweep(cfg Config, seeds []int64) ([]SeedRow, error) {
	rows := make([]SeedRow, 0, len(seeds))
	for _, seed := range seeds {
		c := cfg
		c.Workload.Seed = seed
		res, err := Run(c)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SeedRow{
			Seed:  seed,
			GainD: res.GainOverUnsieved(PSieveD),
			GainC: res.GainOverUnsieved(PSieveC),
			Ideal: res.Policies[PIdeal].Total().HitRatio(),
		})
	}
	return rows, nil
}

// FormatSeedSweep renders the robustness table.
func FormatSeedSweep(rows []SeedRow) string {
	var b strings.Builder
	line(&b, "Seed robustness (gains over the best unsieved configuration):")
	line(&b, "  %-6s %10s %10s %10s", "seed", "ideal-hit", "D-gain", "C-gain")
	for _, r := range rows {
		line(&b, "  %-6d %10.3f %9.2fx %9.2fx", r.Seed, r.Ideal, r.GainD, r.GainC)
	}
	return b.String()
}
