package exp

import (
	"strings"

	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/sim"
	"repro/internal/ssd"
	"repro/internal/workload"
)

// This file runs the paper's Figure 1 design space as an executable 2×2
// matrix: {sieved, unsieved} × {ensemble-level, per-server}. All four
// quadrants are full continuous-cache simulations at identical total
// capacity, and the cost column counts physical drives (per-server
// configurations pay one device per server — the minimum-drive problem the
// paper notes).
type QuadrantResult struct {
	// Quadrant is the paper's numbering: I sieved+ensemble,
	// II unsieved+ensemble, III unsieved+per-server, IV sieved+per-server.
	Quadrant string
	Name     string
	HitRatio float64
	// AllocWrites is total cache-fill writes (blocks).
	AllocWrites int64
	// Drives is the physical device count at 99.9% time coverage.
	Drives int
}

// Quadrants evaluates the 2×2 design space at cfg's scale.
func Quadrants(cfg Config) ([]QuadrantResult, error) {
	capacity := cfg.CacheBlocks(cfg.CacheGB)
	servers := len(cfg.Workload.Servers)
	spec := Device()
	scale := float64(cfg.Workload.Scale)

	newGen := func() (*workload.Generator, error) { return workload.New(cfg.Workload) }
	newSieve := func(imct int) (sieve.Policy, error) {
		sc := cfg.SieveC
		if imct > 0 {
			sc.IMCTSize = imct
		}
		return sieve.NewC(sc)
	}

	var out []QuadrantResult

	// Quadrant I: SieveStore — sieved, ensemble-level.
	gen, err := newGen()
	if err != nil {
		return nil, err
	}
	policy, err := newSieve(0)
	if err != nil {
		return nil, err
	}
	resI, err := sim.RunContinuous(gen, capacity, policy)
	if err != nil {
		return nil, err
	}
	loadsI := metrics.ScaleLoads(resI.Minutes, scale)
	out = append(out, QuadrantResult{
		Quadrant: "I", Name: "SieveStore-C (sieved, ensemble)",
		HitRatio:    resI.Total().HitRatio(),
		AllocWrites: resI.Total().AllocWrites,
		Drives:      ssd.DrivesAtCoverage(ssd.DrivesNeeded(&spec, loadsI), 0.999),
	})

	// Quadrant II: unsieved, ensemble-level (WMNA, the stronger baseline).
	gen, err = newGen()
	if err != nil {
		return nil, err
	}
	resII, err := sim.RunContinuous(gen, capacity, sieve.WMNA{})
	if err != nil {
		return nil, err
	}
	loadsII := metrics.ScaleLoads(resII.Minutes, scale)
	out = append(out, QuadrantResult{
		Quadrant: "II", Name: "WMNA (unsieved, ensemble)",
		HitRatio:    resII.Total().HitRatio(),
		AllocWrites: resII.Total().AllocWrites,
		Drives:      ssd.DrivesAtCoverage(ssd.DrivesNeeded(&spec, loadsII), 0.999),
	})

	// Quadrant III: unsieved, per-server.
	gen, err = newGen()
	if err != nil {
		return nil, err
	}
	combIII, perIII, err := sim.RunPerServerContinuous(gen, servers, capacity,
		func(int) (sieve.Policy, error) { return sieve.WMNA{}, nil })
	if err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		Quadrant: "III", Name: "WMNA (unsieved, per-server)",
		HitRatio:    combIII.Total().HitRatio(),
		AllocWrites: combIII.Total().AllocWrites,
		Drives:      perServerDrives(&spec, perIII, scale),
	})

	// Quadrant IV: sieved, per-server.
	gen, err = newGen()
	if err != nil {
		return nil, err
	}
	perSieveIMCT := cfg.SieveC.IMCTSize / servers
	if perSieveIMCT < 256 {
		perSieveIMCT = 256
	}
	combIV, perIV, err := sim.RunPerServerContinuous(gen, servers, capacity,
		func(int) (sieve.Policy, error) { return newSieve(perSieveIMCT) })
	if err != nil {
		return nil, err
	}
	out = append(out, QuadrantResult{
		Quadrant: "IV", Name: "SieveStore-C (sieved, per-server)",
		HitRatio:    combIV.Total().HitRatio(),
		AllocWrites: combIV.Total().AllocWrites,
		Drives:      perServerDrives(&spec, perIV, scale),
	})
	return out, nil
}

func perServerDrives(spec *ssd.DeviceSpec, perServer []*sim.Result, scale float64) int {
	scaled := make([]*sim.Result, len(perServer))
	for i, r := range perServer {
		scaled[i] = &sim.Result{Name: r.Name, Days: r.Days, Minutes: metrics.ScaleLoads(r.Minutes, scale)}
	}
	return sim.PerServerDriveNeeds(spec, scaled, 0.999)
}

// FormatQuadrants renders the Figure 1 matrix.
func FormatQuadrants(rows []QuadrantResult) string {
	var b strings.Builder
	line(&b, "Figure 1 design space (equal total capacity; drives at 99.9%% coverage):")
	line(&b, "%-4s %-36s %8s %14s %8s", "Q", "Configuration", "Hit%", "AllocWrites", "Drives")
	for _, r := range rows {
		line(&b, "%-4s %-36s %8.2f %14d %8d", r.Quadrant, r.Name, 100*r.HitRatio, r.AllocWrites, r.Drives)
	}
	if len(rows) == 4 {
		line(&b, "Quadrant I dominates: most hits (vs II: %+.0f%%, vs IV: %+.0f%%) at the fewest drives.",
			100*(rows[0].HitRatio/rows[1].HitRatio-1), 100*(rows[0].HitRatio/rows[3].HitRatio-1))
	}
	return b.String()
}
