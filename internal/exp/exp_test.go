package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// cdfAt reads a CDF curve at a percentile.
func cdfAt(points []analysis.CDFPoint, pct float64) float64 {
	for _, p := range points {
		if p.Percentile >= pct {
			return p.CumFraction
		}
	}
	if len(points) == 0 {
		return 0
	}
	return points[len(points)-1].CumFraction
}

// expTestScale keeps the end-to-end experiment cheap while preserving the
// capacity ratios the shapes depend on.
const expTestScale = 8192

// runOnce caches one experiment run across tests in this package.
var cachedResults *Results

func results(t *testing.T) *Results {
	t.Helper()
	if cachedResults == nil {
		res, err := Run(DefaultConfig(expTestScale))
		if err != nil {
			t.Fatal(err)
		}
		cachedResults = res
	}
	return cachedResults
}

func TestRunProducesAllPolicies(t *testing.T) {
	res := results(t)
	if res.Days != 8 || len(res.DayInfo) != 8 {
		t.Fatalf("days = %d, dayinfo = %d", res.Days, len(res.DayInfo))
	}
	for p := 0; p < numPolicies; p++ {
		r := res.Policies[p]
		if r == nil {
			t.Fatalf("policy %s missing", PolicyName(p))
		}
		if len(r.Days) != 8 {
			t.Errorf("%s: %d day rows", PolicyName(p), len(r.Days))
		}
		// Allocation-writes triggered by requests issued just before
		// midnight may complete in the next minute, so the series can run
		// slightly past the nominal trace length.
		if n := len(r.Minutes); n < 8*24*60 || n > 8*24*60+5 {
			t.Errorf("%s: %d minutes, want ≈11520", PolicyName(p), n)
		}
		tot := r.Total()
		if tot.Accesses == 0 {
			t.Errorf("%s: zero accesses", PolicyName(p))
		}
		// Every policy sees the same access stream.
		if tot.Accesses != res.Policies[0].Total().Accesses {
			t.Errorf("%s: access count differs", PolicyName(p))
		}
		if tot.Reads+tot.Writes != tot.Accesses {
			t.Errorf("%s: reads+writes != accesses", PolicyName(p))
		}
		if tot.Hits() > tot.Accesses {
			t.Errorf("%s: more hits than accesses", PolicyName(p))
		}
	}
}

func TestPaperShapeHolds(t *testing.T) {
	res := results(t)
	ideal := res.steadyHits(PIdeal)
	d := res.steadyHits(PSieveD)
	c := res.steadyHits(PSieveC)
	if !(ideal >= c && c >= d) {
		t.Errorf("ordering broken: ideal=%v C=%v D=%v", ideal, c, d)
	}
	// SieveStore variants must beat the best unsieved cache on steady days
	// (Figure 5's headline: +35% / +50%).
	if g := res.GainOverUnsieved(PSieveC); g < 1.1 {
		t.Errorf("SieveStore-C gain over unsieved = %.2f, want >1.1", g)
	}
	if g := res.GainOverUnsieved(PSieveD); g < 1.0 {
		t.Errorf("SieveStore-D gain over unsieved = %.2f, want ≥1.0", g)
	}
	// SieveStore-D bootstraps with an empty cache on day 0.
	if res.Policies[PSieveD].Days[0].Hits() != 0 {
		t.Error("SieveStore-D should have zero hits on day 0")
	}
	// Allocation-writes: orders of magnitude apart (Figure 6).
	cAlloc := res.Policies[PSieveC].Total().AllocWrites
	uAlloc := res.Policies[PWMNA32].Total().AllocWrites
	if cAlloc*20 > uAlloc {
		t.Errorf("alloc-writes not separated: C=%d WMNA32=%d", cAlloc, uAlloc)
	}
	// Random sieves allocate far more than SieveStore (≈8.5x in the paper).
	rAlloc := res.Policies[PRandC].Total().AllocWrites
	if rAlloc < 2*cAlloc {
		t.Errorf("RandSieve-C allocs = %d, want ≫ SieveStore-C's %d", rAlloc, cAlloc)
	}
	// SieveStore-D's batch moves stay tiny relative to accesses (§3.2:
	// ≤0.5%).
	dTot := res.Policies[PSieveD].Total()
	if f := float64(dTot.Moves) / float64(dTot.Accesses); f > 0.005 {
		t.Errorf("SieveStore-D moves fraction = %.4f, want ≤0.005", f)
	}
	// RandSieve-BlkD is hopeless (Figure 5).
	if res.Policies[PRandBlkD].Total().HitRatio() > 0.05 {
		t.Error("RandSieve-BlkD should capture almost nothing")
	}
}

func TestDayInfoStatistics(t *testing.T) {
	res := results(t)
	for _, di := range res.DayInfo[1:] {
		if di.Top1Share < 0.08 || di.Top1Share > 0.62 {
			t.Errorf("day %d top-1%% share = %.3f out of range", di.Day, di.Top1Share)
		}
		if di.LE10 < 0.95 {
			t.Errorf("day %d ≤10-access fraction = %.3f", di.Day, di.LE10)
		}
		if di.Once < 0.3 || di.Once > 0.75 {
			t.Errorf("day %d single-access fraction = %.3f", di.Day, di.Once)
		}
		sum := 0.0
		for _, s := range di.Composition {
			sum += s
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("day %d composition sums to %.3f", di.Day, sum)
		}
	}
	// Successive-day top-set overlap is partial but substantial (O2).
	for _, di := range res.DayInfo[2:] {
		if di.OverlapWithPrev < 0.2 || di.OverlapWithPrev > 0.98 {
			t.Errorf("day %d overlap = %.2f", di.Day, di.OverlapWithPrev)
		}
	}
}

func TestOccupancyAndEndurance(t *testing.T) {
	res := results(t)
	sieveOcc := res.Occupancy(PSieveC)
	wmnaOcc := res.Occupancy(PWMNA32)
	// §5.2: SieveStore fits in (nearly) one drive; WMNA needs several.
	if sieveOcc.Coverage[2].Drives > 2 {
		t.Errorf("SieveStore-C needs %d drives @99.9%%", sieveOcc.Coverage[2].Drives)
	}
	if wmnaOcc.Coverage[2].Drives <= sieveOcc.Coverage[2].Drives {
		t.Errorf("WMNA should need more drives: %d vs %d",
			wmnaOcc.Coverage[2].Drives, sieveOcc.Coverage[2].Drives)
	}
	if sieveOcc.FracUnder1 < 0.95 {
		t.Errorf("SieveStore-C under-1 fraction = %.3f", sieveOcc.FracUnder1)
	}
	// §5.1: endurance ≥ 10 years at paper scale.
	if _, life := res.Endurance(PSieveC); life < 5 {
		t.Errorf("SieveStore-C lifetime = %.1f years", life)
	}
}

func TestReportRenderers(t *testing.T) {
	res := results(t)
	for name, s := range map[string]string{
		"Table1":  res.Table1(),
		"Fig2a":   res.Fig2a(),
		"Fig2b":   res.Fig2b(),
		"Fig3":    res.Fig3(),
		"Fig5":    res.Fig5(),
		"Fig6":    res.Fig6(),
		"Fig7":    res.Fig7(),
		"Fig89":   res.Fig89(),
		"Sec53":   res.Sec53(),
		"Summary": res.Summary(),
	} {
		if len(s) == 0 || !strings.Contains(s, "\n") {
			t.Errorf("%s renders empty", name)
		}
	}
	if !strings.Contains(res.Table1(), "prxy") {
		t.Error("Table1 missing server rows")
	}
	if !strings.Contains(res.Fig5(), "SieveStore-C") {
		t.Error("Fig5 missing policies")
	}
}

func TestSkewCurvesCollected(t *testing.T) {
	res := results(t)
	if len(res.Skew.PrxyDay2) == 0 || len(res.Skew.Src1Day2) == 0 {
		t.Fatal("Fig3a curves missing")
	}
	if len(res.Skew.WebVol0Day2) == 0 || len(res.Skew.WebVol1Day2) == 0 {
		t.Fatal("Fig3b curves missing")
	}
	if len(res.Skew.StgDay3) == 0 || len(res.Skew.StgDay5) == 0 {
		t.Fatal("Fig3c curves missing")
	}
	// Prxy must be visibly more skewed than Src1 at the 5% point.
	prxy := cdfAt(res.Skew.PrxyDay2, 0.05)
	src1 := cdfAt(res.Skew.Src1Day2, 0.05)
	if prxy <= src1 {
		t.Errorf("prxy CDF@5%% (%.3f) should exceed src1's (%.3f)", prxy, src1)
	}
}

func TestSensitivityD(t *testing.T) {
	cfg := DefaultConfig(expTestScale)
	rows, err := SensitivityD(cfg, []int64{4, 8, 10, 14, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Hit ratio declines (weakly) as the threshold rises; moves decline
	// strongly. In the 8-20 range the hit ratio must be fairly flat (§5.1).
	for i := 1; i < len(rows); i++ {
		if rows[i].HitRatio > rows[i-1].HitRatio+1e-9 {
			t.Errorf("hit ratio increased with threshold: %+v", rows)
		}
		if rows[i].Moves > rows[i-1].Moves {
			t.Errorf("moves increased with threshold: %+v", rows)
		}
	}
	// The paper reports insensitivity in the 8-20 range. Our synthetic hot
	// counts sit closer to the boundary than the real traces' (a deliberate
	// trade to reproduce the Figure 5 sieved-vs-unsieved gap), so the decay
	// is steeper; assert it remains gradual rather than cliff-like.
	if rows[4].HitRatio < rows[1].HitRatio*0.4 {
		t.Errorf("hit ratio too sensitive in 8-20 range: t8=%.3f t20=%.3f",
			rows[1].HitRatio, rows[4].HitRatio)
	}
}

func TestSensitivityCWindowAndAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full simulations")
	}
	cfg := DefaultConfig(expTestScale)
	wRows, err := SensitivityCWindow(cfg, []time.Duration{2 * time.Hour, 8 * time.Hour, 16 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// Short windows degrade (the paper observed degradation below 8 h).
	if wRows[0].HitRatio > wRows[1].HitRatio {
		t.Errorf("2h window (%.3f) should not beat 8h (%.3f)", wRows[0].HitRatio, wRows[1].HitRatio)
	}
	aRows, err := AblationSingleTier(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(aRows) != 2 {
		t.Fatal("want 2 ablation rows")
	}
	// The single-tier sieve admits aliased low-reuse blocks: far more
	// allocation-writes.
	if aRows[1].AllocWrites*10 < 15*aRows[0].AllocWrites {
		t.Errorf("single-tier allocs = %d, two-tier = %d; expected blowup",
			aRows[1].AllocWrites, aRows[0].AllocWrites)
	}
	kRows, err := AblationSubwindows(cfg, []int{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	// k barely matters (the discretization is benign).
	for _, r := range kRows[1:] {
		if diff := r.HitRatio - kRows[0].HitRatio; diff > 0.05 || diff < -0.05 {
			t.Errorf("subwindow sensitivity too strong: %+v", kRows)
		}
	}
	out := FormatSensitivity(nil, wRows, aRows, kRows)
	if !strings.Contains(out, "SingleTier") {
		t.Error("FormatSensitivity missing ablation")
	}
}

func TestPolicyNameCoversAll(t *testing.T) {
	seen := map[string]bool{}
	for p := 0; p < numPolicies; p++ {
		name := PolicyName(p)
		if name == "" || seen[name] {
			t.Errorf("policy %d has bad/duplicate name %q", p, name)
		}
		seen[name] = true
	}
	if got := PolicyName(99); got != "policy-99" {
		t.Errorf("unknown policy name = %q", got)
	}
}

func TestCacheBlocksScaling(t *testing.T) {
	cfg := DefaultConfig(512)
	// 16 GiB at 1/512 = 65536 blocks; the 32 GiB comparison cache doubles it.
	if got := cfg.CacheBlocks(16); got != 65536 {
		t.Errorf("16GB at 1/512 = %d blocks", got)
	}
	if got := cfg.CacheBlocks(32); got != 131072 {
		t.Errorf("32GB at 1/512 = %d blocks", got)
	}
	// Tiny configurations floor at 8 blocks.
	tiny := DefaultConfig(1 << 30)
	if got := tiny.CacheBlocks(0.000001); got != 8 {
		t.Errorf("floor = %d", got)
	}
}
