package block

import (
	"testing"
	"testing/quick"
)

func TestMakeKeyRoundTrip(t *testing.T) {
	cases := []struct {
		server, volume int
		number         uint64
	}{
		{0, 0, 0},
		{12, 4, 123456789},
		{MaxServers - 1, MaxVolumes - 1, MaxBlockNumber},
		{1, 0, 1},
		{0, 1, MaxBlockNumber - 1},
	}
	for _, c := range cases {
		k := MakeKey(c.server, c.volume, c.number)
		if k.Server() != c.server {
			t.Errorf("MakeKey(%d,%d,%d).Server() = %d", c.server, c.volume, c.number, k.Server())
		}
		if k.Volume() != c.volume {
			t.Errorf("MakeKey(%d,%d,%d).Volume() = %d", c.server, c.volume, c.number, k.Volume())
		}
		if k.Number() != c.number {
			t.Errorf("MakeKey(%d,%d,%d).Number() = %d", c.server, c.volume, c.number, k.Number())
		}
	}
}

func TestMakeKeyRoundTripProperty(t *testing.T) {
	f := func(server, volume uint8, number uint64) bool {
		s := int(server) % MaxServers
		v := int(volume) % MaxVolumes
		n := number & MaxBlockNumber
		k := MakeKey(s, v, n)
		return k.Server() == s && k.Volume() == v && k.Number() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyOrderingWithinVolume(t *testing.T) {
	// Keys of consecutive blocks in a volume must be consecutive integers:
	// the external-sort pipeline in sieved relies on run detection.
	f := func(number uint64) bool {
		n := number & (MaxBlockNumber - 1) // leave room for +1
		k := MakeKey(3, 2, n)
		return k.Next() == MakeKey(3, 2, n+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeKeyPanicsOutOfRange(t *testing.T) {
	cases := []struct {
		name           string
		server, volume int
		number         uint64
	}{
		{"server", MaxServers, 0, 0},
		{"negative server", -1, 0, 0},
		{"volume", 0, MaxVolumes, 0},
		{"number", 0, 0, MaxBlockNumber + 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("MakeKey(%d,%d,%d) did not panic", c.server, c.volume, c.number)
				}
			}()
			MakeKey(c.server, c.volume, c.number)
		})
	}
}

func TestKeyOffset(t *testing.T) {
	k := MakeKey(1, 1, 10)
	if got := k.Offset(); got != 10*Size {
		t.Errorf("Offset() = %d, want %d", got, 10*Size)
	}
}

func TestKeyString(t *testing.T) {
	k := MakeKey(7, 3, 42)
	if got := k.String(); got != "7:3:42" {
		t.Errorf("String() = %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Read.String() != "Read" || Write.String() != "Write" {
		t.Errorf("Kind strings wrong: %q %q", Read, Write)
	}
	if Read.IsWrite() || !Write.IsWrite() {
		t.Error("IsWrite wrong")
	}
}

func TestRequestBlocks(t *testing.T) {
	cases := []struct {
		name   string
		offset uint64
		length uint32
		blocks int
		pages  int
	}{
		{"single aligned block", 0, 512, 1, 1},
		{"zero length", 1024, 0, 1, 1},
		{"one page", 0, 4096, 8, 1},
		{"page plus one byte", 0, 4097, 9, 2},
		{"unaligned straddle", 511, 2, 2, 1},
		{"unaligned page straddle", 4095, 2, 2, 2},
		{"large", 0, 65536, 128, 16},
		{"mid-volume", 1 << 20, 8192, 16, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := Request{Server: 0, Volume: 0, Offset: c.offset, Length: c.length}
			if got := r.Blocks(); got != c.blocks {
				t.Errorf("Blocks() = %d, want %d", got, c.blocks)
			}
			if got := r.Pages(); got != c.pages {
				t.Errorf("Pages() = %d, want %d", got, c.pages)
			}
		})
	}
}

func TestRequestBlocksPagesConsistent(t *testing.T) {
	// Property: a request never covers more pages than blocks, and covers
	// at least ceil(blocks/8) pages.
	f := func(off uint32, length uint16) bool {
		r := Request{Offset: uint64(off), Length: uint32(length)}
		b, p := r.Blocks(), r.Pages()
		if p > b {
			return false
		}
		return p >= (b+BlocksPerPage-1)/BlocksPerPage-1 && p >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequestFirstBlockEnd(t *testing.T) {
	r := Request{Server: 2, Volume: 1, Offset: 4096, Length: 1024}
	if got := r.FirstBlock(); got != MakeKey(2, 1, 8) {
		t.Errorf("FirstBlock() = %v", got)
	}
	if got := r.End(); got != 5120 {
		t.Errorf("End() = %d", got)
	}
}
