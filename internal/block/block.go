// Package block defines the basic block-address model shared by every
// SieveStore component: 512-byte accounting blocks, 4 KiB device pages,
// packed block keys, and block I/O requests.
//
// The paper (§4) counts accesses at 512-byte granularity for accuracy but
// charges SSD occupancy at 4 KiB-page granularity; both constants live here
// so that every module agrees on them.
package block

import (
	"errors"
	"fmt"
)

const (
	// Size is the accounting granularity for block accesses, in bytes.
	// The MSR traces (and the paper's hit/allocation counts) use 512-byte
	// blocks.
	Size = 512

	// PageSize is the SSD transfer granularity used for IOPS-occupancy
	// accounting (§4 assumes 4 KiB I/Os when charging drive time).
	PageSize = 4096

	// BlocksPerPage is the number of accounting blocks per SSD page.
	BlocksPerPage = PageSize / Size
)

// Key packs a global block address — (server, volume, block number) — into
// a single comparable 64-bit value so it can be used directly as a map key
// and stored compactly in logs and sieve tables.
//
// Layout (most-significant first):
//
//	bits 58..63  server  (6 bits, up to 64 servers)
//	bits 52..57  volume  (6 bits, up to 64 volumes per server)
//	bits  0..51  block number within the volume (512-byte units)
//
// 2^52 blocks of 512 B is 2 EiB per volume, far beyond any ensemble the
// paper considers.
type Key uint64

const (
	serverBits = 6
	volumeBits = 6
	numberBits = 64 - serverBits - volumeBits

	// MaxServers is the largest server ID representable in a Key, plus one.
	MaxServers = 1 << serverBits
	// MaxVolumes is the largest volume ID representable in a Key, plus one.
	MaxVolumes = 1 << volumeBits
	// MaxBlockNumber is the largest block number representable in a Key.
	MaxBlockNumber = 1<<numberBits - 1
)

// ErrKeyRange reports a component that does not fit in the packed Key.
var ErrKeyRange = errors.New("block: key component out of range")

// MakeKey packs server, volume and block number into a Key.
// It panics if any component is out of range; callers construct keys from
// validated trace records or generator configs, so a violation is a bug.
func MakeKey(server, volume int, number uint64) Key {
	if server < 0 || server >= MaxServers ||
		volume < 0 || volume >= MaxVolumes ||
		number > MaxBlockNumber {
		panic(fmt.Sprintf("block: MakeKey(%d, %d, %d): %v", server, volume, number, ErrKeyRange))
	}
	return Key(uint64(server)<<(volumeBits+numberBits) |
		uint64(volume)<<numberBits |
		number)
}

// Server returns the server ID encoded in the key.
func (k Key) Server() int { return int(k >> (volumeBits + numberBits)) }

// Volume returns the volume ID encoded in the key.
func (k Key) Volume() int { return int(k>>numberBits) & (MaxVolumes - 1) }

// Number returns the block number within the volume.
func (k Key) Number() uint64 { return uint64(k) & MaxBlockNumber }

// Offset returns the byte offset of the block within its volume.
func (k Key) Offset() uint64 { return k.Number() * Size }

// Next returns the key of the block immediately following k in the same
// volume. It panics if k is the last representable block of its volume.
func (k Key) Next() Key {
	if k.Number() == MaxBlockNumber {
		panic("block: Next overflows volume")
	}
	return k + 1
}

// String renders the key as server:volume:number for logs and tests.
func (k Key) String() string {
	return fmt.Sprintf("%d:%d:%d", k.Server(), k.Volume(), k.Number())
}

// Kind distinguishes reads from writes.
type Kind uint8

const (
	// Read is a block read request.
	Read Kind = iota
	// Write is a block write request.
	Write
)

// String returns "Read" or "Write".
func (t Kind) String() string {
	if t == Write {
		return "Write"
	}
	return "Read"
}

// IsWrite reports whether the kind is Write.
func (t Kind) IsWrite() bool { return t == Write }

// Access is a single-block access: the unit the cache simulator, the sieves
// and the analysis pipeline all operate on. Multi-block trace requests are
// expanded into runs of Accesses (see trace.Expand).
type Access struct {
	// Time is nanoseconds since the trace epoch at which the access is
	// issued (for multi-block requests, interpolated per block; §4).
	Time int64
	// Key identifies the accessed block.
	Key Key
	// Kind is Read or Write.
	Kind Kind
}

// Request is a (possibly multi-block) block-device request as it appears in
// a trace: an offset/length extent on one server volume.
type Request struct {
	// Time is the issue timestamp in nanoseconds since the trace epoch.
	Time int64
	// Duration is the request service time in nanoseconds, as reported by
	// the trace; used to interpolate per-block completion times.
	Duration int64
	// Server and Volume locate the target device.
	Server int
	Volume int
	// Offset is the starting byte offset; Length the extent in bytes.
	Offset uint64
	Length uint32
	// Kind is Read or Write.
	Kind Kind
}

// FirstBlock returns the key of the first 512-byte block the request
// touches.
func (r *Request) FirstBlock() Key {
	return MakeKey(r.Server, r.Volume, r.Offset/Size)
}

// Blocks returns how many 512-byte accounting blocks the request covers,
// including partial blocks at either end. A zero-length request covers one
// block (the trace format rounds degenerate requests up; they still occupy
// the device).
func (r *Request) Blocks() int {
	if r.Length == 0 {
		return 1
	}
	first := r.Offset / Size
	last := (r.Offset + uint64(r.Length) - 1) / Size
	return int(last - first + 1)
}

// Pages returns how many 4 KiB pages the request covers for IOPS
// accounting. Sub-page and unaligned requests are charged a full page each,
// matching the paper's conservative drive-cost assessment (§4).
func (r *Request) Pages() int {
	if r.Length == 0 {
		return 1
	}
	first := r.Offset / PageSize
	last := (r.Offset + uint64(r.Length) - 1) / PageSize
	return int(last - first + 1)
}

// End returns the byte offset one past the last byte the request touches.
func (r *Request) End() uint64 { return r.Offset + uint64(r.Length) }
