package sieve

import "repro/internal/block"

// SingleTier is the ablation variant of SieveStore-C with only the
// imprecise tier: allocation is decided directly from the (aliased) IMCT
// counts. The paper reports this was ineffective — low-reuse blocks
// piggyback on the miss counts of popular blocks that share their slot and
// receive undeserved allocations (§3.3); the ablation benchmark
// demonstrates exactly that pollution.
type SingleTier struct {
	cfg       CConfig
	subNanos  int64
	imct      []winCounter
	threshold int
}

// NewSingleTier returns a single-tier sieve allocating once a block's
// (aliased) slot sees cfg.T1+cfg.T2 misses in the window — the same total
// miss budget as the two-tier sieve, but counted without precision.
func NewSingleTier(cfg CConfig) (*SingleTier, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &SingleTier{
		cfg:       cfg,
		subNanos:  cfg.Window.Nanoseconds() / int64(cfg.Subwindows),
		imct:      make([]winCounter, cfg.IMCTSize),
		threshold: cfg.T1 + cfg.T2,
	}, nil
}

// Name implements Policy.
func (s *SingleTier) Name() string { return "SingleTier-IMCT" }

// ShouldAllocate implements Policy.
func (s *SingleTier) ShouldAllocate(acc block.Access) bool {
	win := acc.Time / s.subNanos
	x := uint64(acc.Key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	slot := &s.imct[x%uint64(len(s.imct))]
	return slot.bump(win, s.cfg.Subwindows) >= s.threshold
}

var (
	_ Policy = (*SingleTier)(nil)
	_ Policy = (*C)(nil)
	_ Policy = AOD{}
	_ Policy = WMNA{}
	_ Policy = (*RandC)(nil)
)
