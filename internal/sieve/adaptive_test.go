package sieve

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
)

func TestAdaptiveConfigValidate(t *testing.T) {
	good := DefaultAdaptiveConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*AdaptiveConfig){
		func(c *AdaptiveConfig) { c.Base.T1 = 0 },
		func(c *AdaptiveConfig) { c.TargetAllocsPerMille = 0 },
		func(c *AdaptiveConfig) { c.MinT2 = 0 },
		func(c *AdaptiveConfig) { c.MaxT2 = c.MinT2 - 1 },
		func(c *AdaptiveConfig) { c.Base.T2 = c.MaxT2 + 1 },
		func(c *AdaptiveConfig) { c.AdjustEvery = 0 },
	}
	for i, mutate := range bads {
		cfg := DefaultAdaptiveConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := NewAdaptive(AdaptiveConfig{}); err == nil {
		t.Error("NewAdaptive must validate")
	}
}

// missStorm feeds the sieve a stream of misses: `population` distinct
// blocks in round-robin over `dur`, so every block misses at the same rate.
func missStorm(a *Adaptive, rng *rand.Rand, population int, start, dur time.Duration, events int) (allocs int) {
	for i := 0; i < events; i++ {
		ts := start + time.Duration(float64(dur)*float64(i)/float64(events))
		key := block.MakeKey(0, 0, uint64(rng.Intn(population)))
		if a.ShouldAllocate(block.Access{Time: ts.Nanoseconds(), Key: key, Kind: block.Read}) {
			allocs++
		}
	}
	return allocs
}

func TestAdaptiveRaisesT2UnderAllocStorm(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Base.IMCTSize = 64 // heavy aliasing: everything passes the IMCT
	cfg.Base.T2 = 2
	cfg.TargetAllocsPerMille = 2
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// A small, hammered population: with T2=2 nearly every block qualifies
	// repeatedly, massively overshooting 2‰. The controller must raise T2.
	startT2 := a.T2()
	missStorm(a, rng, 200, 0, 48*time.Hour, 200_000)
	if a.T2() <= startT2 {
		t.Errorf("T2 did not rise under allocation storm: %d → %d", startT2, a.T2())
	}
	if a.Adjustments() == 0 {
		t.Error("controller never adjusted")
	}
}

func TestAdaptiveLowersT2WhenQuiet(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Base.IMCTSize = 1 << 16
	cfg.Base.T2 = 30
	cfg.MaxT2 = 64
	cfg.TargetAllocsPerMille = 5
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	// A huge one-shot population: essentially zero allocations, far below
	// budget, so the controller should walk T2 down toward MinT2.
	startT2 := a.T2()
	missStorm(a, rng, 5_000_000, 0, 48*time.Hour, 300_000)
	if a.T2() >= startT2 {
		t.Errorf("T2 did not fall when under budget: %d → %d", startT2, a.T2())
	}
}

func TestAdaptiveRespectsBounds(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Base.IMCTSize = 16
	cfg.Base.T2 = 2
	cfg.MinT2 = 2
	cfg.MaxT2 = 4
	cfg.TargetAllocsPerMille = 0.001 // impossible: everything overshoots
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	missStorm(a, rng, 50, 0, 72*time.Hour, 150_000)
	if a.T2() > cfg.MaxT2 || a.T2() < cfg.MinT2 {
		t.Errorf("T2 %d escaped bounds [%d,%d]", a.T2(), cfg.MinT2, cfg.MaxT2)
	}
	if a.T2() != cfg.MaxT2 {
		t.Errorf("T2 = %d, want pinned at MaxT2 %d", a.T2(), cfg.MaxT2)
	}
}

func TestAdaptiveSteersAllocRateTowardBudget(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.Base.IMCTSize = 256
	cfg.Base.T2 = 1
	cfg.TargetAllocsPerMille = 3
	a, err := NewAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	// Early phase: T2 starts at 1, so the hammered population allocates
	// constantly.
	early := missStorm(a, rng, 500, 0, 12*time.Hour, 60_000)
	// Warm-up lets the controller climb…
	missStorm(a, rng, 500, 12*time.Hour, 60*time.Hour, 240_000)
	// …then measure the steered steady-state rate.
	late := missStorm(a, rng, 500, 72*time.Hour, 24*time.Hour, 100_000)
	earlyRate := float64(early) * 1000 / 60_000
	lateRate := float64(late) * 1000 / 100_000
	// This workload is hot enough that even MaxT2 cannot reach the 3‰
	// budget; the controller must still have cut the rate drastically and
	// pinned T2 high.
	if lateRate > earlyRate/3 {
		t.Errorf("controller barely steered: early %.1f‰ → late %.1f‰", earlyRate, lateRate)
	}
	if a.T2() < 10 {
		t.Errorf("T2 = %d after sustained overshoot, want ≫ start", a.T2())
	}
}
