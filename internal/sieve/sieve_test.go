package sieve

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
)

func acc(t int64, n uint64, kind block.Kind) block.Access {
	return block.Access{Time: t, Key: block.MakeKey(0, 0, n), Kind: kind}
}

func TestAODAndWMNA(t *testing.T) {
	if !(AOD{}).ShouldAllocate(acc(0, 1, block.Read)) || !(AOD{}).ShouldAllocate(acc(0, 1, block.Write)) {
		t.Error("AOD must always allocate")
	}
	if !(WMNA{}).ShouldAllocate(acc(0, 1, block.Read)) {
		t.Error("WMNA must allocate on read miss")
	}
	if (WMNA{}).ShouldAllocate(acc(0, 1, block.Write)) {
		t.Error("WMNA must not allocate on write miss")
	}
	if (AOD{}).Name() != "AOD" || (WMNA{}).Name() != "WMNA" {
		t.Error("names wrong")
	}
}

func TestRandCRate(t *testing.T) {
	p := NewRandC(0.01, 7)
	n := 100000
	allocs := 0
	for i := 0; i < n; i++ {
		if p.ShouldAllocate(acc(int64(i), uint64(i), block.Read)) {
			allocs++
		}
	}
	got := float64(allocs) / float64(n)
	if math.Abs(got-0.01) > 0.003 {
		t.Errorf("allocation rate = %v, want ≈0.01", got)
	}
}

func TestCConfigValidate(t *testing.T) {
	good := DefaultCConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bads := []func(*CConfig){
		func(c *CConfig) { c.IMCTSize = 0 },
		func(c *CConfig) { c.T1 = 0 },
		func(c *CConfig) { c.T2 = 0 },
		func(c *CConfig) { c.Subwindows = 0 },
		func(c *CConfig) { c.Subwindows = maxSubwindows + 1 },
		func(c *CConfig) { c.Window = 0 },
	}
	for i, mutate := range bads {
		c := DefaultCConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if _, err := NewC(CConfig{}); err == nil {
		t.Error("NewC must validate")
	}
	if _, err := NewSingleTier(CConfig{}); err == nil {
		t.Error("NewSingleTier must validate")
	}
}

func TestWinCounterRotation(t *testing.T) {
	var w winCounter
	k := 4
	// Three misses in window 0.
	w.bump(0, k)
	w.bump(0, k)
	if got := w.bump(0, k); got != 3 {
		t.Fatalf("total = %d, want 3", got)
	}
	// One miss per subsequent subwindow: total accumulates over the window.
	if got := w.bump(1, k); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if got := w.bump(2, k); got != 5 {
		t.Fatalf("total = %d, want 5", got)
	}
	if got := w.bump(3, k); got != 6 {
		t.Fatalf("total = %d, want 6", got)
	}
	// Window 4 expires window 0's three misses.
	if got := w.bump(4, k); got != 4 {
		t.Fatalf("total = %d, want 4 after expiry", got)
	}
	// A long idle gap zeroes everything.
	if got := w.bump(100, k); got != 1 {
		t.Fatalf("total = %d, want 1 after gap", got)
	}
}

// sieveCFor returns a small-window sieve so tests can cross subwindows
// easily.
func sieveCFor(t *testing.T, imctSize int) *C {
	t.Helper()
	s, err := NewC(CConfig{IMCTSize: imctSize, T1: 9, T2: 4, Window: 8 * time.Hour, Subwindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSieveCAllocatesOnlyAfterThresholds(t *testing.T) {
	s := sieveCFor(t, 1<<16)
	// A block missing repeatedly must be allocated on miss T1+T2 = 13
	// (9 to pass the IMCT — assuming no aliasing at this table size —
	// then 4 precise misses; the promoting miss is counted in the MCT).
	allocAt := 0
	for i := 1; i <= 20; i++ {
		if s.ShouldAllocate(acc(int64(i)*1e9, 42, block.Read)) {
			allocAt = i
			break
		}
	}
	// Promotion happens on miss 9 (first MCT count), so T2=4 is reached on
	// miss 12.
	if allocAt != 12 {
		t.Errorf("allocated at miss %d, want 12", allocAt)
	}
	st := s.Stats()
	if st.Allocations != 1 || st.Promotions != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestSieveCShouldAllocateNPenalty pins the QoS hook semantics: extra
// raises only the final allocation threshold (T2+extra), the counters
// keep accumulating regardless, and a deny-level extra (beyond the
// uint16 counter saturation) can never be crossed — yet the first
// unpenalized miss afterwards allocates immediately, because nothing
// was forgotten while the tenant was penalized.
func TestSieveCShouldAllocateNPenalty(t *testing.T) {
	// extra=2 moves the allocating miss from 12 (see
	// TestSieveCAllocatesOnlyAfterThresholds) to 14.
	s := sieveCFor(t, 1<<16)
	allocAt := 0
	for i := 1; i <= 20; i++ {
		if s.ShouldAllocateN(acc(int64(i)*1e9, 42, block.Read), 2) {
			allocAt = i
			break
		}
	}
	if allocAt != 14 {
		t.Errorf("allocated at miss %d with extra=2, want 14", allocAt)
	}

	// Deny streak: 40 penalized misses never allocate, then one
	// unpenalized miss allocates instantly.
	s = sieveCFor(t, 1<<16)
	for i := 1; i <= 40; i++ {
		if s.ShouldAllocateN(acc(int64(i)*1e9, 42, block.Read), 1<<20) {
			t.Fatalf("denied miss %d allocated", i)
		}
	}
	if !s.ShouldAllocateN(acc(41*1e9, 42, block.Read), 0) {
		t.Error("first unpenalized miss after a deny streak should allocate")
	}

	// extra=0 must be ShouldAllocate, decision for decision.
	a, b := sieveCFor(t, 1<<16), sieveCFor(t, 1<<16)
	for i := 1; i <= 30; i++ {
		ac := acc(int64(i)*1e9, uint64(i%3), block.Read)
		if a.ShouldAllocate(ac) != b.ShouldAllocateN(ac, 0) {
			t.Fatalf("miss %d: ShouldAllocate diverges from ShouldAllocateN(…, 0)", i)
		}
	}
}

func TestSieveCLowReuseNeverAllocated(t *testing.T) {
	// A large-enough IMCT that aliasing is essentially absent for this
	// population: 500 blocks over 2^20 slots.
	s := sieveCFor(t, 1<<20)
	// Many distinct blocks, each missing at most 4 times: none should be
	// allocated (IMCT threshold never met without aliasing).
	for b := uint64(0); b < 500; b++ {
		for i := 0; i < 4; i++ {
			if s.ShouldAllocate(acc(int64(b*5+uint64(i))*1e6, b, block.Read)) {
				t.Fatalf("low-reuse block %d allocated", b)
			}
		}
	}
}

func TestSieveCWindowExpiry(t *testing.T) {
	s := sieveCFor(t, 1<<16)
	// 12 misses spread over 3 days (far apart): never allocates because the
	// window expires between them.
	day := int64(24 * time.Hour)
	n := 0
	for i := 0; i < 12; i++ {
		if s.ShouldAllocate(acc(int64(i)*day, 7, block.Read)) {
			n++
		}
	}
	if n != 0 {
		t.Errorf("allocated %d times across expired windows", n)
	}
}

func TestSieveCAliasingPromotesEarly(t *testing.T) {
	// With a single-slot IMCT every block aliases onto one counter, so the
	// T1 gate passes almost immediately and only the precise MCT filters —
	// the failure mode motivating the two-tier design.
	s, err := NewC(CConfig{IMCTSize: 1, T1: 9, T2: 4, Window: 8 * time.Hour, Subwindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Nine misses from distinct blocks warm the shared slot.
	for b := uint64(100); b < 109; b++ {
		s.ShouldAllocate(acc(1e9, b, block.Read))
	}
	// A fresh block now needs only T2 misses.
	allocAt := 0
	for i := 1; i <= 10; i++ {
		if s.ShouldAllocate(acc(2e9+int64(i), 7, block.Read)) {
			allocAt = i
			break
		}
	}
	if allocAt != 4 {
		t.Errorf("aliased block allocated at miss %d, want 4 (T2)", allocAt)
	}
}

func TestSieveCPruning(t *testing.T) {
	s := sieveCFor(t, 1)
	// Promote many blocks into the MCT (single slot → instant aliasing).
	for b := uint64(0); b < 100; b++ {
		for i := 0; i < 2; i++ {
			s.ShouldAllocate(acc(1e9, b, block.Read))
		}
	}
	if st := s.Stats(); st.MCTSize == 0 {
		t.Fatal("MCT should have entries")
	}
	// Jump far into the future: the sweep should drop everything stale.
	s.ShouldAllocate(acc(int64(48*time.Hour), 999999, block.Read))
	if st := s.Stats(); st.MCTSize > 1 {
		t.Errorf("MCT not pruned: %d entries", st.MCTSize)
	}
}

func TestSingleTierAllocatesAliased(t *testing.T) {
	st, err := NewSingleTier(CConfig{IMCTSize: 1, T1: 9, T2: 4, Window: 8 * time.Hour, Subwindows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 13 misses from 13 *distinct* blocks: the 13th gets allocated purely
	// by piggybacking — the pollution the MCT exists to stop.
	allocated := false
	for b := uint64(0); b < 13; b++ {
		allocated = st.ShouldAllocate(acc(1e9, b, block.Read))
	}
	if !allocated {
		t.Error("single-tier sieve should admit aliased low-reuse block")
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(0.35, 0.75, 0)
	if len(rows) != 3 {
		t.Fatal("want 3 rows")
	}
	aod, wmna, isa := rows[0], rows[1], rows[2]
	// Paper Table 2: AOD 73.75% SSD writes share → SSD ops 100%,
	// writes = 8.75% + 65%.
	if math.Abs(aod.SSDWrites-0.7375) > 1e-9 || math.Abs(aod.SSDOps-1.0) > 1e-9 {
		t.Errorf("AOD row = %+v", aod)
	}
	// WMNA: alloc-writes 48.75%, SSD writes 57.5% (=8.75%+48.75%).
	if math.Abs(wmna.AllocWrites-0.4875) > 1e-9 || math.Abs(wmna.SSDWrites-0.575) > 1e-9 {
		t.Errorf("WMNA row = %+v", wmna)
	}
	// ISA: ops 26.25% + 8.75% + ε = 35% + ε.
	if math.Abs(isa.SSDOps-0.35) > 1e-9 || isa.AllocWrites != 0 {
		t.Errorf("ISA row = %+v", isa)
	}
	// The paper's headline ratios: WMNA more than doubles SSD operations
	// (≈2.4×) versus hits-only, and multiplies allocation-writes ≈5.6×
	// over write hits.
	if r := wmna.SSDOps / isa.SSDOps; r < 2.3 || r > 2.5 {
		t.Errorf("WMNA ops blowup = %.2f, want ≈2.4×", r)
	}
	if r := wmna.AllocWrites / (0.35 * 0.25); r < 5.5 || r > 5.7 {
		t.Errorf("WMNA alloc-write blowup = %.2f, want ≈5.6×", r)
	}
}

func TestBeladyCounterexample(t *testing.T) {
	// Paper §3.1: on a,a,b,b,a,a,c,c,... with a 1-entry cache, Belady's
	// selective allocation converges to ~50% hits but allocates on ~50% of
	// accesses, while pinning `a` gets nearly the same hits with exactly
	// one allocation-write.
	stream := CounterexampleStream(50) // 200 accesses
	belady := BeladySelective(stream, 1)
	fixed := FixedAllocation(stream, []block.Key{block.MakeKey(0, 0, 0)})
	if belady.Hits <= 90 || belady.Hits >= 110 {
		t.Errorf("belady hits = %d, want ≈100 (50%%)", belady.Hits)
	}
	if fixed.Hits != 100 {
		t.Errorf("fixed hits = %d, want 100", fixed.Hits)
	}
	if fixed.AllocWrites != 1 {
		t.Errorf("fixed alloc-writes = %d, want 1", fixed.AllocWrites)
	}
	if belady.AllocWrites < 50 {
		t.Errorf("belady alloc-writes = %d, want ≈half the accesses", belady.AllocWrites)
	}
	if belady.AllocWrites <= fixed.AllocWrites*20 {
		t.Errorf("counterexample not demonstrated: %d vs %d", belady.AllocWrites, fixed.AllocWrites)
	}
}

func TestBeladySelectiveMaximizesHitsOnSmallCase(t *testing.T) {
	// Sanity: Belady-selective on a simple reuse stream caches the block.
	k := func(n uint64) block.Key { return block.MakeKey(0, 0, n) }
	stream := []block.Key{k(1), k(1), k(1), k(2), k(1)}
	res := BeladySelective(stream, 1)
	if res.Hits != 3 || res.AllocWrites != 1 {
		t.Errorf("got %+v", res)
	}
}

func TestMinCompulsoryAllocFraction(t *testing.T) {
	// Paper: 50% + 47%/4 = 61.75%.
	if got := MinCompulsoryAllocFraction(0.50, 0.97); math.Abs(got-0.6175) > 1e-9 {
		t.Errorf("got %v, want 0.6175", got)
	}
}

func TestBeladyAODMatchesNaiveOnSmallStreams(t *testing.T) {
	// Cross-check the heap implementation against the O(n·C) reference.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 200 + rng.Intn(200)
		capacity := 1 + rng.Intn(8)
		stream := make([]block.Key, n)
		for i := range stream {
			stream[i] = block.MakeKey(0, 0, uint64(rng.Intn(32)))
		}
		fast := BeladyAOD(stream, capacity)
		slow := beladyAODNaive(stream, capacity)
		if fast != slow {
			t.Fatalf("trial %d: heap %+v vs naive %+v", trial, fast, slow)
		}
	}
}

// beladyAODNaive is the quadratic reference for the cross-check.
func beladyAODNaive(stream []block.Key, capacity int) OracleResult {
	next := nextUses(stream)
	cached := map[block.Key]int{}
	var res OracleResult
	for i, key := range stream {
		if _, ok := cached[key]; ok {
			res.Hits++
			cached[key] = next[i]
			continue
		}
		res.AllocWrites++
		if len(cached) >= capacity {
			var victim block.Key
			far := -1
			for k, nu := range cached {
				if nu > far {
					far, victim = nu, k
				}
			}
			delete(cached, victim)
		}
		cached[key] = next[i]
	}
	return res
}

func TestBeladyAODEveryMissAllocates(t *testing.T) {
	// §3.1: oracle replacement with AOD still pays an allocation-write per
	// miss — hits + alloc-writes must equal the stream length.
	stream := CounterexampleStream(25)
	res := BeladyAOD(stream, 4)
	if res.Hits+res.AllocWrites != len(stream) {
		t.Errorf("hits %d + allocs %d != %d accesses", res.Hits, res.AllocWrites, len(stream))
	}
	// Each of the 25 pair-blocks plus `a` misses exactly once with AOD and
	// a capacity that holds them through their immediate reuse.
	if res.AllocWrites != 26 {
		t.Errorf("alloc-writes = %d, want 26 (one per distinct block)", res.AllocWrites)
	}
}

func TestBeladyAODOptimalOnKnownPattern(t *testing.T) {
	k := func(n uint64) block.Key { return block.MakeKey(0, 0, n) }
	// Classic: 1,2,3,4,1,2,5,1,2,3,4,5 with capacity 3 → MIN gets 5 hits...
	// compute: the canonical MIN fault count for this string is 7 faults.
	stream := []block.Key{k(1), k(2), k(3), k(4), k(1), k(2), k(5), k(1), k(2), k(3), k(4), k(5)}
	res := BeladyAOD(stream, 3)
	if res.AllocWrites != 7 || res.Hits != 5 {
		t.Errorf("MIN on canonical string: faults=%d hits=%d, want 7/5", res.AllocWrites, res.Hits)
	}
}
