package sieve

import (
	"math/rand"
	"testing"
)

// exactWindow is a reference implementation: it remembers every miss
// timestamp and counts those within the exact sliding window.
type exactWindow struct {
	times []int64
}

func (e *exactWindow) bump(now, windowNS int64) int {
	e.times = append(e.times, now)
	// Drop everything older than the window.
	cut := 0
	for cut < len(e.times) && e.times[cut] <= now-windowNS {
		cut++
	}
	e.times = e.times[cut:]
	return len(e.times)
}

// TestWinCounterApproximatesExactWindow checks the paper's k-subwindow
// discretization (§3.3) against the exact sliding window on random miss
// streams: the discretized count must always fall between the exact count
// over the last W-W/k (it may expire up to one subwindow early) and the
// exact count over W (it never over-counts beyond the full window... it can
// briefly retain up to one extra subwindow). Concretely we assert the
// bracketing
//
//	exact(W - W/k) ≤ windowed ≤ exact(W + W/k)
//
// which is the correctness envelope the paper's design relies on.
func TestWinCounterApproximatesExactWindow(t *testing.T) {
	const (
		k        = 4
		windowNS = int64(8 * 3600 * 1e9)
		sub      = windowNS / k
	)
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var w winCounter
		lower := &exactWindow{} // window W - sub
		upper := &exactWindow{} // window W + sub
		now := int64(0)
		for i := 0; i < 5000; i++ {
			// Mixed cadence: mostly short gaps, occasional long idles.
			if rng.Intn(50) == 0 {
				now += int64(rng.Int63n(3 * windowNS))
			} else {
				now += int64(rng.Int63n(sub / 2))
			}
			got := w.bump(now/sub, k)
			lo := lower.bump(now, windowNS-sub)
			hi := upper.bump(now, windowNS+sub)
			if got < lo || got > hi {
				t.Fatalf("seed %d step %d: windowed count %d outside [%d,%d]",
					seed, i, got, lo, hi)
			}
		}
	}
}

// TestWinCounterNeverExceedsTotalMisses is a cheap safety property: the
// windowed count can never exceed the number of bumps.
func TestWinCounterNeverExceedsTotalMisses(t *testing.T) {
	var w winCounter
	for i := 1; i <= 100; i++ {
		if got := w.bump(int64(i/10), 4); got > i {
			t.Fatalf("count %d after %d bumps", got, i)
		}
	}
}

// TestWinCounterSaturation: counters are uint16; a pathological hot slot
// must saturate rather than wrap.
func TestWinCounterSaturation(t *testing.T) {
	var w winCounter
	last := 0
	for i := 0; i < 70000; i++ {
		last = w.bump(0, 4)
	}
	if last < 65535 {
		t.Fatalf("count %d after 70000 bumps in one subwindow", last)
	}
	if last > 65535*4 {
		t.Fatalf("count %d wrapped", last)
	}
}
