package sieve

import "repro/internal/block"

// This file implements the paper's §3.1 thought experiment: the analytic
// Table 2 (SSD-operation shares under an oracle replacement policy for each
// allocation policy) and the Belady selective-allocation counterexample
// showing that maximizing hits does not minimize allocation-writes.

// Table2Row is one row of the paper's Table 2, with every quantity
// expressed as a fraction of all ensemble accesses.
type Table2Row struct {
	Policy string
	// Hits and Misses partition all accesses.
	Hits, Misses float64
	// AllocWrites is the fraction of accesses triggering an SSD
	// allocation-write.
	AllocWrites float64
	// ReadHits is the fraction served as SSD reads.
	ReadHits float64
	// SSDWrites is write hits + allocation-writes.
	SSDWrites float64
	// SSDOps is the total fraction of accesses that touch the SSD.
	SSDOps float64
}

// Table2 reproduces the paper's Table 2 analytically. hitRatio is the hit
// rate the oracle replacement policy sustains for every allocation policy
// (the paper conservatively assumes 35%, the ideal-allocation average);
// readFrac is the read share of both hits and misses (the paper assumes
// 3:1, i.e. 0.75); epsilon is the ideal sieve's allocation-write fraction
// (1% of *unique* blocks, hence ≪1% of accesses — the paper writes ε%).
func Table2(hitRatio, readFrac, epsilon float64) []Table2Row {
	miss := 1 - hitRatio
	writeHits := hitRatio * (1 - readFrac)
	readHits := hitRatio * readFrac
	rows := []Table2Row{
		{
			Policy:      "Allocate-on-demand (AOD)",
			AllocWrites: miss,
		},
		{
			Policy:      "Write-no-allocate (WMNA)",
			AllocWrites: miss * readFrac,
		},
		{
			Policy:      "Ideal-selective-allocate (ISA)",
			AllocWrites: epsilon,
		},
	}
	for i := range rows {
		r := &rows[i]
		r.Hits = hitRatio
		r.Misses = miss
		r.ReadHits = readHits
		r.SSDWrites = writeHits + r.AllocWrites
		r.SSDOps = readHits + r.SSDWrites
	}
	return rows
}

// OracleResult summarizes a simulated reference stream under a selective-
// allocation strategy on a tiny cache — used for the paper's §3.1 Belady
// counterexample.
type OracleResult struct {
	Hits        int
	AllocWrites int
}

// BeladySelective simulates a fully-associative cache of the given
// capacity over the reference stream with Belady's replacement extended to
// selective allocation: a missing block is allocated only if its next use
// is earlier than the next use of some cached block (evicting the block
// with the farthest next use). This maximizes hits but, as the paper's
// a,a,b,b,a,a,c,c,... example shows, does not minimize allocation-writes.
func BeladySelective(stream []block.Key, capacity int) OracleResult {
	next := nextUses(stream)
	h := &beladyHeap{pos: make(map[block.Key]int, capacity)}
	var res OracleResult
	for i, key := range stream {
		if _, ok := h.pos[key]; ok {
			res.Hits++
			h.update(key, next[i])
			continue
		}
		if h.len() < capacity {
			h.push(key, next[i])
			res.AllocWrites++
			continue
		}
		// Allocate only if this block's next use beats the worst resident's.
		if next[i] < h.peekMax() {
			h.popMax()
			h.push(key, next[i])
			res.AllocWrites++
		}
	}
	return res
}

// FixedAllocation simulates the same cache with a fixed resident set: the
// given blocks are allocated once up front and never replaced. For the
// counterexample stream, pinning `a` achieves nearly the same hits with
// exactly one allocation-write per pinned block.
func FixedAllocation(stream []block.Key, pinned []block.Key) OracleResult {
	in := make(map[block.Key]bool, len(pinned))
	for _, k := range pinned {
		in[k] = true
	}
	res := OracleResult{AllocWrites: len(pinned)}
	for _, key := range stream {
		if in[key] {
			res.Hits++
		}
	}
	return res
}

// CounterexampleStream builds the paper's §3.1 reference stream
// a,a,b,b,a,a,c,c,a,a,d,d,... with n distinct one-shot blocks interleaved
// between reuses of block a.
func CounterexampleStream(n int) []block.Key {
	a := block.MakeKey(0, 0, 0)
	var out []block.Key
	for i := 1; i <= n; i++ {
		out = append(out, a, a, block.MakeKey(0, 0, uint64(i)), block.MakeKey(0, 0, uint64(i)))
	}
	return out
}

// nextUses returns, for each position, the index of the block's next use
// (len(stream) if none).
func nextUses(stream []block.Key) []int {
	next := make([]int, len(stream))
	last := make(map[block.Key]int)
	for i := len(stream) - 1; i >= 0; i-- {
		if j, ok := last[stream[i]]; ok {
			next[i] = j
		} else {
			next[i] = len(stream)
		}
		last[stream[i]] = i
	}
	return next
}

// MinCompulsoryAllocFraction bounds the allocation-writes of Belady's MIN
// with allocate-on-demand in terms of unique blocks (§3.1): with fraction
// f1 of blocks having exactly one access and f4 having ≤4, at least
// f1 + (f4-f1)/4 of unique blocks incur compulsory allocation-writes. The
// paper evaluates 50% + 47%/4 = 61.75%.
func MinCompulsoryAllocFraction(f1, f4 float64) float64 {
	return f1 + (f4-f1)/4
}

// beladyHeap is a max-heap of cached blocks keyed by next-use index.
type beladyHeap struct {
	keys    []block.Key
	nextUse []int
	pos     map[block.Key]int
}

func (h *beladyHeap) len() int { return len(h.keys) }

func (h *beladyHeap) swap(i, j int) {
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.nextUse[i], h.nextUse[j] = h.nextUse[j], h.nextUse[i]
	h.pos[h.keys[i]] = i
	h.pos[h.keys[j]] = j
}

func (h *beladyHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.nextUse[parent] >= h.nextUse[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *beladyHeap) down(i int) {
	n := len(h.keys)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.nextUse[l] > h.nextUse[largest] {
			largest = l
		}
		if r < n && h.nextUse[r] > h.nextUse[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *beladyHeap) push(k block.Key, next int) {
	h.keys = append(h.keys, k)
	h.nextUse = append(h.nextUse, next)
	h.pos[k] = len(h.keys) - 1
	h.up(len(h.keys) - 1)
}

func (h *beladyHeap) update(k block.Key, next int) {
	i := h.pos[k]
	old := h.nextUse[i]
	h.nextUse[i] = next
	if next > old {
		h.up(i)
	} else {
		h.down(i)
	}
}

func (h *beladyHeap) popMax() (block.Key, int) {
	k, next := h.keys[0], h.nextUse[0]
	last := len(h.keys) - 1
	h.swap(0, last)
	h.keys = h.keys[:last]
	h.nextUse = h.nextUse[:last]
	delete(h.pos, k)
	if len(h.keys) > 0 {
		h.down(0)
	}
	return k, next
}

func (h *beladyHeap) peekMax() int { return h.nextUse[0] }

// BeladyAOD simulates Belady's MIN replacement with allocate-on-demand over
// the reference stream in O(n log C): every miss allocates (evicting the
// cached block with the farthest next use). This is the §3.1 oracle-
// replacement baseline: it maximizes hits for an unsieved cache yet still
// pays an allocation-write on every miss.
func BeladyAOD(stream []block.Key, capacity int) OracleResult {
	next := nextUses(stream)
	h := &beladyHeap{pos: make(map[block.Key]int, capacity)}
	var res OracleResult
	for i, key := range stream {
		if _, ok := h.pos[key]; ok {
			res.Hits++
			h.update(key, next[i])
			continue
		}
		res.AllocWrites++
		if h.len() >= capacity {
			h.popMax()
		}
		h.push(key, next[i])
	}
	return res
}
