// Package sieve implements SieveStore's allocation policies: the unsieved
// baselines (allocate-on-demand, write-miss-no-allocate), the random sieve,
// and SieveStore-C's two-tier hysteresis sieve (IMCT + MCT), plus the
// analytic §3.1 models (Table 2 and the Belady selective-allocation
// counterexample).
//
// A Policy decides, per missing block access, whether the block is
// allocated a cache frame. Only sieving policies can bound
// allocation-writes: the replacement policy (LRU throughout, as in the
// paper) cannot prevent a low-reuse miss from costing an SSD write.
package sieve

import (
	"math/rand"

	"repro/internal/block"
)

// Policy is a cache-allocation policy for continuous (per-access) caching.
// Implementations may keep internal metastate about uncached blocks; they
// are consulted exactly once per missing block access.
type Policy interface {
	// Name identifies the policy in reports ("AOD", "SieveStore-C", ...).
	Name() string
	// ShouldAllocate reports whether the missing block should be allocated
	// a frame. It is called only on misses and may mutate policy state.
	ShouldAllocate(acc block.Access) bool
}

// AOD is the allocate-on-demand baseline: every miss allocates (Table 3).
type AOD struct{}

// Name implements Policy.
func (AOD) Name() string { return "AOD" }

// ShouldAllocate implements Policy: always allocate.
func (AOD) ShouldAllocate(block.Access) bool { return true }

// WMNA is the write-miss-no-allocate baseline: only read misses allocate
// (Table 3).
type WMNA struct{}

// Name implements Policy.
func (WMNA) Name() string { return "WMNA" }

// ShouldAllocate implements Policy.
func (WMNA) ShouldAllocate(acc block.Access) bool { return acc.Kind == block.Read }

// RandC is RandSieve-C: it allocates a random fraction of all misses
// (default 1%), the continuous random-sieving strawman of Figure 5. It
// demonstrates that SieveStore's gains come from identifying hot blocks,
// not merely from allocating rarely.
type RandC struct {
	P   float64
	rng *rand.Rand
}

// NewRandC returns a RandSieve-C policy allocating fraction p of misses.
func NewRandC(p float64, seed int64) *RandC {
	return &RandC{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (r *RandC) Name() string { return "RandSieve-C" }

// ShouldAllocate implements Policy.
func (r *RandC) ShouldAllocate(block.Access) bool { return r.rng.Float64() < r.P }
