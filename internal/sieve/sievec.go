package sieve

import (
	"fmt"
	"time"

	"repro/internal/block"
)

// maxSubwindows bounds the rotating-counter array so counters can live
// inline without per-entry allocation.
const maxSubwindows = 8

// CConfig parameterizes SieveStore-C's two-tier sieve (§3.3).
type CConfig struct {
	// IMCTSize is the number of slots in the imprecise miss-count table.
	// Blocks map many-to-one onto slots, so counts may be aliased.
	IMCTSize int
	// T1 is the IMCT threshold: a block's (possibly aliased) slot must
	// have seen at least T1 misses in the window before the block is
	// promoted to precise tracking. The paper tunes T1 = 9.
	T1 int
	// T2 is the MCT threshold: a promoted block must see T2 further
	// precisely-counted misses before it is allocated. The paper tunes
	// T2 = 4.
	T2 int
	// Window is the sliding time window W over which misses count.
	// The paper tunes W = 8 h.
	Window time.Duration
	// Subwindows is k, the number of discrete subwindows approximating the
	// sliding window (the paper uses k = 4, i.e. 2 h subwindows).
	Subwindows int
}

// DefaultCConfig returns the paper's tuned parameters. IMCTSize governs the
// aliasing rate and therefore scales with the trace footprint; the given
// size suits the experiment scale (workload.DefaultScale).
func DefaultCConfig() CConfig {
	return CConfig{
		IMCTSize:   1 << 17,
		T1:         9,
		T2:         4,
		Window:     8 * time.Hour,
		Subwindows: 4,
	}
}

// Validate checks the configuration.
func (c *CConfig) Validate() error {
	if c.IMCTSize < 1 {
		return fmt.Errorf("sieve: IMCTSize must be ≥1, got %d", c.IMCTSize)
	}
	if c.T1 < 1 || c.T2 < 1 {
		return fmt.Errorf("sieve: thresholds must be ≥1, got t1=%d t2=%d", c.T1, c.T2)
	}
	if c.Subwindows < 1 || c.Subwindows > maxSubwindows {
		return fmt.Errorf("sieve: Subwindows must be in [1,%d], got %d", maxSubwindows, c.Subwindows)
	}
	if c.Window <= 0 {
		return fmt.Errorf("sieve: Window must be positive")
	}
	return nil
}

// winCounter tracks misses over the last k subwindows with rotating
// counters (§3.3): counter i%k holds subwindow i's count; when time
// advances, stale counters are zeroed lazily.
type winCounter struct {
	counts  [maxSubwindows]uint16
	lastWin int64
}

// bump advances the counter to subwindow win, adds one miss, and returns
// the total count over the window.
func (w *winCounter) bump(win int64, k int) int {
	w.advance(win, k)
	if w.counts[win%int64(k)] < ^uint16(0) {
		w.counts[win%int64(k)]++
	}
	return w.total(k)
}

// advance zeroes out counters for subwindows that have fallen out of the
// window. If the counter has been idle for ≥ k subwindows all counts are
// inferred stale and zeroed (the paper's last-updated check).
func (w *winCounter) advance(win int64, k int) {
	if win-w.lastWin >= int64(k) {
		for i := 0; i < k; i++ {
			w.counts[i] = 0
		}
	} else {
		for i := w.lastWin + 1; i <= win; i++ {
			w.counts[i%int64(k)] = 0
		}
	}
	w.lastWin = win
}

func (w *winCounter) total(k int) int {
	t := 0
	for i := 0; i < k; i++ {
		t += int(w.counts[i])
	}
	return t
}

// CStats counts the sieve's internal traffic for reporting and tests.
type CStats struct {
	// Misses is the number of ShouldAllocate consultations.
	Misses int64
	// Promotions counts blocks promoted past the IMCT into the MCT.
	Promotions int64
	// Allocations counts positive ShouldAllocate decisions.
	Allocations int64
	// Pruned counts MCT entries discarded as stale.
	Pruned int64
	// MCTSize is the current precise-metastate footprint (entries).
	MCTSize int
}

// C is SieveStore-C's online sieve: hysteresis-based lazy allocation where
// only the n-th miss within the recent window triggers allocation, with the
// two-tier IMCT/MCT structure bounding the precise metastate (§3.3).
type C struct {
	cfg      CConfig
	subNanos int64
	imct     []winCounter
	mct      map[block.Key]*winCounter
	lastWin  int64
	stats    CStats
}

// NewC returns a SieveStore-C sieve with the given configuration.
func NewC(cfg CConfig) (*C, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &C{
		cfg:      cfg,
		subNanos: cfg.Window.Nanoseconds() / int64(cfg.Subwindows),
		imct:     make([]winCounter, cfg.IMCTSize),
		mct:      make(map[block.Key]*winCounter),
	}, nil
}

// Name implements Policy.
func (s *C) Name() string { return "SieveStore-C" }

// Config returns the sieve's configuration.
func (s *C) Config() CConfig { return s.cfg }

// Stats returns a snapshot of the sieve's counters.
func (s *C) Stats() CStats {
	st := s.stats
	st.MCTSize = len(s.mct)
	return st
}

// TrackedCounts snapshots the MCT's precisely-tracked per-block miss
// counts over the current window — the continuous variant's count export
// for the RAM-tier advisor. Only blocks the IMCT has promoted are
// tracked, so this is the near-threshold top of the miss distribution,
// not all of it.
func (s *C) TrackedCounts() []int64 {
	out := make([]int64, 0, len(s.mct))
	for _, e := range s.mct {
		out = append(out, int64(e.total(s.cfg.Subwindows)))
	}
	return out
}

// hash mixes a block key onto an IMCT slot (SplitMix64 finalizer).
func (s *C) hash(key block.Key) int {
	x := uint64(key)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(len(s.imct)))
}

// ShouldAllocate implements Policy. On each miss the block's IMCT slot is
// bumped; once the (aliased) slot count reaches T1 the block is tracked
// precisely in the MCT, and once its precise count reaches T2 the block is
// allocated. Allocation resets the block's precise state.
func (s *C) ShouldAllocate(acc block.Access) bool {
	return s.ShouldAllocateN(acc, 0)
}

// ShouldAllocateN is ShouldAllocate with the allocation threshold raised
// by extra: the block allocates only once its precise count reaches
// T2+extra. The multi-tenant layer uses it to penalize (or, with an
// unreachable extra, effectively deny) a throttled tenant while its
// counters keep accumulating — window counters saturate at 65535, so an
// extra at or beyond that can never be crossed — and admission resumes at
// full speed the moment the penalty is lifted.
func (s *C) ShouldAllocateN(acc block.Access, extra int) bool {
	s.stats.Misses++
	win := acc.Time / s.subNanos
	s.maybePrune(win)
	slot := &s.imct[s.hash(acc.Key)]
	imctCount := slot.bump(win, s.cfg.Subwindows)
	entry, tracked := s.mct[acc.Key]
	if !tracked {
		if imctCount < s.cfg.T1 {
			return false
		}
		// Promotion: begin precise tracking. The promoting miss is the
		// block's first precisely-counted miss.
		entry = &winCounter{lastWin: win}
		s.mct[acc.Key] = entry
		s.stats.Promotions++
	}
	if entry.bump(win, s.cfg.Subwindows) < s.cfg.T2+extra {
		return false
	}
	delete(s.mct, acc.Key)
	s.stats.Allocations++
	return true
}

// maybePrune periodically sweeps stale MCT entries (the paper prunes the
// MCT to eliminate stale blocks). A full sweep runs once per subwindow
// advance, dropping entries idle for a whole window.
func (s *C) maybePrune(win int64) {
	if win == s.lastWin {
		return
	}
	s.lastWin = win
	for key, e := range s.mct {
		if win-e.lastWin >= int64(s.cfg.Subwindows) {
			delete(s.mct, key)
			s.stats.Pruned++
		}
	}
}
