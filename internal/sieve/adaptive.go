package sieve

import (
	"fmt"
	"time"

	"repro/internal/block"
)

// This file implements the paper's §7 forward-looking tuning discussion as
// a working mechanism: an adaptive wrapper around SieveStore-C that
// adjusts the precise-tier threshold T2 online so the allocation-write rate
// tracks an operator-set budget. The static thresholds the paper tunes by
// hand (t1=9, t2=4) are workload-dependent; the adaptive sieve removes that
// knob by trading admission aggressiveness against the SSD write budget.

// AdaptiveConfig parameterizes the self-tuning sieve.
type AdaptiveConfig struct {
	// Base is the underlying two-tier sieve configuration; Base.T2 is the
	// starting threshold.
	Base CConfig
	// TargetAllocsPerMille is the allocation budget: allocation-writes per
	// 1000 misses the controller steers toward (the paper's SieveStore
	// variants land around 1–3‰).
	TargetAllocsPerMille float64
	// MinT2 and MaxT2 bound the adjustment range.
	MinT2, MaxT2 int
	// AdjustEvery is the control interval (defaults to one subwindow).
	AdjustEvery time.Duration
}

// DefaultAdaptiveConfig returns a controller around the paper's tuned
// sieve, budgeting ≈2 allocation-writes per 1000 misses.
func DefaultAdaptiveConfig() AdaptiveConfig {
	base := DefaultCConfig()
	return AdaptiveConfig{
		Base:                 base,
		TargetAllocsPerMille: 2,
		MinT2:                1,
		MaxT2:                64,
		AdjustEvery:          base.Window / time.Duration(base.Subwindows),
	}
}

// Validate checks the controller configuration.
func (c *AdaptiveConfig) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.TargetAllocsPerMille <= 0 {
		return fmt.Errorf("sieve: TargetAllocsPerMille must be positive")
	}
	if c.MinT2 < 1 || c.MaxT2 < c.MinT2 {
		return fmt.Errorf("sieve: bad T2 bounds [%d,%d]", c.MinT2, c.MaxT2)
	}
	if c.Base.T2 < c.MinT2 || c.Base.T2 > c.MaxT2 {
		return fmt.Errorf("sieve: Base.T2 %d outside [%d,%d]", c.Base.T2, c.MinT2, c.MaxT2)
	}
	if c.AdjustEvery <= 0 {
		return fmt.Errorf("sieve: AdjustEvery must be positive")
	}
	return nil
}

// Adaptive is a self-tuning SieveStore-C: a feedback controller that
// raises T2 when allocation-writes exceed the budget and lowers it when
// there is headroom.
type Adaptive struct {
	cfg   AdaptiveConfig
	inner *C
	t2    int
	// window accounting
	periodStart  int64
	misses       int64
	allocs       int64
	adjustments  int64
	lastDecision string
}

// NewAdaptive returns a self-tuning sieve.
func NewAdaptive(cfg AdaptiveConfig) (*Adaptive, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewC(cfg.Base)
	if err != nil {
		return nil, err
	}
	return &Adaptive{cfg: cfg, inner: inner, t2: cfg.Base.T2}, nil
}

// Name implements Policy.
func (a *Adaptive) Name() string { return "SieveStore-C-adaptive" }

// T2 returns the current precise-tier threshold.
func (a *Adaptive) T2() int { return a.t2 }

// Adjustments returns how many times the controller changed T2.
func (a *Adaptive) Adjustments() int64 { return a.adjustments }

// ShouldAllocate implements Policy.
func (a *Adaptive) ShouldAllocate(acc block.Access) bool {
	a.maybeAdjust(acc.Time)
	a.misses++
	if a.inner.ShouldAllocate(acc) {
		a.allocs++
		return true
	}
	return false
}

// maybeAdjust runs the controller once per interval: one T2 step per
// interval, proportional-free (a sign controller), which is stable because
// the allocation rate is monotone in T2.
func (a *Adaptive) maybeAdjust(now int64) {
	interval := a.cfg.AdjustEvery.Nanoseconds()
	if a.periodStart == 0 {
		a.periodStart = now
		return
	}
	if now-a.periodStart < interval {
		return
	}
	if a.misses >= 100 { // don't steer on noise
		rate := float64(a.allocs) * 1000 / float64(a.misses)
		switch {
		case rate > a.cfg.TargetAllocsPerMille*1.5 && a.t2 < a.cfg.MaxT2:
			a.t2++
			a.inner.cfg.T2 = a.t2
			a.adjustments++
			a.lastDecision = "raise"
		case rate < a.cfg.TargetAllocsPerMille*0.5 && a.t2 > a.cfg.MinT2:
			a.t2--
			a.inner.cfg.T2 = a.t2
			a.adjustments++
			a.lastDecision = "lower"
		default:
			a.lastDecision = "hold"
		}
	}
	a.periodStart = now
	a.misses, a.allocs = 0, 0
}

var _ Policy = (*Adaptive)(nil)
