package trace

import (
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/block"
)

// dayReq builds a request on calendar day d at second s.
func dayReq(d int, s int64, n uint64) block.Request {
	return block.Request{
		Time:   int64(d)*Day + s*1e9,
		Server: 0, Volume: 0, Kind: block.Read,
		Offset: n * block.Size, Length: block.Size,
	}
}

func TestSplitAndOpenDayDir(t *testing.T) {
	dir := t.TempDir()
	reqs := []block.Request{
		dayReq(0, 1, 1), dayReq(0, 2, 2),
		dayReq(2, 3, 3), // day 1 empty
		dayReq(3, 1, 4), dayReq(3, 2, 5), dayReq(3, 3, 6),
	}
	days, err := SplitByDay(NewSliceReader(reqs), dir)
	if err != nil {
		t.Fatal(err)
	}
	if days != 4 {
		t.Fatalf("days = %d, want 4", days)
	}
	dd, err := OpenDayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Days() != 4 {
		t.Fatalf("Days() = %d", dd.Days())
	}
	d0, err := dd.Day(0)
	if err != nil || len(d0) != 2 {
		t.Fatalf("day0: %v %v", d0, err)
	}
	d1, err := dd.Day(1)
	if err != nil || len(d1) != 0 {
		t.Fatalf("day1 should be empty: %v %v", d1, err)
	}
	d3, err := dd.Day(3)
	if err != nil || len(d3) != 3 {
		t.Fatalf("day3: %v %v", d3, err)
	}
	if d3[0] != reqs[3] {
		t.Errorf("day3[0] = %+v", d3[0])
	}
	if _, err := dd.Day(4); err == nil {
		t.Error("out-of-range day accepted")
	}
	if _, err := dd.Day(-1); err == nil {
		t.Error("negative day accepted")
	}
}

func TestSplitByDayRejectsRegression(t *testing.T) {
	reqs := []block.Request{dayReq(2, 1, 1), dayReq(1, 1, 2)}
	if _, err := SplitByDay(NewSliceReader(reqs), t.TempDir()); err != ErrUnsorted {
		t.Errorf("want ErrUnsorted, got %v", err)
	}
}

func TestDayDirReaderStreamsWholeTrace(t *testing.T) {
	dir := t.TempDir()
	var reqs []block.Request
	for d := 0; d < 3; d++ {
		for s := int64(0); s < 10; s++ {
			reqs = append(reqs, dayReq(d, s, uint64(s)))
		}
	}
	if _, err := SplitByDay(NewSliceReader(reqs), dir); err != nil {
		t.Fatal(err)
	}
	dd, err := OpenDayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(dd.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("streamed %d, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	r := dd.Reader()
	for {
		if _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenDayDirErrors(t *testing.T) {
	if _, err := OpenDayDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir accepted")
	}
	empty := t.TempDir()
	if _, err := OpenDayDir(empty); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestSortDayFiles(t *testing.T) {
	dir := t.TempDir()
	// Write an unsorted day file by hand (merged per-server traces land
	// like this).
	rng := rand.New(rand.NewSource(3))
	var reqs []block.Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, dayReq(0, int64(rng.Intn(86400)), uint64(i)))
	}
	f, err := os.Create(filepath.Join(dir, dayFileName(0)))
	if err != nil {
		t.Fatal(err)
	}
	w := NewBinaryWriter(f)
	// The binary writer requires time order, so sort a copy for writing,
	// then scramble by writing a second out-of-order file via SliceReader…
	// instead, write sorted but timestamp-shuffled offsets: simpler to use
	// a pre-sorted copy and verify SortDayFiles is a no-op, plus an
	// unsorted CSV-style case below.
	sorted := append([]block.Request(nil), reqs...)
	SortByTime(sorted)
	for _, r := range sorted {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	dd, err := OpenDayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := dd.SortDayFiles(); err != nil {
		t.Fatal(err)
	}
	got, err := dd.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatal("day file not sorted")
		}
	}
	if len(got) != len(reqs) {
		t.Fatalf("lost records: %d of %d", len(got), len(reqs))
	}
}

func TestSplitGeneratorRoundTrip(t *testing.T) {
	// End-to-end: split a multi-day synthetic-style stream and verify the
	// day-dir serves exactly the same days.
	var all []block.Request
	for d := 0; d < 4; d++ {
		for i := 0; i < 50; i++ {
			all = append(all, dayReq(d, int64(i), uint64(d*100+i)))
		}
	}
	dir := t.TempDir()
	if _, err := SplitByDay(NewSliceReader(all), dir); err != nil {
		t.Fatal(err)
	}
	dd, err := OpenDayDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for d := 0; d < dd.Days(); d++ {
		reqs, err := dd.Day(d)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range reqs {
			if DayOf(r.Time) != d {
				t.Fatalf("day %d file contains day-%d request", d, DayOf(r.Time))
			}
		}
		total += len(reqs)
	}
	if total != len(all) {
		t.Fatalf("total %d, want %d", total, len(all))
	}
}
