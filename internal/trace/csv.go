package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/block"
)

// The MSR-Cambridge block traces [Narayanan et al., FAST'08] are CSV files
// with the schema
//
//	Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
//
// where Timestamp and ResponseTime are Windows FILETIME values (100 ns
// ticks; Timestamp is absolute since 1601-01-01, ResponseTime is a
// duration), Hostname is the server key (e.g. "usr", "prxy"), DiskNumber is
// the volume index within the server, Type is "Read" or "Write", and Offset
// and Size are in bytes.
//
// This codec reads and writes that exact schema, so real MSR traces can be
// used in place of the synthetic workload without conversion.

// ticksPerNano converts between FILETIME ticks (100 ns) and nanoseconds.
const nanosPerTick = 100

// NameTable maps server names (the MSR Hostname column) to dense server IDs
// and back. The zero value is ready to use.
type NameTable struct {
	ids   map[string]int
	names []string
}

// NewNameTable returns a table pre-populated with names, assigned IDs in
// order.
func NewNameTable(names ...string) *NameTable {
	t := &NameTable{}
	for _, n := range names {
		t.ID(n)
	}
	return t
}

// ID returns the server ID for name, assigning the next free ID on first
// use.
func (t *NameTable) ID(name string) int {
	if t.ids == nil {
		t.ids = make(map[string]int)
	}
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := len(t.names)
	t.ids[name] = id
	t.names = append(t.names, name)
	return id
}

// Lookup returns the ID for name without assigning a new one.
func (t *NameTable) Lookup(name string) (int, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the server name for id, or a numeric placeholder if unknown.
func (t *NameTable) Name(id int) string {
	if id >= 0 && id < len(t.names) {
		return t.names[id]
	}
	return fmt.Sprintf("server%d", id)
}

// Len returns the number of names in the table.
func (t *NameTable) Len() int { return len(t.names) }

// Names returns the registered names in ID order. The slice is shared; do
// not modify it.
func (t *NameTable) Names() []string { return t.names }

// CSVReader streams an MSR-format CSV trace.
type CSVReader struct {
	s     *bufio.Scanner
	names *NameTable
	// Epoch is the FILETIME tick value treated as time zero. If zero, it is
	// latched from the first record's timestamp rounded down to a midnight
	// boundary is NOT applied — the caller controls alignment. (The
	// synthetic traces written by CSVWriter use epoch 0.)
	epoch   int64
	haveEp  bool
	line    int
	lastErr error
}

// NewCSVReader returns a reader over r. names maps the Hostname column to
// server IDs; pass a shared table when reading several per-server files
// destined for one ensemble. epochTicks is subtracted from every timestamp;
// pass 0 to use absolute tick values as nanoseconds-from-zero directly
// (after the 100 ns→ns conversion).
func NewCSVReader(r io.Reader, names *NameTable, epochTicks int64) *CSVReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 64*1024), 1024*1024)
	return &CSVReader{s: s, names: names, epoch: epochTicks, haveEp: epochTicks != 0}
}

// Next implements Reader.
func (c *CSVReader) Next() (block.Request, error) {
	if c.lastErr != nil {
		return block.Request{}, c.lastErr
	}
	for {
		if !c.s.Scan() {
			if err := c.s.Err(); err != nil {
				c.lastErr = err
				return block.Request{}, err
			}
			c.lastErr = io.EOF
			return block.Request{}, io.EOF
		}
		c.line++
		line := strings.TrimSpace(c.s.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		req, err := c.parse(line)
		if err != nil {
			c.lastErr = fmt.Errorf("trace: csv line %d: %w", c.line, err)
			return block.Request{}, c.lastErr
		}
		return req, nil
	}
}

func (c *CSVReader) parse(line string) (block.Request, error) {
	var req block.Request
	fields := strings.Split(line, ",")
	if len(fields) != 7 {
		return req, fmt.Errorf("want 7 fields, got %d", len(fields))
	}
	ticks, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return req, fmt.Errorf("timestamp: %w", err)
	}
	disk, err := strconv.Atoi(fields[2])
	if err != nil {
		return req, fmt.Errorf("disk number: %w", err)
	}
	var kind block.Kind
	switch strings.ToLower(fields[3]) {
	case "read", "r":
		kind = block.Read
	case "write", "w":
		kind = block.Write
	default:
		return req, fmt.Errorf("unknown request type %q", fields[3])
	}
	offset, err := strconv.ParseUint(fields[4], 10, 64)
	if err != nil {
		return req, fmt.Errorf("offset: %w", err)
	}
	size, err := strconv.ParseUint(fields[5], 10, 32)
	if err != nil {
		return req, fmt.Errorf("size: %w", err)
	}
	respTicks, err := strconv.ParseInt(fields[6], 10, 64)
	if err != nil {
		return req, fmt.Errorf("response time: %w", err)
	}
	req.Server = c.names.ID(fields[1])
	req.Volume = disk
	req.Kind = kind
	req.Offset = offset
	req.Length = uint32(size)
	req.Duration = respTicks * nanosPerTick
	req.Time = (ticks - c.epoch) * nanosPerTick
	return req, nil
}

// CSVWriter writes requests in the MSR CSV schema.
type CSVWriter struct {
	w     *bufio.Writer
	names *NameTable
	epoch int64 // ticks added to every timestamp
}

// NewCSVWriter returns a writer emitting MSR-format lines to w. names
// provides server names for the Hostname column; epochTicks is added to
// every timestamp so synthetic traces can be given realistic absolute
// FILETIME values (pass 0 for times relative to the trace epoch).
func NewCSVWriter(w io.Writer, names *NameTable, epochTicks int64) *CSVWriter {
	return &CSVWriter{w: bufio.NewWriter(w), names: names, epoch: epochTicks}
}

// Write implements Writer.
func (c *CSVWriter) Write(req block.Request) error {
	_, err := fmt.Fprintf(c.w, "%d,%s,%d,%s,%d,%d,%d\n",
		req.Time/nanosPerTick+c.epoch,
		c.names.Name(req.Server),
		req.Volume,
		req.Kind,
		req.Offset,
		req.Length,
		req.Duration/nanosPerTick)
	return err
}

// Flush flushes buffered output. Call it before closing the underlying
// file.
func (c *CSVWriter) Flush() error { return c.w.Flush() }
