// Package trace defines the block-trace model used throughout SieveStore:
// streaming readers and writers in both the MSR-Cambridge CSV format and a
// compact binary format, request→block expansion with completion-time
// interpolation (paper §4), calendar-day partitioning, and trace summary
// statistics (paper Table 1).
package trace

import (
	"errors"
	"io"
	"sort"
	"time"

	"repro/internal/block"
)

// Day is the epoch length used for calendar-day analysis. The paper
// partitions its 8-calendar-day trace at midnight boundaries.
const Day = int64(24 * time.Hour)

// Minute is the granularity of the IOPS-occupancy accounting (§4).
const Minute = int64(time.Minute)

// DayOf returns the zero-based calendar day containing timestamp t
// (nanoseconds since the trace epoch, which is midnight of day 0).
func DayOf(t int64) int { return int(t / Day) }

// MinuteOf returns the zero-based minute index containing timestamp t.
func MinuteOf(t int64) int { return int(t / Minute) }

// Reader is a stream of trace requests in non-decreasing time order.
// Next returns io.EOF after the last request.
type Reader interface {
	Next() (block.Request, error)
}

// Writer consumes a stream of trace requests.
type Writer interface {
	Write(block.Request) error
}

// ErrUnsorted is returned by readers that require time order when they
// observe a timestamp regression.
var ErrUnsorted = errors.New("trace: requests out of time order")

// SliceReader adapts an in-memory request slice to the Reader interface.
type SliceReader struct {
	reqs []block.Request
	pos  int
}

// NewSliceReader returns a Reader over reqs. The slice is not copied.
func NewSliceReader(reqs []block.Request) *SliceReader {
	return &SliceReader{reqs: reqs}
}

// Next implements Reader.
func (r *SliceReader) Next() (block.Request, error) {
	if r.pos >= len(r.reqs) {
		return block.Request{}, io.EOF
	}
	req := r.reqs[r.pos]
	r.pos++
	return req, nil
}

// Reset rewinds the reader to the start of the slice.
func (r *SliceReader) Reset() { r.pos = 0 }

// Collect drains a Reader into a slice. It is intended for tests and small
// traces; experiment pipelines stream instead.
func Collect(r Reader) ([]block.Request, error) {
	var out []block.Request
	for {
		req, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, req)
	}
}

// SortByTime sorts requests in place by issue time (stable, so equal-time
// requests keep their generation order, which keeps replays deterministic).
func SortByTime(reqs []block.Request) {
	sort.SliceStable(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time })
}

// Filter returns a Reader that yields only requests for which keep returns
// true.
func Filter(r Reader, keep func(*block.Request) bool) Reader {
	return &filterReader{r: r, keep: keep}
}

type filterReader struct {
	r    Reader
	keep func(*block.Request) bool
}

func (f *filterReader) Next() (block.Request, error) {
	for {
		req, err := f.r.Next()
		if err != nil {
			return req, err
		}
		if f.keep(&req) {
			return req, nil
		}
	}
}

// ServerFilter yields only requests issued to the given server.
func ServerFilter(r Reader, server int) Reader {
	return Filter(r, func(req *block.Request) bool { return req.Server == server })
}

// VolumeFilter yields only requests issued to the given server volume.
func VolumeFilter(r Reader, server, volume int) Reader {
	return Filter(r, func(req *block.Request) bool {
		return req.Server == server && req.Volume == volume
	})
}

// DayFilter yields only requests issued during calendar day d.
func DayFilter(r Reader, d int) Reader {
	return Filter(r, func(req *block.Request) bool { return DayOf(req.Time) == d })
}

// Merge returns a Reader that merges several time-ordered readers into one
// time-ordered stream (k-way merge). It is used to combine per-server trace
// files into the ensemble trace.
func Merge(readers ...Reader) Reader {
	m := &mergeReader{}
	for _, r := range readers {
		req, err := r.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			m.err = err
			continue
		}
		m.heads = append(m.heads, mergeHead{req: req, r: r})
	}
	m.heapify()
	return m
}

type mergeHead struct {
	req block.Request
	r   Reader
}

type mergeReader struct {
	heads []mergeHead
	err   error
}

func (m *mergeReader) heapify() {
	for i := len(m.heads)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

func (m *mergeReader) siftDown(i int) {
	n := len(m.heads)
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && m.heads[l].req.Time < m.heads[least].req.Time {
			least = l
		}
		if r < n && m.heads[r].req.Time < m.heads[least].req.Time {
			least = r
		}
		if least == i {
			return
		}
		m.heads[i], m.heads[least] = m.heads[least], m.heads[i]
		i = least
	}
}

func (m *mergeReader) Next() (block.Request, error) {
	if m.err != nil {
		return block.Request{}, m.err
	}
	if len(m.heads) == 0 {
		return block.Request{}, io.EOF
	}
	out := m.heads[0].req
	req, err := m.heads[0].r.Next()
	switch {
	case err == io.EOF:
		last := len(m.heads) - 1
		m.heads[0] = m.heads[last]
		m.heads = m.heads[:last]
	case err != nil:
		m.err = err
	default:
		m.heads[0].req = req
	}
	if len(m.heads) > 0 {
		m.siftDown(0)
	}
	return out, nil
}

// Expand appends the per-block accesses of a request to dst and returns the
// extended slice. Completion times for the individual blocks of a
// multi-block request are linearly interpolated between the request's issue
// time and its completion (issue+duration), matching the paper's
// methodology (§4) for timing allocation-writes: block i of n completes at
// issue + duration*(i+1)/n, so the last block completes exactly when the
// request does.
func Expand(dst []block.Access, req *block.Request) []block.Access {
	n := req.Blocks()
	first := req.Offset / block.Size
	for i := 0; i < n; i++ {
		t := req.Time + req.Duration*int64(i+1)/int64(n)
		dst = append(dst, block.Access{
			Time: t,
			Key:  block.MakeKey(req.Server, req.Volume, first+uint64(i)),
			Kind: req.Kind,
		})
	}
	return dst
}

// Accesses converts a request Reader into a block.Access stream, expanding
// multi-block requests. Accesses within a single request are emitted in
// block order.
type Accesses struct {
	r   Reader
	buf []block.Access
	pos int
}

// NewAccesses wraps a request Reader into a per-block access stream.
func NewAccesses(r Reader) *Accesses { return &Accesses{r: r} }

// Next returns the next single-block access, or io.EOF.
func (a *Accesses) Next() (block.Access, error) {
	for a.pos >= len(a.buf) {
		req, err := a.r.Next()
		if err != nil {
			return block.Access{}, err
		}
		a.buf = Expand(a.buf[:0], &req)
		a.pos = 0
	}
	acc := a.buf[a.pos]
	a.pos++
	return acc, nil
}
