package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/block"
)

// The binary trace format is a compact, streamable encoding used by the
// experiment pipeline for intermediate traces. Layout:
//
//	magic   [4]byte "SVT1"
//	records, each:
//	  timeDelta uvarint  (ns since previous record's Time; first is absolute)
//	  server    uvarint
//	  volume    uvarint
//	  kind      1 byte   (0 read, 1 write)
//	  offset    uvarint  (bytes)
//	  length    uvarint  (bytes)
//	  duration  uvarint  (ns)
//
// Records must be written in non-decreasing time order (deltas are
// unsigned); SortByTime before writing if needed.

var binMagic = [4]byte{'S', 'V', 'T', '1'}

// ErrBadMagic reports a binary trace stream with the wrong header.
var ErrBadMagic = errors.New("trace: bad binary trace magic")

// BinaryWriter writes the compact binary trace format.
type BinaryWriter struct {
	w        *bufio.Writer
	lastTime int64
	started  bool
	buf      [binary.MaxVarintLen64]byte
}

// NewBinaryWriter returns a BinaryWriter over w. The magic header is
// written lazily on the first record so that creating a writer is
// side-effect free.
func NewBinaryWriter(w io.Writer) *BinaryWriter {
	return &BinaryWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (b *BinaryWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(b.buf[:], v)
	_, err := b.w.Write(b.buf[:n])
	return err
}

// Write implements Writer. It returns an error if req.Time precedes the
// previous record's time.
func (b *BinaryWriter) Write(req block.Request) error {
	if !b.started {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.started = true
	}
	if req.Time < b.lastTime {
		return ErrUnsorted
	}
	if err := b.uvarint(uint64(req.Time - b.lastTime)); err != nil {
		return err
	}
	b.lastTime = req.Time
	if err := b.uvarint(uint64(req.Server)); err != nil {
		return err
	}
	if err := b.uvarint(uint64(req.Volume)); err != nil {
		return err
	}
	kind := byte(0)
	if req.Kind == block.Write {
		kind = 1
	}
	if err := b.w.WriteByte(kind); err != nil {
		return err
	}
	if err := b.uvarint(req.Offset); err != nil {
		return err
	}
	if err := b.uvarint(uint64(req.Length)); err != nil {
		return err
	}
	return b.uvarint(uint64(req.Duration))
}

// Flush flushes buffered output; if no record was written it still emits
// the magic header so the output is a valid empty trace.
func (b *BinaryWriter) Flush() error {
	if !b.started {
		if _, err := b.w.Write(binMagic[:]); err != nil {
			return err
		}
		b.started = true
	}
	return b.w.Flush()
}

// BinaryReader streams the compact binary trace format.
type BinaryReader struct {
	r        *bufio.Reader
	lastTime int64
	started  bool
	lastErr  error
}

// NewBinaryReader returns a BinaryReader over r.
func NewBinaryReader(r io.Reader) *BinaryReader {
	return &BinaryReader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Next implements Reader.
func (b *BinaryReader) Next() (block.Request, error) {
	var req block.Request
	if b.lastErr != nil {
		return req, b.lastErr
	}
	if !b.started {
		var magic [4]byte
		if _, err := io.ReadFull(b.r, magic[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				b.lastErr = io.EOF
				if err == io.ErrUnexpectedEOF {
					b.lastErr = ErrBadMagic
				}
				return req, b.lastErr
			}
			b.lastErr = err
			return req, err
		}
		if magic != binMagic {
			b.lastErr = ErrBadMagic
			return req, b.lastErr
		}
		b.started = true
	}
	delta, err := binary.ReadUvarint(b.r)
	if err != nil {
		if err == io.EOF {
			b.lastErr = io.EOF
		} else {
			b.lastErr = fmt.Errorf("trace: binary record: %w", err)
		}
		return req, b.lastErr
	}
	fail := func(field string, err error) (block.Request, error) {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		b.lastErr = fmt.Errorf("trace: binary record %s: %w", field, err)
		return block.Request{}, b.lastErr
	}
	b.lastTime += int64(delta)
	req.Time = b.lastTime
	server, err := binary.ReadUvarint(b.r)
	if err != nil {
		return fail("server", err)
	}
	req.Server = int(server)
	volume, err := binary.ReadUvarint(b.r)
	if err != nil {
		return fail("volume", err)
	}
	req.Volume = int(volume)
	kind, err := b.r.ReadByte()
	if err != nil {
		return fail("kind", err)
	}
	if kind == 1 {
		req.Kind = block.Write
	}
	req.Offset, err = binary.ReadUvarint(b.r)
	if err != nil {
		return fail("offset", err)
	}
	length, err := binary.ReadUvarint(b.r)
	if err != nil {
		return fail("length", err)
	}
	req.Length = uint32(length)
	dur, err := binary.ReadUvarint(b.r)
	if err != nil {
		return fail("duration", err)
	}
	req.Duration = int64(dur)
	return req, nil
}
