package trace

import (
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/block"
)

func req(t int64, server, volume int, kind block.Kind, offset uint64, length uint32) block.Request {
	return block.Request{Time: t, Server: server, Volume: volume, Kind: kind, Offset: offset, Length: length}
}

func TestDayAndMinuteOf(t *testing.T) {
	if DayOf(0) != 0 {
		t.Error("DayOf(0)")
	}
	if DayOf(Day-1) != 0 || DayOf(Day) != 1 || DayOf(3*Day+5) != 3 {
		t.Error("DayOf boundaries wrong")
	}
	if MinuteOf(Minute-1) != 0 || MinuteOf(Minute) != 1 {
		t.Error("MinuteOf boundaries wrong")
	}
	if MinuteOf(Day) != 24*60 {
		t.Errorf("MinuteOf(Day) = %d", MinuteOf(Day))
	}
}

func TestSliceReader(t *testing.T) {
	reqs := []block.Request{req(1, 0, 0, block.Read, 0, 512), req(2, 1, 0, block.Write, 512, 512)}
	r := NewSliceReader(reqs)
	got, err := Collect(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != reqs[0] || got[1] != reqs[1] {
		t.Errorf("Collect = %v", got)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
	r.Reset()
	if first, err := r.Next(); err != nil || first != reqs[0] {
		t.Errorf("after Reset: %v %v", first, err)
	}
}

func TestFilters(t *testing.T) {
	reqs := []block.Request{
		req(1, 0, 0, block.Read, 0, 512),
		req(2, 1, 0, block.Read, 0, 512),
		req(3, 1, 1, block.Read, 0, 512),
		req(Day+1, 1, 1, block.Read, 0, 512),
	}
	got, err := Collect(ServerFilter(NewSliceReader(reqs), 1))
	if err != nil || len(got) != 3 {
		t.Fatalf("ServerFilter: %v %v", got, err)
	}
	got, err = Collect(VolumeFilter(NewSliceReader(reqs), 1, 1))
	if err != nil || len(got) != 2 {
		t.Fatalf("VolumeFilter: %v %v", got, err)
	}
	got, err = Collect(DayFilter(NewSliceReader(reqs), 1))
	if err != nil || len(got) != 1 || got[0].Time != Day+1 {
		t.Fatalf("DayFilter: %v %v", got, err)
	}
}

func TestMergePreservesTimeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var streams [][]block.Request
	total := 0
	for s := 0; s < 5; s++ {
		var reqs []block.Request
		tm := int64(0)
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			tm += int64(rng.Intn(1000))
			reqs = append(reqs, req(tm, s, 0, block.Read, uint64(i)*512, 512))
		}
		total += n
		streams = append(streams, reqs)
	}
	readers := make([]Reader, len(streams))
	for i, s := range streams {
		readers[i] = NewSliceReader(s)
	}
	merged, err := Collect(Merge(readers...))
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != total {
		t.Fatalf("merged %d records, want %d", len(merged), total)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatalf("merge violated time order at %d: %d < %d", i, merged[i].Time, merged[i-1].Time)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	if got, err := Collect(Merge()); err != nil || len(got) != 0 {
		t.Errorf("Merge() = %v, %v", got, err)
	}
	if got, err := Collect(Merge(NewSliceReader(nil), NewSliceReader(nil))); err != nil || len(got) != 0 {
		t.Errorf("Merge(empty,empty) = %v, %v", got, err)
	}
}

func TestExpandSingleBlock(t *testing.T) {
	r := req(100, 2, 1, block.Write, 1024, 512)
	r.Duration = 50
	accs := Expand(nil, &r)
	if len(accs) != 1 {
		t.Fatalf("len = %d", len(accs))
	}
	if accs[0].Key != block.MakeKey(2, 1, 2) || accs[0].Kind != block.Write {
		t.Errorf("access = %+v", accs[0])
	}
	if accs[0].Time != 150 {
		t.Errorf("single-block completion time = %d, want 150", accs[0].Time)
	}
}

func TestExpandMultiBlockInterpolation(t *testing.T) {
	r := req(1000, 0, 0, block.Read, 0, 4*512)
	r.Duration = 400
	accs := Expand(nil, &r)
	if len(accs) != 4 {
		t.Fatalf("len = %d", len(accs))
	}
	wantTimes := []int64{1100, 1200, 1300, 1400}
	for i, a := range accs {
		if a.Time != wantTimes[i] {
			t.Errorf("block %d time = %d, want %d", i, a.Time, wantTimes[i])
		}
		if a.Key.Number() != uint64(i) {
			t.Errorf("block %d key = %v", i, a.Key)
		}
	}
}

func TestExpandProperty(t *testing.T) {
	// Last block completes exactly at issue+duration; times non-decreasing;
	// count matches Request.Blocks.
	f := func(off uint32, length uint16, dur uint16) bool {
		r := block.Request{Time: 10_000, Duration: int64(dur), Offset: uint64(off), Length: uint32(length)}
		accs := Expand(nil, &r)
		if len(accs) != r.Blocks() {
			return false
		}
		prev := int64(0)
		for _, a := range accs {
			if a.Time < prev {
				return false
			}
			prev = a.Time
		}
		return accs[len(accs)-1].Time == r.Time+r.Duration
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessesStream(t *testing.T) {
	reqs := []block.Request{
		req(1, 0, 0, block.Read, 0, 1024), // 2 blocks
		req(2, 0, 0, block.Write, 0, 512), // 1 block
	}
	a := NewAccesses(NewSliceReader(reqs))
	var got []block.Access
	for {
		acc, err := a.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, acc)
	}
	if len(got) != 3 {
		t.Fatalf("got %d accesses", len(got))
	}
	if got[0].Key.Number() != 0 || got[1].Key.Number() != 1 || got[2].Kind != block.Write {
		t.Errorf("accesses = %+v", got)
	}
}

func TestSortByTimeStable(t *testing.T) {
	reqs := []block.Request{
		req(5, 0, 0, block.Read, 0, 512),
		req(1, 1, 0, block.Read, 0, 512),
		req(5, 2, 0, block.Read, 0, 512),
	}
	SortByTime(reqs)
	if reqs[0].Server != 1 || reqs[1].Server != 0 || reqs[2].Server != 2 {
		t.Errorf("sort not stable/correct: %+v", reqs)
	}
}

func TestSummarize(t *testing.T) {
	reqs := []block.Request{
		req(0, 0, 0, block.Read, 0, 1024),        // 2 blocks, server 0 vol 0
		req(10, 0, 1, block.Write, 0, 512),       // 1 block, server 0 vol 1
		req(20, 1, 0, block.Read, 0, 512),        // 1 block, server 1
		req(Day+5, 0, 0, block.Read, 512, 512),   // repeat of block 1
		req(Day+6, 1, 0, block.Write, 1024, 512), // new block server 1
	}
	st, err := Summarize(NewSliceReader(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 5 || st.BlockAccesses != 6 {
		t.Errorf("requests=%d accesses=%d", st.Requests, st.BlockAccesses)
	}
	if st.Reads != 4 || st.Writes != 2 {
		t.Errorf("reads=%d writes=%d", st.Reads, st.Writes)
	}
	if st.UniqueBlocks != 5 {
		t.Errorf("unique=%d, want 5", st.UniqueBlocks)
	}
	if st.Days != 2 {
		t.Errorf("days=%d", st.Days)
	}
	s0 := st.Servers[0]
	if s0.VolumeCount() != 2 || s0.UniqueBlocks != 3 || s0.BlockAccesses != 4 {
		t.Errorf("server0 = %+v", s0)
	}
	s1 := st.Servers[1]
	if s1.VolumeCount() != 1 || s1.UniqueBlocks != 2 {
		t.Errorf("server1 = %+v", s1)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st, err := Summarize(NewSliceReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 0 || st.Days != 0 || st.UniqueBlocks != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
