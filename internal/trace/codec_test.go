package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/block"
)

func randomRequests(seed int64, n int) []block.Request {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]block.Request, n)
	tm := int64(0)
	for i := range reqs {
		tm += int64(rng.Intn(1_000_000)) * 100 // multiples of a FILETIME tick
		kind := block.Read
		if rng.Intn(4) == 0 {
			kind = block.Write
		}
		reqs[i] = block.Request{
			Time:     tm,
			Duration: int64(rng.Intn(10_000)) * 100,
			Server:   rng.Intn(13),
			Volume:   rng.Intn(5),
			Kind:     kind,
			Offset:   uint64(rng.Intn(1 << 30)),
			Length:   uint32((rng.Intn(64) + 1) * 512),
		}
	}
	return reqs
}

func TestBinaryRoundTrip(t *testing.T) {
	reqs := randomRequests(1, 500)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBinaryReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d records, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestBinaryEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewBinaryReader(&buf))
	if err != nil || len(got) != 0 {
		t.Errorf("empty trace: %v %v", got, err)
	}
}

func TestBinaryRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	if err := w.Write(block.Request{Time: 100}); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(block.Request{Time: 50}); err != ErrUnsorted {
		t.Errorf("want ErrUnsorted, got %v", err)
	}
}

func TestBinaryBadMagic(t *testing.T) {
	r := NewBinaryReader(strings.NewReader("NOPE...."))
	if _, err := r.Next(); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestBinaryTruncated(t *testing.T) {
	reqs := randomRequests(2, 10)
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewBinaryReader(bytes.NewReader(data[:len(data)-3]))
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			t.Fatal("truncated trace reported clean EOF")
		}
		if err != nil {
			break // truncation error expected
		}
		n++
	}
	if n == 0 || n >= len(reqs) {
		t.Errorf("read %d records from truncated trace of %d", n, len(reqs))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	reqs := randomRequests(3, 200)
	names := NewNameTable("usr", "proj", "prn", "hm", "rsrch", "prxy", "src1", "src2", "stg", "ts", "web", "mds", "wdev")
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, names, 0)
	for _, r := range reqs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewCSVReader(&buf, names, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("got %d records, want %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], reqs[i])
		}
	}
}

func TestCSVEpochOffset(t *testing.T) {
	// Writing with an epoch and reading with the same epoch must round-trip.
	const epoch = int64(128166372003061629) // an arbitrary FILETIME
	names := NewNameTable("web")
	r := block.Request{Time: 12345 * 100, Server: 0, Volume: 1, Kind: block.Write, Offset: 4096, Length: 8192, Duration: 100}
	var buf bytes.Buffer
	w := NewCSVWriter(&buf, names, epoch)
	if err := w.Write(r); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Collect(NewCSVReader(&buf, names, epoch))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != r {
		t.Errorf("got %+v, want %+v", got, r)
	}
}

func TestCSVParsesMSRStyleLines(t *testing.T) {
	in := strings.Join([]string{
		"# comment line",
		"128166372003061629,usr,0,Read,7014609920,24576,41286",
		"",
		"128166372016382155,prxy,1,Write,2311542784,4096,796",
	}, "\n")
	names := &NameTable{}
	got, err := Collect(NewCSVReader(strings.NewReader(in), names, 128166372003061629))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].Time != 0 || got[0].Kind != block.Read || got[0].Length != 24576 || got[0].Duration != 41286*100 {
		t.Errorf("rec0 = %+v", got[0])
	}
	if got[1].Server != names.ids["prxy"] || got[1].Volume != 1 || got[1].Kind != block.Write {
		t.Errorf("rec1 = %+v", got[1])
	}
	if got[1].Time != (128166372016382155-128166372003061629)*100 {
		t.Errorf("rec1 time = %d", got[1].Time)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct {
		name string
		line string
	}{
		{"too few fields", "1,usr,0,Read,0,512"},
		{"bad timestamp", "x,usr,0,Read,0,512,0"},
		{"bad disk", "1,usr,x,Read,0,512,0"},
		{"bad type", "1,usr,0,Frob,0,512,0"},
		{"bad offset", "1,usr,0,Read,-1,512,0"},
		{"bad size", "1,usr,0,Read,0,x,0"},
		{"bad response", "1,usr,0,Read,0,512,x"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r := NewCSVReader(strings.NewReader(c.line), &NameTable{}, 0)
			if _, err := r.Next(); err == nil || err == io.EOF {
				t.Errorf("want parse error, got %v", err)
			}
		})
	}
}

func TestNameTable(t *testing.T) {
	nt := &NameTable{}
	a := nt.ID("alpha")
	b := nt.ID("beta")
	if a == b || nt.ID("alpha") != a {
		t.Error("ID not stable")
	}
	if got, ok := nt.Lookup("beta"); !ok || got != b {
		t.Error("Lookup failed")
	}
	if _, ok := nt.Lookup("gamma"); ok {
		t.Error("Lookup invented a name")
	}
	if nt.Name(a) != "alpha" || nt.Name(99) != "server99" {
		t.Error("Name wrong")
	}
	if nt.Len() != 2 || len(nt.Names()) != 2 {
		t.Error("Len/Names wrong")
	}
}

// failWriter errors after n bytes.
type failWriter struct{ left int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, io.ErrClosedPipe
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, io.ErrClosedPipe
	}
	return n, nil
}

func TestBinaryWriterSurfacesIOErrors(t *testing.T) {
	w := NewBinaryWriter(&failWriter{left: 2})
	// Either the magic write or the record write must fail; small bufio
	// buffers defer errors to Flush at the latest.
	err := w.Write(block.Request{Time: 1, Length: 512})
	if err == nil {
		err = w.Flush()
	}
	// Flood enough data to overflow the 64 KiB bufio buffer if nothing
	// failed yet.
	for i := 0; err == nil && i < 100000; i++ {
		err = w.Write(block.Request{Time: int64(i + 2), Length: 512})
	}
	if err == nil {
		t.Error("I/O error never surfaced")
	}
}

func TestCSVWriterSurfacesIOErrors(t *testing.T) {
	names := NewNameTable("usr")
	w := NewCSVWriter(&failWriter{left: 10}, names, 0)
	var err error
	for i := 0; err == nil && i < 100000; i++ {
		err = w.Write(block.Request{Time: int64(i), Length: 512})
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		t.Error("I/O error never surfaced")
	}
}
