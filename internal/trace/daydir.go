package trace

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/block"
)

// This file implements on-disk, day-partitioned traces: a whole-trace
// stream (e.g. a real MSR-Cambridge CSV download, or tracegen output) is
// split into one compact binary file per calendar day, and the resulting
// directory can then be opened as a day-addressable trace for the
// simulator — the experiment harness replays traces day by day, and
// keeping days in separate files bounds memory for arbitrarily large
// traces.

// dayFileName returns the file name for calendar day d.
func dayFileName(d int) string { return fmt.Sprintf("day-%03d.trace", d) }

// SplitByDay drains a (time-ordered) request stream into per-day binary
// trace files under dir, creating it if needed. It returns the number of
// days written. Empty days get no file; OpenDayDir treats them as empty.
func SplitByDay(r Reader, dir string) (days int, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("trace: %w", err)
	}
	var (
		cur     *os.File
		w       *BinaryWriter
		curDay  = -1
		maxDay  = -1
		closeAl = func() error {
			if cur == nil {
				return nil
			}
			if err := w.Flush(); err != nil {
				cur.Close()
				return err
			}
			err := cur.Close()
			cur, w = nil, nil
			return err
		}
	)
	defer closeAl()
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		d := DayOf(req.Time)
		if d != curDay {
			if d < curDay {
				return 0, ErrUnsorted
			}
			if err := closeAl(); err != nil {
				return 0, err
			}
			f, err := os.Create(filepath.Join(dir, dayFileName(d)))
			if err != nil {
				return 0, fmt.Errorf("trace: %w", err)
			}
			cur, w = f, NewBinaryWriter(f)
			curDay = d
			if d > maxDay {
				maxDay = d
			}
		}
		if err := w.Write(req); err != nil {
			return 0, err
		}
	}
	if err := closeAl(); err != nil {
		return 0, err
	}
	return maxDay + 1, nil
}

// DayDir is a day-partitioned on-disk trace. It satisfies the simulator's
// Trace interface (Days/Day).
type DayDir struct {
	dir  string
	days int
}

// OpenDayDir scans dir for day files and returns the trace. The day count
// is one past the highest day file present.
func OpenDayDir(dir string) (*DayDir, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	maxDay := -1
	for _, e := range entries {
		var d int
		if _, err := fmt.Sscanf(e.Name(), "day-%d.trace", &d); err == nil {
			if d > maxDay {
				maxDay = d
			}
		}
	}
	if maxDay < 0 {
		return nil, fmt.Errorf("trace: no day files in %s", dir)
	}
	return &DayDir{dir: dir, days: maxDay + 1}, nil
}

// Days returns the trace length in calendar days.
func (dd *DayDir) Days() int { return dd.days }

// Day loads day d's requests. Missing day files yield an empty day.
func (dd *DayDir) Day(d int) ([]block.Request, error) {
	if d < 0 || d >= dd.days {
		return nil, fmt.Errorf("trace: day %d out of range [0,%d)", d, dd.days)
	}
	f, err := os.Open(filepath.Join(dd.dir, dayFileName(d)))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Collect(NewBinaryReader(f))
}

// Reader returns a whole-trace Reader over all days in order.
func (dd *DayDir) Reader() Reader {
	return &dayDirReader{dd: dd}
}

type dayDirReader struct {
	dd  *DayDir
	day int
	cur []block.Request
	pos int
}

func (r *dayDirReader) Next() (block.Request, error) {
	for r.pos >= len(r.cur) {
		if r.day >= r.dd.days {
			return block.Request{}, io.EOF
		}
		reqs, err := r.dd.Day(r.day)
		if err != nil {
			return block.Request{}, err
		}
		r.day++
		r.cur, r.pos = reqs, 0
	}
	req := r.cur[r.pos]
	r.pos++
	return req, nil
}

// SortDayFiles re-sorts every day file by time — useful after merging
// several per-server traces whose per-day interleavings are unordered.
func (dd *DayDir) SortDayFiles() error {
	for d := 0; d < dd.days; d++ {
		reqs, err := dd.Day(d)
		if err != nil {
			return err
		}
		if len(reqs) == 0 {
			continue
		}
		if sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Time < reqs[j].Time }) {
			continue
		}
		SortByTime(reqs)
		f, err := os.Create(filepath.Join(dd.dir, dayFileName(d)))
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		w := NewBinaryWriter(f)
		for i := range reqs {
			if err := w.Write(reqs[i]); err != nil {
				f.Close()
				return err
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
