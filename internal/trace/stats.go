package trace

import (
	"io"

	"repro/internal/block"
)

// ServerStats summarizes one server's share of a trace (one row of the
// paper's Table 1 plus derived access figures).
type ServerStats struct {
	Server        int
	Volumes       map[int]bool
	Requests      int64
	BlockAccesses int64
	Reads         int64 // block-granularity reads
	Writes        int64 // block-granularity writes
	BytesAccessed int64 // sum of request lengths
	UniqueBlocks  int64
}

// Stats summarizes a whole trace.
type Stats struct {
	Servers       map[int]*ServerStats
	Requests      int64
	BlockAccesses int64
	Reads         int64
	Writes        int64
	BytesAccessed int64
	UniqueBlocks  int64
	FirstTime     int64
	LastTime      int64
	Days          int
}

// VolumeCount returns the number of distinct volumes seen for the server.
func (s *ServerStats) VolumeCount() int { return len(s.Volumes) }

// Summarize scans a trace and computes summary statistics. The unique-block
// counts require memory proportional to the footprint; at experiment scale
// this is a few million map entries.
func Summarize(r Reader) (*Stats, error) {
	st := &Stats{Servers: make(map[int]*ServerStats), FirstTime: -1}
	// A block.Key embeds the server, so one seen-set serves both the
	// ensemble-wide and the per-server unique counts.
	seen := make(map[block.Key]bool)
	for {
		req, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		ss := st.Servers[req.Server]
		if ss == nil {
			ss = &ServerStats{Server: req.Server, Volumes: make(map[int]bool)}
			st.Servers[req.Server] = ss
		}
		ss.Volumes[req.Volume] = true
		ss.Requests++
		st.Requests++
		blocks := int64(req.Blocks())
		ss.BlockAccesses += blocks
		st.BlockAccesses += blocks
		if req.Kind == block.Write {
			ss.Writes += blocks
			st.Writes += blocks
		} else {
			ss.Reads += blocks
			st.Reads += blocks
		}
		ss.BytesAccessed += int64(req.Length)
		st.BytesAccessed += int64(req.Length)
		first := req.Offset / block.Size
		for i := 0; i < int(blocks); i++ {
			k := block.MakeKey(req.Server, req.Volume, first+uint64(i))
			if !seen[k] {
				seen[k] = true
				st.UniqueBlocks++
				ss.UniqueBlocks++
			}
		}
		if st.FirstTime < 0 || req.Time < st.FirstTime {
			st.FirstTime = req.Time
		}
		if req.Time > st.LastTime {
			st.LastTime = req.Time
		}
	}
	if st.FirstTime < 0 {
		st.FirstTime = 0
	}
	st.Days = DayOf(st.LastTime) + 1
	if st.Requests == 0 {
		st.Days = 0
	}
	return st, nil
}
