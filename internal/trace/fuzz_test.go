package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzBinaryReader feeds arbitrary bytes to the binary trace decoder: it
// must terminate with io.EOF or an error, never panic, and any decoded
// prefix must re-encode losslessly.
func FuzzBinaryReader(f *testing.F) {
	// Seed with a valid two-record trace and some corruptions.
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf)
	w.Write(randomRequests(1, 2)[0])
	w.Write(randomRequests(1, 2)[1])
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("SVT1"))
	f.Add([]byte("SVT1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewBinaryReader(bytes.NewReader(data))
		var decoded int
		for {
			req, err := r.Next()
			if err != nil {
				break
			}
			decoded++
			if decoded > 1_000_000 {
				t.Fatal("unbounded decode")
			}
			// Every decoded record must survive re-encoding.
			var out bytes.Buffer
			w := NewBinaryWriter(&out)
			if req.Time >= 0 {
				if err := w.Write(req); err != nil && err != ErrUnsorted {
					t.Fatalf("re-encode failed: %v", err)
				}
			}
		}
	})
}

// FuzzCSVReader feeds arbitrary text to the MSR CSV parser: it must never
// panic, and valid lines must parse into in-range requests.
func FuzzCSVReader(f *testing.F) {
	f.Add("128166372003061629,usr,0,Read,7014609920,24576,41286\n")
	f.Add("1,a,0,Write,0,512,0\n# comment\n\n2,b,1,Read,512,512,9\n")
	f.Add("not,a,trace\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, data string) {
		names := &NameTable{}
		r := NewCSVReader(bytes.NewReader([]byte(data)), names, 0)
		for i := 0; i < 100000; i++ {
			req, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // parse errors are fine; panics are not
			}
			if req.Server < 0 || req.Volume < 0 {
				t.Fatalf("negative identifiers: %+v", req)
			}
		}
	})
}
