package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// File is a durable ensemble backend: each volume is a sparse file under a
// directory, so the appliance daemon's backing store survives restarts.
// Reads of never-written ranges return zeros (the files are created sparse
// and extended on demand), matching the in-memory backend's semantics.
type File struct {
	dir string

	mu       sync.Mutex
	capacity map[devKey]uint64
	files    map[devKey]*os.File
}

// NewFile opens (creating if needed) a file-backed ensemble rooted at dir.
func NewFile(dir string) (*File, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &File{
		dir:      dir,
		capacity: make(map[devKey]uint64),
		files:    make(map[devKey]*os.File),
	}, nil
}

func (f *File) volumePath(k devKey) string {
	return filepath.Join(f.dir, fmt.Sprintf("vol-%03d-%03d.img", k.server, k.volume))
}

// AddVolume registers a volume with the given capacity, opening (or
// creating) its backing file.
func (f *File) AddVolume(server, volume int, capacity uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := devKey{server, volume}
	if _, ok := f.files[k]; ok {
		f.capacity[k] = capacity
		return nil
	}
	file, err := os.OpenFile(f.volumePath(k), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f.files[k] = file
	f.capacity[k] = capacity
	return nil
}

func (f *File) lookup(server, volume int, n int, off uint64) (*os.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	k := devKey{server, volume}
	file, ok := f.files[k]
	if !ok {
		return nil, fmt.Errorf("store: unknown volume %d:%d", server, volume)
	}
	if off+uint64(n) > f.capacity[k] {
		return nil, fmt.Errorf("store: I/O [%d,%d) beyond capacity %d of volume %d:%d",
			off, off+uint64(n), f.capacity[k], server, volume)
	}
	return file, nil
}

// ReadAt implements Backend. Short reads past the file's current extent
// zero-fill (sparse semantics).
func (f *File) ReadAt(server, volume int, p []byte, off uint64) error {
	file, err := f.lookup(server, volume, len(p), off)
	if err != nil {
		return err
	}
	n, err := file.ReadAt(p, int64(off))
	if err != nil && n < len(p) {
		// Beyond EOF: unwritten sparse range reads as zeros.
		for i := n; i < len(p); i++ {
			p[i] = 0
		}
	}
	return nil
}

// WriteAt implements Backend.
func (f *File) WriteAt(server, volume int, p []byte, off uint64) error {
	file, err := f.lookup(server, volume, len(p), off)
	if err != nil {
		return err
	}
	_, err = file.WriteAt(p, int64(off))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Sync flushes all volume files to stable storage.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, file := range f.files {
		if err := file.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	return nil
}

// Close closes all volume files.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for k, file := range f.files {
		if err := file.Close(); err != nil && first == nil {
			first = err
		}
		delete(f.files, k)
	}
	return first
}
