// Package store provides storage backends for the SieveStore core: the
// in-memory ensemble backend used by the examples and tests, a
// latency-modelling wrapper that accounts HDD-like service times, and a
// fault-injecting wrapper for failure testing.
package store

import (
	"fmt"
	"sync"
)

// Backend is a byte-addressable multi-volume storage ensemble. Offsets and
// lengths are arbitrary byte ranges within a (server, volume) device; the
// SieveStore core issues 512-byte-aligned requests.
type Backend interface {
	// ReadAt fills p from the volume at the given offset.
	ReadAt(server, volume int, p []byte, off uint64) error
	// WriteAt stores p to the volume at the given offset.
	WriteAt(server, volume int, p []byte, off uint64) error
}

// extentBits sizes the sparse backend's extent granularity (64 KiB).
const extentBits = 16

const extentSize = 1 << extentBits

// devKey identifies one volume.
type devKey struct{ server, volume int }

// extKey identifies one extent of one volume.
type extKey struct {
	dev devKey
	ext uint64
}

// Mem is a sparse in-memory ensemble backend: extents materialize on first
// write, and unwritten ranges read as zeros — mirroring a thin-provisioned
// volume. It is safe for concurrent use.
type Mem struct {
	mu       sync.RWMutex
	capacity map[devKey]uint64
	extents  map[extKey][]byte
}

// NewMem returns an empty in-memory ensemble.
func NewMem() *Mem {
	return &Mem{
		capacity: make(map[devKey]uint64),
		extents:  make(map[extKey][]byte),
	}
}

// AddVolume registers a volume with the given capacity in bytes. I/O beyond
// a registered capacity fails; unregistered volumes reject all I/O.
func (m *Mem) AddVolume(server, volume int, capacity uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.capacity[devKey{server, volume}] = capacity
}

func (m *Mem) check(server, volume int, n int, off uint64) error {
	cap, ok := m.capacity[devKey{server, volume}]
	if !ok {
		return fmt.Errorf("store: unknown volume %d:%d", server, volume)
	}
	if off+uint64(n) > cap {
		return fmt.Errorf("store: I/O [%d,%d) beyond capacity %d of volume %d:%d",
			off, off+uint64(n), cap, server, volume)
	}
	return nil
}

// ReadAt implements Backend.
func (m *Mem) ReadAt(server, volume int, p []byte, off uint64) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.check(server, volume, len(p), off); err != nil {
		return err
	}
	dev := devKey{server, volume}
	for done := 0; done < len(p); {
		ext := (off + uint64(done)) >> extentBits
		within := int((off + uint64(done)) & (extentSize - 1))
		n := extentSize - within
		if rem := len(p) - done; n > rem {
			n = rem
		}
		if data, ok := m.extents[extKey{dev, ext}]; ok {
			copy(p[done:done+n], data[within:within+n])
		} else {
			for i := done; i < done+n; i++ {
				p[i] = 0
			}
		}
		done += n
	}
	return nil
}

// WriteAt implements Backend.
func (m *Mem) WriteAt(server, volume int, p []byte, off uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.check(server, volume, len(p), off); err != nil {
		return err
	}
	dev := devKey{server, volume}
	for done := 0; done < len(p); {
		ext := (off + uint64(done)) >> extentBits
		within := int((off + uint64(done)) & (extentSize - 1))
		n := extentSize - within
		if rem := len(p) - done; n > rem {
			n = rem
		}
		key := extKey{dev, ext}
		data, ok := m.extents[key]
		if !ok {
			data = make([]byte, extentSize)
			m.extents[key] = data
		}
		copy(data[within:within+n], p[done:done+n])
		done += n
	}
	return nil
}

// ExtentCount returns the number of materialized extents (test aid).
func (m *Mem) ExtentCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.extents)
}
