package store

import (
	"errors"
	"testing"
	"time"
)

func newFaultyMem(t *testing.T) (*Faulty, *Mem) {
	t.Helper()
	m := NewMem()
	m.AddVolume(0, 0, 1<<20)
	m.AddVolume(1, 0, 1<<20)
	return NewFaulty(m), m
}

func TestFaultyLegacyTogglesStillWork(t *testing.T) {
	f, _ := newFaultyMem(t)
	p := make([]byte, 512)
	f.FailReads(true)
	if err := f.ReadAt(0, 0, p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
	if err := f.WriteAt(0, 0, p, 0); err != nil {
		t.Fatalf("write should pass with only reads failing: %v", err)
	}
	f.FailReads(false)
	f.FailAfter(1)
	if err := f.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if err := f.ReadAt(0, 0, p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed one-shot: err = %v, want ErrInjected", err)
	}
	if err := f.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("one-shot should disarm: %v", err)
	}
}

func TestFaultyProbabilisticAndTransient(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.Seed(42)
	f.SetConfig(FaultConfig{ReadFailProb: 1.0, Transient: true})
	p := make([]byte, 512)
	err := f.ReadAt(0, 0, p, 0)
	if !errors.Is(err, ErrInjectedTransient) {
		t.Fatalf("err = %v, want ErrInjectedTransient", err)
	}
	if tr, ok := err.(interface{ Transient() bool }); !ok || !tr.Transient() {
		t.Fatal("ErrInjectedTransient must declare itself Transient")
	}
	if err := f.WriteAt(0, 0, p, 0); err != nil {
		t.Fatalf("writes unaffected by ReadFailProb: %v", err)
	}
	f.SetConfig(FaultConfig{WriteFailProb: 1.0}) // permanent flavor
	if err := f.WriteAt(0, 0, p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want permanent ErrInjected", err)
	}
}

func TestFaultyScopedToDevice(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.SetConfig(FaultConfig{ReadFailProb: 1.0, Scoped: true, Server: 1, Volume: 0})
	p := make([]byte, 512)
	if err := f.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("unscoped device should pass: %v", err)
	}
	if err := f.ReadAt(1, 0, p, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("scoped device: err = %v, want ErrInjected", err)
	}
}

func TestFaultyHangReleasedByClearFaults(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.SetConfig(FaultConfig{HangProb: 1.0, HangFor: time.Minute})
	p := make([]byte, 512)
	done := make(chan error, 1)
	go func() { done <- f.ReadAt(0, 0, p, 0) }()
	select {
	case err := <-done:
		t.Fatalf("request completed instead of hanging: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	f.ClearFaults()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ClearFaults did not release the hang")
	}
	f.Quiesce() // no stragglers left
}

func TestFaultyHangTimesOutOnItsOwn(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.SetConfig(FaultConfig{HangProb: 1.0, HangFor: 20 * time.Millisecond})
	p := make([]byte, 512)
	start := time.Now()
	if err := f.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("hang-then-complete failed: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("completed in %v, before the hang elapsed", el)
	}
}

func TestFaultyLatencySpike(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.SetConfig(FaultConfig{LatencyProb: 1.0, Latency: 30 * time.Millisecond})
	p := make([]byte, 512)
	start := time.Now()
	if err := f.WriteAt(0, 0, p, 0); err != nil {
		t.Fatalf("spiked write failed: %v", err)
	}
	if el := time.Since(start); el < 30*time.Millisecond {
		t.Fatalf("write took %v, spike not applied", el)
	}
}

func TestFaultyClearFaultsDisarmsEverything(t *testing.T) {
	f, _ := newFaultyMem(t)
	f.FailReads(true)
	f.FailWrites(true)
	f.FailAfter(0)
	f.SetConfig(FaultConfig{ReadFailProb: 1.0, WriteFailProb: 1.0})
	f.ClearFaults()
	p := make([]byte, 512)
	if err := f.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("read after ClearFaults: %v", err)
	}
	if err := f.WriteAt(0, 0, p, 0); err != nil {
		t.Fatalf("write after ClearFaults: %v", err)
	}
}
