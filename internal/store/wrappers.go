package store

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Latency wraps a Backend and accounts HDD-like service time for every
// request. By default the delay is only *recorded* (so tests stay fast);
// with Sleep=true it is actually imposed, which the appliance example uses
// to make the cache's effect visible.
type Latency struct {
	Backend
	// PerRequest is the fixed positioning cost (seek+rotate).
	PerRequest time.Duration
	// PerByte is the transfer cost per byte.
	PerByte time.Duration
	// Sleep imposes the delay for real instead of only accounting it.
	Sleep bool

	busy int64 // accumulated nanoseconds
	ops  int64
}

// NewLatency wraps backend with enterprise-HDD-like defaults (≈8 ms
// positioning, ≈100 MB/s transfer).
func NewLatency(backend Backend) *Latency {
	return &Latency{
		Backend:    backend,
		PerRequest: 8 * time.Millisecond,
		PerByte:    10 * time.Nanosecond,
	}
}

func (l *Latency) account(n int) {
	d := l.PerRequest + time.Duration(n)*l.PerByte
	atomic.AddInt64(&l.busy, int64(d))
	atomic.AddInt64(&l.ops, 1)
	if l.Sleep {
		time.Sleep(d)
	}
}

// ReadAt implements Backend.
func (l *Latency) ReadAt(server, volume int, p []byte, off uint64) error {
	l.account(len(p))
	return l.Backend.ReadAt(server, volume, p, off)
}

// WriteAt implements Backend.
func (l *Latency) WriteAt(server, volume int, p []byte, off uint64) error {
	l.account(len(p))
	return l.Backend.WriteAt(server, volume, p, off)
}

// BusyTime returns the total accounted device time.
func (l *Latency) BusyTime() time.Duration { return time.Duration(atomic.LoadInt64(&l.busy)) }

// Ops returns the number of requests that reached the backend.
func (l *Latency) Ops() int64 { return atomic.LoadInt64(&l.ops) }

// ErrInjected is returned by a tripped Faulty backend.
var ErrInjected = errors.New("store: injected fault")

// Faulty wraps a Backend and fails requests on demand — used to test that
// the SieveStore core propagates ensemble errors without corrupting its
// cache state.
type Faulty struct {
	Backend

	mu         sync.Mutex
	failReads  bool
	failWrites bool
	failAfter  int64 // fail once this many more requests have passed; -1 = off
}

// NewFaulty wraps backend with fault injection disabled.
func NewFaulty(backend Backend) *Faulty {
	return &Faulty{Backend: backend, failAfter: -1}
}

// FailReads toggles immediate read failures.
func (f *Faulty) FailReads(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads = on
}

// FailWrites toggles immediate write failures.
func (f *Faulty) FailWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites = on
}

// FailAfter arms a one-shot failure after n successful requests.
func (f *Faulty) FailAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = n
}

func (f *Faulty) shouldFail(isRead bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if isRead && f.failReads {
		return true
	}
	if !isRead && f.failWrites {
		return true
	}
	if f.failAfter >= 0 {
		if f.failAfter == 0 {
			f.failAfter = -1
			return true
		}
		f.failAfter--
	}
	return false
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(server, volume int, p []byte, off uint64) error {
	if f.shouldFail(true) {
		return ErrInjected
	}
	return f.Backend.ReadAt(server, volume, p, off)
}

// WriteAt implements Backend.
func (f *Faulty) WriteAt(server, volume int, p []byte, off uint64) error {
	if f.shouldFail(false) {
		return ErrInjected
	}
	return f.Backend.WriteAt(server, volume, p, off)
}
