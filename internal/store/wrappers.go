package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Latency wraps a Backend and accounts HDD-like service time for every
// request. By default the delay is only *recorded* (so tests stay fast);
// with Sleep=true it is actually imposed, which the appliance example uses
// to make the cache's effect visible.
type Latency struct {
	Backend
	// PerRequest is the fixed positioning cost (seek+rotate).
	PerRequest time.Duration
	// PerByte is the transfer cost per byte.
	PerByte time.Duration
	// Sleep imposes the delay for real instead of only accounting it.
	Sleep bool

	busy int64 // accumulated nanoseconds
	ops  int64
}

// NewLatency wraps backend with enterprise-HDD-like defaults (≈8 ms
// positioning, ≈100 MB/s transfer).
func NewLatency(backend Backend) *Latency {
	return &Latency{
		Backend:    backend,
		PerRequest: 8 * time.Millisecond,
		PerByte:    10 * time.Nanosecond,
	}
}

func (l *Latency) account(n int) {
	d := l.PerRequest + time.Duration(n)*l.PerByte
	atomic.AddInt64(&l.busy, int64(d))
	atomic.AddInt64(&l.ops, 1)
	if l.Sleep {
		time.Sleep(d)
	}
}

// ReadAt implements Backend.
func (l *Latency) ReadAt(server, volume int, p []byte, off uint64) error {
	l.account(len(p))
	return l.Backend.ReadAt(server, volume, p, off)
}

// WriteAt implements Backend.
func (l *Latency) WriteAt(server, volume int, p []byte, off uint64) error {
	l.account(len(p))
	return l.Backend.WriteAt(server, volume, p, off)
}

// BusyTime returns the total accounted device time.
func (l *Latency) BusyTime() time.Duration { return time.Duration(atomic.LoadInt64(&l.busy)) }

// Ops returns the number of requests that reached the backend.
func (l *Latency) Ops() int64 { return atomic.LoadInt64(&l.ops) }

// ErrInjected is returned by a tripped Faulty backend. It classifies as
// permanent (no Transient method): the legacy toggles model deterministic
// device rejections.
var ErrInjected = errors.New("store: injected fault")

// ErrInjectedTransient is the retryable flavor of ErrInjected, used by
// probabilistic fault configs that model blips a retry would clear. It
// implements the `Transient() bool` probe internal/resilience classifies
// by.
var ErrInjectedTransient error = transientInjected{errors.New("store: injected transient fault")}

type transientInjected struct{ error }

// Transient marks the error retryable for resilience.Transient.
func (transientInjected) Transient() bool { return true }

// FaultConfig drives the probabilistic fault modes of Faulty. All
// probabilities are per-request in [0,1]; the zero value injects nothing.
type FaultConfig struct {
	// ReadFailProb / WriteFailProb fail a matching request outright.
	ReadFailProb, WriteFailProb float64
	// Transient makes probabilistic failures return ErrInjectedTransient
	// (retry-clearable) instead of the permanent ErrInjected.
	Transient bool
	// HangProb hangs a matching request for HangFor — or until
	// ClearFaults releases it — before completing normally, modelling a
	// wedged device. HangFor defaults to 30 s.
	HangProb float64
	HangFor  time.Duration
	// LatencyProb delays a matching request by Latency (a served-but-slow
	// spike rather than a hang); Latency defaults to 10 ms.
	LatencyProb float64
	Latency     time.Duration
	// Server/Volume scope the faults to one device; leave both at -1 (or
	// the whole struct zero with Scoped false) to cover every device.
	Scoped         bool
	Server, Volume int
}

// Faulty wraps a Backend and injects failures — used to test that the
// SieveStore core propagates ensemble errors without corrupting its cache
// state, and by the chaos harness to drive randomized per-device faults,
// hangs, and latency spikes through the resilience layer.
//
// Two control planes coexist: the legacy deterministic toggles
// (FailReads/FailWrites/FailAfter, always ErrInjected, unscoped) and the
// probabilistic FaultConfig (seeded, per-device scopable, transient or
// permanent, with hangs and latency spikes).
type Faulty struct {
	Backend

	mu         sync.Mutex
	failReads  bool
	failWrites bool
	failAfter  int64 // fail once this many more requests have passed; -1 = off
	cfg        FaultConfig
	rng        *rand.Rand
	release    chan struct{} // closed by ClearFaults to free current hangs

	inflight sync.WaitGroup // backend calls in progress (for Quiesce)
}

// NewFaulty wraps backend with fault injection disabled.
func NewFaulty(backend Backend) *Faulty {
	return &Faulty{
		Backend:   backend,
		failAfter: -1,
		rng:       rand.New(rand.NewSource(1)),
		release:   make(chan struct{}),
	}
}

// Seed reseeds the probabilistic fault source (deterministic per seed).
func (f *Faulty) Seed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// SetConfig installs a probabilistic fault configuration (replacing any
// previous one). Requests already hanging keep hanging until their HangFor
// elapses or ClearFaults runs.
func (f *Faulty) SetConfig(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
}

// ClearFaults disarms every fault mode — the deterministic toggles and
// the probabilistic config — and releases all currently-hanging requests,
// which then complete against the backend.
func (f *Faulty) ClearFaults() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads, f.failWrites, f.failAfter = false, false, -1
	f.cfg = FaultConfig{}
	close(f.release)
	f.release = make(chan struct{})
}

// Quiesce blocks until no request is inside the wrapped backend. Chaos
// tests call ClearFaults then Quiesce so that abandoned (timed-out)
// stragglers have finished mutating the backend before it is inspected.
func (f *Faulty) Quiesce() {
	f.inflight.Wait()
}

// FailReads toggles immediate read failures.
func (f *Faulty) FailReads(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failReads = on
}

// FailWrites toggles immediate write failures.
func (f *Faulty) FailWrites(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWrites = on
}

// FailAfter arms a one-shot failure after n successful requests.
func (f *Faulty) FailAfter(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failAfter = n
}

// decide applies the fault planes to one request: it may sleep (latency
// spike), park until released or timed out (hang), and finally returns
// the injected error, nil meaning the request proceeds to the backend.
func (f *Faulty) decide(isRead bool, server, volume int) error {
	f.mu.Lock()
	// Legacy deterministic toggles — unscoped, always permanent.
	if (isRead && f.failReads) || (!isRead && f.failWrites) {
		f.mu.Unlock()
		return ErrInjected
	}
	if f.failAfter >= 0 {
		if f.failAfter == 0 {
			f.failAfter = -1
			f.mu.Unlock()
			return ErrInjected
		}
		f.failAfter--
	}
	// Probabilistic plane.
	cfg := f.cfg
	release := f.release
	var failErr error
	var hang, spike time.Duration
	if !cfg.Scoped || (cfg.Server == server && cfg.Volume == volume) {
		p := cfg.WriteFailProb
		if isRead {
			p = cfg.ReadFailProb
		}
		if p > 0 && f.rng.Float64() < p {
			if cfg.Transient {
				failErr = ErrInjectedTransient
			} else {
				failErr = ErrInjected
			}
		}
		if cfg.HangProb > 0 && f.rng.Float64() < cfg.HangProb {
			if hang = cfg.HangFor; hang <= 0 {
				hang = 30 * time.Second
			}
		} else if cfg.LatencyProb > 0 && f.rng.Float64() < cfg.LatencyProb {
			if spike = cfg.Latency; spike <= 0 {
				spike = 10 * time.Millisecond
			}
		}
	}
	f.mu.Unlock()
	if hang > 0 {
		t := time.NewTimer(hang)
		select {
		case <-t.C:
		case <-release:
			t.Stop()
		}
	} else if spike > 0 {
		time.Sleep(spike)
	}
	return failErr
}

// ReadAt implements Backend.
func (f *Faulty) ReadAt(server, volume int, p []byte, off uint64) error {
	f.inflight.Add(1)
	defer f.inflight.Done()
	if err := f.decide(true, server, volume); err != nil {
		return err
	}
	return f.Backend.ReadAt(server, volume, p, off)
}

// WriteAt implements Backend.
func (f *Faulty) WriteAt(server, volume int, p []byte, off uint64) error {
	f.inflight.Add(1)
	defer f.inflight.Done()
	if err := f.decide(false, server, volume); err != nil {
		return err
	}
	return f.Backend.WriteAt(server, volume, p, off)
}
