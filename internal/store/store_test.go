package store

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestMemReadWriteRoundTrip(t *testing.T) {
	m := NewMem()
	m.AddVolume(1, 2, 1<<20)
	data := []byte("hello, ensemble")
	if err := m.WriteAt(1, 2, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadAt(1, 2, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("got %q", got)
	}
}

func TestMemZeroFill(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<20)
	got := make([]byte, 512)
	got[0] = 0xFF
	if err := m.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
}

func TestMemCrossExtentIO(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<20)
	// Write a pattern straddling the 64 KiB extent boundary.
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	off := uint64(extentSize - 1500)
	if err := m.WriteAt(0, 0, data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadAt(0, 0, got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-extent round trip failed")
	}
	if m.ExtentCount() != 2 {
		t.Errorf("extents = %d, want 2", m.ExtentCount())
	}
}

func TestMemBoundsAndUnknownVolume(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 4096)
	buf := make([]byte, 512)
	if err := m.ReadAt(0, 1, buf, 0); err == nil {
		t.Error("unknown volume should fail")
	}
	if err := m.WriteAt(0, 0, buf, 4096); err == nil {
		t.Error("write past capacity should fail")
	}
	if err := m.ReadAt(0, 0, buf, 3584); err != nil {
		t.Errorf("read at exact end failed: %v", err)
	}
}

func TestMemSparseReadsDontMaterialize(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<30)
	buf := make([]byte, 4096)
	for off := uint64(0); off < 10; off++ {
		if err := m.ReadAt(0, 0, buf, off*1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if m.ExtentCount() != 0 {
		t.Errorf("reads materialized %d extents", m.ExtentCount())
	}
}

func TestMemPropertyRoundTrip(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<22)
	f := func(off uint32, val byte, length uint16) bool {
		o := uint64(off) % (1 << 21)
		n := int(length)%2048 + 1
		data := bytes.Repeat([]byte{val}, n)
		if err := m.WriteAt(0, 0, data, o); err != nil {
			return false
		}
		got := make([]byte, n)
		if err := m.ReadAt(0, 0, got, o); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLatencyAccounting(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<20)
	l := NewLatency(m)
	buf := make([]byte, 4096)
	if err := l.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := l.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if l.Ops() != 2 {
		t.Errorf("ops = %d", l.Ops())
	}
	want := 2 * (8*time.Millisecond + 4096*10*time.Nanosecond)
	if got := l.BusyTime(); got != want {
		t.Errorf("busy = %v, want %v", got, want)
	}
}

func TestFaultyInjection(t *testing.T) {
	m := NewMem()
	m.AddVolume(0, 0, 1<<20)
	f := NewFaulty(m)
	buf := make([]byte, 512)
	if err := f.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatalf("unexpected failure: %v", err)
	}
	f.FailReads(true)
	if err := f.ReadAt(0, 0, buf, 0); err != ErrInjected {
		t.Errorf("want ErrInjected, got %v", err)
	}
	if err := f.WriteAt(0, 0, buf, 0); err != nil {
		t.Errorf("writes should still pass: %v", err)
	}
	f.FailReads(false)
	f.FailAfter(1)
	if err := f.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	if err := f.WriteAt(0, 0, buf, 0); err != ErrInjected {
		t.Errorf("armed failure did not fire: %v", err)
	}
	if err := f.WriteAt(0, 0, buf, 0); err != nil {
		t.Errorf("one-shot failure should disarm: %v", err)
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AddVolume(2, 1, 1<<20); err != nil {
		t.Fatal(err)
	}
	data := []byte("durable ensemble data")
	if err := f.WriteAt(2, 1, data, 8192); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f.ReadAt(2, 1, got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackendSparseReads(t *testing.T) {
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AddVolume(0, 0, 1<<24); err != nil {
		t.Fatal(err)
	}
	// Unwritten range reads as zeros even far past any written extent.
	got := bytes.Repeat([]byte{0xFF}, 4096)
	if err := f.ReadAt(0, 0, got, 1<<20); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %x", i, b)
		}
	}
	// Partial overlap with a written extent.
	if err := f.WriteAt(0, 0, []byte{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	got = bytes.Repeat([]byte{0xFF}, 6)
	if err := f.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 0, 0, 0}) {
		t.Errorf("partial read = %v", got)
	}
}

func TestFileBackendPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	f1, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.AddVolume(0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	data := []byte("survives restart")
	if err := f1.WriteAt(0, 0, data, 512); err != nil {
		t.Fatal(err)
	}
	if err := f1.Close(); err != nil {
		t.Fatal(err)
	}
	f2, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := f2.AddVolume(0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := f2.ReadAt(0, 0, got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("data lost across reopen")
	}
}

func TestFileBackendBounds(t *testing.T) {
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AddVolume(0, 0, 4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := f.ReadAt(0, 1, buf, 0); err == nil {
		t.Error("unknown volume accepted")
	}
	if err := f.WriteAt(0, 0, buf, 4096); err == nil {
		t.Error("write past capacity accepted")
	}
}

func TestFileBackendWorksUnderCore(t *testing.T) {
	// The file backend must satisfy the same Backend contract the core
	// store depends on — exercise a small read/write mix through it.
	f, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.AddVolume(0, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	var b Backend = f
	data := bytes.Repeat([]byte{7}, 512)
	for i := uint64(0); i < 32; i++ {
		if err := b.WriteAt(0, 0, data, i*512); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, 32*512)
	if err := b.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	for i, bb := range got {
		if bb != 7 {
			t.Fatalf("byte %d = %x", i, bb)
		}
	}
}
