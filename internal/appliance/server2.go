// Server-side protocol v2: the pipelined connection loop. One reader
// pulls tagged frames off the wire and dispatches each request to a
// worker (bounded by ServerOptions.MaxPipeline); workers complete out of
// order, staging responses under a per-connection write mutex. Reads are
// served zero-copy from pinned cache frames where the blocks are
// resident.
package appliance

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/core"
)

// serveConnV2 takes over a connection that negotiated protocol v2. The
// terminating conditions mirror serveConn's: a malformed header, an
// unknown op, or a redundant HELLO close the connection after an error
// frame — but only after every in-flight worker has responded, so the
// closer error frame is deterministically the last frame on the wire.
// Malformed vector payloads and out-of-range ids answer an error frame
// and keep the connection (the payload was fully consumed, so the stream
// stays frame-aligned).
func (s *Server) serveConnV2(conn net.Conn, br *bufio.Reader, bw *bufio.Writer) {
	maxP := s.opts.MaxPipeline
	if maxP <= 0 {
		maxP = defaultMaxPipeline
	}
	var (
		wmu      sync.Mutex // serializes response staging + flush
		wg       sync.WaitGroup
		sem      = make(chan struct{}, maxP)
		inflight atomic.Int64
	)
	// Drain workers before serveConn's deferred conn.Close(): every
	// accepted request gets its response bytes staged and flushed.
	defer wg.Wait()
	hdr := make([]byte, headerSizeV2)
	for {
		// Idle enforcement is best-effort between pipelined bursts: the
		// deadline is armed only while nothing is in flight (a worker
		// slower than IdleTimeout must not kill the connection under the
		// reader's feet).
		if s.opts.IOTimeout <= 0 && s.opts.IdleTimeout > 0 && inflight.Load() == 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		if _, err := io.ReadFull(br, hdr); err != nil {
			return // EOF, idle timeout, or broken connection
		}
		s.requests.Add(1)
		h, err := decodeHeaderV2(hdr)
		if err != nil {
			// The tag field sits at a fixed offset even in a rejected
			// header; echo it so the client can fail the right op.
			tag := binary.BigEndian.Uint32(hdr[2:6])
			wg.Wait()
			s.sendErrV2(conn, bw, &wmu, tag, err)
			return
		}
		if s.opts.IOTimeout > 0 {
			// Like v1: the deadline covers this request's remaining wire
			// I/O. Pipelined responses re-arm it per arriving request.
			conn.SetDeadline(time.Now().Add(s.opts.IOTimeout))
		} else if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
		}
		var payload []byte
		switch h.op {
		case OpWrite, OpReadV, OpWriteV:
			payload = poolGet(int(h.length))
			if _, err := io.ReadFull(br, payload); err != nil {
				poolPut(payload)
				return
			}
		}
		switch h.op {
		case OpRead, OpWrite, OpStats, OpRotate, OpInvalidate, OpFlush, OpReadV, OpWriteV:
			if inflight.Add(1) > 1 {
				s.pipelinedReqs.Add(1)
			}
			s.pipelineDepth.Add(1)
			sem <- struct{}{}
			wg.Add(1)
			go func(h headerV2, payload []byte) {
				defer func() {
					<-sem
					s.pipelineDepth.Add(-1)
					// When the pipeline drains, re-arm the idle deadline:
					// the reader is already blocked in ReadFull by now and
					// only checks at loop top, before this worker ran.
					if inflight.Add(-1) == 0 && s.opts.IOTimeout <= 0 && s.opts.IdleTimeout > 0 {
						conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
					}
					wg.Done()
				}()
				s.handleV2(conn, bw, &wmu, h, payload)
			}(h, payload)
		default:
			// Unknown op — including a redundant OpHello — terminates,
			// like v1.
			poolPut(payload)
			wg.Wait()
			s.sendErrV2(conn, bw, &wmu, h.tag, fmt.Errorf("%w: unknown op %d", ErrProtocol, h.op))
			return
		}
	}
}

// handleV2 executes one request and stages its response. payload is
// pool-owned and released here.
func (s *Server) handleV2(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, h headerV2, payload []byte) {
	defer poolPut(payload)
	// Same id-range guard as v1, for the ops whose header ids address
	// blocks (vector ops carry ids per extent, checked below).
	switch h.op {
	case OpRead, OpWrite, OpInvalidate:
		if int(h.server) >= block.MaxServers || int(h.volume) >= block.MaxVolumes {
			s.sendErrV2(conn, bw, wmu, h.tag, fmt.Errorf("appliance: server %d / volume %d out of range", h.server, h.volume))
			return
		}
	}
	switch h.op {
	case OpRead:
		n := int(h.length)
		pr := s.store.ReadPinned(int(h.server), int(h.volume), n, h.offset)
		pinned := 0
		if pr != nil {
			pinned = pr.Bytes()
		}
		var tail []byte
		if n > pinned || n == 0 {
			tail = poolGet(n - pinned)
			if err := s.store.ReadAt(int(h.server), int(h.volume), tail, h.offset+uint64(pinned)); err != nil {
				if pr != nil {
					pr.Release()
				}
				poolPut(tail)
				s.sendErrV2(conn, bw, wmu, h.tag, err)
				return
			}
		}
		s.zeroCopyBytes.Add(int64(pinned))
		wmu.Lock()
		var head [respHeadV2]byte
		respHead(head[:], h.tag, statusOK)
		bw.Write(head[:])
		if pr != nil {
			for _, v := range pr.Views() {
				bw.Write(v)
			}
		}
		if len(tail) > 0 {
			bw.Write(tail)
		}
		err := bw.Flush()
		wmu.Unlock()
		if pr != nil {
			pr.Release()
		}
		if tail != nil {
			poolPut(tail)
		}
		if err != nil {
			conn.Close()
		}
	case OpWrite:
		if err := s.store.WriteAt(int(h.server), int(h.volume), payload, h.offset); err != nil {
			s.sendErrV2(conn, bw, wmu, h.tag, err)
			return
		}
		s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, nil)
	case OpStats:
		data, err := json.Marshal(s.store.Stats())
		if err != nil {
			s.sendErrV2(conn, bw, wmu, h.tag, err)
			return
		}
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
		s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, lenBuf[:], data)
	case OpRotate:
		if err := s.store.RotateEpoch(); err != nil {
			s.sendErrV2(conn, bw, wmu, h.tag, err)
			return
		}
		s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, nil)
	case OpInvalidate:
		dropped, err := s.store.Invalidate(int(h.server), int(h.volume), h.offset, int(h.length))
		if err != nil {
			s.sendErrV2(conn, bw, wmu, h.tag, err)
			return
		}
		var resp [4]byte
		binary.BigEndian.PutUint32(resp[:], uint32(dropped))
		s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, resp[:])
	case OpFlush:
		if err := s.store.Flush(); err != nil {
			s.sendErrV2(conn, bw, wmu, h.tag, err)
			return
		}
		s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, nil)
	case OpReadV:
		s.handleReadV(conn, bw, wmu, h, payload)
	case OpWriteV:
		s.handleWriteV(conn, bw, wmu, h, payload)
	}
}

// parseVec decodes and fully validates a vector payload, answering the
// error frame itself on failure.
func (s *Server) parseVec(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, h headerV2, payload []byte) ([]wireExtent, []byte, int, bool) {
	tab, rest, total, err := decodeExtentTable(payload)
	if err != nil {
		s.sendErrV2(conn, bw, wmu, h.tag, err)
		return nil, nil, 0, false
	}
	for _, e := range tab {
		if int(e.server) >= block.MaxServers || int(e.volume) >= block.MaxVolumes {
			s.sendErrV2(conn, bw, wmu, h.tag, fmt.Errorf("appliance: server %d / volume %d out of range", e.server, e.volume))
			return nil, nil, 0, false
		}
	}
	return tab, rest, total, true
}

func (s *Server) handleReadV(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, h headerV2, payload []byte) {
	tab, rest, total, ok := s.parseVec(conn, bw, wmu, h, payload)
	if !ok {
		return
	}
	if len(rest) != 0 {
		s.sendErrV2(conn, bw, wmu, h.tag, fmt.Errorf("%w: %d stray bytes after read vector table", ErrProtocol, len(rest)))
		return
	}
	s.vecOps.Add(1)
	s.vecExtents.Add(int64(len(tab)))
	buf := poolGet(total)
	vecs := make([]core.IOVec, len(tab))
	off := 0
	for i, e := range tab {
		vecs[i] = core.IOVec{Server: int(e.server), Volume: int(e.volume), P: buf[off : off+int(e.length)], Off: e.off}
		off += int(e.length)
	}
	if err := s.store.ReadVec(vecs); err != nil {
		poolPut(buf)
		s.sendErrV2(conn, bw, wmu, h.tag, err)
		return
	}
	s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, buf)
	poolPut(buf)
}

func (s *Server) handleWriteV(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, h headerV2, payload []byte) {
	tab, rest, total, ok := s.parseVec(conn, bw, wmu, h, payload)
	if !ok {
		return
	}
	if len(rest) != total {
		s.sendErrV2(conn, bw, wmu, h.tag, fmt.Errorf("%w: write vector data is %d bytes, table says %d", ErrProtocol, len(rest), total))
		return
	}
	s.vecOps.Add(1)
	s.vecExtents.Add(int64(len(tab)))
	vecs := make([]core.IOVec, len(tab))
	off := 0
	for i, e := range tab {
		vecs[i] = core.IOVec{Server: int(e.server), Volume: int(e.volume), P: rest[off : off+int(e.length)], Off: e.off}
		off += int(e.length)
	}
	if err := s.store.WriteVec(vecs); err != nil {
		s.sendErrV2(conn, bw, wmu, h.tag, err)
		return
	}
	s.writeFrameV2(conn, bw, wmu, h.tag, statusOK, nil)
}

// writeFrameV2 stages one tagged response frame under the write mutex
// and flushes it. A flush failure closes the connection (unblocking the
// reader); the remaining workers' flushes then fail the same way.
func (s *Server) writeFrameV2(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, tag uint32, status byte, segs ...[]byte) {
	wmu.Lock()
	var head [respHeadV2]byte
	respHead(head[:], tag, status)
	bw.Write(head[:])
	for _, seg := range segs {
		if len(seg) > 0 {
			bw.Write(seg)
		}
	}
	err := bw.Flush()
	wmu.Unlock()
	if err != nil {
		conn.Close()
	}
}

// sendErrV2 stages a tagged error frame.
func (s *Server) sendErrV2(conn net.Conn, bw *bufio.Writer, wmu *sync.Mutex, tag uint32, err error) {
	s.errorFrames.Add(1)
	msg := truncateErrMsg(err.Error(), maxErrMsg)
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	s.writeFrameV2(conn, bw, wmu, tag, statusErr, lenBuf[:], []byte(msg))
}
