package appliance

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/internal/sieve"
	"repro/internal/sieved"
	"repro/internal/tenant"
	"repro/internal/tier"
)

// Observability collects every counter the system computes — per-shard
// core stats, sieve/IMCT state, SieveStore-D spill-log partition stats,
// resilience breaker/retry stats, and appliance server stats — into a
// metrics.Registry under stable dotted names, and serves them over HTTP:
//
//	/metrics    Prometheus text exposition (counters, gauges, latency
//	            histograms with quantile-derivable le buckets)
//	/statusz    the same data as JSON, histograms rendered as
//	            count/sum/max plus p50/p95/p99/p999
//	/debug/ops  the store's sampled per-op lifecycle records, newest first
//
// All producer snapshots are refreshed once per scrape (Registry
// OnCollect), so a scrape costs one cross-shard stats merge regardless of
// how many metrics read from it.
type Observability struct {
	Registry *metrics.Registry

	store *core.Store
	start time.Time
	now   func() time.Time

	mu      sync.RWMutex
	stats   core.Stats
	sieve   sieve.CStats
	spill   sieved.LoggerStats
	tier    tier.Stats
	advice  *tier.Advice
	tenants []tenant.Snapshot

	// Tenants appear dynamically as I/O arrives, so their per-tenant
	// series are registered lazily from refresh (the registry has no
	// labels — the identity lives in the metric name).
	tenantSeen map[tenant.ID]bool
}

// NewObservability builds a registry over st's counters. Attach more
// producers with AttachServer and AttachResilience, then serve Handler.
func NewObservability(st *core.Store) *Observability {
	o := &Observability{
		Registry:   metrics.NewRegistry(),
		store:      st,
		start:      time.Now(),
		now:        time.Now,
		tenantSeen: make(map[tenant.ID]bool),
	}
	r := o.Registry
	r.OnCollect(o.refresh)
	r.Uptime("sievestore.uptime_seconds", o.start, nil)
	r.Gauge("sievestore.core.shards", func() float64 { return float64(st.Shards()) })

	c := func(name string, f func(core.Stats) int64) {
		r.Counter("sievestore.core."+name, func() int64 { return f(o.coreStats()) })
	}
	g := func(name string, f func(core.Stats) float64) {
		r.Gauge("sievestore.core."+name, func() float64 { return f(o.coreStats()) })
	}
	c("reads", func(s core.Stats) int64 { return s.Reads })
	c("writes", func(s core.Stats) int64 { return s.Writes })
	c("read_hits", func(s core.Stats) int64 { return s.ReadHits })
	c("write_hits", func(s core.Stats) int64 { return s.WriteHits })
	c("alloc_writes", func(s core.Stats) int64 { return s.AllocWrites })
	c("evictions", func(s core.Stats) int64 { return s.Evictions })
	c("epoch_moves", func(s core.Stats) int64 { return s.EpochMoves })
	c("epochs", func(s core.Stats) int64 { return s.Epochs })
	c("backend_reads", func(s core.Stats) int64 { return s.BackendReads })
	c("backend_writes", func(s core.Stats) int64 { return s.BackendWrites })
	c("flush_writes", func(s core.Stats) int64 { return s.FlushWrites })
	c("coalesced_reads", func(s core.Stats) int64 { return s.CoalescedReads })
	c("rotate_failures", func(s core.Stats) int64 { return s.RotateFailures })
	c("reset_failures", func(s core.Stats) int64 { return s.ResetFailures })
	c("flush_errors", func(s core.Stats) int64 { return s.FlushErrors })
	c("bypass_reads", func(s core.Stats) int64 { return s.BypassReads })
	c("bypass_writes", func(s core.Stats) int64 { return s.BypassWrites })
	c("degraded_enters", func(s core.Stats) int64 { return s.DegradedEnters })
	c("degraded_exits", func(s core.Stats) int64 { return s.DegradedExits })
	c("cache_faults", func(s core.Stats) int64 { return s.CacheFaults })
	c("spill_disables", func(s core.Stats) int64 { return s.SpillDisables })
	c("select_overflow", func(s core.Stats) int64 { return s.SelectOverflow })
	c("pinned_reads", func(s core.Stats) int64 { return s.PinnedReads })
	c("group_commits", func(s core.Stats) int64 { return s.GroupCommits })
	c("coalesced_flushes", func(s core.Stats) int64 { return s.CoalescedFlushes })
	c("backend_bytes_read", func(s core.Stats) int64 { return s.BackendBytesRead })
	c("backend_bytes_written", func(s core.Stats) int64 { return s.BackendBytesWritten })
	c("cache_bytes_served", func(s core.Stats) int64 { return s.CacheBytesServed })
	c("read_ops", func(s core.Stats) int64 { return s.ReadLatency.Ops })
	c("read_errors", func(s core.Stats) int64 { return s.ReadLatency.Errors })
	c("write_ops", func(s core.Stats) int64 { return s.WriteLatency.Ops })
	c("write_errors", func(s core.Stats) int64 { return s.WriteLatency.Errors })
	g("cached_blocks", func(s core.Stats) float64 { return float64(s.CachedBlocks) })
	g("capacity_blocks", func(s core.Stats) float64 { return float64(s.CapacityBlocks) })
	g("dirty_blocks", func(s core.Stats) float64 { return float64(s.DirtyBlocks) })
	g("sieve_tracked_blocks", func(s core.Stats) float64 { return float64(s.SieveTrackedBlocks) })
	g("hit_ratio", func(s core.Stats) float64 { return s.HitRatio() })
	g("degraded", func(s core.Stats) float64 {
		if s.Degraded {
			return 1
		}
		return 0
	})

	// The active eviction policy, info-style: one series per registered
	// policy, 1 on the active one, and the eviction counter attributed to
	// it (the registry has no labels, so the policy name lives in the
	// metric name — sievestore_core_policy_evictions_sieve etc.).
	active := st.Policy()
	for _, flag := range cache.PolicyNames() {
		flag := flag
		p, err := cache.NewPolicy(flag, 1)
		if err != nil {
			continue
		}
		isActive := p.Name() == active
		r.Gauge("sievestore.core.policy."+flag, func() float64 {
			if isActive {
				return 1
			}
			return 0
		})
		r.Counter("sievestore.core.policy_evictions."+flag, func() int64 {
			if !isActive {
				return 0
			}
			return o.coreStats().Evictions
		})
	}

	r.Histogram("sievestore.core.read_latency", func() metrics.HistogramSnapshot {
		rd, _ := st.LatencyHistograms()
		return rd
	})
	r.Histogram("sievestore.core.write_latency", func() metrics.HistogramSnapshot {
		_, wr := st.LatencyHistograms()
		return wr
	})

	sc := func(name string, f func(sieve.CStats) int64) {
		r.Counter("sievestore.sieve."+name, func() int64 { return f(o.sieveStats()) })
	}
	sc("misses", func(s sieve.CStats) int64 { return s.Misses })
	sc("promotions", func(s sieve.CStats) int64 { return s.Promotions })
	sc("allocations", func(s sieve.CStats) int64 { return s.Allocations })
	sc("pruned", func(s sieve.CStats) int64 { return s.Pruned })
	r.Gauge("sievestore.sieve.mct_size", func() float64 { return float64(o.sieveStats().MCTSize) })

	if _, ok := st.TierStats(); ok {
		tc := func(name string, f func(tier.Stats) int64) {
			r.Counter("sievestore.tier."+name, func() int64 { return f(o.tierStats()) })
		}
		tg := func(name string, f func(tier.Stats) float64) {
			r.Gauge("sievestore.tier."+name, func() float64 { return f(o.tierStats()) })
		}
		tc("hits", func(s tier.Stats) int64 { return s.Hits })
		tc("pinned", func(s tier.Stats) int64 { return s.Pinned })
		tc("misses", func(s tier.Stats) int64 { return s.Misses })
		tc("promotions", func(s tier.Stats) int64 { return s.Promotions })
		tc("demotions", func(s tier.Stats) int64 { return s.Demotions })
		tc("invalidations", func(s tier.Stats) int64 { return s.Invalidations })
		tc("resizes", func(s tier.Stats) int64 { return s.Resizes })
		tg("cached_blocks", func(s tier.Stats) float64 { return float64(s.CachedBlocks) })
		tg("capacity_blocks", func(s tier.Stats) float64 { return float64(s.CapacityBlocks) })
		tg("pinned_frames", func(s tier.Stats) float64 { return float64(s.PinnedFrames) })
		tg("occupancy", func(s tier.Stats) float64 {
			if s.CapacityBlocks == 0 {
				return 0
			}
			return float64(s.CachedBlocks) / float64(s.CapacityBlocks)
		})
		// The advisor's latest cost-model recommendation (bytes); 0 until
		// the first analysis lands (VariantD: the first epoch boundary).
		r.Gauge("sievestore.tier.advisor_recommended_bytes", func() float64 {
			o.mu.RLock()
			defer o.mu.RUnlock()
			if o.advice == nil {
				return 0
			}
			return float64(o.advice.RecommendedBytes)
		})
	}

	if _, ok := st.TenantStats(); ok {
		c("tenants", func(s core.Stats) int64 { return s.Tenants })
		c("quota_denials", func(s core.Stats) int64 { return s.QuotaDenials })
		c("throttle_denials", func(s core.Stats) int64 { return s.ThrottleDenials })
		c("tenant_clips", func(s core.Stats) int64 { return s.TenantClips })
		c("tenant_repartitions", func(s core.Stats) int64 { return s.TenantRepartitions })
	}

	if _, ok := st.SpillStats(); ok {
		sg := func(name string, f func(sieved.LoggerStats) float64) {
			r.Gauge("sievestore.sieved."+name, func() float64 { return f(o.spillStats()) })
		}
		sg("partitions", func(s sieved.LoggerStats) float64 { return float64(s.Partitions) })
		sg("tuples", func(s sieved.LoggerStats) float64 { return float64(s.Tuples) })
		sg("max_partition_tuples", func(s sieved.LoggerStats) float64 { return float64(s.MaxPartitionTuples) })
		sg("pending_epochs", func(s sieved.LoggerStats) float64 { return float64(s.PendingEpochs) })
	}
	return o
}

// refresh snapshots the store once per collection.
func (o *Observability) refresh() {
	st := o.store.Stats()
	sv := o.store.SieveStats()
	sp, _ := o.store.SpillStats()
	ts, tiered := o.store.TierStats()
	var adv *tier.Advice
	if tiered {
		adv = o.store.TierAdvice()
	}
	tn, _ := o.store.TenantStats()
	o.mu.Lock()
	o.stats, o.sieve, o.spill, o.tier, o.advice = st, sv, sp, ts, adv
	o.tenants = tn
	var fresh []tenant.Snapshot
	for _, t := range tn {
		if !o.tenantSeen[t.ID] {
			o.tenantSeen[t.ID] = true
			fresh = append(fresh, t)
		}
	}
	o.mu.Unlock()
	// Register series for newly seen tenants outside o.mu: collection
	// runs its prepare hooks before taking the registry lock, so
	// registering here is safe and the new series appear on this very
	// scrape.
	for _, t := range fresh {
		o.registerTenant(t.ID)
	}
}

// registerTenant adds one tenant's metric series under
// sievestore.tenant.<server>_<volume>.*.
func (o *Observability) registerTenant(id tenant.ID) {
	r := o.Registry
	prefix := fmt.Sprintf("sievestore.tenant.%d_%d.", id.Server(), id.Volume())
	tc := func(name string, f func(tenant.Snapshot) int64) {
		r.Counter(prefix+name, func() int64 { return f(o.tenantSnapFor(id)) })
	}
	tg := func(name string, f func(tenant.Snapshot) float64) {
		r.Gauge(prefix+name, func() float64 { return f(o.tenantSnapFor(id)) })
	}
	tc("reads", func(s tenant.Snapshot) int64 { return s.Reads })
	tc("writes", func(s tenant.Snapshot) int64 { return s.Writes })
	tc("hits", func(s tenant.Snapshot) int64 { return s.Hits })
	tc("alloc_writes", func(s tenant.Snapshot) int64 { return s.AllocWrites })
	tc("quota_denials", func(s tenant.Snapshot) int64 { return s.QuotaDenials })
	tc("throttle_denials", func(s tenant.Snapshot) int64 { return s.ThrottleDenials })
	tc("selection_clips", func(s tenant.Snapshot) int64 { return s.SelectionClips })
	tc("throttles", func(s tenant.Snapshot) int64 { return s.Throttles })
	tg("quota_blocks", func(s tenant.Snapshot) float64 { return float64(s.QuotaBlocks) })
	tg("occupancy_blocks", func(s tenant.Snapshot) float64 { return float64(s.OccupancyBlocks) })
	tg("hit_ratio", func(s tenant.Snapshot) float64 { return s.HitRatio() })
	tg("throttled", func(s tenant.Snapshot) float64 { return float64(s.Throttled) })
	tg("endurance_tokens_bytes", func(s tenant.Snapshot) float64 { return float64(s.EnduranceTokens) })
}

// tenantSnapFor returns the cached snapshot for one tenant (zero value
// if the tenant vanished from the snapshot, which cannot happen today —
// tenants are never forgotten).
func (o *Observability) tenantSnapFor(id tenant.ID) tenant.Snapshot {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for _, t := range o.tenants {
		if t.ID == id {
			return t
		}
	}
	return tenant.Snapshot{}
}

func (o *Observability) coreStats() core.Stats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.stats
}

func (o *Observability) sieveStats() sieve.CStats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.sieve
}

func (o *Observability) spillStats() sieved.LoggerStats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.spill
}

func (o *Observability) tierStats() tier.Stats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.tier
}

// AttachServer registers the appliance server's connection/request
// counters.
func (o *Observability) AttachServer(srv *Server) {
	r := o.Registry
	r.Gauge("sievestore.server.active_conns", func() float64 { return float64(srv.StatsSnapshot().ActiveConns) })
	r.Counter("sievestore.server.total_conns", func() int64 { return srv.StatsSnapshot().TotalConns })
	r.Counter("sievestore.server.busy_rejects", func() int64 { return srv.StatsSnapshot().BusyRejects })
	r.Counter("sievestore.server.requests", func() int64 { return srv.StatsSnapshot().Requests })
	r.Counter("sievestore.server.error_frames", func() int64 { return srv.StatsSnapshot().ErrorFrames })
	r.Counter("sievestore.server.v2_conns", func() int64 { return srv.StatsSnapshot().V2Conns })
	r.Counter("sievestore.server.pipelined_requests", func() int64 { return srv.StatsSnapshot().PipelinedReqs })
	r.Gauge("sievestore.server.pipeline_depth", func() float64 { return float64(srv.StatsSnapshot().PipelineDepth) })
	r.Counter("sievestore.server.vec_ops", func() int64 { return srv.StatsSnapshot().VecOps })
	r.Counter("sievestore.server.vec_extents", func() int64 { return srv.StatsSnapshot().VecExtents })
	r.Counter("sievestore.server.zero_copy_bytes", func() int64 { return srv.StatsSnapshot().ZeroCopyBytes })
}

// AttachResilience registers the fault-tolerant backend wrapper's
// retry/breaker counters.
func (o *Observability) AttachResilience(res *resilience.Resilient) {
	r := o.Registry
	snap := func() resilience.Snapshot { return res.Stats() }
	r.Counter("sievestore.resilience.retries", func() int64 { return snap().Retries })
	r.Counter("sievestore.resilience.timeouts", func() int64 { return snap().Timeouts })
	r.Counter("sievestore.resilience.breaker_fast_fails", func() int64 { return snap().BreakerFastFails })
	r.Counter("sievestore.resilience.breaker_trips", func() int64 { return snap().BreakerTrips })
	r.Counter("sievestore.resilience.transient_errors", func() int64 { return snap().TransientErrors })
	r.Counter("sievestore.resilience.permanent_errors", func() int64 { return snap().PermanentErrors })
	r.Gauge("sievestore.resilience.open_devices", func() float64 { return float64(snap().OpenDevices) })
	// Per-edge transition counters: breaker_trips above conflates
	// closed→open with failed half-open probes; these keep each edge of
	// the state machine separately countable for failover post-mortems.
	r.Counter("sievestore.resilience.breaker_transitions_closed_open", func() int64 { return snap().Transitions.ClosedOpen })
	r.Counter("sievestore.resilience.breaker_transitions_open_half_open", func() int64 { return snap().Transitions.OpenHalfOpen })
	r.Counter("sievestore.resilience.breaker_transitions_half_open_closed", func() int64 { return snap().Transitions.HalfOpenClosed })
	r.Counter("sievestore.resilience.breaker_transitions_half_open_open", func() int64 { return snap().Transitions.HalfOpenOpen })
}

// Handler returns the HTTP mux serving /metrics, /statusz, and
// /debug/ops. Mount it on any listener (cmd/appliance's -metrics flag
// serves exactly this).
func (o *Observability) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		o.Registry.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		body := map[string]any{
			"variant":        o.store.Variant().String(),
			"policy":         o.store.Policy(),
			"shards":         o.store.Shards(),
			"uptime_seconds": o.now().Sub(o.start).Seconds(),
			"metrics":        o.Registry.JSONStatus(),
		}
		// The tier advisor's full candidate sweep, when a RAM tier exists:
		// operators see the drive-cost curve, not just the argmin.
		if _, ok := o.store.TierStats(); ok {
			if adv := o.store.TierAdvice(); adv != nil {
				body["tier_advisor"] = adv
			}
		}
		// The per-tenant QoS table, when tenant tracking is on: quotas,
		// occupancy, hit ratios, and endurance state per (server, volume).
		if tn, ok := o.store.TenantStats(); ok {
			body["tenants"] = tn
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/debug/ops", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		traces := o.store.Traces()
		body := map[string]any{
			"sampled": traces != nil,
			"ops":     traces,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	return mux
}
