package appliance

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/store"
)

// startDServer starts an appliance over a VariantD store with a long epoch
// (rotation only via the admin op).
func startDServer(t *testing.T) (*Client, *core.Store, *store.Mem) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 256 * block.Size,
		Variant:    core.VariantD,
		DThreshold: 3,
		Epoch:      240 * time.Hour,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
		st.Close()
	})
	return client, st, be
}

func TestRemoteRotateEpoch(t *testing.T) {
	client, st, be := startDServer(t)
	seed := bytes.Repeat([]byte{0xAA}, 512)
	if err := be.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 5; i++ {
		if err := client.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st.Stats().CachedBlocks != 0 {
		t.Fatal("nothing should be cached before rotation")
	}
	if err := client.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Epochs != 1 || stats.EpochMoves != 1 || stats.CachedBlocks != 1 {
		t.Errorf("after remote rotation: %+v", stats)
	}
	// The moved block serves hits with the right data.
	if err := client.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, seed) {
		t.Error("rotated block data wrong")
	}
}

func TestRemoteInvalidate(t *testing.T) {
	client, st, _ := startDServer(t)
	buf := make([]byte, 512)
	for i := 0; i < 5; i++ {
		if err := client.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(0, 0, 0) {
		t.Fatal("setup: block not cached")
	}
	dropped, err := client.Invalidate(0, 0, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if st.Contains(0, 0, 0) {
		t.Error("block still cached after remote invalidate")
	}
	// Idempotent: a second invalidate drops nothing.
	dropped, err = client.Invalidate(0, 0, 0, 512)
	if err != nil || dropped != 0 {
		t.Errorf("second invalidate: %d, %v", dropped, err)
	}
	// Unaligned invalidate surfaces as a remote error.
	if _, err := client.Invalidate(0, 0, 100, 512); err == nil {
		t.Error("unaligned invalidate accepted")
	}
}

func TestRotateOnVariantCIsNoop(t *testing.T) {
	client, _, _ := startServer(t)
	if err := client.RotateEpoch(); err != nil {
		t.Errorf("rotate on VariantC: %v", err)
	}
}

func TestUnknownOpClosesConnection(t *testing.T) {
	client, _, _ := startServer(t)
	// Hand-craft a frame with an unknown op: the server responds with an
	// error and closes the connection.
	var hdr [headerSize]byte
	h := header{op: 99, length: 0}
	h.encode(hdr[:])
	if _, err := client.conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(client.conn, status[:]); err != nil || status[0] != statusErr {
		t.Fatalf("status = %v, err = %v", status, err)
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(client.conn, lenBuf[:]); err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(client.conn, msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "unknown op") {
		t.Errorf("message = %q", msg)
	}
	// The server drops the connection after a protocol violation.
	client.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.conn.Read(status[:]); err == nil {
		t.Error("connection still open after protocol violation")
	}
}

func TestBadMagicClosesConnection(t *testing.T) {
	client, _, _ := startServer(t)
	junk := make([]byte, headerSize)
	junk[0] = 0x00
	if _, err := client.conn.Write(junk); err != nil {
		t.Fatal(err)
	}
	var status [1]byte
	client.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(client.conn, status[:]); err != nil || status[0] != statusErr {
		t.Fatalf("status = %v err = %v", status, err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestRemoteErrorString(t *testing.T) {
	e := &RemoteError{Msg: "boom"}
	if !strings.Contains(e.Error(), "boom") {
		t.Errorf("error = %q", e.Error())
	}
}
