package appliance

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// startServerWith is startServer with ServerOptions, returning the server
// and its address so tests can dial with their own DialOptions.
func startServerWith(t *testing.T, opts ServerOptions) (*Server, string) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 256 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(st, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
		st.Close()
	})
	return srv, l.Addr().String()
}

func TestClientReconnectsAfterBrokenConn(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{})
	c, err := DialWith(addr, DialOptions{MaxReconnects: 3, ReconnectBackoff: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	data := bytes.Repeat([]byte{0x7E}, 1024)
	if err := c.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}

	// Sever the wire out from under the client; the next op must redial
	// transparently instead of failing with ErrBrokenConn forever.
	c.mu.Lock()
	c.conn.Close()
	c.mu.Unlock()

	got := make([]byte, 1024)
	if err := c.ReadAt(0, 0, got, 0); err != nil {
		t.Fatalf("read after severed conn: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconnected read returned wrong data")
	}
	if c.Reconnects() != 1 {
		t.Fatalf("Reconnects = %d, want 1", c.Reconnects())
	}
}

func TestClientReconnectMidWorkload(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{})
	c, err := DialWith(addr, DialOptions{MaxReconnects: 5, ReconnectBackoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	buf := make([]byte, 512)
	for i := 0; i < 50; i++ {
		want := byte(i)
		for j := range buf {
			buf[j] = want
		}
		if err := c.WriteAt(0, 0, buf, uint64(i)*512); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%10 == 5 {
			c.mu.Lock()
			c.conn.Close() // chaos: drop the connection every 10 ops
			c.mu.Unlock()
		}
		got := make([]byte, 512)
		if err := c.ReadAt(0, 0, got, uint64(i)*512); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got[0] != want {
			t.Fatalf("op %d: got %#x want %#x", i, got[0], want)
		}
	}
	if c.Reconnects() == 0 {
		t.Fatal("no reconnects recorded despite dropped connections")
	}
}

func TestClientWithoutReconnectStaysBroken(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{})
	c, err := Dial(addr) // zero DialOptions: historical semantics
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.mu.Lock()
	c.fail(errors.New("test: severed"))
	c.mu.Unlock()
	if err := c.ReadAt(0, 0, make([]byte, 512), 0); !errors.Is(err, ErrBrokenConn) {
		t.Fatalf("err = %v, want ErrBrokenConn", err)
	}
}

func TestServerMaxConnsRejectsWithBusy(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{MaxConns: 1})

	c1, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	// Make sure c1's connection is actually registered server-side before
	// dialing the second client (accept is asynchronous).
	if err := c1.WriteAt(0, 0, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}

	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.ReadAt(0, 0, make([]byte, 512), 0); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("over-cap client err = %v, want ErrServerBusy", err)
	}
	if srv.BusyRejects() == 0 {
		t.Fatal("BusyRejects did not count the rejection")
	}

	// Freeing the slot lets a reconnecting client in.
	c1.Close()
	c3, err := DialWith(addr, DialOptions{MaxReconnects: 5, ReconnectBackoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err = c3.ReadAt(0, 0, make([]byte, 512), 0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerIdleTimeoutDropsDeadPeer(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{IdleTimeout: 50 * time.Millisecond})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteAt(0, 0, make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	// Go quiet past the idle limit: the server must drop the connection.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never dropped")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The client finds out on its next op and, without reconnects, breaks.
	if err := c.ReadAt(0, 0, make([]byte, 512), 0); err == nil {
		t.Fatal("op on an idle-dropped connection succeeded")
	}
}

func TestClientRoundTripTimeout(t *testing.T) {
	// A listener that accepts and then never responds models a hung
	// appliance; the per-roundtrip deadline must fail the op instead of
	// blocking forever.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never answer
		}
	}()

	c, err := DialWith(l.Addr().String(), DialOptions{Timeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	err = c.ReadAt(0, 0, make([]byte, 512), 0)
	if err == nil {
		t.Fatal("read against a hung server succeeded")
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("deadline did not bound the round trip (%v)", el)
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want a net timeout", err)
	}
}
