// Wire protocol v2: tagged pipelined frames, vector (scatter/gather)
// ops, and the version negotiation that keeps v1 peers working. See
// DESIGN.md §11.
//
//	request:  magic 'S' | op u8 | tag u32 | server u16 | volume u16 | offset u64 | length u32 | payload
//	response: magic 'R' | tag u32 | status u8 | body
//
// The response body keeps the v1 per-op shapes (read payload, stats
// u32-prefixed JSON, invalidate u32 count, error u16-prefixed message);
// the tag lets the server complete requests out of order and the client
// keep many in flight on one connection.
//
// OpReadV/OpWriteV carry an extent table in the payload:
//
//	count u16 | count × { server u16 | volume u16 | offset u64 | length u32 }
//
// followed (OpWriteV) by the extents' data, concatenated in table order.
// An OpReadV OK response body is the concatenated data alone — the
// client knows every length from its own table.
package appliance

import (
	"encoding/binary"
	"fmt"
	"sync"
)

const (
	respMagic = 0x52 // 'R' — v2 response frames lead with this

	// OpReadV and OpWriteV are protocol-v2 scatter/gather ops: N extents
	// in one frame, fanned out to the store's shards server-side.
	OpReadV  = 6
	OpWriteV = 7
	// OpHello negotiates the protocol version. It is framed as a v1
	// request whose offset field carries the client's maximum supported
	// version; the OK response body is one byte, the negotiated version.
	// A version ≥2 switches the connection to v2 framing for all
	// subsequent frames. v1-only servers answer "unknown op" and close —
	// the client redials and pins v1.
	OpHello = 8
	// OpFlush asks the appliance to write its dirty write-back blocks to
	// the ensemble (a no-op for write-through appliances). Valid in both
	// protocol versions; concurrent flushes group-commit server-side when
	// -group-commit-window is set.
	OpFlush = 9

	headerSizeV2 = 1 + 1 + 4 + 2 + 2 + 8 + 4 // magic op tag server volume offset length
	respHeadV2   = 1 + 4 + 1                 // magic tag status

	// Protocol versions for DialOptions.Protocol and
	// ServerOptions.MaxProtocol.
	ProtocolAuto = 0 // client: negotiate v2, fall back to v1; server: zero value = v2
	ProtocolV1   = 1
	ProtocolV2   = 2

	// MaxVecExtents bounds the extent count of one OpReadV/OpWriteV frame.
	MaxVecExtents = 1024
	extentSize    = 2 + 2 + 8 + 4

	// maxStatsBytes bounds the OpStats response payload a client will
	// accept: the u32 length prefix arrives from an untrusted peer, and a
	// corrupt or malicious one must not be able to force a ~4 GiB
	// allocation. Real core.Stats JSON is well under 4 KiB.
	maxStatsBytes = 4 << 20

	// defaultMaxPipeline is how many pipelined requests one v2 connection
	// may have in flight server-side before the reader stops pulling new
	// frames (ServerOptions.MaxPipeline = 0).
	defaultMaxPipeline = 32

	// payloadKeep is the largest request-payload buffer a v1 connection
	// keeps resident between requests; anything larger is borrowed from
	// the shared payloadPool per request and released right after the
	// response — so one 16 MiB request no longer pins 16 MiB per
	// connection for its lifetime.
	payloadKeep = 64 << 10
)

// headerV2 is the fixed-size request prefix of a v2 frame: the v1 header
// with a u32 tag after the op byte.
type headerV2 struct {
	op     byte
	tag    uint32
	server uint16
	volume uint16
	offset uint64
	length uint32
}

func (h *headerV2) encode(buf []byte) {
	buf[0] = magic
	buf[1] = h.op
	binary.BigEndian.PutUint32(buf[2:], h.tag)
	binary.BigEndian.PutUint16(buf[6:], h.server)
	binary.BigEndian.PutUint16(buf[8:], h.volume)
	binary.BigEndian.PutUint64(buf[10:], h.offset)
	binary.BigEndian.PutUint32(buf[18:], h.length)
}

func decodeHeaderV2(buf []byte) (headerV2, error) {
	if buf[0] != magic {
		return headerV2{}, fmt.Errorf("%w: bad magic 0x%02x", ErrProtocol, buf[0])
	}
	h := headerV2{
		op:     buf[1],
		tag:    binary.BigEndian.Uint32(buf[2:]),
		server: binary.BigEndian.Uint16(buf[6:]),
		volume: binary.BigEndian.Uint16(buf[8:]),
		offset: binary.BigEndian.Uint64(buf[10:]),
		length: binary.BigEndian.Uint32(buf[18:]),
	}
	if h.length > MaxIOBytes {
		return headerV2{}, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, h.length)
	}
	return h, nil
}

// respHead stamps a v2 response prefix into buf.
func respHead(buf []byte, tag uint32, status byte) {
	buf[0] = respMagic
	binary.BigEndian.PutUint32(buf[1:5], tag)
	buf[5] = status
}

// Extent is one extent of a Client.ReadBatch/WriteBatch: len(Data) bytes
// of volume (Server, Volume) at byte offset Off. ReadBatch fills Data;
// WriteBatch sends it.
type Extent struct {
	Server, Volume int
	Off            uint64
	Data           []byte
}

// wireExtent is the decoded form of one extent-table entry.
type wireExtent struct {
	server, volume uint16
	off            uint64
	length         uint32
}

// appendExtentTable appends the wire encoding of exts' table (count +
// entries, no data) to buf. Callers validate exts first.
func appendExtentTable(buf []byte, exts []Extent) []byte {
	var b [extentSize]byte
	binary.BigEndian.PutUint16(b[:2], uint16(len(exts)))
	buf = append(buf, b[:2]...)
	for _, e := range exts {
		binary.BigEndian.PutUint16(b[0:], uint16(e.Server))
		binary.BigEndian.PutUint16(b[2:], uint16(e.Volume))
		binary.BigEndian.PutUint64(b[4:], e.Off)
		binary.BigEndian.PutUint32(b[12:], uint32(len(e.Data)))
		buf = append(buf, b[:]...)
	}
	return buf
}

// decodeExtentTable parses and structurally validates the extent table at
// the head of an OpReadV/OpWriteV payload, returning the entries, the
// remaining bytes (OpWriteV data; must be empty for OpReadV), and the
// total data length. Per-extent and total lengths are bounded by
// MaxIOBytes; id-range checks against block.MaxServers/MaxVolumes are the
// server's (it answers an error frame, like v1 does for scalar ops).
func decodeExtentTable(p []byte) (tab []wireExtent, rest []byte, total int, err error) {
	if len(p) < 2 {
		return nil, nil, 0, fmt.Errorf("%w: vector frame too short", ErrProtocol)
	}
	count := int(binary.BigEndian.Uint16(p))
	if count == 0 || count > MaxVecExtents {
		return nil, nil, 0, fmt.Errorf("%w: vector count %d out of range [1, %d]", ErrProtocol, count, MaxVecExtents)
	}
	need := 2 + count*extentSize
	if len(p) < need {
		return nil, nil, 0, fmt.Errorf("%w: vector table truncated", ErrProtocol)
	}
	tab = make([]wireExtent, count)
	for i := range tab {
		o := 2 + i*extentSize
		e := wireExtent{
			server: binary.BigEndian.Uint16(p[o:]),
			volume: binary.BigEndian.Uint16(p[o+2:]),
			off:    binary.BigEndian.Uint64(p[o+4:]),
			length: binary.BigEndian.Uint32(p[o+12:]),
		}
		if e.length == 0 || e.length > MaxIOBytes {
			return nil, nil, 0, fmt.Errorf("%w: vector extent length %d out of range", ErrProtocol, e.length)
		}
		total += int(e.length)
		if total > MaxIOBytes {
			return nil, nil, 0, fmt.Errorf("%w: vector total exceeds %d bytes", ErrProtocol, MaxIOBytes)
		}
		tab[i] = e
	}
	return tab, p[need:], total, nil
}

// payloadPool recycles large request/response payload buffers across
// connections and pipelined request handlers.
var payloadPool sync.Pool

// poolGet returns a length-n buffer backed by the payload pool.
func poolGet(n int) []byte {
	if v := payloadPool.Get(); v != nil {
		b := *v.(*[]byte)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

// poolPut recycles a buffer obtained from poolGet.
func poolPut(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	payloadPool.Put(&b)
}

// connPayload manages a v1 connection's request-payload buffer: a small
// buffer stays resident across requests (the common case) while
// oversized ones go through the shared pool per request.
type connPayload struct{ small []byte }

func (cp *connPayload) get(n int) []byte {
	if n <= payloadKeep {
		if cap(cp.small) < n {
			cp.small = make([]byte, payloadKeep)
		}
		return cp.small[:n]
	}
	return poolGet(n)
}

func (cp *connPayload) put(b []byte) {
	if cap(b) > payloadKeep {
		poolPut(b)
	}
}
