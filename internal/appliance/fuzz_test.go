package appliance

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/store"
)

// FuzzFrameRoundTrip checks the header codec: any field combination must
// encode to a frame that decodes back to exactly the same header, with
// the single exception of lengths over MaxIOBytes, which decode must
// reject (never truncate or wrap).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(OpRead), uint16(0), uint16(0), uint64(0), uint32(512))
	f.Add(byte(OpWrite), uint16(3), uint16(1), uint64(1<<40), uint32(4096))
	f.Add(byte(OpStats), uint16(0), uint16(0), uint64(0), uint32(0))
	f.Add(byte(0xFF), uint16(65535), uint16(65535), uint64(1<<63), uint32(MaxIOBytes))
	f.Add(byte(OpRead), uint16(0), uint16(0), uint64(0), uint32(MaxIOBytes+1))
	f.Fuzz(func(t *testing.T, op byte, server, volume uint16, offset uint64, length uint32) {
		h := header{op: op, server: server, volume: volume, offset: offset, length: length}
		var buf [headerSize]byte
		h.encode(buf[:])
		if buf[0] != magic {
			t.Fatalf("encode did not stamp magic: % x", buf)
		}
		got, err := decodeHeader(buf[:])
		if length > MaxIOBytes {
			if err == nil {
				t.Fatalf("oversize length %d decoded: %+v", length, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if got != h {
			t.Fatalf("round trip changed header: %+v -> %+v", h, got)
		}
		// Corrupting the magic must fail decode, not misparse.
		buf[0] ^= 0x01
		if _, err := decodeHeader(buf[:]); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
}

// fuzzExpect is what the differential oracle predicts for one request
// parsed out of the fuzz input.
type fuzzExpect struct {
	op      byte
	length  uint32 // read payload size on statusOK
	mustErr bool   // server/volume out of range: frame must be statusErr
	closes  bool   // connection terminates after this frame
	noFrame bool   // connection closes with no frame (truncated request)
}

// simulateRequests mirrors serveConn's framing rules over the raw input
// and returns the exact response-frame sequence the server must produce.
// When a HELLO negotiates v2 mid-stream, the remaining bytes are returned
// as v2Rest with switched=true: from there the v2 oracle takes over.
func simulateRequests(data []byte) (out []fuzzExpect, v2Rest []byte, switched bool) {
	pos := 0
	for {
		if len(data)-pos < headerSize {
			return out, nil, false // EOF mid-header: clean close, no frame
		}
		hdr := data[pos : pos+headerSize]
		pos += headerSize
		op := hdr[1]
		length := binary.BigEndian.Uint32(hdr[14:])
		if hdr[0] != magic || length > MaxIOBytes {
			return append(out, fuzzExpect{op: op, mustErr: true, closes: true}), nil, false
		}
		server := binary.BigEndian.Uint16(hdr[2:])
		volume := binary.BigEndian.Uint16(hdr[4:])
		if int(server) >= block.MaxServers || int(volume) >= block.MaxVolumes {
			if op == OpWrite {
				if len(data)-pos < int(length) {
					return append(out, fuzzExpect{noFrame: true}), nil, false
				}
				pos += int(length)
			}
			out = append(out, fuzzExpect{op: op, mustErr: true})
			continue
		}
		switch op {
		case OpRead, OpStats, OpRotate, OpInvalidate, OpFlush:
			out = append(out, fuzzExpect{op: op, length: length})
		case OpWrite:
			if len(data)-pos < int(length) {
				return append(out, fuzzExpect{noFrame: true}), nil, false
			}
			pos += int(length)
			out = append(out, fuzzExpect{op: op})
		case OpHello:
			// OK + one version byte; offset ≥2 switches the stream to v2.
			out = append(out, fuzzExpect{op: op})
			if binary.BigEndian.Uint64(hdr[6:]) >= ProtocolV2 {
				return out, data[pos:], true
			}
		default:
			return append(out, fuzzExpect{op: op, mustErr: true, closes: true}), nil, false
		}
	}
}

// readResponseFrame consumes one response frame and validates its shape:
// statusOK payloads sized by the request's op, statusErr frames carrying
// a length-prefixed valid-UTF-8 message.
func readResponseFrame(t *testing.T, br *bufio.Reader, exp fuzzExpect) {
	t.Helper()
	status, err := br.ReadByte()
	if err != nil {
		t.Fatalf("expected a frame for op %d, got %v", exp.op, err)
	}
	switch status {
	case statusOK:
		if exp.mustErr {
			t.Fatalf("op %d with out-of-range ids answered OK", exp.op)
		}
		var n int64
		switch exp.op {
		case OpRead:
			n = int64(exp.length)
		case OpStats:
			var lenBuf [4]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				t.Fatalf("stats length prefix: %v", err)
			}
			body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(br, body); err != nil {
				t.Fatalf("stats body: %v", err)
			}
			if !json.Valid(body) {
				t.Fatalf("stats body is not JSON: %q", body)
			}
			return
		case OpInvalidate:
			n = 4
		case OpHello:
			n = 1
		case OpWrite, OpRotate, OpFlush:
			n = 0
		}
		if _, err := io.CopyN(io.Discard, br, n); err != nil {
			t.Fatalf("op %d OK payload (%d bytes): %v", exp.op, n, err)
		}
	case statusErr:
		var lenBuf [2]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			t.Fatalf("error frame length: %v", err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(br, msg); err != nil {
			t.Fatalf("error frame message: %v", err)
		}
		if !utf8.Valid(msg) {
			t.Fatalf("error message is not UTF-8: %q", msg)
		}
	default:
		t.Fatalf("op %d: invalid status byte %d", exp.op, status)
	}
}

// FuzzServerInput throws arbitrary bytes at a live appliance server over
// TCP. The server must never panic, must answer every malformed frame
// with a clean error frame, and must keep its response stream exactly
// frame-aligned with the differential oracle above — byte-for-byte the
// rules serveConn implements.
func FuzzServerInput(f *testing.F) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	st, err := core.Open(be, core.Options{CacheBytes: 64 * block.Size, Variant: core.VariantC})
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	f.Cleanup(func() {
		srv.Close()
		<-done
		st.Close()
	})
	addr := l.Addr().String()

	frame := func(op byte, server, volume uint16, offset uint64, length uint32, payload []byte) []byte {
		h := header{op: op, server: server, volume: volume, offset: offset, length: length}
		buf := make([]byte, headerSize, headerSize+len(payload))
		h.encode(buf)
		return append(buf, payload...)
	}
	f.Add(frame(OpRead, 0, 0, 0, 512, nil))
	f.Add(frame(OpWrite, 0, 0, 0, 512, make([]byte, 512)))
	f.Add(frame(OpStats, 0, 0, 0, 0, nil))
	f.Add(frame(OpRotate, 0, 0, 0, 0, nil))
	f.Add(frame(OpInvalidate, 0, 0, 0, 1024, nil))
	f.Add(frame(OpRead, 9999, 0, 0, 512, nil))                    // server id out of range
	f.Add(frame(OpRead, 0, 0, 1<<40, 512, nil))                   // offset beyond the volume
	f.Add(frame(0x7F, 0, 0, 0, 0, nil))                           // unknown op
	f.Add([]byte{0x00, OpRead})                                   // bad magic
	f.Add(frame(OpRead, 0, 0, 0, MaxIOBytes+1, nil)[:headerSize]) // oversize length
	f.Add(frame(OpWrite, 0, 0, 0, 4096, nil))                     // write header, missing payload
	f.Add([]byte{magic})                                          // truncated header
	f.Add([]byte{})
	f.Add(append(frame(OpRead, 0, 0, 0, 512, nil), frame(OpStats, 0, 0, 0, 0, nil)...))
	f.Add(frame(OpFlush, 0, 0, 0, 0, nil))
	f.Add(frame(OpHello, 0, 0, 1, 0, nil)) // HELLO capped at v1: stream stays v1
	f.Add(frame(OpHello, 9999, 0, 2, 0, nil))

	frame2 := func(op byte, tag uint32, server, volume uint16, offset uint64, length uint32, payload []byte) []byte {
		h := headerV2{op: op, tag: tag, server: server, volume: volume, offset: offset, length: length}
		buf := make([]byte, headerSizeV2, headerSizeV2+len(payload))
		h.encode(buf)
		return append(buf, payload...)
	}
	hello2 := frame(OpHello, 0, 0, ProtocolV2, 0, nil)
	vec := func(exts ...Extent) []byte { return appendExtentTable(nil, exts) }
	v2seed := func(frames ...[]byte) []byte {
		out := append([]byte(nil), hello2...)
		for _, fr := range frames {
			out = append(out, fr...)
		}
		return out
	}
	f.Add(v2seed(frame2(OpRead, 1, 0, 0, 0, 512, nil), frame2(OpWrite, 2, 0, 0, 0, 512, make([]byte, 512))))
	f.Add(v2seed(frame2(OpStats, 7, 0, 0, 0, 0, nil), frame2(OpFlush, 8, 0, 0, 0, 0, nil)))
	f.Add(v2seed(frame2(OpRead, 3, 9999, 0, 0, 512, nil)))                                    // v2 id-range error, conn kept
	f.Add(v2seed(frame2(OpHello, 4, 0, 0, 2, 0, nil)))                                        // redundant HELLO: closer
	f.Add(v2seed(frame2(0x6E, 5, 0, 0, 0, 0, nil)))                                           // v2 unknown op: closer
	f.Add(v2seed(frame2(OpRead, 6, 0, 0, 0, 512, nil)[:headerSizeV2-3]))                      // truncated v2 header
	f.Add(v2seed(frame2(OpWrite, 9, 0, 0, 0, 4096, nil)))                                     // v2 write, missing payload
	f.Add(v2seed(frame2(OpRead, 1, 0, 0, 0, 512, nil), frame2(OpRead, 1, 0, 0, 0, 512, nil))) // duplicate tag
	tab := vec(Extent{Server: 0, Volume: 0, Off: 0, Data: make([]byte, 512)},
		Extent{Server: 0, Volume: 0, Off: 4096, Data: make([]byte, 1024)})
	f.Add(v2seed(frame2(OpReadV, 11, 0, 0, 0, uint32(len(tab)), tab)))
	f.Add(v2seed(frame2(OpWriteV, 12, 0, 0, 0, uint32(len(tab)+1536), append(tab, make([]byte, 1536)...))))
	f.Add(v2seed(frame2(OpWriteV, 13, 0, 0, 0, uint32(len(tab)), tab))) // table says 1536 bytes, none follow
	badVec := vec(Extent{Server: 9999, Volume: 0, Off: 0, Data: make([]byte, 512)})
	f.Add(v2seed(frame2(OpReadV, 14, 0, 0, 0, uint32(len(badVec)), badVec))) // extent ids out of range
	f.Add(v2seed([]byte{0x00, 0x01}))                                        // v2 bad magic: closer

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed (server shutting down)")
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		// Write concurrently with reading: a request stream whose responses
		// overflow the TCP buffers would otherwise deadlock the single
		// thread (server blocked writing, client blocked writing). Write
		// errors are legal — the server hangs up after a terminating frame.
		writeDone := make(chan struct{})
		go func() {
			defer close(writeDone)
			conn.Write(data)
			// Half-close so the server sees EOF after the final request.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		// Close before joining the writer: once the oracle stops reading,
		// a blocked server response would wedge the writer until the
		// deadline; the close unblocks both sides immediately.
		defer func() { conn.Close(); <-writeDone }()
		br := bufio.NewReader(conn)
		exps, v2Rest, switched := simulateRequests(data)
		terminated := false
		for _, exp := range exps {
			if exp.noFrame {
				terminated = true
				break
			}
			readResponseFrame(t, br, exp)
			if exp.closes {
				terminated = true
				break
			}
		}
		if switched && !terminated {
			verifyV2Responses(t, br, v2Rest)
			return
		}
		// Whatever remains must be connection close, not stray bytes.
		if b, err := br.ReadByte(); err == nil {
			t.Fatalf("unexpected trailing response byte 0x%02x", b)
		}
	})
}
