package appliance

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/store"
)

// FuzzFrameRoundTrip checks the header codec: any field combination must
// encode to a frame that decodes back to exactly the same header, with
// the single exception of lengths over MaxIOBytes, which decode must
// reject (never truncate or wrap).
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add(byte(OpRead), uint16(0), uint16(0), uint64(0), uint32(512))
	f.Add(byte(OpWrite), uint16(3), uint16(1), uint64(1<<40), uint32(4096))
	f.Add(byte(OpStats), uint16(0), uint16(0), uint64(0), uint32(0))
	f.Add(byte(0xFF), uint16(65535), uint16(65535), uint64(1<<63), uint32(MaxIOBytes))
	f.Add(byte(OpRead), uint16(0), uint16(0), uint64(0), uint32(MaxIOBytes+1))
	f.Fuzz(func(t *testing.T, op byte, server, volume uint16, offset uint64, length uint32) {
		h := header{op: op, server: server, volume: volume, offset: offset, length: length}
		var buf [headerSize]byte
		h.encode(buf[:])
		if buf[0] != magic {
			t.Fatalf("encode did not stamp magic: % x", buf)
		}
		got, err := decodeHeader(buf[:])
		if length > MaxIOBytes {
			if err == nil {
				t.Fatalf("oversize length %d decoded: %+v", length, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if got != h {
			t.Fatalf("round trip changed header: %+v -> %+v", h, got)
		}
		// Corrupting the magic must fail decode, not misparse.
		buf[0] ^= 0x01
		if _, err := decodeHeader(buf[:]); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
}

// fuzzExpect is what the differential oracle predicts for one request
// parsed out of the fuzz input.
type fuzzExpect struct {
	op      byte
	length  uint32 // read payload size on statusOK
	mustErr bool   // server/volume out of range: frame must be statusErr
	closes  bool   // connection terminates after this frame
	noFrame bool   // connection closes with no frame (truncated request)
}

// simulateRequests mirrors serveConn's framing rules over the raw input
// and returns the exact response-frame sequence the server must produce.
func simulateRequests(data []byte) []fuzzExpect {
	var out []fuzzExpect
	pos := 0
	for {
		if len(data)-pos < headerSize {
			return out // EOF mid-header: clean close, no frame
		}
		hdr := data[pos : pos+headerSize]
		pos += headerSize
		op := hdr[1]
		length := binary.BigEndian.Uint32(hdr[14:])
		if hdr[0] != magic || length > MaxIOBytes {
			return append(out, fuzzExpect{op: op, mustErr: true, closes: true})
		}
		server := binary.BigEndian.Uint16(hdr[2:])
		volume := binary.BigEndian.Uint16(hdr[4:])
		if int(server) >= block.MaxServers || int(volume) >= block.MaxVolumes {
			if op == OpWrite {
				if len(data)-pos < int(length) {
					return append(out, fuzzExpect{noFrame: true})
				}
				pos += int(length)
			}
			out = append(out, fuzzExpect{op: op, mustErr: true})
			continue
		}
		switch op {
		case OpRead, OpStats, OpRotate, OpInvalidate:
			out = append(out, fuzzExpect{op: op, length: length})
		case OpWrite:
			if len(data)-pos < int(length) {
				return append(out, fuzzExpect{noFrame: true})
			}
			pos += int(length)
			out = append(out, fuzzExpect{op: op})
		default:
			return append(out, fuzzExpect{op: op, mustErr: true, closes: true})
		}
	}
}

// readResponseFrame consumes one response frame and validates its shape:
// statusOK payloads sized by the request's op, statusErr frames carrying
// a length-prefixed valid-UTF-8 message.
func readResponseFrame(t *testing.T, br *bufio.Reader, exp fuzzExpect) {
	t.Helper()
	status, err := br.ReadByte()
	if err != nil {
		t.Fatalf("expected a frame for op %d, got %v", exp.op, err)
	}
	switch status {
	case statusOK:
		if exp.mustErr {
			t.Fatalf("op %d with out-of-range ids answered OK", exp.op)
		}
		var n int64
		switch exp.op {
		case OpRead:
			n = int64(exp.length)
		case OpStats:
			var lenBuf [4]byte
			if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
				t.Fatalf("stats length prefix: %v", err)
			}
			body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
			if _, err := io.ReadFull(br, body); err != nil {
				t.Fatalf("stats body: %v", err)
			}
			if !json.Valid(body) {
				t.Fatalf("stats body is not JSON: %q", body)
			}
			return
		case OpInvalidate:
			n = 4
		case OpWrite, OpRotate:
			n = 0
		}
		if _, err := io.CopyN(io.Discard, br, n); err != nil {
			t.Fatalf("op %d OK payload (%d bytes): %v", exp.op, n, err)
		}
	case statusErr:
		var lenBuf [2]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			t.Fatalf("error frame length: %v", err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(br, msg); err != nil {
			t.Fatalf("error frame message: %v", err)
		}
		if !utf8.Valid(msg) {
			t.Fatalf("error message is not UTF-8: %q", msg)
		}
	default:
		t.Fatalf("op %d: invalid status byte %d", exp.op, status)
	}
}

// FuzzServerInput throws arbitrary bytes at a live appliance server over
// TCP. The server must never panic, must answer every malformed frame
// with a clean error frame, and must keep its response stream exactly
// frame-aligned with the differential oracle above — byte-for-byte the
// rules serveConn implements.
func FuzzServerInput(f *testing.F) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	st, err := core.Open(be, core.Options{CacheBytes: 64 * block.Size, Variant: core.VariantC})
	if err != nil {
		f.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	f.Cleanup(func() {
		srv.Close()
		<-done
		st.Close()
	})
	addr := l.Addr().String()

	frame := func(op byte, server, volume uint16, offset uint64, length uint32, payload []byte) []byte {
		h := header{op: op, server: server, volume: volume, offset: offset, length: length}
		buf := make([]byte, headerSize, headerSize+len(payload))
		h.encode(buf)
		return append(buf, payload...)
	}
	f.Add(frame(OpRead, 0, 0, 0, 512, nil))
	f.Add(frame(OpWrite, 0, 0, 0, 512, make([]byte, 512)))
	f.Add(frame(OpStats, 0, 0, 0, 0, nil))
	f.Add(frame(OpRotate, 0, 0, 0, 0, nil))
	f.Add(frame(OpInvalidate, 0, 0, 0, 1024, nil))
	f.Add(frame(OpRead, 9999, 0, 0, 512, nil))                    // server id out of range
	f.Add(frame(OpRead, 0, 0, 1<<40, 512, nil))                   // offset beyond the volume
	f.Add(frame(0x7F, 0, 0, 0, 0, nil))                           // unknown op
	f.Add([]byte{0x00, OpRead})                                   // bad magic
	f.Add(frame(OpRead, 0, 0, 0, MaxIOBytes+1, nil)[:headerSize]) // oversize length
	f.Add(frame(OpWrite, 0, 0, 0, 4096, nil))                     // write header, missing payload
	f.Add([]byte{magic})                                          // truncated header
	f.Add([]byte{})
	f.Add(append(frame(OpRead, 0, 0, 0, 512, nil), frame(OpStats, 0, 0, 0, 0, nil)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed (server shutting down)")
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		// Write concurrently with reading: a request stream whose responses
		// overflow the TCP buffers would otherwise deadlock the single
		// thread (server blocked writing, client blocked writing). Write
		// errors are legal — the server hangs up after a terminating frame.
		writeDone := make(chan struct{})
		go func() {
			defer close(writeDone)
			conn.Write(data)
			// Half-close so the server sees EOF after the final request.
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}()
		// Close before joining the writer: once the oracle stops reading,
		// a blocked server response would wedge the writer until the
		// deadline; the close unblocks both sides immediately.
		defer func() { conn.Close(); <-writeDone }()
		br := bufio.NewReader(conn)
		for _, exp := range simulateRequests(data) {
			if exp.noFrame {
				break
			}
			readResponseFrame(t, br, exp)
			if exp.closes {
				break
			}
		}
		// Whatever remains must be connection close, not stray bytes.
		if b, err := br.ReadByte(); err == nil {
			t.Fatalf("unexpected trailing response byte 0x%02x", b)
		}
	})
}
