// Client-side protocol v2: lazy version negotiation, the tagged request
// pipeline (per-tag completion map + one reader goroutine per
// connection), and the ReadBatch/WriteBatch scatter/gather API.
package appliance

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"
)

// pendingOp is one in-flight v2 request's completion slot. The sender
// registers it under the tag, the reader goroutine fills the result and
// closes done. transport marks failures that broke the connection (the
// retry envelope replays those); server error frames are not transport
// failures.
type pendingOp struct {
	op   byte
	read []byte   // OpRead: destination buffer, filled by the reader
	vec  []Extent // OpReadV: destination extents, filled in table order

	stats []byte // OpStats: raw JSON payload
	inval uint32 // OpInvalidate: dropped count

	gen       int
	err       error
	transport bool
	done      chan struct{}
}

func (p *pendingOp) reset() {
	p.err = nil
	p.transport = false
	p.done = make(chan struct{})
}

// protoFor returns the protocol version ops should use, running the
// lazy first-op negotiation if it hasn't happened yet.
func (c *Client) protoFor() (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if c.proto == 0 {
		if err := c.negotiateLocked(); err != nil {
			return 0, err
		}
	}
	return c.proto, nil
}

// negotiateLocked runs the first-op HELLO under c.mu. In auto mode a
// server that answers with an error frame (a v1 server's "unknown op",
// after which it closes the connection) gets one transparent redial and
// pins v1; transport errors break the client like any v1 op's would.
func (c *Client) negotiateLocked() error {
	if c.broken != nil {
		// Same envelope as exchange(): a broken connection (a busy reject,
		// or a transport failure before the first op) redials when the
		// retry budget allows, then negotiates on the fresh connection.
		if c.opts.MaxReconnects <= 0 {
			return fmt.Errorf("%w: %w", ErrBrokenConn, c.broken)
		}
		if rerr := c.reconnectLocked(); rerr != nil {
			return fmt.Errorf("%w: %w", ErrBrokenConn, rerr)
		}
	}
	ver, err := c.helloExchangeLocked()
	switch {
	case err == nil && ver >= ProtocolV2:
		c.proto = ProtocolV2
		c.startReaderLocked()
		return nil
	case err == nil:
		// The server answered the HELLO but capped the version at v1.
		if c.opts.Protocol == ProtocolV2 {
			return fmt.Errorf("%w: server speaks only protocol v%d", ErrProtocol, ver)
		}
		c.proto = ProtocolV1
		return nil
	default:
		var remote *RemoteError
		if !errors.As(err, &remote) {
			return err // transport error (already marked broken) or busy
		}
		// A v1 server: it reported "unknown op" and closed the connection.
		if c.opts.Protocol == ProtocolV2 {
			return fmt.Errorf("%w: server rejected v2 HELLO: %w", ErrProtocol, err)
		}
		if derr := c.redialOnceLocked(); derr != nil {
			return derr
		}
		c.proto = ProtocolV1
		return nil
	}
}

// helloExchangeLocked performs one v1-framed HELLO round trip on the
// current connection, returning the negotiated version. Transport errors
// mark the connection broken.
func (c *Client) helloExchangeLocked() (int, error) {
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	h := header{op: OpHello, offset: ProtocolV2}
	h.encode(c.hdr[:])
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return 0, c.fail(err)
	}
	if err := c.bw.Flush(); err != nil {
		return 0, c.fail(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(c.br, status[:]); err != nil {
		return 0, c.fail(err)
	}
	switch status[0] {
	case statusOK:
		var ver [1]byte
		if _, err := io.ReadFull(c.br, ver[:]); err != nil {
			return 0, c.fail(err)
		}
		return int(ver[0]), nil
	case statusErr:
		var lenBuf [2]byte
		if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
			return 0, c.fail(err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(c.br, msg); err != nil {
			return 0, c.fail(err)
		}
		if string(msg) == ErrServerBusy.Error() {
			return 0, c.fail(ErrServerBusy)
		}
		// The peer is about to close this connection (v1 servers treat
		// HELLO as an unknown op and hang up): mark it unusable so the
		// auto-mode redial below is the only way forward.
		c.broken = &RemoteError{Msg: string(msg)}
		c.conn.Close()
		return 0, c.broken
	default:
		return 0, c.fail(fmt.Errorf("%w: bad status 0x%02x", ErrProtocol, status[0]))
	}
}

// helloV2Locked renegotiates v2 on a freshly redialed connection
// (reconnectLocked); anything short of a v2 answer is an error.
func (c *Client) helloV2Locked() error {
	ver, err := c.helloExchangeLocked()
	if err != nil {
		return err
	}
	if ver < ProtocolV2 {
		return fmt.Errorf("%w: server no longer speaks protocol v2 (got v%d)", ErrProtocol, ver)
	}
	return nil
}

// redialOnceLocked replaces the connection with a single fresh dial —
// the v1-fallback path after a server hung up on our HELLO. It is
// independent of the MaxReconnects budget (the server is healthy; the
// hang-up is how v1 servers say "no") and doesn't count as a reconnect.
func (c *Client) redialOnceLocked() error {
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("%w: v1 fallback redial: %w", ErrBrokenConn, err)
	}
	c.conn = conn
	c.br = bufio.NewReaderSize(conn, connBufSize)
	c.bw = bufio.NewWriterSize(conn, connBufSize)
	c.broken = nil
	c.gen++
	return nil
}

// startReaderLocked launches the response reader for the current
// connection generation.
func (c *Client) startReaderLocked() {
	if c.pending == nil {
		c.pending = make(map[uint32]*pendingOp)
	}
	// The HELLO exchange armed a deadline that would otherwise linger:
	// with no op in flight yet on this generation (we hold c.mu, nothing
	// has been sent), an idle reader must not time out waiting for the
	// first response. send2 re-arms the deadline per request.
	if c.opts.Timeout > 0 {
		c.conn.SetDeadline(time.Time{})
	}
	go c.readLoop(c.conn, c.br, c.gen)
}

// failConn marks the given connection generation broken (if it is still
// current) and aborts its pending ops with a transport failure.
func (c *Client) failConn(gen int, err error) {
	c.mu.Lock()
	if gen == c.gen && c.broken == nil {
		c.broken = err
		c.conn.Close()
	}
	c.mu.Unlock()
	c.abortPending(gen, err)
}

// abortPending completes every pending op of the given generation with a
// transport failure.
func (c *Client) abortPending(gen int, err error) {
	c.pendMu.Lock()
	for tag, p := range c.pending {
		if p.gen != gen {
			continue
		}
		delete(c.pending, tag)
		p.err = err
		p.transport = true
		close(p.done)
	}
	c.pendMu.Unlock()
}

// readLoop is the single response reader of one v2 connection: it
// demultiplexes tagged response frames into their pending slots, reading
// payloads directly into the caller's buffers (no intermediate copy).
// Any framing anomaly — unknown tag, bad magic, short read — leaves the
// stream position unknown, so it breaks the connection.
func (c *Client) readLoop(conn net.Conn, br *bufio.Reader, gen int) {
	for {
		var head [respHeadV2]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			c.failConn(gen, err)
			return
		}
		if head[0] != respMagic {
			c.failConn(gen, fmt.Errorf("%w: bad response magic 0x%02x", ErrProtocol, head[0]))
			return
		}
		tag := binary.BigEndian.Uint32(head[1:5])
		status := head[5]
		c.pendMu.Lock()
		p := c.pending[tag]
		if p != nil && p.gen == gen {
			delete(c.pending, tag)
		} else {
			p = nil
		}
		c.pendMu.Unlock()
		if p == nil {
			c.failConn(gen, fmt.Errorf("%w: response for unknown tag %d", ErrProtocol, tag))
			return
		}
		var rerr error
		switch status {
		case statusOK:
			rerr = c.readBody(br, p)
		case statusErr:
			var lenBuf [2]byte
			if _, rerr = io.ReadFull(br, lenBuf[:]); rerr == nil {
				msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
				if _, rerr = io.ReadFull(br, msg); rerr == nil {
					if string(msg) == ErrServerBusy.Error() {
						p.err = ErrServerBusy
					} else {
						p.err = &RemoteError{Msg: string(msg)}
					}
				}
			}
		default:
			rerr = fmt.Errorf("%w: bad status 0x%02x", ErrProtocol, status)
		}
		if rerr != nil {
			// The frame body couldn't be read: complete this op as a
			// transport failure too, then break the rest.
			p.err = rerr
			p.transport = true
			close(p.done)
			c.failConn(gen, rerr)
			return
		}
		// When the pipeline drains, clear the read deadline armed by the
		// send path so the idle reader doesn't time out between bursts.
		// The clear must happen INSIDE the pendMu critical section that
		// observes the empty map: send2 registers under pendMu before
		// arming its deadline, so clearing outside the lock could wipe a
		// deadline a concurrent sender just armed and leave that op
		// waiting forever on a hung server.
		if c.opts.Timeout > 0 {
			c.pendMu.Lock()
			if len(c.pending) == 0 {
				conn.SetReadDeadline(time.Time{})
			}
			c.pendMu.Unlock()
		}
		close(p.done)
	}
}

// readBody reads a statusOK response body into the pending op.
func (c *Client) readBody(br *bufio.Reader, p *pendingOp) error {
	switch p.op {
	case OpRead:
		_, err := io.ReadFull(br, p.read)
		return err
	case OpReadV:
		for _, e := range p.vec {
			if _, err := io.ReadFull(br, e.Data); err != nil {
				return err
			}
		}
		return nil
	case OpStats:
		var lenBuf [4]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return err
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxStatsBytes {
			return fmt.Errorf("%w: %d-byte stats payload exceeds limit", ErrProtocol, n)
		}
		p.stats = make([]byte, n)
		_, err := io.ReadFull(br, p.stats)
		return err
	case OpInvalidate:
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return err
		}
		p.inval = binary.BigEndian.Uint32(b[:])
		return nil
	default: // OpWrite, OpWriteV, OpRotate, OpFlush: empty body
		return nil
	}
}

// send2 assigns a tag, registers p, and writes one v2 frame (header plus
// payload segments, coalesced in the write buffer). A write failure
// breaks the connection and aborts the pipeline — including p, whose
// done channel is then already closed. Entry errors (closed client,
// broken connection without retry budget, exhausted reconnects) are
// returned without registering p.
func (c *Client) send2(h headerV2, segs [][]byte, p *pendingOp) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return net.ErrClosed
	}
	if c.broken != nil {
		if c.opts.MaxReconnects <= 0 {
			return fmt.Errorf("%w: %w", ErrBrokenConn, c.broken)
		}
		if rerr := c.reconnectLocked(); rerr != nil {
			return fmt.Errorf("%w: %w", ErrBrokenConn, rerr)
		}
	}
	h.tag = c.nextTag
	c.nextTag++
	p.gen = c.gen
	c.pendMu.Lock()
	c.pending[h.tag] = p
	c.pendMu.Unlock()
	if c.opts.Timeout > 0 {
		// Covers this request's write and — because the reader clears it
		// only when the pipeline drains — the whole in-flight window.
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
	}
	var hdr [headerSizeV2]byte
	h.encode(hdr[:])
	_, err := c.bw.Write(hdr[:])
	for _, seg := range segs {
		if err != nil {
			break
		}
		if len(seg) > 0 {
			_, err = c.bw.Write(seg)
		}
	}
	if err == nil {
		err = c.bw.Flush()
	}
	if err != nil {
		// Mark broken under mu, then abort the generation's pipeline
		// (pendMu only). p is among the aborted: the caller's wait returns
		// immediately with the transport failure.
		gen := c.gen
		if c.broken == nil {
			c.broken = err
			c.conn.Close()
		}
		c.abortPending(gen, err)
	}
	return nil
}

// do2 runs one pipelined v2 op to completion, with the same
// redial-and-replay envelope exchange() gives v1 ops: transport failures
// are retried up to MaxReconnects times, server error frames are not.
func (c *Client) do2(h headerV2, segs [][]byte, p *pendingOp) error {
	for attempt := 0; ; attempt++ {
		p.reset()
		if err := c.send2(h, segs, p); err != nil {
			return err
		}
		<-p.done
		if p.err == nil || !p.transport || attempt >= c.opts.MaxReconnects {
			return p.err
		}
		// Transport failure with retry budget left: the next send2 finds
		// the connection broken, redials (re-HELLOing v2), and replays.
	}
}

// validateBatch applies the scalar ops' client-side validation to a
// batch: ids must fit the wire format, every extent must be non-empty,
// and no extent or the batch total may exceed MaxIOBytes.
func validateBatch(exts []Extent) error {
	if len(exts) == 0 {
		return fmt.Errorf("%w: empty batch", ErrProtocol)
	}
	if len(exts) > MaxVecExtents {
		return fmt.Errorf("%w: batch of %d extents exceeds limit %d", ErrProtocol, len(exts), MaxVecExtents)
	}
	total := 0
	for i, e := range exts {
		if err := checkIDs(e.Server, e.Volume); err != nil {
			return err
		}
		if len(e.Data) == 0 || len(e.Data) > MaxIOBytes {
			return fmt.Errorf("%w: batch extent %d length %d out of range", ErrProtocol, i, len(e.Data))
		}
		total += len(e.Data)
		if total > MaxIOBytes {
			return fmt.Errorf("%w: batch total exceeds %d bytes", ErrProtocol, MaxIOBytes)
		}
	}
	return nil
}

// ReadBatch fills every extent's Data in one scatter/gather round trip
// (protocol v2). Against a v1 server the batch degrades to sequential
// per-extent reads. The batch is all-or-nothing: any extent's failure
// fails the whole call and leaves all Data contents undefined.
func (c *Client) ReadBatch(exts []Extent) error {
	if err := validateBatch(exts); err != nil {
		return err
	}
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto != ProtocolV2 {
		for _, e := range exts {
			if err := c.ReadAt(e.Server, e.Volume, e.Data, e.Off); err != nil {
				return err
			}
		}
		return nil
	}
	table := appendExtentTable(nil, exts)
	return c.do2(headerV2{op: OpReadV, length: uint32(len(table))},
		[][]byte{table}, &pendingOp{op: OpReadV, vec: exts})
}

// WriteBatch writes every extent's Data in one scatter/gather round trip
// (protocol v2). Against a v1 server the batch degrades to sequential
// per-extent writes. Like concurrent WriteAt calls, a failure can leave
// a mix of applied and unapplied extents.
func (c *Client) WriteBatch(exts []Extent) error {
	if err := validateBatch(exts); err != nil {
		return err
	}
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto != ProtocolV2 {
		for _, e := range exts {
			if err := c.WriteAt(e.Server, e.Volume, e.Data, e.Off); err != nil {
				return err
			}
		}
		return nil
	}
	table := appendExtentTable(nil, exts)
	segs := make([][]byte, 0, len(exts)+1)
	segs = append(segs, table)
	total := 0
	for _, e := range exts {
		segs = append(segs, e.Data)
		total += len(e.Data)
	}
	return c.do2(headerV2{op: OpWriteV, length: uint32(len(table) + total)},
		segs, &pendingOp{op: OpWriteV})
}
