package appliance

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"
)

// --- negotiation & interop -------------------------------------------------

func TestV2NegotiatedByDefault(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{0xA7}, 1024)
	if err := c.WriteAt(0, 0, data, 512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := c.ReadAt(0, 0, got, 512); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch over v2")
	}
	c.mu.Lock()
	proto := c.proto
	c.mu.Unlock()
	if proto != ProtocolV2 {
		t.Fatalf("negotiated proto = %d, want %d", proto, ProtocolV2)
	}
	if srv.StatsSnapshot().V2Conns != 1 {
		t.Fatalf("V2Conns = %d, want 1", srv.StatsSnapshot().V2Conns)
	}
}

// A client pinned to v1 must interoperate unchanged with a v2-capable
// server: no HELLO is ever sent, and the whole exchange stays v1-framed.
func TestV1ClientAgainstV2Server(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{})
	c, err := DialWith(addr, DialOptions{Protocol: ProtocolV1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{0x3C}, 2048)
	if err := c.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2048)
	if err := c.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("v1 round trip mismatch")
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := srv.StatsSnapshot().V2Conns; n != 0 {
		t.Fatalf("V2Conns = %d, want 0 for a v1-pinned client", n)
	}
}

// An auto client against a v1-only server falls back transparently: the
// server answers the HELLO with an unknown-op error and hangs up, the
// client redials once and pins v1. The fallback redial must not count as
// a reconnect (the server is healthy).
func TestAutoClientFallsBackToV1OnlyServer(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{MaxProtocol: ProtocolV1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := bytes.Repeat([]byte{0x55}, 512)
	if err := c.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	if err := c.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("fallback round trip mismatch")
	}
	c.mu.Lock()
	proto := c.proto
	c.mu.Unlock()
	if proto != ProtocolV1 {
		t.Fatalf("proto after fallback = %d, want %d", proto, ProtocolV1)
	}
	if n := c.Reconnects(); n != 0 {
		t.Fatalf("fallback redial counted as %d reconnects, want 0", n)
	}
}

func TestV2RequiredAgainstV1OnlyServer(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{MaxProtocol: ProtocolV1})
	c, err := DialWith(addr, DialOptions{Protocol: ProtocolV2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.ReadAt(0, 0, make([]byte, 512), 0); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// --- pipelining ------------------------------------------------------------

// Many goroutines share one v2 connection; the server completes their
// tagged requests concurrently (and, under load, out of order). Run with
// -race to exercise the tag map, the reader goroutine, and the server's
// per-connection write mutex.
func TestPipelineConcurrency(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		workers = 16
		ops     = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			buf := make([]byte, 512)
			got := make([]byte, 512)
			// Each worker owns a disjoint offset range, so reads verify
			// exactly what this worker wrote.
			base := uint64(w) * 1 << 20
			for i := 0; i < ops; i++ {
				off := base + uint64(rng.Intn(256))*512
				fill := byte(w<<4) | byte(i&0xF)
				for j := range buf {
					buf[j] = fill
				}
				if err := c.WriteAt(0, 0, buf, off); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				if err := c.ReadAt(0, 0, got, off); err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if got[0] != fill || got[511] != fill {
					errs <- fmt.Errorf("worker %d: read returned %#x, want %#x", w, got[0], fill)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if srv.StatsSnapshot().PipelinedReqs == 0 {
		t.Error("no pipelined requests counted despite 16 concurrent workers")
	}
	if d := srv.StatsSnapshot().PipelineDepth; d != 0 {
		t.Errorf("PipelineDepth = %d after drain, want 0", d)
	}
}

// The server must bound in-flight requests per connection at MaxPipeline.
func TestPipelineDepthBounded(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{MaxPipeline: 2})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 20; i++ {
				if err := c.WriteAt(0, 0, buf, uint64(w*64+i)*512); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if d := srv.StatsSnapshot().PipelineDepth; d != 0 {
		t.Errorf("PipelineDepth = %d after drain, want 0", d)
	}
}

// --- batching --------------------------------------------------------------

func TestBatchRoundTrip(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	exts := make([]Extent, 8)
	for i := range exts {
		data := bytes.Repeat([]byte{byte(0x10 + i)}, 512*(1+i%3))
		exts[i] = Extent{Server: 0, Volume: 0, Off: uint64(i) * 8192, Data: data}
	}
	if err := c.WriteBatch(exts); err != nil {
		t.Fatal(err)
	}
	got := make([]Extent, len(exts))
	for i := range got {
		got[i] = Extent{Server: 0, Volume: 0, Off: exts[i].Off, Data: make([]byte, len(exts[i].Data))}
	}
	if err := c.ReadBatch(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, exts[i].Data) {
			t.Fatalf("extent %d mismatch", i)
		}
	}
	snap := srv.StatsSnapshot()
	if snap.VecOps != 2 {
		t.Errorf("VecOps = %d, want 2", snap.VecOps)
	}
	if snap.VecExtents != 16 {
		t.Errorf("VecExtents = %d, want 16", snap.VecExtents)
	}
}

// Against a v1-only server the batch API degrades to per-extent scalar
// ops — same data, more round trips.
func TestBatchFallsBackToScalarOnV1(t *testing.T) {
	srv, addr := startServerWith(t, ServerOptions{MaxProtocol: ProtocolV1})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exts := []Extent{
		{Server: 0, Volume: 0, Off: 0, Data: bytes.Repeat([]byte{0xD1}, 512)},
		{Server: 0, Volume: 0, Off: 4096, Data: bytes.Repeat([]byte{0xD2}, 1024)},
	}
	if err := c.WriteBatch(exts); err != nil {
		t.Fatal(err)
	}
	got := []Extent{
		{Server: 0, Volume: 0, Off: 0, Data: make([]byte, 512)},
		{Server: 0, Volume: 0, Off: 4096, Data: make([]byte, 1024)},
	}
	if err := c.ReadBatch(got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, exts[i].Data) {
			t.Fatalf("extent %d mismatch after v1 fallback", i)
		}
	}
	if n := srv.StatsSnapshot().VecOps; n != 0 {
		t.Errorf("VecOps = %d on a v1 connection, want 0", n)
	}
}

func TestBatchValidation(t *testing.T) {
	c := &Client{} // validation happens before any wire traffic
	if err := c.ReadBatch(nil); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty batch: err = %v, want ErrProtocol", err)
	}
	if err := c.WriteBatch([]Extent{{Server: 0, Volume: 0, Data: nil}}); !errors.Is(err, ErrProtocol) {
		t.Errorf("empty extent: err = %v, want ErrProtocol", err)
	}
	big := []Extent{
		{Server: 0, Volume: 0, Data: make([]byte, MaxIOBytes)},
		{Server: 0, Volume: 0, Off: 1 << 30, Data: make([]byte, 512)},
	}
	if err := c.WriteBatch(big); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized batch: err = %v, want ErrProtocol", err)
	}
	bad := []Extent{{Server: -1, Volume: 0, Data: make([]byte, 512)}}
	if err := c.ReadBatch(bad); err == nil {
		t.Error("negative server id accepted")
	}
}

// A malformed vector frame (bad ids in the extent table) answers an
// error frame but keeps the connection usable — the payload was fully
// consumed, so the stream is still frame-aligned.
func TestVectorErrorKeepsConnection(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.WriteAt(0, 0, make([]byte, 512), 0); err != nil { // negotiate v2
		t.Fatal(err)
	}
	// Hand-craft an OpReadV whose extent table is structurally valid but
	// addresses an out-of-range volume: client-side validation would
	// reject it, so go through do2 directly.
	table := appendExtentTable(nil, []Extent{{Server: 0, Volume: 1 << 12, Off: 0, Data: make([]byte, 512)}})
	err = c.do2(headerV2{op: OpReadV, length: uint32(len(table))},
		[][]byte{table}, &pendingOp{op: OpReadV, vec: []Extent{{Data: make([]byte, 512)}}})
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	// The same connection must still serve requests.
	if err := c.ReadAt(0, 0, make([]byte, 512), 0); err != nil {
		t.Fatalf("connection unusable after vector error frame: %v", err)
	}
}

// --- flush & group commit over the wire ------------------------------------

func TestClientFlushBothProtocols(t *testing.T) {
	for _, proto := range []int{ProtocolV1, ProtocolAuto} {
		_, addr := startServerWith(t, ServerOptions{})
		c, err := DialWith(addr, DialOptions{Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.WriteAt(0, 0, make([]byte, 512), 0); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatalf("proto %d: Flush: %v", proto, err)
		}
		c.Close()
	}
}

// --- protocol-edge regressions ---------------------------------------------

// Regression: Client.Invalidate used to narrow its int length to the
// header's u32 unchecked, so a negative or >4 GiB length silently wrapped
// into a bogus extent on the wire.
func TestInvalidateRejectsBadLength(t *testing.T) {
	c := &Client{} // validation happens before any wire traffic
	if _, err := c.Invalidate(0, 0, 0, -1); !errors.Is(err, ErrProtocol) {
		t.Errorf("negative length: err = %v, want ErrProtocol", err)
	}
	if _, err := c.Invalidate(0, 0, 0, MaxIOBytes+1); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized length: err = %v, want ErrProtocol", err)
	}
	// In-range lengths still reach the wire (and work end to end).
	_, addr := startServerWith(t, ServerOptions{})
	cc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.WriteAt(0, 0, make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Invalidate(0, 0, 0, 1024); err != nil {
		t.Fatalf("valid invalidate: %v", err)
	}
}

// Regression: the client's stats reader allocated make([]byte, n) from
// the untrusted u32 length prefix — a corrupt server could force a ~4 GiB
// allocation. The client must reject oversized stats payloads instead.
func TestStatsPayloadBounded(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		hdr := make([]byte, headerSize)
		if _, err := io.ReadFull(br, hdr); err != nil {
			return
		}
		// statusOK + an absurd u32 stats length. A pre-fix client would
		// try to allocate and read 4 GiB; a fixed one rejects on sight.
		resp := []byte{statusOK, 0xFF, 0xFF, 0xFF, 0xFF}
		conn.Write(resp)
	}()
	c, err := DialWith(l.Addr().String(), DialOptions{Protocol: ProtocolV1, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// The v2 stats reader is bounded the same way.
func TestStatsPayloadBoundedV2(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		hdr := make([]byte, headerSize)
		if _, err := io.ReadFull(br, hdr); err != nil {
			return // HELLO
		}
		conn.Write([]byte{statusOK, ProtocolV2})
		h2 := make([]byte, headerSizeV2)
		if _, err := io.ReadFull(br, h2); err != nil {
			return // the stats request, v2-framed
		}
		resp := make([]byte, respHeadV2+4)
		respHead(resp, binary.BigEndian.Uint32(h2[2:6]), statusOK)
		binary.BigEndian.PutUint32(resp[respHeadV2:], 0xFFFFFFFF)
		conn.Write(resp)
	}()
	c, err := DialWith(l.Addr().String(), DialOptions{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Stats(); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v, want ErrProtocol", err)
	}
}

// Regression: serveConn's per-connection payload buffer only ever grew,
// so one 8 MiB write pinned 8 MiB per connection for its lifetime. Now
// buffers over payloadKeep go through the shared pool and are released
// after the response, so steady-state heap stays near baseline.
func TestServeConnPayloadReleased(t *testing.T) {
	_, addr := startServerWith(t, ServerOptions{})
	const conns = 4
	const big = 8 << 20
	clients := make([]*Client, conns)
	for i := range clients {
		c, err := DialWith(addr, DialOptions{Protocol: ProtocolV1})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	payload := make([]byte, big)
	for _, c := range clients {
		if err := c.WriteAt(0, 0, payload, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Keep the connections alive with small traffic, then measure: the
	// big buffers must be poolable garbage, not per-connection residents.
	small := make([]byte, 512)
	for _, c := range clients {
		for i := 0; i < 4; i++ {
			if err := c.WriteAt(0, 0, small, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	runtime.GC()
	runtime.GC() // second cycle drops sync.Pool victims
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	// Pre-fix, the 4 connections retain 4×8 MiB. Post-fix the retained
	// total must come in far under one connection's big payload.
	if ms.HeapAlloc > 3*big {
		t.Fatalf("HeapAlloc = %d MiB after big writes; oversized conn buffers look retained",
			ms.HeapAlloc>>20)
	}
}
