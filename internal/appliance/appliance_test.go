package appliance

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// startServer spins up a server over an in-memory ensemble and returns a
// connected client.
func startServer(t *testing.T) (*Client, *core.Store, *store.Mem) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	be.AddVolume(1, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 256 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
		st.Close()
	})
	return client, st, be
}

func TestReadWriteRoundTrip(t *testing.T) {
	client, _, _ := startServer(t)
	data := bytes.Repeat([]byte{0xC4}, 2048)
	if err := client.WriteAt(0, 0, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2048)
	if err := client.ReadAt(0, 0, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("round trip mismatch")
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	client, _, _ := startServer(t)
	// Unaligned I/O is rejected by the core and must surface as a
	// RemoteError, leaving the connection usable.
	err := client.ReadAt(0, 0, make([]byte, 100), 0)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	// Connection still alive.
	if err := client.WriteAt(0, 0, make([]byte, 512), 0); err != nil {
		t.Fatalf("connection wedged: %v", err)
	}
	// Unknown volume errors too.
	if err := client.ReadAt(7, 3, make([]byte, 512), 0); err == nil {
		t.Error("unknown volume should fail")
	}
}

func TestStatsOverWire(t *testing.T) {
	client, st, _ := startServer(t)
	if err := client.WriteAt(0, 0, make([]byte, 1024), 0); err != nil {
		t.Fatal(err)
	}
	remote, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	local := st.Stats()
	if remote.Writes != local.Writes || remote.Writes != 2 {
		t.Errorf("remote stats = %+v, local = %+v", remote, local)
	}
	if remote.CapacityBlocks != 256 {
		t.Errorf("capacity = %d", remote.CapacityBlocks)
	}
}

func TestCacheVisibleThroughWire(t *testing.T) {
	client, st, be := startServer(t)
	seed := bytes.Repeat([]byte{9}, 512)
	if err := be.WriteAt(1, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		if err := client.ReadAt(1, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !st.Contains(1, 0, 0) {
		t.Error("hot block not admitted via appliance path")
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.AllocWrites != 1 {
		t.Errorf("alloc-writes = %d", stats.AllocWrites)
	}
}

func TestConcurrentClients(t *testing.T) {
	client0, _, _ := startServer(t)
	addr := client0.conn.RemoteAddr().String()
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			buf := make([]byte, 512)
			for i := 0; i < 100; i++ {
				off := uint64((g*13 + i) % 100 * 512)
				if i%2 == 0 {
					err = c.WriteAt(0, 0, buf, off)
				} else {
					err = c.ReadAt(0, 0, buf, off)
				}
				if err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{op: OpWrite, server: 12, volume: 4, offset: 1 << 40, length: 65536}
	buf := make([]byte, headerSize)
	h.encode(buf)
	got, err := decodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("got %+v, want %+v", got, h)
	}
}

func TestDecodeHeaderRejectsGarbage(t *testing.T) {
	buf := make([]byte, headerSize)
	buf[0] = 0xFF
	if _, err := decodeHeader(buf); !errors.Is(err, ErrProtocol) {
		t.Errorf("bad magic: %v", err)
	}
	h := header{op: OpRead, length: MaxIOBytes + 1}
	h.encode(buf)
	if _, err := decodeHeader(buf); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized length: %v", err)
	}
}

func TestOversizedClientIORejectedLocally(t *testing.T) {
	client, _, _ := startServer(t)
	big := make([]byte, MaxIOBytes+512)
	if err := client.ReadAt(0, 0, big, 0); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized read: %v", err)
	}
	if err := client.WriteAt(0, 0, big, 0); !errors.Is(err, ErrProtocol) {
		t.Errorf("oversized write: %v", err)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	st, err := core.Open(be, core.Options{CacheBytes: 64 * block.Size})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	time.Sleep(10 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("Serve returned nil after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}

func BenchmarkRoundTrip4K(b *testing.B) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{CacheBytes: 1 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	defer srv.Close()
	client, err := Dial(l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer client.Close()
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := client.WriteAt(0, 0, buf, 0); err != nil {
				b.Fatal(err)
			}
		} else if err := client.ReadAt(0, 0, buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestClientIDRangeValidation: the wire header carries server/volume as
// uint16, so the client must reject out-of-range IDs up front with a typed
// error instead of silently truncating them onto some other volume.
func TestClientIDRangeValidation(t *testing.T) {
	client, _, _ := startServer(t)
	buf := make([]byte, 512)
	for _, ids := range [][2]int{{1 << 16, 0}, {0, 1 << 16}, {-1, 0}, {0, -1}} {
		if err := client.ReadAt(ids[0], ids[1], buf, 0); !errors.Is(err, ErrIDRange) {
			t.Errorf("ReadAt(%d,%d) = %v, want ErrIDRange", ids[0], ids[1], err)
		}
		if err := client.WriteAt(ids[0], ids[1], buf, 0); !errors.Is(err, ErrIDRange) {
			t.Errorf("WriteAt(%d,%d) = %v, want ErrIDRange", ids[0], ids[1], err)
		}
		if _, err := client.Invalidate(ids[0], ids[1], 0, 512); !errors.Is(err, ErrIDRange) {
			t.Errorf("Invalidate(%d,%d) = %v, want ErrIDRange", ids[0], ids[1], err)
		}
	}
	// The boundary IDs are legal and the connection is still healthy. The
	// demo ensemble has no volume 65535, so a RemoteError (not ErrIDRange,
	// not a broken connection) is the expected outcome.
	var remote *RemoteError
	if err := client.ReadAt(0xFFFF, 0xFFFF, buf, 0); !errors.As(err, &remote) {
		t.Errorf("boundary IDs: %v, want RemoteError from the server", err)
	}
	if err := client.WriteAt(0, 0, buf, 0); err != nil {
		t.Fatalf("connection unusable after rejected requests: %v", err)
	}
}
