package appliance

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/resilience"
	"repro/internal/sieve"
	"repro/internal/store"
)

// startObservedServer runs a full stack — resilient backend, VariantC
// store with tracing, appliance server, observability HTTP endpoint — and
// returns a wire client plus the base URL of the metrics listener.
func startObservedServer(t *testing.T) (*Client, *core.Store, string) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	res := resilience.Wrap(be, resilience.Config{Timeout: time.Second})
	st, err := core.Open(res, core.Options{
		CacheBytes:    256 * block.Size,
		Variant:       core.VariantC,
		TrackLatency:  true,
		TraceSample:   1,
		TraceRingSize: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	obs := NewObservability(st)
	obs.AttachServer(srv)
	obs.AttachResilience(res)
	web := httptest.NewServer(obs.Handler())

	t.Cleanup(func() {
		web.Close()
		client.Close()
		srv.Close()
		<-done
		st.Close()
	})
	return client, st, web.URL
}

func httpGet(t *testing.T, url string) (string, *http.Response) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String(), resp
}

// TestObservabilityEndToEnd drives real I/O through the wire protocol and
// checks that /metrics, /statusz, and /debug/ops all report it.
func TestObservabilityEndToEnd(t *testing.T) {
	client, st, base := startObservedServer(t)

	// 4 writes then 8 reads of the same blocks: the default sieve won't
	// admit single-access blocks, but reads repeat so some blocks get hot.
	buf := bytes.Repeat([]byte{0x5A}, 2*block.Size)
	for i := 0; i < 4; i++ {
		if err := client.WriteAt(0, 0, buf, uint64(i)*uint64(len(buf))); err != nil {
			t.Fatal(err)
		}
	}
	rd := make([]byte, block.Size)
	for pass := 0; pass < 8; pass++ {
		for i := 0; i < 4; i++ {
			if err := client.ReadAt(0, 0, rd, uint64(i)*2*block.Size); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := st.Stats()
	if stats.Reads == 0 || stats.Writes == 0 {
		t.Fatalf("no I/O recorded: %+v", stats)
	}

	// /metrics: Prometheus text format with the core counters and a
	// quantile-derivable read-latency histogram.
	body, resp := httpGet(t, base+"/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE sievestore_core_reads counter",
		"# TYPE sievestore_core_read_hits counter",
		"# TYPE sievestore_core_alloc_writes counter",
		"# TYPE sievestore_core_read_latency histogram",
		"sievestore_core_read_latency_bucket{le=\"+Inf\"}",
		"sievestore_core_read_latency_sum",
		"sievestore_core_read_latency_count",
		"# TYPE sievestore_core_hit_ratio gauge",
		"# TYPE sievestore_server_requests counter",
		"# TYPE sievestore_resilience_retries counter",
		"# TYPE sievestore_sieve_misses counter",
		"sievestore_uptime_seconds",
		"# TYPE sievestore_core_select_overflow counter",
		"sievestore_core_policy_lru 1",
		"sievestore_core_policy_sieve 0",
		"# TYPE sievestore_core_policy_evictions_lru counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The read counter value must match the store's own accounting.
	wantReads := "sievestore_core_reads " + itoa(stats.Reads)
	if !strings.Contains(body, wantReads) {
		t.Errorf("/metrics missing %q\n%s", wantReads, grepLines(body, "sievestore_core_reads"))
	}
	// The histogram recorded every read op.
	wantCount := "sievestore_core_read_latency_count " + itoa(stats.ReadLatency.Ops)
	if !strings.Contains(body, wantCount) {
		t.Errorf("/metrics missing %q\n%s", wantCount, grepLines(body, "read_latency_count"))
	}

	// /statusz: same data as JSON.
	body, resp = httpGet(t, base+"/statusz")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/statusz content-type = %q", ct)
	}
	var status struct {
		Variant string         `json:"variant"`
		Policy  string         `json:"policy"`
		Shards  int            `json:"shards"`
		Uptime  float64        `json:"uptime_seconds"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz is not JSON: %v\n%s", err, body)
	}
	if status.Variant != "SieveStore-C" || status.Shards != st.Shards() {
		t.Errorf("/statusz header = %+v", status)
	}
	if status.Policy != st.Policy() {
		t.Errorf("/statusz policy = %q, want %q", status.Policy, st.Policy())
	}
	if got := status.Metrics["sievestore.core.reads"].(float64); got != float64(stats.Reads) {
		t.Errorf("/statusz reads = %v, want %d", got, stats.Reads)
	}
	lat, ok := status.Metrics["sievestore.core.read_latency"].(map[string]any)
	if !ok {
		t.Fatalf("/statusz read_latency = %T", status.Metrics["sievestore.core.read_latency"])
	}
	if lat["count"].(float64) != float64(stats.ReadLatency.Ops) || lat["p99_ns"].(float64) <= 0 {
		t.Errorf("/statusz read_latency = %v", lat)
	}

	// /debug/ops: every op was sampled (TraceSample=1); the ring holds the
	// most recent 32 with populated lifecycle fields.
	body, resp = httpGet(t, base+"/debug/ops")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/ops content-type = %q", ct)
	}
	var ops struct {
		Sampled bool `json:"sampled"`
		Ops     []struct {
			Seq       uint64 `json:"seq"`
			Op        string `json:"op"`
			Blocks    int    `json:"blocks"`
			Shard     int    `json:"shard"`
			Hits      int    `json:"hits"`
			Misses    int    `json:"misses"`
			LatencyNS int64  `json:"latency_ns"`
			StartNS   int64  `json:"start_unix_ns"`
		} `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &ops); err != nil {
		t.Fatalf("/debug/ops is not JSON: %v\n%s", err, body)
	}
	if !ops.Sampled || len(ops.Ops) != 32 {
		t.Fatalf("/debug/ops sampled=%v n=%d, want true/32", ops.Sampled, len(ops.Ops))
	}
	for i, op := range ops.Ops {
		if op.Op != "read" && op.Op != "write" {
			t.Errorf("op %d: kind %q", i, op.Op)
		}
		if op.Blocks <= 0 || op.LatencyNS < 0 || op.StartNS <= 0 {
			t.Errorf("op %d: unpopulated record %+v", i, op)
		}
		if i > 0 && op.Seq >= ops.Ops[i-1].Seq {
			t.Errorf("op %d: not newest-first (%d then %d)", i, ops.Ops[i-1].Seq, op.Seq)
		}
	}
	// The last 32 ops were all reads of 1 block each, and the cache was
	// warm by then — the newest records should show hits.
	if ops.Ops[0].Op != "read" || ops.Ops[0].Hits+ops.Ops[0].Misses == 0 {
		t.Errorf("newest op has no cache outcome: %+v", ops.Ops[0])
	}
}

// TestObservabilityNoTracing checks /debug/ops degrades cleanly when the
// store was opened without a trace ring.
func TestObservabilityNoTracing(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	st, err := core.Open(be, core.Options{CacheBytes: 64 * block.Size, Variant: core.VariantC, Policy: "sieve"})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	obs := NewObservability(st)
	web := httptest.NewServer(obs.Handler())
	defer web.Close()

	body, _ := httpGet(t, web.URL+"/debug/ops")
	var ops struct {
		Sampled bool  `json:"sampled"`
		Ops     []any `json:"ops"`
	}
	if err := json.Unmarshal([]byte(body), &ops); err != nil {
		t.Fatal(err)
	}
	if ops.Sampled || len(ops.Ops) != 0 {
		t.Errorf("untraced store: sampled=%v n=%d", ops.Sampled, len(ops.Ops))
	}
	// /metrics still works without server/resilience attachments.
	metricsBody, _ := httpGet(t, web.URL+"/metrics")
	if !strings.Contains(metricsBody, "sievestore_core_reads 0") {
		t.Errorf("/metrics missing zero counters:\n%s", grepLines(metricsBody, "core_reads"))
	}
	if strings.Contains(metricsBody, "sievestore_server_") {
		t.Error("/metrics has server metrics without AttachServer")
	}
	// The policy info series follow the configured engine: SIEVE active,
	// LRU inactive, and evictions attributed to the SIEVE series only.
	for _, want := range []string{
		"sievestore_core_policy_sieve 1",
		"sievestore_core_policy_lru 0",
		"sievestore_core_policy_evictions_lru 0",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLines(metricsBody, "policy"))
		}
	}
	// A tierless store must not export the tier series at all — absent, not
	// zero, so dashboards can key panels on series existence.
	if strings.Contains(metricsBody, "sievestore_tier_") {
		t.Errorf("/metrics has tier series without a RAM tier:\n%s", grepLines(metricsBody, "tier"))
	}
}

// TestObservabilityTierMetrics drives a block through sieve admission and
// RAM-tier promotion, then checks the tier counter/gauge series appear in
// /metrics with live values and the advisor's candidate sweep shows up in
// /statusz.
func TestObservabilityTierMetrics(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	st, err := core.Open(be, core.Options{
		CacheBytes:   64 * block.Size,
		RAMTierBytes: 8 * block.Size,
		// T2=2 keeps sub-admission blocks tracked in the MCT, so the cost
		// advisor has per-key counts to sweep.
		SieveC: sieve.CConfig{IMCTSize: 1 << 12, T1: 2, T2: 2, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	obs := NewObservability(st)
	web := httptest.NewServer(obs.Handler())
	defer web.Close()

	seed := bytes.Repeat([]byte{0x7E}, block.Size)
	if err := st.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	// Repeated reads of block 0: misses until the sieve admits, SSD hits
	// until the promotion filter fires, then RAM-tier hits.
	buf := make([]byte, block.Size)
	for i := 0; i < 10; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Two reads of a second block leave it MCT-tracked but not admitted —
	// advisor fodder.
	for i := 0; i < 2; i++ {
		if err := st.ReadAt(0, 0, buf, 2*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := st.TierStats()
	if !ok {
		t.Fatal("TierStats reported no tier")
	}
	if ts.Hits == 0 || ts.Promotions == 0 {
		t.Fatalf("workload did not exercise the tier: %+v", ts)
	}

	body, _ := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		"# TYPE sievestore_tier_hits counter",
		"# TYPE sievestore_tier_promotions counter",
		"# TYPE sievestore_tier_occupancy gauge",
		"sievestore_tier_hits " + itoa(ts.Hits),
		"sievestore_tier_promotions " + itoa(ts.Promotions),
		"sievestore_tier_cached_blocks " + itoa(ts.CachedBlocks),
		"sievestore_tier_capacity_blocks " + itoa(ts.CapacityBlocks),
		"sievestore_tier_pinned_frames 0",
		"sievestore_tier_advisor_recommended_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLines(body, "tier"))
		}
	}

	// /statusz carries the advisor's full candidate sweep: a recommendation
	// plus a non-empty cost curve over candidate tier sizes.
	statusBody, _ := httpGet(t, web.URL+"/statusz")
	var status struct {
		TierAdvisor *struct {
			RecommendedBytes int64 `json:"recommended_bytes"`
			CurrentBytes     int64 `json:"current_bytes"`
			TrackedKeys      int   `json:"tracked_keys"`
			Candidates       []any `json:"candidates"`
		} `json:"tier_advisor"`
	}
	if err := json.Unmarshal([]byte(statusBody), &status); err != nil {
		t.Fatal(err)
	}
	if status.TierAdvisor == nil {
		t.Fatalf("/statusz missing tier_advisor:\n%s", statusBody)
	}
	if status.TierAdvisor.CurrentBytes != 8*block.Size {
		t.Errorf("tier_advisor current_bytes = %d, want %d", status.TierAdvisor.CurrentBytes, 8*block.Size)
	}
	if status.TierAdvisor.TrackedKeys == 0 || len(status.TierAdvisor.Candidates) == 0 {
		t.Errorf("tier_advisor sweep empty: tracked=%d candidates=%d",
			status.TierAdvisor.TrackedKeys, len(status.TierAdvisor.Candidates))
	}
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }

func grepLines(s, substr string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestObservabilityTenantMetrics checks the multi-tenant QoS surface:
// per-tenant series appear lazily in /metrics as tenants start doing
// I/O, the core-level QoS counters are exported, and /statusz carries
// the per-tenant table.
func TestObservabilityTenantMetrics(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<20)
	be.AddVolume(1, 2, 1<<20)
	st, err := core.Open(be, core.Options{
		CacheBytes:     64 * block.Size,
		Variant:        core.VariantC,
		TenantTracking: true,
		TenantQuotas:   true,
		// A permissive sieve so the hot tenant's re-reads are admitted
		// and earn hits within the short workload.
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 10, T1: 1, T2: 1,
			Window: 2 * time.Minute, Subwindows: 4,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	obs := NewObservability(st)
	web := httptest.NewServer(obs.Handler())
	defer web.Close()

	// A scrape before any I/O: core QoS counters are present, no
	// per-tenant series yet.
	body, _ := httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		"sievestore_core_tenants 0",
		"sievestore_core_quota_denials 0",
		"sievestore_core_throttle_denials 0",
		"sievestore_core_tenant_clips 0",
		"sievestore_core_tenant_repartitions 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q before I/O:\n%s", want, grepLines(body, "tenant"))
		}
	}
	if strings.Contains(body, "sievestore_tenant_") {
		t.Errorf("per-tenant series before any I/O:\n%s", grepLines(body, "sievestore_tenant_"))
	}

	// Drive two tenants: (0,0) re-reads a small set so it earns hits,
	// (1,2) touches each block once.
	buf := bytes.Repeat([]byte{0x7E}, block.Size)
	rd := make([]byte, block.Size)
	for i := 0; i < 8; i++ {
		if err := st.WriteAt(0, 0, buf, uint64(i)*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 8; i++ {
			if err := st.ReadAt(0, 0, rd, uint64(i)*block.Size); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 16; i++ {
		if err := st.ReadAt(1, 2, rd, uint64(i)*block.Size); err != nil {
			t.Fatal(err)
		}
	}

	snaps, ok := st.TenantStats()
	if !ok || len(snaps) != 2 {
		t.Fatalf("TenantStats = %v, %v; want 2 tenants", snaps, ok)
	}

	// The next scrape registers both tenants' series and reports their
	// live counters.
	body, _ = httpGet(t, web.URL+"/metrics")
	for _, want := range []string{
		"sievestore_core_tenants 2",
		"# TYPE sievestore_tenant_0_0_reads counter",
		"# TYPE sievestore_tenant_0_0_hit_ratio gauge",
		"sievestore_tenant_0_0_reads 80",
		"sievestore_tenant_0_0_writes 8",
		"sievestore_tenant_1_2_reads 16",
		"sievestore_tenant_1_2_writes 0",
		"sievestore_tenant_0_0_quota_blocks",
		"sievestore_tenant_0_0_occupancy_blocks",
		"sievestore_tenant_1_2_endurance_tokens_bytes",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, grepLines(body, "tenant"))
		}
	}
	// The hot tenant earned hits; they show up in its series.
	hot := snaps[0]
	if hot.Server != 0 || hot.Volume != 0 || hot.Hits == 0 {
		t.Fatalf("unexpected first tenant snapshot: %+v", hot)
	}
	if want := "sievestore_tenant_0_0_hits " + itoa(hot.Hits); !strings.Contains(body, want) {
		t.Errorf("/metrics missing %q:\n%s", want, grepLines(body, "hits"))
	}

	// /statusz carries the per-tenant table with identity and quotas.
	statusBody, _ := httpGet(t, web.URL+"/statusz")
	var status struct {
		Tenants []struct {
			Server          int   `json:"server"`
			Volume          int   `json:"volume"`
			QuotaBlocks     int64 `json:"quota_blocks"`
			OccupancyBlocks int64 `json:"occupancy_blocks"`
			Reads           int64 `json:"reads"`
			Hits            int64 `json:"hits"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal([]byte(statusBody), &status); err != nil {
		t.Fatal(err)
	}
	if len(status.Tenants) != 2 {
		t.Fatalf("/statusz tenants = %+v, want 2 entries", status.Tenants)
	}
	if status.Tenants[0].Server != 0 || status.Tenants[0].Volume != 0 ||
		status.Tenants[1].Server != 1 || status.Tenants[1].Volume != 2 {
		t.Errorf("/statusz tenant identities wrong: %+v", status.Tenants)
	}
	if status.Tenants[0].Reads != 80 || status.Tenants[0].Hits == 0 {
		t.Errorf("/statusz hot tenant counters wrong: %+v", status.Tenants[0])
	}
	if status.Tenants[0].QuotaBlocks <= 0 {
		t.Errorf("/statusz hot tenant quota = %d, want > 0", status.Tenants[0].QuotaBlocks)
	}

	// A store without tenant tracking exports none of this.
	be2 := store.NewMem()
	be2.AddVolume(0, 0, 1<<20)
	st2, err := core.Open(be2, core.Options{CacheBytes: 64 * block.Size, Variant: core.VariantC})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	obs2 := NewObservability(st2)
	web2 := httptest.NewServer(obs2.Handler())
	defer web2.Close()
	body2, _ := httpGet(t, web2.URL+"/metrics")
	if strings.Contains(body2, "tenant") {
		t.Errorf("untracked store exports tenant series:\n%s", grepLines(body2, "tenant"))
	}
	status2, _ := httpGet(t, web2.URL+"/statusz")
	if strings.Contains(status2, "\"tenants\"") {
		t.Errorf("untracked store /statusz has tenants table:\n%s", status2)
	}
}
