package appliance

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// Regression tests for the v2 pipeline's behavior across auto-reconnect:
// a redial during an in-flight pipeline must never deliver a
// stale-generation completion into a new request's buffer, and the
// deadline bookkeeping shared by the sender and the reader must not
// break healthy idle connections. Cluster failover makes these paths
// hot.

// patByte derives a payload byte from its absolute volume offset, so a
// response delivered into the wrong request's buffer is detectable.
func patByte(off uint64) byte { return byte(off*131 + 17) }

func fillPat(p []byte, off uint64) {
	for i := range p {
		p[i] = patByte(off + uint64(i))
	}
}

// checkPat verifies p holds off's pattern. Errorf, not Fatalf: it is
// called from worker goroutines.
func checkPat(t *testing.T, p []byte, off uint64) {
	t.Helper()
	for i := range p {
		if p[i] != patByte(off+uint64(i)) {
			t.Errorf("payload corrupt at +%d: got 0x%02x, want 0x%02x", i, p[i], patByte(off+uint64(i)))
			return
		}
	}
}

// scriptServer runs one scripted function per accepted connection, in
// accept order; extra connections are closed immediately.
func scriptServer(t *testing.T, scripts ...func(conn net.Conn)) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for i := 0; ; i++ {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			if i < len(scripts) {
				go scripts[i](conn)
			} else {
				conn.Close()
			}
		}
	}()
	t.Cleanup(func() { l.Close() })
	return l.Addr().String()
}

// serveHelloV2 consumes the client's v1-framed HELLO and answers v2.
func serveHelloV2(br *bufio.Reader, conn net.Conn) bool {
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return false
	}
	if hdr[0] != magic || hdr[1] != OpHello {
		return false
	}
	_, err := conn.Write([]byte{statusOK, ProtocolV2})
	return err == nil
}

// respondReadV2 answers one OpRead request with its offset-derived
// pattern payload.
func respondReadV2(conn net.Conn, h headerV2) bool {
	resp := make([]byte, respHeadV2+int(h.length))
	respHead(resp[:respHeadV2], h.tag, statusOK)
	fillPat(resp[respHeadV2:], h.offset)
	_, err := conn.Write(resp)
	return err == nil
}

// TestPipelineReplayAfterMidPipelineDisconnect kills a connection with
// three reads in flight after completing only one of them. The two
// aborted ops must replay on the redialed connection and every buffer
// must end up with its own offset's pattern — a stale or cross-wired
// completion would plant another offset's bytes.
func TestPipelineReplayAfterMidPipelineDisconnect(t *testing.T) {
	addr := scriptServer(t,
		func(conn net.Conn) {
			defer conn.Close()
			br := bufio.NewReader(conn)
			if !serveHelloV2(br, conn) {
				return
			}
			// Read all three pipelined requests, answer only the first.
			hdr := make([]byte, headerSizeV2)
			for i := 0; i < 3; i++ {
				if _, err := io.ReadFull(br, hdr); err != nil {
					return
				}
				h, err := decodeHeaderV2(hdr)
				if err != nil {
					return
				}
				if i == 0 && !respondReadV2(conn, h) {
					return
				}
			}
			// Hang up mid-pipeline: two ops are now stranded.
		},
		func(conn net.Conn) {
			defer conn.Close()
			br := bufio.NewReader(conn)
			if !serveHelloV2(br, conn) {
				return
			}
			hdr := make([]byte, headerSizeV2)
			for {
				if _, err := io.ReadFull(br, hdr); err != nil {
					return
				}
				h, err := decodeHeaderV2(hdr)
				if err != nil {
					return
				}
				if !respondReadV2(conn, h) {
					return
				}
			}
		},
	)
	c, err := DialWith(addr, DialOptions{
		Protocol:         ProtocolV2,
		Timeout:          5 * time.Second,
		MaxReconnects:    3,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	offs := []uint64{4096, 1 << 20, 3 << 20}
	bufs := make([][]byte, len(offs))
	var wg sync.WaitGroup
	errs := make([]error, len(offs))
	for i, off := range offs {
		bufs[i] = bytes.Repeat([]byte{0xEE}, 1024)
		wg.Add(1)
		go func(i int, off uint64) {
			defer wg.Done()
			errs[i] = c.ReadAt(0, 0, bufs[i], off)
		}(i, off)
	}
	wg.Wait()
	for i, off := range offs {
		if errs[i] != nil {
			t.Fatalf("read %d (off %d): %v", i, off, errs[i])
		}
		checkPat(t, bufs[i], off)
	}
}

// TestStaleGenerationCompletionRejected redials twice: the first
// connection strands a read, and the second connection maliciously
// completes the read's *old* tag before the replay's response could
// exist. The client must treat the stale completion as a protocol error
// — never copy its body into the replayed request's buffer — and
// recover on the next redial.
func TestStaleGenerationCompletionRejected(t *testing.T) {
	tagCh := make(chan uint32, 1)
	addr := scriptServer(t,
		func(conn net.Conn) {
			defer conn.Close()
			br := bufio.NewReader(conn)
			if !serveHelloV2(br, conn) {
				return
			}
			hdr := make([]byte, headerSizeV2)
			if _, err := io.ReadFull(br, hdr); err != nil {
				return
			}
			h, err := decodeHeaderV2(hdr)
			if err != nil {
				return
			}
			tagCh <- h.tag
			// Hang up without answering: the op replays after a redial.
		},
		func(conn net.Conn) {
			defer conn.Close()
			br := bufio.NewReader(conn)
			if !serveHelloV2(br, conn) {
				return
			}
			// Complete the PREVIOUS generation's tag with a poison body.
			// The client's reader must reject it (the tag belongs to no
			// current-generation op) and fail this connection without
			// touching any caller buffer.
			staleTag := <-tagCh
			resp := make([]byte, respHeadV2+1024)
			respHead(resp[:respHeadV2], staleTag, statusOK)
			for i := respHeadV2; i < len(resp); i++ {
				resp[i] = 0xAB
			}
			conn.Write(resp)
			// Linger until the client closes the connection on us.
			io.Copy(io.Discard, br)
		},
		func(conn net.Conn) {
			defer conn.Close()
			br := bufio.NewReader(conn)
			if !serveHelloV2(br, conn) {
				return
			}
			hdr := make([]byte, headerSizeV2)
			for {
				if _, err := io.ReadFull(br, hdr); err != nil {
					return
				}
				h, err := decodeHeaderV2(hdr)
				if err != nil {
					return
				}
				if !respondReadV2(conn, h) {
					return
				}
			}
		},
	)
	c, err := DialWith(addr, DialOptions{
		Protocol:         ProtocolV2,
		Timeout:          5 * time.Second,
		MaxReconnects:    4,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const off = 2 << 20
	buf := bytes.Repeat([]byte{0xEE}, 1024)
	if err := c.ReadAt(0, 0, buf, off); err != nil {
		t.Fatalf("read across poisoned redial: %v", err)
	}
	// checkPat is the whole assertion: the poison body is uniform 0xAB,
	// which cannot match the offset-derived pattern end to end.
	checkPat(t, buf, off)
}

// dialRealServer starts a full in-process appliance over a memory
// ensemble and dials it with the given options.
func dialRealServer(t *testing.T, opts DialOptions) (*Client, string) {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 256 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	c, err := DialWith(l.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Close()
		srv.Close()
		<-done
		st.Close()
	})
	return c, l.Addr().String()
}

// TestIdleV2ConnectionSurvivesTimeoutWindow pins the deadline hygiene of
// a healthy idle pipeline with Timeout set and reconnects disabled:
// neither the HELLO's deadline (negotiation with no op sent yet) nor a
// drained pipeline's may linger and let the idle reader break the
// connection.
func TestIdleV2ConnectionSurvivesTimeoutWindow(t *testing.T) {
	c, _ := dialRealServer(t, DialOptions{
		Protocol: ProtocolAuto,
		Timeout:  150 * time.Millisecond,
		// No reconnect budget: a reader killed by a stale deadline would
		// permanently break the client and fail the ops below.
		MaxReconnects: 0,
	})
	// Negotiate v2 without sending a single op: the reader now idles on
	// a connection whose HELLO armed a deadline.
	if proto, err := c.protoFor(); err != nil || proto != ProtocolV2 {
		t.Fatalf("negotiation: proto=%d err=%v", proto, err)
	}
	time.Sleep(450 * time.Millisecond)
	data := make([]byte, 512)
	fillPat(data, 0)
	if err := c.WriteAt(0, 0, data, 0); err != nil {
		t.Fatalf("op after idle post-HELLO window: %v", err)
	}
	// And again after the pipeline drained (the reader's idle-clear).
	time.Sleep(450 * time.Millisecond)
	buf := make([]byte, 512)
	if err := c.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatalf("op after idle drained-pipeline window: %v", err)
	}
	checkPat(t, buf, 0)
}

// flakyProxy forwards TCP to a backend but cuts every connection after a
// bounded number of server→client bytes, slicing response streams at
// arbitrary frame positions.
type flakyProxy struct {
	l       net.Listener
	backend string
	conns   atomic.Int64
}

func (p *flakyProxy) run() {
	for {
		conn, err := p.l.Accept()
		if err != nil {
			return
		}
		go p.handle(conn)
	}
}

func (p *flakyProxy) handle(conn net.Conn) {
	up, err := net.Dial("tcp", p.backend)
	if err != nil {
		conn.Close()
		return
	}
	// Vary the cut position per connection so the client doesn't wedge
	// at one stream offset forever.
	n := p.conns.Add(1)
	limit := int64(4096 + (n%7)*1531)
	go func() {
		io.Copy(up, conn)
		up.Close()
		conn.Close()
	}()
	io.CopyN(conn, up, limit)
	up.Close()
	conn.Close()
}

// TestPipelineChaosThroughFlakyProxy hammers a v2 pipeline through a
// proxy that keeps cutting the connection mid-stream. Every read that
// reports success must carry its own offset's bytes — replay after
// redial must never satisfy a request from another request's (or another
// generation's) response.
func TestPipelineChaosThroughFlakyProxy(t *testing.T) {
	direct, addr := dialRealServer(t, DialOptions{Protocol: ProtocolV2})
	// Pre-fill 256 blocks with their offset patterns via the direct
	// (unproxied) connection.
	const blocks = 256
	buf := make([]byte, block.Size)
	for i := 0; i < blocks; i++ {
		off := uint64(i) * block.Size
		fillPat(buf, off)
		if err := direct.WriteAt(0, 0, buf, off); err != nil {
			t.Fatal(err)
		}
	}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	proxy := &flakyProxy{l: l, backend: addr}
	go proxy.run()
	t.Cleanup(func() { l.Close() })

	c, err := DialWith(l.Addr().String(), DialOptions{
		Protocol:         ProtocolV2,
		Timeout:          5 * time.Second,
		MaxReconnects:    16,
		ReconnectBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const workers = 4
	const opsPer = 40
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, block.Size)
			for i := 0; i < opsPer; i++ {
				blk := (w*opsPer + i*13) % blocks
				off := uint64(blk) * block.Size
				for j := range buf {
					buf[j] = 0xEE
				}
				if err := c.ReadAt(0, 0, buf, off); err != nil {
					// A cut can outlast the retry budget; what matters is
					// that no *successful* read is wrong.
					failed.Add(1)
					continue
				}
				checkPat(t, buf, off)
			}
		}(w)
	}
	wg.Wait()
	if f := failed.Load(); f > workers*opsPer/2 {
		t.Fatalf("%d/%d reads failed outright — proxy chaos overwhelmed the retry envelope", f, workers*opsPer)
	}
}
