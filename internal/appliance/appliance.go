// Package appliance exposes a SieveStore core.Store over TCP as a
// transparent block-caching appliance — the deployment model of the paper
// (§3.3, Figure 4): servers issue block I/O to the appliance, which serves
// popular blocks from its cache and forwards the rest to the storage
// ensemble.
//
// The wire protocol is a minimal length-prefixed binary framing (the paper
// assumes iSCSI; any block protocol works, so we use the simplest one that
// exercises the same data path). Protocol v1 is strictly
// one-request-one-response:
//
//	request:  magic 'S' | op u8 | server u16 | volume u16 | offset u64 | length u32 | payload
//	response: status u8 | (status==0: payload) (status==1: msgLen u16 | message)
//
// Reads carry no request payload and return `length` bytes; writes carry
// `length` bytes and return an empty payload; OpStats returns a JSON
// encoding of core.Stats prefixed by a u32 length.
//
// Protocol v2 (negotiated per connection via OpHello; see wire2.go and
// DESIGN.md §11) adds tagged pipelined frames with out-of-order
// completion, OpReadV/OpWriteV scatter/gather ops, and zero-copy reads
// served straight from pinned cache frames. v1 peers interoperate
// unchanged: a server speaks v1 on every connection until that
// connection completes a HELLO, and a client falls back to v1 when the
// server rejects the HELLO.
package appliance

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/block"
	"repro/internal/core"
)

// Protocol constants.
const (
	magic = 0x53 // 'S'

	// OpRead reads length bytes.
	OpRead = 1
	// OpWrite writes the payload.
	OpWrite = 2
	// OpStats returns the appliance's core.Stats as JSON.
	OpStats = 3
	// OpRotate forces a SieveStore-D epoch rotation (no-op for VariantC).
	OpRotate = 4
	// OpInvalidate drops cached blocks in [offset, offset+length); the
	// response payload is the dropped count as a u32.
	OpInvalidate = 5

	statusOK  = 0
	statusErr = 1

	// MaxIOBytes bounds a single request's transfer size.
	MaxIOBytes = 16 << 20

	headerSize = 1 + 1 + 2 + 2 + 8 + 4

	// maxErrMsg bounds an error-frame message (u16 length prefix).
	maxErrMsg = 65535

	// connBufSize sizes the per-connection bufio read/write buffers: large
	// enough that a header + a 4 KiB page + the status byte coalesce into
	// one syscall each way, small enough to be cheap per connection.
	connBufSize = 32 << 10
)

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("appliance: protocol error")

// ErrBrokenConn reports a client connection abandoned after a transport
// error: the wire position is unknown (a frame may have been half sent or
// half read), so any further request would misparse stale bytes. Redial.
var ErrBrokenConn = errors.New("appliance: connection broken by earlier transport error")

// ErrAlreadyServing reports a second Serve call on the same Server.
var ErrAlreadyServing = errors.New("appliance: Serve already called")

// ErrServerBusy is sent (as an error frame) to connections arriving while
// the server is at its ServerOptions.MaxConns limit, and surfaced by the
// client when it recognizes the frame. The wording is part of the wire
// protocol: the client matches the message text to map the remote frame
// back to this sentinel.
var ErrServerBusy = errors.New("appliance: server at connection limit")

// header is the fixed-size request prefix.
type header struct {
	op     byte
	server uint16
	volume uint16
	offset uint64
	length uint32
}

func (h *header) encode(buf []byte) {
	buf[0] = magic
	buf[1] = h.op
	binary.BigEndian.PutUint16(buf[2:], h.server)
	binary.BigEndian.PutUint16(buf[4:], h.volume)
	binary.BigEndian.PutUint64(buf[6:], h.offset)
	binary.BigEndian.PutUint32(buf[14:], h.length)
}

func decodeHeader(buf []byte) (header, error) {
	if buf[0] != magic {
		return header{}, fmt.Errorf("%w: bad magic 0x%02x", ErrProtocol, buf[0])
	}
	h := header{
		op:     buf[1],
		server: binary.BigEndian.Uint16(buf[2:]),
		volume: binary.BigEndian.Uint16(buf[4:]),
		offset: binary.BigEndian.Uint64(buf[6:]),
		length: binary.BigEndian.Uint32(buf[14:]),
	}
	if h.length > MaxIOBytes {
		return header{}, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, h.length)
	}
	return h, nil
}

// ServerOptions hardens a Server against misbehaving peers and overload.
// The zero value imposes nothing (the historical behavior).
type ServerOptions struct {
	// IdleTimeout bounds how long a connection may sit between requests
	// before it is closed (0 = forever). A dead peer otherwise pins a
	// handler goroutine and a connection slot indefinitely.
	IdleTimeout time.Duration
	// IOTimeout bounds each request's remaining wire I/O — payload read,
	// store processing, and response flush — once its header has arrived
	// (0 = unbounded). Size it for the slowest expected backend op, not
	// just the wire.
	IOTimeout time.Duration
	// MaxConns caps concurrently served connections (0 = unlimited).
	// Connections beyond the cap receive an ErrServerBusy error frame and
	// are closed, so a well-behaved client fails fast instead of queueing.
	MaxConns int
	// MaxProtocol caps the protocol version the server negotiates.
	// 0 (or ProtocolV2) serves both; ProtocolV1 pins the legacy framing —
	// HELLO frames are then answered as unknown ops, exactly like a
	// pre-v2 server.
	MaxProtocol int
	// MaxPipeline caps how many pipelined requests one v2 connection may
	// have in flight server-side; past the cap the connection's reader
	// stops pulling frames until a response completes (0 = a default of
	// 32). v1 connections are inherently one-at-a-time.
	MaxPipeline int
}

// BlockStore is the storage surface a Server serves over the wire. A
// *core.Store is the canonical implementation; cluster.Client satisfies
// it too, so a Server can front a whole replicated ring as a gateway.
// ReadPinned may return nil to decline zero-copy service — the read
// then falls back to ReadAt.
type BlockStore interface {
	ReadAt(server, volume int, p []byte, off uint64) error
	WriteAt(server, volume int, p []byte, off uint64) error
	ReadVec(vecs []core.IOVec) error
	WriteVec(vecs []core.IOVec) error
	ReadPinned(server, volume, n int, off uint64) *core.PinnedRead
	Stats() core.Stats
	RotateEpoch() error
	Flush() error
	Invalidate(server, volume int, off uint64, length int) (int, error)
}

// Server serves the appliance protocol over a listener, backed by a
// BlockStore (usually a core.Store).
type Server struct {
	store BlockStore
	opts  ServerOptions

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup

	busyRejects int64

	totalConns  atomic.Int64
	requests    atomic.Int64
	errorFrames atomic.Int64

	v2Conns       atomic.Int64
	pipelinedReqs atomic.Int64
	pipelineDepth atomic.Int64
	vecOps        atomic.Int64
	vecExtents    atomic.Int64
	zeroCopyBytes atomic.Int64
}

// NewServer returns a Server around st with no limits (ServerOptions zero
// value). The caller retains ownership of st (Close does not close the
// store).
func NewServer(st BlockStore) *Server {
	return NewServerWith(st, ServerOptions{})
}

// NewServerWith returns a Server around st hardened with opts.
func NewServerWith(st BlockStore, opts ServerOptions) *Server {
	return &Server{store: st, opts: opts, conns: make(map[net.Conn]bool)}
}

// BusyRejects returns how many connections were turned away at the
// MaxConns limit.
func (s *Server) BusyRejects() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busyRejects
}

// ServerStats is a snapshot of a Server's connection and request
// counters, exported by the observability layer.
type ServerStats struct {
	ActiveConns   int   // connections currently being served
	TotalConns    int64 // connections accepted over the server's lifetime
	BusyRejects   int64 // connections turned away at the MaxConns limit
	Requests      int64 // request frames received (all ops)
	ErrorFrames   int64 // error-frame responses sent
	V2Conns       int64 // connections that negotiated protocol v2
	PipelinedReqs int64 // v2 requests that arrived while another was already in flight on the same connection
	PipelineDepth int64 // v2 requests in flight right now, across connections
	VecOps        int64 // OpReadV/OpWriteV frames served
	VecExtents    int64 // extents carried by those frames
	ZeroCopyBytes int64 // read bytes served straight from pinned cache frames
}

// StatsSnapshot snapshots the server's counters.
func (s *Server) StatsSnapshot() ServerStats {
	s.mu.Lock()
	active := len(s.conns)
	busy := s.busyRejects
	s.mu.Unlock()
	return ServerStats{
		ActiveConns:   active,
		TotalConns:    s.totalConns.Load(),
		BusyRejects:   busy,
		Requests:      s.requests.Load(),
		ErrorFrames:   s.errorFrames.Load(),
		V2Conns:       s.v2Conns.Load(),
		PipelinedReqs: s.pipelinedReqs.Load(),
		PipelineDepth: s.pipelineDepth.Load(),
		VecOps:        s.vecOps.Load(),
		VecExtents:    s.vecExtents.Load(),
		ZeroCopyBytes: s.zeroCopyBytes.Load(),
	}
}

// sendErr is writeErr with the server's error-frame counter attached.
func (s *Server) sendErr(bw *bufio.Writer, err error) bool {
	s.errorFrames.Add(1)
	return writeErr(bw, err)
}

// Serve accepts connections on l until Close is called. It always returns a
// non-nil error: net.ErrClosed after a clean shutdown, ErrAlreadyServing if
// the server already has a listener (a Server serves at most once).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	if s.listener != nil {
		s.mu.Unlock()
		return ErrAlreadyServing
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			// After Close the accept error is an implementation detail of
			// the listener; normalize it so callers can test for shutdown.
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return net.ErrClosed
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		if s.opts.MaxConns > 0 && len(s.conns) >= s.opts.MaxConns {
			s.busyRejects++
			s.wg.Add(1)
			s.mu.Unlock()
			// Tell the peer why before closing — off the accept loop, with a
			// short deadline, so one unresponsive peer cannot stall accepts.
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				conn.SetDeadline(time.Now().Add(time.Second))
				s.sendErr(bufio.NewWriterSize(conn, 64), ErrServerBusy)
				// Absorb whatever the peer already sent before closing:
				// closing with unread data risks a reset that discards the
				// busy frame before the peer reads it.
				io.Copy(io.Discard, conn)
			}()
			continue
		}
		s.conns[conn] = true
		s.totalConns.Add(1)
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// serveConn handles one connection until EOF or error. I/O is buffered per
// connection, and every response — status byte plus payload — is staged in
// the write buffer and flushed once, so a round trip costs one write
// syscall instead of two unbuffered ones.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, connBufSize)
	bw := bufio.NewWriterSize(conn, connBufSize)
	hdr := make([]byte, headerSize)
	var cp connPayload
	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		} else if s.opts.IOTimeout > 0 {
			// No idle bound: clear the previous request's I/O deadline so it
			// cannot fire while the connection legitimately sits idle.
			conn.SetDeadline(time.Time{})
		}
		if _, err := io.ReadFull(br, hdr); err != nil {
			return // EOF, idle timeout, or broken connection
		}
		// Header arrived: the request is live. Re-arm the deadline to cover
		// the rest of this round trip (payload, store op, response flush),
		// or clear the idle deadline so a slow store op is not cut short.
		if s.opts.IOTimeout > 0 {
			conn.SetDeadline(time.Now().Add(s.opts.IOTimeout))
		} else if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Time{})
		}
		s.requests.Add(1)
		h, err := decodeHeader(hdr)
		if err != nil {
			s.sendErr(bw, err)
			return
		}
		// Reject IDs the packed block.Key cannot represent before they
		// reach the store: MakeKey treats out-of-range components as a
		// caller bug and panics, and a remote peer must not be able to
		// take the daemon down with a stray header. The frame itself is
		// well-formed, so answer with an error and keep the connection.
		if int(h.server) >= block.MaxServers || int(h.volume) >= block.MaxVolumes {
			if h.op == OpWrite {
				// The write payload follows the header; drain it so the
				// stream stays frame-aligned.
				if _, err := io.CopyN(io.Discard, br, int64(h.length)); err != nil {
					return
				}
			}
			if !s.sendErr(bw, fmt.Errorf("appliance: server %d / volume %d out of range", h.server, h.volume)) {
				return
			}
			continue
		}
		switch h.op {
		case OpRead:
			// Zero-copy fast path: pin the all-hit prefix's cache frames
			// and write them to the wire directly; only the (miss) tail is
			// read into a scratch buffer. ReadPinned accounts and logs the
			// pinned blocks itself, so the two halves together count
			// exactly like one ReadAt.
			n := int(h.length)
			pr := s.store.ReadPinned(int(h.server), int(h.volume), n, h.offset)
			pinned := 0
			if pr != nil {
				pinned = pr.Bytes()
			}
			var tail []byte
			if n > pinned || n == 0 {
				tail = cp.get(n - pinned)
				if err := s.store.ReadAt(int(h.server), int(h.volume), tail, h.offset+uint64(pinned)); err != nil {
					if pr != nil {
						pr.Release()
					}
					cp.put(tail)
					if !s.sendErr(bw, err) {
						return
					}
					continue
				}
			}
			s.zeroCopyBytes.Add(int64(pinned))
			bw.WriteByte(statusOK)
			if pr != nil {
				for _, v := range pr.Views() {
					bw.Write(v)
				}
			}
			if len(tail) > 0 {
				bw.Write(tail)
			}
			flushed := bw.Flush() == nil
			if pr != nil {
				pr.Release()
			}
			cp.put(tail)
			if !flushed {
				return
			}
		case OpWrite:
			buf := cp.get(int(h.length))
			if _, err := io.ReadFull(br, buf); err != nil {
				cp.put(buf)
				return
			}
			err := s.store.WriteAt(int(h.server), int(h.volume), buf, h.offset)
			cp.put(buf)
			if err != nil {
				if !s.sendErr(bw, err) {
					return
				}
				continue
			}
			if !writeOK(bw, nil) {
				return
			}
		case OpStats:
			data, err := json.Marshal(s.store.Stats())
			if err != nil {
				if !s.sendErr(bw, err) {
					return
				}
				continue
			}
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
			if !writeOK(bw, append(lenBuf[:], data...)) {
				return
			}
		case OpRotate:
			if err := s.store.RotateEpoch(); err != nil {
				if !s.sendErr(bw, err) {
					return
				}
				continue
			}
			if !writeOK(bw, nil) {
				return
			}
		case OpInvalidate:
			dropped, err := s.store.Invalidate(int(h.server), int(h.volume), h.offset, int(h.length))
			if err != nil {
				if !s.sendErr(bw, err) {
					return
				}
				continue
			}
			var resp [4]byte
			binary.BigEndian.PutUint32(resp[:], uint32(dropped))
			if !writeOK(bw, resp[:]) {
				return
			}
		case OpFlush:
			if err := s.store.Flush(); err != nil {
				if !s.sendErr(bw, err) {
					return
				}
				continue
			}
			if !writeOK(bw, nil) {
				return
			}
		case OpHello:
			// Version negotiation: the v1-framed offset field carries the
			// client's maximum supported version; the OK body is one byte,
			// the negotiated version. ≥2 switches this connection to v2
			// framing. A v1-pinned server treats HELLO as an unknown op —
			// byte-exact with a pre-v2 server.
			if s.opts.MaxProtocol == ProtocolV1 {
				s.sendErr(bw, fmt.Errorf("%w: unknown op %d", ErrProtocol, h.op))
				return
			}
			ver := byte(ProtocolV1)
			if h.offset >= ProtocolV2 {
				ver = ProtocolV2
			}
			if !writeOK(bw, []byte{ver}) {
				return
			}
			if ver >= ProtocolV2 {
				s.v2Conns.Add(1)
				s.serveConnV2(conn, br, bw)
				return
			}
		default:
			s.sendErr(bw, fmt.Errorf("%w: unknown op %d", ErrProtocol, h.op))
			return
		}
	}
}

// writeOK stages status + payload and flushes the response in one write.
func writeOK(bw *bufio.Writer, payload []byte) bool {
	bw.WriteByte(statusOK)
	if len(payload) > 0 {
		bw.Write(payload)
	}
	return bw.Flush() == nil
}

// writeErr stages an error frame and flushes it in one write.
func writeErr(bw *bufio.Writer, err error) bool {
	msg := truncateErrMsg(err.Error(), maxErrMsg)
	bw.WriteByte(statusErr)
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	bw.Write(lenBuf[:])
	bw.WriteString(msg)
	return bw.Flush() == nil
}

// truncateErrMsg caps msg at max bytes without splitting a UTF-8 rune:
// naive byte truncation at the frame limit could cut mid-sequence and hand
// the client an invalid string.
func truncateErrMsg(msg string, max int) string {
	if len(msg) <= max {
		return msg
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(msg[cut]) {
		cut--
	}
	return msg[:cut]
}

// Client is a connection to an appliance Server. It is safe for concurrent
// use; requests are serialized on the single connection.
//
// Any transport error (failed or partial frame write/read) leaves the wire
// position unknown, so the client marks itself broken, closes the
// connection, and fails every subsequent call with ErrBrokenConn — the
// alternative is silently misparsing a stale byte of a half-read response
// as the next call's status frame. Server-reported RemoteErrors leave the
// protocol aligned and do not break the client.
type Client struct {
	addr string
	opts DialOptions

	mu         sync.Mutex
	conn       net.Conn
	br         *bufio.Reader
	bw         *bufio.Writer
	hdr        [headerSize]byte
	broken     error // first transport error; nil while the connection is usable
	closed     bool
	reconnects int64

	// proto is the negotiated protocol version: 0 until the first op
	// triggers negotiation (lazy, so Dial stays I/O-free), then ProtocolV1
	// or ProtocolV2 for the client's lifetime.
	proto int
	// gen counts connections: every (re)dial bumps it, and v2 pipeline
	// state (pending ops, the reader goroutine) is tagged with the gen it
	// belongs to, so a stale reader's failure cannot break a fresh
	// connection.
	gen int

	// v2 pipeline state: pending maps in-flight tags to their completion
	// slots. pendMu guards it (never held across I/O); nextTag is guarded
	// by mu (tags are assigned on the send path).
	pendMu  sync.Mutex
	pending map[uint32]*pendingOp
	nextTag uint32
}

// DialOptions hardens a Client against a flaky wire or a restarting
// appliance. The zero value imposes nothing (the historical Dial behavior:
// no deadlines, a broken connection stays broken).
type DialOptions struct {
	// Timeout bounds each round trip's wire I/O (request write through
	// response payload read; 0 = unbounded). A hit deadline breaks the
	// connection — the wire position is unknown — and, with MaxReconnects
	// set, triggers a redial.
	Timeout time.Duration
	// MaxReconnects is how many times an op whose connection broke mid-
	// flight redials and retries before giving up (0 = never: every op
	// after a transport error fails with ErrBrokenConn). Block reads and
	// writes are idempotent, so replaying one that may or may not have
	// reached the store is safe; note that a retried RotateEpoch whose
	// response (only) was lost rotates twice.
	MaxReconnects int
	// ReconnectBackoff is the initial delay between redial attempts,
	// doubling up to 1 s (default 50 ms).
	ReconnectBackoff time.Duration
	// DialTimeout bounds each dial, including redials (0 = the OS default).
	DialTimeout time.Duration
	// Protocol selects the wire protocol. ProtocolAuto (the default)
	// negotiates v2 on the first op and falls back to v1 when the server
	// rejects the HELLO (one transparent redial — v1 servers close the
	// connection on the unknown op). ProtocolV1 pins the legacy framing
	// and sends no HELLO; ProtocolV2 requires v2, failing ops against a
	// v1-only server.
	Protocol int
}

// Dial connects to an appliance at addr with no deadlines and no
// auto-reconnect (DialOptions zero value).
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith connects to an appliance at addr, hardened with opts. The
// dial itself performs no protocol I/O; version negotiation (unless
// opts.Protocol pins v1) happens on the first operation.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	switch opts.Protocol {
	case ProtocolAuto, ProtocolV1, ProtocolV2:
	default:
		return nil, fmt.Errorf("appliance: unknown protocol %d", opts.Protocol)
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{
		addr: addr,
		opts: opts,
		conn: conn,
		br:   bufio.NewReaderSize(conn, connBufSize),
		bw:   bufio.NewWriterSize(conn, connBufSize),
	}
	if opts.Protocol == ProtocolV1 {
		c.proto = ProtocolV1
	}
	return c, nil
}

// Reconnects returns how many times the client has successfully redialed.
func (c *Client) Reconnects() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	err := c.conn.Close()
	if c.broken != nil {
		// fail already closed the conn; the second close's error is noise.
		return nil
	}
	return err
}

// fail marks the connection broken and closes it (the wire position is
// unknown, so it can never be safely reused). With MaxReconnects set, the
// surrounding exchange redials a fresh connection and retries.
func (c *Client) fail(err error) error {
	if c.broken == nil {
		c.broken = err
		c.conn.Close()
	}
	return err
}

// reconnectLocked redials the appliance, replacing the broken connection.
// Caller must hold c.mu (the sleeps hold up other callers of this client,
// which are serialized on the one connection anyway).
func (c *Client) reconnectLocked() error {
	backoff := c.opts.ReconnectBackoff
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	for attempt := 0; attempt < c.opts.MaxReconnects; attempt++ {
		if c.closed {
			return net.ErrClosed
		}
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			continue
		}
		c.conn = conn
		c.br = bufio.NewReaderSize(conn, connBufSize)
		c.bw = bufio.NewWriterSize(conn, connBufSize)
		c.broken = nil
		c.gen++
		if c.proto == ProtocolV2 {
			// The fresh connection must speak v2 again before pipelined
			// requests can ride on it. A failed HELLO marks the connection
			// broken and counts as a failed attempt.
			if err := c.helloV2Locked(); err != nil {
				if c.broken == nil {
					c.broken = fmt.Errorf("appliance: v2 renegotiation failed: %w", err)
					c.conn.Close()
				}
				continue
			}
			c.startReaderLocked()
		}
		c.reconnects++
		return nil
	}
	return fmt.Errorf("appliance: reconnect attempts exhausted: %w", c.broken)
}

// exchange runs one complete protocol exchange (round trip plus any
// payload reads) under the client lock, with the per-roundtrip deadline
// armed and — when the connection breaks mid-op and MaxReconnects allows —
// a redial-and-retry envelope around it.
func (c *Client) exchange(op func() error) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if c.closed {
			return net.ErrClosed
		}
		if c.broken != nil {
			if c.opts.MaxReconnects <= 0 {
				return fmt.Errorf("%w: %w", ErrBrokenConn, c.broken)
			}
			if rerr := c.reconnectLocked(); rerr != nil {
				return fmt.Errorf("%w: %w", ErrBrokenConn, rerr)
			}
		}
		if c.opts.Timeout > 0 {
			c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		}
		err := op()
		if c.broken == nil || attempt >= c.opts.MaxReconnects {
			return err
		}
		// Transport failure with retry budget left: loop to redial and
		// replay the op on the fresh connection.
	}
}

// RemoteError is a server-side failure reported over the protocol.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "appliance: remote: " + e.Msg }

// roundTrip sends a frame (header and payload coalesced into one buffered
// write) and reads the status byte; on server error it consumes and
// returns the message. Transport errors break the client.
func (c *Client) roundTrip(h header, writePayload []byte) error {
	if c.broken != nil {
		return fmt.Errorf("%w: %w", ErrBrokenConn, c.broken)
	}
	h.encode(c.hdr[:])
	if _, err := c.bw.Write(c.hdr[:]); err != nil {
		return c.fail(err)
	}
	if len(writePayload) > 0 {
		if _, err := c.bw.Write(writePayload); err != nil {
			return c.fail(err)
		}
	}
	if err := c.bw.Flush(); err != nil {
		return c.fail(err)
	}
	var status [1]byte
	if _, err := io.ReadFull(c.br, status[:]); err != nil {
		return c.fail(err)
	}
	switch status[0] {
	case statusOK:
		return nil
	case statusErr:
	default:
		return c.fail(fmt.Errorf("%w: bad status 0x%02x", ErrProtocol, status[0]))
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
		return c.fail(err)
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(c.br, msg); err != nil {
		return c.fail(err)
	}
	if string(msg) == ErrServerBusy.Error() {
		// The server turned this connection away at its MaxConns limit and
		// is closing it: break proactively (a later redial may find a free
		// slot) and surface the sentinel rather than an opaque RemoteError.
		return c.fail(ErrServerBusy)
	}
	return &RemoteError{Msg: string(msg)}
}

// ErrIDRange reports a server or volume id that does not fit the wire
// format's uint16 fields. Without this check the cast below would wrap —
// server 65536 would silently address server 0's blocks.
var ErrIDRange = errors.New("appliance: server/volume id out of range")

// checkIDs validates ids client-side before they are narrowed to uint16.
// The appliance additionally enforces its own (tighter) block.MaxServers/
// MaxVolumes limits server-side.
func checkIDs(server, volume int) error {
	if server < 0 || server > 0xFFFF || volume < 0 || volume > 0xFFFF {
		return fmt.Errorf("%w: server=%d volume=%d", ErrIDRange, server, volume)
	}
	return nil
}

// ReadAt reads len(p) bytes from the remote volume at off.
func (c *Client) ReadAt(server, volume int, p []byte, off uint64) error {
	if len(p) > MaxIOBytes {
		return fmt.Errorf("%w: read of %d bytes exceeds limit", ErrProtocol, len(p))
	}
	if err := checkIDs(server, volume); err != nil {
		return err
	}
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto == ProtocolV2 {
		return c.do2(headerV2{op: OpRead, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))},
			nil, &pendingOp{op: OpRead, read: p})
	}
	h := header{op: OpRead, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))}
	return c.exchange(func() error {
		if err := c.roundTrip(h, nil); err != nil {
			return err
		}
		if _, err := io.ReadFull(c.br, p); err != nil {
			return c.fail(err)
		}
		return nil
	})
}

// WriteAt writes p to the remote volume at off.
func (c *Client) WriteAt(server, volume int, p []byte, off uint64) error {
	if len(p) > MaxIOBytes {
		return fmt.Errorf("%w: write of %d bytes exceeds limit", ErrProtocol, len(p))
	}
	if err := checkIDs(server, volume); err != nil {
		return err
	}
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto == ProtocolV2 {
		return c.do2(headerV2{op: OpWrite, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))},
			[][]byte{p}, &pendingOp{op: OpWrite})
	}
	h := header{op: OpWrite, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))}
	return c.exchange(func() error {
		return c.roundTrip(h, p)
	})
}

// RotateEpoch forces a SieveStore-D epoch rotation on the appliance
// (no-op for a VariantC appliance).
func (c *Client) RotateEpoch() error {
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto == ProtocolV2 {
		return c.do2(headerV2{op: OpRotate}, nil, &pendingOp{op: OpRotate})
	}
	return c.exchange(func() error {
		return c.roundTrip(header{op: OpRotate}, nil)
	})
}

// Flush asks the appliance to write its dirty write-back blocks to the
// ensemble (a no-op for a write-through appliance). Flushes arriving
// within the server's group-commit window coalesce into one staged
// write-back pass. Requires a server that understands OpFlush (this
// repo's v1 servers do; the op predates nothing else).
func (c *Client) Flush() error {
	proto, err := c.protoFor()
	if err != nil {
		return err
	}
	if proto == ProtocolV2 {
		return c.do2(headerV2{op: OpFlush}, nil, &pendingOp{op: OpFlush})
	}
	return c.exchange(func() error {
		return c.roundTrip(header{op: OpFlush}, nil)
	})
}

// Invalidate drops the appliance's cached blocks in [off, off+length),
// returning how many were resident. Use after modifying the backing
// ensemble outside the appliance.
func (c *Client) Invalidate(server, volume int, off uint64, length int) (int, error) {
	if err := checkIDs(server, volume); err != nil {
		return 0, err
	}
	// length narrows to the header's u32: validate like ReadAt/WriteAt do,
	// or a negative (or >4 GiB) length would silently wrap into a bogus
	// extent.
	if length <= 0 || length > MaxIOBytes {
		return 0, fmt.Errorf("%w: invalidate of %d bytes out of range", ErrProtocol, length)
	}
	proto, err := c.protoFor()
	if err != nil {
		return 0, err
	}
	if proto == ProtocolV2 {
		p := &pendingOp{op: OpInvalidate}
		err := c.do2(headerV2{op: OpInvalidate, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(length)}, nil, p)
		return int(p.inval), err
	}
	h := header{op: OpInvalidate, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(length)}
	var dropped int
	err = c.exchange(func() error {
		if err := c.roundTrip(h, nil); err != nil {
			return err
		}
		var resp [4]byte
		if _, err := io.ReadFull(c.br, resp[:]); err != nil {
			return c.fail(err)
		}
		dropped = int(binary.BigEndian.Uint32(resp[:]))
		return nil
	})
	return dropped, err
}

// Stats fetches the appliance's cache statistics.
func (c *Client) Stats() (core.Stats, error) {
	var st core.Stats
	proto, err := c.protoFor()
	if err != nil {
		return st, err
	}
	if proto == ProtocolV2 {
		p := &pendingOp{op: OpStats}
		if err := c.do2(headerV2{op: OpStats}, nil, p); err != nil {
			return st, err
		}
		return st, json.Unmarshal(p.stats, &st)
	}
	err = c.exchange(func() error {
		if err := c.roundTrip(header{op: OpStats}, nil); err != nil {
			return err
		}
		var lenBuf [4]byte
		if _, err := io.ReadFull(c.br, lenBuf[:]); err != nil {
			return c.fail(err)
		}
		// The length prefix is untrusted input: a corrupt peer must not be
		// able to force a ~4 GiB allocation. Past the bound the stream
		// cannot be resynchronized, so the connection breaks.
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxStatsBytes {
			return c.fail(fmt.Errorf("%w: %d-byte stats payload exceeds limit", ErrProtocol, n))
		}
		data := make([]byte, n)
		if _, err := io.ReadFull(c.br, data); err != nil {
			return c.fail(err)
		}
		return json.Unmarshal(data, &st)
	})
	return st, err
}
