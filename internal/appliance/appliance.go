// Package appliance exposes a SieveStore core.Store over TCP as a
// transparent block-caching appliance — the deployment model of the paper
// (§3.3, Figure 4): servers issue block I/O to the appliance, which serves
// popular blocks from its cache and forwards the rest to the storage
// ensemble.
//
// The wire protocol is a minimal length-prefixed binary framing (the paper
// assumes iSCSI; any block protocol works, so we use the simplest one that
// exercises the same data path):
//
//	request:  magic 'S' | op u8 | server u16 | volume u16 | offset u64 | length u32 | payload
//	response: status u8 | (status==0: payload) (status==1: msgLen u16 | message)
//
// Reads carry no request payload and return `length` bytes; writes carry
// `length` bytes and return an empty payload; OpStats returns a JSON
// encoding of core.Stats prefixed by a u32 length.
package appliance

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
)

// Protocol constants.
const (
	magic = 0x53 // 'S'

	// OpRead reads length bytes.
	OpRead = 1
	// OpWrite writes the payload.
	OpWrite = 2
	// OpStats returns the appliance's core.Stats as JSON.
	OpStats = 3
	// OpRotate forces a SieveStore-D epoch rotation (no-op for VariantC).
	OpRotate = 4
	// OpInvalidate drops cached blocks in [offset, offset+length); the
	// response payload is the dropped count as a u32.
	OpInvalidate = 5

	statusOK  = 0
	statusErr = 1

	// MaxIOBytes bounds a single request's transfer size.
	MaxIOBytes = 16 << 20

	headerSize = 1 + 1 + 2 + 2 + 8 + 4
)

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("appliance: protocol error")

// header is the fixed-size request prefix.
type header struct {
	op     byte
	server uint16
	volume uint16
	offset uint64
	length uint32
}

func (h *header) encode(buf []byte) {
	buf[0] = magic
	buf[1] = h.op
	binary.BigEndian.PutUint16(buf[2:], h.server)
	binary.BigEndian.PutUint16(buf[4:], h.volume)
	binary.BigEndian.PutUint64(buf[6:], h.offset)
	binary.BigEndian.PutUint32(buf[14:], h.length)
}

func decodeHeader(buf []byte) (header, error) {
	if buf[0] != magic {
		return header{}, fmt.Errorf("%w: bad magic 0x%02x", ErrProtocol, buf[0])
	}
	h := header{
		op:     buf[1],
		server: binary.BigEndian.Uint16(buf[2:]),
		volume: binary.BigEndian.Uint16(buf[4:]),
		offset: binary.BigEndian.Uint64(buf[6:]),
		length: binary.BigEndian.Uint32(buf[14:]),
	}
	if h.length > MaxIOBytes {
		return header{}, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, h.length)
	}
	return h, nil
}

// Server serves the appliance protocol over a listener, backed by a
// core.Store.
type Server struct {
	store *core.Store

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]bool
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns a Server around st. The caller retains ownership of st
// (Close does not close the store).
func NewServer(st *core.Store) *Server {
	return &Server{store: st, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections on l until Close is called. It always returns a
// non-nil error (net.ErrClosed after a clean shutdown).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.listener = l
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Close stops the listener and all connections, and waits for handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.listener != nil {
		err = s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// serveConn handles one connection until EOF or error.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return // EOF or broken connection
		}
		h, err := decodeHeader(hdr)
		if err != nil {
			s.writeErr(conn, err)
			return
		}
		switch h.op {
		case OpRead:
			if cap(payload) < int(h.length) {
				payload = make([]byte, h.length)
			}
			buf := payload[:h.length]
			if err := s.store.ReadAt(int(h.server), int(h.volume), buf, h.offset); err != nil {
				if !s.writeErr(conn, err) {
					return
				}
				continue
			}
			if !s.writeOK(conn, buf) {
				return
			}
		case OpWrite:
			if cap(payload) < int(h.length) {
				payload = make([]byte, h.length)
			}
			buf := payload[:h.length]
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			if err := s.store.WriteAt(int(h.server), int(h.volume), buf, h.offset); err != nil {
				if !s.writeErr(conn, err) {
					return
				}
				continue
			}
			if !s.writeOK(conn, nil) {
				return
			}
		case OpStats:
			data, err := json.Marshal(s.store.Stats())
			if err != nil {
				if !s.writeErr(conn, err) {
					return
				}
				continue
			}
			var lenBuf [4]byte
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
			if !s.writeOK(conn, append(lenBuf[:], data...)) {
				return
			}
		case OpRotate:
			if err := s.store.RotateEpoch(); err != nil {
				if !s.writeErr(conn, err) {
					return
				}
				continue
			}
			if !s.writeOK(conn, nil) {
				return
			}
		case OpInvalidate:
			dropped, err := s.store.Invalidate(int(h.server), int(h.volume), h.offset, int(h.length))
			if err != nil {
				if !s.writeErr(conn, err) {
					return
				}
				continue
			}
			var resp [4]byte
			binary.BigEndian.PutUint32(resp[:], uint32(dropped))
			if !s.writeOK(conn, resp[:]) {
				return
			}
		default:
			s.writeErr(conn, fmt.Errorf("%w: unknown op %d", ErrProtocol, h.op))
			return
		}
	}
}

func (s *Server) writeOK(conn net.Conn, payload []byte) bool {
	if _, err := conn.Write([]byte{statusOK}); err != nil {
		return false
	}
	if len(payload) > 0 {
		if _, err := conn.Write(payload); err != nil {
			return false
		}
	}
	return true
}

func (s *Server) writeErr(conn net.Conn, err error) bool {
	msg := err.Error()
	if len(msg) > 65535 {
		msg = msg[:65535]
	}
	frame := make([]byte, 3+len(msg))
	frame[0] = statusErr
	binary.BigEndian.PutUint16(frame[1:], uint16(len(msg)))
	copy(frame[3:], msg)
	_, werr := conn.Write(frame)
	return werr == nil
}

// Client is a connection to an appliance Server. It is safe for concurrent
// use; requests are serialized on the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	hdr  [headerSize]byte
}

// Dial connects to an appliance at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// RemoteError is a server-side failure reported over the protocol.
type RemoteError struct{ Msg string }

// Error implements error.
func (e *RemoteError) Error() string { return "appliance: remote: " + e.Msg }

// roundTrip sends a frame and reads the status byte; on server error it
// consumes and returns the message.
func (c *Client) roundTrip(h header, writePayload []byte) error {
	h.encode(c.hdr[:])
	if _, err := c.conn.Write(c.hdr[:]); err != nil {
		return err
	}
	if len(writePayload) > 0 {
		if _, err := c.conn.Write(writePayload); err != nil {
			return err
		}
	}
	var status [1]byte
	if _, err := io.ReadFull(c.conn, status[:]); err != nil {
		return err
	}
	if status[0] == statusOK {
		return nil
	}
	var lenBuf [2]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return err
	}
	msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
	if _, err := io.ReadFull(c.conn, msg); err != nil {
		return err
	}
	return &RemoteError{Msg: string(msg)}
}

// ReadAt reads len(p) bytes from the remote volume at off.
func (c *Client) ReadAt(server, volume int, p []byte, off uint64) error {
	if len(p) > MaxIOBytes {
		return fmt.Errorf("%w: read of %d bytes exceeds limit", ErrProtocol, len(p))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := header{op: OpRead, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))}
	if err := c.roundTrip(h, nil); err != nil {
		return err
	}
	_, err := io.ReadFull(c.conn, p)
	return err
}

// WriteAt writes p to the remote volume at off.
func (c *Client) WriteAt(server, volume int, p []byte, off uint64) error {
	if len(p) > MaxIOBytes {
		return fmt.Errorf("%w: write of %d bytes exceeds limit", ErrProtocol, len(p))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h := header{op: OpWrite, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(len(p))}
	return c.roundTrip(h, p)
}

// RotateEpoch forces a SieveStore-D epoch rotation on the appliance
// (no-op for a VariantC appliance).
func (c *Client) RotateEpoch() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.roundTrip(header{op: OpRotate}, nil)
}

// Invalidate drops the appliance's cached blocks in [off, off+length),
// returning how many were resident. Use after modifying the backing
// ensemble outside the appliance.
func (c *Client) Invalidate(server, volume int, off uint64, length int) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := header{op: OpInvalidate, server: uint16(server), volume: uint16(volume), offset: off, length: uint32(length)}
	if err := c.roundTrip(h, nil); err != nil {
		return 0, err
	}
	var resp [4]byte
	if _, err := io.ReadFull(c.conn, resp[:]); err != nil {
		return 0, err
	}
	return int(binary.BigEndian.Uint32(resp[:])), nil
}

// Stats fetches the appliance's cache statistics.
func (c *Client) Stats() (core.Stats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var st core.Stats
	if err := c.roundTrip(header{op: OpStats}, nil); err != nil {
		return st, err
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(c.conn, lenBuf[:]); err != nil {
		return st, err
	}
	data := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(c.conn, data); err != nil {
		return st, err
	}
	err := json.Unmarshal(data, &st)
	return st, err
}
