package appliance

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// StripedClient shards block I/O across several appliance nodes — the §7
// scaling deployment: when one SieveStore node's drives or NICs saturate,
// the ensemble's address space is hash-striped over N appliances, each
// caching its shard's hot set.
//
// Striping is by aligned 4 KiB extent of (server, volume, offset), so every
// block of an extent lands on the same node and the common page-sized
// requests never split. Larger requests are split at extent boundaries.
type StripedClient struct {
	nodes []*Client
}

// stripeBytes is the striping granularity.
const stripeBytes = 4096

// NewStripedClient dials every address and returns the striped client.
// On failure all already-opened connections are closed.
func NewStripedClient(addrs ...string) (*StripedClient, error) {
	if len(addrs) == 0 {
		return nil, errors.New("appliance: striped client needs ≥1 node")
	}
	sc := &StripedClient{}
	for _, addr := range addrs {
		c, err := Dial(addr)
		if err != nil {
			sc.Close()
			return nil, fmt.Errorf("appliance: dialing %s: %w", addr, err)
		}
		sc.nodes = append(sc.nodes, c)
	}
	return sc, nil
}

// Nodes returns the stripe width.
func (sc *StripedClient) Nodes() int { return len(sc.nodes) }

// Close closes every node connection.
func (sc *StripedClient) Close() error {
	var first error
	for _, c := range sc.nodes {
		if c == nil {
			continue
		}
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// node selects the appliance for an extent.
func (sc *StripedClient) node(server, volume int, off uint64) *Client {
	x := uint64(server)<<40 ^ uint64(volume)<<32 ^ off/stripeBytes
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return sc.nodes[x%uint64(len(sc.nodes))]
}

// forEachExtent splits [off, off+n) at extent boundaries.
func forEachExtent(off uint64, n int, fn func(off uint64, n int) error) error {
	for n > 0 {
		within := int(off % stripeBytes)
		chunk := stripeBytes - within
		if chunk > n {
			chunk = n
		}
		if err := fn(off, chunk); err != nil {
			return err
		}
		off += uint64(chunk)
		n -= chunk
	}
	return nil
}

// ReadAt reads len(p) bytes, splitting across nodes at extent boundaries.
func (sc *StripedClient) ReadAt(server, volume int, p []byte, off uint64) error {
	base := off
	return forEachExtent(off, len(p), func(o uint64, n int) error {
		buf := p[o-base : o-base+uint64(n)]
		return sc.node(server, volume, o).ReadAt(server, volume, buf, o)
	})
}

// WriteAt writes p, splitting across nodes at extent boundaries.
func (sc *StripedClient) WriteAt(server, volume int, p []byte, off uint64) error {
	base := off
	return forEachExtent(off, len(p), func(o uint64, n int) error {
		buf := p[o-base : o-base+uint64(n)]
		return sc.node(server, volume, o).WriteAt(server, volume, buf, o)
	})
}

// Stats sums the cache statistics of all nodes. Gauges (CachedBlocks,
// CapacityBlocks, DirtyBlocks, SieveTrackedBlocks) add meaningfully because
// each node caches a disjoint shard.
func (sc *StripedClient) Stats() (core.Stats, error) {
	var total core.Stats
	for _, c := range sc.nodes {
		s, err := c.Stats()
		if err != nil {
			return total, err
		}
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.ReadHits += s.ReadHits
		total.WriteHits += s.WriteHits
		total.AllocWrites += s.AllocWrites
		total.Evictions += s.Evictions
		total.EpochMoves += s.EpochMoves
		total.Epochs += s.Epochs
		total.BackendReads += s.BackendReads
		total.BackendWrites += s.BackendWrites
		total.CachedBlocks += s.CachedBlocks
		total.CapacityBlocks += s.CapacityBlocks
		total.DirtyBlocks += s.DirtyBlocks
		total.FlushWrites += s.FlushWrites
		total.SieveTrackedBlocks += s.SieveTrackedBlocks
		total.BackendBytesRead += s.BackendBytesRead
		total.BackendBytesWritten += s.BackendBytesWritten
		total.CacheBytesServed += s.CacheBytesServed
		total.BackendBytesServedRead += s.BackendBytesServedRead
		total.CoalescedReads += s.CoalescedReads
		total.RotateFailures += s.RotateFailures
		total.ResetFailures += s.ResetFailures
		total.FlushErrors += s.FlushErrors
		total.BypassReads += s.BypassReads
		total.BypassWrites += s.BypassWrites
		total.DegradedEnters += s.DegradedEnters
		total.DegradedExits += s.DegradedExits
		total.CacheFaults += s.CacheFaults
		total.SpillDisables += s.SpillDisables
		total.PinnedReads += s.PinnedReads
		total.GroupCommits += s.GroupCommits
		total.CoalescedFlushes += s.CoalescedFlushes
		total.Degraded = total.Degraded || s.Degraded
		total.ReadLatency = total.ReadLatency.Add(s.ReadLatency)
		total.WriteLatency = total.WriteLatency.Add(s.WriteLatency)
	}
	return total, nil
}

var _ core.Backend = (*StripedClient)(nil) // a striped client is itself a Backend
