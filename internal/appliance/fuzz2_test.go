package appliance

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"io"
	"net"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/block"
)

// FuzzFrameRoundTripV2 is FuzzFrameRoundTrip for the tagged v2 header:
// every field combination must survive encode/decode unchanged, oversize
// lengths must be rejected, and a corrupted magic must fail decode.
func FuzzFrameRoundTripV2(f *testing.F) {
	f.Add(byte(OpRead), uint32(0), uint16(0), uint16(0), uint64(0), uint32(512))
	f.Add(byte(OpWriteV), uint32(1<<31), uint16(3), uint16(1), uint64(1<<40), uint32(4096))
	f.Add(byte(OpHello), uint32(0xFFFFFFFF), uint16(65535), uint16(65535), uint64(1<<63), uint32(MaxIOBytes))
	f.Add(byte(OpReadV), uint32(7), uint16(0), uint16(0), uint64(0), uint32(MaxIOBytes+1))
	f.Fuzz(func(t *testing.T, op byte, tag uint32, server, volume uint16, offset uint64, length uint32) {
		h := headerV2{op: op, tag: tag, server: server, volume: volume, offset: offset, length: length}
		var buf [headerSizeV2]byte
		h.encode(buf[:])
		if buf[0] != magic {
			t.Fatalf("encode did not stamp magic: % x", buf)
		}
		if got := binary.BigEndian.Uint32(buf[2:6]); got != tag {
			t.Fatalf("tag field landed wrong: %d != %d", got, tag)
		}
		got, err := decodeHeaderV2(buf[:])
		if length > MaxIOBytes {
			if err == nil {
				t.Fatalf("oversize length %d decoded: %+v", length, got)
			}
			return
		}
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if got != h {
			t.Fatalf("round trip changed header: %+v -> %+v", h, got)
		}
		buf[0] ^= 0x01
		if _, err := decodeHeaderV2(buf[:]); err == nil {
			t.Fatal("bad magic accepted")
		}
	})
}

// fuzzExpectV2 is one predicted tagged response of the v2 oracle.
type fuzzExpectV2 struct {
	tag     uint32
	op      byte
	length  uint32 // OpRead payload bytes; OpReadV total data bytes
	mustErr bool   // structural/id failure: the frame must be statusErr
}

// simulateRequestsV2 mirrors serveConnV2's framing rules. closerTag is
// non-nil when the stream terminates with an error frame (bad header,
// unknown op); the server guarantees that frame arrives after every other
// response. loose reports duplicate tags among the requests — responses
// then can't be attributed, so the driver only drains the stream.
func simulateRequestsV2(data []byte) (exps []fuzzExpectV2, closerTag *uint32, loose bool) {
	pos := 0
	seen := make(map[uint32]bool)
	for {
		if len(data)-pos < headerSizeV2 {
			return exps, nil, loose // EOF mid-header: responses then clean close
		}
		hdr := data[pos : pos+headerSizeV2]
		pos += headerSizeV2
		rawTag := binary.BigEndian.Uint32(hdr[2:6])
		h, err := decodeHeaderV2(hdr)
		if err != nil {
			return exps, &rawTag, loose
		}
		var payload []byte
		switch h.op {
		case OpWrite, OpReadV, OpWriteV:
			if len(data)-pos < int(h.length) {
				return exps, nil, loose // conn closes mid-payload; in-flight responses still arrive
			}
			payload = data[pos : pos+int(h.length)]
			pos += int(h.length)
		}
		switch h.op {
		case OpRead, OpWrite, OpStats, OpRotate, OpInvalidate, OpFlush, OpReadV, OpWriteV:
		default:
			return exps, &rawTag, loose // unknown op (incl. redundant HELLO)
		}
		if seen[h.tag] {
			loose = true
		}
		seen[h.tag] = true
		exp := fuzzExpectV2{tag: h.tag, op: h.op}
		switch h.op {
		case OpRead, OpWrite, OpInvalidate:
			if int(h.server) >= block.MaxServers || int(h.volume) >= block.MaxVolumes {
				exp.mustErr = true
			} else if h.op == OpRead {
				exp.length = h.length
			}
		case OpReadV, OpWriteV:
			tab, rest, total, verr := decodeExtentTable(payload)
			switch {
			case verr != nil:
				exp.mustErr = true
			case h.op == OpReadV && len(rest) != 0:
				exp.mustErr = true
			case h.op == OpWriteV && len(rest) != total:
				exp.mustErr = true
			default:
				for _, e := range tab {
					if int(e.server) >= block.MaxServers || int(e.volume) >= block.MaxVolumes {
						exp.mustErr = true
						break
					}
				}
				if !exp.mustErr && h.op == OpReadV {
					exp.length = uint32(total)
				}
			}
		}
		exps = append(exps, exp)
	}
}

// verifyV2Responses matches the server's tagged responses against the v2
// oracle: every predicted response must arrive exactly once (any order),
// the closer error frame — if any — strictly last, then EOF.
func verifyV2Responses(t *testing.T, br *bufio.Reader, data []byte) {
	t.Helper()
	exps, closerTag, loose := simulateRequestsV2(data)
	if loose {
		// Duplicate tags: responses are well-formed but unattributable.
		// Drain to prove the server neither hangs nor panics.
		io.Copy(io.Discard, br)
		return
	}
	readErrBody := func() {
		var lenBuf [2]byte
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			t.Fatalf("v2 error frame length: %v", err)
		}
		msg := make([]byte, binary.BigEndian.Uint16(lenBuf[:]))
		if _, err := io.ReadFull(br, msg); err != nil {
			t.Fatalf("v2 error frame message: %v", err)
		}
		if !utf8.Valid(msg) {
			t.Fatalf("v2 error message is not UTF-8: %q", msg)
		}
	}
	pend := make(map[uint32]fuzzExpectV2, len(exps))
	for _, e := range exps {
		pend[e.tag] = e
	}
	for len(pend) > 0 {
		var head [respHeadV2]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			t.Fatalf("expected %d more v2 responses, got %v", len(pend), err)
		}
		if head[0] != respMagic {
			t.Fatalf("bad v2 response magic 0x%02x", head[0])
		}
		tag := binary.BigEndian.Uint32(head[1:5])
		e, ok := pend[tag]
		if !ok {
			t.Fatalf("response for unexpected tag %d", tag)
		}
		delete(pend, tag)
		switch head[5] {
		case statusOK:
			if e.mustErr {
				t.Fatalf("op %d tag %d answered OK, oracle demands an error frame", e.op, e.tag)
			}
			switch e.op {
			case OpRead, OpReadV:
				if _, err := io.CopyN(io.Discard, br, int64(e.length)); err != nil {
					t.Fatalf("op %d OK payload (%d bytes): %v", e.op, e.length, err)
				}
			case OpStats:
				var lenBuf [4]byte
				if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
					t.Fatalf("v2 stats length prefix: %v", err)
				}
				body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
				if _, err := io.ReadFull(br, body); err != nil {
					t.Fatalf("v2 stats body: %v", err)
				}
				if !json.Valid(body) {
					t.Fatalf("v2 stats body is not JSON: %q", body)
				}
			case OpInvalidate:
				if _, err := io.CopyN(io.Discard, br, 4); err != nil {
					t.Fatalf("invalidate count: %v", err)
				}
			}
		case statusErr:
			readErrBody()
		default:
			t.Fatalf("op %d: invalid v2 status byte %d", e.op, head[5])
		}
	}
	if closerTag != nil {
		var head [respHeadV2]byte
		if _, err := io.ReadFull(br, head[:]); err != nil {
			t.Fatalf("expected closer error frame, got %v", err)
		}
		if head[0] != respMagic || head[5] != statusErr {
			t.Fatalf("closer frame malformed: magic 0x%02x status %d", head[0], head[5])
		}
		if tag := binary.BigEndian.Uint32(head[1:5]); tag != *closerTag {
			t.Fatalf("closer frame tag %d, want %d", tag, *closerTag)
		}
		readErrBody()
	}
	if b, err := br.ReadByte(); err == nil {
		t.Fatalf("unexpected trailing v2 response byte 0x%02x", b)
	}
}

// FuzzClientResponse feeds arbitrary bytes to the client as the server's
// half of the exchange: whatever a corrupt or malicious peer sends, the
// client must return promptly (an error is fine) without panicking or
// allocating unbounded memory from attacker-controlled length prefixes.
func FuzzClientResponse(f *testing.F) {
	f.Add(false, byte(0), []byte{statusOK})
	f.Add(false, byte(1), []byte{statusOK, 0xFF, 0xFF, 0xFF, 0xFF}) // huge stats length
	f.Add(false, byte(2), []byte{statusErr, 0x00, 0x02, 'n', 'o'})  // error frame
	f.Add(false, byte(0), []byte{0x07})                             // invalid status
	f.Add(true, byte(0), []byte{respMagic, 0, 0, 0, 0, statusOK})   // v2: wrong tag
	f.Add(true, byte(1), []byte{respMagic, 0, 0, 0, 1, statusOK, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(true, byte(0), []byte{0x00, 0x00, 0x00, 0x00, 0x01, statusOK}) // v2: bad magic
	f.Add(true, byte(2), []byte{})                                       // v2: EOF before any frame
	f.Fuzz(func(t *testing.T, v2 bool, opSel byte, data []byte) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go func() {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			hdr := make([]byte, headerSize)
			if v2 {
				if _, err := io.ReadFull(br, hdr); err != nil {
					return // HELLO
				}
				if _, err := conn.Write([]byte{statusOK, ProtocolV2}); err != nil {
					return
				}
				h2 := make([]byte, headerSizeV2)
				if _, err := io.ReadFull(br, h2); err != nil {
					return // the op, v2-framed
				}
			} else if _, err := io.ReadFull(br, hdr); err != nil {
				return
			}
			conn.Write(data)
		}()
		proto := ProtocolV1
		if v2 {
			proto = ProtocolAuto
		}
		c, err := DialWith(l.Addr().String(), DialOptions{Protocol: proto, Timeout: 2 * time.Second})
		if err != nil {
			t.Skip("dial failed")
		}
		defer c.Close()
		// Any outcome is legal; returning (bounded, panic-free) is the test.
		switch opSel % 3 {
		case 0:
			c.ReadAt(0, 0, make([]byte, 512), 0)
		case 1:
			c.Stats()
		case 2:
			c.Invalidate(0, 0, 0, 512)
		}
	})
}
