package appliance

import (
	"bytes"
	"math/rand"
	"net"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// startNode launches one appliance node over a SHARED backend — all nodes
// front the same ensemble, each caching its shard.
func startNode(t *testing.T, be core.Backend) string {
	t.Helper()
	st, err := core.Open(be, core.Options{
		CacheBytes: 512 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		<-done
		st.Close()
	})
	return l.Addr().String()
}

func TestStripedClientRoundTrip(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	addrs := []string{startNode(t, be), startNode(t, be), startNode(t, be)}
	sc, err := NewStripedClient(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if sc.Nodes() != 3 {
		t.Fatal("node count")
	}
	// A large write spanning many extents, read back through the stripes.
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 64*4096)
	rng.Read(data)
	if err := sc.WriteAt(0, 0, data, 12288); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := sc.ReadAt(0, 0, got, 12288); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped round trip mismatch")
	}
	// The backend (shared) has the full data too (write-through).
	if err := be.ReadAt(0, 0, got, 12288); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("backend missing striped write")
	}
}

func TestStripedClientShardsLoad(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	addrs := []string{startNode(t, be), startNode(t, be)}
	sc, err := NewStripedClient(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	buf := make([]byte, 4096)
	for i := uint64(0); i < 256; i++ {
		if err := sc.ReadAt(0, 0, buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	// Both nodes must have seen a meaningful share of the extents.
	a, err := sc.nodes[0].Stats()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sc.nodes[1].Stats()
	if err != nil {
		t.Fatal(err)
	}
	if a.Reads == 0 || b.Reads == 0 {
		t.Fatalf("stripe imbalance: %d vs %d", a.Reads, b.Reads)
	}
	total := a.Reads + b.Reads
	if total != 256*8 {
		t.Fatalf("total reads = %d, want 2048 blocks", total)
	}
	if a.Reads < total/4 || b.Reads < total/4 {
		t.Errorf("stripe skew: %d vs %d", a.Reads, b.Reads)
	}
	// Aggregated stats match the per-node sum.
	agg, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if agg.Reads != total {
		t.Errorf("aggregate reads = %d", agg.Reads)
	}
}

func TestStripedClientStickyRouting(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	addrs := []string{startNode(t, be), startNode(t, be), startNode(t, be), startNode(t, be)}
	sc, err := NewStripedClient(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	// Repeated access to one extent must always route to the same node, so
	// the block gets hot there (cache admission needs stable routing).
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		if err := sc.ReadAt(0, 0, buf, 81920); err != nil {
			t.Fatal(err)
		}
	}
	agg, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// With sticky routing and a T1=1/T2=1 sieve, the extent is admitted
	// after the first miss and the remaining reads hit.
	if agg.ReadHits < 8*2 {
		t.Errorf("hits = %d; routing not sticky?", agg.ReadHits)
	}
}

func TestStripedClientErrors(t *testing.T) {
	if _, err := NewStripedClient(); err == nil {
		t.Error("empty node list accepted")
	}
	if _, err := NewStripedClient("127.0.0.1:1"); err == nil {
		t.Error("dead node accepted")
	}
}

func TestHierarchicalCachingOverStripes(t *testing.T) {
	// StripedClient satisfies core.Backend, so a local SieveStore can cache
	// over a striped fleet of remote SieveStore appliances — a two-level
	// hierarchy (per-rack cache in front of the shared appliance tier).
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	addrs := []string{startNode(t, be), startNode(t, be)}
	sc, err := NewStripedClient(addrs...)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	local, err := core.Open(sc, core.Options{
		CacheBytes: 64 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 10, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()

	// Seed data through the hierarchy and read it back repeatedly.
	data := bytes.Repeat([]byte{0x3C}, 4096)
	if err := local.WriteAt(0, 0, data, 8192); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for i := 0; i < 4; i++ {
		if err := local.ReadAt(0, 0, buf, 8192); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("hierarchy corrupted data")
	}
	// The local tier absorbed the repeats: the remote tier saw only the
	// first round of traffic.
	localStats := local.Stats()
	if localStats.ReadHits == 0 {
		t.Error("local tier never hit")
	}
	remote, err := sc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.Reads >= localStats.Reads {
		t.Errorf("remote tier saw %d reads, local issued %d — hierarchy not absorbing",
			remote.Reads, localStats.Reads)
	}
	// The origin backend holds the written data (both tiers write through).
	if err := be.ReadAt(0, 0, buf, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Error("origin missing data")
	}
}
