package appliance

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
	"unicode/utf8"

	"repro/internal/block"
	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// startLatencyServer is startServer with Options.TrackLatency enabled.
func startLatencyServer(t *testing.T) *Client {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes:   256 * block.Size,
		SieveC:       sieve.CConfig{IMCTSize: 1 << 16, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
		TrackLatency: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		client.Close()
		srv.Close()
		<-done
		st.Close()
	})
	return client
}

// TestClientBreaksOnTransportError: a mid-frame transport failure leaves
// the wire position unknown, so the client must refuse further use instead
// of misparsing stale bytes (the pre-fix behavior).
func TestClientBreaksOnTransportError(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fake appliance: answer the first read with an OK status but only
	// half the payload, then slam the connection.
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		hdr := make([]byte, headerSize)
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		h, _ := decodeHeader(hdr)
		conn.Write([]byte{statusOK})
		conn.Write(make([]byte, h.length/2))
		conn.Close()
	}()

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 1024)
	if err := c.ReadAt(0, 0, buf, 0); err == nil {
		t.Fatal("truncated response did not error")
	} else if errors.Is(err, ErrBrokenConn) {
		t.Fatalf("first failure should be the transport error itself, got %v", err)
	}
	// Every subsequent call must fail fast with the distinct broken error.
	if err := c.WriteAt(0, 0, make([]byte, 512), 0); !errors.Is(err, ErrBrokenConn) {
		t.Errorf("WriteAt after transport error: want ErrBrokenConn, got %v", err)
	}
	if _, err := c.Stats(); !errors.Is(err, ErrBrokenConn) {
		t.Errorf("Stats after transport error: want ErrBrokenConn, got %v", err)
	}
	if _, err := c.Invalidate(0, 0, 0, 512); !errors.Is(err, ErrBrokenConn) {
		t.Errorf("Invalidate after transport error: want ErrBrokenConn, got %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("Close of broken client: %v", err)
	}
}

// TestServeRejectsDoubleServe: a second Serve call must not clobber the
// first listener.
func TestServeRejectsDoubleServe(t *testing.T) {
	srv := NewServer(nil)
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l1) }()
	time.Sleep(10 * time.Millisecond)
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := srv.Serve(l2); !errors.Is(err, ErrAlreadyServing) {
		t.Errorf("second Serve: want ErrAlreadyServing, got %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve after Close: want net.ErrClosed, got %v", err)
	}
	// A closed server refuses to serve again.
	if err := srv.Serve(l2); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Serve on closed server: want net.ErrClosed, got %v", err)
	}
}

// TestWriteErrTruncatesAtRuneBoundary: the 65535-byte error-message cap
// must not split a multi-byte UTF-8 sequence.
func TestWriteErrTruncatesAtRuneBoundary(t *testing.T) {
	// 3-byte runes aligned so the cap lands mid-rune: 65535 = 3*21845, so
	// prefix with one ASCII byte to misalign.
	long := "x" + strings.Repeat("世", 25000) // 1 + 75000 bytes
	got := truncateErrMsg(long, maxErrMsg)
	if len(got) > maxErrMsg {
		t.Fatalf("truncated to %d bytes, cap %d", len(got), maxErrMsg)
	}
	if !utf8.ValidString(got) {
		t.Error("truncation produced invalid UTF-8")
	}
	if len(got) < maxErrMsg-utf8.UTFMax {
		t.Errorf("over-truncated: %d bytes", len(got))
	}
	if s := truncateErrMsg("short", maxErrMsg); s != "short" {
		t.Errorf("short message altered: %q", s)
	}
	// End-to-end: a remote error built from a huge message arrives valid.
	client, _, _ := startServer(t)
	big := make([]byte, 512)
	err := client.WriteAt(7, 0, big, 0) // unknown volume → remote error
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if !utf8.ValidString(remote.Msg) {
		t.Error("remote error message is invalid UTF-8")
	}
}

// TestOutOfRangeIDsRejectedNotPanic: server/volume IDs that don't fit the
// packed block.Key must come back as a remote error, not panic the daemon
// (block.MakeKey panics on out-of-range components). Writes must also stay
// frame-aligned: the rejected payload is drained, not left on the wire.
func TestOutOfRangeIDsRejectedNotPanic(t *testing.T) {
	client, _, _ := startServer(t)
	var remote *RemoteError
	if err := client.ReadAt(block.MaxServers, 0, make([]byte, 512), 0); !errors.As(err, &remote) {
		t.Fatalf("out-of-range server read: want RemoteError, got %v", err)
	}
	if err := client.WriteAt(0, block.MaxVolumes+3, make([]byte, 4096), 0); !errors.As(err, &remote) {
		t.Fatalf("out-of-range volume write: want RemoteError, got %v", err)
	}
	// The connection survived both rejections and is still aligned.
	if err := client.ReadAt(0, 0, make([]byte, 512), 0); err != nil {
		t.Fatalf("connection wedged after out-of-range rejections: %v", err)
	}
}

// TestApplianceConcurrentStress drives one appliance with many concurrent
// clients issuing overlapping reads, writes, invalidates and stats calls
// against a shared store — the satellite -race stress test. Each client
// owns a disjoint block range and checks read-your-writes within it.
func TestApplianceConcurrentStress(t *testing.T) {
	const (
		clients = 8
		ops     = 150
		span    = 32 // 4 KiB chunks per client
	)
	client0, _, _ := startServer(t)
	addr := client0.conn.RemoteAddr().String()

	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			base := uint64(g*span) * 4096
			payload := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			buf := make([]byte, 4096)
			written := make(map[uint64]bool)
			for i := 0; i < ops; i++ {
				off := base + uint64((i*11)%span)*4096
				var err error
				switch i % 4 {
				case 0, 1:
					err = c.WriteAt(0, 0, payload, off)
					if err == nil {
						written[off] = true
					}
				case 2:
					err = c.ReadAt(0, 0, buf, off)
					if err == nil && written[off] && !bytes.Equal(buf, payload) {
						t.Errorf("client %d: stale read at %d", g, off)
						return
					}
				case 3:
					if i%8 == 3 {
						_, err = c.Invalidate(0, 0, off, 4096)
					} else {
						_, err = c.Stats()
					}
				}
				if err != nil {
					t.Errorf("client %d op %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st, err := client0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CachedBlocks > st.CapacityBlocks {
		t.Errorf("occupancy %d exceeds capacity %d", st.CachedBlocks, st.CapacityBlocks)
	}
	if st.Hits() > st.Reads+st.Writes {
		t.Errorf("hits %d exceed accesses %d", st.Hits(), st.Reads+st.Writes)
	}
}

// TestApplianceShardedStore runs the wire protocol against a Shards=8
// store: many clients hammering overlapping ranges, with one goroutine
// issuing cross-shard Flush/Invalidate admin calls throughout. Exercises
// the per-shard reservation and staged cross-shard protocols end-to-end
// (per-connection handlers run concurrently, so shard locks really
// interleave under -race).
func TestApplianceShardedStore(t *testing.T) {
	be := store.NewMem()
	be.AddVolume(0, 0, 1<<24)
	st, err := core.Open(be, core.Options{
		CacheBytes: 256 * block.Size,
		Shards:     8,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 16, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", st.Shards())
	}
	srv := NewServer(st)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Serve(l)
	}()
	defer func() {
		srv.Close()
		<-done
		st.Close()
	}()
	addr := l.Addr().String()

	const (
		clients = 6
		ops     = 200
		span    = 24 // 4 KiB chunks per client — multi-block ops cross shards
	)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			base := uint64(g*span) * 4096
			payload := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			buf := make([]byte, 4096)
			written := make(map[uint64]bool)
			for i := 0; i < ops; i++ {
				off := base + uint64((i*7)%span)*4096
				switch i % 3 {
				case 0:
					if err := c.WriteAt(0, 0, payload, off); err != nil {
						t.Errorf("client %d write: %v", g, err)
						return
					}
					written[off] = true
				default:
					if err := c.ReadAt(0, 0, buf, off); err != nil {
						t.Errorf("client %d read: %v", g, err)
						return
					}
					if written[off] && !bytes.Equal(buf, payload) {
						t.Errorf("client %d: stale read at %d", g, off)
						return
					}
				}
			}
		}(g)
	}
	// Admin churn: flushes and invalidates of a range nobody asserts on,
	// racing the data path across all shards.
	adminStop := make(chan struct{})
	var adminWg sync.WaitGroup
	adminWg.Add(1)
	go func() {
		defer adminWg.Done()
		c, err := Dial(addr)
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		scratch := uint64(clients*span) * 4096
		for i := 0; ; i++ {
			select {
			case <-adminStop:
				return
			default:
			}
			if i%2 == 0 {
				if _, err := c.Invalidate(0, 0, scratch, 16*4096); err != nil {
					t.Errorf("admin invalidate: %v", err)
					return
				}
			} else if _, err := c.Stats(); err != nil {
				t.Errorf("admin stats: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	close(adminStop)
	adminWg.Wait()

	// Post-race invariants over the merged per-shard stats.
	s := st.Stats()
	if s.CachedBlocks > s.CapacityBlocks {
		t.Errorf("occupancy %d exceeds capacity %d", s.CachedBlocks, s.CapacityBlocks)
	}
	if s.Hits() > s.Reads+s.Writes {
		t.Errorf("hits %d exceed accesses %d", s.Hits(), s.Reads+s.Writes)
	}
	if s.FlushErrors != 0 {
		t.Errorf("flush errors against Mem backend: %d", s.FlushErrors)
	}
	// Every written block must be durable in cache or backend: a final
	// read-back through a fresh client sees each client's last pattern.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 4096)
	for g := 0; g < clients; g++ {
		off := uint64(g*span) * 4096 // offset 0 is written by every client's op 0
		if err := c.ReadAt(0, 0, buf, off); err != nil {
			t.Fatal(err)
		}
		want := byte(g + 1)
		for i, b := range buf {
			if b != want {
				t.Fatalf("client %d block: byte %d = %#x, want %#x", g, i, b, want)
			}
		}
	}
}

// TestStatsCarriesLatencyOverWire: Options.TrackLatency counters must
// survive the OpStats JSON round trip.
func TestStatsCarriesLatencyOverWire(t *testing.T) {
	client := startLatencyServer(t)
	for i := 0; i < 4; i++ {
		if err := client.WriteAt(0, 0, make([]byte, 512), uint64(i)*512); err != nil {
			t.Fatal(err)
		}
		if err := client.ReadAt(0, 0, make([]byte, 512), uint64(i)*512); err != nil {
			t.Fatal(err)
		}
	}
	remote, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if remote.ReadLatency.Ops != 4 || remote.WriteLatency.Ops != 4 {
		t.Errorf("latency ops over wire = %d/%d, want 4/4 (%+v)",
			remote.ReadLatency.Ops, remote.WriteLatency.Ops, remote.ReadLatency)
	}
	if remote.ReadLatency.Mean() < 0 || remote.ReadLatency.MaxNanos < remote.ReadLatency.Mean().Nanoseconds() {
		t.Errorf("inconsistent latency snapshot: %+v", remote.ReadLatency)
	}
}
