package analysis

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/trace"
)

func key(n uint64) block.Key { return block.MakeKey(0, 0, n) }

// fill records block i exactly counts[i] times.
func fill(c *Counter, counts ...int) {
	for i, n := range counts {
		for j := 0; j < n; j++ {
			c.Add(key(uint64(i)))
		}
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	fill(c, 5, 1, 3)
	if c.Total() != 9 || c.Unique() != 3 {
		t.Fatalf("total=%d unique=%d", c.Total(), c.Unique())
	}
	if c.Count(key(0)) != 5 || c.Count(key(99)) != 0 {
		t.Error("Count wrong")
	}
	got := c.SortedCounts()
	want := []int64{5, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedCounts = %v", got)
		}
	}
}

func TestAddRequestExpandsBlocks(t *testing.T) {
	c := NewCounter()
	req := block.Request{Server: 1, Volume: 2, Offset: 1024, Length: 1536}
	c.AddRequest(&req)
	if c.Total() != 3 || c.Unique() != 3 {
		t.Fatalf("total=%d unique=%d", c.Total(), c.Unique())
	}
	if c.Count(block.MakeKey(1, 2, 2)) != 1 || c.Count(block.MakeKey(1, 2, 4)) != 1 {
		t.Error("wrong blocks counted")
	}
}

func TestAddTrace(t *testing.T) {
	reqs := []block.Request{
		{Time: 1, Offset: 0, Length: 512},
		{Time: 2, Offset: 0, Length: 512},
	}
	c := NewCounter()
	if err := c.AddTrace(trace.NewSliceReader(reqs)); err != nil {
		t.Fatal(err)
	}
	if c.Total() != 2 || c.Unique() != 1 {
		t.Errorf("total=%d unique=%d", c.Total(), c.Unique())
	}
}

func TestTopFractionAndShare(t *testing.T) {
	c := NewCounter()
	// 100 blocks: block 0 has 100 accesses, the rest 1 each.
	counts := make([]int, 100)
	counts[0] = 100
	for i := 1; i < 100; i++ {
		counts[i] = 1
	}
	fill(c, counts...)
	top := c.TopFraction(0.01)
	if len(top) != 1 || top[0] != key(0) {
		t.Fatalf("TopFraction = %v", top)
	}
	if got := c.TopShare(0.01); math.Abs(got-100.0/199.0) > 1e-9 {
		t.Errorf("TopShare(1%%) = %v", got)
	}
	if got := c.TopShare(1.0); got != 1 {
		t.Errorf("TopShare(100%%) = %v", got)
	}
	if got := c.CountLE(1); math.Abs(got-0.99) > 1e-9 {
		t.Errorf("CountLE(1) = %v", got)
	}
	if got := c.CountLE(100); got != 1 {
		t.Errorf("CountLE(100) = %v", got)
	}
}

func TestTopFractionDeterministicTies(t *testing.T) {
	// All equal counts: top set must still be deterministic (key order).
	c1, c2 := NewCounter(), NewCounter()
	for i := 9; i >= 0; i-- {
		c1.Add(key(uint64(i)))
	}
	for i := 0; i < 10; i++ {
		c2.Add(key(uint64(i)))
	}
	a, b := c1.TopFraction(0.3), c2.TopFraction(0.3)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking not deterministic")
		}
	}
}

func TestBins(t *testing.T) {
	c := NewCounter()
	// 10 blocks with counts 10,9,...,1.
	counts := make([]int, 10)
	for i := range counts {
		counts[i] = 10 - i
	}
	fill(c, counts...)
	bins := c.Bins(5)
	if len(bins) != 5 {
		t.Fatalf("got %d bins", len(bins))
	}
	// First bin holds the two hottest blocks: avg (10+9)/2.
	if math.Abs(bins[0].AvgCount-9.5) > 1e-9 || bins[0].MaxCount != 10 {
		t.Errorf("bin0 = %+v", bins[0])
	}
	if math.Abs(bins[4].AvgCount-1.5) > 1e-9 {
		t.Errorf("bin4 = %+v", bins[4])
	}
	if math.Abs(bins[0].UpperPercentile-0.2) > 1e-9 {
		t.Errorf("bin0 percentile = %v", bins[0].UpperPercentile)
	}
	// More bins than blocks degrades gracefully to one block per bin.
	if got := c.Bins(100); len(got) != 10 {
		t.Errorf("over-binned: %d bins", len(got))
	}
	if c.Bins(0) != nil {
		t.Error("zero bins should be nil")
	}
	if NewCounter().Bins(5) != nil {
		t.Error("empty counter bins should be nil")
	}
}

func TestBinsMonotoneNonIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		c := NewCounter()
		n := int(seed%500) + 500
		for i := 0; i < n; i++ {
			reps := int((seed^int64(i*2654435761))%7)*int(i%11) + 1
			if reps < 1 {
				reps = 1
			}
			for j := 0; j < reps; j++ {
				c.Add(key(uint64(i)))
			}
		}
		bins := c.Bins(50)
		for i := 1; i < len(bins); i++ {
			if bins[i].AvgCount > bins[i-1].AvgCount+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCounter()
	fill(c, 6, 2, 1, 1) // total 10
	cdf := c.CDF(4)
	if len(cdf) != 4 {
		t.Fatalf("got %d points", len(cdf))
	}
	wantFrac := []float64{0.6, 0.8, 0.9, 1.0}
	for i, p := range cdf {
		if math.Abs(p.CumFraction-wantFrac[i]) > 1e-9 {
			t.Errorf("point %d = %+v, want frac %v", i, p, wantFrac[i])
		}
	}
	if cdf[3].Percentile != 1 || cdf[3].CumFraction != 1 {
		t.Error("CDF must end at (1,1)")
	}
	if NewCounter().CDF(4) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	f := func(counts []uint8) bool {
		c := NewCounter()
		for i, n := range counts {
			for j := 0; j <= int(n)%20; j++ {
				c.Add(key(uint64(i)))
			}
		}
		cdf := c.CDF(10)
		prevP, prevF := 0.0, 0.0
		for _, p := range cdf {
			if p.Percentile < prevP || p.CumFraction < prevF-1e-12 {
				return false
			}
			prevP, prevF = p.Percentile, p.CumFraction
		}
		return len(cdf) == 0 || cdf[len(cdf)-1].CumFraction > 0.999999
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShareByServer(t *testing.T) {
	keys := []block.Key{
		block.MakeKey(0, 0, 1), block.MakeKey(0, 0, 2),
		block.MakeKey(1, 0, 1), block.MakeKey(2, 0, 1),
	}
	shares := ShareByServer(keys, 3)
	if math.Abs(shares[0]-0.5) > 1e-9 || math.Abs(shares[1]-0.25) > 1e-9 || math.Abs(shares[2]-0.25) > 1e-9 {
		t.Errorf("shares = %v", shares)
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if got := ShareByServer(nil, 3); got[0] != 0 {
		t.Error("empty keys should give zero shares")
	}
}

func TestOverlap(t *testing.T) {
	a := []block.Key{key(1), key(2), key(3)}
	b := []block.Key{key(2), key(3), key(4), key(5)}
	if got := Overlap(a, b); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Overlap = %v", got)
	}
	if Overlap(a, nil) != 0 {
		t.Error("empty b")
	}
	if Overlap(nil, b) != 0 {
		t.Error("empty a")
	}
	if Overlap(a, a) != 1 {
		t.Error("self overlap")
	}
}

func TestSortedCountsDescending(t *testing.T) {
	f := func(counts []uint8) bool {
		c := NewCounter()
		for i, n := range counts {
			for j := 0; j <= int(n)%10; j++ {
				c.Add(key(uint64(i)))
			}
		}
		got := c.SortedCounts()
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i] > got[j] }) ||
			sort.SliceIsSorted(got, func(i, j int) bool { return got[i] >= got[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
