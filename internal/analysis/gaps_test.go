package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/trace"
)

// gapTrace builds a trace where block 0 is accessed every `hotGap` and
// blocks 1..n once each.
func gapTrace(hotAccesses int, hotGap time.Duration, singles int) []block.Request {
	var reqs []block.Request
	for i := 0; i < hotAccesses; i++ {
		reqs = append(reqs, block.Request{
			Time: int64(i) * hotGap.Nanoseconds(), Kind: block.Read,
			Offset: 0, Length: block.Size,
		})
	}
	for i := 1; i <= singles; i++ {
		reqs = append(reqs, block.Request{
			Time: int64(i) * int64(time.Second), Kind: block.Read,
			Offset: uint64(i) * block.Size, Length: block.Size,
		})
	}
	trace.SortByTime(reqs)
	return reqs
}

func openFor(reqs []block.Request) func() (trace.Reader, error) {
	return func() (trace.Reader, error) { return trace.NewSliceReader(reqs), nil }
}

func TestReuseGapsBasics(t *testing.T) {
	reqs := gapTrace(50, 10*time.Minute, 99)
	report, err := ReuseGaps(openFor(reqs), DefaultGapClasses())
	if err != nil {
		t.Fatal(err)
	}
	// Class "1 access": 99 blocks, zero gaps by definition.
	ones := report.Classes[0]
	if ones.Blocks != 99 || ones.Gaps != 0 {
		t.Errorf("one-shot class = %+v", ones)
	}
	// The hot block (50 accesses) lands in ">40": 49 gaps of 10 minutes.
	hot := report.Classes[4]
	if hot.Blocks != 1 || hot.Gaps != 49 {
		t.Fatalf("hot class = %+v", hot)
	}
	if got := hot.MeanGap(); got != 10*time.Minute {
		t.Errorf("mean gap = %v", got)
	}
	if f := hot.FractionUnder(16 * time.Minute); math.Abs(f-1) > 1e-9 {
		t.Errorf("fraction under 16min = %v", f)
	}
	if f := hot.FractionUnder(4 * time.Minute); f != 0 {
		t.Errorf("fraction under 4min = %v", f)
	}
}

func TestReuseGapsClassBoundaries(t *testing.T) {
	// A block with exactly 4 accesses must land in 2-4, one with 5 in 5-10.
	var reqs []block.Request
	for i := 0; i < 4; i++ {
		reqs = append(reqs, block.Request{Time: int64(i) * 1e9, Offset: 0, Length: block.Size})
	}
	for i := 0; i < 5; i++ {
		reqs = append(reqs, block.Request{Time: int64(i) * 1e9, Offset: 512, Length: block.Size})
	}
	trace.SortByTime(reqs)
	report, err := ReuseGaps(openFor(reqs), DefaultGapClasses())
	if err != nil {
		t.Fatal(err)
	}
	if report.Classes[1].Blocks != 1 || report.Classes[1].Gaps != 3 {
		t.Errorf("2-4 class = %+v", report.Classes[1])
	}
	if report.Classes[2].Blocks != 1 || report.Classes[2].Gaps != 4 {
		t.Errorf("5-10 class = %+v", report.Classes[2])
	}
}

func TestReuseGapsRender(t *testing.T) {
	reqs := gapTrace(12, time.Hour, 10)
	report, err := ReuseGaps(openFor(reqs), DefaultGapClasses())
	if err != nil {
		t.Fatal(err)
	}
	out := report.String()
	if !strings.Contains(out, "11-40") || !strings.Contains(out, "mean gap") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestReuseGapsEmptyTrace(t *testing.T) {
	report, err := ReuseGaps(openFor(nil), DefaultGapClasses())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range report.Classes {
		if c.Blocks != 0 || c.Gaps != 0 || c.MeanGap() != 0 || c.FractionUnder(time.Hour) != 0 {
			t.Errorf("non-empty class on empty trace: %+v", c)
		}
	}
}
