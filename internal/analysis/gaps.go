package analysis

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/block"
	"repro/internal/trace"
)

// Reuse-gap analysis: the distribution of time between successive accesses
// to the same block, broken down by the block's daily popularity class.
// This quantifies the paper's observation that the servers' in-memory
// buffer caches absorb short-gap reuse before it reaches the block layer —
// the reason an unsieved LRU disk cache cannot hold onto the low-reuse
// mass (its residency is far shorter than the residual gaps), while blocks
// above the sieving threshold are re-accessed quickly enough to matter.

// gapBounds are the histogram bucket upper bounds.
var gapBounds = []time.Duration{
	time.Minute,
	4 * time.Minute,
	16 * time.Minute,
	time.Hour,
	4 * time.Hour,
	16 * time.Hour,
	1 << 62, // +inf
}

// GapBuckets is the number of histogram buckets.
const GapBuckets = 7

// GapClass aggregates reuse gaps for blocks whose total access count falls
// in [LoCount, HiCount].
type GapClass struct {
	Label            string
	LoCount, HiCount int64
	Blocks           int64
	Gaps             int64
	Buckets          [GapBuckets]int64
	// TotalGapNS accumulates in float64: gaps can span days, and an int64
	// sum overflows on large traces.
	TotalGapNS float64
}

// MeanGap returns the class's mean inter-access gap.
func (c *GapClass) MeanGap() time.Duration {
	if c.Gaps == 0 {
		return 0
	}
	return time.Duration(c.TotalGapNS / float64(c.Gaps))
}

// FractionUnder returns the fraction of gaps at most d.
func (c *GapClass) FractionUnder(d time.Duration) float64 {
	if c.Gaps == 0 {
		return 0
	}
	var n int64
	for i, bound := range gapBounds {
		if bound <= d {
			n += c.Buckets[i]
		}
	}
	return float64(n) / float64(c.Gaps)
}

// GapReport is the full per-class analysis.
type GapReport struct {
	Classes []GapClass
}

// DefaultGapClasses returns the popularity classes used by the report:
// one-shot blocks, the cold band, the sieve boundary band, and the hot top.
func DefaultGapClasses() []GapClass {
	return []GapClass{
		{Label: "1 access", LoCount: 1, HiCount: 1},
		{Label: "2-4", LoCount: 2, HiCount: 4},
		{Label: "5-10", LoCount: 5, HiCount: 10},
		{Label: "11-40", LoCount: 11, HiCount: 40},
		{Label: ">40", LoCount: 41, HiCount: 1 << 62},
	}
}

// ReuseGaps scans a trace twice — once to classify blocks by total access
// count, once to histogram inter-access gaps per class. The rewind function
// must return a fresh Reader over the same trace.
func ReuseGaps(open func() (trace.Reader, error), classes []GapClass) (*GapReport, error) {
	// Pass 1: total counts.
	counts := make(map[block.Key]int64)
	r, err := open()
	if err != nil {
		return nil, err
	}
	if err := eachBlockAccess(r, func(acc block.Access) {
		counts[acc.Key]++
	}); err != nil {
		return nil, err
	}
	report := &GapReport{Classes: append([]GapClass(nil), classes...)}
	classOf := func(count int64) *GapClass {
		for i := range report.Classes {
			c := &report.Classes[i]
			if count >= c.LoCount && count <= c.HiCount {
				return c
			}
		}
		return nil
	}
	for _, n := range counts {
		if c := classOf(n); c != nil {
			c.Blocks++
		}
	}
	// Pass 2: gaps.
	last := make(map[block.Key]int64, len(counts))
	r, err = open()
	if err != nil {
		return nil, err
	}
	if err := eachBlockAccess(r, func(acc block.Access) {
		c := classOf(counts[acc.Key])
		if prev, ok := last[acc.Key]; ok && c != nil {
			gap := acc.Time - prev
			if gap < 0 {
				gap = 0
			}
			c.Gaps++
			c.TotalGapNS += float64(gap)
			for i, bound := range gapBounds {
				if time.Duration(gap) <= bound {
					c.Buckets[i]++
					break
				}
			}
		}
		last[acc.Key] = acc.Time
	}); err != nil {
		return nil, err
	}
	return report, nil
}

// eachBlockAccess expands every request and calls fn per block access.
func eachBlockAccess(r trace.Reader, fn func(block.Access)) error {
	var buf []block.Access
	for {
		req, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		buf = trace.Expand(buf[:0], &req)
		for _, acc := range buf {
			fn(acc)
		}
	}
}

// String renders the report as a table.
func (g *GapReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reuse-gap distribution by popularity class:\n")
	fmt.Fprintf(&b, "%-10s %10s %10s %12s %10s %10s\n",
		"class", "blocks", "gaps", "mean gap", "<16min", "<1h")
	for i := range g.Classes {
		c := &g.Classes[i]
		fmt.Fprintf(&b, "%-10s %10d %10d %12s %9.1f%% %9.1f%%\n",
			c.Label, c.Blocks, c.Gaps, c.MeanGap().Round(time.Second),
			100*c.FractionUnder(16*time.Minute), 100*c.FractionUnder(time.Hour))
	}
	return b.String()
}
