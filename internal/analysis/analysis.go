// Package analysis implements the popularity-skew analyses of the paper's
// Section 2: per-day block access counting, percentile binning (Figure 2a),
// cumulative access distributions (Figures 2b/2c and 3a–3c), top-k
// popular-block extraction (the ideal sieve and SieveStore-D's offline
// selection both build on it), per-server composition of the ensemble hot
// set (Figure 3d), and day-over-day hot-set overlap.
package analysis

import (
	"io"
	"sort"

	"repro/internal/block"
	"repro/internal/trace"
)

// Counter accumulates per-block access counts, typically for one calendar
// day of one trace scope (ensemble, server, or volume).
type Counter struct {
	counts map[block.Key]int64
	total  int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[block.Key]int64)}
}

// Add records one access to key.
func (c *Counter) Add(key block.Key) {
	c.counts[key]++
	c.total++
}

// AddRequest records every block the request touches.
func (c *Counter) AddRequest(req *block.Request) {
	n := req.Blocks()
	first := req.Offset / block.Size
	for i := 0; i < n; i++ {
		c.Add(block.MakeKey(req.Server, req.Volume, first+uint64(i)))
	}
}

// AddTrace drains a trace Reader into the counter.
func (c *Counter) AddTrace(r trace.Reader) error {
	for {
		req, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		c.AddRequest(&req)
	}
}

// Total returns the number of accesses recorded.
func (c *Counter) Total() int64 { return c.total }

// Unique returns the number of distinct blocks accessed.
func (c *Counter) Unique() int { return len(c.counts) }

// Count returns the access count of one block.
func (c *Counter) Count(key block.Key) int64 { return c.counts[key] }

// entry pairs a block with its count for sorting.
type entry struct {
	key   block.Key
	count int64
}

// sortedEntries returns the counter's blocks in descending count order.
// Ties are broken by key so results are deterministic.
func (c *Counter) sortedEntries() []entry {
	es := make([]entry, 0, len(c.counts))
	for k, n := range c.counts {
		es = append(es, entry{k, n})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].count != es[j].count {
			return es[i].count > es[j].count
		}
		return es[i].key < es[j].key
	})
	return es
}

// SortedCounts returns just the access counts in descending order.
func (c *Counter) SortedCounts() []int64 {
	es := c.sortedEntries()
	out := make([]int64, len(es))
	for i, e := range es {
		out[i] = e.count
	}
	return out
}

// TopFraction returns the most popular ceil(frac·unique) blocks (the
// paper's "top 1%" when frac = 0.01), most popular first.
func (c *Counter) TopFraction(frac float64) []block.Key {
	n := topN(len(c.counts), frac)
	es := c.sortedEntries()
	out := make([]block.Key, n)
	for i := 0; i < n; i++ {
		out[i] = es[i].key
	}
	return out
}

// topN converts a fraction of `unique` into a block count (≥1 when there
// are any blocks).
func topN(unique int, frac float64) int {
	if unique == 0 {
		return 0
	}
	n := int(frac * float64(unique))
	if n < 1 {
		n = 1
	}
	if n > unique {
		n = unique
	}
	return n
}

// TopShare returns the fraction of all accesses captured by the top frac of
// blocks (the quantity behind Figure 2(c)'s knee and the ideal bar of
// Figure 5).
func (c *Counter) TopShare(frac float64) float64 {
	if c.total == 0 {
		return 0
	}
	es := c.sortedEntries()
	n := topN(len(es), frac)
	var sum int64
	for i := 0; i < n; i++ {
		sum += es[i].count
	}
	return float64(sum) / float64(c.total)
}

// CountLE returns the fraction of accessed blocks whose count is ≤ n
// (supports O1 statements like "99% of blocks see 10 or fewer accesses").
func (c *Counter) CountLE(n int64) float64 {
	if len(c.counts) == 0 {
		return 0
	}
	le := 0
	for _, cnt := range c.counts {
		if cnt <= n {
			le++
		}
	}
	return float64(le) / float64(len(c.counts))
}

// Bin is one percentile bin of the access-count distribution (Figure 2a).
type Bin struct {
	// UpperPercentile is the bin's right edge as a fraction of blocks:
	// 0.0001 for the 0.01th-percentile bin, 0.01 for the 1st percentile...
	UpperPercentile float64
	// AvgCount is the mean access count of the bin's blocks.
	AvgCount float64
	// MaxCount is the largest count in the bin.
	MaxCount int64
}

// Bins groups the blocks (sorted by descending popularity) into `bins`
// equal-occupancy bins — the paper uses 10 000 so each holds 0.01% of the
// day's accessed blocks — and returns each bin's average and maximum count.
// If there are fewer blocks than bins, each block gets its own bin.
func (c *Counter) Bins(bins int) []Bin {
	es := c.sortedEntries()
	n := len(es)
	if n == 0 || bins <= 0 {
		return nil
	}
	if bins > n {
		bins = n
	}
	out := make([]Bin, 0, bins)
	for b := 0; b < bins; b++ {
		lo := b * n / bins
		hi := (b + 1) * n / bins
		if hi <= lo {
			continue
		}
		var sum, maxc int64
		for _, e := range es[lo:hi] {
			sum += e.count
			if e.count > maxc {
				maxc = e.count
			}
		}
		out = append(out, Bin{
			UpperPercentile: float64(hi) / float64(n),
			AvgCount:        float64(sum) / float64(hi-lo),
			MaxCount:        maxc,
		})
	}
	return out
}

// CDFPoint is one point of the cumulative access distribution: the top
// Percentile of blocks capture CumFraction of accesses.
type CDFPoint struct {
	Percentile  float64
	CumFraction float64
}

// CDF returns the cumulative fraction of accesses captured by the top-k
// blocks, sampled at `points` evenly spaced block-percentiles
// (Figures 2b/2c, 3a–3c). The final point is always (1, 1).
func (c *Counter) CDF(points int) []CDFPoint {
	es := c.sortedEntries()
	n := len(es)
	if n == 0 || points <= 0 || c.total == 0 {
		return nil
	}
	if points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	var cum int64
	next := 0
	for p := 1; p <= points; p++ {
		hi := p * n / points
		for ; next < hi; next++ {
			cum += es[next].count
		}
		out = append(out, CDFPoint{
			Percentile:  float64(hi) / float64(n),
			CumFraction: float64(cum) / float64(c.total),
		})
	}
	return out
}

// ShareByServer returns, for a set of blocks, the fraction contributed by
// each server, and the fraction of total accesses those blocks capture is
// NOT considered — this is Figure 3(d)'s per-server composition of the
// ensemble top-1% set.
func ShareByServer(keys []block.Key, servers int) []float64 {
	out := make([]float64, servers)
	if len(keys) == 0 {
		return out
	}
	for _, k := range keys {
		if s := k.Server(); s < servers {
			out[s]++
		}
	}
	for i := range out {
		out[i] /= float64(len(keys))
	}
	return out
}

// Overlap returns |a∩b| / |b|: the fraction of b's blocks already in a
// (day-over-day hot-set overlap, the property reconciling O2 with
// SieveStore-D's use of yesterday's counts).
func Overlap(a, b []block.Key) float64 {
	if len(b) == 0 {
		return 0
	}
	in := make(map[block.Key]bool, len(a))
	for _, k := range a {
		in[k] = true
	}
	hits := 0
	for _, k := range b {
		if in[k] {
			hits++
		}
	}
	return float64(hits) / float64(len(b))
}
