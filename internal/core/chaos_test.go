package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/resilience"
	"repro/internal/store"
)

// The chaos harness drives the full fault-tolerant stack —
//
//	core.Store → resilience.Wrap (deadline+retry+breaker) → store.Faulty → store.Mem
//
// — with concurrent readers/writers, epoch rotations, cache-device faults,
// and spill faults, then clears every fault and verifies clean recovery:
// no deadlock (the run completes), no stale data (every block reads back
// its last written version, and the cache agrees with the backend byte for
// byte), and the store exits degraded mode on its own.

const (
	chaosBlocks  = 64
	chaosWorkers = 8
)

// chaosPattern fills a block with 8-byte cells of (index, version) so a
// read can verify both placement and freshness, and detect torn blocks.
func chaosPattern(idx int, version uint32) []byte {
	buf := make([]byte, block.Size)
	for c := 0; c < block.Size/8; c++ {
		binary.LittleEndian.PutUint32(buf[c*8:], uint32(idx))
		binary.LittleEndian.PutUint32(buf[c*8+4:], version)
	}
	return buf
}

// decodeChaos verifies buf is a uniform (idx, version) pattern and returns
// the version.
func decodeChaos(idx int, buf []byte) (uint32, error) {
	wantIdx := binary.LittleEndian.Uint32(buf[0:])
	version := binary.LittleEndian.Uint32(buf[4:])
	if wantIdx != uint32(idx) {
		return 0, errors.New("block content belongs to a different index")
	}
	for c := 1; c < block.Size/8; c++ {
		if binary.LittleEndian.Uint32(buf[c*8:]) != wantIdx ||
			binary.LittleEndian.Uint32(buf[c*8+4:]) != version {
			return 0, errors.New("torn block: cells disagree")
		}
	}
	return version, nil
}

// chaosBlock is one block's ground truth. mu serializes writers so backend
// versions stay monotonic; tainted counts writes whose outcome is unknown
// (an error, or a duration long enough to hide a timed-out attempt whose
// abandoned goroutine may still apply late) — while any exist, only the
// upper-bound freshness check holds.
type chaosBlock struct {
	mu        sync.Mutex
	attempted atomic.Uint32
	floor     atomic.Uint32
	tainted   atomic.Uint32
}

func TestChaosVariantC(t *testing.T) { runChaos(t, VariantC) }
func TestChaosVariantD(t *testing.T) { runChaos(t, VariantD) }

func runChaos(t *testing.T, variant Variant) {
	// A wedged run should dump stacks, not sit out the suite timeout.
	watchdog := time.AfterFunc(2*time.Minute, func() {
		panic("chaos: run did not complete — deadlock suspected")
	})
	defer watchdog.Stop()

	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	faulty := store.NewFaulty(mem)
	faulty.Seed(7)

	const attemptTimeout = 25 * time.Millisecond
	res := resilience.Wrap(faulty, resilience.Config{
		Timeout: attemptTimeout,
		Retry:   resilience.RetryPolicy{Max: 2, Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Breaker: resilience.BreakerConfig{Threshold: 5, OpenFor: 20 * time.Millisecond},
	})

	// Cache-device faults arrive in bursts (12 fail / 4 pass) so the
	// consecutive-fault threshold is actually crossed, flipping the store
	// into bypass mode mid-run.
	var injectOn atomic.Bool
	var injectCtr atomic.Uint64
	errCacheBurst := errors.New("chaos: cache device fault")
	opts := Options{
		CacheBytes: 32 * block.Size, // smaller than the working set: constant eviction
		Shards:     4,
		// RAM-tier dimension: a tiny tier above the thrashing SSD cache, so
		// promotions, tier evictions, and write invalidations all race the
		// fault storm. The final store-vs-backend sweep catches any stale
		// tier copy.
		RAMTierBytes:       8 * block.Size,
		SieveC:             quickSieve(),
		DegradedProbeEvery: 5 * time.Millisecond,
		FrameFaultInjector: func(block.Key) error {
			if injectOn.Load() && injectCtr.Add(1)%16 < 12 {
				return errCacheBurst
			}
			return nil
		},
	}
	var chaosOn atomic.Bool
	if variant == VariantD {
		opts.Variant = VariantD
		opts.Epoch = time.Hour // rotations are driven manually below
		opts.DThreshold = 2
		opts.SpillDir = t.TempDir()
		// Spill faults in bursts of 5 — enough consecutive errors to
		// disable access logging; rotations and probes re-enable it.
		var spillCtr atomic.Uint64
		testSpillFault = func() error {
			if chaosOn.Load() && spillCtr.Add(1)%16 < 5 {
				return errors.New("chaos: spill device fault")
			}
			return nil
		}
		defer func() { testSpillFault = nil }()
	}
	s, err := Open(res, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Seed every block with version 0 before any fault is armed.
	blocks := make([]chaosBlock, chaosBlocks)
	for i := 0; i < chaosBlocks; i++ {
		if err := s.WriteAt(0, 0, chaosPattern(i, 0), uint64(i)*block.Size); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Rotator: frequent manual epoch boundaries (no-op for VariantC).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				_ = s.RotateEpoch() // failures are legitimate under faults
			}
		}
	}()

	worker := func(seed int64) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 2*block.Size)
		for {
			select {
			case <-stop:
				return
			default:
			}
			b := rng.Intn(chaosBlocks)
			if rng.Intn(2) == 0 {
				st := &blocks[b]
				st.mu.Lock()
				v := st.attempted.Add(1)
				start := time.Now()
				werr := s.WriteAt(0, 0, chaosPattern(b, v), uint64(b)*block.Size)
				if werr == nil && time.Since(start) < attemptTimeout {
					st.floor.Store(v)
				} else {
					// Failed, or slow enough that a timed-out attempt may
					// have been abandoned: its late write can reapply an old
					// version any time until the backend quiesces.
					st.tainted.Add(1)
				}
				st.mu.Unlock()
				continue
			}
			n := 1
			if b < chaosBlocks-1 && rng.Intn(4) == 0 {
				n = 2
			}
			floors := make([]uint32, n)
			taints := make([]uint32, n)
			for k := 0; k < n; k++ {
				floors[k] = blocks[b+k].floor.Load()
				taints[k] = blocks[b+k].tainted.Load()
			}
			// A quarter of reads go through the zero-copy pinned path, which
			// serves RAM-tier views when the block is promoted; copy the
			// served prefix into buf so verification below is uniform.
			if rng.Intn(4) == 0 {
				if pr := s.ReadPinned(0, 0, n*block.Size, uint64(b)*block.Size); pr != nil {
					n = pr.Blocks()
					for k, v := range pr.Views() {
						copy(buf[k*block.Size:], v)
					}
					pr.Release()
				} else {
					continue // cold or degraded; nothing to verify
				}
			} else if rerr := s.ReadAt(0, 0, buf[:n*block.Size], uint64(b)*block.Size); rerr != nil {
				continue // injected failure; nothing to verify
			}
			for k := 0; k < n; k++ {
				v, derr := decodeChaos(b+k, buf[k*block.Size:(k+1)*block.Size])
				if derr != nil {
					t.Errorf("block %d: %v", b+k, derr)
					continue
				}
				if hi := blocks[b+k].attempted.Load(); v > hi {
					t.Errorf("block %d: read version %d, but only %d were ever written", b+k, v, hi)
				}
				if taints[k] == 0 && blocks[b+k].tainted.Load() == 0 && v < floors[k] {
					t.Errorf("block %d: stale read: version %d < confirmed floor %d", b+k, v, floors[k])
				}
			}
		}
	}
	for w := 0; w < chaosWorkers; w++ {
		wg.Add(1)
		go worker(int64(100 + w))
	}

	// Phase 1: chaos. Transient blips, hard failures, hangs outliving the
	// deadline, latency spikes, cache-device bursts, spill bursts.
	injectOn.Store(true)
	chaosOn.Store(true)
	faulty.SetConfig(store.FaultConfig{
		ReadFailProb:  0.15,
		WriteFailProb: 0.15,
		Transient:     true,
		HangProb:      0.02,
		HangFor:       50 * time.Millisecond,
		LatencyProb:   0.05,
		Latency:       2 * time.Millisecond,
	})
	time.Sleep(400 * time.Millisecond)

	// Phase 2: the faults clear; traffic continues while the stack heals.
	injectOn.Store(false)
	chaosOn.Store(false)
	faulty.ClearFaults()
	time.Sleep(150 * time.Millisecond)

	// Phase 3: stop the load, drain every straggler (abandoned timed-out
	// attempts included), then verify.
	close(stop)
	wg.Wait()
	faulty.ClearFaults()
	faulty.Quiesce()

	// A fresh write per block must get through — ride out a still-open
	// breaker — and becomes the expected final content.
	for i := 0; i < chaosBlocks; i++ {
		v := blocks[i].attempted.Add(1)
		data := chaosPattern(i, v)
		deadline := time.Now().Add(10 * time.Second)
		for {
			if err := s.WriteAt(0, 0, data, uint64(i)*block.Size); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("block %d: post-chaos write never succeeded: %v", i, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		blocks[i].floor.Store(v)
	}
	faulty.Quiesce()

	// The store must leave bypass mode on its own via recovery probes.
	probe := make([]byte, block.Size)
	deadline := time.Now().Add(10 * time.Second)
	for s.Degraded() {
		if time.Now().After(deadline) {
			t.Fatal("store never recovered from degraded mode")
		}
		_ = s.ReadAt(0, 0, probe, 0)
		time.Sleep(2 * time.Millisecond)
	}

	// No stale data: every block serves its final version through the
	// store, and the store's view agrees with the backend byte for byte.
	got := make([]byte, block.Size)
	memGot := make([]byte, block.Size)
	for i := 0; i < chaosBlocks; i++ {
		off := uint64(i) * block.Size
		if err := s.ReadAt(0, 0, got, off); err != nil {
			t.Fatalf("block %d: post-chaos read: %v", i, err)
		}
		v, derr := decodeChaos(i, got)
		if derr != nil {
			t.Fatalf("block %d: post-chaos content: %v", i, derr)
		}
		if want := blocks[i].floor.Load(); v != want {
			t.Errorf("block %d: final version %d, want %d", i, v, want)
		}
		if err := mem.ReadAt(0, 0, memGot, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, memGot) {
			t.Errorf("block %d: cache and backend disagree after recovery", i)
		}
	}

	// The chaos must actually have exercised the fault paths.
	snap := res.Stats()
	st := s.Stats()
	if snap.TransientErrors == 0 {
		t.Error("no transient errors observed — fault injection did not engage")
	}
	if snap.Timeouts == 0 {
		t.Error("no deadline timeouts observed — hangs did not engage")
	}
	if variant == VariantC && st.CacheFaults == 0 {
		t.Error("no cache-device faults observed — injector did not engage")
	}
	t.Logf("chaos %v: resilience=%+v", variant, snap)
	t.Logf("chaos %v: degraded enters=%d exits=%d bypassR=%d bypassW=%d cacheFaults=%d spillDisables=%d epochs=%d rotateFailures=%d",
		variant, st.DegradedEnters, st.DegradedExits, st.BypassReads, st.BypassWrites,
		st.CacheFaults, st.SpillDisables, st.Epochs, st.RotateFailures)
	if ts, ok := s.TierStats(); !ok {
		t.Error("RAM tier missing from chaos store")
	} else {
		if ts.PinnedFrames != 0 {
			t.Errorf("tier PinnedFrames = %d after all releases", ts.PinnedFrames)
		}
		t.Logf("chaos %v: tier hits=%d pinned=%d promotions=%d demotions=%d invalidations=%d",
			variant, ts.Hits, ts.Pinned, ts.Promotions, ts.Demotions, ts.Invalidations)
	}
}
