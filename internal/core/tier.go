package core

import (
	"repro/internal/block"
	"repro/internal/tier"
)

// TierStats returns the RAM tier's own counters; ok is false when the
// tier is disabled (Options.RAMTierBytes == 0).
func (s *Store) TierStats() (tier.Stats, bool) {
	if s.tier == nil {
		return tier.Stats{}, false
	}
	return s.tier.Stats(), true
}

// TierAdvice returns the tier advisor's latest recommendation: the last
// epoch boundary's analysis (VariantD), or a fresh analysis over the
// continuous sieve's precisely-tracked miss counts (VariantC — an
// approximation, since the MCT tracks only the near-threshold top of the
// miss distribution). Nil when the tier is disabled or no counts exist
// yet.
func (s *Store) TierAdvice() *tier.Advice {
	if s.tier == nil {
		return nil
	}
	if a := s.tierAdvice.Load(); a != nil {
		return a
	}
	if s.opts.Variant != VariantC {
		return nil
	}
	var counts []int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.sieveC != nil {
			counts = append(counts, sh.sieveC.TrackedCounts()...)
		}
		sh.mu.Unlock()
	}
	if len(counts) == 0 {
		return nil
	}
	a := s.tierAdvisor().Analyze(counts, s.opts.SieveC.Window.Seconds(), s.tier.CapacityBytes())
	return &a
}

// tierAdvisor builds the advisor over the store's configured SSD
// capacity and tier bounds.
func (s *Store) tierAdvisor() *tier.Advisor {
	return &tier.Advisor{
		SSDBytes: s.opts.CacheBytes,
		MinBytes: s.opts.TierMinBytes,
		MaxBytes: s.opts.TierMaxBytes,
	}
}

// tierEpochAdvice runs at each committed VariantD epoch boundary, before
// the logs reset (stage 5 clears the counts it replays): the epoch's
// access-count distribution goes through the drive-cost model, the
// advice is published for /statusz, and — behind Options.TierAutotune —
// the clamped recommendation is applied. This is the only place autotune
// resizes, so tier capacity moves exactly at epoch boundaries. A count
// read failure costs only this epoch's advice; the rotation is already
// committed.
func (s *Store) tierEpochAdvice() {
	if s.tier == nil || s.logger == nil {
		return
	}
	var counts []int64
	if err := s.logger.Counts(func(_ block.Key, c int64) { counts = append(counts, c) }); err != nil {
		return
	}
	adv := s.tierAdvisor()
	a := adv.Analyze(counts, s.opts.Epoch.Seconds(), s.tier.CapacityBytes())
	s.tierAdvice.Store(&a)
	if s.opts.TierAutotune {
		if target := adv.Clamp(a.RecommendedBytes); target != s.tier.CapacityBytes() {
			s.tier.Resize(target)
		}
	}
}
