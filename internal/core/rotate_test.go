package core

import (
	"testing"
	"time"
)

// TestManualRotateDoesNotDoubleFire reproduces a subtle scheduling bug: a
// manual RotateEpoch just before the scheduled boundary must restart the
// epoch schedule. Otherwise the next access would trigger the *scheduled*
// rotation over the freshly-reset (empty) logs and evict everything that
// the manual rotation just moved in.
func TestManualRotateDoesNotDoubleFire(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes: 64 * 512,
		Variant:    VariantD,
		DThreshold: 3,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 512)
	for i := 0; i < 5; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Manual rotation one second before the scheduled boundary.
	clk.Advance(time.Hour - time.Second)
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("manual rotation did not install the hot block")
	}
	// Cross the original boundary; the next access must NOT wipe the set.
	clk.Advance(2 * time.Second)
	if err := s.ReadAt(0, 0, buf, 512); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("scheduled rotation double-fired over empty logs and evicted the hot block")
	}
	if got := s.Stats().Epochs; got != 1 {
		t.Errorf("epochs = %d, want 1", got)
	}
	// A full epoch after the manual rotation, the schedule resumes.
	for i := 0; i < 4; i++ {
		if err := s.ReadAt(0, 0, buf, 1024); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Hour)
	if err := s.ReadAt(0, 0, buf, 2048); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Epochs; got != 2 {
		t.Errorf("epochs after resumed schedule = %d, want 2", got)
	}
	if !s.Contains(0, 0, 1024) {
		t.Error("second epoch's hot block not installed")
	}
}
