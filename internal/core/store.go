// Package core is the SieveStore library proper: a highly-selective,
// ensemble-level block cache layered over any storage backend.
//
// A Store intercepts block I/O destined for a multi-server storage ensemble
// (the Backend) and serves the popular blocks from a small cache — the
// paper's SSD — admitting blocks only through a sieve so that the mass of
// low-reuse blocks costs neither allocation-writes nor pollution:
//
//	be := store.NewMem()                       // or any Backend
//	st, _ := core.Open(be, core.Options{})     // SieveStore-C, 16 GB cache
//	st.WriteAt(0, 0, data, 0)                  // write-through
//	st.ReadAt(0, 0, buf, 0)                    // hits served from cache
//
// Both paper variants are available: the continuous sieve (SieveStore-C,
// default) admits a block on its n-th recent miss; the discrete variant
// (SieveStore-D) logs accesses and batch-allocates the blocks whose epoch
// access count crosses a threshold, via the offline per-key-reduction
// pipeline in internal/sieved.
package core

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/sieved"
)

// Backend is the underlying storage ensemble. It matches
// internal/store.Backend; any implementation may be supplied.
type Backend interface {
	ReadAt(server, volume int, p []byte, off uint64) error
	WriteAt(server, volume int, p []byte, off uint64) error
}

// Variant selects the sieving mechanism.
type Variant int

const (
	// VariantC is SieveStore-C: online, hysteresis-based lazy allocation
	// through the two-tier IMCT/MCT sieve (§3.3).
	VariantC Variant = iota
	// VariantD is SieveStore-D: offline access counting with epoch batch
	// allocation (§3.2).
	VariantD
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantD {
		return "SieveStore-D"
	}
	return "SieveStore-C"
}

// Options configures a Store.
type Options struct {
	// CacheBytes is the cache capacity (default 16 GiB; must be a multiple
	// of the 512-byte block size).
	CacheBytes int64
	// Variant selects SieveStore-C (default) or SieveStore-D.
	Variant Variant
	// SieveC configures the continuous sieve (VariantC).
	SieveC sieve.CConfig
	// DThreshold is the epoch access-count threshold (VariantD; default 10).
	DThreshold int64
	// Epoch is the discrete allocation epoch (VariantD; default 24 h).
	Epoch time.Duration
	// SpillDir hosts SieveStore-D's partitioned access logs. Empty means a
	// temporary directory owned (and removed) by the Store.
	SpillDir string
	// WriteBack enables write-back caching: writes to cached blocks stay
	// in the cache (marked dirty) and reach the ensemble only on eviction,
	// Flush, or Close. The default is write-through (the backend is always
	// authoritative), which is what the paper's appliance model implies.
	WriteBack bool
	// TrackLatency records whole-call ReadAt/WriteAt service times into
	// Stats.ReadLatency/WriteLatency (a few atomic ops per call; off by
	// default so trace replay stays allocation- and syscall-identical).
	TrackLatency bool
	// Now supplies time; nil means time.Now. Injectable for tests and
	// trace replay.
	Now func() time.Time
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.CacheBytes == 0 {
		out.CacheBytes = 16 << 30
	}
	if out.CacheBytes < block.Size || out.CacheBytes%block.Size != 0 {
		return out, fmt.Errorf("core: CacheBytes %d must be a positive multiple of %d", out.CacheBytes, block.Size)
	}
	if out.SieveC.IMCTSize == 0 {
		out.SieveC = sieve.DefaultCConfig()
	}
	if out.DThreshold == 0 {
		out.DThreshold = sieved.DefaultThreshold
	}
	if out.DThreshold < 1 {
		return out, fmt.Errorf("core: DThreshold must be ≥1, got %d", out.DThreshold)
	}
	if out.Epoch == 0 {
		out.Epoch = 24 * time.Hour
	}
	if out.Epoch < time.Minute {
		return out, fmt.Errorf("core: Epoch %v too short", out.Epoch)
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	return out, nil
}

// Stats counts the Store's activity. Blocks are 512-byte units.
type Stats struct {
	Reads, Writes          int64 // block accesses by kind
	ReadHits, WriteHits    int64 // blocks served/updated in cache
	AllocWrites            int64 // blocks written into the cache on admission
	Evictions              int64 // blocks evicted
	EpochMoves             int64 // blocks batch-moved at epoch boundaries (VariantD)
	Epochs                 int64 // completed epoch rotations (VariantD)
	BackendReads           int64 // read requests issued to the ensemble
	BackendWrites          int64 // write requests issued to the ensemble
	CachedBlocks           int64 // current residency
	CapacityBlocks         int64
	SieveTrackedBlocks     int64 // precise sieve metastate entries (VariantC)
	DirtyBlocks            int64 // write-back blocks awaiting flush
	FlushWrites            int64 // dirty blocks written back to the ensemble
	BackendBytesRead       int64
	BackendBytesWritten    int64
	CacheBytesServed       int64 // bytes of reads served from cache
	BackendBytesServedRead int64
	CoalescedReads         int64 // miss blocks served by joining another caller's in-flight fetch
	RotateFailures         int64 // epoch rotations aborted before the swap by a backend or log error (VariantD)
	ResetFailures          int64 // epoch log resets that failed after the swap committed — the rotation still counts in Epochs (VariantD)
	FlushErrors            int64 // dirty write-backs that failed (the blocks stay dirty and resident)

	// ReadLatency/WriteLatency aggregate whole-call ReadAt/WriteAt service
	// times when Options.TrackLatency is set (zero otherwise).
	ReadLatency  metrics.OpLatencySnapshot
	WriteLatency metrics.OpLatencySnapshot
}

// Hits returns total block hits.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// HitRatio returns the captured fraction of block accesses.
func (s Stats) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("core: store is closed")

// ErrAlignment rejects I/O that is not 512-byte aligned.
var ErrAlignment = errors.New("core: offset and length must be multiples of 512")

// Store is a SieveStore cache instance. It is safe for concurrent use.
//
// Concurrency model: mu guards all cache metadata (tags, frames, dirty,
// sieve state, stats), but is never held across hot-path backend I/O.
// A miss reserves its keys in the in-flight table, releases mu, fetches
// from the ensemble, then re-acquires mu for sieve admission and frame
// installation. Duplicate concurrent misses for a key coalesce onto the
// first fetch (single-flight); writes reserve their key range so
// backend-write order and cache-update order cannot invert.
type Store struct {
	backend Backend
	opts    Options

	mu       sync.Mutex
	tags     *cache.Cache
	frames   map[block.Key][]byte
	dirty    map[block.Key]bool
	free     [][]byte
	inflight map[block.Key]*flight
	sieveC   *sieve.C
	logger   *sieved.Logger
	// epoch state (VariantD)
	start    time.Time
	curEpoch int64
	// rotating is true while a staged epoch transition is in progress (mu
	// is released across its backend I/O); rotCond is broadcast when it
	// clears. rotSkip collects keys written or invalidated during the
	// transition: the swap must not install its (older) fetched copy of
	// them.
	rotating bool
	rotCond  *sync.Cond
	rotSkip  map[block.Key]bool
	ownSpill string // temp dir to remove on Close, if any
	stats    Stats
	closed   bool

	latRead  metrics.OpLatency
	latWrite metrics.OpLatency
}

// flight is one entry of the per-key in-flight table: a miss fetch or a
// write reservation in progress with mu released. Readers that miss on a
// reserved key register as waiters and are served from the flight instead
// of issuing a duplicate backend fetch.
type flight struct {
	done chan struct{} // closed (under mu) when the operation completes
	// All remaining fields are guarded by Store.mu until done is closed;
	// afterwards they are read-only (the channel close publishes them).
	data    []byte // the block's bytes; set at completion iff waiters > 0
	err     error  // fetch/write failure, propagated to waiters
	waiters int
	// stale marks keys invalidated or batch-replaced while the flight was
	// in the air: the owner must not install its (now outdated) view into
	// the cache. The entry is detached from the table when marked, so new
	// misses start a fresh fetch.
	stale bool
	// isWrite distinguishes write reservations (and staged write-backs)
	// from miss fetches. Bulk replacements (epoch swap, snapshot load)
	// stale only fetches: a fetch holds pre-replacement data, but a write
	// completing afterwards carries *newer* data and must still fold it in.
	isWrite bool
}

// Open validates opts and returns a ready Store over backend.
func Open(backend Backend, opts Options) (*Store, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{
		backend:  backend,
		opts:     o,
		tags:     cache.New(int(o.CacheBytes / block.Size)),
		frames:   make(map[block.Key][]byte),
		dirty:    make(map[block.Key]bool),
		inflight: make(map[block.Key]*flight),
		start:    o.Now(),
	}
	s.rotCond = sync.NewCond(&s.mu)
	s.stats.CapacityBlocks = o.CacheBytes / block.Size
	switch o.Variant {
	case VariantC:
		sc, err := sieve.NewC(o.SieveC)
		if err != nil {
			return nil, err
		}
		s.sieveC = sc
	case VariantD:
		dir := o.SpillDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sievestore-spill-*")
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s.ownSpill = dir
		}
		var logger *sieved.Logger
		if o.SpillDir != "" {
			// A caller-supplied spill dir is durable state: resume (and
			// salvage) the epoch in progress instead of truncating it — a
			// daemon restart must not discard the day's access counts.
			logger, err = sieved.OpenLogger(dir, sieved.DefaultPartitions)
		} else {
			logger, err = sieved.NewLogger(dir, sieved.DefaultPartitions)
		}
		if err != nil {
			if s.ownSpill != "" {
				os.RemoveAll(s.ownSpill)
			}
			return nil, err
		}
		s.logger = logger
	default:
		return nil, fmt.Errorf("core: unknown variant %d", o.Variant)
	}
	return s, nil
}

// Variant returns the store's sieving variant.
func (s *Store) Variant() Variant { return s.opts.Variant }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CachedBlocks = int64(s.tags.Len())
	st.DirtyBlocks = int64(len(s.dirty))
	if s.sieveC != nil {
		st.SieveTrackedBlocks = int64(s.sieveC.Stats().MCTSize)
	}
	st.ReadLatency = s.latRead.Snapshot()
	st.WriteLatency = s.latWrite.Snapshot()
	return st
}

// Close releases the store's resources. In write-back mode the dirty
// blocks are written back first (staged, without holding the lock across
// the backend I/O); write-through stores have nothing to flush.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	// Wait out an epoch transition in progress: it expects the logger and
	// spill directory to outlive it.
	for s.rotating {
		s.rotCond.Wait()
	}
	if s.closed {
		return nil
	}
	// Mark closed first so no new I/O can dirty blocks behind the staged
	// flush (which releases the lock while streaming).
	s.closed = true
	err := s.drainDirtyLocked()
	if s.logger != nil {
		if lerr := s.logger.Close(); err == nil {
			err = lerr
		}
	}
	if s.ownSpill != "" {
		if rmErr := os.RemoveAll(s.ownSpill); err == nil {
			err = rmErr
		}
	}
	return err
}

// checkIO validates request geometry.
func checkIO(p []byte, off uint64) error {
	if off%block.Size != 0 || len(p)%block.Size != 0 || len(p) == 0 {
		return ErrAlignment
	}
	return nil
}

// ReadAt reads len(p) bytes from the volume at off, serving cached blocks
// from the cache and the rest from the backend. Missing blocks are offered
// to the sieve and admitted only if it approves.
//
// The backend fetch happens without the store lock: missing keys are first
// reserved in the in-flight table (misses already being fetched by another
// caller are joined rather than refetched), then read from the ensemble,
// and finally — under the lock again — offered to the sieve and installed.
func (s *Store) ReadAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	if s.opts.TrackLatency {
		start := time.Now()
		defer func() { s.latRead.Observe(time.Since(start), err != nil) }()
	}
	nBlocks := len(p) / block.Size
	first := off / block.Size

	// A miss is either owned (this call fetches it) or joined (another
	// call's flight will deliver it); idx is the block's position in p.
	type miss struct {
		idx int
		key block.Key
		f   *flight
	}
	var mine, joined []miss

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.rotateIfDue()
	if s.closed { // rotateIfDue may release the lock; Close may have run
		s.mu.Unlock()
		return ErrClosed
	}
	now := s.now()
	s.logAccess(server, volume, first, nBlocks)
	s.stats.Reads += int64(nBlocks)
	for i := 0; i < nBlocks; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		if s.tags.Touch(key) {
			copy(p[i*block.Size:(i+1)*block.Size], s.frames[key])
			s.stats.ReadHits++
			s.stats.CacheBytesServed += block.Size
			continue
		}
		if f, ok := s.inflight[key]; ok {
			f.waiters++
			s.stats.CoalescedReads++
			joined = append(joined, miss{idx: i, key: key, f: f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		mine = append(mine, miss{idx: i, key: key, f: f})
	}
	s.mu.Unlock()

	// Fetch owned misses from the ensemble in contiguous runs — lock-free,
	// so concurrent callers overlap their backend latency.
	var fetchErr error
	var nReads, nBytes int64
	okUpto := len(mine)
	for lo := 0; lo < len(mine); {
		hi := lo + 1
		for hi < len(mine) && mine[hi].idx == mine[hi-1].idx+1 {
			hi++
		}
		buf := p[mine[lo].idx*block.Size : (mine[hi-1].idx+1)*block.Size]
		if e := s.backend.ReadAt(server, volume, buf, off+uint64(mine[lo].idx)*block.Size); e != nil {
			fetchErr = e
			okUpto = lo
			break
		}
		nReads++
		nBytes += int64(len(buf))
		lo = hi
	}

	// Re-acquire to account, admit, and complete the owned flights. Blocks
	// fetched before a failed run are still admitted (matching the old
	// run-at-a-time behavior).
	s.mu.Lock()
	s.stats.BackendReads += nReads
	s.stats.BackendBytesRead += nBytes
	s.stats.BackendBytesServedRead += nBytes
	for j, m := range mine {
		if j < okUpto {
			data := p[m.idx*block.Size : (m.idx+1)*block.Size]
			if !m.f.stale && !s.closed {
				s.maybeAdmit(m.key, data, block.Read, now, false)
			}
			if m.f.waiters > 0 {
				m.f.data = append([]byte(nil), data...)
			}
		} else {
			m.f.err = fetchErr
		}
		if s.inflight[m.key] == m.f {
			delete(s.inflight, m.key)
		}
		close(m.f.done)
	}
	s.mu.Unlock()
	if fetchErr != nil {
		return fetchErr
	}

	// Join coalesced misses last: every flight this call owns is already
	// completed above, so blocking here cannot deadlock.
	for _, m := range joined {
		dst := p[m.idx*block.Size : (m.idx+1)*block.Size]
		if err := s.awaitFlight(m.f, m.key, dst); err != nil {
			return err
		}
	}
	return nil
}

// awaitFlight waits for another caller's in-flight fetch of key and copies
// the result into dst. If that flight failed, the block is re-fetched
// directly (joining yet another flight if one has appeared meanwhile).
func (s *Store) awaitFlight(f *flight, key block.Key, dst []byte) error {
	for {
		<-f.done
		if f.err == nil {
			copy(dst, f.data)
			return nil
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if s.tags.Touch(key) {
			copy(dst, s.frames[key])
			s.stats.ReadHits++
			s.stats.CacheBytesServed += block.Size
			s.mu.Unlock()
			return nil
		}
		if nf, ok := s.inflight[key]; ok {
			nf.waiters++
			s.mu.Unlock()
			f = nf
			continue
		}
		nf := &flight{done: make(chan struct{})}
		s.inflight[key] = nf
		s.mu.Unlock()

		err := s.backend.ReadAt(key.Server(), key.Volume(), dst, key.Offset())

		s.mu.Lock()
		if err == nil {
			s.stats.BackendReads++
			s.stats.BackendBytesRead += block.Size
			s.stats.BackendBytesServedRead += block.Size
			if !nf.stale && !s.closed {
				// Use the post-fetch clock, not the caller's pre-block one:
				// this path may have waited on several flights, and a stale
				// timestamp would admit through a sieve window that has in
				// fact already expired.
				s.maybeAdmit(key, dst, block.Read, s.now(), false)
			}
			if nf.waiters > 0 {
				nf.data = append([]byte(nil), dst...)
			}
		} else {
			nf.err = err
		}
		if s.inflight[key] == nf {
			delete(s.inflight, key)
		}
		close(nf.done)
		s.mu.Unlock()
		return err
	}
}

// WriteAt writes p through to the backend, updating cached blocks in place
// and offering missing blocks to the sieve.
//
// The backend write happens without the store lock. The written key range
// is reserved in the in-flight table first, which (a) serializes
// overlapping writes so backend order and cache order cannot invert, and
// (b) lets concurrent read misses on these keys coalesce onto the written
// data instead of racing the write with a backend fetch.
func (s *Store) WriteAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	if s.opts.TrackLatency {
		start := time.Now()
		defer func() { s.latWrite.Observe(time.Since(start), err != nil) }()
	}
	nBlocks := len(p) / block.Size
	first := off / block.Size

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.rotateIfDue()
	if s.closed { // rotateIfDue may release the lock; Close may have run
		s.mu.Unlock()
		return ErrClosed
	}
	now := s.now()
	s.logAccess(server, volume, first, nBlocks)
	s.stats.Writes += int64(nBlocks)
	flights, rerr := s.reserveRangeLocked(server, volume, first, nBlocks)
	if rerr != nil {
		s.mu.Unlock()
		return rerr
	}

	if !s.opts.WriteBack {
		// Write-through: the backend is always authoritative. Write it
		// first (unlocked), then fold the data into the cache.
		s.mu.Unlock()
		werr := s.backend.WriteAt(server, volume, p, off)
		s.mu.Lock()
		if werr == nil {
			s.stats.BackendWrites++
			s.stats.BackendBytesWritten += int64(len(p))
			for i := 0; i < nBlocks; i++ {
				if flights[i].stale || s.closed {
					continue // invalidated (or store closed) mid-write
				}
				key := block.MakeKey(server, volume, first+uint64(i))
				data := p[i*block.Size : (i+1)*block.Size]
				if s.tags.Touch(key) {
					copy(s.frames[key], data)
					s.stats.WriteHits++
					continue
				}
				s.maybeAdmit(key, data, block.Write, now, false)
			}
		}
		s.completeRangeLocked(server, volume, first, flights, p, werr)
		s.mu.Unlock()
		return werr
	}

	// Write-back: cached (and newly admitted) blocks absorb the write and
	// are marked dirty; only the remaining runs reach the backend now.
	type run struct{ start, n int }
	var through []run
	for i := 0; i < nBlocks; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		data := p[i*block.Size : (i+1)*block.Size]
		if s.tags.Touch(key) {
			copy(s.frames[key], data)
			s.dirty[key] = true
			s.stats.WriteHits++
			continue
		}
		if s.tryAdmit(key, data, block.Write, now, true) {
			continue
		}
		if n := len(through); n > 0 && through[n-1].start+through[n-1].n == i {
			through[n-1].n++
		} else {
			through = append(through, run{start: i, n: 1})
		}
	}
	s.mu.Unlock()

	var werr error
	var nWrites, nBytes int64
	for _, r := range through {
		buf := p[r.start*block.Size : (r.start+r.n)*block.Size]
		if werr = s.backend.WriteAt(server, volume, buf, off+uint64(r.start)*block.Size); werr != nil {
			break
		}
		nWrites++
		nBytes += int64(len(buf))
	}
	s.mu.Lock()
	s.stats.BackendWrites += nWrites
	s.stats.BackendBytesWritten += nBytes
	s.completeRangeLocked(server, volume, first, flights, p, werr)
	s.mu.Unlock()
	return werr
}

// reserveRangeLocked claims every key in [first, first+n) in the in-flight
// table for a write. Acquisition is all-or-nothing: if any key is already
// claimed (a miss fetch or another write), the lock is dropped and the
// caller waits for that flight with no reservations of its own held, then
// retries — so reservation can never deadlock. Callers must hold s.mu; it
// may be released and re-acquired.
func (s *Store) reserveRangeLocked(server, volume int, first uint64, n int) ([]*flight, error) {
	for {
		var conflict *flight
		for i := 0; i < n; i++ {
			if f, ok := s.inflight[block.MakeKey(server, volume, first+uint64(i))]; ok {
				conflict = f
				break
			}
		}
		if conflict == nil {
			break
		}
		s.mu.Unlock()
		<-conflict.done
		s.mu.Lock()
		if s.closed {
			return nil, ErrClosed
		}
	}
	flights := make([]*flight, n)
	for i := range flights {
		f := &flight{done: make(chan struct{}), isWrite: true}
		s.inflight[block.MakeKey(server, volume, first+uint64(i))] = f
		flights[i] = f
	}
	return flights, nil
}

// completeRangeLocked publishes a write's outcome to any coalesced readers
// and releases the reservation. p is the written payload (nil when the
// operation failed before producing data); err is propagated to waiters.
func (s *Store) completeRangeLocked(server, volume int, first uint64, flights []*flight, p []byte, err error) {
	for i, f := range flights {
		key := block.MakeKey(server, volume, first+uint64(i))
		if err != nil {
			f.err = err
		} else {
			if f.waiters > 0 && p != nil {
				f.data = append([]byte(nil), p[i*block.Size:(i+1)*block.Size]...)
			}
			// A write landing while an epoch transition is staging has
			// newer data than the transition's batch fetch: tell the swap
			// not to install its copy of this block.
			if s.rotating {
				s.rotSkip[key] = true
			}
		}
		if s.inflight[key] == f {
			delete(s.inflight, key)
		}
		close(f.done)
	}
}

// staleFetchFlightsLocked detaches every in-flight *fetch* and marks it
// stale. Called by bulk cache replacements (epoch swap, snapshot load) so
// that fetches completing afterwards cannot install pre-replacement
// frames. Write reservations stay attached: a write completing after the
// replacement carries newer data than anything fetched or snapshotted and
// must still fold it into the cache.
func (s *Store) staleFetchFlightsLocked() {
	for key, f := range s.inflight {
		if f.isWrite {
			continue
		}
		f.stale = true
		delete(s.inflight, key)
	}
}

// Flush writes every currently-dirty block back to the ensemble
// (write-back mode). The backend I/O is staged: the lock is not held while
// streaming, so concurrent reads and writes proceed. Blocks whose
// write-back fails stay dirty and resident and are counted in
// Stats.FlushErrors; the first error is returned.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushStagedLocked(nil)
}

// Bounded parallelism and run sizing for staged transitions (epoch batch
// fetches, staged flushes): backend requests cover contiguous multi-block
// runs of at most transitionMaxRun blocks, issued by at most
// transitionWorkers goroutines.
const (
	transitionWorkers = 8
	transitionMaxRun  = 64 // blocks per backend request (32 KiB)
)

// keyRun is a half-open index range [lo, hi) of consecutive blocks.
type keyRun struct{ lo, hi int }

// contiguousRuns splits sorted keys into runs of consecutive blocks on the
// same server and volume, each at most transitionMaxRun long. include, if
// non-nil, masks individual indices out of the runs.
func contiguousRuns(keys []block.Key, include func(int) bool) []keyRun {
	var runs []keyRun
	for i := 0; i < len(keys); {
		if include != nil && !include(i) {
			i++
			continue
		}
		j := i + 1
		for j < len(keys) && j-i < transitionMaxRun &&
			keys[j] == keys[j-1]+1 &&
			keys[j].Server() == keys[j-1].Server() &&
			keys[j].Volume() == keys[j-1].Volume() &&
			(include == nil || include(j)) {
			j++
		}
		runs = append(runs, keyRun{lo: i, hi: j})
		i = j
	}
	return runs
}

// forEachRun invokes do(ri, run) with bounded parallelism. After the first
// error no new runs are started; the first error is returned. do must
// confine its writes to per-run state (indexed by ri) — forEachRun
// provides the happens-before edge back to the caller.
func forEachRun(runs []keyRun, do func(ri int, r keyRun) error) error {
	workers := transitionWorkers
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		for ri, r := range runs {
			if err := do(ri, r); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu    sync.Mutex
		next  int
		first error
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if first != nil || next >= len(runs) {
					mu.Unlock()
					return
				}
				ri := next
				next++
				mu.Unlock()
				if err := do(ri, runs[ri]); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// fetchBatch reads the given blocks from the ensemble in contiguous
// multi-block runs with bounded parallelism. It is called WITHOUT the
// store lock and touches no store state besides the backend; the returned
// frames are freshly allocated, one per key. Partial work on error is
// reflected in the request/byte counts so the caller can account it.
func (s *Store) fetchBatch(keys []block.Key) (map[block.Key][]byte, int64, int64, error) {
	if len(keys) == 0 {
		return nil, 0, 0, nil
	}
	sorted := append([]block.Key(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	runs := contiguousRuns(sorted, nil)
	bufs := make([][]byte, len(sorted))
	ran := make([]bool, len(runs))
	err := forEachRun(runs, func(ri int, r keyRun) error {
		n := r.hi - r.lo
		buf := make([]byte, n*block.Size)
		k0 := sorted[r.lo]
		if e := s.backend.ReadAt(k0.Server(), k0.Volume(), buf, k0.Offset()); e != nil {
			return fmt.Errorf("core: epoch move for %v: %w", k0, e)
		}
		for i := 0; i < n; i++ {
			bufs[r.lo+i] = buf[i*block.Size : (i+1)*block.Size : (i+1)*block.Size]
		}
		ran[ri] = true
		return nil
	})
	var nReads, nBytes int64
	for ri, r := range runs {
		if ran[ri] {
			nReads++
			nBytes += int64(r.hi-r.lo) * block.Size
		}
	}
	if err != nil {
		return nil, nReads, nBytes, err
	}
	fetched := make(map[block.Key][]byte, len(sorted))
	for i, k := range sorted {
		fetched[k] = bufs[i]
	}
	return fetched, nReads, nBytes, nil
}

// flushStagedLocked writes dirty blocks back to the ensemble without
// holding mu across the backend I/O. only, if non-nil, filters which dirty
// blocks are flushed. Caller must hold mu; the lock is released and
// re-acquired. Each victim is reserved as a write flight first (so
// concurrent writes to it wait and reads coalesce onto the cached data),
// its frame is copied, and the copies are streamed in contiguous runs with
// bounded parallelism. Blocks whose write failed stay dirty and are
// counted in Stats.FlushErrors; the first error is returned.
//
// Reservation proceeds in ascending key order while holding earlier
// reservations. Any two staged flushes therefore acquire in the same
// global order and cannot deadlock against each other; every other flight
// owner (read misses, write reservations) completes without waiting on
// further flights, so waiting here with reservations held is safe.
func (s *Store) flushStagedLocked(only func(block.Key) bool) error {
	var victims []block.Key
	for k := range s.dirty {
		if only == nil || only(k) {
			victims = append(victims, k)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })

	flights := make([]*flight, len(victims))
	frames := make([][]byte, len(victims))
	for i := 0; i < len(victims); {
		k := victims[i]
		if f, ok := s.inflight[k]; ok {
			s.mu.Unlock()
			<-f.done
			s.mu.Lock()
			continue // re-check this key
		}
		if !s.dirty[k] || s.frames[k] == nil {
			i++ // flushed or dropped while we waited
			continue
		}
		f := &flight{done: make(chan struct{}), isWrite: true}
		s.inflight[k] = f
		flights[i] = f
		// Copy the frame: Invalidate can flush+recycle it while we stream.
		frames[i] = append([]byte(nil), s.frames[k]...)
		i++
	}

	runs := contiguousRuns(victims, func(i int) bool { return flights[i] != nil })
	runErr := make([]error, len(runs))
	ran := make([]bool, len(runs))

	s.mu.Unlock()
	err := forEachRun(runs, func(ri int, r keyRun) error {
		ran[ri] = true
		n := r.hi - r.lo
		buf := frames[r.lo]
		if n > 1 {
			buf = make([]byte, n*block.Size)
			for i := 0; i < n; i++ {
				copy(buf[i*block.Size:], frames[r.lo+i])
			}
		}
		k0 := victims[r.lo]
		if e := s.backend.WriteAt(k0.Server(), k0.Volume(), buf, k0.Offset()); e != nil {
			runErr[ri] = fmt.Errorf("core: write-back of %v: %w", k0, e)
			return runErr[ri]
		}
		return nil
	})
	s.mu.Lock()

	for ri, r := range runs {
		if !ran[ri] {
			continue
		}
		if runErr[ri] == nil {
			s.stats.BackendWrites++
			s.stats.BackendBytesWritten += int64(r.hi-r.lo) * block.Size
		}
		for i := r.lo; i < r.hi; i++ {
			if runErr[ri] == nil {
				if s.dirty[victims[i]] {
					delete(s.dirty, victims[i])
					s.stats.FlushWrites++
				}
			} else {
				s.stats.FlushErrors++
			}
		}
	}
	for i, k := range victims {
		f := flights[i]
		if f == nil {
			continue
		}
		if f.waiters > 0 {
			// The cache's copy is current regardless of the write-back
			// outcome: serve coalesced readers from it, never an error.
			f.data = frames[i]
		}
		if s.inflight[k] == f {
			delete(s.inflight, k)
		}
		close(f.done)
	}
	return err
}

// drainDirtyLocked flushes until no dirty blocks remain: a few staged
// passes (writes may re-dirty blocks while the lock is down), then a final
// serial pass under the lock — which cannot be raced — for any stragglers.
func (s *Store) drainDirtyLocked() error {
	for pass := 0; pass < 4 && len(s.dirty) > 0; pass++ {
		if err := s.flushStagedLocked(nil); err != nil {
			return err
		}
	}
	for key := range s.dirty {
		if err := s.flushBlock(key); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock writes one dirty block back and clears its dirty bit.
func (s *Store) flushBlock(key block.Key) error {
	frame, ok := s.frames[key]
	if !ok {
		delete(s.dirty, key)
		return nil
	}
	if err := s.backend.WriteAt(key.Server(), key.Volume(), frame, key.Offset()); err != nil {
		return fmt.Errorf("core: write-back of %v: %w", key, err)
	}
	s.stats.BackendWrites++
	s.stats.BackendBytesWritten += block.Size
	s.stats.FlushWrites++
	delete(s.dirty, key)
	return nil
}

// now returns the injected current time.
func (s *Store) now() time.Time { return s.opts.Now() }

// logAccess records the access for the offline sieve (VariantD only).
func (s *Store) logAccess(server, volume int, first uint64, nBlocks int) {
	if s.logger == nil {
		return
	}
	for i := 0; i < nBlocks; i++ {
		// Logging failures must not fail the I/O path; the worst case is a
		// slightly stale epoch selection. They are surfaced via Close.
		_ = s.logger.Log(block.MakeKey(server, volume, first+uint64(i)))
	}
}

// maybeAdmit consults the sieve (VariantC) and installs the block on
// approval. VariantD never admits continuously.
func (s *Store) maybeAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) {
	s.tryAdmit(key, data, kind, now, dirty)
}

// tryAdmit is maybeAdmit reporting whether the block was admitted.
func (s *Store) tryAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) bool {
	if s.sieveC == nil {
		return false
	}
	acc := block.Access{Time: now.Sub(s.start).Nanoseconds(), Key: key, Kind: kind}
	if !s.sieveC.ShouldAllocate(acc) {
		return false
	}
	if !s.install(key, data) {
		return false
	}
	if dirty {
		s.dirty[key] = true
	}
	s.stats.AllocWrites++
	return true
}

// install copies data into a frame for key, evicting (and, in write-back
// mode, flushing) the LRU block if full. It reports whether the block was
// installed: when the dirty victim's write-back fails, the victim stays
// resident and dirty (its frame holds the only current copy), the failure
// is counted in Stats.FlushErrors, and the new block is simply not
// allocated — the caller's own I/O already succeeded and must not be
// failed by an unrelated block's flush.
func (s *Store) install(key block.Key, data []byte) bool {
	if s.tags.Len() >= s.tags.Capacity() && !s.tags.Contains(key) {
		if victim, ok := s.tags.LRU(); ok && s.dirty[victim] {
			if err := s.flushBlock(victim); err != nil {
				s.stats.FlushErrors++
				return false
			}
		}
	}
	if victim, evicted := s.tags.Insert(key); evicted {
		s.stats.Evictions++
		s.free = append(s.free, s.frames[victim])
		delete(s.frames, victim)
	}
	frame := s.alloc()
	copy(frame, data)
	s.frames[key] = frame
	return true
}

func (s *Store) alloc() []byte {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	return make([]byte, block.Size)
}

// rotateIfDue rotates VariantD epochs that have elapsed. The rotation runs
// inline in the triggering caller but releases the lock across its backend
// I/O; callers arriving meanwhile see s.rotating and proceed without
// blocking (the in-progress rotation covers the due boundary).
func (s *Store) rotateIfDue() {
	if s.logger == nil || s.rotating {
		return
	}
	for {
		epoch := int64(s.now().Sub(s.start) / s.opts.Epoch)
		if s.curEpoch >= epoch {
			return
		}
		s.curEpoch++
		if committed, err := s.rotateStaged(); err != nil {
			// An aborted transition touched nothing: the spill logs and
			// the previous epoch's cache set are intact, and the next
			// boundary (or a manual RotateEpoch) retries with the counts
			// still accumulating. A post-commit reset failure is counted
			// separately (ResetFailures, inside rotateStaged) — the
			// rotation itself took effect.
			if !committed {
				s.stats.RotateFailures++
			}
			return
		}
		if s.closed {
			return
		}
	}
}

// RotateEpoch forces an immediate SieveStore-D epoch boundary: the current
// logs are reduced, qualifying blocks are batch-allocated (fetching their
// data from the ensemble), and the logs reset. The epoch schedule restarts
// from here — the next automatic rotation happens one full Epoch after the
// epoch containing the current time, not at the originally scheduled
// boundary (otherwise a near-boundary manual rotation would immediately be
// followed by an automatic one over empty logs, wiping the cache). It is a
// no-op for VariantC.
func (s *Store) RotateEpoch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.logger == nil {
		return nil
	}
	// Wait out a transition already in progress, then run our own: the
	// caller asked for a boundary *now*, after whatever was already due.
	for s.rotating {
		s.rotCond.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	committed, err := s.rotateStaged()
	if !committed {
		s.stats.RotateFailures++
		return err
	}
	// Restart the schedule: the next automatic rotation is one full Epoch
	// from now. (start is only used for epoch scheduling under VariantD.)
	// The boundary took effect even if the post-commit log reset failed —
	// that error is returned but counted in ResetFailures, not as an abort.
	s.start = s.now()
	s.curEpoch = 0
	return err
}

// rotateStaged performs one SieveStore-D epoch transition. Called with mu
// held; returns with mu held. The transition is staged so the lock is
// never held across backend I/O — concurrent reads and writes keep being
// served throughout — and failure-atomic: any error before the final swap
// leaves both the spill logs and the cache contents exactly as they were
// (Select does not reset the logs; Reset runs only after the swap
// commits). committed reports whether the swap took effect: a reset error
// after the commit is returned with committed true so callers can count it
// separately from an abort.
func (s *Store) rotateStaged() (committed bool, err error) {
	s.rotating = true
	s.rotSkip = make(map[block.Key]bool)
	defer func() {
		s.rotating = false
		s.rotSkip = nil
		s.rotCond.Broadcast()
	}()

	// Stage 1: reduce the logs and select the new set — off-lock.
	s.mu.Unlock()
	selected, err := s.logger.Select(s.opts.DThreshold)
	s.mu.Lock()
	if err != nil {
		return false, err
	}
	if s.closed {
		return false, ErrClosed
	}
	if cap := s.tags.Capacity(); len(selected) > cap {
		selected = selected[:cap] // Select orders hottest-first
	}

	// Stage 2: fetch the selected blocks that are not already resident —
	// off-lock, in contiguous multi-block runs with bounded parallelism.
	// (Residency only shrinks while rotating: VariantD admits solely at
	// epoch boundaries, so "need" cannot grow stale the dangerous way.)
	var need []block.Key
	for _, k := range selected {
		if !s.tags.Contains(k) {
			need = append(need, k)
		}
	}
	s.mu.Unlock()
	fetched, nReads, nBytes, err := s.fetchBatch(need)
	s.mu.Lock()
	s.stats.BackendReads += nReads
	s.stats.BackendBytesRead += nBytes
	if err != nil {
		return false, err
	}
	if s.closed {
		return false, ErrClosed
	}

	// Stage 3: write back dirty blocks the swap would evict — staged like
	// Flush, and aborting the rotation on failure (evicting them unflushed
	// would lose data; flushing under the lock is what we are removing).
	inNew := make(map[block.Key]bool, len(selected))
	for _, k := range selected {
		inNew[k] = true
	}
	if err := s.flushStagedLocked(func(k block.Key) bool { return !inNew[k] }); err != nil {
		return false, err
	}
	if s.closed {
		return false, ErrClosed
	}

	// Stage 4: commit — all under the lock, no backend I/O. Fetches still
	// in the air predate the new epoch and must not install; write
	// reservations stay attached (their data is newer than our batch).
	s.staleFetchFlightsLocked()
	// A write reservation still pending at commit may already have sent its
	// data to the backend — after our batch fetch read the old contents —
	// without yet re-acquiring mu to mark rotSkip itself. Write-back
	// through-writes never fold their data into the cache afterwards, so
	// installing our fetched copy would serve stale data until the next
	// epoch: treat the key as skipped now.
	for k, f := range s.inflight {
		if f.isWrite {
			s.rotSkip[k] = true
		}
	}
	// Blocks still dirty at commit (re-dirtied while the lock was down)
	// can never be evicted unflushed: retain them into the new epoch,
	// giving up the cold tail of the selection if capacity demands it.
	var forced []block.Key
	for k := range s.dirty {
		forced = append(forced, k)
	}
	sort.Slice(forced, func(i, j int) bool { return forced[i] < forced[j] })
	final := make([]block.Key, 0, len(selected)+len(forced))
	inFinal := make(map[block.Key]bool, cap(final))
	for _, k := range forced {
		final = append(final, k)
		inFinal[k] = true
	}
	for _, k := range selected {
		if len(final) >= s.tags.Capacity() {
			break
		}
		if inFinal[k] {
			continue
		}
		if s.frames[k] == nil && (fetched[k] == nil || s.rotSkip[k]) {
			// Not resident and nothing trustworthy fetched (written or
			// invalidated during the transition): leave it out; a later
			// epoch can re-select it.
			continue
		}
		final = append(final, k)
		inFinal[k] = true
	}
	_, evicted := s.tags.Swap(final)
	for _, k := range evicted {
		s.free = append(s.free, s.frames[k])
		delete(s.frames, k)
		s.stats.Evictions++
	}
	for _, k := range final {
		if s.frames[k] == nil {
			s.frames[k] = fetched[k]
			s.stats.EpochMoves++
		}
	}
	s.stats.Epochs++

	// Stage 5: reset the logs — off-lock again (the logger is safe for
	// concurrent use, and accesses logged since Select carry into the new
	// epoch). The swap is already committed; a reset failure is surfaced
	// but no longer rolls anything back — the rotation itself took effect
	// (counted in Epochs, not RotateFailures), and tuples in partitions the
	// reset could not clear double-count into the next epoch's selection.
	s.mu.Unlock()
	rerr := s.logger.Reset()
	s.mu.Lock()
	if rerr != nil {
		s.stats.ResetFailures++
		return true, fmt.Errorf("core: epoch log reset: %w", rerr)
	}
	return true, nil
}

// Contains reports whether a block is currently cached (test/debug aid).
func (s *Store) Contains(server, volume int, off uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tags.Contains(block.MakeKey(server, volume, off/block.Size))
}

// Invalidate drops any cached blocks overlapping [off, off+length) of the
// volume, returning how many were resident. Use it when the backing
// ensemble is modified outside the Store (the write-through design makes
// this unnecessary for I/O that goes through the Store itself).
func (s *Store) Invalidate(server, volume int, off uint64, length int) (int, error) {
	if off%block.Size != 0 || length%block.Size != 0 || length <= 0 {
		return 0, ErrAlignment
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	first := off / block.Size
	dropped := 0
	for i := 0; i < length/block.Size; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		// A fetch or write in flight for this key would re-install data
		// from before the invalidation: mark it stale so its owner skips
		// the install, and detach it so later misses fetch fresh.
		if f, ok := s.inflight[key]; ok {
			f.stale = true
			delete(s.inflight, key)
		}
		// An epoch transition staging right now may have fetched this
		// block already; its swap must not resurrect invalidated data.
		if s.rotating {
			s.rotSkip[key] = true
		}
		if !s.tags.Contains(key) {
			continue
		}
		// A dirty block holds the only current copy: write it back before
		// dropping, or the data would be lost.
		if s.dirty[key] {
			if err := s.flushBlock(key); err != nil {
				return dropped, err
			}
		}
		s.tags.Remove(key)
		s.free = append(s.free, s.frames[key])
		delete(s.frames, key)
		dropped++
	}
	return dropped, nil
}
