// Package core is the SieveStore library proper: a highly-selective,
// ensemble-level block cache layered over any storage backend.
//
// A Store intercepts block I/O destined for a multi-server storage ensemble
// (the Backend) and serves the popular blocks from a small cache — the
// paper's SSD — admitting blocks only through a sieve so that the mass of
// low-reuse blocks costs neither allocation-writes nor pollution:
//
//	be := store.NewMem()                       // or any Backend
//	st, _ := core.Open(be, core.Options{})     // SieveStore-C, 16 GB cache
//	st.WriteAt(0, 0, data, 0)                  // write-through
//	st.ReadAt(0, 0, buf, 0)                    // hits served from cache
//
// Both paper variants are available: the continuous sieve (SieveStore-C,
// default) admits a block on its n-th recent miss; the discrete variant
// (SieveStore-D) logs accesses and batch-allocates the blocks whose epoch
// access count crosses a threshold, via the offline per-key-reduction
// pipeline in internal/sieved.
package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/sieved"
	"repro/internal/tenant"
	"repro/internal/tier"
)

// Backend is the underlying storage ensemble. It matches
// internal/store.Backend; any implementation may be supplied.
type Backend interface {
	ReadAt(server, volume int, p []byte, off uint64) error
	WriteAt(server, volume int, p []byte, off uint64) error
}

// Variant selects the sieving mechanism.
type Variant int

const (
	// VariantC is SieveStore-C: online, hysteresis-based lazy allocation
	// through the two-tier IMCT/MCT sieve (§3.3).
	VariantC Variant = iota
	// VariantD is SieveStore-D: offline access counting with epoch batch
	// allocation (§3.2).
	VariantD
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantD {
		return "SieveStore-D"
	}
	return "SieveStore-C"
}

// Options configures a Store.
type Options struct {
	// CacheBytes is the cache capacity (default 16 GiB; must be a multiple
	// of the 512-byte block size).
	CacheBytes int64
	// Shards splits the store into this many key-hash shards, each with its
	// own lock, tag store, frames, and sieve state, so the hit path scales
	// with cores. Must be a power of two; 0 or 1 (the default) keeps the
	// single fully-associative cache of the paper. Capacity is partitioned
	// evenly across shards, so with Shards > 1 eviction is shard-local —
	// hit ratios can differ marginally from the global-LRU figure.
	Shards int
	// Policy selects the cache's replacement engine: "lru" (default, the
	// paper's policy), "sieve", "s3fifo", "fifo", or "clock"
	// (case-insensitive; see cache.PolicyNames). SIEVE and S3-FIFO trade
	// LRU's per-hit list surgery for a single bit/counter update under the
	// shard lock — measurably cheaper hits at an equal (±1%) hit ratio on
	// the golden Zipf workload, since the sieve already admits only hot
	// blocks.
	Policy string
	// Variant selects SieveStore-C (default) or SieveStore-D.
	Variant Variant
	// SieveC configures the continuous sieve (VariantC). With Shards > 1
	// each shard runs its own sieve over IMCTSize/Shards slots so total
	// metastate is unchanged.
	SieveC sieve.CConfig
	// DThreshold is the epoch access-count threshold (VariantD; default 10).
	DThreshold int64
	// Epoch is the discrete allocation epoch (VariantD; default 24 h).
	Epoch time.Duration
	// SpillDir hosts SieveStore-D's partitioned access logs. Empty means a
	// temporary directory owned (and removed) by the Store.
	SpillDir string
	// WriteBack enables write-back caching: writes to cached blocks stay
	// in the cache (marked dirty) and reach the ensemble only on eviction,
	// Flush, or Close. The default is write-through (the backend is always
	// authoritative), which is what the paper's appliance model implies.
	WriteBack bool
	// TrackLatency records whole-call ReadAt/WriteAt service times into
	// Stats.ReadLatency/WriteLatency and the latency histograms returned
	// by LatencyHistograms (a few atomic ops per call, allocation-free;
	// off by default so trace replay stays allocation- and
	// syscall-identical).
	TrackLatency bool
	// TraceSample enables sampled operation tracing: one in every
	// TraceSample ReadAt/WriteAt calls records an OpTrace lifecycle record
	// (arrival, shard, hit/miss/coalesce/admission counts, degraded-path
	// flags, whole-call latency) into a fixed-size ring readable via
	// Traces. 0 disables tracing; 1 traces every operation. The unsampled
	// hot path costs one atomic add.
	TraceSample int
	// TraceRingSize is how many sampled trace records the ring retains
	// (default 256).
	TraceRingSize int
	// DegradedFaultThreshold is how many consecutive cache-device faults
	// (frame-write failures, see FrameFaultInjector) flip the store into
	// pass-through bypass: reads and writes go straight to the backend —
	// a sick cache device must not take the whole ensemble path down with
	// it — until a recovery probe succeeds. The same threshold disables
	// SieveStore-D access logging after that many consecutive spill
	// errors. 0 means the default (3); negative disables degraded modes.
	DegradedFaultThreshold int
	// DegradedProbeEvery is how often one request is allowed through the
	// normal cached path (or one access through the disabled spill
	// logger) to probe for recovery while degraded (default 1 s).
	DegradedProbeEvery time.Duration
	// FrameFaultInjector, if non-nil, is consulted before every cache
	// frame install and models the cache device failing a write: a
	// non-nil error aborts the admission (the request itself still
	// succeeds — the data was already fetched or written through) and
	// counts a cache-device fault toward DegradedFaultThreshold. This is
	// the seam where an SSD-backed frame store would surface its write
	// errors; the fault-injection tests drive it directly. Epoch batch
	// installs (VariantD commit) bypass the seam.
	FrameFaultInjector func(key block.Key) error
	// GroupCommitWindow coalesces concurrent Flush calls (write-back mode):
	// the first flusher waits this long before starting the staged
	// write-back pass, and every Flush arriving inside the window rides on
	// that one pass instead of starting its own. 0 (the default) keeps the
	// historical immediate-flush behavior. The appliance enables it via
	// -group-commit-window so pipelined OpFlush frames from many clients
	// collapse into one backend sweep.
	GroupCommitWindow time.Duration
	// Now supplies time; nil means time.Now. Injectable for tests and
	// trace replay.
	Now func() time.Time
	// Sleep supplies the group-commit flush window's wait; nil means
	// time.Sleep. Injectable (alongside Now) so flush-window tests run
	// deterministically without real sleeps.
	Sleep func(time.Duration)
	// RAMTierBytes sizes the in-process RAM tier above the SSD cache
	// (internal/tier): blocks that keep hitting in the SSD tier are
	// promoted into RAM and served without touching the shard mutex's
	// frame bookkeeping. 0 (the default) disables the tier and leaves
	// every code path bit-identical to a tierless store. Must be a
	// multiple of the block size and at least one block per shard.
	RAMTierBytes int64
	// TierPromoteHits is how many repeated SSD-tier read hits promote a
	// block into the RAM tier (via a small per-shard promotion sieve;
	// default 2).
	TierPromoteHits int
	// TierAutotune lets the tier advisor resize the RAM tier at VariantD
	// epoch boundaries, within [TierMinBytes, TierMaxBytes]. Requires
	// RAMTierBytes > 0 and VariantD (the advisor replays the epoch
	// logger's access counts; VariantC has no epochs to replay).
	TierAutotune bool
	// TierMinBytes/TierMaxBytes bound the advisor's candidate sweep and
	// autotune resizes. Defaults: RAMTierBytes/4 (at least one block per
	// shard) and 4×RAMTierBytes capped at CacheBytes.
	TierMinBytes int64
	TierMaxBytes int64
	// TenantTracking enables per-tenant accounting (occupancy, hit
	// ratios, allocation-writes) keyed by the (server, volume) identity
	// every request carries, surfaced via TenantStats. Implied by
	// TenantQuotas and EnduranceBytesPerDay; on its own it only observes.
	// Off (the default), every path is byte-identical to a tenant-blind
	// store.
	TenantTracking bool
	// TenantQuotas enforces per-tenant soft capacity quotas: a tenant
	// at/over its quota is denied sieve admission (its misses still feed
	// the sieve's counters) and its share of a VariantD epoch selection
	// is clipped. Quotas repartition by realized per-tenant reuse — each
	// interval's hits earn the matching share of capacity above a small
	// guaranteed floor — every TenantRepartitionEvery and at VariantD
	// epoch boundaries. See internal/tenant.
	TenantQuotas bool
	// EnduranceBytesPerDay is the SSD endurance envelope: each tenant's
	// allocation-writes drain a token bucket refilling at the tenant's
	// capacity share of this daily rate. Running low raises the tenant's
	// sieve threshold; an empty bucket denies admission until it refills.
	// 0 (the default) disables the endurance budget.
	EnduranceBytesPerDay int64
	// TenantRepartitionEvery is the time-driven quota repartition
	// interval (default 1 minute). Negative disables the timer, leaving
	// only VariantD epoch-boundary repartitions.
	TenantRepartitionEvery time.Duration
}

// DefaultShards returns the appliance's default shard count: GOMAXPROCS
// rounded up to a power of two (capped at 256).
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 256 {
		s <<= 1
	}
	return s
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.CacheBytes == 0 {
		out.CacheBytes = 16 << 30
	}
	if out.CacheBytes < block.Size || out.CacheBytes%block.Size != 0 {
		return out, fmt.Errorf("core: CacheBytes %d must be a positive multiple of %d", out.CacheBytes, block.Size)
	}
	if out.Shards == 0 {
		out.Shards = 1
	}
	if out.Shards < 1 || out.Shards&(out.Shards-1) != 0 {
		return out, fmt.Errorf("core: Shards %d must be a power of two", out.Shards)
	}
	if int64(out.Shards) > out.CacheBytes/block.Size {
		return out, fmt.Errorf("core: Shards %d exceeds the cache's %d blocks", out.Shards, out.CacheBytes/block.Size)
	}
	if _, err := cache.NewPolicy(out.Policy, 1); err != nil {
		return out, err
	}
	if out.SieveC.IMCTSize == 0 {
		out.SieveC = sieve.DefaultCConfig()
	}
	if out.DThreshold == 0 {
		out.DThreshold = sieved.DefaultThreshold
	}
	if out.DThreshold < 1 {
		return out, fmt.Errorf("core: DThreshold must be ≥1, got %d", out.DThreshold)
	}
	if out.Epoch == 0 {
		out.Epoch = 24 * time.Hour
	}
	if out.Epoch < time.Minute {
		return out, fmt.Errorf("core: Epoch %v too short", out.Epoch)
	}
	if out.TraceSample < 0 {
		return out, fmt.Errorf("core: TraceSample must be ≥0, got %d", out.TraceSample)
	}
	if out.TraceRingSize == 0 {
		out.TraceRingSize = 256
	}
	if out.TraceRingSize < 1 {
		return out, fmt.Errorf("core: TraceRingSize must be ≥1, got %d", out.TraceRingSize)
	}
	if out.DegradedFaultThreshold == 0 {
		out.DegradedFaultThreshold = 3
	}
	if out.DegradedProbeEvery == 0 {
		out.DegradedProbeEvery = time.Second
	}
	if out.DegradedProbeEvery < 0 {
		return out, fmt.Errorf("core: DegradedProbeEvery %v must be positive", out.DegradedProbeEvery)
	}
	if out.GroupCommitWindow < 0 {
		return out, fmt.Errorf("core: GroupCommitWindow %v must be ≥0", out.GroupCommitWindow)
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	if out.Sleep == nil {
		out.Sleep = time.Sleep
	}
	if out.RAMTierBytes < 0 || out.RAMTierBytes%block.Size != 0 {
		return out, fmt.Errorf("core: RAMTierBytes %d must be a non-negative multiple of %d", out.RAMTierBytes, block.Size)
	}
	if out.RAMTierBytes > 0 && out.RAMTierBytes < int64(out.Shards)*block.Size {
		return out, fmt.Errorf("core: RAMTierBytes %d below one block per shard (%d shards)", out.RAMTierBytes, out.Shards)
	}
	if out.TierPromoteHits == 0 {
		out.TierPromoteHits = tier.DefaultPromoteHits
	}
	if out.TierPromoteHits < 1 {
		return out, fmt.Errorf("core: TierPromoteHits must be ≥1, got %d", out.TierPromoteHits)
	}
	if out.RAMTierBytes > 0 {
		if out.TierMinBytes == 0 {
			out.TierMinBytes = out.RAMTierBytes / 4
		}
		if min := int64(out.Shards) * block.Size; out.TierMinBytes < min {
			out.TierMinBytes = min
		}
		out.TierMinBytes -= out.TierMinBytes % block.Size
		if out.TierMaxBytes == 0 {
			out.TierMaxBytes = 4 * out.RAMTierBytes
			if out.TierMaxBytes > out.CacheBytes {
				out.TierMaxBytes = out.CacheBytes
			}
		}
		out.TierMaxBytes -= out.TierMaxBytes % block.Size
		if out.TierMinBytes > out.TierMaxBytes {
			return out, fmt.Errorf("core: TierMinBytes %d exceeds TierMaxBytes %d", out.TierMinBytes, out.TierMaxBytes)
		}
		if out.RAMTierBytes < out.TierMinBytes || out.RAMTierBytes > out.TierMaxBytes {
			return out, fmt.Errorf("core: RAMTierBytes %d outside [TierMinBytes %d, TierMaxBytes %d]", out.RAMTierBytes, out.TierMinBytes, out.TierMaxBytes)
		}
	}
	if out.TierAutotune {
		if out.RAMTierBytes == 0 {
			return out, errors.New("core: TierAutotune requires RAMTierBytes > 0")
		}
		if out.Variant != VariantD {
			return out, errors.New("core: TierAutotune requires VariantD (the advisor replays epoch access counts)")
		}
	}
	if out.EnduranceBytesPerDay < 0 {
		return out, fmt.Errorf("core: EnduranceBytesPerDay must be ≥0, got %d", out.EnduranceBytesPerDay)
	}
	if out.TenantQuotas || out.EnduranceBytesPerDay > 0 {
		out.TenantTracking = true
	}
	if out.TenantRepartitionEvery == 0 {
		out.TenantRepartitionEvery = time.Minute
	}
	return out, nil
}

// Stats counts the Store's activity. Blocks are 512-byte units.
type Stats struct {
	Reads, Writes          int64 // block accesses by kind
	ReadHits, WriteHits    int64 // blocks served/updated in cache
	AllocWrites            int64 // blocks written into the cache on admission
	Evictions              int64 // blocks evicted
	EpochMoves             int64 // blocks batch-moved at epoch boundaries (VariantD)
	Epochs                 int64 // completed epoch rotations (VariantD)
	BackendReads           int64 // read requests issued to the ensemble
	BackendWrites          int64 // write requests issued to the ensemble
	CachedBlocks           int64 // current residency
	CapacityBlocks         int64
	SieveTrackedBlocks     int64 // precise sieve metastate entries (VariantC)
	DirtyBlocks            int64 // write-back blocks awaiting flush
	FlushWrites            int64 // dirty blocks written back to the ensemble
	BackendBytesRead       int64
	BackendBytesWritten    int64
	CacheBytesServed       int64 // bytes of reads served from cache
	BackendBytesServedRead int64
	CoalescedReads         int64 // miss blocks served by joining another caller's in-flight fetch
	RotateFailures         int64 // epoch rotations aborted before the swap by a backend or log error (VariantD)
	ResetFailures          int64 // epoch log resets that failed after the swap committed — the rotation still counts in Epochs (VariantD)
	FlushErrors            int64 // dirty write-backs that failed (the blocks stay dirty and resident)
	BypassReads            int64 // blocks read straight from the backend while degraded
	BypassWrites           int64 // blocks written straight to the backend while degraded
	DegradedEnters         int64 // transitions into cache-bypass mode
	DegradedExits          int64 // recoveries out of cache-bypass mode
	CacheFaults            int64 // cache-device (frame-write) faults observed
	SpillDisables          int64 // times SieveStore-D access logging was disabled by spill faults
	SelectOverflow         int64 // hottest-first selected blocks dropped for capacity at epoch swaps (skewed key→shard splits, dirty retentions displacing the selection, tag-store truncation) — VariantD
	PinnedReads            int64 // blocks served zero-copy via ReadPinned (a subset of ReadHits)
	GroupCommits           int64 // staged flush passes started by Flush with group commit enabled
	CoalescedFlushes       int64 // Flush calls that rode on another caller's group-committed pass
	PinnedFrames           int64 // frames currently lent out to zero-copy readers (SSD + RAM tier)
	TierHits               int64 // blocks served from the RAM tier (a subset of ReadHits)
	TierPromotions         int64 // blocks promoted from the SSD tier into RAM
	TierDemotions          int64 // RAM-tier evictions back to SSD-resident-only
	TierInvalidations      int64 // RAM-tier drops because the data changed below
	TierCachedBlocks       int64 // current RAM-tier residency
	TierCapacityBlocks     int64 // current RAM-tier capacity (autotune moves it)
	TierResizes            int64 // RAM-tier capacity changes applied by autotune
	Tenants                int64 // distinct (server, volume) tenants seen (tenant tracking only)
	QuotaDenials           int64 // admissions denied because the tenant was at/over its soft quota
	ThrottleDenials        int64 // admissions denied by an empty tenant endurance bucket
	TenantClips            int64 // epoch-selected blocks clipped by tenant quota or endurance budget (VariantD)
	TenantRepartitions     int64 // quota repartitions run (time-driven and epoch-boundary)
	Degraded               bool  // whether the store is in cache-bypass mode right now

	// ReadLatency/WriteLatency aggregate whole-call ReadAt/WriteAt service
	// times when Options.TrackLatency is set (zero otherwise).
	ReadLatency  metrics.OpLatencySnapshot
	WriteLatency metrics.OpLatencySnapshot
}

// accumulate folds one shard's counters into the receiver.
func (s *Stats) accumulate(o Stats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.ReadHits += o.ReadHits
	s.WriteHits += o.WriteHits
	s.AllocWrites += o.AllocWrites
	s.Evictions += o.Evictions
	s.EpochMoves += o.EpochMoves
	s.Epochs += o.Epochs
	s.BackendReads += o.BackendReads
	s.BackendWrites += o.BackendWrites
	s.CachedBlocks += o.CachedBlocks
	s.CapacityBlocks += o.CapacityBlocks
	s.SieveTrackedBlocks += o.SieveTrackedBlocks
	s.DirtyBlocks += o.DirtyBlocks
	s.FlushWrites += o.FlushWrites
	s.BackendBytesRead += o.BackendBytesRead
	s.BackendBytesWritten += o.BackendBytesWritten
	s.CacheBytesServed += o.CacheBytesServed
	s.BackendBytesServedRead += o.BackendBytesServedRead
	s.CoalescedReads += o.CoalescedReads
	s.RotateFailures += o.RotateFailures
	s.ResetFailures += o.ResetFailures
	s.FlushErrors += o.FlushErrors
	s.SelectOverflow += o.SelectOverflow
	s.PinnedReads += o.PinnedReads
	s.PinnedFrames += o.PinnedFrames
}

// Hits returns total block hits.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// HitRatio returns the captured fraction of block accesses.
func (s Stats) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("core: store is closed")

// ErrAlignment rejects I/O that is not 512-byte aligned.
var ErrAlignment = errors.New("core: offset and length must be multiples of 512")

// ErrRange rejects I/O whose offset or extent exceeds the addressable
// block range (block.MaxBlockNumber blocks per volume).
var ErrRange = errors.New("core: request beyond addressable block range")

// Store is a SieveStore cache instance. It is safe for concurrent use.
//
// Concurrency model: the cache is split into Options.Shards key-hash
// shards, each guarded by its own mutex over that shard's tags, frames,
// dirty set, in-flight table, sieve state, and stats. No shard lock is
// ever held across hot-path backend I/O: a miss reserves its keys in the
// shard's in-flight table, releases the lock, fetches from the ensemble,
// then re-acquires it for sieve admission and frame installation.
// Duplicate concurrent misses for a key coalesce onto the first fetch
// (single-flight); writes reserve their key range — visiting shards in
// ascending index order, the global deadlock-avoidance rule — so
// backend-write order and cache-update order cannot invert. Cross-shard
// operations (epoch rotation, Flush, Close, snapshots) are staged per
// shard in the same ascending order. SieveStore-D access logging happens
// before any shard lock is taken.
type Store struct {
	backend Backend
	opts    Options

	shards    []*shard
	shardMask uint64
	logger    *sieved.Logger

	// tier is the in-process RAM tier above the SSD cache (nil unless
	// Options.RAMTierBytes > 0). Tier hits are served under the tier's
	// read lock only; tier membership changes (promotion, invalidation)
	// happen while the owning store shard's mutex is held, so they
	// linearize with frame updates. tierAdvice is the latest epoch's
	// advisor output (VariantD; nil before the first rotation).
	tier       *tier.Cache
	tierAdvice atomic.Pointer[tier.Advice]

	// acct is the multi-tenant QoS accountant (nil unless
	// Options.TenantTracking — see internal/tenant). It is a leaf in the
	// lock order: safe to call under any shard lock, never calls back.
	acct *tenant.Accountant

	closed atomic.Bool

	// rotMu guards the epoch schedule (start, curEpoch) and the rotating
	// flag; rotCond is broadcast when a transition ends. deadline caches
	// the next boundary as UnixNanos (MaxInt64 for VariantC) so the hot
	// path checks it with one atomic load, no lock.
	rotMu    sync.Mutex
	rotCond  *sync.Cond
	rotating bool
	start    time.Time
	curEpoch int64
	deadline atomic.Int64

	// sieveBase is the immutable Open time used for sieve access
	// timestamps. (start also begins there but is reset by RotateEpoch,
	// which must not rewind the sieve's windows.)
	sieveBase time.Time

	epochs         atomic.Int64
	rotateFailures atomic.Int64
	resetFailures  atomic.Int64

	// Degraded-mode state (see Options.DegradedFaultThreshold). degraded
	// flips on after DegradedFaultThreshold consecutive cache-device
	// faults; while set, requests bypass the cache (straight to the
	// backend) except one probe per DegradedProbeEvery that takes the
	// normal path — a probe completing without a new cache fault flips
	// degraded back off. spillDisabled is the analogous per-epoch switch
	// for SieveStore-D access logging.
	degraded         atomic.Bool
	cacheFaultStreak atomic.Int64 // consecutive frame faults; reset by any fault-free install
	cacheFaults      atomic.Int64 // total frame faults
	degradedEnters   atomic.Int64
	degradedExits    atomic.Int64
	bypassReads      atomic.Int64
	bypassWrites     atomic.Int64
	lastCacheProbe   atomic.Int64 // UnixNanos of the last bypass probe
	spillFaultStreak atomic.Int64
	spillDisabled    atomic.Bool
	spillDisables    atomic.Int64
	lastSpillProbe   atomic.Int64

	ownSpill string // temp dir to remove on Close, if any

	// monoBase anchors latency timestamps: time.Since(monoBase) reads only
	// the monotonic clock (one nanotime call), where time.Now() also reads
	// the wall clock — roughly 4x the cost on the VMs this runs on. Latency
	// tracking needs deltas, never wall time.
	monoBase time.Time

	// histRead/histWrite bucket whole-call service times into mergeable
	// log-linear histograms (TrackLatency only) and are the single source
	// of truth for latency accounting: Stats derives the flat
	// OpLatencySnapshot (ops/total/max) from the histogram so the hot path
	// pays one Observe, not two. Zero-value ready; Observe is
	// allocation-free. errRead/errWrite count failed calls separately —
	// the histogram buckets durations only.
	histRead  metrics.Histogram
	histWrite metrics.Histogram
	errRead   atomic.Int64
	errWrite  atomic.Int64

	// trace is the sampled op-lifecycle ring (nil unless TraceSample > 0).
	trace *metrics.TraceRing

	// Group-commit state (Options.GroupCommitWindow > 0): gcBatch is the
	// staged flush pass currently collecting joiners, if any. gcMu guards
	// it; the pass itself runs with gcMu released.
	gcMu             sync.Mutex
	gcBatch          *flushBatch
	groupCommits     atomic.Int64
	coalescedFlushes atomic.Int64
}

// flushBatch is one group-committed flush pass: every Flush arriving
// while it is open shares its outcome.
type flushBatch struct {
	done chan struct{}
	err  error
}

// Open validates opts and returns a ready Store over backend.
func Open(backend Backend, opts Options) (*Store, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	now := o.Now()
	s := &Store{
		backend:   backend,
		opts:      o,
		shardMask: uint64(o.Shards - 1),
		start:     now,
		sieveBase: now,
		monoBase:  time.Now(),
	}
	s.rotCond = sync.NewCond(&s.rotMu)
	s.deadline.Store(math.MaxInt64)
	if o.TraceSample > 0 {
		s.trace = metrics.NewTraceRing(o.TraceRingSize, o.TraceSample)
	}
	caps := cache.PartitionCapacity(int(o.CacheBytes/block.Size), o.Shards)
	s.shards = make([]*shard, o.Shards)
	for i := range s.shards {
		tags, err := cache.NewPolicy(o.Policy, caps[i])
		if err != nil {
			return nil, err
		}
		sh := &shard{
			store:    s,
			idx:      i,
			tags:     tags,
			frames:   make(map[block.Key][]byte),
			dirty:    make(map[block.Key]bool),
			inflight: make(map[block.Key]*flight),
		}
		sh.stats.CapacityBlocks = int64(caps[i])
		s.shards[i] = sh
	}
	if o.TenantTracking {
		acct, err := tenant.New(tenant.Config{
			CapacityBlocks:       o.CacheBytes / block.Size,
			BlockBytes:           block.Size,
			Quotas:               o.TenantQuotas,
			EnduranceBytesPerDay: o.EnduranceBytesPerDay,
			RepartitionEvery:     o.TenantRepartitionEvery,
		})
		if err != nil {
			return nil, err
		}
		s.acct = acct
	}
	if o.RAMTierBytes > 0 {
		// SIEVE is the tier's point: lookups touch one atomic bit, so the
		// RAM hit path never takes an exclusive lock.
		tc, err := tier.New(tier.Config{Bytes: o.RAMTierBytes, Shards: o.Shards, Policy: "sieve"})
		if err != nil {
			return nil, err
		}
		s.tier = tc
		for _, sh := range s.shards {
			// The promotion sieve lives in the store shard (bumped under its
			// existing lock), so tier admission adds no locking to SSD hits.
			sh.promo = tier.NewPromoFilter(0, o.TierPromoteHits)
		}
	}
	switch o.Variant {
	case VariantC:
		// Each shard sieves its own slice of the key space; splitting the
		// IMCT keeps total metastate (and the aliasing rate, since each
		// shard sees ~1/Shards of the keys) unchanged.
		cfg := o.SieveC
		if o.Shards > 1 {
			cfg.IMCTSize = (cfg.IMCTSize + o.Shards - 1) / o.Shards
		}
		for _, sh := range s.shards {
			sc, err := sieve.NewC(cfg)
			if err != nil {
				return nil, err
			}
			sh.sieveC = sc
		}
	case VariantD:
		dir := o.SpillDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sievestore-spill-*")
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s.ownSpill = dir
		}
		// Keep the partition count a multiple of the shard count: both
		// hash with the same mix, so every partition then holds keys of
		// exactly one shard (partition p feeds shard p mod Shards) and
		// concurrent shards never contend on a partition lock.
		partitions := sieved.DefaultPartitions
		if o.Shards > partitions {
			partitions = o.Shards
		}
		var logger *sieved.Logger
		if o.SpillDir != "" {
			// A caller-supplied spill dir is durable state: resume (and
			// salvage) the epoch in progress instead of truncating it — a
			// daemon restart must not discard the day's access counts.
			logger, err = sieved.OpenLogger(dir, partitions)
		} else {
			logger, err = sieved.NewLogger(dir, partitions)
		}
		if err != nil {
			if s.ownSpill != "" {
				os.RemoveAll(s.ownSpill)
			}
			return nil, err
		}
		s.logger = logger
		s.updateDeadlineLocked()
	default:
		return nil, fmt.Errorf("core: unknown variant %d", o.Variant)
	}
	return s, nil
}

// Variant returns the store's sieving variant.
func (s *Store) Variant() Variant { return s.opts.Variant }

// Shards returns the store's shard count.
func (s *Store) Shards() int { return len(s.shards) }

// Policy returns the canonical name of the replacement engine the shards
// run ("LRU", "SIEVE", ...). Immutable after Open.
func (s *Store) Policy() string { return s.shards[0].tags.Name() }

// shardIndex maps a key to its shard with the same 64-bit avalanche mix
// the sieved logger hashes partitions with, so shard i's keys land in
// exactly the partitions ≡ i (mod Shards).
func (s *Store) shardIndex(key block.Key) int {
	if s.shardMask == 0 {
		return 0
	}
	x := uint64(key)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x & s.shardMask)
}

func (s *Store) shardOf(key block.Key) *shard { return s.shards[s.shardIndex(key)] }

// Stats returns a snapshot of the store's counters, merged across shards.
// Each shard is snapshotted under its own lock; concurrent operations may
// land between shard snapshots, so cross-shard sums are momentary, not a
// single global instant (exact with Shards=1).
func (s *Store) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		sub := sh.stats
		sub.CachedBlocks = int64(sh.tags.Len())
		sub.DirtyBlocks = int64(len(sh.dirty))
		sub.PinnedFrames = int64(len(sh.pins))
		if sh.sieveC != nil {
			sub.SieveTrackedBlocks = int64(sh.sieveC.Stats().MCTSize)
		}
		sh.mu.Unlock()
		st.accumulate(sub)
	}
	if s.tier != nil {
		ts := s.tier.Stats()
		// Tier hits are real block reads served from cache — fold them
		// into the read/hit/byte totals (they bypassed the shards' own
		// accounting by design) and report the tier-specific counters
		// alongside. CachedBlocks stays SSD-only: the tier holds extra
		// copies, not extra residency.
		st.Reads += ts.Hits
		st.ReadHits += ts.Hits
		st.CacheBytesServed += ts.Hits * block.Size
		st.PinnedReads += ts.Pinned
		st.PinnedFrames += ts.PinnedFrames
		st.TierHits = ts.Hits
		st.TierPromotions = ts.Promotions
		st.TierDemotions = ts.Demotions
		st.TierInvalidations = ts.Invalidations
		st.TierCachedBlocks = ts.CachedBlocks
		st.TierCapacityBlocks = ts.CapacityBlocks
		st.TierResizes = ts.Resizes
	}
	if s.acct != nil {
		t := s.acct.Totals()
		st.Tenants = t.Tenants
		st.QuotaDenials = t.QuotaDenials
		st.ThrottleDenials = t.ThrottleDenials
		st.TenantClips = t.SelectionClips
		st.TenantRepartitions = t.Repartitions
	}
	st.Epochs = s.epochs.Load()
	st.RotateFailures = s.rotateFailures.Load()
	st.ResetFailures = s.resetFailures.Load()
	st.BypassReads = s.bypassReads.Load()
	st.BypassWrites = s.bypassWrites.Load()
	st.DegradedEnters = s.degradedEnters.Load()
	st.DegradedExits = s.degradedExits.Load()
	st.CacheFaults = s.cacheFaults.Load()
	st.SpillDisables = s.spillDisables.Load()
	st.GroupCommits = s.groupCommits.Load()
	st.CoalescedFlushes = s.coalescedFlushes.Load()
	st.Degraded = s.degraded.Load()
	st.ReadLatency = latencyFromHistogram(s.histRead.Snapshot(), s.errRead.Load())
	st.WriteLatency = latencyFromHistogram(s.histWrite.Snapshot(), s.errWrite.Load())
	return st
}

// latencyFromHistogram flattens a histogram snapshot into the wire-stable
// OpLatencySnapshot shape, folding in the separately tracked error count.
func latencyFromHistogram(h metrics.HistogramSnapshot, errs int64) metrics.OpLatencySnapshot {
	return metrics.OpLatencySnapshot{
		Ops:        h.Count,
		Errors:     errs,
		TotalNanos: h.Sum,
		MaxNanos:   h.Max,
	}
}

// Degraded reports whether the store is currently in cache-bypass mode.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// noteCacheFault records one cache-device fault; crossing the threshold
// enters bypass mode. Callable under a shard lock (atomics only).
func (s *Store) noteCacheFault() {
	s.cacheFaults.Add(1)
	streak := s.cacheFaultStreak.Add(1)
	thr := int64(s.opts.DegradedFaultThreshold)
	if thr > 0 && streak >= thr && s.degraded.CompareAndSwap(false, true) {
		s.degradedEnters.Add(1)
		// Wait one full probe interval before the first recovery probe.
		s.lastCacheProbe.Store(s.now().UnixNano())
	}
}

// noteCacheOK resets the consecutive-fault streak after a fault-free
// frame install.
func (s *Store) noteCacheOK() { s.cacheFaultStreak.Store(0) }

// exitDegraded leaves bypass mode after a successful recovery probe.
func (s *Store) exitDegraded() {
	if s.degraded.CompareAndSwap(true, false) {
		s.cacheFaultStreak.Store(0)
		s.degradedExits.Add(1)
	}
}

// probeDue claims the per-interval recovery probe slot tracked by last:
// true means this caller is the probe and last was advanced.
func (s *Store) probeDue(last *atomic.Int64) bool {
	now := s.now().UnixNano()
	l := last.Load()
	return now-l >= int64(s.opts.DegradedProbeEvery) && last.CompareAndSwap(l, now)
}

// bypassRead serves a read while degraded: dirty write-back blocks (whose
// only current copy is the cache frame) come from the cache, everything
// else straight from the backend. No admission, no access logging, no
// epoch rotation — the degraded store does the minimum that keeps clients
// correct.
func (s *Store) bypassRead(server, volume int, p []byte, off uint64, tr *metrics.OpTrace) error {
	nBlocks := len(p) / block.Size
	first := off / block.Size
	var servedDirty int64
	var served []bool
	if s.opts.WriteBack {
		for _, g := range s.groupByShard(server, volume, first, nBlocks) {
			g.sh.mu.Lock()
			for _, i := range g.idxs {
				key := block.MakeKey(server, volume, first+uint64(i))
				if g.sh.dirty[key] && g.sh.frames[key] != nil {
					copy(p[i*block.Size:(i+1)*block.Size], g.sh.frames[key])
					if served == nil {
						served = make([]bool, nBlocks)
					}
					served[i] = true
					servedDirty++
				}
			}
			g.sh.mu.Unlock()
		}
	}
	var err error
	var nReads, nBytes int64
	for i := 0; i < nBlocks && err == nil; {
		if served != nil && served[i] {
			i++
			continue
		}
		j := i + 1
		for j < nBlocks && (served == nil || !served[j]) {
			j++
		}
		buf := p[i*block.Size : j*block.Size]
		if err = s.backend.ReadAt(server, volume, buf, off+uint64(i)*block.Size); err == nil {
			nReads++
			nBytes += int64(len(buf))
		}
		i = j
	}
	sh := s.shardOf(block.MakeKey(server, volume, first))
	sh.mu.Lock()
	sh.stats.Reads += int64(nBlocks)
	sh.stats.ReadHits += servedDirty
	sh.stats.CacheBytesServed += servedDirty * block.Size
	sh.stats.BackendReads += nReads
	sh.stats.BackendBytesRead += nBytes
	sh.stats.BackendBytesServedRead += nBytes
	sh.mu.Unlock()
	s.tenantAccess(server, volume, int64(nBlocks), false)
	s.tenantHits(server, volume, servedDirty)
	s.bypassReads.Add(int64(nBlocks))
	if tr != nil {
		tr.Bypass = true
		tr.Hits = int(servedDirty)
		tr.Misses = nBlocks - int(servedDirty)
	}
	return err
}

// bypassWrite writes straight through to the backend while degraded, then
// drops any cached copies of the written range — the cache is not being
// maintained, so a stale resident frame (or an in-flight fetch of
// pre-write data) must not survive to be served after recovery.
func (s *Store) bypassWrite(server, volume int, p []byte, off uint64, tr *metrics.OpTrace) error {
	nBlocks := len(p) / block.Size
	first := off / block.Size
	err := s.backend.WriteAt(server, volume, p, off)
	sh := s.shardOf(block.MakeKey(server, volume, first))
	sh.mu.Lock()
	sh.stats.Writes += int64(nBlocks)
	if err == nil {
		sh.stats.BackendWrites++
		sh.stats.BackendBytesWritten += int64(len(p))
	}
	sh.mu.Unlock()
	s.tenantAccess(server, volume, int64(nBlocks), true)
	if err != nil {
		return err
	}
	s.bypassWrites.Add(int64(nBlocks))
	if tr != nil {
		tr.Bypass = true
		tr.Misses = nBlocks
	}
	s.dropRange(server, volume, first, nBlocks)
	return nil
}

// dropRange discards cached state for [first, first+n) after the backend
// was modified directly (bypass writes): resident frames are freed
// without write-back (the whole block was just overwritten, so a dirty
// frame is superseded), in-flight operations are marked stale and
// detached so a fetch racing the bypass write cannot install pre-write
// data, and keys are recorded in rotSkip so a staging epoch commit cannot
// resurrect its older batch-fetched copy.
func (s *Store) dropRange(server, volume int, first uint64, n int) {
	for _, g := range s.groupByShard(server, volume, first, n) {
		g.sh.mu.Lock()
		for _, i := range g.idxs {
			key := block.MakeKey(server, volume, first+uint64(i))
			s.tierInvalidate(key)
			if f, ok := g.sh.inflight[key]; ok {
				f.stale = true
				delete(g.sh.inflight, key)
			}
			if g.sh.rotSkip != nil {
				g.sh.rotSkip[key] = true
			}
			if g.sh.tags.Contains(key) {
				delete(g.sh.dirty, key)
				g.sh.tags.Remove(key)
				g.sh.recycleLocked(g.sh.frames[key])
				delete(g.sh.frames, key)
				g.sh.tenantEvict(key)
			}
		}
		g.sh.mu.Unlock()
	}
}

// Close releases the store's resources. In write-back mode the dirty
// blocks are written back first (staged, without holding any shard lock
// across the backend I/O); write-through stores have nothing to flush.
func (s *Store) Close() error {
	s.rotMu.Lock()
	// Wait out an epoch transition in progress: it expects the logger and
	// spill directory to outlive it.
	for s.rotating {
		s.rotCond.Wait()
	}
	if s.closed.Load() {
		s.rotMu.Unlock()
		return nil
	}
	// Mark closed first so no new I/O can dirty blocks behind the drains.
	// An operation already past its entry check either sees closed under
	// its shard's lock (and writes through instead of dirtying) or holds
	// the shard lock before our drain does — in which case the drain
	// below sees its dirty blocks.
	s.closed.Store(true)
	s.rotMu.Unlock()

	var err error
	for _, sh := range s.shards {
		sh.mu.Lock()
		if derr := sh.drainDirtyLocked(); err == nil {
			err = derr
		}
		sh.mu.Unlock()
	}
	if s.logger != nil {
		if lerr := s.logger.Close(); err == nil {
			err = lerr
		}
	}
	if s.ownSpill != "" {
		if rmErr := os.RemoveAll(s.ownSpill); err == nil {
			err = rmErr
		}
	}
	return err
}

// checkIO validates request geometry. The block-range check matters for
// requests arriving off the wire: block.MakeKey treats an out-of-range
// component as a caller bug and panics, and a remote peer's stray offset
// must surface as an error, not take the daemon down.
func checkIO(p []byte, off uint64) error {
	if off%block.Size != 0 || len(p)%block.Size != 0 || len(p) == 0 {
		return ErrAlignment
	}
	end := off + uint64(len(p))
	if end < off || (end-1)/block.Size > block.MaxBlockNumber {
		return ErrRange
	}
	return nil
}

// ReadAt reads len(p) bytes from the volume at off, serving cached blocks
// from the cache and the rest from the backend. Missing blocks are offered
// to the sieve and admitted only if it approves.
//
// The backend fetch happens without any shard lock: missing keys are first
// reserved in their shard's in-flight table (misses already being fetched
// by another caller are joined rather than refetched), then read from the
// ensemble, and finally — under the shard lock again — offered to the
// sieve and installed.
func (s *Store) ReadAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	tr := s.beginTrace("read", server, volume, p, off)
	if s.opts.TrackLatency || tr != nil {
		start := time.Since(s.monoBase)
		defer func() {
			d := time.Since(s.monoBase) - start
			if s.opts.TrackLatency {
				s.histRead.Observe(d)
				if err != nil {
					s.errRead.Add(1)
				}
			}
			s.endTrace(tr, d, err)
		}()
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if s.degraded.Load() {
		if tr != nil {
			tr.Degraded = true
		}
		if !s.probeDue(&s.lastCacheProbe) {
			return s.bypassRead(server, volume, p, off, tr)
		}
		// This caller is the recovery probe: take the normal cached path,
		// and leave bypass mode if it completes without a fresh cache fault.
		base := s.cacheFaults.Load()
		defer func() {
			if err == nil && s.cacheFaults.Load() == base {
				s.exitDegraded()
			}
		}()
	}
	s.maybeRotate()
	if s.closed.Load() {
		return ErrClosed
	}
	s.tenantTick()
	nBlocks := len(p) / block.Size
	first := off / block.Size
	s.logAccess(server, volume, first, nBlocks)
	s.tenantAccess(server, volume, int64(nBlocks), false)

	// RAM-tier pass: blocks resident in the in-process tier are served
	// under its read lock plus one atomic reference-bit store — no shard
	// mutex, no policy bookkeeping. Hit accounting lives in the tier's
	// own atomics (folded into Stats), so an all-tier read touches no
	// shard at all. Single-block requests (the hot case) skip the
	// served-mask allocation: a hit returns here, a miss needs no mask.
	var tierServed []bool
	var nTier int
	if s.tier != nil {
		for i := 0; i < nBlocks; i++ {
			if s.tier.Lookup(block.MakeKey(server, volume, first+uint64(i)), p[i*block.Size:(i+1)*block.Size]) {
				if tierServed == nil && nBlocks > 1 {
					tierServed = make([]bool, nBlocks)
				}
				if tierServed != nil {
					tierServed[i] = true
				}
				nTier++
			}
		}
		if nTier == nBlocks {
			s.tenantHits(server, volume, int64(nBlocks))
			if tr != nil {
				tr.Hits = nBlocks
				tr.TierHits = nBlocks
			}
			return nil
		}
	}
	now := s.now()

	// A miss is either owned (this call fetches it) or joined (another
	// call's flight will deliver it); idx is the block's position in p.
	type miss struct {
		idx int
		key block.Key
		f   *flight
		sh  *shard
	}
	var mine, joined []miss
	var admitted int

	// Classify run-wise: each maximal run of consecutive blocks mapping to
	// the same shard is handled in one critical section (with Shards=1 the
	// whole request is a single critical section, exactly the unsharded
	// behavior).
	for i := 0; i < nBlocks; {
		if tierServed != nil && tierServed[i] {
			i++
			continue
		}
		sh := s.shardOf(block.MakeKey(server, volume, first+uint64(i)))
		j := i + 1
		for j < nBlocks && (tierServed == nil || !tierServed[j]) &&
			s.shardOf(block.MakeKey(server, volume, first+uint64(j))) == sh {
			j++
		}
		sh.mu.Lock()
		sh.stats.Reads += int64(j - i)
		for ; i < j; i++ {
			key := block.MakeKey(server, volume, first+uint64(i))
			if sh.tags.Touch(key) {
				copy(p[i*block.Size:(i+1)*block.Size], sh.frames[key])
				sh.stats.ReadHits++
				sh.stats.CacheBytesServed += block.Size
				sh.promoteOnHitLocked(key)
				continue
			}
			if f, ok := sh.inflight[key]; ok {
				f.waiters++
				sh.stats.CoalescedReads++
				joined = append(joined, miss{idx: i, key: key, f: f, sh: sh})
				continue
			}
			f := &flight{done: make(chan struct{})}
			sh.inflight[key] = f
			mine = append(mine, miss{idx: i, key: key, f: f, sh: sh})
		}
		sh.mu.Unlock()
	}

	// Fetch owned misses from the ensemble in contiguous runs — lock-free,
	// so concurrent callers overlap their backend latency. (Runs follow
	// block adjacency, not shard boundaries: backend request geometry is
	// unchanged by sharding.)
	var fetchErr error
	var nReads, nBytes int64
	okUpto := len(mine)
	for lo := 0; lo < len(mine); {
		hi := lo + 1
		for hi < len(mine) && mine[hi].idx == mine[hi-1].idx+1 {
			hi++
		}
		buf := p[mine[lo].idx*block.Size : (mine[hi-1].idx+1)*block.Size]
		if e := s.backend.ReadAt(server, volume, buf, off+uint64(mine[lo].idx)*block.Size); e != nil {
			fetchErr = e
			okUpto = lo
			break
		}
		nReads++
		nBytes += int64(len(buf))
		lo = hi
	}

	// Re-acquire shard by shard to account, admit, and complete the owned
	// flights. Blocks fetched before a failed run are still admitted
	// (matching the old run-at-a-time behavior). Backend counters are
	// charged once, to the first shard touched.
	charged := nReads == 0 && nBytes == 0
	for lo := 0; lo < len(mine); {
		sh := mine[lo].sh
		hi := lo + 1
		for hi < len(mine) && mine[hi].sh == sh {
			hi++
		}
		sh.mu.Lock()
		if !charged {
			sh.stats.BackendReads += nReads
			sh.stats.BackendBytesRead += nBytes
			sh.stats.BackendBytesServedRead += nBytes
			charged = true
		}
		for j := lo; j < hi; j++ {
			m := mine[j]
			if j < okUpto {
				data := p[m.idx*block.Size : (m.idx+1)*block.Size]
				if !m.f.stale && !s.closed.Load() {
					if sh.maybeAdmit(m.key, data, block.Read, now, false) {
						admitted++
					}
				}
				m.f.publishLocked(data)
			} else {
				m.f.err = fetchErr
			}
			if sh.inflight[m.key] == m.f {
				delete(sh.inflight, m.key)
			}
			close(m.f.done)
		}
		sh.mu.Unlock()
		lo = hi
	}
	// Hits include tier-served blocks (skipped from shard classification)
	// — everything the request found already cached.
	s.tenantHits(server, volume, int64(nBlocks-len(mine)-len(joined)))
	if tr != nil {
		tr.Misses = len(mine)
		tr.Coalesced = len(joined)
		tr.Hits = nBlocks - len(mine) - len(joined)
		tr.TierHits = nTier
		tr.Admitted = admitted
	}
	if fetchErr != nil {
		return fetchErr
	}

	// Join coalesced misses last: every flight this call owns is already
	// completed above, so blocking here cannot deadlock.
	for _, m := range joined {
		dst := p[m.idx*block.Size : (m.idx+1)*block.Size]
		if err := s.awaitFlight(m.sh, m.f, m.key, dst); err != nil {
			return err
		}
	}
	return nil
}

// awaitFlight waits for another caller's in-flight fetch of key and copies
// the result into dst. If that flight failed, the block is re-fetched
// directly (joining yet another flight if one has appeared meanwhile).
func (s *Store) awaitFlight(sh *shard, f *flight, key block.Key, dst []byte) error {
	for {
		<-f.done
		if f.err == nil {
			copy(dst, f.data)
			f.release()
			return nil
		}
		sh.mu.Lock()
		if s.closed.Load() {
			sh.mu.Unlock()
			return ErrClosed
		}
		if sh.tags.Touch(key) {
			copy(dst, sh.frames[key])
			sh.stats.ReadHits++
			sh.stats.CacheBytesServed += block.Size
			sh.mu.Unlock()
			return nil
		}
		if nf, ok := sh.inflight[key]; ok {
			nf.waiters++
			sh.mu.Unlock()
			f = nf
			continue
		}
		nf := &flight{done: make(chan struct{})}
		sh.inflight[key] = nf
		sh.mu.Unlock()

		err := s.backend.ReadAt(key.Server(), key.Volume(), dst, key.Offset())

		sh.mu.Lock()
		if err == nil {
			sh.stats.BackendReads++
			sh.stats.BackendBytesRead += block.Size
			sh.stats.BackendBytesServedRead += block.Size
			if !nf.stale && !s.closed.Load() {
				// Use the post-fetch clock, not the caller's pre-block one:
				// this path may have waited on several flights, and a stale
				// timestamp would admit through a sieve window that has in
				// fact already expired.
				sh.maybeAdmit(key, dst, block.Read, s.now(), false)
			}
			nf.publishLocked(dst)
		} else {
			nf.err = err
		}
		if sh.inflight[key] == nf {
			delete(sh.inflight, key)
		}
		close(nf.done)
		sh.mu.Unlock()
		return err
	}
}

// writeGroup is the slice of a write's block indices that map to one
// shard; groups are always visited in ascending shard order (the global
// lock-ordering rule).
type writeGroup struct {
	sh   *shard
	idxs []int
}

// groupByShard buckets the blocks [first, first+n) by shard, ascending.
func (s *Store) groupByShard(server, volume int, first uint64, n int) []writeGroup {
	if len(s.shards) == 1 {
		idxs := make([]int, n)
		for i := range idxs {
			idxs[i] = i
		}
		return []writeGroup{{sh: s.shards[0], idxs: idxs}}
	}
	buckets := make([][]int, len(s.shards))
	for i := 0; i < n; i++ {
		si := s.shardIndex(block.MakeKey(server, volume, first+uint64(i)))
		buckets[si] = append(buckets[si], i)
	}
	groups := make([]writeGroup, 0, len(s.shards))
	for si, idxs := range buckets {
		if len(idxs) > 0 {
			groups = append(groups, writeGroup{sh: s.shards[si], idxs: idxs})
		}
	}
	return groups
}

// WriteAt writes p through to the backend, updating cached blocks in place
// and offering missing blocks to the sieve.
//
// The backend write happens without any shard lock. The written key range
// is reserved in the shards' in-flight tables first — shard groups in
// ascending index order, all-or-nothing within each shard — which (a)
// serializes overlapping writes so backend order and cache order cannot
// invert, and (b) lets concurrent read misses on these keys coalesce onto
// the written data instead of racing the write with a backend fetch.
func (s *Store) WriteAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	tr := s.beginTrace("write", server, volume, p, off)
	if s.opts.TrackLatency || tr != nil {
		start := time.Since(s.monoBase)
		defer func() {
			d := time.Since(s.monoBase) - start
			if s.opts.TrackLatency {
				s.histWrite.Observe(d)
				if err != nil {
					s.errWrite.Add(1)
				}
			}
			s.endTrace(tr, d, err)
		}()
	}
	if s.closed.Load() {
		return ErrClosed
	}
	if s.degraded.Load() {
		if tr != nil {
			tr.Degraded = true
		}
		if !s.probeDue(&s.lastCacheProbe) {
			return s.bypassWrite(server, volume, p, off, tr)
		}
		base := s.cacheFaults.Load()
		defer func() {
			if err == nil && s.cacheFaults.Load() == base {
				s.exitDegraded()
			}
		}()
	}
	s.maybeRotate()
	if s.closed.Load() {
		return ErrClosed
	}
	s.tenantTick()
	now := s.now()
	nBlocks := len(p) / block.Size
	first := off / block.Size
	s.logAccess(server, volume, first, nBlocks)
	s.tenantAccess(server, volume, int64(nBlocks), true)

	groups := s.groupByShard(server, volume, first, nBlocks)
	flights := make([]*flight, nBlocks)
	for gi, g := range groups {
		g.sh.mu.Lock()
		g.sh.stats.Writes += int64(len(g.idxs))
		fs, rerr := g.sh.reserveLocked(server, volume, first, g.idxs)
		if rerr != nil {
			g.sh.mu.Unlock()
			// Release the reservations already held in earlier shards.
			for _, pg := range groups[:gi] {
				pg.sh.mu.Lock()
				pg.sh.completeLocked(server, volume, first, pg.idxs, flights, nil, rerr)
				pg.sh.mu.Unlock()
			}
			return rerr
		}
		for k, i := range g.idxs {
			flights[i] = fs[k]
		}
		g.sh.mu.Unlock()
	}

	if !s.opts.WriteBack {
		// Write-through: the backend is always authoritative. Write it
		// first (unlocked), then fold the data into the cache shard by
		// shard.
		var hits, admitted int
		werr := s.backend.WriteAt(server, volume, p, off)
		for gi, g := range groups {
			g.sh.mu.Lock()
			if werr == nil {
				if gi == 0 {
					g.sh.stats.BackendWrites++
					g.sh.stats.BackendBytesWritten += int64(len(p))
				}
				for _, i := range g.idxs {
					key := block.MakeKey(server, volume, first+uint64(i))
					// The backend holds the new data: a RAM-tier copy (the
					// tier can outlive SSD residency) is stale now. Under
					// this shard's lock, so no reader can re-promote the old
					// frame in between.
					s.tierInvalidate(key)
					if flights[i].stale || s.closed.Load() {
						continue // invalidated (or store closed) mid-write
					}
					data := p[i*block.Size : (i+1)*block.Size]
					if g.sh.tags.Touch(key) {
						g.sh.writeFrameLocked(key, data)
						g.sh.stats.WriteHits++
						hits++
						continue
					}
					if g.sh.maybeAdmit(key, data, block.Write, now, false) {
						admitted++
					}
				}
			}
			g.sh.completeLocked(server, volume, first, g.idxs, flights, p, werr)
			g.sh.mu.Unlock()
		}
		s.tenantHits(server, volume, int64(hits))
		if tr != nil {
			tr.Hits = hits
			tr.Misses = nBlocks - hits
			tr.Admitted = admitted
		}
		return werr
	}

	// Write-back: cached (and newly admitted) blocks absorb the write and
	// are marked dirty; only the remaining blocks reach the backend now.
	// A block whose reservation went stale (invalidated between our
	// reservation and this pass), or a store closed meanwhile (Close may
	// already have drained this shard), must not park dirty data in the
	// cache: it writes through instead.
	through := make([]bool, nBlocks)
	var hits, admitted int
	for _, g := range groups {
		g.sh.mu.Lock()
		for _, i := range g.idxs {
			key := block.MakeKey(server, volume, first+uint64(i))
			// Whether the write lands dirty in the cache or goes through to
			// the backend below, any RAM-tier copy is superseded.
			s.tierInvalidate(key)
			if flights[i].stale || s.closed.Load() {
				through[i] = true
				continue
			}
			data := p[i*block.Size : (i+1)*block.Size]
			if g.sh.tags.Touch(key) {
				g.sh.writeFrameLocked(key, data)
				g.sh.dirty[key] = true
				g.sh.stats.WriteHits++
				hits++
				continue
			}
			if g.sh.tryAdmit(key, data, block.Write, now, true) {
				admitted++
				continue
			}
			through[i] = true
		}
		g.sh.mu.Unlock()
	}
	s.tenantHits(server, volume, int64(hits))
	if tr != nil {
		tr.Hits = hits
		tr.Misses = nBlocks - hits
		tr.Admitted = admitted
	}

	var werr error
	var nWrites, nBytes int64
	for i := 0; i < nBlocks && werr == nil; {
		if !through[i] {
			i++
			continue
		}
		j := i + 1
		for j < nBlocks && through[j] {
			j++
		}
		buf := p[i*block.Size : j*block.Size]
		if werr = s.backend.WriteAt(server, volume, buf, off+uint64(i)*block.Size); werr == nil {
			nWrites++
			nBytes += int64(len(buf))
		}
		i = j
	}
	for gi, g := range groups {
		g.sh.mu.Lock()
		if gi == 0 {
			g.sh.stats.BackendWrites += nWrites
			g.sh.stats.BackendBytesWritten += nBytes
		}
		g.sh.completeLocked(server, volume, first, g.idxs, flights, p, werr)
		g.sh.mu.Unlock()
	}
	return werr
}

// Flush writes every currently-dirty block back to the ensemble
// (write-back mode), shard by shard in ascending order. The backend I/O is
// staged: no shard lock is held while streaming, so concurrent reads and
// writes proceed. Blocks whose write-back fails stay dirty and resident
// and are counted in Stats.FlushErrors; every shard is still visited and
// the first error is returned.
//
// With Options.GroupCommitWindow set, concurrent flushes group-commit:
// the first caller opens a batch and waits out the window before
// sweeping, and every Flush arriving meanwhile shares that one sweep's
// outcome instead of walking the shards again.
func (s *Store) Flush() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.opts.GroupCommitWindow <= 0 {
		return s.flushAll()
	}
	s.gcMu.Lock()
	if b := s.gcBatch; b != nil {
		s.gcMu.Unlock()
		s.coalescedFlushes.Add(1)
		<-b.done
		return b.err
	}
	b := &flushBatch{done: make(chan struct{})}
	s.gcBatch = b
	s.gcMu.Unlock()

	// The window wait goes through the injected Options.Sleep seam (the
	// only intentional wait on the I/O paths) so flush-window tests pair
	// it with Options.Now and run without real sleeps.
	s.opts.Sleep(s.opts.GroupCommitWindow)
	// Close the batch to joiners before sweeping: a Flush arriving after
	// this point may be triggered by a write the sweep won't see, so it
	// must start (or join) the next batch rather than this one.
	s.gcMu.Lock()
	s.gcBatch = nil
	s.gcMu.Unlock()
	s.groupCommits.Add(1)
	b.err = s.flushAll()
	close(b.done)
	return b.err
}

// flushAll is one staged write-back sweep over every shard.
func (s *Store) flushAll() error {
	var err error
	for _, sh := range s.shards {
		sh.mu.Lock()
		ferr := sh.flushStagedLocked(nil)
		sh.mu.Unlock()
		if err == nil {
			err = ferr
		}
	}
	return err
}

// Bounded parallelism and run sizing for staged transitions (epoch batch
// fetches, staged flushes): backend requests cover contiguous multi-block
// runs of at most transitionMaxRun blocks, issued by at most
// transitionWorkers goroutines.
const (
	transitionWorkers = 8
	transitionMaxRun  = 64 // blocks per backend request (32 KiB)
)

// keyRun is a half-open index range [lo, hi) of consecutive blocks.
type keyRun struct{ lo, hi int }

// contiguousRuns splits sorted keys into runs of consecutive blocks on the
// same server and volume, each at most transitionMaxRun long. include, if
// non-nil, masks individual indices out of the runs.
func contiguousRuns(keys []block.Key, include func(int) bool) []keyRun {
	var runs []keyRun
	for i := 0; i < len(keys); {
		if include != nil && !include(i) {
			i++
			continue
		}
		j := i + 1
		for j < len(keys) && j-i < transitionMaxRun &&
			keys[j] == keys[j-1]+1 &&
			keys[j].Server() == keys[j-1].Server() &&
			keys[j].Volume() == keys[j-1].Volume() &&
			(include == nil || include(j)) {
			j++
		}
		runs = append(runs, keyRun{lo: i, hi: j})
		i = j
	}
	return runs
}

// forEachRun invokes do(ri, run) with bounded parallelism. After the first
// error no new runs are started; the first error is returned. do must
// confine its writes to per-run state (indexed by ri) — forEachRun
// provides the happens-before edge back to the caller.
func forEachRun(runs []keyRun, do func(ri int, r keyRun) error) error {
	workers := transitionWorkers
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		for ri, r := range runs {
			if err := do(ri, r); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		mu    sync.Mutex
		next  int
		first error
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if first != nil || next >= len(runs) {
					mu.Unlock()
					return
				}
				ri := next
				next++
				mu.Unlock()
				if err := do(ri, runs[ri]); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// fetchBatch reads the given blocks from the ensemble in contiguous
// multi-block runs with bounded parallelism. It is called WITHOUT any
// shard lock and touches no store state besides the backend; the returned
// frames are freshly allocated, one per key. Partial work on error is
// reflected in the request/byte counts so the caller can account it.
func (s *Store) fetchBatch(keys []block.Key) (map[block.Key][]byte, int64, int64, error) {
	if len(keys) == 0 {
		return nil, 0, 0, nil
	}
	sorted := append([]block.Key(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	runs := contiguousRuns(sorted, nil)
	bufs := make([][]byte, len(sorted))
	ran := make([]bool, len(runs))
	err := forEachRun(runs, func(ri int, r keyRun) error {
		n := r.hi - r.lo
		buf := make([]byte, n*block.Size)
		k0 := sorted[r.lo]
		if e := s.backend.ReadAt(k0.Server(), k0.Volume(), buf, k0.Offset()); e != nil {
			return fmt.Errorf("core: epoch move for %v: %w", k0, e)
		}
		for i := 0; i < n; i++ {
			bufs[r.lo+i] = buf[i*block.Size : (i+1)*block.Size : (i+1)*block.Size]
		}
		ran[ri] = true
		return nil
	})
	var nReads, nBytes int64
	for ri, r := range runs {
		if ran[ri] {
			nReads++
			nBytes += int64(r.hi-r.lo) * block.Size
		}
	}
	if err != nil {
		return nil, nReads, nBytes, err
	}
	fetched := make(map[block.Key][]byte, len(sorted))
	for i, k := range sorted {
		fetched[k] = bufs[i]
	}
	return fetched, nReads, nBytes, nil
}

// now returns the injected current time.
func (s *Store) now() time.Time { return s.opts.Now() }

// beginTrace starts a sampled op-lifecycle record, or returns nil when
// this operation is not sampled (the common case: one atomic add).
func (s *Store) beginTrace(op string, server, volume int, p []byte, off uint64) *metrics.OpTrace {
	if s.trace == nil || !s.trace.Sample() {
		return nil
	}
	return &metrics.OpTrace{
		StartNS: s.now().UnixNano(),
		Op:      op,
		Server:  server,
		Volume:  volume,
		Offset:  off,
		Blocks:  len(p) / block.Size,
		Shard:   s.shardIndex(block.MakeKey(server, volume, off/block.Size)),
	}
}

// endTrace finishes and records a sampled trace (no-op for nil).
func (s *Store) endTrace(tr *metrics.OpTrace, d time.Duration, err error) {
	if tr == nil {
		return
	}
	tr.LatencyNS = d.Nanoseconds()
	if err != nil {
		tr.Err = err.Error()
	}
	s.trace.Record(*tr)
}

// Traces returns the sampled operation lifecycle records, newest first
// (nil when Options.TraceSample is 0).
func (s *Store) Traces() []metrics.OpTrace {
	if s.trace == nil {
		return nil
	}
	return s.trace.Dump()
}

// LatencyHistograms returns mergeable log-bucketed distributions of
// whole-call ReadAt and WriteAt service times. Empty unless
// Options.TrackLatency is set.
func (s *Store) LatencyHistograms() (read, write metrics.HistogramSnapshot) {
	return s.histRead.Snapshot(), s.histWrite.Snapshot()
}

// SieveStats sums the per-shard continuous-sieve (IMCT/MCT) counters.
// All-zero for VariantD, which has no online sieve.
func (s *Store) SieveStats() sieve.CStats {
	var out sieve.CStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		if sh.sieveC != nil {
			st := sh.sieveC.Stats()
			out.Misses += st.Misses
			out.Promotions += st.Promotions
			out.Allocations += st.Allocations
			out.Pruned += st.Pruned
			out.MCTSize += st.MCTSize
		}
		sh.mu.Unlock()
	}
	return out
}

// SpillStats returns the SieveStore-D access logger's partition stats;
// ok is false for VariantC (no logger).
func (s *Store) SpillStats() (st sieved.LoggerStats, ok bool) {
	if s.logger == nil {
		return sieved.LoggerStats{}, false
	}
	return s.logger.Stats(), true
}

// testLogHook, when non-nil, runs at the top of logAccess — tests use it
// to stall the access-logging path and prove the hit path no longer
// serializes behind it. Set and cleared only while no store operations are
// running.
var testLogHook func()

// testSpillFault, when non-nil, injects an error into logAccess before the
// logger is touched — tests use it to drive the spill-disable path without
// breaking the logger's real files. Set and cleared only while no store
// operations are running.
var testSpillFault func() error

// logAccess records the access for the offline sieve (VariantD only). It
// runs before any shard lock is taken: the logger's buffered file I/O
// (including its 64 KiB buffer flushes) must never stall concurrent hits.
//
// Logging failures must not fail the I/O path; the worst case is a slightly
// stale epoch selection. They are surfaced via Close — and after
// DegradedFaultThreshold consecutive failures, access logging is disabled
// for the rest of the epoch (the spill device is presumed sick). One probe
// per DegradedProbeEvery retries; a success, or the epoch rotation's log
// reset, re-enables logging.
func (s *Store) logAccess(server, volume int, first uint64, nBlocks int) {
	if s.logger == nil {
		return
	}
	if h := testLogHook; h != nil {
		h()
	}
	if s.spillDisabled.Load() && !s.probeDue(&s.lastSpillProbe) {
		return
	}
	var err error
	if f := testSpillFault; f != nil {
		err = f()
	}
	if err == nil {
		if nBlocks == 1 {
			err = s.logger.Log(block.MakeKey(server, volume, first))
		} else {
			keys := make([]block.Key, nBlocks)
			for i := range keys {
				keys[i] = block.MakeKey(server, volume, first+uint64(i))
			}
			err = s.logger.LogBatch(keys)
		}
	}
	s.noteSpill(err)
}

// noteSpill tracks consecutive access-log failures and flips the
// spill-disable switch across the threshold (or back, on a successful
// probe).
func (s *Store) noteSpill(err error) {
	if err == nil {
		s.spillFaultStreak.Store(0)
		s.spillDisabled.Store(false)
		return
	}
	streak := s.spillFaultStreak.Add(1)
	thr := int64(s.opts.DegradedFaultThreshold)
	if thr > 0 && streak >= thr && s.spillDisabled.CompareAndSwap(false, true) {
		s.spillDisables.Add(1)
		s.lastSpillProbe.Store(s.now().UnixNano())
	}
}

// updateDeadlineLocked recomputes the next epoch boundary after curEpoch
// advances or the schedule restarts. Caller must hold rotMu.
func (s *Store) updateDeadlineLocked() {
	s.deadline.Store(s.start.Add(time.Duration(s.curEpoch+1) * s.opts.Epoch).UnixNano())
}

// maybeRotate rotates VariantD epochs that have elapsed. The hot path
// pays one atomic deadline load; past the deadline, the rotation runs
// inline in the triggering caller with no shard lock held across its
// backend I/O. Callers arriving meanwhile see rotating and proceed
// without blocking (the in-progress rotation covers the due boundary).
func (s *Store) maybeRotate() {
	if s.logger == nil {
		return
	}
	if s.now().UnixNano() < s.deadline.Load() {
		return
	}
	s.rotMu.Lock()
	if s.rotating || s.closed.Load() {
		s.rotMu.Unlock()
		return
	}
	for {
		epoch := int64(s.now().Sub(s.start) / s.opts.Epoch)
		if s.curEpoch >= epoch {
			break
		}
		// Advance the schedule before the staged work so concurrent ops'
		// deadline checks skip this boundary. On an abort the next
		// boundary (or a manual RotateEpoch) retries with the counts
		// still accumulating — exactly the unsharded retry schedule.
		s.curEpoch++
		s.updateDeadlineLocked()
		s.rotating = true
		s.rotMu.Unlock()
		committed, err := s.rotateStaged()
		s.rotMu.Lock()
		s.rotating = false
		s.rotCond.Broadcast()
		if err != nil {
			// An aborted transition touched nothing: the spill logs and
			// the previous epoch's cache set are intact. A post-commit
			// reset failure is counted separately (ResetFailures, inside
			// rotateStaged) — the rotation itself took effect.
			if !committed {
				s.rotateFailures.Add(1)
			}
			break
		}
		if s.closed.Load() {
			break
		}
	}
	s.rotMu.Unlock()
}

// RotateEpoch forces an immediate SieveStore-D epoch boundary: the current
// logs are reduced, qualifying blocks are batch-allocated (fetching their
// data from the ensemble), and the logs reset. The epoch schedule restarts
// from here — the next automatic rotation happens one full Epoch after the
// epoch containing the current time, not at the originally scheduled
// boundary (otherwise a near-boundary manual rotation would immediately be
// followed by an automatic one over empty logs, wiping the cache). It is a
// no-op for VariantC.
func (s *Store) RotateEpoch() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if s.logger == nil {
		return nil
	}
	s.rotMu.Lock()
	// Wait out a transition already in progress, then run our own: the
	// caller asked for a boundary *now*, after whatever was already due.
	for s.rotating {
		s.rotCond.Wait()
	}
	if s.closed.Load() {
		s.rotMu.Unlock()
		return ErrClosed
	}
	s.rotating = true
	s.rotMu.Unlock()
	committed, err := s.rotateStaged()
	s.rotMu.Lock()
	s.rotating = false
	s.rotCond.Broadcast()
	if !committed {
		s.rotateFailures.Add(1)
		s.rotMu.Unlock()
		return err
	}
	// Restart the schedule: the next automatic rotation is one full Epoch
	// from now. (start is only used for epoch scheduling under VariantD.)
	// The boundary took effect even if the post-commit log reset failed —
	// that error is returned but counted in ResetFailures, not as an abort.
	s.start = s.now()
	s.curEpoch = 0
	s.updateDeadlineLocked()
	s.rotMu.Unlock()
	return err
}

// rotateStaged performs one SieveStore-D epoch transition. Called with NO
// locks held (the caller owns the rotating flag); shard locks are taken
// per stage, always in ascending shard order, and never held across
// backend I/O — concurrent reads and writes keep being served throughout.
// The transition is failure-atomic: any error before the final swap leaves
// both the spill logs and the cache contents exactly as they were (Select
// does not reset the logs; Reset runs only after the swap commits).
// committed reports whether the swap took effect: a reset error after the
// commit is returned with committed true so callers can count it
// separately from an abort.
//
// With multiple shards the swap itself commits shard by shard: a reader
// can briefly observe shard i serving the new epoch's set while shard j
// still serves the old one. Each shard's swap is atomic under its lock,
// and the paper's semantics (a single global swap) are exact at Shards=1.
func (s *Store) rotateStaged() (committed bool, err error) {
	// Stage 0: arm every shard — from here until its commit (or disarm on
	// abort), writes and invalidations record skipped keys in rotSkip so
	// the swap cannot install a fetched copy that their data supersedes.
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.rotSkip = make(map[block.Key]bool)
		sh.mu.Unlock()
	}
	disarm := func() {
		for _, sh := range s.shards {
			sh.mu.Lock()
			sh.rotSkip = nil
			sh.mu.Unlock()
		}
	}

	// Quotas repartition at every epoch boundary: the ending epoch's
	// per-tenant hits are the freshest demand signal, and the selection
	// clip below then runs against the new split.
	if s.acct != nil {
		s.acct.Repartition(s.now())
	}

	// Stage 1: reduce the logs and select the new set — no locks held.
	selected, err := s.logger.Select(s.opts.DThreshold)
	if err != nil {
		disarm()
		return false, err
	}
	// Tenant quotas clip the hottest-first selection before the capacity
	// cut: each tenant keeps at most its quota blocks, so a churning
	// tenant's one-hit wonders cannot consume capacity slots a stable
	// tenant's (cooler but reused) blocks would fill.
	if s.acct != nil {
		selected, _ = s.acct.ClipSelection(selected)
	}
	total := 0
	for _, sh := range s.shards {
		total += sh.tags.Capacity()
	}
	if len(selected) > total {
		selected = selected[:total] // Select orders hottest-first
	}
	// Split the selection across shards, preserving hottest-first order
	// within each; a shard takes at most its own capacity. A skewed
	// key→shard distribution can overflow one shard while others sit
	// half-empty — those hot blocks are lost for the epoch, so count them
	// in SelectOverflow instead of dropping them silently.
	perShard := make([][]block.Key, len(s.shards))
	var splitOverflow int64
	for _, k := range selected {
		si := s.shardIndex(k)
		if len(perShard[si]) < s.shards[si].tags.Capacity() {
			perShard[si] = append(perShard[si], k)
		} else {
			splitOverflow++
		}
	}
	if splitOverflow > 0 {
		sh0 := s.shards[0]
		sh0.mu.Lock()
		sh0.stats.SelectOverflow += splitOverflow
		sh0.mu.Unlock()
	}

	// Stage 2: fetch the selected blocks that are not already resident —
	// off-lock, in contiguous multi-block runs with bounded parallelism.
	// (Residency only shrinks while rotating: VariantD admits solely at
	// epoch boundaries, so "need" cannot grow stale the dangerous way.)
	// A hard-throttled tenant's endurance budget caps how many *new*
	// installs this epoch may fetch on its behalf: blocks past the
	// allowance stay unselected (counted as tenant clips) — retained
	// residents cost no SSD writes and are unaffected.
	var allow map[tenant.ID]int64
	if s.acct.EnduranceEnabled() {
		allow = make(map[tenant.ID]int64)
	}
	rotNow := s.now()
	var need []block.Key
	for si, sh := range s.shards {
		sh.mu.Lock()
		for _, k := range perShard[si] {
			if sh.tags.Contains(k) {
				continue
			}
			if allow != nil {
				id := tenant.IDOf(k)
				left, seen := allow[id]
				if !seen {
					left = s.acct.AllowanceBlocks(id, rotNow)
				}
				if left <= 0 {
					allow[id] = 0
					s.acct.NoteClip(id, 1)
					continue
				}
				allow[id] = left - 1
			}
			need = append(need, k)
		}
		sh.mu.Unlock()
	}
	fetched, nReads, nBytes, err := s.fetchBatch(need)
	if nReads > 0 || nBytes > 0 {
		sh0 := s.shards[0]
		sh0.mu.Lock()
		sh0.stats.BackendReads += nReads
		sh0.stats.BackendBytesRead += nBytes
		sh0.mu.Unlock()
	}
	if err != nil {
		disarm()
		return false, err
	}
	if s.closed.Load() {
		disarm()
		return false, ErrClosed
	}

	// Stage 3: write back dirty blocks the swap would evict — staged like
	// Flush, shard by shard ascending, and aborting the rotation on
	// failure (evicting them unflushed would lose data).
	inNew := make(map[block.Key]bool, len(selected))
	for si := range s.shards {
		for _, k := range perShard[si] {
			inNew[k] = true
		}
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		ferr := sh.flushStagedLocked(func(k block.Key) bool { return !inNew[k] })
		sh.mu.Unlock()
		if ferr != nil {
			disarm()
			return false, ferr
		}
	}
	if s.closed.Load() {
		disarm()
		return false, ErrClosed
	}

	// Stage 4: commit — each shard swaps under its own lock, no backend
	// I/O, ascending order.
	for si, sh := range s.shards {
		sh.mu.Lock()
		sh.commitEpochLocked(perShard[si], fetched)
		sh.mu.Unlock()
	}
	s.epochs.Add(1)

	// The RAM-tier advisor replays this epoch's access counts against
	// the drive-cost model before stage 5 resets them (no-op with the
	// tier disabled, keeping the tierless rotation byte-identical).
	s.tierEpochAdvice()

	// Stage 5: reset the logs — no locks held again (the logger is safe
	// for concurrent use, and accesses logged since Select carry into the
	// new epoch). The swap is already committed; a reset failure is
	// surfaced but no longer rolls anything back — the rotation itself
	// took effect (counted in Epochs, not RotateFailures), and tuples in
	// partitions the reset could not clear double-count into the next
	// epoch's selection.
	if rerr := s.logger.Reset(); rerr != nil {
		s.resetFailures.Add(1)
		return true, fmt.Errorf("core: epoch log reset: %w", rerr)
	}
	// Fresh logs on a working spill device: if logging had been disabled
	// for the old epoch, resume it for the new one.
	s.spillFaultStreak.Store(0)
	s.spillDisabled.Store(false)
	return true, nil
}

// Contains reports whether a block is currently cached (test/debug aid).
func (s *Store) Contains(server, volume int, off uint64) bool {
	key := block.MakeKey(server, volume, off/block.Size)
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.tags.Contains(key)
}

// Invalidate drops any cached blocks overlapping [off, off+length) of the
// volume, returning how many were resident. Use it when the backing
// ensemble is modified outside the Store (the write-through design makes
// this unnecessary for I/O that goes through the Store itself).
func (s *Store) Invalidate(server, volume int, off uint64, length int) (int, error) {
	if off%block.Size != 0 || length%block.Size != 0 || length <= 0 {
		return 0, ErrAlignment
	}
	if end := off + uint64(length); end < off || (end-1)/block.Size > block.MaxBlockNumber {
		return 0, ErrRange
	}
	if s.closed.Load() {
		return 0, ErrClosed
	}
	first := off / block.Size
	dropped := 0
	for _, g := range s.groupByShard(server, volume, first, length/block.Size) {
		g.sh.mu.Lock()
		for _, i := range g.idxs {
			key := block.MakeKey(server, volume, first+uint64(i))
			// The RAM tier can hold blocks the SSD tier has since evicted,
			// so its copy is dropped regardless of SSD residency (not
			// counted in dropped, which reports SSD-resident blocks).
			s.tierInvalidate(key)
			// A fetch or write in flight for this key would re-install data
			// from before the invalidation: mark it stale so its owner skips
			// the install, and detach it so later misses fetch fresh.
			if f, ok := g.sh.inflight[key]; ok {
				f.stale = true
				delete(g.sh.inflight, key)
			}
			// An epoch transition staging right now may have fetched this
			// block already; its swap must not resurrect invalidated data.
			if g.sh.rotSkip != nil {
				g.sh.rotSkip[key] = true
			}
			if !g.sh.tags.Contains(key) {
				continue
			}
			// A dirty block holds the only current copy: write it back
			// before dropping, or the data would be lost.
			if g.sh.dirty[key] {
				if err := g.sh.flushBlock(key); err != nil {
					g.sh.mu.Unlock()
					return dropped, err
				}
			}
			g.sh.tags.Remove(key)
			g.sh.recycleLocked(g.sh.frames[key])
			delete(g.sh.frames, key)
			g.sh.tenantEvict(key)
			dropped++
		}
		g.sh.mu.Unlock()
	}
	return dropped, nil
}
