// Package core is the SieveStore library proper: a highly-selective,
// ensemble-level block cache layered over any storage backend.
//
// A Store intercepts block I/O destined for a multi-server storage ensemble
// (the Backend) and serves the popular blocks from a small cache — the
// paper's SSD — admitting blocks only through a sieve so that the mass of
// low-reuse blocks costs neither allocation-writes nor pollution:
//
//	be := store.NewMem()                       // or any Backend
//	st, _ := core.Open(be, core.Options{})     // SieveStore-C, 16 GB cache
//	st.WriteAt(0, 0, data, 0)                  // write-through
//	st.ReadAt(0, 0, buf, 0)                    // hits served from cache
//
// Both paper variants are available: the continuous sieve (SieveStore-C,
// default) admits a block on its n-th recent miss; the discrete variant
// (SieveStore-D) logs accesses and batch-allocates the blocks whose epoch
// access count crosses a threshold, via the offline per-key-reduction
// pipeline in internal/sieved.
package core

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/metrics"
	"repro/internal/sieve"
	"repro/internal/sieved"
)

// Backend is the underlying storage ensemble. It matches
// internal/store.Backend; any implementation may be supplied.
type Backend interface {
	ReadAt(server, volume int, p []byte, off uint64) error
	WriteAt(server, volume int, p []byte, off uint64) error
}

// Variant selects the sieving mechanism.
type Variant int

const (
	// VariantC is SieveStore-C: online, hysteresis-based lazy allocation
	// through the two-tier IMCT/MCT sieve (§3.3).
	VariantC Variant = iota
	// VariantD is SieveStore-D: offline access counting with epoch batch
	// allocation (§3.2).
	VariantD
)

// String names the variant.
func (v Variant) String() string {
	if v == VariantD {
		return "SieveStore-D"
	}
	return "SieveStore-C"
}

// Options configures a Store.
type Options struct {
	// CacheBytes is the cache capacity (default 16 GiB; must be a multiple
	// of the 512-byte block size).
	CacheBytes int64
	// Variant selects SieveStore-C (default) or SieveStore-D.
	Variant Variant
	// SieveC configures the continuous sieve (VariantC).
	SieveC sieve.CConfig
	// DThreshold is the epoch access-count threshold (VariantD; default 10).
	DThreshold int64
	// Epoch is the discrete allocation epoch (VariantD; default 24 h).
	Epoch time.Duration
	// SpillDir hosts SieveStore-D's partitioned access logs. Empty means a
	// temporary directory owned (and removed) by the Store.
	SpillDir string
	// WriteBack enables write-back caching: writes to cached blocks stay
	// in the cache (marked dirty) and reach the ensemble only on eviction,
	// Flush, or Close. The default is write-through (the backend is always
	// authoritative), which is what the paper's appliance model implies.
	WriteBack bool
	// TrackLatency records whole-call ReadAt/WriteAt service times into
	// Stats.ReadLatency/WriteLatency (a few atomic ops per call; off by
	// default so trace replay stays allocation- and syscall-identical).
	TrackLatency bool
	// Now supplies time; nil means time.Now. Injectable for tests and
	// trace replay.
	Now func() time.Time
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	if out.CacheBytes == 0 {
		out.CacheBytes = 16 << 30
	}
	if out.CacheBytes < block.Size || out.CacheBytes%block.Size != 0 {
		return out, fmt.Errorf("core: CacheBytes %d must be a positive multiple of %d", out.CacheBytes, block.Size)
	}
	if out.SieveC.IMCTSize == 0 {
		out.SieveC = sieve.DefaultCConfig()
	}
	if out.DThreshold == 0 {
		out.DThreshold = sieved.DefaultThreshold
	}
	if out.DThreshold < 1 {
		return out, fmt.Errorf("core: DThreshold must be ≥1, got %d", out.DThreshold)
	}
	if out.Epoch == 0 {
		out.Epoch = 24 * time.Hour
	}
	if out.Epoch < time.Minute {
		return out, fmt.Errorf("core: Epoch %v too short", out.Epoch)
	}
	if out.Now == nil {
		out.Now = time.Now
	}
	return out, nil
}

// Stats counts the Store's activity. Blocks are 512-byte units.
type Stats struct {
	Reads, Writes          int64 // block accesses by kind
	ReadHits, WriteHits    int64 // blocks served/updated in cache
	AllocWrites            int64 // blocks written into the cache on admission
	Evictions              int64 // blocks evicted
	EpochMoves             int64 // blocks batch-moved at epoch boundaries (VariantD)
	Epochs                 int64 // completed epoch rotations (VariantD)
	BackendReads           int64 // read requests issued to the ensemble
	BackendWrites          int64 // write requests issued to the ensemble
	CachedBlocks           int64 // current residency
	CapacityBlocks         int64
	SieveTrackedBlocks     int64 // precise sieve metastate entries (VariantC)
	DirtyBlocks            int64 // write-back blocks awaiting flush
	FlushWrites            int64 // dirty blocks written back to the ensemble
	BackendBytesRead       int64
	BackendBytesWritten    int64
	CacheBytesServed       int64 // bytes of reads served from cache
	BackendBytesServedRead int64
	CoalescedReads         int64 // miss blocks served by joining another caller's in-flight fetch

	// ReadLatency/WriteLatency aggregate whole-call ReadAt/WriteAt service
	// times when Options.TrackLatency is set (zero otherwise).
	ReadLatency  metrics.OpLatencySnapshot
	WriteLatency metrics.OpLatencySnapshot
}

// Hits returns total block hits.
func (s Stats) Hits() int64 { return s.ReadHits + s.WriteHits }

// HitRatio returns the captured fraction of block accesses.
func (s Stats) HitRatio() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.Hits()) / float64(total)
}

// ErrClosed is returned by operations on a closed Store.
var ErrClosed = errors.New("core: store is closed")

// ErrAlignment rejects I/O that is not 512-byte aligned.
var ErrAlignment = errors.New("core: offset and length must be multiples of 512")

// Store is a SieveStore cache instance. It is safe for concurrent use.
//
// Concurrency model: mu guards all cache metadata (tags, frames, dirty,
// sieve state, stats), but is never held across hot-path backend I/O.
// A miss reserves its keys in the in-flight table, releases mu, fetches
// from the ensemble, then re-acquires mu for sieve admission and frame
// installation. Duplicate concurrent misses for a key coalesce onto the
// first fetch (single-flight); writes reserve their key range so
// backend-write order and cache-update order cannot invert.
type Store struct {
	backend Backend
	opts    Options

	mu       sync.Mutex
	tags     *cache.Cache
	frames   map[block.Key][]byte
	dirty    map[block.Key]bool
	free     [][]byte
	inflight map[block.Key]*flight
	sieveC   *sieve.C
	logger   *sieved.Logger
	// epoch state (VariantD)
	start    time.Time
	curEpoch int64
	ownSpill string // temp dir to remove on Close, if any
	stats    Stats
	closed   bool

	latRead  metrics.OpLatency
	latWrite metrics.OpLatency
}

// flight is one entry of the per-key in-flight table: a miss fetch or a
// write reservation in progress with mu released. Readers that miss on a
// reserved key register as waiters and are served from the flight instead
// of issuing a duplicate backend fetch.
type flight struct {
	done chan struct{} // closed (under mu) when the operation completes
	// All remaining fields are guarded by Store.mu until done is closed;
	// afterwards they are read-only (the channel close publishes them).
	data    []byte // the block's bytes; set at completion iff waiters > 0
	err     error  // fetch/write failure, propagated to waiters
	waiters int
	// stale marks keys invalidated or batch-replaced while the flight was
	// in the air: the owner must not install its (now outdated) view into
	// the cache. The entry is detached from the table when marked, so new
	// misses start a fresh fetch.
	stale bool
}

// Open validates opts and returns a ready Store over backend.
func Open(backend Backend, opts Options) (*Store, error) {
	if backend == nil {
		return nil, errors.New("core: nil backend")
	}
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Store{
		backend:  backend,
		opts:     o,
		tags:     cache.New(int(o.CacheBytes / block.Size)),
		frames:   make(map[block.Key][]byte),
		dirty:    make(map[block.Key]bool),
		inflight: make(map[block.Key]*flight),
		start:    o.Now(),
	}
	s.stats.CapacityBlocks = o.CacheBytes / block.Size
	switch o.Variant {
	case VariantC:
		sc, err := sieve.NewC(o.SieveC)
		if err != nil {
			return nil, err
		}
		s.sieveC = sc
	case VariantD:
		dir := o.SpillDir
		if dir == "" {
			dir, err = os.MkdirTemp("", "sievestore-spill-*")
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			s.ownSpill = dir
		}
		logger, err := sieved.NewLogger(dir, sieved.DefaultPartitions)
		if err != nil {
			if s.ownSpill != "" {
				os.RemoveAll(s.ownSpill)
			}
			return nil, err
		}
		s.logger = logger
	default:
		return nil, fmt.Errorf("core: unknown variant %d", o.Variant)
	}
	return s, nil
}

// Variant returns the store's sieving variant.
func (s *Store) Variant() Variant { return s.opts.Variant }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CachedBlocks = int64(s.tags.Len())
	st.DirtyBlocks = int64(len(s.dirty))
	if s.sieveC != nil {
		st.SieveTrackedBlocks = int64(s.sieveC.Stats().MCTSize)
	}
	st.ReadLatency = s.latRead.Snapshot()
	st.WriteLatency = s.latWrite.Snapshot()
	return st
}

// Close releases the store's resources. The backend is untouched (all
// writes are written through, so no flush is needed).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	if s.logger != nil {
		if lerr := s.logger.Close(); err == nil {
			err = lerr
		}
	}
	if s.ownSpill != "" {
		if rmErr := os.RemoveAll(s.ownSpill); err == nil {
			err = rmErr
		}
	}
	return err
}

// checkIO validates request geometry.
func checkIO(p []byte, off uint64) error {
	if off%block.Size != 0 || len(p)%block.Size != 0 || len(p) == 0 {
		return ErrAlignment
	}
	return nil
}

// ReadAt reads len(p) bytes from the volume at off, serving cached blocks
// from the cache and the rest from the backend. Missing blocks are offered
// to the sieve and admitted only if it approves.
//
// The backend fetch happens without the store lock: missing keys are first
// reserved in the in-flight table (misses already being fetched by another
// caller are joined rather than refetched), then read from the ensemble,
// and finally — under the lock again — offered to the sieve and installed.
func (s *Store) ReadAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	if s.opts.TrackLatency {
		start := time.Now()
		defer func() { s.latRead.Observe(time.Since(start), err != nil) }()
	}
	nBlocks := len(p) / block.Size
	first := off / block.Size

	// A miss is either owned (this call fetches it) or joined (another
	// call's flight will deliver it); idx is the block's position in p.
	type miss struct {
		idx int
		key block.Key
		f   *flight
	}
	var mine, joined []miss

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.rotateIfDue()
	now := s.now()
	s.logAccess(server, volume, first, nBlocks)
	s.stats.Reads += int64(nBlocks)
	for i := 0; i < nBlocks; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		if s.tags.Touch(key) {
			copy(p[i*block.Size:(i+1)*block.Size], s.frames[key])
			s.stats.ReadHits++
			s.stats.CacheBytesServed += block.Size
			continue
		}
		if f, ok := s.inflight[key]; ok {
			f.waiters++
			s.stats.CoalescedReads++
			joined = append(joined, miss{idx: i, key: key, f: f})
			continue
		}
		f := &flight{done: make(chan struct{})}
		s.inflight[key] = f
		mine = append(mine, miss{idx: i, key: key, f: f})
	}
	s.mu.Unlock()

	// Fetch owned misses from the ensemble in contiguous runs — lock-free,
	// so concurrent callers overlap their backend latency.
	var fetchErr error
	var nReads, nBytes int64
	okUpto := len(mine)
	for lo := 0; lo < len(mine); {
		hi := lo + 1
		for hi < len(mine) && mine[hi].idx == mine[hi-1].idx+1 {
			hi++
		}
		buf := p[mine[lo].idx*block.Size : (mine[hi-1].idx+1)*block.Size]
		if e := s.backend.ReadAt(server, volume, buf, off+uint64(mine[lo].idx)*block.Size); e != nil {
			fetchErr = e
			okUpto = lo
			break
		}
		nReads++
		nBytes += int64(len(buf))
		lo = hi
	}

	// Re-acquire to account, admit, and complete the owned flights. Blocks
	// fetched before a failed run are still admitted (matching the old
	// run-at-a-time behavior).
	s.mu.Lock()
	s.stats.BackendReads += nReads
	s.stats.BackendBytesRead += nBytes
	s.stats.BackendBytesServedRead += nBytes
	for j, m := range mine {
		if j < okUpto {
			data := p[m.idx*block.Size : (m.idx+1)*block.Size]
			if !m.f.stale && !s.closed {
				if aerr := s.maybeAdmit(m.key, data, block.Read, now, false); aerr != nil && fetchErr == nil {
					fetchErr = aerr
				}
			}
			if m.f.waiters > 0 {
				m.f.data = append([]byte(nil), data...)
			}
		} else {
			m.f.err = fetchErr
		}
		if s.inflight[m.key] == m.f {
			delete(s.inflight, m.key)
		}
		close(m.f.done)
	}
	s.mu.Unlock()
	if fetchErr != nil {
		return fetchErr
	}

	// Join coalesced misses last: every flight this call owns is already
	// completed above, so blocking here cannot deadlock.
	for _, m := range joined {
		dst := p[m.idx*block.Size : (m.idx+1)*block.Size]
		if err := s.awaitFlight(m.f, m.key, dst, now); err != nil {
			return err
		}
	}
	return nil
}

// awaitFlight waits for another caller's in-flight fetch of key and copies
// the result into dst. If that flight failed, the block is re-fetched
// directly (joining yet another flight if one has appeared meanwhile).
func (s *Store) awaitFlight(f *flight, key block.Key, dst []byte, now time.Time) error {
	for {
		<-f.done
		if f.err == nil {
			copy(dst, f.data)
			return nil
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return ErrClosed
		}
		if s.tags.Touch(key) {
			copy(dst, s.frames[key])
			s.stats.ReadHits++
			s.stats.CacheBytesServed += block.Size
			s.mu.Unlock()
			return nil
		}
		if nf, ok := s.inflight[key]; ok {
			nf.waiters++
			s.mu.Unlock()
			f = nf
			continue
		}
		nf := &flight{done: make(chan struct{})}
		s.inflight[key] = nf
		s.mu.Unlock()

		err := s.backend.ReadAt(key.Server(), key.Volume(), dst, key.Offset())

		s.mu.Lock()
		if err == nil {
			s.stats.BackendReads++
			s.stats.BackendBytesRead += block.Size
			s.stats.BackendBytesServedRead += block.Size
			if !nf.stale && !s.closed {
				if aerr := s.maybeAdmit(key, dst, block.Read, now, false); aerr != nil {
					err = aerr
				}
			}
			if nf.waiters > 0 {
				nf.data = append([]byte(nil), dst...)
			}
		} else {
			nf.err = err
		}
		if s.inflight[key] == nf {
			delete(s.inflight, key)
		}
		close(nf.done)
		s.mu.Unlock()
		return err
	}
}

// WriteAt writes p through to the backend, updating cached blocks in place
// and offering missing blocks to the sieve.
//
// The backend write happens without the store lock. The written key range
// is reserved in the in-flight table first, which (a) serializes
// overlapping writes so backend order and cache order cannot invert, and
// (b) lets concurrent read misses on these keys coalesce onto the written
// data instead of racing the write with a backend fetch.
func (s *Store) WriteAt(server, volume int, p []byte, off uint64) (err error) {
	if err := checkIO(p, off); err != nil {
		return err
	}
	if s.opts.TrackLatency {
		start := time.Now()
		defer func() { s.latWrite.Observe(time.Since(start), err != nil) }()
	}
	nBlocks := len(p) / block.Size
	first := off / block.Size

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.rotateIfDue()
	now := s.now()
	s.logAccess(server, volume, first, nBlocks)
	s.stats.Writes += int64(nBlocks)
	flights, rerr := s.reserveRangeLocked(server, volume, first, nBlocks)
	if rerr != nil {
		s.mu.Unlock()
		return rerr
	}

	if !s.opts.WriteBack {
		// Write-through: the backend is always authoritative. Write it
		// first (unlocked), then fold the data into the cache.
		s.mu.Unlock()
		werr := s.backend.WriteAt(server, volume, p, off)
		s.mu.Lock()
		var aerr error
		if werr == nil {
			s.stats.BackendWrites++
			s.stats.BackendBytesWritten += int64(len(p))
			for i := 0; i < nBlocks; i++ {
				if flights[i].stale || s.closed {
					continue // invalidated (or store closed) mid-write
				}
				key := block.MakeKey(server, volume, first+uint64(i))
				data := p[i*block.Size : (i+1)*block.Size]
				if s.tags.Touch(key) {
					copy(s.frames[key], data)
					s.stats.WriteHits++
					continue
				}
				if aerr == nil {
					aerr = s.maybeAdmit(key, data, block.Write, now, false)
				}
			}
		}
		s.completeRangeLocked(server, volume, first, flights, p, werr)
		s.mu.Unlock()
		if werr != nil {
			return werr
		}
		return aerr
	}

	// Write-back: cached (and newly admitted) blocks absorb the write and
	// are marked dirty; only the remaining runs reach the backend now.
	type run struct{ start, n int }
	var through []run
	for i := 0; i < nBlocks; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		data := p[i*block.Size : (i+1)*block.Size]
		if s.tags.Touch(key) {
			copy(s.frames[key], data)
			s.dirty[key] = true
			s.stats.WriteHits++
			continue
		}
		admitted, aerr := s.tryAdmit(key, data, block.Write, now, true)
		if aerr != nil {
			s.completeRangeLocked(server, volume, first, flights, nil, aerr)
			s.mu.Unlock()
			return aerr
		}
		if admitted {
			continue
		}
		if n := len(through); n > 0 && through[n-1].start+through[n-1].n == i {
			through[n-1].n++
		} else {
			through = append(through, run{start: i, n: 1})
		}
	}
	s.mu.Unlock()

	var werr error
	var nWrites, nBytes int64
	for _, r := range through {
		buf := p[r.start*block.Size : (r.start+r.n)*block.Size]
		if werr = s.backend.WriteAt(server, volume, buf, off+uint64(r.start)*block.Size); werr != nil {
			break
		}
		nWrites++
		nBytes += int64(len(buf))
	}
	s.mu.Lock()
	s.stats.BackendWrites += nWrites
	s.stats.BackendBytesWritten += nBytes
	s.completeRangeLocked(server, volume, first, flights, p, werr)
	s.mu.Unlock()
	return werr
}

// reserveRangeLocked claims every key in [first, first+n) in the in-flight
// table for a write. Acquisition is all-or-nothing: if any key is already
// claimed (a miss fetch or another write), the lock is dropped and the
// caller waits for that flight with no reservations of its own held, then
// retries — so reservation can never deadlock. Callers must hold s.mu; it
// may be released and re-acquired.
func (s *Store) reserveRangeLocked(server, volume int, first uint64, n int) ([]*flight, error) {
	for {
		var conflict *flight
		for i := 0; i < n; i++ {
			if f, ok := s.inflight[block.MakeKey(server, volume, first+uint64(i))]; ok {
				conflict = f
				break
			}
		}
		if conflict == nil {
			break
		}
		s.mu.Unlock()
		<-conflict.done
		s.mu.Lock()
		if s.closed {
			return nil, ErrClosed
		}
	}
	flights := make([]*flight, n)
	for i := range flights {
		f := &flight{done: make(chan struct{})}
		s.inflight[block.MakeKey(server, volume, first+uint64(i))] = f
		flights[i] = f
	}
	return flights, nil
}

// completeRangeLocked publishes a write's outcome to any coalesced readers
// and releases the reservation. p is the written payload (nil when the
// operation failed before producing data); err is propagated to waiters.
func (s *Store) completeRangeLocked(server, volume int, first uint64, flights []*flight, p []byte, err error) {
	for i, f := range flights {
		if err != nil {
			f.err = err
		} else if f.waiters > 0 && p != nil {
			f.data = append([]byte(nil), p[i*block.Size:(i+1)*block.Size]...)
		}
		key := block.MakeKey(server, volume, first+uint64(i))
		if s.inflight[key] == f {
			delete(s.inflight, key)
		}
		close(f.done)
	}
}

// staleAllFlightsLocked detaches every in-flight entry and marks it stale.
// Called by bulk cache replacements (epoch rotation, snapshot load) so
// that operations completing afterwards cannot install outdated frames.
func (s *Store) staleAllFlightsLocked() {
	for key, f := range s.inflight {
		f.stale = true
		delete(s.inflight, key)
	}
}

// Flush writes every dirty block back to the ensemble (write-back mode).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	for key := range s.dirty {
		if err := s.flushBlock(key); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock writes one dirty block back and clears its dirty bit.
func (s *Store) flushBlock(key block.Key) error {
	frame, ok := s.frames[key]
	if !ok {
		delete(s.dirty, key)
		return nil
	}
	if err := s.backend.WriteAt(key.Server(), key.Volume(), frame, key.Offset()); err != nil {
		return fmt.Errorf("core: write-back of %v: %w", key, err)
	}
	s.stats.BackendWrites++
	s.stats.BackendBytesWritten += block.Size
	s.stats.FlushWrites++
	delete(s.dirty, key)
	return nil
}

// now returns the injected current time.
func (s *Store) now() time.Time { return s.opts.Now() }

// logAccess records the access for the offline sieve (VariantD only).
func (s *Store) logAccess(server, volume int, first uint64, nBlocks int) {
	if s.logger == nil {
		return
	}
	for i := 0; i < nBlocks; i++ {
		// Logging failures must not fail the I/O path; the worst case is a
		// slightly stale epoch selection. They are surfaced via Close.
		_ = s.logger.Log(block.MakeKey(server, volume, first+uint64(i)))
	}
}

// maybeAdmit consults the sieve (VariantC) and installs the block on
// approval. VariantD never admits continuously.
func (s *Store) maybeAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) error {
	_, err := s.tryAdmit(key, data, kind, now, dirty)
	return err
}

// tryAdmit is maybeAdmit reporting whether the block was admitted.
func (s *Store) tryAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) (bool, error) {
	if s.sieveC == nil {
		return false, nil
	}
	acc := block.Access{Time: now.Sub(s.start).Nanoseconds(), Key: key, Kind: kind}
	if !s.sieveC.ShouldAllocate(acc) {
		return false, nil
	}
	if err := s.install(key, data); err != nil {
		return false, err
	}
	if dirty {
		s.dirty[key] = true
	}
	s.stats.AllocWrites++
	return true, nil
}

// install copies data into a frame for key, evicting (and, in write-back
// mode, flushing) the LRU block if full.
func (s *Store) install(key block.Key, data []byte) error {
	if s.tags.Len() >= s.tags.Capacity() && !s.tags.Contains(key) {
		if victim, ok := s.tags.LRU(); ok && s.dirty[victim] {
			if err := s.flushBlock(victim); err != nil {
				return err
			}
		}
	}
	if victim, evicted := s.tags.Insert(key); evicted {
		s.stats.Evictions++
		s.free = append(s.free, s.frames[victim])
		delete(s.frames, victim)
	}
	frame := s.alloc()
	copy(frame, data)
	s.frames[key] = frame
	return nil
}

func (s *Store) alloc() []byte {
	if n := len(s.free); n > 0 {
		f := s.free[n-1]
		s.free = s.free[:n-1]
		return f
	}
	return make([]byte, block.Size)
}

// rotateIfDue rotates VariantD epochs that have elapsed.
func (s *Store) rotateIfDue() {
	if s.logger == nil {
		return
	}
	epoch := int64(s.now().Sub(s.start) / s.opts.Epoch)
	for s.curEpoch < epoch {
		s.curEpoch++
		if err := s.rotateLocked(); err != nil {
			// Epoch rotation failure leaves the previous epoch's set in
			// place; counting resumes with the next epoch.
			return
		}
	}
}

// RotateEpoch forces an immediate SieveStore-D epoch boundary: the current
// logs are reduced, qualifying blocks are batch-allocated (fetching their
// data from the ensemble), and the logs reset. The epoch schedule restarts
// from here — the next automatic rotation happens one full Epoch after the
// epoch containing the current time, not at the originally scheduled
// boundary (otherwise a near-boundary manual rotation would immediately be
// followed by an automatic one over empty logs, wiping the cache). It is a
// no-op for VariantC.
func (s *Store) RotateEpoch() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.logger == nil {
		return nil
	}
	if err := s.rotateLocked(); err != nil {
		return err
	}
	// Restart the schedule: the next automatic rotation is one full Epoch
	// from now. (start is only used for epoch scheduling under VariantD.)
	s.start = s.now()
	s.curEpoch = 0
	return nil
}

func (s *Store) rotateLocked() error {
	selected, err := s.logger.EndEpoch(s.opts.DThreshold)
	if err != nil {
		return err
	}
	// The epoch boundary replaces the cache contents wholesale; anything
	// still in flight must not install into the new epoch's set.
	s.staleAllFlightsLocked()
	if cap := s.tags.Capacity(); len(selected) > cap {
		selected = selected[:cap]
	}
	s.stats.Epochs++
	// Evict everything not in the new set, then move in the new blocks.
	inNew := make(map[block.Key]bool, len(selected))
	for _, k := range selected {
		inNew[k] = true
	}
	for _, k := range s.tags.Keys() {
		if !inNew[k] {
			if s.dirty[k] {
				if err := s.flushBlock(k); err != nil {
					return err
				}
			}
			s.tags.Remove(k)
			s.free = append(s.free, s.frames[k])
			delete(s.frames, k)
			s.stats.Evictions++
		}
	}
	buf := make([]byte, block.Size)
	for _, k := range selected {
		if s.tags.Contains(k) {
			continue // retained across epochs: replacement cancels allocation
		}
		if err := s.backend.ReadAt(k.Server(), k.Volume(), buf, k.Offset()); err != nil {
			return fmt.Errorf("core: epoch move for %v: %w", k, err)
		}
		s.stats.BackendReads++
		s.stats.BackendBytesRead += block.Size
		if err := s.install(k, buf); err != nil {
			return err
		}
		s.stats.EpochMoves++
	}
	return nil
}

// Contains reports whether a block is currently cached (test/debug aid).
func (s *Store) Contains(server, volume int, off uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tags.Contains(block.MakeKey(server, volume, off/block.Size))
}

// Invalidate drops any cached blocks overlapping [off, off+length) of the
// volume, returning how many were resident. Use it when the backing
// ensemble is modified outside the Store (the write-through design makes
// this unnecessary for I/O that goes through the Store itself).
func (s *Store) Invalidate(server, volume int, off uint64, length int) (int, error) {
	if off%block.Size != 0 || length%block.Size != 0 || length <= 0 {
		return 0, ErrAlignment
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	first := off / block.Size
	dropped := 0
	for i := 0; i < length/block.Size; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		// A fetch or write in flight for this key would re-install data
		// from before the invalidation: mark it stale so its owner skips
		// the install, and detach it so later misses fetch fresh.
		if f, ok := s.inflight[key]; ok {
			f.stale = true
			delete(s.inflight, key)
		}
		if !s.tags.Contains(key) {
			continue
		}
		// A dirty block holds the only current copy: write it back before
		// dropping, or the data would be lost.
		if s.dirty[key] {
			if err := s.flushBlock(key); err != nil {
				return dropped, err
			}
		}
		s.tags.Remove(key)
		s.free = append(s.free, s.frames[key])
		delete(s.frames, key)
		dropped++
	}
	return dropped, nil
}
