package core

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
)

var errCacheDev = errors.New("test: cache device fault")

// openFaultyCache returns a VariantC store whose frame installs fail while
// *failing is set, plus the backing Mem for direct inspection.
func openFaultyCache(t *testing.T, clk *fakeClock, failing *atomic.Bool) *Store {
	t.Helper()
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes: 64 * block.Size,
		SieveC:     quickSieve(),
		Now:        clk.Now,
		FrameFaultInjector: func(block.Key) error {
			if failing.Load() {
				return errCacheDev
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// admitAttempts drives enough distinct-block misses that the sieve approves
// n installs (quickSieve admits on the 3rd miss of a block).
func admitAttempts(t *testing.T, s *Store, n int, baseBlock uint64) {
	t.Helper()
	buf := make([]byte, block.Size)
	for b := 0; b < n; b++ {
		off := (baseBlock + uint64(b)) * block.Size
		for i := 0; i < 3; i++ {
			if err := s.ReadAt(0, 0, buf, off); err != nil {
				t.Fatalf("read block %d: %v", b, err)
			}
		}
	}
}

func TestDegradedEntryAfterConsecutiveCacheFaults(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	failing.Store(true)
	s := openFaultyCache(t, clk, &failing)

	admitAttempts(t, s, 3, 0) // threshold defaults to 3
	if !s.Degraded() {
		t.Fatal("store not degraded after 3 consecutive cache faults")
	}
	st := s.Stats()
	if st.DegradedEnters != 1 || st.CacheFaults < 3 || !st.Degraded {
		t.Fatalf("stats = %+v, want 1 enter and ≥3 cache faults", st)
	}

	// While degraded (and before the probe interval elapses), I/O is served
	// pass-through: correct data, no cache installs, bypass counters move.
	data := bytes.Repeat([]byte{0xAB}, block.Size)
	if err := s.WriteAt(0, 0, data, 100*block.Size); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, block.Size)
	if err := s.ReadAt(0, 0, got, 100*block.Size); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("bypass read returned wrong data")
	}
	st = s.Stats()
	if st.BypassReads == 0 || st.BypassWrites == 0 {
		t.Fatalf("bypass counters did not move: %+v", st)
	}
	if s.Contains(0, 0, 100*block.Size) {
		t.Fatal("bypass write installed a frame")
	}
}

func TestDegradedProbeRecovers(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	failing.Store(true)
	s := openFaultyCache(t, clk, &failing)

	// Pre-warm block 50 to two misses (no admission attempt yet) so that a
	// later probe read of it is exactly the admission-triggering 3rd miss.
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 50*block.Size); err != nil {
			t.Fatal(err)
		}
	}

	admitAttempts(t, s, 3, 0)
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}

	// Device still sick: the probe takes the normal path, attempts the
	// install, faults again, and the store stays degraded.
	clk.Advance(2 * time.Second)
	if err := s.ReadAt(0, 0, buf, 50*block.Size); err != nil {
		t.Fatal(err)
	}
	if !s.Degraded() {
		t.Fatal("probe against a sick device must not exit degraded mode")
	}

	// Device recovers: the next due probe completes fault-free and exits.
	failing.Store(false)
	clk.Advance(2 * time.Second)
	if err := s.ReadAt(0, 0, buf, 50*block.Size); err != nil {
		t.Fatal(err)
	}
	if s.Degraded() {
		t.Fatal("clean probe did not exit degraded mode")
	}
	if st := s.Stats(); st.DegradedExits != 1 || st.Degraded {
		t.Fatalf("stats = %+v, want 1 exit", st)
	}

	// Back to normal: admissions install frames again.
	admitAttempts(t, s, 1, 60)
	if !s.Contains(0, 0, 60*block.Size) {
		t.Fatal("recovered store no longer admits")
	}
}

func TestBypassWriteDropsStaleCachedCopy(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	s := openFaultyCache(t, clk, &failing)

	// Admit block 5 with known contents while the cache device is healthy.
	old := bytes.Repeat([]byte{0x01}, block.Size)
	if err := s.WriteAt(0, 0, old, 5*block.Size); err != nil {
		t.Fatal(err)
	}
	admitAttempts(t, s, 1, 5)
	if !s.Contains(0, 0, 5*block.Size) {
		t.Fatal("setup: block 5 not cached")
	}

	// Break the device and enter bypass.
	failing.Store(true)
	admitAttempts(t, s, 3, 10)
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}

	// Overwrite block 5 via the bypass path; the cached copy must go.
	next := bytes.Repeat([]byte{0x02}, block.Size)
	if err := s.WriteAt(0, 0, next, 5*block.Size); err != nil {
		t.Fatal(err)
	}
	if s.Contains(0, 0, 5*block.Size) {
		t.Fatal("bypass write left a stale frame resident")
	}

	// Recover; the read must see the new data, not a resurrected frame.
	failing.Store(false)
	clk.Advance(2 * time.Second)
	got := make([]byte, block.Size)
	if err := s.ReadAt(0, 0, got, 5*block.Size); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, next) {
		t.Fatal("read after recovery returned pre-bypass data")
	}
}

func TestDegradedDisabledByNegativeThreshold(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes:             64 * block.Size,
		SieveC:                 quickSieve(),
		Now:                    clk.Now,
		DegradedFaultThreshold: -1,
		FrameFaultInjector:     func(block.Key) error { return errCacheDev },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	admitAttempts(t, s, 5, 0)
	if s.Degraded() {
		t.Fatal("negative threshold must disable degraded mode")
	}
	if st := s.Stats(); st.CacheFaults == 0 {
		t.Fatal("faults should still be counted")
	}
}

func TestSpillDisableAndProbeReenable(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 3,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var spillCalls atomic.Int64
	var spillSick atomic.Bool
	spillSick.Store(true)
	testSpillFault = func() error {
		spillCalls.Add(1)
		if spillSick.Load() {
			return errors.New("test: spill device fault")
		}
		return nil
	}
	defer func() { testSpillFault = nil }()

	buf := make([]byte, block.Size)
	for i := 0; i < 3; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.SpillDisables != 1 {
		t.Fatalf("SpillDisables = %d, want 1 after 3 consecutive log faults", st.SpillDisables)
	}

	// Disabled: further accesses skip the logger entirely (no probe due).
	before := spillCalls.Load()
	for i := 0; i < 5; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := spillCalls.Load(); got != before {
		t.Fatalf("disabled spill still logged: %d extra calls", got-before)
	}

	// Spill device heals; the next due probe re-enables logging.
	spillSick.Store(false)
	clk.Advance(2 * time.Second)
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	before = spillCalls.Load()
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if got := spillCalls.Load(); got != before+1 {
		t.Fatal("probe success did not re-enable access logging")
	}

	// The counts logged after re-enabling still drive epoch selection.
	for i := 0; i < 4; i++ {
		if err := s.ReadAt(0, 0, buf, 2*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, 2*block.Size) {
		t.Fatal("post-re-enable accesses did not count toward the epoch selection")
	}
}

func TestSpillReenabledByRotation(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 3,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	testSpillFault = func() error { return errors.New("test: spill device fault") }
	buf := make([]byte, block.Size)
	for i := 0; i < 3; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	testSpillFault = nil
	if st := s.Stats(); st.SpillDisables != 1 {
		t.Fatalf("SpillDisables = %d, want 1", st.SpillDisables)
	}

	// A successful rotation resets the logs and resumes logging without
	// waiting for a probe.
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.ReadAt(0, 0, buf, block.Size); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, block.Size) {
		t.Fatal("rotation did not re-enable access logging")
	}
}
