package core

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/store"
)

// TestShardsValidation checks Options.Shards defaulting and rejection.
func TestShardsValidation(t *testing.T) {
	mem := store.NewMem()
	st, err := Open(mem, Options{CacheBytes: 64 * block.Size})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Shards(); got != 1 {
		t.Errorf("default Shards = %d, want 1", got)
	}
	st.Close()

	for _, bad := range []int{-1, 3, 6, 12} {
		if _, err := Open(mem, Options{CacheBytes: 64 * block.Size, Shards: bad}); err == nil {
			t.Errorf("Shards=%d: want power-of-two error", bad)
		}
	}
	// More shards than cache blocks: a shard would have zero capacity.
	if _, err := Open(mem, Options{CacheBytes: 2 * block.Size, Shards: 4}); err == nil {
		t.Error("Shards=4 over a 2-block cache: want capacity error")
	}
	if n := DefaultShards(); n < 1 || n&(n-1) != 0 {
		t.Errorf("DefaultShards() = %d, want a power of two ≥ 1", n)
	}

	st8, err := Open(mem, Options{CacheBytes: 64 * block.Size, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st8.Close()
	if got := st8.Shards(); got != 8 {
		t.Errorf("Shards() = %d, want 8", got)
	}
	if got := st8.Stats().CapacityBlocks; got != 64 {
		t.Errorf("CapacityBlocks = %d, want 64 (partitioned, not truncated)", got)
	}
}

// shardTraceOp is one deterministic trace step for the equivalence test.
type shardTraceOp struct {
	write bool
	blk   uint64
	n     int
}

// shardTrace builds a deterministic mixed read/write trace with skewed
// reuse over span blocks (an LCG — no real randomness, so every run and
// every shard count sees the identical sequence).
func shardTrace(ops, span int) []shardTraceOp {
	out := make([]shardTraceOp, ops)
	x := uint64(88172645463325252)
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		blk := (x >> 8) % uint64(span)
		if x%4 != 0 { // 3/4 of ops hit a hot eighth of the span
			blk %= uint64(span / 8)
		}
		n := 1 + int(x>>62) // 1–4 blocks
		if int(blk)+n > span {
			n = span - int(blk)
		}
		out[i] = shardTraceOp{write: x%8 == 0, blk: blk, n: n}
	}
	return out
}

// TestShardEquivalence replays the same serial trace at Shards ∈ {1,2,8}
// under both the LRU and SIEVE replacement engines and checks (a) every
// combination returns byte-correct data, (b) access counters are
// identical, and (c) hit ratios stay within 1% of that policy's Shards=1
// figure — shard-local eviction is the only allowed divergence.
// (Shards=1 bit-identity with the unsharded seed is covered separately by
// the internal/replay simulator cross-validation.)
func TestShardEquivalence(t *testing.T) {
	const span = 512
	trace := shardTrace(6000, span)
	content := func(blk uint64) byte { return byte(blk*7 + 13) }

	run := func(shards int, policy string) Stats {
		mem := store.NewMem()
		mem.AddVolume(0, 0, span*block.Size)
		init := make([]byte, span*block.Size)
		for b := 0; b < span; b++ {
			for i := 0; i < block.Size; i++ {
				init[b*block.Size+i] = content(uint64(b))
			}
		}
		if err := mem.WriteAt(0, 0, init, 0); err != nil {
			t.Fatal(err)
		}
		// Cache an eighth of the span so eviction actually happens.
		st, err := Open(mem, Options{
			CacheBytes: span / 8 * block.Size,
			Shards:     shards,
			Policy:     policy,
			SieveC:     smallSieve(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		buf := make([]byte, 4*block.Size)
		for _, op := range trace {
			p := buf[:op.n*block.Size]
			if op.write {
				for b := 0; b < op.n; b++ {
					for i := 0; i < block.Size; i++ {
						p[b*block.Size+i] = content(op.blk + uint64(b))
					}
				}
				if err := st.WriteAt(0, 0, p, op.blk*block.Size); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err := st.ReadAt(0, 0, p, op.blk*block.Size); err != nil {
				t.Fatal(err)
			}
			for b := 0; b < op.n; b++ {
				want := content(op.blk + uint64(b))
				if p[b*block.Size] != want || p[(b+1)*block.Size-1] != want {
					t.Fatalf("shards=%d policy=%s: block %d read %x..%x, want %x",
						shards, policy, op.blk+uint64(b), p[b*block.Size], p[(b+1)*block.Size-1], want)
				}
			}
		}
		return st.Stats()
	}

	// LRU's shard-local eviction must track the global figure to 1%.
	// SIEVE pays more for tiny shards (8 blocks each here): its hand
	// approximates recency coarsely at that granularity, so its bar is
	// looser — the realistic 512-block configuration is pinned to ±1% of
	// LRU by the golden suite instead.
	tolerance := map[string]float64{"lru": 0.01, "sieve": 0.10}
	for _, policy := range []string{"lru", "sieve"} {
		t.Run(policy, func(t *testing.T) {
			base := run(1, policy)
			for _, shards := range []int{2, 8} {
				got := run(shards, policy)
				if got.Reads != base.Reads || got.Writes != base.Writes {
					t.Errorf("shards=%d: accesses %d/%d, want %d/%d",
						shards, got.Reads, got.Writes, base.Reads, base.Writes)
				}
				if diff := math.Abs(got.HitRatio() - base.HitRatio()); diff > tolerance[policy] {
					t.Errorf("shards=%d: hit ratio %.4f, want within %.0f%% of %.4f",
						shards, got.HitRatio(), 100*tolerance[policy], base.HitRatio())
				}
				if got.CachedBlocks > got.CapacityBlocks {
					t.Errorf("shards=%d: residency %d exceeds capacity %d",
						shards, got.CachedBlocks, got.CapacityBlocks)
				}
			}
		})
	}
}

// TestHitsProceedWhileLoggerStalled is the regression test for the
// logAccess-under-lock bug: SieveStore-D access logging performs buffered
// file I/O, and the old code did it while holding the store mutex — a
// single slow log write (e.g. a 64 KiB bufio flush hitting a congested
// disk) stalled every concurrent hit. Logging now happens before any
// shard lock is taken, so a caller stuck in the logger must not block
// hits.
func TestHitsProceedWhileLoggerStalled(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 256*block.Size)
	clk := newFakeClock()
	st := openD(t, clk, mem, 1, "")

	// Install block 0: log one access, then cross an epoch boundary so the
	// rotation batch-allocates it.
	buf := make([]byte, block.Size)
	if err := st.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour + time.Minute)
	if err := st.ReadAt(0, 0, buf, 64*block.Size); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(0, 0, 0) {
		t.Fatal("block 0 not cached after rotation")
	}

	// Stall exactly one logAccess call (the first to arrive).
	stalled := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	testLogHook = func() {
		first := false
		once.Do(func() { first = true })
		if first {
			close(stalled)
			<-release
		}
	}
	var wg sync.WaitGroup
	defer func() {
		close(release)
		wg.Wait()
		testLogHook = nil
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		p := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, p, 128*block.Size); err != nil {
			t.Error(err)
		}
	}()
	<-stalled // the reader above is now stuck inside the logger

	hits := make(chan error, 1)
	go func() {
		p := make([]byte, block.Size)
		for i := 0; i < 50; i++ {
			if err := st.ReadAt(0, 0, p, 0); err != nil {
				hits <- err
				return
			}
		}
		hits <- nil
	}()
	select {
	case err := <-hits:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cache hits blocked behind a stalled access-log write")
	}
	before := st.Stats().ReadHits
	if before < 50 {
		t.Errorf("ReadHits = %d, want ≥ 50", before)
	}
}

// TestPooledWaiterCoalescing drives several readers onto one in-flight
// fetch and checks each gets correct data from the pooled, refcounted
// buffer — and that the buffer's return to the pool does not corrupt a
// later fetch's result.
func TestPooledWaiterCoalescing(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 64*block.Size)
	pattern := make([]byte, block.Size)
	for i := range pattern {
		pattern[i] = 0xA5
	}
	if err := mem.WriteAt(0, 0, pattern, 7*block.Size); err != nil {
		t.Fatal(err)
	}
	gate := newGateBackend(mem)
	st, err := Open(gate, Options{CacheBytes: 16 * block.Size, Shards: 2, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	const readers = 5
	var wg sync.WaitGroup
	bufs := make([][]byte, readers)
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		bufs[r] = make([]byte, block.Size)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = st.ReadAt(0, 0, bufs[r], 7*block.Size)
		}(r)
	}
	<-gate.entered // exactly one fetch reaches the backend
	select {
	case <-gate.entered:
		t.Error("second backend fetch for a coalesced key")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.release)
	wg.Wait()
	for r := 0; r < readers; r++ {
		if errs[r] != nil {
			t.Fatalf("reader %d: %v", r, errs[r])
		}
		if !bytes.Equal(bufs[r], pattern) {
			t.Fatalf("reader %d got corrupted data", r)
		}
	}
	if got := st.Stats().CoalescedReads; got != readers-1 {
		t.Errorf("CoalescedReads = %d, want %d", got, readers-1)
	}
	// The pooled buffer is back in circulation now; a fresh miss must not
	// see its remnants.
	p := make([]byte, block.Size)
	if err := st.ReadAt(0, 0, p, 9*block.Size); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, make([]byte, block.Size)) {
		t.Error("fresh miss returned non-zero data after pool reuse")
	}
}

// TestShardStressTransitions races readers and writers across 8 shards
// against rotation, flush, snapshot save/load, and invalidation — the
// cross-shard staged protocols — under both the LRU and SIEVE engines
// (SIEVE adds the hand's Remove/Swap repair paths to the mix). Every
// block always holds the same key-derived pattern, so any read (from
// frames old or new, snapshot or backend) can be verified exactly; the
// race detector checks the locking.
func TestShardStressTransitions(t *testing.T) {
	for _, policy := range []string{"lru", "sieve"} {
		t.Run(policy, func(t *testing.T) { stressTransitions(t, policy) })
	}
}

func stressTransitions(t *testing.T, policy string) {
	const (
		span    = 512
		workers = 4
		ops     = 400
	)
	mem := store.NewMem()
	mem.AddVolume(0, 0, span*block.Size)
	st, err := Open(mem, Options{
		CacheBytes: span / 4 * block.Size,
		Shards:     8,
		Policy:     policy,
		Variant:    VariantD,
		DThreshold: 1,
		Epoch:      time.Hour,
		WriteBack:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	pattern := func(blk uint64, p []byte) {
		for i := range p {
			p[i] = byte(blk*31 + 7)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 2*block.Size)
			x := uint64(w)*2654435761 + 1
			for i := 0; i < ops; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				blk := x % (span - 1)
				switch x % 3 {
				case 0:
					p := buf[:block.Size]
					pattern(blk, p)
					if err := st.WriteAt(0, 0, p, blk*block.Size); err != nil {
						t.Error(err)
						return
					}
				case 1:
					n := 1 + int(x>>63)
					p := buf[:n*block.Size]
					if err := st.ReadAt(0, 0, p, blk*block.Size); err != nil {
						t.Error(err)
						return
					}
					for b := 0; b < n; b++ {
						want := byte((blk+uint64(b))*31 + 7)
						got := p[b*block.Size]
						if got != 0 && got != want {
							t.Errorf("block %d: read %x, want %x or 0", blk+uint64(b), got, want)
							return
						}
					}
				default:
					if _, err := st.Invalidate(0, 0, blk*block.Size, block.Size); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}

	var transWg sync.WaitGroup
	transWg.Add(1)
	go func() {
		defer transWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				if err := st.RotateEpoch(); err != nil {
					t.Error(err)
					return
				}
			case 1:
				if err := st.Flush(); err != nil {
					t.Error(err)
					return
				}
			case 2:
				var snap bytes.Buffer
				if err := st.SaveSnapshot(&snap); err != nil {
					t.Error(err)
					return
				}
				if err := st.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
					t.Error(err)
					return
				}
			default:
				_ = st.Stats()
			}
		}
	}()

	wg.Wait()
	close(stop)
	transWg.Wait()

	// Everything must still drain cleanly.
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	final := st.Stats()
	if final.CachedBlocks > final.CapacityBlocks {
		t.Errorf("residency %d exceeds capacity %d", final.CachedBlocks, final.CapacityBlocks)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close the backend holds every flushed pattern; spot-check that
	// no block carries a torn or foreign pattern.
	p := make([]byte, block.Size)
	for blk := uint64(0); blk < span; blk += 37 {
		if err := mem.ReadAt(0, 0, p, blk*block.Size); err != nil {
			t.Fatal(err)
		}
		want := byte(blk*31 + 7)
		for i, b := range p {
			if b != 0 && b != want {
				t.Fatalf("backend block %d byte %d = %x, want %x or 0", blk, i, b, want)
			}
		}
	}
}

// TestSelectOverflowSkewedShards is the regression test for the silent
// rotation drop: the per-shard split of an epoch selection caps each
// shard at its own capacity, so a skewed key→shard distribution loses
// hot blocks even when the cache as a whole has room. Those drops (plus
// any tag-store Swap truncation) must surface in Stats.SelectOverflow.
func TestSelectOverflowSkewedShards(t *testing.T) {
	const span = 4096
	mem := store.NewMem()
	mem.AddVolume(0, 0, span*block.Size)
	clk := newFakeClock()
	st, err := Open(mem, Options{
		CacheBytes: 64 * block.Size, // 8 shards × 8 blocks
		Shards:     8,
		Variant:    VariantD,
		DThreshold: 1,
		Epoch:      time.Hour,
		SpillDir:   t.TempDir(),
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Brute-force 20 block numbers that all hash to shard 0: more than
	// twice its 8-block capacity, while the other 7 shards stay empty.
	var skewed []uint64
	for blk := uint64(0); blk < span && len(skewed) < 20; blk++ {
		if st.shardIndex(block.MakeKey(0, 0, blk)) == 0 {
			skewed = append(skewed, blk)
		}
	}
	if len(skewed) < 20 {
		t.Fatalf("only %d keys map to shard 0 in a %d-block span", len(skewed), span)
	}
	p := make([]byte, block.Size)
	for _, blk := range skewed {
		if err := st.ReadAt(0, 0, p, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	// All 20 cross DThreshold=1, shard 0 installs at most 8: 12 hot
	// blocks vanished from the selection and must be accounted for.
	if want := int64(len(skewed) - 8); s.SelectOverflow != want {
		t.Errorf("SelectOverflow = %d, want %d", s.SelectOverflow, want)
	}
	if s.CachedBlocks > 8 {
		t.Errorf("CachedBlocks = %d, want ≤ 8 (everything hashes to one shard)", s.CachedBlocks)
	}
	// An even selection (fresh epoch, keys spread across shards) adds no
	// further overflow.
	before := s.SelectOverflow
	for blk := uint64(0); blk < 32; blk++ {
		if err := st.ReadAt(0, 0, p, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(2 * time.Hour)
	if err := st.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	s = st.Stats()
	if s.SelectOverflow != before {
		t.Errorf("even selection changed SelectOverflow: %d → %d", before, s.SelectOverflow)
	}
}

// TestSnapshotRoundTripAcrossShardCounts saves from a sharded store and
// loads into stores with different shard counts, checking the restored
// contents are identical (snapshots are portable across Shards).
func TestSnapshotRoundTripAcrossShardCounts(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 256*block.Size)
	src, err := Open(mem, Options{CacheBytes: 64 * block.Size, Shards: 4, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	p := make([]byte, block.Size)
	for blk := uint64(0); blk < 32; blk++ {
		for i := range p {
			p[i] = byte(blk + 1)
		}
		if err := src.WriteAt(0, 0, p, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := src.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dst, err := Open(mem, Options{CacheBytes: 64 * block.Size, Shards: shards, SieveC: smallSieve()})
			if err != nil {
				t.Fatal(err)
			}
			defer dst.Close()
			if err := dst.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			for blk := uint64(0); blk < 32; blk++ {
				if !dst.Contains(0, 0, blk*block.Size) {
					t.Fatalf("block %d not restored", blk)
				}
			}
			got := dst.Stats()
			if got.CachedBlocks != 32 {
				t.Errorf("CachedBlocks = %d, want 32", got.CachedBlocks)
			}
			if err := dst.ReadAt(0, 0, p, 5*block.Size); err != nil {
				t.Fatal(err)
			}
			if p[0] != 6 {
				t.Errorf("restored block 5 = %x, want 6", p[0])
			}
		})
	}
}
