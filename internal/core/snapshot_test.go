package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/block"
)

// heatBlocks makes the given offsets resident (quickSieve admits on the
// 3rd miss) in the order given, so the last one is MRU.
func heatBlocks(t *testing.T, s *Store, clk *fakeClock, offsets ...uint64) {
	t.Helper()
	buf := make([]byte, block.Size)
	for _, off := range offsets {
		for i := 0; i < 3; i++ {
			clk.Advance(time.Second)
			if err := s.ReadAt(0, 0, buf, off); err != nil {
				t.Fatal(err)
			}
		}
		if !s.Contains(0, 0, off) {
			t.Fatalf("block @%d not admitted", off)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Give the blocks recognizable contents via the write-through path.
	for i, off := range []uint64{0, 512, 1024} {
		data := bytes.Repeat([]byte{byte(i + 1)}, block.Size)
		if err := s.WriteAt(0, 0, data, off); err != nil {
			t.Fatal(err)
		}
	}
	heatBlocks(t, s, clk, 0, 512, 1024)

	var snap bytes.Buffer
	if err := s.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same backend restores warm.
	s2, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.CachedBlocks != 3 {
		t.Fatalf("restored %d blocks, want 3", st.CachedBlocks)
	}
	// First read after restore is already a hit with the right data.
	buf := make([]byte, block.Size)
	if err := s2.ReadAt(0, 0, buf, 512); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Errorf("restored data wrong: %x", buf[0])
	}
	if got := s2.Stats(); got.ReadHits != 1 || got.BackendReads != 0 {
		t.Errorf("restore not warm: %+v", got)
	}
}

func TestSnapshotPreservesLRUOrder(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	heatBlocks(t, s, clk, 0, 512, 1024) // MRU order: 1024, 512, 0

	var snap bytes.Buffer
	if err := s.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Restore into a 2-block store: only the two hottest (1024, 512)
	// survive the capacity cut.
	s2, err := Open(be, Options{CacheBytes: 2 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !s2.Contains(0, 0, 1024) || !s2.Contains(0, 0, 512) {
		t.Error("hot blocks lost in capacity cut")
	}
	if s2.Contains(0, 0, 0) {
		t.Error("LRU block should have been dropped")
	}
}

func TestLoadSnapshotReplacesContents(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	heatBlocks(t, s, clk, 0)
	var snap bytes.Buffer
	if err := s.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Heat a different block, then restore: only the snapshot's content
	// must remain.
	heatBlocks(t, s, clk, 2048)
	if err := s.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, 0) || s.Contains(0, 0, 2048) {
		t.Error("LoadSnapshot did not replace contents")
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	s := openC(t, newFakeClock())
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SVS1"), // truncated header
		append([]byte("SVS1"), make([]byte, 17)...), // count says 0 entries — actually valid
	}
	for i, data := range cases[:3] {
		if err := s.LoadSnapshot(bytes.NewReader(data)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("case %d: want ErrBadSnapshot, got %v", i, err)
		}
	}
	// Header with zero entries is a valid empty snapshot.
	if err := s.LoadSnapshot(bytes.NewReader(cases[3])); err != nil {
		t.Errorf("empty snapshot rejected: %v", err)
	}
	// Truncated entry payload.
	var snap bytes.Buffer
	snap.WriteString("SVS1")
	snap.WriteByte(0)
	snap.Write(make([]byte, 8))                // capacity
	snap.Write([]byte{0, 0, 0, 0, 0, 0, 0, 1}) // count = 1
	snap.Write(make([]byte, 8+100))            // entry cut short
	if err := s.LoadSnapshot(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated entry: %v", err)
	}
}

func TestSnapshotClosedStore(t *testing.T) {
	s := openC(t, newFakeClock())
	s.Close()
	var buf bytes.Buffer
	if err := s.SaveSnapshot(&buf); !errors.Is(err, ErrClosed) {
		t.Errorf("save on closed: %v", err)
	}
	if err := s.LoadSnapshot(&buf); !errors.Is(err, ErrClosed) {
		t.Errorf("load on closed: %v", err)
	}
}

// FuzzLoadSnapshot feeds arbitrary bytes to the snapshot loader: it must
// reject garbage with ErrBadSnapshot (or load a valid prefix) and never
// panic or corrupt the store.
func FuzzLoadSnapshot(f *testing.F) {
	f.Add([]byte("SVS1"))
	f.Add(append([]byte("SVS1\x00"), make([]byte, 16)...))
	valid := func() []byte {
		clk := newFakeClock()
		be := testBackend()
		s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
		if err != nil {
			panic(err)
		}
		defer s.Close()
		buf := make([]byte, block.Size)
		for i := 0; i < 3; i++ {
			clk.Advance(time.Second)
			s.ReadAt(0, 0, buf, 0)
		}
		var b bytes.Buffer
		s.SaveSnapshot(&b)
		return b.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)-7])
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Open(testBackend(), Options{CacheBytes: 16 * block.Size, SieveC: quickSieve()})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		_ = s.LoadSnapshot(bytes.NewReader(data))
		st := s.Stats()
		if st.CachedBlocks > st.CapacityBlocks {
			t.Fatalf("snapshot load overfilled the cache: %+v", st)
		}
		// The store must remain usable regardless.
		buf := make([]byte, block.Size)
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatalf("store wedged after fuzzed snapshot: %v", err)
		}
	})
}
