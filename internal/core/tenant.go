package core

import (
	"repro/internal/block"
	"repro/internal/tenant"
)

// Multi-tenant QoS integration (internal/tenant). The Accountant is a
// leaf under the shard locks: occupancy moves with every tags
// insert/remove (install, epoch swap, invalidation, snapshot
// replacement), per-op access/hit counts are charged once per
// ReadAt/WriteAt to the single (server, volume) tenant the op names,
// and admission consults the tenant's quota and endurance budget before
// the sieve. All helpers are nil-safe no-ops when tenant tracking is
// off, keeping the default path byte-identical.

// TenantStats returns every tenant's accounting, sorted by (server,
// volume); ok is false when tenant tracking is disabled.
func (s *Store) TenantStats() ([]tenant.Snapshot, bool) {
	if s.acct == nil {
		return nil, false
	}
	return s.acct.Snapshot(), true
}

// tenantAccess charges one op's block accesses to its tenant.
func (s *Store) tenantAccess(server, volume int, blocks int64, write bool) {
	if s.acct != nil {
		s.acct.OnAccess(tenant.MakeID(server, volume), blocks, write)
	}
}

// tenantHits charges one op's realized hits (SSD or RAM tier) to its
// tenant — the demand signal quota repartitioning divides capacity by.
func (s *Store) tenantHits(server, volume int, hits int64) {
	if s.acct != nil && hits > 0 {
		s.acct.OnHits(tenant.MakeID(server, volume), hits)
	}
}

// tenantTick runs a time-driven quota repartition when due (one atomic
// load when it is not). Called from the op path next to maybeRotate.
func (s *Store) tenantTick() {
	if s.acct != nil {
		s.acct.MaybeRepartition(s.now())
	}
}

// tenantInstall records key becoming resident. Call under the owning
// shard's lock, exactly once per tags insertion.
func (sh *shard) tenantInstall(key block.Key) {
	if a := sh.store.acct; a != nil {
		a.OnInstall(tenant.IDOf(key))
	}
}

// tenantEvict records key leaving the cache. Call under the owning
// shard's lock, exactly once per tags removal.
func (sh *shard) tenantEvict(key block.Key) {
	if a := sh.store.acct; a != nil {
		a.OnEvict(tenant.IDOf(key))
	}
}

// tenantAllocWrite charges blocks of SSD allocation-writes against
// key's tenant endurance budget.
func (sh *shard) tenantAllocWrite(key block.Key, blocks int64) {
	if a := sh.store.acct; a != nil {
		a.OnAllocWrite(tenant.IDOf(key), blocks, sh.store.now())
	}
}
