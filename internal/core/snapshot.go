package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/block"
)

// Cache snapshots let an appliance restart warm: the popular-block set the
// sieve spent a day identifying survives the process. (SieveStore-D's
// epoch logs already live on disk — see sieved.OpenLogger — so with a
// snapshot both tiers of state are durable.)
//
// Snapshot format:
//
//	magic    [4]byte "SVS1"
//	variant  u8
//	capacity u64   (blocks)
//	count    u64   (resident blocks)
//	entries  count × { key u64 | data [512]byte }   (MRU first)
//
// All integers are big-endian.

var snapMagic = [4]byte{'S', 'V', 'S', '1'}

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// SaveSnapshot writes the cache contents (tags and data, MRU→LRU) to w.
// The store remains usable; the snapshot is a consistent point-in-time
// image taken under the store lock.
func (s *Store) SaveSnapshot(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	// Write-back mode: flush first so the backend and the snapshot are a
	// consistent pair (a restore must be able to trust either copy).
	if err := s.flushLocked(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(s.opts.Variant)); err != nil {
		return err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(s.tags.Capacity()))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	keys := s.tags.Keys() // MRU → LRU
	binary.BigEndian.PutUint64(u64[:], uint64(len(keys)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	for _, k := range keys {
		binary.BigEndian.PutUint64(u64[:], uint64(k))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		if _, err := bw.Write(s.frames[k]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot replaces the cache contents with a snapshot previously
// written by SaveSnapshot. Entries beyond the store's capacity are dropped
// from the cold (LRU) end. The snapshot's data is trusted; if the backing
// ensemble may have changed while the cache was down, Invalidate the
// affected ranges (or skip loading).
func (s *Store) LoadSnapshot(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapMagic {
		return fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic[:])
	}
	if _, err := br.ReadByte(); err != nil { // variant: informational only
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	// Snapshot capacity is informational; the live capacity governs.
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	count := binary.BigEndian.Uint64(u64[:])

	// The snapshot replaces the cache contents wholesale and its data is
	// trusted over the backend's; in-flight fetches must not install.
	s.staleAllFlightsLocked()
	// Drop current contents. Dirty blocks are flushed rather than lost.
	for _, k := range s.tags.Keys() {
		if s.dirty[k] {
			if err := s.flushBlock(k); err != nil {
				return err
			}
		}
		s.tags.Remove(k)
		s.free = append(s.free, s.frames[k])
		delete(s.frames, k)
	}
	// Entries arrive MRU-first; cap at capacity, then install in reverse
	// so the hottest block ends most-recently-used.
	capacity := uint64(s.tags.Capacity())
	keep := count
	if keep > capacity {
		keep = capacity
	}
	type entry struct {
		key  block.Key
		data []byte
	}
	entries := make([]entry, 0, keep)
	buf := make([]byte, block.Size)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		k := block.Key(binary.BigEndian.Uint64(u64[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: entry %d data: %v", ErrBadSnapshot, i, err)
		}
		if i < keep {
			entries = append(entries, entry{key: k, data: append([]byte(nil), buf...)})
		}
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if err := s.install(entries[i].key, entries[i].data); err != nil {
			return err
		}
	}
	return nil
}
