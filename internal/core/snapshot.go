package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/block"
)

// Cache snapshots let an appliance restart warm: the popular-block set the
// sieve spent a day identifying survives the process. (SieveStore-D's
// epoch logs already live on disk — see sieved.OpenLogger — so with a
// snapshot both tiers of state are durable.)
//
// Snapshot format:
//
//	magic    [4]byte "SVS1"
//	variant  u8
//	capacity u64   (blocks)
//	count    u64   (resident blocks)
//	entries  count × { key u64 | data [512]byte }   (MRU first)
//
// All integers are big-endian. A sharded store writes its shards in
// ascending order, each MRU-first — with Shards=1 this is exactly the
// global MRU order. Snapshots are portable across shard counts: keys
// rehash into their shards on load, keeping relative recency.

var snapMagic = [4]byte{'S', 'V', 'S', '1'}

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// SaveSnapshot writes the cache contents (tags and data, MRU→LRU per
// shard) to w. The store remains usable: each shard's image is staged
// under its lock at memory speed (dirty blocks drained, tags and frames
// copied) and the whole image is then streamed to w with no lock held, so
// a slow writer never stalls I/O. Each shard's slice is a consistent
// point-in-time view as of its copy; with Shards=1 the whole image is one
// consistent instant.
func (s *Store) SaveSnapshot(w io.Writer) error {
	if s.closed.Load() {
		return ErrClosed
	}
	var keys []block.Key
	var data []byte
	capacity := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		// Write-back mode: flush first so the backend and the snapshot are
		// a consistent pair (a restore must be able to trust either copy).
		// The drain ends under the lock with nothing dirty, and the copy
		// below happens before the lock is released, so the invariant
		// holds for the copied image even with writers running.
		if err := sh.drainDirtyLocked(); err != nil {
			sh.mu.Unlock()
			return err
		}
		shKeys := sh.tags.Keys() // MRU → LRU
		for _, k := range shKeys {
			data = append(data, sh.frames[k]...)
		}
		keys = append(keys, shKeys...)
		capacity += sh.tags.Capacity()
		sh.mu.Unlock()
	}
	variant := s.opts.Variant

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(variant)); err != nil {
		return err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(capacity))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(u64[:], uint64(len(keys)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	for i, k := range keys {
		binary.BigEndian.PutUint64(u64[:], uint64(k))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		if _, err := bw.Write(data[i*block.Size : (i+1)*block.Size]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot replaces the cache contents with a snapshot previously
// written by SaveSnapshot. Entries beyond a shard's capacity are dropped
// from the cold (LRU) end of that shard. The snapshot's data is trusted;
// if the backing ensemble may have changed while the cache was down,
// Invalidate the affected ranges (or skip loading).
func (s *Store) LoadSnapshot(r io.Reader) error {
	// Fail fast on a closed store (checked again before the install).
	if s.closed.Load() {
		return ErrClosed
	}
	// Parse the whole stream first, with no lock held: a slow or huge
	// snapshot reader must not stall concurrent I/O. (Capacity is fixed at
	// Open, so reading it without the lock is safe.)
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapMagic {
		return fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic[:])
	}
	if _, err := br.ReadByte(); err != nil { // variant: informational only
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	// Snapshot capacity is informational; the live capacity governs.
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	count := binary.BigEndian.Uint64(u64[:])

	// Entries arrive MRU-first; cap at capacity (the tail is the cold end).
	totalCap := 0
	for _, sh := range s.shards {
		totalCap += sh.tags.Capacity()
	}
	keep := count
	if capacity := uint64(totalCap); keep > capacity {
		keep = capacity
	}
	type entry struct {
		key  block.Key
		data []byte
	}
	entries := make([]entry, 0, keep)
	buf := make([]byte, block.Size)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		k := block.Key(binary.BigEndian.Uint64(u64[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: entry %d data: %v", ErrBadSnapshot, i, err)
		}
		if i < keep {
			entries = append(entries, entry{key: k, data: append([]byte(nil), buf...)})
		}
	}

	// An epoch transition staging right now would evict most of the
	// restored set at its commit (its final set was chosen before the
	// load): wait it out, then hold the rotating flag ourselves so no new
	// transition can start while shards are being replaced.
	s.rotMu.Lock()
	for s.rotating {
		s.rotCond.Wait()
	}
	if s.closed.Load() {
		s.rotMu.Unlock()
		return ErrClosed
	}
	s.rotating = true
	s.rotMu.Unlock()
	defer func() {
		s.rotMu.Lock()
		s.rotating = false
		s.rotCond.Broadcast()
		s.rotMu.Unlock()
	}()

	// Split MRU-first across shards, each capped at its own capacity.
	perShard := make([][]entry, len(s.shards))
	for _, e := range entries {
		si := s.shardIndex(e.key)
		if len(perShard[si]) < s.shards[si].tags.Capacity() {
			perShard[si] = append(perShard[si], e)
		}
	}

	// Replace shard by shard, ascending. Each shard's drain + replacement
	// happens in one critical section (the drain may release the lock
	// while streaming, but ends under it with nothing dirty). A flush
	// failure aborts the load: shards already visited keep their restored
	// contents, later shards are untouched — the first error is returned.
	for si, sh := range s.shards {
		sh.mu.Lock()
		// Dirty blocks are flushed (staged, off-lock) rather than lost.
		if err := sh.drainDirtyLocked(); err != nil {
			sh.mu.Unlock()
			return err
		}
		// The snapshot replaces the cache contents wholesale and its data
		// is trusted over the backend's; in-flight fetches must not
		// install. Write reservations stay attached — a write completing
		// after the load folds its newer data into the restored frames.
		sh.staleFetchFlightsLocked()
		for _, k := range sh.tags.Keys() {
			sh.tags.Remove(k)
			sh.recycleLocked(sh.frames[k])
			delete(sh.frames, k)
			sh.tenantEvict(k)
		}
		// Install in reverse so the hottest block ends most-recently-used.
		// No rotation can be staging here (the rotating flag is ours), so
		// the restored frames cannot be overwritten or evicted by an
		// epoch commit.
		es := perShard[si]
		for i := len(es) - 1; i >= 0; i-- {
			sh.install(es[i].key, es[i].data)
		}
		sh.mu.Unlock()
	}
	// The snapshot's data is trusted over whatever the RAM tier copied
	// from the pre-load cache: drop the whole tier. This runs after every
	// shard was replaced — a promotion racing the load copies from a
	// not-yet-replaced frame under that shard's lock, so it completes
	// before the replacement and this Clear observes (and drops) it.
	if s.tier != nil {
		s.tier.Clear()
	}
	return nil
}
