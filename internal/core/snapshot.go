package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/block"
)

// Cache snapshots let an appliance restart warm: the popular-block set the
// sieve spent a day identifying survives the process. (SieveStore-D's
// epoch logs already live on disk — see sieved.OpenLogger — so with a
// snapshot both tiers of state are durable.)
//
// Snapshot format:
//
//	magic    [4]byte "SVS1"
//	variant  u8
//	capacity u64   (blocks)
//	count    u64   (resident blocks)
//	entries  count × { key u64 | data [512]byte }   (MRU first)
//
// All integers are big-endian.

var snapMagic = [4]byte{'S', 'V', 'S', '1'}

// ErrBadSnapshot reports a malformed or incompatible snapshot stream.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// SaveSnapshot writes the cache contents (tags and data, MRU→LRU) to w.
// The store remains usable: the image is staged under the lock at memory
// speed (dirty blocks drained, tags and frames copied) and then streamed
// to w with no lock held, so a slow writer never stalls I/O. The image is
// a consistent point-in-time view as of the copy.
func (s *Store) SaveSnapshot(w io.Writer) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	// Write-back mode: flush first so the backend and the snapshot are a
	// consistent pair (a restore must be able to trust either copy). The
	// drain ends under the lock with nothing dirty, and the copy below
	// happens before the lock is released, so the invariant holds for the
	// copied image even with writers running.
	if err := s.drainDirtyLocked(); err != nil {
		s.mu.Unlock()
		return err
	}
	keys := s.tags.Keys() // MRU → LRU
	data := make([]byte, len(keys)*block.Size)
	for i, k := range keys {
		copy(data[i*block.Size:], s.frames[k])
	}
	capacity := s.tags.Capacity()
	variant := s.opts.Variant
	s.mu.Unlock()

	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(variant)); err != nil {
		return err
	}
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(capacity))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	binary.BigEndian.PutUint64(u64[:], uint64(len(keys)))
	if _, err := bw.Write(u64[:]); err != nil {
		return err
	}
	for i, k := range keys {
		binary.BigEndian.PutUint64(u64[:], uint64(k))
		if _, err := bw.Write(u64[:]); err != nil {
			return err
		}
		if _, err := bw.Write(data[i*block.Size : (i+1)*block.Size]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadSnapshot replaces the cache contents with a snapshot previously
// written by SaveSnapshot. Entries beyond the store's capacity are dropped
// from the cold (LRU) end. The snapshot's data is trusted; if the backing
// ensemble may have changed while the cache was down, Invalidate the
// affected ranges (or skip loading).
func (s *Store) LoadSnapshot(r io.Reader) error {
	// Fail fast on a closed store (checked again before the install).
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	s.mu.Unlock()
	// Parse the whole stream first, with no lock held: a slow or huge
	// snapshot reader must not stall concurrent I/O. (Capacity is fixed at
	// Open, so reading it without the lock is safe.)
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != snapMagic {
		return fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic[:])
	}
	if _, err := br.ReadByte(); err != nil { // variant: informational only
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	// Snapshot capacity is informational; the live capacity governs.
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	count := binary.BigEndian.Uint64(u64[:])

	// Entries arrive MRU-first; cap at capacity (the tail is the cold end).
	keep := count
	if capacity := uint64(s.tags.Capacity()); keep > capacity {
		keep = capacity
	}
	type entry struct {
		key  block.Key
		data []byte
	}
	entries := make([]entry, 0, keep)
	buf := make([]byte, block.Size)
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return fmt.Errorf("%w: entry %d: %v", ErrBadSnapshot, i, err)
		}
		k := block.Key(binary.BigEndian.Uint64(u64[:]))
		if _, err := io.ReadFull(br, buf); err != nil {
			return fmt.Errorf("%w: entry %d data: %v", ErrBadSnapshot, i, err)
		}
		if i < keep {
			entries = append(entries, entry{key: k, data: append([]byte(nil), buf...)})
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return ErrClosed
		}
		// An epoch transition staging right now would evict most of the
		// restored set at its commit (its final set was chosen before the
		// load): wait it out, as Close and RotateEpoch do.
		for s.rotating {
			s.rotCond.Wait()
		}
		if s.closed {
			return ErrClosed
		}
		// Dirty blocks are flushed (staged, off-lock) rather than lost; a
		// flush failure aborts the load with the cache untouched.
		if err := s.drainDirtyLocked(); err != nil {
			return err
		}
		// The drain releases the lock while streaming, so a rotation may
		// have started meanwhile — re-check before replacing the cache.
		if !s.rotating {
			break
		}
	}
	// The snapshot replaces the cache contents wholesale and its data is
	// trusted over the backend's; in-flight fetches must not install.
	// Write reservations stay attached — a write completing after the load
	// folds its newer data into the restored frames.
	s.staleFetchFlightsLocked()
	for _, k := range s.tags.Keys() {
		s.tags.Remove(k)
		s.free = append(s.free, s.frames[k])
		delete(s.frames, k)
	}
	// Install in reverse so the hottest block ends most-recently-used. No
	// rotation can be staging here (waited out above, and the lock is held
	// from that check through the install), so the restored frames cannot
	// be overwritten or evicted by an epoch commit.
	for i := len(entries) - 1; i >= 0; i-- {
		s.install(entries[i].key, entries[i].data)
	}
	return nil
}
