package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

// Golden-trace regression suite: a fixed seeded Zipf workload driven
// through both variants at Shards=1 and Shards=8, with the end-of-run
// hit ratio, allocation-write count, and sieve-admission count pinned to
// golden values. The workload is single-threaded and the clock is
// injected (10 ms per op), so every run takes identical decisions —
// math/rand with a fixed seed is stable under the Go 1 compatibility
// promise, sieved.Select tie-breaks by key, and VariantD rotations run
// inline in the triggering op. Any drift here means the caching policy
// itself changed, which must be a deliberate, explained decision.
//
// Tolerance is ±1% relative: tight enough to catch policy regressions,
// loose enough to survive benign refactors of float accounting.

const (
	goldenSpan = 4096  // distinct blocks touched
	goldenOps  = 30000 // operations per run
	goldenSeed = 42
)

type goldenResult struct {
	HitRatio    float64
	AllocWrites int64
	Admissions  int64 // VariantC: sieve allocations; VariantD: epoch moves
	Epochs      int64
	// RAM-tier dimension (zero when the tier is off, keeping the original
	// rows bit-identical to their pre-tier values).
	TierHits       int64
	TierPromotions int64
}

func runGoldenWorkload(t *testing.T, variant Variant, shards int) goldenResult {
	return runGoldenWorkloadPolicy(t, variant, shards, "")
}

func runGoldenWorkloadPolicy(t *testing.T, variant Variant, shards int, policy string) goldenResult {
	return runGoldenWorkloadTier(t, variant, shards, policy, 0)
}

func runGoldenWorkloadTier(t *testing.T, variant Variant, shards int, policy string, tierBytes int64) goldenResult {
	t.Helper()
	be := store.NewMem()
	be.AddVolume(0, 0, (goldenSpan+4)*block.Size)

	now := time.Unix(1700000000, 0)
	opts := Options{
		CacheBytes:   512 * block.Size,
		Shards:       shards,
		Policy:       policy,
		Variant:      variant,
		RAMTierBytes: tierBytes,
		Now:          func() time.Time { return now },
	}
	switch variant {
	case VariantC:
		// Smaller table and thresholds than the paper's 24-hour tuning so
		// a 30k-op run exercises promotion, admission, and pruning.
		opts.SieveC = sieve.CConfig{
			IMCTSize: 1 << 12, T1: 3, T2: 2,
			Window: 2 * time.Minute, Subwindows: 4,
		}
	case VariantD:
		// 10 ms per op and 1-minute epochs: a rotation every 6000 ops,
		// five across the run, all triggered inline by the op path.
		opts.Epoch = time.Minute
		opts.DThreshold = 4
		opts.SpillDir = t.TempDir()
	}
	st, err := Open(be, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	r := rand.New(rand.NewSource(goldenSeed))
	zipf := rand.NewZipf(r, 1.2, 1, goldenSpan-1)
	wbuf := bytes.Repeat([]byte{0xC3}, 4*block.Size)
	rbuf := make([]byte, 4*block.Size)
	for i := 0; i < goldenOps; i++ {
		now = now.Add(10 * time.Millisecond)
		blk := zipf.Uint64()
		nblk := 1 + r.Intn(4)
		off := blk * block.Size
		if r.Intn(10) < 7 {
			if err := st.ReadAt(0, 0, rbuf[:nblk*block.Size], off); err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
		} else {
			if err := st.WriteAt(0, 0, wbuf[:nblk*block.Size], off); err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
		}
	}

	s := st.Stats()
	res := goldenResult{
		HitRatio:       s.HitRatio(),
		AllocWrites:    s.AllocWrites,
		Epochs:         s.Epochs,
		TierHits:       s.TierHits,
		TierPromotions: s.TierPromotions,
	}
	if variant == VariantD {
		res.Admissions = s.EpochMoves
	} else {
		res.Admissions = st.SieveStats().Allocations
	}
	return res
}

// withinGolden checks got against want with ±1% relative tolerance.
func withinGolden(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= 0.01*math.Abs(want)
}

func TestGoldenTrace(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant Variant
		shards  int
		policy  string
		want    goldenResult
	}{
		// Golden values recorded from the run that introduced this suite.
		// VariantC's admissions shift slightly with sharding (per-shard
		// IMCTs alias differently and eviction is shard-local); VariantD
		// admits only at epoch boundaries from a global log, so its
		// numbers are shard-count-invariant.
		//
		// The LRU rows predate the Policy seam and must stay bit-identical
		// through it; the SIEVE rows were recorded when the seam landed.
		// TestGoldenPolicyParity separately pins SIEVE's hit ratio to
		// within one point of LRU's.
		{"SieveStoreC/Shards1", VariantC, 1, "",
			goldenResult{HitRatio: 0.857907, AllocWrites: 2095, Admissions: 2095, Epochs: 0}},
		{"SieveStoreC/Shards8", VariantC, 8, "",
			goldenResult{HitRatio: 0.857080, AllocWrites: 2123, Admissions: 2123, Epochs: 0}},
		{"SieveStoreD/Shards1", VariantD, 1, "",
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5}},
		{"SieveStoreD/Shards8", VariantD, 8, "",
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5}},
		// SIEVE edges out LRU on this workload (0.8671 vs 0.8579 at one
		// shard): fewer admissions stick because unvisited one-hit blocks
		// are swept quickly, so the survivors are hotter. VariantD's
		// numbers are policy-invariant — the epoch swap installs the same
		// selected set regardless of the in-epoch replacement engine.
		{"SieveStoreC/SIEVE/Shards1", VariantC, 1, "sieve",
			goldenResult{HitRatio: 0.867063, AllocWrites: 1873, Admissions: 1873, Epochs: 0}},
		{"SieveStoreC/SIEVE/Shards8", VariantC, 8, "sieve",
			goldenResult{HitRatio: 0.866155, AllocWrites: 1903, Admissions: 1903, Epochs: 0}},
		{"SieveStoreD/SIEVE/Shards1", VariantD, 1, "sieve",
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5}},
		{"SieveStoreD/SIEVE/Shards8", VariantD, 8, "sieve",
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runGoldenWorkloadPolicy(t, tc.variant, tc.shards, tc.policy)
			t.Logf("golden %s: %s", tc.name, formatGolden(got))
			if !withinGolden(got.HitRatio, tc.want.HitRatio) {
				t.Errorf("hit ratio = %.6f, want %.6f ±1%%", got.HitRatio, tc.want.HitRatio)
			}
			if !withinGolden(float64(got.AllocWrites), float64(tc.want.AllocWrites)) {
				t.Errorf("alloc writes = %d, want %d ±1%%", got.AllocWrites, tc.want.AllocWrites)
			}
			if !withinGolden(float64(got.Admissions), float64(tc.want.Admissions)) {
				t.Errorf("admissions = %d, want %d ±1%%", got.Admissions, tc.want.Admissions)
			}
			if got.Epochs != tc.want.Epochs {
				t.Errorf("epochs = %d, want exactly %d", got.Epochs, tc.want.Epochs)
			}
		})
	}
}

// TestGoldenTierTrace is the RAM-tier edition of the golden suite: the
// same seeded Zipf workload with a tier at 5% and 10% of the SSD cache
// (25 and 51 blocks of the 512), pinning the tiered hit ratio, the
// allocation writes, and the promotion count. The tier changes SSD
// recency (tier-served hits never touch the shard policy), so these rows
// are pinned separately; the tierless rows above must stay bit-identical.
func TestGoldenTierTrace(t *testing.T) {
	const (
		tier5  = 25 * block.Size // 5% of the 512-block SSD tier
		tier10 = 51 * block.Size // 10%
	)
	for _, tc := range []struct {
		name      string
		variant   Variant
		tierBytes int64
		want      goldenResult
	}{
		// Golden values recorded from the run that introduced the tier. At
		// 5% VariantC's aggregate numbers match the tierless row exactly —
		// the tier only holds blocks hot enough to survive in the SSD tier
		// without recency help; at 10% the recency effect shows (slightly
		// more alloc writes, slightly lower ratio). VariantD's ratio is
		// tier-invariant: its resident set is chosen per epoch, not by
		// in-epoch recency.
		{"SieveStoreC/Tier5", VariantC, tier5,
			goldenResult{HitRatio: 0.857080, AllocWrites: 2123, Admissions: 2123, Epochs: 0, TierHits: 17353, TierPromotions: 13568}},
		{"SieveStoreC/Tier10", VariantC, tier10,
			goldenResult{HitRatio: 0.856453, AllocWrites: 2144, Admissions: 2144, Epochs: 0, TierHits: 20016, TierPromotions: 12240}},
		{"SieveStoreD/Tier5", VariantD, tier5,
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5, TierHits: 13670, TierPromotions: 10982}},
		{"SieveStoreD/Tier10", VariantD, tier10,
			goldenResult{HitRatio: 0.685907, AllocWrites: 0, Admissions: 660, Epochs: 5, TierHits: 15909, TierPromotions: 9872}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := runGoldenWorkloadTier(t, tc.variant, 8, "", tc.tierBytes)
			t.Logf("golden %s: %s", tc.name, formatGolden(got))
			if !withinGolden(got.HitRatio, tc.want.HitRatio) {
				t.Errorf("hit ratio = %.6f, want %.6f ±1%%", got.HitRatio, tc.want.HitRatio)
			}
			if !withinGolden(float64(got.AllocWrites), float64(tc.want.AllocWrites)) {
				t.Errorf("alloc writes = %d, want %d ±1%%", got.AllocWrites, tc.want.AllocWrites)
			}
			if !withinGolden(float64(got.TierHits), float64(tc.want.TierHits)) {
				t.Errorf("tier hits = %d, want %d ±1%%", got.TierHits, tc.want.TierHits)
			}
			if !withinGolden(float64(got.TierPromotions), float64(tc.want.TierPromotions)) {
				t.Errorf("tier promotions = %d, want %d ±1%%", got.TierPromotions, tc.want.TierPromotions)
			}
			if got.Epochs != tc.want.Epochs {
				t.Errorf("epochs = %d, want exactly %d", got.Epochs, tc.want.Epochs)
			}
		})
	}
}

// TestGoldenPolicyParity pins the headline claim for the Policy seam:
// SIEVE must match LRU's hit ratio within one point (absolute) on the
// golden Zipf workload, at one shard and at eight. SIEVE's hit path is
// the cheap one (a visited bit instead of list surgery under the shard
// lock; see BenchmarkHitPathParallel), so parity here means the cheaper
// engine gives up nothing the paper's configuration cares about.
func TestGoldenPolicyParity(t *testing.T) {
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("Shards%d", shards), func(t *testing.T) {
			lru := runGoldenWorkloadPolicy(t, VariantC, shards, "lru")
			sv := runGoldenWorkloadPolicy(t, VariantC, shards, "sieve")
			t.Logf("lru=%s sieve=%s", formatGolden(lru), formatGolden(sv))
			if diff := math.Abs(sv.HitRatio - lru.HitRatio); diff > 0.01 {
				t.Errorf("SIEVE hit ratio %.6f vs LRU %.6f: |Δ| = %.4f > 0.01",
					sv.HitRatio, lru.HitRatio, diff)
			}
		})
	}
}

// TestGoldenDeterminism double-runs one configuration and requires exact
// equality — if this fails, the workload itself is nondeterministic and
// the golden values above are meaningless.
func TestGoldenDeterminism(t *testing.T) {
	a := runGoldenWorkload(t, VariantD, 8)
	b := runGoldenWorkload(t, VariantD, 8)
	if a != b {
		t.Fatalf("two identical runs diverged:\n  %+v\n  %+v", a, b)
	}
}

func formatGolden(g goldenResult) string {
	return fmt.Sprintf("{HitRatio: %.6f, AllocWrites: %d, Admissions: %d, Epochs: %d, TierHits: %d, TierPromotions: %d}",
		g.HitRatio, g.AllocWrites, g.Admissions, g.Epochs, g.TierHits, g.TierPromotions)
}
