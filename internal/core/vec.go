package core

import "sync"

// IOVec is one extent of a scatter/gather batch handed to ReadVec or
// WriteVec: len(P) bytes of volume (Server, Volume) at byte offset Off.
type IOVec struct {
	Server, Volume int
	P              []byte
	Off            uint64
}

// ReadVec serves the extents concurrently with bounded parallelism, each
// with full ReadAt semantics (sieve admission, coalescing, degraded-mode
// bypass). After the first failure no new extents are started; the first
// error is returned and the data of extents that failed or never ran is
// undefined.
func (s *Store) ReadVec(vecs []IOVec) error { return s.eachVec(vecs, s.ReadAt) }

// WriteVec applies the extents concurrently with bounded parallelism,
// each with full WriteAt semantics. After the first failure no new
// extents are started; extents already in flight still complete, so a
// partial failure leaves a prefix-undefined mix of applied and
// unapplied extents — like independent concurrent WriteAt calls would.
func (s *Store) WriteVec(vecs []IOVec) error { return s.eachVec(vecs, s.WriteAt) }

// eachVec fans the extents out over at most transitionWorkers goroutines.
// A single-extent batch runs inline with no goroutine.
func (s *Store) eachVec(vecs []IOVec, op func(server, volume int, p []byte, off uint64) error) error {
	switch len(vecs) {
	case 0:
		return nil
	case 1:
		v := vecs[0]
		return op(v.Server, v.Volume, v.P, v.Off)
	}
	workers := transitionWorkers
	if workers > len(vecs) {
		workers = len(vecs)
	}
	var (
		mu    sync.Mutex
		next  int
		first error
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if first != nil || next >= len(vecs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				v := vecs[i]
				if err := op(v.Server, v.Volume, v.P, v.Off); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
