package core_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/sieve"
	"repro/internal/store"
)

// Example demonstrates the basic SieveStore flow: writes go through to the
// backend; a block that keeps missing is eventually admitted by the sieve
// and served from the cache.
func Example() {
	backend := store.NewMem()
	backend.AddVolume(0, 0, 1<<20)

	st, err := core.Open(backend, core.Options{
		CacheBytes: 64 * 512,
		Variant:    core.VariantC,
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 10, T1: 1, T2: 1,
			Window: time.Hour, Subwindows: 4,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			log.Fatal(err)
		}
	}
	s := st.Stats()
	fmt.Printf("cached=%v hits=%d alloc-writes=%d\n",
		st.Contains(0, 0, 0), s.Hits(), s.AllocWrites)
	// Output: cached=true hits=2 alloc-writes=1
}

// ExampleStore_RotateEpoch shows the discrete SieveStore-D flow: accesses
// are logged during the epoch and popular blocks are batch-allocated at the
// boundary.
func ExampleStore_RotateEpoch() {
	backend := store.NewMem()
	backend.AddVolume(0, 0, 1<<20)
	st, err := core.Open(backend, core.Options{
		CacheBytes: 64 * 512,
		Variant:    core.VariantD,
		DThreshold: 3,
		Epoch:      24 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, 512)
	for i := 0; i < 5; i++ {
		st.ReadAt(0, 0, buf, 0) // popular block: 5 accesses this epoch
	}
	st.ReadAt(0, 0, buf, 4096) // one-shot block

	fmt.Printf("before rotation: cached=%d\n", st.Stats().CachedBlocks)
	if err := st.RotateEpoch(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after rotation: cached=%d (threshold 3 admitted only the popular block)\n",
		st.Stats().CachedBlocks)
	// Output:
	// before rotation: cached=0
	// after rotation: cached=1 (threshold 3 admitted only the popular block)
}
