package core

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
)

// openTierC returns a VariantC store with an 8-block RAM tier above a
// 64-block SSD cache (quickSieve admits on the 3rd miss; the default
// promotion filter promotes on the 2nd SSD-tier hit).
func openTierC(t *testing.T, clk *fakeClock) *Store {
	t.Helper()
	s, err := Open(testBackend(), Options{
		CacheBytes:   64 * block.Size,
		RAMTierBytes: 8 * block.Size,
		SieveC:       quickSieve(),
		Now:          clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestTierOptionsValidation(t *testing.T) {
	bad := []Options{
		{RAMTierBytes: -block.Size},
		{RAMTierBytes: 100},                                 // not block-aligned
		{RAMTierBytes: block.Size, Shards: 4},               // below one block per shard
		{RAMTierBytes: 8 * block.Size, TierPromoteHits: -1}, // negative need
		{RAMTierBytes: 8 * block.Size, TierMinBytes: 16 * block.Size, TierMaxBytes: 4 * block.Size},
		{RAMTierBytes: 64 * block.Size, TierMaxBytes: 8 * block.Size}, // initial size above max
		{TierAutotune: true}, // autotune without a tier
		{RAMTierBytes: 8 * block.Size, TierAutotune: true}, // autotune without VariantD
	}
	for i, o := range bad {
		o.CacheBytes = 64 * block.Size
		if _, err := Open(testBackend(), o); err == nil {
			t.Errorf("case %d: Open accepted %+v", i, o)
		}
	}
	// RAMTierBytes larger than the SSD cache is pointless but legal only
	// if max bounds allow; with defaults TierMaxBytes caps at CacheBytes,
	// so an oversized tier is rejected.
	if _, err := Open(testBackend(), Options{
		CacheBytes: 8 * block.Size, SieveC: quickSieve(), RAMTierBytes: 16 * block.Size,
	}); err == nil {
		t.Error("tier larger than the SSD cache accepted under default bounds")
	}
}

// TestTierPromotionAndServes drives the full promotion pipeline: sieve
// admission into the SSD tier, two SSD-tier read hits through the
// promotion filter, then RAM-tier service with correct data and the
// tier's counters folded into Stats.
func TestTierPromotionAndServes(t *testing.T) {
	clk := newFakeClock()
	s := openTierC(t, clk)
	seed := bytes.Repeat([]byte{0xC4}, block.Size)
	if err := s.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	// Two SSD hits arm and fire the promotion filter (need = 2).
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	ts, ok := s.TierStats()
	if !ok {
		t.Fatal("TierStats reported no tier")
	}
	if ts.Promotions != 1 || ts.CachedBlocks != 1 {
		t.Fatalf("after 2 SSD hits: %+v", ts)
	}
	// The next read is a RAM-tier hit: correct data, tier counter moves,
	// and the read still counts as a cache hit in the folded Stats.
	pre := s.Stats()
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, seed) {
		t.Fatal("tier served wrong data")
	}
	post := s.Stats()
	if post.TierHits != pre.TierHits+1 {
		t.Fatalf("TierHits %d → %d, want +1", pre.TierHits, post.TierHits)
	}
	if post.Reads != pre.Reads+1 || post.ReadHits != pre.ReadHits+1 {
		t.Fatalf("tier hit not folded into Reads/ReadHits: %+v → %+v", pre, post)
	}
	if post.CacheBytesServed != pre.CacheBytesServed+block.Size {
		t.Fatal("tier hit not folded into CacheBytesServed")
	}
	// CachedBlocks stays SSD-only: the tier holds a copy, not new residency.
	if post.CachedBlocks != pre.CachedBlocks {
		t.Fatalf("CachedBlocks moved on a tier promotion: %d → %d", pre.CachedBlocks, post.CachedBlocks)
	}
	if post.TierCachedBlocks != 1 || post.TierCapacityBlocks != 8 {
		t.Fatalf("tier gauges: %+v", post)
	}
}

// TestTierWriteInvalidation pins coherence: a write to a RAM-tier-resident
// block drops the tier copy, so reads never see stale data.
func TestTierWriteInvalidation(t *testing.T) {
	clk := newFakeClock()
	s := openTierC(t, clk)
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	for i := 0; i < 3; i++ { // promote + one tier hit
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	ts, _ := s.TierStats()
	if ts.CachedBlocks != 1 {
		t.Fatalf("block not tier-resident: %+v", ts)
	}
	newData := bytes.Repeat([]byte{0x77}, block.Size)
	if err := s.WriteAt(0, 0, newData, 0); err != nil {
		t.Fatal(err)
	}
	ts, _ = s.TierStats()
	if ts.CachedBlocks != 0 || ts.Invalidations != 1 {
		t.Fatalf("write did not invalidate the tier copy: %+v", ts)
	}
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, newData) {
		t.Fatal("read after write returned stale data")
	}
	if st := s.Stats(); st.TierInvalidations != 1 {
		t.Fatalf("TierInvalidations not folded: %+v", st)
	}
}

// TestTierInvalidateAPI extends coherence to the explicit Invalidate path.
func TestTierInvalidateAPI(t *testing.T) {
	clk := newFakeClock()
	s := openTierC(t, clk)
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if ts, _ := s.TierStats(); ts.CachedBlocks != 1 {
		t.Fatalf("block not tier-resident: %+v", ts)
	}
	if _, err := s.Invalidate(0, 0, 0, block.Size); err != nil {
		t.Fatal(err)
	}
	if ts, _ := s.TierStats(); ts.CachedBlocks != 0 {
		t.Fatalf("Invalidate left a tier copy: %+v", ts)
	}
}

// TestTierReadPinnedZeroCopy: once promoted, ReadPinned serves the block
// as a RAM-tier view — no shard frame pin — and the PinnedFrames gauge
// tracks the lease until Release.
func TestTierReadPinnedZeroCopy(t *testing.T) {
	clk := newFakeClock()
	s := openTierC(t, clk)
	seed := bytes.Repeat([]byte{0x3E}, block.Size)
	if err := s.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	admit(t, s, clk, 0)
	admit(t, s, clk, block.Size) // second block: SSD-resident, not promoted
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ { // promote block 0 only
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	pre, _ := s.TierStats()
	pr := s.ReadPinned(0, 0, 2*block.Size, 0)
	if pr == nil || pr.Blocks() != 2 {
		t.Fatalf("ReadPinned = %v, want 2-block run", pr)
	}
	if !bytes.Equal(pr.Views()[0], seed) {
		t.Fatal("tier view has wrong data")
	}
	ts, _ := s.TierStats()
	if ts.Pinned != pre.Pinned+1 {
		t.Fatalf("tier Pinned %d → %d, want +1 (block 0 from RAM)", pre.Pinned, ts.Pinned)
	}
	st := s.Stats()
	if st.PinnedFrames != 2 { // one tier frame + one shard frame
		t.Fatalf("PinnedFrames = %d while 2 blocks pinned", st.PinnedFrames)
	}
	// A write to the pinned tier block dooms the tier frame; the view must
	// survive until Release.
	if err := s.WriteAt(0, 0, bytes.Repeat([]byte{9}, block.Size), 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pr.Views()[0], seed) {
		t.Fatal("pinned tier view mutated by a concurrent write")
	}
	pr.Release()
	if st := s.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after Release", st.PinnedFrames)
	}
}

// TestTierSnapshotLoadClears: LoadSnapshot replaces the SSD tier
// wholesale, so the RAM tier must drop all its (now unverifiable) copies.
func TestTierSnapshotLoadClears(t *testing.T) {
	clk := newFakeClock()
	s := openTierC(t, clk)
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if ts, _ := s.TierStats(); ts.CachedBlocks != 1 {
		t.Fatalf("block not tier-resident: %+v", ts)
	}
	var snap bytes.Buffer
	if err := s.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := s.LoadSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if ts, _ := s.TierStats(); ts.CachedBlocks != 0 {
		t.Fatalf("LoadSnapshot left tier copies: %+v", ts)
	}
	// The store still serves correct data afterwards.
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
}

// TestTierDisabledStatsSilent: with RAMTierBytes = 0 the tier surface is
// inert — no TierStats, no advice, no tier fields moving in Stats.
func TestTierDisabledStatsSilent(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	if _, ok := s.TierStats(); ok {
		t.Fatal("TierStats reported a tier on a tierless store")
	}
	if a := s.TierAdvice(); a != nil {
		t.Fatal("TierAdvice on a tierless store")
	}
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	for i := 0; i < 4; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.TierHits != 0 || st.TierPromotions != 0 || st.TierCapacityBlocks != 0 {
		t.Fatalf("tier counters moved on a tierless store: %+v", st)
	}
}

// TestTierAdviceVariantC: the continuous variant serves advisory analysis
// from the sieve's precisely-tracked miss counts on demand.
func TestTierAdviceVariantC(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes:   64 * block.Size,
		RAMTierBytes: 8 * block.Size,
		// T2 = 2 so a promoted block stays precisely tracked in the MCT
		// for one more miss — the advisor's count source.
		SieveC: sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 2, Window: time.Hour, Subwindows: 4},
		Now:    clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	buf := make([]byte, block.Size)
	// Two misses pass T1=2 and promote the block into the MCT, where its
	// precise count (1) sits below T2=2 — tracked but not yet admitted.
	for i := 0; i < 2; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	a := s.TierAdvice()
	if a == nil {
		t.Fatal("no VariantC advice despite tracked MCT counts")
	}
	if a.TrackedKeys == 0 || len(a.Candidates) == 0 {
		t.Fatalf("empty advice: %+v", a)
	}
	if a.CurrentBytes != 8*block.Size {
		t.Fatalf("CurrentBytes = %d, want %d", a.CurrentBytes, 8*block.Size)
	}
}

// TestTierAutotuneEpochBoundary: VariantD + TierAutotune resizes the tier
// only when an epoch commits, to the advisor's clamped recommendation.
func TestTierAutotuneEpochBoundary(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes:   64 * block.Size,
		Variant:      VariantD,
		DThreshold:   3,
		Epoch:        time.Hour,
		Now:          clk.Now,
		SpillDir:     t.TempDir(),
		RAMTierBytes: 8 * block.Size,
		TierAutotune: true,
		TierMinBytes: 2 * block.Size,
		TierMaxBytes: 16 * block.Size,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, block.Size)
	// A flat, sparse access pattern: the advisor will find RAM buys
	// nothing and recommend the minimum.
	for i := uint64(0); i < 8; i++ {
		if err := s.ReadAt(0, 0, buf, i*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-epoch: no advice published, capacity unchanged.
	if a := s.TierAdvice(); a != nil {
		t.Fatalf("VariantD advice before any epoch boundary: %+v", a)
	}
	if ts, _ := s.TierStats(); ts.CapacityBlocks != 8 || ts.Resizes != 0 {
		t.Fatalf("tier resized mid-epoch: %+v", ts)
	}
	// Cross the boundary; the next op commits the rotation.
	clk.Advance(61 * time.Minute)
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	a := s.TierAdvice()
	if a == nil {
		t.Fatal("no advice after epoch boundary")
	}
	if a.EpochSeconds != 3600 {
		t.Fatalf("EpochSeconds = %v", a.EpochSeconds)
	}
	ts, _ := s.TierStats()
	// Clamped into [2,16] blocks and actually applied (flat counts → min).
	if ts.CapacityBlocks != 2 || ts.Resizes != 1 {
		t.Fatalf("autotune result: %+v (advice %+v)", ts, a)
	}
	// Stats surfaces the resize.
	if st := s.Stats(); st.TierResizes != 1 {
		t.Fatalf("TierResizes not folded: %+v", st)
	}
}

// TestFlushWindowInjectedSleep (satellite: determinism audit): the
// group-commit window waits through Options.Sleep, so tests with an
// injected sleep observe the exact window with zero real-time delay.
func TestFlushWindowInjectedSleep(t *testing.T) {
	clk := newFakeClock()
	var slept atomic.Int64
	s, err := Open(testBackend(), Options{
		CacheBytes:        64 * block.Size,
		SieveC:            quickSieve(),
		WriteBack:         true,
		GroupCommitWindow: 25 * time.Millisecond,
		Now:               clk.Now,
		Sleep: func(d time.Duration) {
			slept.Add(int64(d))
			clk.Advance(d) // time passes only on the injected clock
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	admit(t, s, clk, 0)
	if err := s.WriteAt(0, 0, bytes.Repeat([]byte{0xF0}, block.Size), 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(slept.Load()); got != 25*time.Millisecond {
		t.Fatalf("injected sleep saw %v, want exactly the 25ms window", got)
	}
	// The real clock barely moved: the wait went through the seam.
	if wall := time.Since(start); wall > 5*time.Second {
		t.Fatalf("Flush blocked on real time for %v", wall)
	}
	if st := s.Stats(); st.DirtyBlocks != 0 || st.GroupCommits != 1 {
		t.Fatalf("flush result: %+v", st)
	}
}

// TestCachedBlocksNoPinDoubleCount (satellite: stats audit): evicting a
// pinned block parks its frame until Release; CachedBlocks (= tag
// residency) must not count the parked frame, and PinnedFrames reports it.
func TestCachedBlocksNoPinDoubleCount(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes: 2 * block.Size, // tiny: two admissions evict the first
		SieveC:     quickSieve(),
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	admit(t, s, clk, 0)
	pr := s.ReadPinned(0, 0, block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned missed an admitted block")
	}
	if st := s.Stats(); st.CachedBlocks != 1 || st.PinnedFrames != 1 {
		t.Fatalf("pinned resident block: %+v", st)
	}
	// Evict block 0 by admitting two more into the 2-block cache. Its
	// frame is pin-parked, not freed.
	admit(t, s, clk, block.Size)
	admit(t, s, clk, 2*block.Size)
	st := s.Stats()
	if s.Contains(0, 0, 0) {
		t.Fatal("pinned victim still tag-resident")
	}
	if st.CachedBlocks != 2 {
		t.Fatalf("CachedBlocks = %d counts a pin-parked frame", st.CachedBlocks)
	}
	if st.PinnedFrames != 1 {
		t.Fatalf("PinnedFrames = %d with one parked pin", st.PinnedFrames)
	}
	pr.Release()
	if st := s.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after Release", st.PinnedFrames)
	}
}

// TestReadPinnedAcrossDegradedFlip (satellite: pins × degraded bypass):
// views pinned before the store degrades stay valid and release cleanly;
// new ReadPinned calls bypass while degraded.
func TestReadPinnedAcrossDegradedFlip(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	s := openFaultyCache(t, clk, &failing)
	seed := bytes.Repeat([]byte{0xDA}, block.Size)
	if err := s.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	admit(t, s, clk, 0)
	pr := s.ReadPinned(0, 0, block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned missed before the flip")
	}
	// Trip degraded mode: three consecutive frame-install faults.
	failing.Store(true)
	admitAttempts(t, s, 3, 100)
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	// The pre-flip pin still reads the sealed frame.
	if !bytes.Equal(pr.Views()[0], seed) {
		t.Fatal("pinned view corrupted by the degraded flip")
	}
	// New pinned reads refuse while degraded (the ReadAt fallback owns the
	// bypass metering).
	if p2 := s.ReadPinned(0, 0, block.Size, 0); p2 != nil {
		t.Fatal("ReadPinned served while degraded")
	}
	pr.Release()
	if st := s.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after release", st.PinnedFrames)
	}
}

// TestReadPinnedTierAcrossDegradedFlip is the RAM-tier edition: a pinned
// tier view outlives the flip too.
func TestReadPinnedTierAcrossDegradedFlip(t *testing.T) {
	clk := newFakeClock()
	var failing atomic.Bool
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes:   64 * block.Size,
		RAMTierBytes: 8 * block.Size,
		SieveC:       quickSieve(),
		Now:          clk.Now,
		FrameFaultInjector: func(block.Key) error {
			if failing.Load() {
				return errCacheDev
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	seed := bytes.Repeat([]byte{0xBE}, block.Size)
	if err := s.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	admit(t, s, clk, 0)
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ { // promote into the RAM tier
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	pr := s.ReadPinned(0, 0, block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned missed the tier-resident block")
	}
	if ts, _ := s.TierStats(); ts.PinnedFrames != 1 {
		t.Fatalf("tier PinnedFrames = %d", ts.PinnedFrames)
	}
	failing.Store(true)
	admitAttempts(t, s, 3, 100)
	if !s.Degraded() {
		t.Fatal("store not degraded")
	}
	if !bytes.Equal(pr.Views()[0], seed) {
		t.Fatal("pinned tier view corrupted by the degraded flip")
	}
	pr.Release()
	if st := s.Stats(); st.PinnedFrames != 0 {
		t.Fatalf("PinnedFrames = %d after release", st.PinnedFrames)
	}
}
