package core

import (
	"time"

	"repro/internal/block"
	"repro/internal/tier"
)

// PinnedRead is a zero-copy view of cache-resident blocks returned by
// Store.ReadPinned. The views alias the cache's own frame buffers — SSD
// shard frames or RAM-tier frames: they are immutable (concurrent writes
// to a pinned block go copy-on-write into a fresh frame, and tier frames
// are invalidated, never mutated) and stay valid until Release, which
// must be called exactly once — typically after the bytes have been
// written to a wire.
type PinnedRead struct {
	views  [][]byte
	shards []*shard // parallel to views; nil entries are RAM-tier views
	// tierPins parallels views when any RAM-tier frame is pinned (nil
	// otherwise, so the tierless path allocates exactly as before);
	// entries where shards[i] != nil are zero.
	tierPins []tier.Pin
}

// Views returns the pinned block frames in request order. Callers must
// not mutate or retain them past Release.
func (pr *PinnedRead) Views() [][]byte { return pr.views }

// Blocks returns the number of pinned blocks.
func (pr *PinnedRead) Blocks() int { return len(pr.views) }

// Bytes returns the total pinned payload size.
func (pr *PinnedRead) Bytes() int { return len(pr.views) * block.Size }

// Release drops the pins. Frames evicted or replaced while pinned are
// recycled here, on the last unpin.
func (pr *PinnedRead) Release() {
	for i := 0; i < len(pr.views); {
		sh := pr.shards[i]
		if sh == nil {
			pr.tierPins[i].Release()
			i++
			continue
		}
		j := i
		sh.mu.Lock()
		for j < len(pr.views) && pr.shards[j] == sh {
			sh.unpinLocked(pr.views[j])
			j++
		}
		sh.mu.Unlock()
		i = j
	}
	pr.views = nil
	pr.shards = nil
	pr.tierPins = nil
}

// appendTier records a RAM-tier view, growing tierPins lazily so reads
// that never touch the tier keep the two-slice layout.
func (pr *PinnedRead) appendTier(view []byte, p tier.Pin) {
	if pr.tierPins == nil {
		pr.tierPins = make([]tier.Pin, len(pr.views))
	}
	pr.views = append(pr.views, view)
	pr.shards = append(pr.shards, nil)
	pr.tierPins = append(pr.tierPins, p)
}

// ReadPinned serves the longest all-hit prefix of the request
// [off, off+n) straight from the cache as pinned zero-copy frame views,
// or nil when nothing is pinnable (bad geometry, degraded or closed
// store, or a miss on the very first block) — the caller then falls back
// to ReadAt for the whole request. RAM-tier-resident blocks are pinned
// under the tier's read lock only; the rest pin SSD shard frames under
// their shard mutex. On a partial prefix the caller writes the views
// first and issues a ReadAt for the remaining tail; hit/byte accounting
// and SieveStore-D access logging for the pinned blocks happen here, so
// the two halves together count exactly like one ReadAt. The whole-call
// latency histogram is observed only when the prefix covers the full
// request (a partial prefix's tail ReadAt records the op), keeping
// read-op counts at one per request.
func (s *Store) ReadPinned(server, volume, n int, off uint64) *PinnedRead {
	if n <= 0 || n%block.Size != 0 || off%block.Size != 0 {
		return nil
	}
	if end := off + uint64(n); end < off || (end-1)/block.Size > block.MaxBlockNumber {
		return nil
	}
	if server < 0 || server >= block.MaxServers || volume < 0 || volume >= block.MaxVolumes {
		return nil
	}
	if s.closed.Load() || s.degraded.Load() {
		// Degraded mode bypasses the cache (and meters recovery probes);
		// the ReadAt fallback owns that logic.
		return nil
	}
	var start time.Duration
	if s.opts.TrackLatency {
		start = time.Since(s.monoBase)
	}
	s.maybeRotate()
	if s.closed.Load() {
		return nil
	}
	nBlocks := n / block.Size
	first := off / block.Size
	pr := &PinnedRead{}
	var locked *shard
	for i := 0; i < nBlocks; i++ {
		key := block.MakeKey(server, volume, first+uint64(i))
		if s.tier != nil {
			if view, p, ok := s.tier.Pin(key); ok {
				// Tier hit accounting lives in the tier's atomics (folded
				// into Stats); no shard is touched. Holding the previous
				// run's shard lock here is fine — the tier lock is a leaf
				// below every shard mutex.
				pr.appendTier(view, p)
				continue
			}
		}
		sh := s.shardOf(key)
		if locked != sh {
			if locked != nil {
				locked.mu.Unlock()
			}
			sh.mu.Lock()
			locked = sh
		}
		if !sh.tags.Touch(key) {
			break
		}
		f := sh.frames[key]
		sh.pinLocked(f)
		sh.stats.Reads++
		sh.stats.ReadHits++
		sh.stats.PinnedReads++
		sh.stats.CacheBytesServed += block.Size
		sh.promoteOnHitLocked(key)
		pr.views = append(pr.views, f)
		pr.shards = append(pr.shards, sh)
		if pr.tierPins != nil {
			pr.tierPins = append(pr.tierPins, tier.Pin{})
		}
	}
	if locked != nil {
		locked.mu.Unlock()
	}
	if len(pr.views) == 0 {
		return nil
	}
	// Log exactly the blocks served here; the caller's tail ReadAt logs
	// (and counts) the rest itself. Tenant accounting follows the same
	// split: every pinned block is an access and a hit for its tenant.
	s.logAccess(server, volume, first, len(pr.views))
	s.tenantTick()
	s.tenantAccess(server, volume, int64(len(pr.views)), false)
	s.tenantHits(server, volume, int64(len(pr.views)))
	if s.opts.TrackLatency && len(pr.views) == nBlocks {
		s.histRead.Observe(time.Since(s.monoBase) - start)
	}
	return pr
}
