package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

func openWB(t *testing.T, clk *fakeClock, be Backend) *Store {
	t.Helper()
	s, err := Open(be, Options{
		CacheBytes: 64 * block.Size,
		SieveC:     quickSieve(),
		WriteBack:  true,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestWriteBackDefersBackendWrites(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s := openWB(t, clk, be)
	buf := make([]byte, block.Size)
	// Heat the block so it is cached.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("block not cached")
	}
	backendWritesBefore := s.Stats().BackendWrites
	data := bytes.Repeat([]byte{0x77}, block.Size)
	if err := s.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BackendWrites != backendWritesBefore {
		t.Error("write-back hit still wrote through")
	}
	if st.DirtyBlocks != 1 || st.WriteHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The backend is stale; the store serves the new data.
	stale := make([]byte, block.Size)
	if err := be.ReadAt(0, 0, stale, 0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(stale, data) {
		t.Error("backend already has the data; write-back not deferred")
	}
	got := make([]byte, block.Size)
	if err := s.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("store serves stale data")
	}
	// Flush pushes it down.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := be.ReadAt(0, 0, stale, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stale, data) {
		t.Error("flush did not reach the backend")
	}
	st = s.Stats()
	if st.DirtyBlocks != 0 || st.FlushWrites != 1 {
		t.Errorf("post-flush stats = %+v", st)
	}
}

func TestWriteBackMissesStillWriteThrough(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s := openWB(t, clk, be)
	// An uncached, unadmitted write must reach the backend immediately.
	data := bytes.Repeat([]byte{0x11}, 2*block.Size)
	if err := s.WriteAt(0, 0, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := be.ReadAt(0, 0, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("unadmitted write-back miss lost")
	}
}

func TestWriteBackEvictionFlushes(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s := openWB(t, clk, be) // 64-block cache
	buf := make([]byte, block.Size)
	// Dirty one block via write admission (T1=2,T2=2: admitted on the
	// 4th miss — three write misses then one more).
	data := bytes.Repeat([]byte{0x42}, block.Size)
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		if err := s.WriteAt(0, 0, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, 0) || s.Stats().DirtyBlocks != 1 {
		t.Fatalf("setup: %+v", s.Stats())
	}
	// Now force eviction pressure: heat 70 other blocks.
	for round := 0; round < 4; round++ {
		for i := uint64(1); i <= 70; i++ {
			clk.Advance(time.Millisecond)
			if err := s.ReadAt(0, 0, buf, i*8192); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if s.Contains(0, 0, 0) {
		t.Fatal("dirty block never evicted; test ineffective")
	}
	if st.FlushWrites == 0 {
		t.Error("eviction did not flush the dirty block")
	}
	got := make([]byte, block.Size)
	if err := be.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("evicted dirty data lost")
	}
}

func TestWriteBackInvalidateFlushesFirst(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s := openWB(t, clk, be)
	data := bytes.Repeat([]byte{0x9C}, block.Size)
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		if err := s.WriteAt(0, 0, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if s.Stats().DirtyBlocks != 1 {
		t.Fatalf("setup: %+v", s.Stats())
	}
	if _, err := s.Invalidate(0, 0, 0, block.Size); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, block.Size)
	if err := be.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("invalidate dropped dirty data without flushing")
	}
}

func TestWriteBackCloseFlushes(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes: 64 * block.Size,
		SieveC:     quickSieve(),
		WriteBack:  true,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xD1}, block.Size)
	for i := 0; i < 4; i++ {
		clk.Advance(time.Second)
		if err := s.WriteAt(0, 0, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, block.Size)
	if err := be.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("Close did not flush dirty data")
	}
}

// TestWriteBackModel extends the reference-model property test to
// write-back mode: reads through the store must always match the model even
// though the backend lags, and a final Flush must bring the backend level.
func TestWriteBackModel(t *testing.T) {
	const volBytes = 1 << 17
	rng := rand.New(rand.NewSource(321))
	clk := newFakeClock()
	be := store.NewMem()
	be.AddVolume(0, 0, volBytes)
	s, err := Open(be, Options{
		CacheBytes: 32 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 256, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4},
		WriteBack:  true,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	model := make([]byte, volBytes)
	for i := 0; i < 3000; i++ {
		nBlocks := 1 + rng.Intn(4)
		off := uint64(rng.Intn(volBytes/block.Size-nBlocks+1)) * block.Size
		if rng.Intn(2) == 0 {
			off = uint64(rng.Intn(8)) * block.Size // hot region
		}
		n := nBlocks * block.Size
		clk.Advance(time.Duration(rng.Intn(500)) * time.Millisecond)
		switch rng.Intn(5) {
		case 0, 1:
			data := make([]byte, n)
			rng.Read(data)
			if err := s.WriteAt(0, 0, data, off); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			copy(model[off:off+uint64(n)], data)
		case 2:
			if rng.Intn(10) == 0 {
				if err := s.Flush(); err != nil {
					t.Fatalf("op %d flush: %v", i, err)
				}
			}
			fallthrough
		default:
			got := make([]byte, n)
			if err := s.ReadAt(0, 0, got, off); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			if !bytes.Equal(got, model[off:off+uint64(n)]) {
				t.Fatalf("op %d: read diverged", i)
			}
		}
	}
	// Final flush: the backend must equal the model everywhere.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, volBytes)
	if err := be.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("backend diverged from model after full flush")
	}
	if s.Stats().FlushWrites == 0 {
		t.Error("no flush writes; write-back never engaged")
	}
}
