package core

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

// smallSieve admits a block on its 1st miss (T1=1 promotes it, T2=1
// allocates in the same consultation) — the fastest way for tests to
// exercise the admission path.
func smallSieve() sieve.CConfig {
	return sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4}
}

// gateBackend wraps a Backend and blocks every ReadAt until released,
// counting per-key fetches. It lets tests hold backend I/O "in the air"
// and observe what the store does meanwhile.
type gateBackend struct {
	store.Backend
	mu      sync.Mutex
	fetches map[uint64]int // key offset -> backend read count
	entered chan struct{}  // one token per ReadAt that has started
	release chan struct{}  // closed (or fed) to let reads finish
}

func newGateBackend(inner store.Backend) *gateBackend {
	return &gateBackend{
		Backend: inner,
		fetches: make(map[uint64]int),
		entered: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (g *gateBackend) ReadAt(server, volume int, p []byte, off uint64) error {
	g.mu.Lock()
	g.fetches[off]++
	g.mu.Unlock()
	g.entered <- struct{}{}
	<-g.release
	return g.Backend.ReadAt(server, volume, p, off)
}

// drain discards entered tokens left over from already-released reads, so
// the next token observed really is the next backend read.
func (g *gateBackend) drain() {
	for {
		select {
		case <-g.entered:
		default:
			return
		}
	}
}

func (g *gateBackend) fetchCount(off uint64) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fetches[off]
}

// TestConcurrentMissesOverlap proves the store no longer holds its lock
// across backend I/O: two misses on different keys must both reach the
// backend before either completes. Under the old one-big-lock design the
// second read could not enter the backend until the first returned, and
// this test would time out.
func TestConcurrentMissesOverlap(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	gate := newGateBackend(mem)
	st, err := Open(gate, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, block.Size)
			if err := st.ReadAt(0, 0, buf, uint64(i)*block.Size); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-gate.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("backend reads did not overlap: store lock held across backend I/O")
		}
	}
	close(gate.release)
	wg.Wait()
}

// TestSingleFlightCoalescing asserts the single-flight property: a burst
// of concurrent misses on one key results in exactly one backend fetch,
// with every caller served the fetched bytes.
func TestSingleFlightCoalescing(t *testing.T) {
	const followers = 8
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	want := bytes.Repeat([]byte{0xAB}, block.Size)
	if err := mem.WriteAt(0, 0, want, 0); err != nil {
		t.Fatal(err)
	}
	gate := newGateBackend(mem)
	st, err := Open(gate, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var wg sync.WaitGroup
	readOne := func() {
		defer wg.Done()
		buf := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			t.Error(err)
			return
		}
		if !bytes.Equal(buf, want) {
			t.Error("coalesced read returned wrong data")
		}
	}

	// Leader takes the miss and blocks inside the backend.
	wg.Add(1)
	go readOne()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the backend")
	}
	// Followers miss on the same key while the fetch is in flight; wait
	// until the store has registered every one of them as coalesced.
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go readOne()
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().CoalescedReads < followers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d reads coalesced", st.Stats().CoalescedReads, followers)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	wg.Wait()

	if got := gate.fetchCount(0); got != 1 {
		t.Errorf("backend fetches for the burst = %d, want 1 (single-flight)", got)
	}
	if st.Stats().BackendReads != 1 {
		t.Errorf("BackendReads = %d, want 1", st.Stats().BackendReads)
	}
}

// TestCoalescedReadJoinsWrite checks that a read missing on a key that a
// concurrent write has reserved is served the written bytes once the write
// lands, without a backend fetch of its own.
func TestCoalescedReadJoinsWrite(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	gate := newGateBackend(mem)
	st, err := Open(gate, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Occupy the key with an in-flight miss fetch.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			t.Error(err)
		}
	}()
	<-gate.entered

	// The writer must wait for the fetch to drain (reservation), then the
	// stacked reader is served. Writers never deadlock against fetches.
	data := bytes.Repeat([]byte{0x5C}, block.Size)
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := st.WriteAt(0, 0, data, 0); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let the writer park on the flight
	close(gate.release)
	wg.Wait()

	got := make([]byte, block.Size)
	if err := st.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read after write did not observe the write")
	}
}

// TestInvalidateDuringFetchSuppressesInstall: an Invalidate racing an
// in-flight miss fetch must prevent the (now stale) fetched data from
// being installed into the cache.
func TestInvalidateDuringFetchSuppressesInstall(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	gate := newGateBackend(mem)
	// T1=1,T2=2: the 1st miss warms the sieve, the 2nd would admit — so
	// the racing read below would install if not suppressed.
	st, err := Open(gate, Options{CacheBytes: 64 * block.Size,
		SieveC: sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 2, Window: time.Hour, Subwindows: 4}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, block.Size)
	go func() { <-gate.entered; close(gate.release) }()
	if err := st.ReadAt(0, 0, buf, 0); err != nil { // 1st miss: sieve warms
		t.Fatal(err)
	}

	gate.release = make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 0); err != nil { // 2nd miss: would admit
			t.Error(err)
		}
	}()
	<-gate.entered
	if _, err := st.Invalidate(0, 0, 0, block.Size); err != nil {
		t.Fatal(err)
	}
	close(gate.release)
	wg.Wait()

	if st.Contains(0, 0, 0) {
		t.Error("stale fetch was installed despite racing Invalidate")
	}
}

// TestConcurrentStress hammers one store from many goroutines with
// overlapping reads, writes, invalidates, snapshots and stats. Each worker
// owns a disjoint key range and checks read-your-writes there; shared
// operations (Stats/Invalidate/Flush on worker 0's range) run concurrently.
// Primarily a -race and invariant check.
func TestConcurrentStress(t *testing.T) {
	for _, writeBack := range []bool{false, true} {
		t.Run(fmt.Sprintf("writeback=%v", writeBack), func(t *testing.T) {
			const (
				workers = 8
				ops     = 300
				span    = 64 // blocks per worker
			)
			mem := store.NewMem()
			mem.AddVolume(0, 0, workers*span*block.Size)
			st, err := Open(mem, Options{
				CacheBytes:   128 * block.Size,
				SieveC:       smallSieve(),
				WriteBack:    writeBack,
				TrackLatency: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			var wrote [workers * span]atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					base := uint64(w * span)
					buf := make([]byte, block.Size)
					pattern := func(blk uint64) []byte {
						return bytes.Repeat([]byte{byte(blk), byte(w + 1)}, block.Size/2)
					}
					for i := 0; i < ops; i++ {
						blk := base + uint64((i*7)%span)
						off := blk * block.Size
						switch i % 5 {
						case 0, 1:
							if err := st.WriteAt(0, 0, pattern(blk), off); err != nil {
								t.Error(err)
								return
							}
							wrote[blk].Store(true)
						case 2, 3:
							if err := st.ReadAt(0, 0, buf, off); err != nil {
								t.Error(err)
								return
							}
							if wrote[blk].Load() && !bytes.Equal(buf, pattern(blk)) {
								t.Errorf("worker %d: read-your-writes violated at block %d", w, blk)
								return
							}
						case 4:
							if w == 0 {
								// Shared-range chaos: invalidate and stats.
								if _, err := st.Invalidate(0, 0, off, block.Size); err != nil {
									t.Error(err)
									return
								}
							}
							_ = st.Stats()
						}
					}
				}(w)
			}
			wg.Wait()

			s := st.Stats()
			if s.CachedBlocks > s.CapacityBlocks {
				t.Errorf("occupancy %d exceeds capacity %d", s.CachedBlocks, s.CapacityBlocks)
			}
			if s.Hits() > s.Reads+s.Writes {
				t.Errorf("hits %d exceed accesses %d", s.Hits(), s.Reads+s.Writes)
			}
			if s.ReadLatency.Ops == 0 || s.WriteLatency.Ops == 0 {
				t.Error("TrackLatency recorded no operations")
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}
			if st.Stats().DirtyBlocks != 0 {
				t.Error("dirty blocks survived Flush")
			}
		})
	}
}

// TestConcurrentHitRatioMatchesSequential replays the identical access
// sequence once sequentially and once with concurrent disjoint-range
// workers; per-range stat totals must agree (concurrency must not change
// admission behavior when there is no cross-range interaction).
func TestConcurrentHitRatioMatchesSequential(t *testing.T) {
	const (
		workers = 4
		span    = 128
		ops     = 1000
	)
	run := func(concurrent bool) Stats {
		mem := store.NewMem()
		mem.AddVolume(0, 0, workers*span*block.Size)
		// Per-worker-disjoint keys and a generous cache so eviction order
		// (which legitimately depends on interleaving) cannot differ.
		st, err := Open(mem, Options{CacheBytes: workers * span * block.Size, SieveC: smallSieve()})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			work := func(w int) {
				buf := make([]byte, block.Size)
				base := uint64(w * span)
				for i := 0; i < ops; i++ {
					blk := base + uint64((i*i+3*i)%span)
					if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if concurrent {
				wg.Add(1)
				go func(w int) { defer wg.Done(); work(w) }(w)
			} else {
				work(w)
			}
		}
		wg.Wait()
		return st.Stats()
	}
	seq, conc := run(false), run(true)
	if seq.ReadHits != conc.ReadHits+conc.CoalescedReads || seq.Reads != conc.Reads {
		t.Errorf("sequential hits=%d/%d, concurrent hits=%d(+%d coalesced)/%d",
			seq.ReadHits, seq.Reads, conc.ReadHits, conc.CoalescedReads, conc.Reads)
	}
}
