package core

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Multi-tenant QoS suite (ISSUE: per-tenant quotas, fairness-aware
// sieving, endurance budget). The adversarial scenarios reuse the
// golden-trace harness discipline: injected clock, seeded generators,
// single-threaded drive — so every run takes identical decisions and
// the assertions pin behavior, not luck.

const (
	tnStableSeed = 42 // the golden seed: the stable tenant IS the golden workload
	tnBurst      = 4  // noisy tenant: accesses per block — admits, then never returns
)

// runTenantWorkload drives the stable tenant (server 0, volume 0: the
// golden Zipf mix) for goldenOps operations, optionally interleaved
// 1:1 with a noisy neighbor (server 1, volume 0). The noisy tenant is a
// burst-churner: it reads each block a fixed number of times in a row
// and never again, tuned per variant for maximum damage with zero
// earned reuse. Against VariantC, four accesses: the sieve (T1=3 then
// T2=2) admits on the fourth miss, so the block is installed and
// abandoned in the same breath. Against VariantD, twelve: admission
// happens only at the epoch boundary, so every burst access is a miss
// regardless of length; twelve makes the per-epoch churn footprint
// (6000/12 = 500 blocks) just about fill the 512-block cache while the
// per-block count still outranks the stable tenant's mid-tier blocks in
// the hottest-first epoch selection — the displacement maximum.
// The clock steps so the stable tenant sees the same per-epoch access
// density solo and joint (10 ms per stable op either way).
func runTenantWorkload(t *testing.T, variant Variant, shards int, quotas, noisy bool) ([]tenant.Snapshot, Stats) {
	t.Helper()
	burst := tnBurst
	if variant == VariantD {
		burst = 3 * tnBurst
	}
	be := store.NewMem()
	be.AddVolume(0, 0, (goldenSpan+4)*block.Size)
	be.AddVolume(1, 0, (goldenOps/tnBurst+8)*block.Size)

	now := time.Unix(1700000000, 0)
	opts := Options{
		CacheBytes:             512 * block.Size,
		Shards:                 shards,
		Variant:                variant,
		TenantTracking:         true,
		TenantQuotas:           quotas,
		TenantRepartitionEvery: 30 * time.Second,
		Now:                    func() time.Time { return now },
	}
	switch variant {
	case VariantC:
		opts.SieveC = sieve.CConfig{
			IMCTSize: 1 << 12, T1: 3, T2: 2,
			Window: 2 * time.Minute, Subwindows: 4,
		}
	case VariantD:
		opts.Epoch = time.Minute
		opts.DThreshold = 4
		opts.SpillDir = t.TempDir()
	}
	st, err := Open(be, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	srand := rand.New(rand.NewSource(tnStableSeed))
	zipf := rand.NewZipf(srand, 1.2, 1, goldenSpan-1)
	wbuf := bytes.Repeat([]byte{0xC3}, 4*block.Size)
	rbuf := make([]byte, 4*block.Size)

	nops := goldenOps
	step := 10 * time.Millisecond
	if noisy {
		nops *= 2
		step = 5 * time.Millisecond
	}
	noisyOp := 0
	for i := 0; i < nops; i++ {
		now = now.Add(step)
		if noisy && i%2 == 1 {
			blk := uint64(noisyOp / burst)
			noisyOp++
			if err := st.ReadAt(1, 0, rbuf[:block.Size], blk*block.Size); err != nil {
				t.Fatalf("noisy op %d: %v", i, err)
			}
			continue
		}
		blk := zipf.Uint64()
		nblk := 1 + srand.Intn(4)
		off := blk * block.Size
		if srand.Intn(10) < 7 {
			if err := st.ReadAt(0, 0, rbuf[:nblk*block.Size], off); err != nil {
				t.Fatalf("op %d: read: %v", i, err)
			}
		} else {
			if err := st.WriteAt(0, 0, wbuf[:nblk*block.Size], off); err != nil {
				t.Fatalf("op %d: write: %v", i, err)
			}
		}
	}
	snaps, ok := st.TenantStats()
	if !ok {
		t.Fatal("TenantStats: tracking not enabled")
	}
	return snaps, st.Stats()
}

// tenantSnap picks one tenant out of a TenantStats slice.
func tenantSnap(t *testing.T, snaps []tenant.Snapshot, server, volume int) tenant.Snapshot {
	t.Helper()
	for _, s := range snaps {
		if s.Server == server && s.Volume == volume {
			return s
		}
	}
	t.Fatalf("tenant %d/%d not in %v", server, volume, snaps)
	return tenant.Snapshot{}
}

// TestTenantNoisyNeighbor is the headline adversarial scenario, run for
// both variants at one and eight shards:
//
//   - with quotas, the stable tenant's hit ratio stays within 2 points
//     of its solo run — the churner is fenced to the quota floor;
//   - without quotas, the same churner costs the stable tenant at least
//     5 points — the regression the quota machinery exists to prevent.
func TestTenantNoisyNeighbor(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant Variant
	}{
		{"C", VariantC},
		{"D", VariantD},
	} {
		for _, shards := range []int{1, 8} {
			t.Run(fmt.Sprintf("SieveStore%s/Shards%d", tc.name, shards), func(t *testing.T) {
				soloSnaps, _ := runTenantWorkload(t, tc.variant, shards, true, false)
				solo := tenantSnap(t, soloSnaps, 0, 0).HitRatio()

				guardSnaps, guardStats := runTenantWorkload(t, tc.variant, shards, true, true)
				guarded := tenantSnap(t, guardSnaps, 0, 0).HitRatio()

				openSnaps, _ := runTenantWorkload(t, tc.variant, shards, false, true)
				open := tenantSnap(t, openSnaps, 0, 0).HitRatio()

				t.Logf("stable hit ratio: solo %.4f, with quotas %.4f, without %.4f",
					solo, guarded, open)
				if d := math.Abs(guarded - solo); d > 0.02 {
					t.Errorf("with quotas: stable hit ratio %.4f vs solo %.4f (|Δ| = %.4f > 0.02)",
						guarded, solo, d)
				}
				if d := solo - open; d < 0.05 {
					t.Errorf("without quotas: stable hit ratio %.4f vs solo %.4f (degraded only %.4f < 0.05)",
						open, solo, d)
				}

				// The protection must come from the mechanism, not luck: the
				// churner was denied or clipped, repartitions ran, and its
				// quota was squeezed toward the floor (512/(8×2) = 32; IMCT
				// aliasing can gift the churner a few accidental hits under
				// VariantC, so "near", not "at") while the stable tenant
				// held the bulk of the cache.
				if guardStats.QuotaDenials+guardStats.TenantClips == 0 {
					t.Error("with quotas: no quota denials or selection clips recorded")
				}
				if guardStats.TenantRepartitions == 0 {
					t.Error("with quotas: no repartitions ran")
				}
				churn := tenantSnap(t, guardSnaps, 1, 0)
				if churn.QuotaBlocks > 128 {
					t.Errorf("churner quota = %d, want ≤ 128 (near the 32 floor)", churn.QuotaBlocks)
				}
				if stable := tenantSnap(t, guardSnaps, 0, 0); stable.QuotaBlocks < 350 {
					t.Errorf("stable quota = %d, want ≥ 350", stable.QuotaBlocks)
				}
			})
		}
	}
}

// TestTenantEnduranceThrottle pins the endurance budget on VariantC's
// continuous admission path: a churning tenant scanning fresh blocks
// through a deliberately permissive sieve (T1=1, T2=1 admits every
// first miss) is capped at roughly its token-bucket burst — 64 blocks
// here — instead of the thousands it writes with the budget off, while
// a well-behaved tenant with headroom is untouched.
func TestTenantEnduranceThrottle(t *testing.T) {
	run := func(envelope int64) ([]tenant.Snapshot, Stats) {
		be := store.NewMem()
		be.AddVolume(0, 0, 64*block.Size)
		be.AddVolume(1, 0, 4096*block.Size)
		now := time.Unix(1700000000, 0)
		st, err := Open(be, Options{
			CacheBytes:           512 * block.Size,
			Shards:               1,
			Variant:              VariantC,
			EnduranceBytesPerDay: envelope,
			TenantTracking:       true,
			SieveC: sieve.CConfig{
				IMCTSize: 1 << 12, T1: 1, T2: 1,
				Window: 2 * time.Minute, Subwindows: 4,
			},
			Now: func() time.Time { return now },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		rbuf := make([]byte, block.Size)
		churn := 0
		for i := 0; i < 4000; i++ {
			now = now.Add(10 * time.Millisecond)
			if i%4 == 3 {
				// The friendly tenant cycles a 16-block set: one admission
				// each, then pure hits.
				if err := st.ReadAt(0, 0, rbuf, uint64(i/4%16)*block.Size); err != nil {
					t.Fatal(err)
				}
				continue
			}
			// The churner reads a fresh block every op — every access is a
			// miss and, at T1=T2=1, every miss wants an allocation write.
			if err := st.ReadAt(1, 0, rbuf, uint64(churn)*block.Size); err != nil {
				t.Fatal(err)
			}
			churn++
		}
		snaps, ok := st.TenantStats()
		if !ok {
			t.Fatal("tenant tracking off")
		}
		return snaps, st.Stats()
	}

	// Envelope: burst = envelope/24 = 64 blocks; the 40-second run
	// refills only a trickle (≈9 B/s × share), so the burst is the cap.
	const envelope = 24 * 64 * block.Size
	snaps, stats := run(envelope)
	churn := tenantSnap(t, snaps, 1, 0)
	if churn.AllocWrites > 80 || churn.AllocWrites < 32 {
		t.Errorf("throttled churner alloc writes = %d, want ≈ burst (32..80)", churn.AllocWrites)
	}
	if churn.Throttles == 0 || churn.Throttled == tenant.ThrottleNone {
		t.Errorf("churner not throttled: %d transitions, level %d", churn.Throttles, churn.Throttled)
	}
	friendly := tenantSnap(t, snaps, 0, 0)
	if friendly.AllocWrites != 16 || friendly.Throttled != tenant.ThrottleNone {
		t.Errorf("friendly tenant: alloc writes %d (want 16), throttle level %d (want none)",
			friendly.AllocWrites, friendly.Throttled)
	}
	if friendly.Hits < 900 {
		t.Errorf("friendly tenant hits = %d, want ≥ 900 of ~1000", friendly.Hits)
	}
	if stats.Tenants != 2 {
		t.Errorf("Stats.Tenants = %d, want 2", stats.Tenants)
	}

	// Control: with the budget off the same churner writes thousands.
	openSnaps, _ := run(0)
	if got := tenantSnap(t, openSnaps, 1, 0).AllocWrites; got < 1000 {
		t.Errorf("unthrottled churner alloc writes = %d, want ≥ 1000", got)
	}
}

// TestTenantEnduranceEpochClip is the VariantD edition: the epoch
// batch-installer consults the endurance allowance before fetching, so
// a churner whose selection would blow the budget gets its epoch moves
// clipped to the bucket (and the clip is counted), instead of the
// full cache-sized install the selection asked for.
func TestTenantEnduranceEpochClip(t *testing.T) {
	run := func(envelope int64) (Stats, []tenant.Snapshot) {
		be := store.NewMem()
		be.AddVolume(1, 0, 4096*block.Size)
		now := time.Unix(1700000000, 0)
		st, err := Open(be, Options{
			CacheBytes:           512 * block.Size,
			Shards:               8,
			Variant:              VariantD,
			Epoch:                time.Minute,
			DThreshold:           4,
			SpillDir:             t.TempDir(),
			EnduranceBytesPerDay: envelope,
			TenantTracking:       true,
			Now:                  func() time.Time { return now },
		})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		rbuf := make([]byte, block.Size)
		for i := 0; i < 6200; i++ {
			now = now.Add(10 * time.Millisecond)
			blk := uint64(i / tnBurst % 4096)
			if err := st.ReadAt(1, 0, rbuf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
		snaps, _ := st.TenantStats()
		return st.Stats(), snaps
	}

	stats, snaps := run(24 * 64 * block.Size) // burst = 64 blocks
	if stats.Epochs == 0 {
		t.Fatal("no epoch rotation ran")
	}
	churn := tenantSnap(t, snaps, 1, 0)
	if churn.AllocWrites > 80 {
		t.Errorf("epoch installs = %d blocks, want ≤ 80 (burst 64)", churn.AllocWrites)
	}
	if stats.TenantClips < 100 {
		t.Errorf("selection clips = %d, want ≥ 100 (the clipped epoch tail)", stats.TenantClips)
	}
	if churn.AllocWrites != stats.EpochMoves {
		t.Errorf("tenant alloc writes %d != epoch moves %d", churn.AllocWrites, stats.EpochMoves)
	}

	control, _ := run(0)
	if control.EpochMoves < 300 {
		t.Errorf("unthrottled epoch moves = %d, want ≥ 300", control.EpochMoves)
	}
}

// TestTenantAccountingFence is the no-double-count fence: after a
// deterministic two-tenant run, per-tenant counters summed across
// tenants must equal the store's own striped-merged Stats exactly —
// reads, writes, hits, residency, and allocation writes (continuous
// admissions plus epoch batch moves). Run for both variants at eight
// shards (the striped-merge case), plus a RAM-tier config where hits
// bypass the shards entirely. A second TenantStats call must return
// identical values (snapshots don't consume or double-fold anything).
func TestTenantAccountingFence(t *testing.T) {
	for _, tc := range []struct {
		name      string
		variant   Variant
		tierBytes int64
	}{
		{"C/Shards8", VariantC, 0},
		{"D/Shards8", VariantD, 0},
		{"C/Shards8/Tier", VariantC, 16 * block.Size},
	} {
		t.Run(tc.name, func(t *testing.T) {
			be := store.NewMem()
			be.AddVolume(0, 0, 1028*block.Size)
			be.AddVolume(0, 1, 1028*block.Size)
			now := time.Unix(1700000000, 0)
			opts := Options{
				CacheBytes:     256 * block.Size,
				Shards:         8,
				Variant:        tc.variant,
				RAMTierBytes:   tc.tierBytes,
				TenantTracking: true,
				TenantQuotas:   true,
				Now:            func() time.Time { return now },
			}
			switch tc.variant {
			case VariantC:
				opts.SieveC = sieve.CConfig{
					IMCTSize: 1 << 12, T1: 3, T2: 2,
					Window: 2 * time.Minute, Subwindows: 4,
				}
			case VariantD:
				opts.Epoch = time.Minute
				opts.DThreshold = 4
				opts.SpillDir = t.TempDir()
			}
			st, err := Open(be, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			r := rand.New(rand.NewSource(7))
			zipf := rand.NewZipf(r, 1.2, 1, 1023)
			wbuf := bytes.Repeat([]byte{0x5A}, 4*block.Size)
			rbuf := make([]byte, 4*block.Size)
			for i := 0; i < 20000; i++ {
				now = now.Add(10 * time.Millisecond)
				vol := i % 2
				off := zipf.Uint64() * block.Size
				nblk := 1 + r.Intn(4)
				if r.Intn(10) < 7 {
					// One read in four goes through the wire server's
					// zero-copy path: pinned prefix plus a ReadAt tail, which
					// together must count exactly like one ReadAt.
					if r.Intn(4) == 0 {
						n := nblk * block.Size
						if pr := st.ReadPinned(0, vol, n, off); pr != nil {
							served := pr.Bytes()
							pr.Release()
							if served < n {
								if err := st.ReadAt(0, vol, rbuf[:n-served], off+uint64(served)); err != nil {
									t.Fatal(err)
								}
							}
							continue
						}
					}
					if err := st.ReadAt(0, vol, rbuf[:nblk*block.Size], off); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := st.WriteAt(0, vol, wbuf[:nblk*block.Size], off); err != nil {
						t.Fatal(err)
					}
				}
			}

			snaps, ok := st.TenantStats()
			if !ok {
				t.Fatal("tenant tracking off")
			}
			if len(snaps) != 2 {
				t.Fatalf("got %d tenants, want 2", len(snaps))
			}
			var reads, writes, hits, occ, allocs int64
			for _, s := range snaps {
				reads += s.Reads
				writes += s.Writes
				hits += s.Hits
				occ += s.OccupancyBlocks
				allocs += s.AllocWrites
			}
			stats := st.Stats()
			if reads != stats.Reads {
				t.Errorf("Σ tenant reads = %d, store %d", reads, stats.Reads)
			}
			if writes != stats.Writes {
				t.Errorf("Σ tenant writes = %d, store %d", writes, stats.Writes)
			}
			if hits != stats.Hits() {
				t.Errorf("Σ tenant hits = %d, store %d", hits, stats.Hits())
			}
			if occ != stats.CachedBlocks {
				t.Errorf("Σ tenant occupancy = %d, store CachedBlocks %d", occ, stats.CachedBlocks)
			}
			if allocs != stats.AllocWrites+stats.EpochMoves {
				t.Errorf("Σ tenant alloc writes = %d, store %d+%d",
					allocs, stats.AllocWrites, stats.EpochMoves)
			}

			// Reading the stats must not perturb them.
			again, _ := st.TenantStats()
			for i := range snaps {
				if snaps[i] != again[i] {
					t.Errorf("second TenantStats changed tenant %d/%d: %+v vs %+v",
						snaps[i].Server, snaps[i].Volume, snaps[i], again[i])
				}
			}
		})
	}
}

// TestTenantRepartitionStress hammers the quota machinery from every
// direction at once — four tenants of concurrent I/O, forced epoch
// rotations, flushes, and snapshot save/load cycles — under the race
// detector, and checks the occupancy invariant: per-tenant occupancy
// never goes negative while running, and once quiesced the occupancies
// sum exactly to the store's residency.
func TestTenantRepartitionStress(t *testing.T) {
	be := store.NewMem()
	for v := 0; v < 4; v++ {
		be.AddVolume(0, v, 2048*block.Size)
	}
	st, err := Open(be, Options{
		CacheBytes:             128 * block.Size,
		Shards:                 8,
		Variant:                VariantD,
		Epoch:                  time.Minute, // real-time: never fires here — rotations are forced below
		DThreshold:             2,
		SpillDir:               t.TempDir(),
		WriteBack:              true,
		TenantTracking:         true,
		TenantQuotas:           true,
		EnduranceBytesPerDay:   1 << 40, // active but never binding
		TenantRepartitionEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for v := 0; v < 4; v++ {
		wg.Add(1)
		go func(vol int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(100 + vol)))
			buf := make([]byte, 2*block.Size)
			for i := 0; i < 1500; i++ {
				// Mostly a 32-block hot set (re-read counts admit it at the
				// forced rotations and earn repartition demand), with a
				// uniform churn tail.
				blk := r.Intn(32)
				if r.Intn(4) == 0 {
					blk = r.Intn(2040)
				}
				off := uint64(blk) * block.Size
				n := (1 + r.Intn(2)) * block.Size
				if r.Intn(3) == 0 {
					if err := st.WriteAt(0, vol, buf[:n], off); err != nil {
						t.Errorf("vol %d write: %v", vol, err)
						return
					}
				} else if err := st.ReadAt(0, vol, buf[:n], off); err != nil {
					t.Errorf("vol %d read: %v", vol, err)
					return
				}
			}
		}(v)
	}
	wg.Add(3)
	go func() { // forced rotations on top of the epoch schedule
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := st.RotateEpoch(); err != nil {
				t.Errorf("rotate: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { // flushes drain write-back dirt concurrently
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if err := st.Flush(); err != nil {
				t.Errorf("flush: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { // snapshot save/load cycles replace shards wholesale
		defer wg.Done()
		for i := 0; i < 8; i++ {
			var buf bytes.Buffer
			if err := st.SaveSnapshot(&buf); err != nil {
				t.Errorf("save: %v", err)
				return
			}
			if err := st.LoadSnapshot(&buf); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() { // watcher: occupancy must never be observed negative
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if snaps, ok := st.TenantStats(); ok {
				for _, s := range snaps {
					if s.OccupancyBlocks < 0 {
						t.Errorf("tenant %d/%d occupancy negative: %d",
							s.Server, s.Volume, s.OccupancyBlocks)
						return
					}
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	watcher.Wait()

	// Deterministic coda: the concurrent phase may have raced past every
	// rotation before anything was resident (no hits → no counted
	// repartition). Re-reading a hot set across two forced rotations
	// guarantees the repartition path observes demand at least once.
	coda := make([]byte, block.Size)
	for pass := 0; pass < 3; pass++ {
		for b := 0; b < 32; b++ {
			for rep := 0; rep < 2; rep++ { // count ≥ DThreshold within the epoch
				if err := st.ReadAt(0, 0, coda, uint64(b)*block.Size); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := st.RotateEpoch(); err != nil {
			t.Fatal(err)
		}
	}

	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	snaps, ok := st.TenantStats()
	if !ok {
		t.Fatal("tenant tracking off")
	}
	var occ int64
	for _, s := range snaps {
		if s.OccupancyBlocks < 0 {
			t.Errorf("tenant %d/%d occupancy negative at quiesce: %d",
				s.Server, s.Volume, s.OccupancyBlocks)
		}
		occ += s.OccupancyBlocks
	}
	if stats := st.Stats(); occ != stats.CachedBlocks {
		t.Errorf("Σ tenant occupancy = %d, store CachedBlocks = %d", occ, stats.CachedBlocks)
	}
	if stats := st.Stats(); stats.TenantRepartitions == 0 {
		t.Error("no repartitions ran under stress")
	}
}

// TestTenantGoldenUnchanged guards the default path: with tenant
// tracking off (the default), the golden workload's rows must stay
// bit-identical to TestGoldenTrace — the QoS hooks are nil-guarded
// no-ops, not behavior changes. (runGoldenWorkload never sets the
// tenant options, so this re-run plus the unchanged golden values in
// TestGoldenTrace is the actual guarantee; here we additionally pin
// that tracking-only mode — no quotas, no endurance — also leaves the
// policy untouched, since pure accounting must not steer admission.)
func TestTenantGoldenUnchanged(t *testing.T) {
	base := runGoldenWorkload(t, VariantC, 8)

	be := store.NewMem()
	be.AddVolume(0, 0, (goldenSpan+4)*block.Size)
	now := time.Unix(1700000000, 0)
	st, err := Open(be, Options{
		CacheBytes:     512 * block.Size,
		Shards:         8,
		Variant:        VariantC,
		TenantTracking: true, // observe-only: no quotas, no endurance
		SieveC: sieve.CConfig{
			IMCTSize: 1 << 12, T1: 3, T2: 2,
			Window: 2 * time.Minute, Subwindows: 4,
		},
		Now: func() time.Time { return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	r := rand.New(rand.NewSource(goldenSeed))
	zipf := rand.NewZipf(r, 1.2, 1, goldenSpan-1)
	wbuf := bytes.Repeat([]byte{0xC3}, 4*block.Size)
	rbuf := make([]byte, 4*block.Size)
	for i := 0; i < goldenOps; i++ {
		now = now.Add(10 * time.Millisecond)
		blk := zipf.Uint64()
		nblk := 1 + r.Intn(4)
		off := blk * block.Size
		if r.Intn(10) < 7 {
			if err := st.ReadAt(0, 0, rbuf[:nblk*block.Size], off); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := st.WriteAt(0, 0, wbuf[:nblk*block.Size], off); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := st.Stats()
	got := goldenResult{
		HitRatio:    s.HitRatio(),
		AllocWrites: s.AllocWrites,
		Admissions:  st.SieveStats().Allocations,
		Epochs:      s.Epochs,
	}
	if got != base {
		t.Errorf("observe-only tenant tracking changed the golden row:\n  got  %+v\n  want %+v", got, base)
	}
}
