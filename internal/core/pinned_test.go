package core

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/store"
)

// admit reads the block at off 3× (quickSieve admission threshold),
// advancing the clock between misses.
func admit(t *testing.T, s *Store, clk *fakeClock, off uint64) {
	t.Helper()
	buf := make([]byte, block.Size)
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, off); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, off) {
		t.Fatalf("block at %d not admitted after 3 misses", off)
	}
}

func TestReadPinnedServesCachedRun(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	data := bytes.Repeat([]byte{0xAB}, 4*block.Size)
	if err := s.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		admit(t, s, clk, uint64(i)*block.Size)
	}
	before := s.Stats()
	pr := s.ReadPinned(0, 0, 4*block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned returned nil for fully cached run")
	}
	if pr.Bytes() != 4*block.Size || pr.Blocks() != 4 {
		t.Fatalf("pinned %d bytes / %d blocks, want %d / 4", pr.Bytes(), pr.Blocks(), 4*block.Size)
	}
	var got []byte
	for _, v := range pr.Views() {
		got = append(got, v...)
	}
	if !bytes.Equal(got, data) {
		t.Error("pinned views carry wrong data")
	}
	pr.Release()
	after := s.Stats()
	if d := after.PinnedReads - before.PinnedReads; d != 4 {
		t.Errorf("PinnedReads delta = %d, want 4", d)
	}
	if d := after.ReadHits - before.ReadHits; d != 4 {
		t.Errorf("ReadHits delta = %d, want 4", d)
	}
	if after.BackendReads != before.BackendReads {
		t.Error("pinned read went to backend")
	}
}

func TestReadPinnedColdMissFallsBack(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	if pr := s.ReadPinned(0, 0, block.Size, 0); pr != nil {
		t.Fatal("ReadPinned served a cold block")
	}
	// Bad geometry falls back too rather than erroring.
	if pr := s.ReadPinned(0, 0, 100, 0); pr != nil {
		t.Fatal("ReadPinned accepted unaligned length")
	}
	if pr := s.ReadPinned(0, 0, 0, 0); pr != nil {
		t.Fatal("ReadPinned accepted zero length")
	}
}

// A partially resident run serves only the all-hit prefix; the caller
// reads the rest through ReadAt.
func TestReadPinnedServesPrefixOnly(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	admit(t, s, clk, 0)
	pr := s.ReadPinned(0, 0, 2*block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned returned nil despite cached first block")
	}
	defer pr.Release()
	if pr.Blocks() != 1 {
		t.Fatalf("pinned %d blocks, want 1 (only the prefix is cached)", pr.Blocks())
	}
}

// Writing a pinned block must not mutate the pinned view: the write goes
// copy-on-write into a fresh frame.
func TestPinnedCopyOnWrite(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	old := bytes.Repeat([]byte{0x11}, block.Size)
	if err := s.WriteAt(0, 0, old, 0); err != nil {
		t.Fatal(err)
	}
	admit(t, s, clk, 0)
	pr := s.ReadPinned(0, 0, block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned returned nil for cached block")
	}
	newData := bytes.Repeat([]byte{0x22}, block.Size)
	if err := s.WriteAt(0, 0, newData, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pr.Views()[0], old) {
		t.Error("write mutated a pinned frame")
	}
	pr.Release()
	got := make([]byte, block.Size)
	if err := s.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Error("cache lost the write that copy-on-wrote around the pin")
	}
}

// Evicting a pinned block must not recycle its frame into the free list
// while the pin is live: later allocations would scribble over data the
// wire is still sending.
func TestPinnedFrameSurvivesEviction(t *testing.T) {
	clk := newFakeClock()
	mem := testBackend()
	s, err := Open(mem, Options{
		CacheBytes: 8 * block.Size,
		SieveC:     quickSieve(),
		Shards:     1,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	want := bytes.Repeat([]byte{0x77}, block.Size)
	if err := s.WriteAt(0, 0, want, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, block.Size)
	admit(t, s, clk, 0)
	pr := s.ReadPinned(0, 0, block.Size, 0)
	if pr == nil {
		t.Fatal("ReadPinned returned nil for cached block")
	}
	// Hammer enough other blocks through the 8-block cache to evict the
	// pinned one and churn the free list hard.
	for blk := uint64(1); blk < 64; blk++ {
		for i := 0; i < 3; i++ {
			clk.Advance(time.Second)
			if err := s.ReadAt(0, 0, buf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.WriteAt(0, 0, buf, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(pr.Views()[0], want) {
		t.Fatal("eviction churn corrupted a pinned frame")
	}
	pr.Release()
	// After release the frame is recyclable; keep churning to prove the
	// store stays consistent.
	for blk := uint64(64); blk < 80; blk++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGroupCommitWindowValidation(t *testing.T) {
	if _, err := Open(testBackend(), Options{GroupCommitWindow: -time.Second}); err == nil {
		t.Error("negative group-commit window accepted")
	}
}

// Concurrent flushes inside the group-commit window collapse into one
// backend sweep: one starter, the rest join its batch.
func TestGroupCommitCoalescesFlushes(t *testing.T) {
	clk := newFakeClock()
	mem := testBackend()
	s, err := Open(mem, Options{
		CacheBytes:        64 * block.Size,
		SieveC:            quickSieve(),
		WriteBack:         true,
		GroupCommitWindow: 30 * time.Millisecond,
		Now:               clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	data := bytes.Repeat([]byte{0x5A}, block.Size)
	admit(t, s, clk, 0)
	if err := s.WriteAt(0, 0, data, 0); err != nil { // write hit → dirty
		t.Fatal(err)
	}
	if s.Stats().DirtyBlocks == 0 {
		t.Fatal("write-back hit did not dirty the block")
	}

	const flushers = 8
	var wg sync.WaitGroup
	errs := make(chan error, flushers)
	for i := 0; i < flushers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.Flush()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DirtyBlocks != 0 {
		t.Errorf("DirtyBlocks = %d after flush, want 0", st.DirtyBlocks)
	}
	if st.GroupCommits+st.CoalescedFlushes != flushers {
		t.Errorf("GroupCommits (%d) + CoalescedFlushes (%d) != %d flush calls",
			st.GroupCommits, st.CoalescedFlushes, flushers)
	}
	if st.GroupCommits == flushers {
		t.Error("no flushes coalesced despite concurrent callers inside the window")
	}
	got := make([]byte, block.Size)
	if err := mem.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("flushed data did not reach the backend")
	}
}

// With no window configured, Flush keeps its original synchronous
// semantics and counts nothing.
func TestFlushWithoutWindowUnchanged(t *testing.T) {
	clk := newFakeClock()
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<24)
	s, err := Open(mem, Options{
		CacheBytes: 64 * block.Size,
		SieveC:     quickSieve(),
		WriteBack:  true,
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	admit(t, s, clk, 0)
	if err := s.WriteAt(0, 0, bytes.Repeat([]byte{1}, block.Size), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GroupCommits != 0 || st.CoalescedFlushes != 0 {
		t.Errorf("group-commit counters moved without a window: %d/%d",
			st.GroupCommits, st.CoalescedFlushes)
	}
}
