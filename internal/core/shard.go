package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/block"
	"repro/internal/cache"
	"repro/internal/sieve"
	"repro/internal/tenant"
	"repro/internal/tier"
)

// framePool recycles 512-byte block buffers across shards so that frame
// installs and coalesced-waiter copies do not allocate per event. Frames
// evicted from a shard's cache go to that shard's free list first (they
// are hot in that shard); the pool backs first-fill and the transient
// copies handed to flight waiters.
var framePool = sync.Pool{
	New: func() any { return new([block.Size]byte) },
}

// frameGet returns a zero-copy 512-byte buffer from the pool.
func frameGet() []byte { return framePool.Get().(*[block.Size]byte)[:] }

// framePut recycles a buffer obtained from frameGet (or any 512-byte
// slice whose backing array may be pinned harmlessly).
func framePut(b []byte) {
	if len(b) < block.Size {
		return
	}
	framePool.Put((*[block.Size]byte)(b[:block.Size]))
}

// flight is one entry of a shard's in-flight table: a miss fetch or a
// write reservation in progress with the shard lock released. Readers that
// miss on a reserved key register as waiters and are served from the
// flight instead of issuing a duplicate backend fetch.
type flight struct {
	done chan struct{} // closed (under the shard lock) when the op completes
	// All remaining fields are guarded by the shard lock until done is
	// closed; afterwards they are read-only (the channel close publishes
	// them), except refs, which waiters decrement as they copy out.
	data    []byte // the block's bytes; set at completion iff waiters > 0
	err     error  // fetch/write failure, propagated to waiters
	waiters int
	// stale marks keys invalidated or batch-replaced while the flight was
	// in the air: the owner must not install its (now outdated) view into
	// the cache. The entry is detached from the table when marked, so new
	// misses start a fresh fetch.
	stale bool
	// isWrite distinguishes write reservations (and staged write-backs)
	// from miss fetches. Bulk replacements (epoch swap, snapshot load)
	// stale only fetches: a fetch holds pre-replacement data, but a write
	// completing afterwards carries *newer* data and must still fold it in.
	isWrite bool
	// pooled marks data as drawn from framePool; the last waiter to copy
	// out (refs reaching zero) returns it.
	pooled bool
	refs   atomic.Int32
}

// publishLocked stages the flight's payload for its registered waiters,
// drawing the copy from the frame pool instead of allocating. Must be
// called under the shard lock, before close(done). The buffer is
// refcounted by the waiter count; the last waiter returns it to the pool.
func (f *flight) publishLocked(src []byte) {
	if f.waiters == 0 {
		return
	}
	buf := frameGet()
	copy(buf, src)
	f.data = buf
	f.pooled = true
	f.refs.Store(int32(f.waiters))
}

// adoptLocked is publishLocked for a buffer that is already a pool-origin
// copy (staged flushes copy the frame anyway for the backend write). It
// reports whether the waiters took ownership; if not, the caller still
// owns the buffer and should recycle it.
func (f *flight) adoptLocked(buf []byte) bool {
	if f.waiters == 0 {
		return false
	}
	f.data = buf
	f.pooled = true
	f.refs.Store(int32(f.waiters))
	return true
}

// release is called by each waiter after copying the payload out; the
// last one returns the pooled buffer.
func (f *flight) release() {
	if f.pooled && f.refs.Add(-1) == 0 {
		framePut(f.data)
	}
}

// shard is one lock-striped partition of the Store: a fully-associative
// tag store (LRU by default; any cache.Policy via Options.Policy) over
// its slice of the key space, with its own frames, dirty set, in-flight
// table, sieve state, and stats. Keys map to shards by hash
// (Store.shardOf); with Options.Shards == 1 the single shard is exactly
// the paper's fully-associative cache.
type shard struct {
	store *Store
	idx   int

	mu       sync.Mutex
	tags     cache.Policy
	frames   map[block.Key][]byte
	dirty    map[block.Key]bool
	free     [][]byte
	inflight map[block.Key]*flight
	sieveC   *sieve.C
	// rotSkip is non-nil while a store-wide epoch transition is staging
	// (it doubles as the per-shard "rotating" flag): keys written or
	// invalidated during the transition are recorded so the commit cannot
	// install its (older) fetched copy of them. The shard's commit
	// consumes and clears it.
	rotSkip map[block.Key]bool
	// pins tracks frames lent out to zero-copy readers (Store.ReadPinned),
	// keyed by the frame's backing array. A pinned frame is never mutated
	// or recycled: eviction/replacement dooms it instead, and the last
	// unpin returns it to the free list.
	pins map[*byte]*framePin
	// promo is this shard's RAM-tier promotion sieve (nil when the tier
	// is disabled), bumped on SSD read hits under the shard lock.
	promo *tier.PromoFilter
	stats Stats

	// _pad keeps adjacent shard allocations from false-sharing a cache
	// line when the allocator packs them.
	_pad [64]byte //nolint:unused
}

// framePin is the refcount for one frame lent out by Store.ReadPinned.
// Guarded by the owning shard's mutex.
type framePin struct {
	refs   int
	doomed bool // evicted or replaced while pinned: recycle on last unpin
}

// pinLocked takes a reference on a resident frame for a zero-copy reader.
func (sh *shard) pinLocked(f []byte) {
	if sh.pins == nil {
		sh.pins = make(map[*byte]*framePin)
	}
	p := sh.pins[&f[0]]
	if p == nil {
		p = &framePin{}
		sh.pins[&f[0]] = p
	}
	p.refs++
}

// unpinLocked drops a reference; the last unpin of a doomed frame returns
// it to the free list.
func (sh *shard) unpinLocked(f []byte) {
	k := &f[0]
	p := sh.pins[k]
	if p == nil {
		return
	}
	if p.refs--; p.refs > 0 {
		return
	}
	delete(sh.pins, k)
	if p.doomed {
		sh.free = append(sh.free, f)
	}
}

// recycleLocked returns a frame the cache no longer references to the
// shard's free list — unless a zero-copy reader still holds it pinned, in
// which case the frame is doomed and recycled on the last unpin instead.
// Every eviction/replacement path must route frames through here:
// appending to sh.free directly could hand a pinned frame to a writer
// while its bytes are still on their way to a wire.
func (sh *shard) recycleLocked(f []byte) {
	if f == nil {
		return
	}
	if p, ok := sh.pins[&f[0]]; ok {
		p.doomed = true
		return
	}
	sh.free = append(sh.free, f)
}

// writeFrameLocked folds data into key's resident frame. A pinned frame
// is never mutated in place (its bytes are owned by in-flight zero-copy
// responses): the update goes into a fresh frame swapped into the map,
// and the pinned original is doomed.
func (sh *shard) writeFrameLocked(key block.Key, data []byte) {
	f := sh.frames[key]
	if p, ok := sh.pins[&f[0]]; ok {
		p.doomed = true
		nf := sh.alloc()
		copy(nf, data)
		sh.frames[key] = nf
		return
	}
	copy(f, data)
}

// promoteOnHitLocked offers one SSD read hit to the RAM tier's promotion
// sieve and, once the block has earned it, copies its frame up into the
// tier. Called under sh.mu, which linearizes the copy with frame
// updates: a concurrent write cannot strand a stale copy in the tier,
// because its own tier invalidation runs under this same lock after the
// frame update.
func (sh *shard) promoteOnHitLocked(key block.Key) {
	if sh.promo != nil && sh.promo.Hit(key) {
		sh.store.tier.Insert(key, sh.frames[key])
	}
}

// tierInvalidate drops key's RAM-tier copy, if any. Callers must hold
// key's store-shard mutex so the drop linearizes with the frame or
// backend update it accompanies (see promoteOnHitLocked).
func (s *Store) tierInvalidate(key block.Key) {
	if s.tier != nil {
		s.tier.Invalidate(key)
	}
}

// alloc hands out a frame, preferring the shard's free list (frames
// evicted from this shard) over the global pool.
func (sh *shard) alloc() []byte {
	if n := len(sh.free); n > 0 {
		f := sh.free[n-1]
		sh.free = sh.free[:n-1]
		return f
	}
	return frameGet()
}

// maybeAdmit consults the sieve (VariantC) and installs the block on
// approval, reporting whether it was admitted. VariantD never admits
// continuously.
func (sh *shard) maybeAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) bool {
	return sh.tryAdmit(key, data, kind, now, dirty)
}

// tryAdmit is maybeAdmit reporting whether the block was admitted.
func (sh *shard) tryAdmit(key block.Key, data []byte, kind block.Kind, now time.Time, dirty bool) bool {
	if sh.sieveC == nil {
		return false
	}
	// Tenant QoS raises the tenant's effective sieve threshold: by the
	// soft-throttle penalty when its endurance bucket runs low, and to an
	// unreachable level while it is at/over quota or out of endurance
	// budget. The sieve still counts the miss either way, so a penalized
	// tenant's hot blocks admit the moment the penalty lifts.
	extra := 0
	if a := sh.store.acct; a != nil {
		extra, _ = a.Admission(tenant.IDOf(key), now)
	}
	acc := block.Access{Time: now.Sub(sh.store.sieveBase).Nanoseconds(), Key: key, Kind: kind}
	if !sh.sieveC.ShouldAllocateN(acc, extra) {
		return false
	}
	if !sh.install(key, data) {
		return false
	}
	if dirty {
		sh.dirty[key] = true
	}
	sh.stats.AllocWrites++
	sh.tenantAllocWrite(key, 1)
	return true
}

// install copies data into a frame for key, evicting (and, in write-back
// mode, flushing) the LRU block if full. It reports whether the block was
// installed: when the dirty victim's write-back fails, the victim stays
// resident and dirty (its frame holds the only current copy), the failure
// is counted in Stats.FlushErrors, and the new block is simply not
// allocated — the caller's own I/O already succeeded and must not be
// failed by an unrelated block's flush.
func (sh *shard) install(key block.Key, data []byte) bool {
	if inj := sh.store.opts.FrameFaultInjector; inj != nil {
		if err := inj(key); err != nil {
			sh.store.noteCacheFault()
			return false
		}
	}
	wasResident := sh.tags.Contains(key)
	if sh.tags.Len() >= sh.tags.Capacity() && !wasResident {
		if victim, ok := sh.tags.Victim(); ok && sh.dirty[victim] {
			if err := sh.flushBlock(victim); err != nil {
				sh.stats.FlushErrors++
				return false
			}
		}
	}
	if victim, evicted := sh.tags.Insert(key); evicted {
		sh.stats.Evictions++
		sh.recycleLocked(sh.frames[victim])
		delete(sh.frames, victim)
		sh.tenantEvict(victim)
	}
	frame := sh.alloc()
	copy(frame, data)
	sh.frames[key] = frame
	if !wasResident {
		// A duplicate insert is a touch (snapshot streams can repeat a
		// key): tenant occupancy moves only on a real residency change.
		sh.tenantInstall(key)
	}
	sh.store.noteCacheOK()
	return true
}

// flushBlock writes one dirty block back and clears its dirty bit.
func (sh *shard) flushBlock(key block.Key) error {
	frame, ok := sh.frames[key]
	if !ok {
		delete(sh.dirty, key)
		return nil
	}
	if err := sh.store.backend.WriteAt(key.Server(), key.Volume(), frame, key.Offset()); err != nil {
		return fmt.Errorf("core: write-back of %v: %w", key, err)
	}
	sh.stats.BackendWrites++
	sh.stats.BackendBytesWritten += block.Size
	sh.stats.FlushWrites++
	delete(sh.dirty, key)
	return nil
}

// staleFetchFlightsLocked detaches every in-flight *fetch* and marks it
// stale. Called by bulk cache replacements (epoch swap, snapshot load) so
// that fetches completing afterwards cannot install pre-replacement
// frames. Write reservations stay attached: a write completing after the
// replacement carries newer data than anything fetched or snapshotted and
// must still fold it into the cache.
func (sh *shard) staleFetchFlightsLocked() {
	for key, f := range sh.inflight {
		if f.isWrite {
			continue
		}
		f.stale = true
		delete(sh.inflight, key)
	}
}

// reserveLocked claims the given blocks of a write in this shard's
// in-flight table. Acquisition is all-or-nothing within the shard: if any
// key is already claimed (a miss fetch or another write), the shard lock
// is dropped and the caller waits for that flight with no reservations of
// its own held *in this shard*, then retries. Cross-shard writers and
// staged flushes both acquire shards in ascending index order, so waiting
// here while holding reservations only in lower-numbered shards cannot
// form a cycle. Caller must hold sh.mu; it may be released and
// re-acquired. The returned flights are indexed like idxs.
func (sh *shard) reserveLocked(server, volume int, first uint64, idxs []int) ([]*flight, error) {
	for {
		var conflict *flight
		for _, i := range idxs {
			if f, ok := sh.inflight[block.MakeKey(server, volume, first+uint64(i))]; ok {
				conflict = f
				break
			}
		}
		if conflict == nil {
			break
		}
		sh.mu.Unlock()
		<-conflict.done
		sh.mu.Lock()
		if sh.store.closed.Load() {
			return nil, ErrClosed
		}
	}
	flights := make([]*flight, len(idxs))
	for k, i := range idxs {
		f := &flight{done: make(chan struct{}), isWrite: true}
		sh.inflight[block.MakeKey(server, volume, first+uint64(i))] = f
		flights[k] = f
	}
	return flights, nil
}

// completeLocked publishes a write's outcome to any coalesced readers and
// releases this shard's reservations. flights is indexed by global block
// index; idxs selects this shard's blocks. p is the written payload (nil
// when the operation failed before producing data); err is propagated to
// waiters.
func (sh *shard) completeLocked(server, volume int, first uint64, idxs []int, flights []*flight, p []byte, err error) {
	for _, i := range idxs {
		f := flights[i]
		if f == nil {
			continue
		}
		key := block.MakeKey(server, volume, first+uint64(i))
		if err != nil {
			f.err = err
		} else {
			if p != nil {
				f.publishLocked(p[i*block.Size : (i+1)*block.Size])
			}
			// A write landing while an epoch transition is staging has
			// newer data than the transition's batch fetch: tell the swap
			// not to install its copy of this block.
			if sh.rotSkip != nil {
				sh.rotSkip[key] = true
			}
		}
		if sh.inflight[key] == f {
			delete(sh.inflight, key)
		}
		close(f.done)
	}
}

// flushStagedLocked writes this shard's dirty blocks back to the ensemble
// without holding the shard lock across the backend I/O. only, if
// non-nil, filters which dirty blocks are flushed. Caller must hold
// sh.mu; the lock is released and re-acquired. Each victim is reserved as
// a write flight first (so concurrent writes to it wait and reads
// coalesce onto the cached data), its frame is copied, and the copies are
// streamed in contiguous runs with bounded parallelism. Blocks whose
// write failed stay dirty and are counted in Stats.FlushErrors; the first
// error is returned.
//
// Reservation proceeds in ascending key order while holding earlier
// reservations, and cross-shard callers visit shards in ascending index
// order: any two staged flushes therefore acquire in the same global
// (shard, key) order and cannot deadlock against each other; every other
// flight owner (read misses, write reservations) completes without
// waiting on later-ordered flights, so waiting here with reservations
// held is safe.
func (sh *shard) flushStagedLocked(only func(block.Key) bool) error {
	var victims []block.Key
	for k := range sh.dirty {
		if only == nil || only(k) {
			victims = append(victims, k)
		}
	}
	if len(victims) == 0 {
		return nil
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })

	flights := make([]*flight, len(victims))
	frames := make([][]byte, len(victims))
	for i := 0; i < len(victims); {
		k := victims[i]
		if f, ok := sh.inflight[k]; ok {
			sh.mu.Unlock()
			<-f.done
			sh.mu.Lock()
			continue // re-check this key
		}
		if !sh.dirty[k] || sh.frames[k] == nil {
			i++ // flushed or dropped while we waited
			continue
		}
		f := &flight{done: make(chan struct{}), isWrite: true}
		sh.inflight[k] = f
		flights[i] = f
		// Copy the frame (pooled): Invalidate can flush+recycle it while
		// we stream.
		frames[i] = frameGet()
		copy(frames[i], sh.frames[k])
		i++
	}

	runs := contiguousRuns(victims, func(i int) bool { return flights[i] != nil })
	runErr := make([]error, len(runs))
	ran := make([]bool, len(runs))

	sh.mu.Unlock()
	err := forEachRun(runs, func(ri int, r keyRun) error {
		ran[ri] = true
		n := r.hi - r.lo
		buf := frames[r.lo]
		if n > 1 {
			buf = make([]byte, n*block.Size)
			for i := 0; i < n; i++ {
				copy(buf[i*block.Size:], frames[r.lo+i])
			}
		}
		k0 := victims[r.lo]
		if e := sh.store.backend.WriteAt(k0.Server(), k0.Volume(), buf, k0.Offset()); e != nil {
			runErr[ri] = fmt.Errorf("core: write-back of %v: %w", k0, e)
			return runErr[ri]
		}
		return nil
	})
	sh.mu.Lock()

	for ri, r := range runs {
		if !ran[ri] {
			continue
		}
		if runErr[ri] == nil {
			sh.stats.BackendWrites++
			sh.stats.BackendBytesWritten += int64(r.hi-r.lo) * block.Size
		}
		for i := r.lo; i < r.hi; i++ {
			if runErr[ri] == nil {
				if sh.dirty[victims[i]] {
					delete(sh.dirty, victims[i])
					sh.stats.FlushWrites++
				}
			} else {
				sh.stats.FlushErrors++
			}
		}
	}
	for i, k := range victims {
		f := flights[i]
		if f == nil {
			continue
		}
		// The cache's copy is current regardless of the write-back
		// outcome: serve coalesced readers from it, never an error. The
		// waiters take over the pooled copy; otherwise recycle it.
		if !f.adoptLocked(frames[i]) {
			framePut(frames[i])
		}
		if sh.inflight[k] == f {
			delete(sh.inflight, k)
		}
		close(f.done)
	}
	return err
}

// drainDirtyLocked flushes until no dirty blocks remain in this shard: a
// few staged passes (writes may re-dirty blocks while the lock is down),
// then a final serial pass under the lock — which cannot be raced — for
// any stragglers.
func (sh *shard) drainDirtyLocked() error {
	for pass := 0; pass < 4 && len(sh.dirty) > 0; pass++ {
		if err := sh.flushStagedLocked(nil); err != nil {
			return err
		}
	}
	for key := range sh.dirty {
		if err := sh.flushBlock(key); err != nil {
			return err
		}
	}
	return nil
}

// commitEpochLocked applies a SieveStore-D epoch swap to this shard:
// selected is the shard's slice of the new epoch's set, hottest-first;
// fetched holds freshly-read frames for the previously non-resident keys.
// Caller must hold sh.mu; no backend I/O happens here.
func (sh *shard) commitEpochLocked(selected []block.Key, fetched map[block.Key][]byte) {
	// Fetches still in the air predate the new epoch and must not
	// install; write reservations stay attached (their data is newer than
	// the batch fetch).
	sh.staleFetchFlightsLocked()
	// A write reservation still pending at commit may already have sent
	// its data to the backend — after the batch fetch read the old
	// contents — without yet re-acquiring the shard lock to mark rotSkip
	// itself. Write-back through-writes never fold their data into the
	// cache afterwards, so installing the fetched copy would serve stale
	// data until the next epoch: treat the key as skipped now.
	for k, f := range sh.inflight {
		if f.isWrite {
			sh.rotSkip[k] = true
		}
	}
	// Blocks still dirty at commit (re-dirtied while no lock was held)
	// can never be evicted unflushed: retain them into the new epoch,
	// giving up the cold tail of the selection if capacity demands it.
	var forced []block.Key
	for k := range sh.dirty {
		forced = append(forced, k)
	}
	sort.Slice(forced, func(i, j int) bool { return forced[i] < forced[j] })
	final := make([]block.Key, 0, len(selected)+len(forced))
	inFinal := make(map[block.Key]bool, cap(final))
	for _, k := range forced {
		final = append(final, k)
		inFinal[k] = true
	}
	for _, k := range selected {
		if inFinal[k] {
			continue
		}
		if len(final) >= sh.tags.Capacity() {
			// Dirty retentions displaced this selected block: a hot block
			// lost to capacity, not a freshness skip — count it.
			sh.stats.SelectOverflow++
			continue
		}
		if sh.frames[k] == nil && (fetched[k] == nil || sh.rotSkip[k]) {
			// Not resident and nothing trustworthy fetched (written or
			// invalidated during the transition): leave it out; a later
			// epoch can re-select it.
			continue
		}
		final = append(final, k)
		inFinal[k] = true
	}
	_, evicted, overflow := sh.tags.Swap(final)
	sh.stats.SelectOverflow += int64(overflow)
	for _, k := range evicted {
		sh.recycleLocked(sh.frames[k])
		delete(sh.frames, k)
		sh.stats.Evictions++
		sh.tenantEvict(k)
	}
	for _, k := range final {
		if sh.frames[k] == nil {
			sh.frames[k] = fetched[k]
			sh.stats.EpochMoves++
			// Epoch batch installs are real SSD allocation-writes: move
			// tenant occupancy and charge the endurance budget.
			sh.tenantInstall(k)
			sh.tenantAllocWrite(k, 1)
		}
	}
	// This shard's transition is committed; writes no longer need to
	// record skips.
	sh.rotSkip = nil
}
