package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

// fakeClock is an injectable, manually advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// quickSieve admits a block on its 3rd miss within an hour — fast to
// exercise in tests.
func quickSieve() sieve.CConfig {
	return sieve.CConfig{IMCTSize: 1 << 16, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4}
}

func testBackend() *store.Mem {
	m := store.NewMem()
	m.AddVolume(0, 0, 1<<24)
	m.AddVolume(1, 0, 1<<24)
	return m
}

func openC(t *testing.T, clk *fakeClock) *Store {
	t.Helper()
	s, err := Open(testBackend(), Options{
		CacheBytes: 64 * block.Size,
		SieveC:     quickSieve(),
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(nil, Options{}); err == nil {
		t.Error("nil backend accepted")
	}
	if _, err := Open(testBackend(), Options{CacheBytes: 100}); err == nil {
		t.Error("unaligned cache size accepted")
	}
	if _, err := Open(testBackend(), Options{Variant: Variant(9)}); err == nil {
		t.Error("unknown variant accepted")
	}
	if _, err := Open(testBackend(), Options{Epoch: time.Second, Variant: VariantD}); err == nil {
		t.Error("absurd epoch accepted")
	}
	if _, err := Open(testBackend(), Options{DThreshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestDefaultsAre16GBVariantC(t *testing.T) {
	s, err := Open(testBackend(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Variant() != VariantC {
		t.Error("default variant should be C")
	}
	if got := s.Stats().CapacityBlocks; got != (16<<30)/block.Size {
		t.Errorf("capacity = %d blocks", got)
	}
}

func TestAlignmentEnforced(t *testing.T) {
	s := openC(t, newFakeClock())
	buf := make([]byte, 100)
	if err := s.ReadAt(0, 0, buf, 0); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned length: %v", err)
	}
	if err := s.WriteAt(0, 0, make([]byte, 512), 100); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned offset: %v", err)
	}
	if err := s.ReadAt(0, 0, nil, 0); !errors.Is(err, ErrAlignment) {
		t.Errorf("empty read: %v", err)
	}
}

// TestBlockRangeEnforced pins the fix for a remotely-triggerable panic
// found by FuzzServerInput: offsets past the addressable block range used
// to reach block.MakeKey, which panics on out-of-range components. They
// must surface as ErrRange instead.
func TestBlockRangeEnforced(t *testing.T) {
	s := openC(t, newFakeClock())
	buf := make([]byte, block.Size)
	beyond := uint64(block.MaxBlockNumber+1) * block.Size
	for _, off := range []uint64{beyond, ^uint64(0) - block.Size + 1} {
		if err := s.ReadAt(0, 0, buf, off); !errors.Is(err, ErrRange) {
			t.Errorf("read at %#x: %v", off, err)
		}
		if err := s.WriteAt(0, 0, buf, off); !errors.Is(err, ErrRange) {
			t.Errorf("write at %#x: %v", off, err)
		}
		if _, err := s.Invalidate(0, 0, off, block.Size); !errors.Is(err, ErrRange) {
			t.Errorf("invalidate at %#x: %v", off, err)
		}
	}
	// The last addressable block is still valid geometry (the backend will
	// reject it if the volume is smaller, but never by panicking).
	if err := s.ReadAt(0, 0, buf, beyond-block.Size); errors.Is(err, ErrRange) {
		t.Error("last addressable block rejected as out of range")
	}
}

func TestWriteThroughAndReadBack(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := bytes.Repeat([]byte{0xAB}, 1024)
	if err := s.WriteAt(0, 0, data, 2048); err != nil {
		t.Fatal(err)
	}
	// The backend must already hold the data (write-through).
	got := make([]byte, 1024)
	if err := be.ReadAt(0, 0, got, 2048); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("write did not reach backend")
	}
	// Reading through the store returns the same bytes.
	got2 := make([]byte, 1024)
	if err := s.ReadAt(0, 0, got2, 2048); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, data) {
		t.Error("read mismatch")
	}
}

func TestSieveAdmitsHotBlockAndServesFromCache(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	data := bytes.Repeat([]byte{7}, 512)
	if err := be.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	// Misses 1..3: sieve counts; admission on the 3rd (T1=2 then T2=1).
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("hot block not admitted after 3 misses")
	}
	before := s.Stats()
	// Now mutate the backend directly; a cached read must still serve the
	// cached (coherent, since all writes go through the store) copy.
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.ReadHits != before.ReadHits+1 {
		t.Errorf("read hit not counted: %+v", after)
	}
	if after.BackendReads != before.BackendReads {
		t.Error("cached read still went to backend")
	}
	if !bytes.Equal(buf, data) {
		t.Error("cached read returned wrong data")
	}
}

func TestWriteUpdatesCachedBlock(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("block not cached")
	}
	newData := bytes.Repeat([]byte{0x5A}, 512)
	if err := s.WriteAt(0, 0, newData, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().WriteHits != 1 {
		t.Errorf("write hit not counted: %+v", s.Stats())
	}
	got := make([]byte, 512)
	if err := s.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Error("cached copy stale after write")
	}
}

func TestColdBlocksNeverAdmitted(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	buf := make([]byte, 512)
	for i := uint64(0); i < 50; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, i*512); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.AllocWrites != 0 || st.CachedBlocks != 0 {
		t.Errorf("cold blocks admitted: %+v", st)
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk) // 64-block cache
	buf := make([]byte, 512)
	// Make 80 distinct blocks hot (3 misses each within the window).
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 80; i++ {
			clk.Advance(time.Millisecond)
			if err := s.ReadAt(0, 0, buf, i*512); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.CachedBlocks != 64 {
		t.Errorf("cached = %d, want capacity 64", st.CachedBlocks)
	}
	if st.Evictions < 16 {
		t.Errorf("evictions = %d, want ≥16", st.Evictions)
	}
}

func TestMultiBlockReadMixedHitMiss(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Prepare backend content across 8 blocks.
	content := make([]byte, 8*512)
	for i := range content {
		content[i] = byte(i / 512)
	}
	if err := be.WriteAt(0, 0, content, 0); err != nil {
		t.Fatal(err)
	}
	// Heat up blocks 2 and 5 only.
	buf := make([]byte, 512)
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		if err := s.ReadAt(0, 0, buf, 2*512); err != nil {
			t.Fatal(err)
		}
		if err := s.ReadAt(0, 0, buf, 5*512); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Contains(0, 0, 2*512) || !s.Contains(0, 0, 5*512) {
		t.Fatal("setup failed: blocks not cached")
	}
	// A spanning read must stitch cached and backend runs correctly.
	got := make([]byte, 8*512)
	before := s.Stats()
	if err := s.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Error("mixed hit/miss read returned wrong bytes")
	}
	after := s.Stats()
	if after.ReadHits-before.ReadHits != 2 {
		t.Errorf("hits delta = %d, want 2", after.ReadHits-before.ReadHits)
	}
	// Three missing runs: [0,1], [3,4], [6,7].
	if after.BackendReads-before.BackendReads != 3 {
		t.Errorf("backend reads delta = %d, want 3", after.BackendReads-before.BackendReads)
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	clk := newFakeClock()
	faulty := store.NewFaulty(testBackend())
	s, err := Open(faulty, Options{CacheBytes: 64 * block.Size, SieveC: quickSieve(), Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	faulty.FailReads(true)
	buf := make([]byte, 512)
	if err := s.ReadAt(0, 0, buf, 0); !errors.Is(err, store.ErrInjected) {
		t.Errorf("got %v", err)
	}
	faulty.FailReads(false)
	// The store must remain usable and coherent after the error.
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Errorf("store wedged after backend error: %v", err)
	}
}

func TestVariantDEpochRotation(t *testing.T) {
	clk := newFakeClock()
	be := testBackend()
	s, err := Open(be, Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 5,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Variant() != VariantD {
		t.Fatal("variant")
	}
	seed := bytes.Repeat([]byte{0xEE}, 512)
	if err := be.WriteAt(0, 0, seed, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	// Hot block: 6 accesses (≥ threshold 5). Cold blocks: 1 access each.
	for i := 0; i < 6; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(1); i <= 10; i++ {
		if err := s.ReadAt(0, 0, buf, i*512); err != nil {
			t.Fatal(err)
		}
	}
	// Within the epoch nothing is admitted.
	if st := s.Stats(); st.CachedBlocks != 0 || st.Hits() != 0 {
		t.Fatalf("mid-epoch state: %+v", st)
	}
	// Cross the epoch boundary: the hot block is batch-allocated.
	clk.Advance(61 * time.Minute)
	if err := s.ReadAt(0, 0, buf, 11*512); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Epochs != 1 || st.EpochMoves != 1 || st.CachedBlocks != 1 {
		t.Fatalf("after rotation: %+v", st)
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("hot block not resident")
	}
	// It now serves hits with the correct data.
	if err := s.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, seed) {
		t.Error("epoch-moved block has wrong data")
	}
	if s.Stats().ReadHits != 1 {
		t.Errorf("hit not counted: %+v", s.Stats())
	}
}

func TestVariantDRetainsAcrossEpochs(t *testing.T) {
	clk := newFakeClock()
	s, err := Open(testBackend(), Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 3,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]byte, 512)
	heat := func() {
		for i := 0; i < 4; i++ {
			if err := s.ReadAt(0, 0, buf, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	heat()
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().EpochMoves; got != 1 {
		t.Fatalf("moves = %d", got)
	}
	heat() // hits now, and re-qualifies for the next epoch
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// Retained block must not be re-moved (replacement cancels allocation).
	if st.EpochMoves != 1 {
		t.Errorf("moves = %d, want 1 (retention)", st.EpochMoves)
	}
	if st.Epochs != 2 {
		t.Errorf("epochs = %d", st.Epochs)
	}
}

func TestClosedStoreRejectsIO(t *testing.T) {
	s := openC(t, newFakeClock())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	if err := s.ReadAt(0, 0, buf, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
	if err := s.WriteAt(0, 0, buf, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close: %v", err)
	}
	if err := s.RotateEpoch(); !errors.Is(err, ErrClosed) {
		t.Errorf("rotate after close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	clk := newFakeClock()
	s := openC(t, clk)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, 512)
			for i := 0; i < 200; i++ {
				off := uint64((g*37 + i) % 64 * 512)
				var err error
				if i%3 == 0 {
					err = s.WriteAt(0, 0, buf, off)
				} else {
					err = s.ReadAt(0, 0, buf, off)
				}
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Reads+st.Writes != 8*200 {
		t.Errorf("accesses = %d, want 1600", st.Reads+st.Writes)
	}
}

func TestStatsHitRatio(t *testing.T) {
	var st Stats
	if st.HitRatio() != 0 {
		t.Error("empty ratio")
	}
	st.Reads, st.ReadHits = 10, 5
	st.Writes, st.WriteHits = 10, 5
	if st.HitRatio() != 0.5 || st.Hits() != 10 {
		t.Errorf("ratio = %v", st.HitRatio())
	}
}
