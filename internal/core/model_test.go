package core

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

// TestStoreMatchesReferenceModel drives the Store with a long random
// operation sequence and checks, after every single operation, that reads
// return exactly what a trivial reference model (a flat byte array) says
// they must — regardless of what the cache, the sieve, evictions, epoch
// rotations, or invalidations did in between. This is the library's
// strongest correctness property: caching must never change observable
// contents.
func TestStoreMatchesReferenceModel(t *testing.T) {
	for _, variant := range []Variant{VariantC, VariantD} {
		t.Run(variant.String(), func(t *testing.T) {
			const (
				volBytes = 1 << 18 // 256 KiB playground
				ops      = 4000
			)
			rng := rand.New(rand.NewSource(99))
			clk := newFakeClock()
			be := store.NewMem()
			be.AddVolume(0, 0, volBytes)
			be.AddVolume(1, 1, volBytes)
			opts := Options{
				CacheBytes: 32 * block.Size, // tiny: force constant eviction
				Variant:    variant,
				Now:        clk.Now,
			}
			if variant == VariantC {
				opts.SieveC = sieve.CConfig{IMCTSize: 256, T1: 2, T2: 1, Window: time.Hour, Subwindows: 4}
			} else {
				opts.DThreshold = 2
				opts.Epoch = time.Hour
				opts.SpillDir = t.TempDir()
			}
			st, err := Open(be, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			// Reference contents per volume.
			model := map[[2]int][]byte{
				{0, 0}: make([]byte, volBytes),
				{1, 1}: make([]byte, volBytes),
			}
			vols := [][2]int{{0, 0}, {1, 1}}

			for i := 0; i < ops; i++ {
				v := vols[rng.Intn(len(vols))]
				nBlocks := 1 + rng.Intn(8)
				maxOff := volBytes/block.Size - nBlocks
				off := uint64(rng.Intn(maxOff+1)) * block.Size
				n := nBlocks * block.Size
				clk.Advance(time.Duration(rng.Intn(1000)) * time.Millisecond)
				switch rng.Intn(10) {
				case 0, 1, 2: // write
					data := make([]byte, n)
					rng.Read(data)
					if err := st.WriteAt(v[0], v[1], data, off); err != nil {
						t.Fatalf("op %d write: %v", i, err)
					}
					copy(model[v][off:off+uint64(n)], data)
				case 3: // invalidate
					if _, err := st.Invalidate(v[0], v[1], off, n); err != nil {
						t.Fatalf("op %d invalidate: %v", i, err)
					}
				case 4: // epoch rotation / time jump
					clk.Advance(2 * time.Hour)
					if variant == VariantD {
						if err := st.RotateEpoch(); err != nil {
							t.Fatalf("op %d rotate: %v", i, err)
						}
					}
				default: // read (the common case, and also hot-set traffic)
					if rng.Intn(2) == 0 {
						off = 0 // a popular region so the cache really fills
					}
					got := make([]byte, n)
					if err := st.ReadAt(v[0], v[1], got, off); err != nil {
						t.Fatalf("op %d read: %v", i, err)
					}
					want := model[v][off : off+uint64(n)]
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: read(%d,%d)@%d diverged from model", i, v[0], v[1], off)
					}
				}
				if s := st.Stats(); s.CachedBlocks > s.CapacityBlocks {
					t.Fatalf("op %d: cache over capacity: %+v", i, s)
				}
			}
			// Final sweep: every block of both volumes must match the model.
			for _, v := range vols {
				got := make([]byte, volBytes)
				if err := st.ReadAt(v[0], v[1], got, 0); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, model[v]) {
					t.Fatalf("final sweep diverged on volume %v", v)
				}
			}
			st2 := st.Stats()
			if st2.Hits() == 0 {
				t.Error("model test never hit the cache — workload too cold to be meaningful")
			}
		})
	}
}

// TestStoreCoherentAfterMidRunFaults injects backend failures mid-run and
// checks the store neither wedges nor serves stale/garbage data afterwards.
func TestStoreCoherentAfterMidRunFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	clk := newFakeClock()
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<16)
	faulty := store.NewFaulty(mem)
	st, err := Open(faulty, Options{
		CacheBytes: 16 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 256, T1: 1, T2: 1, Window: time.Hour, Subwindows: 4},
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	model := make([]byte, 1<<16)
	failures := 0
	for i := 0; i < 2000; i++ {
		if rng.Intn(20) == 0 {
			faulty.FailAfter(int64(rng.Intn(3)))
		}
		off := uint64(rng.Intn(120)) * block.Size
		clk.Advance(50 * time.Millisecond)
		if rng.Intn(3) == 0 {
			data := make([]byte, block.Size)
			rng.Read(data)
			if err := st.WriteAt(0, 0, data, off); err != nil {
				failures++
				continue // failed writes may not reach the backend: model unchanged
			}
			copy(model[off:off+block.Size], data)
		} else {
			got := make([]byte, block.Size)
			if err := st.ReadAt(0, 0, got, off); err != nil {
				failures++
				continue
			}
			if !bytes.Equal(got, model[off:off+block.Size]) {
				t.Fatalf("op %d: read diverged after %d injected faults", i, failures)
			}
		}
	}
	if failures == 0 {
		t.Error("fault injection never fired; test is vacuous")
	}
}
