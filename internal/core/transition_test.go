package core

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/block"
	"repro/internal/sieve"
	"repro/internal/store"
)

// openD opens a SieveStore-D store over be with a 1-hour epoch and the
// given threshold, clocked by clk.
func openD(t *testing.T, clk *fakeClock, be Backend, threshold int64, spill string) *Store {
	t.Helper()
	s, err := Open(be, Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: threshold,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   spill,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestConcurrentReadsDuringRotation proves the tentpole property: an epoch
// rotation whose batch fetch is stuck in the backend must not block
// concurrent cache hits or writes. Under the old design the rotation did
// its backend I/O while holding the store mutex, and both probes below
// would time out.
func TestConcurrentReadsDuringRotation(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	gate := newGateBackend(mem)
	clk := newFakeClock()
	st := openD(t, clk, gate, 2, t.TempDir())
	close(gate.release) // gate open for the warm-up phase

	buf := make([]byte, block.Size)
	// Epoch 1: make block 0 hot, rotate it in so later reads of it are hits.
	for i := 0; i < 2; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	clk.Advance(time.Hour + time.Minute)
	if err := st.ReadAt(0, 0, buf, 0); err != nil { // triggers rotation 1
		t.Fatal(err)
	}
	if !st.Contains(0, 0, 0) || st.Stats().Epochs != 1 {
		t.Fatalf("setup: %+v", st.Stats())
	}

	// Epoch 2: make blocks 1 and 2 hot, then close the gate so the next
	// rotation's batch fetch hangs in the backend.
	for i := 0; i < 2; i++ {
		for blk := uint64(1); blk <= 2; blk++ {
			if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
	}
	gate.release = make(chan struct{})
	gate.drain() // discard tokens from the warm-up reads
	clk.Advance(time.Hour)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // this read trips the due rotation and rides it out
		defer wg.Done()
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 3*block.Size); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-gate.entered: // the rotation's batch fetch is now in the air
	case <-time.After(5 * time.Second):
		t.Fatal("rotation never reached the backend")
	}

	// A cache hit must be served while the rotation is stuck.
	hitDone := make(chan struct{})
	go func() {
		defer close(hitDone)
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 0); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-hitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("cache hit blocked behind an in-progress epoch rotation")
	}

	// So must a write-through write to an unrelated block.
	wrDone := make(chan struct{})
	go func() {
		defer close(wrDone)
		if err := st.WriteAt(0, 0, bytes.Repeat([]byte{0x3F}, block.Size), 5*block.Size); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-wrDone:
	case <-time.After(5 * time.Second):
		t.Fatal("write blocked behind an in-progress epoch rotation")
	}

	close(gate.release)
	wg.Wait()
	if st.Stats().Epochs != 2 {
		t.Errorf("epochs = %d, want 2", st.Stats().Epochs)
	}
	if !st.Contains(0, 0, block.Size) || !st.Contains(0, 0, 2*block.Size) {
		t.Error("rotation did not install the new epoch's hot set")
	}
	if st.Contains(0, 0, 0) {
		t.Error("cold block from the previous epoch survived the swap")
	}
}

// TestRotationFailureLeavesStateIntact checks failure-atomicity: a backend
// error during the rotation's batch fetch must leave both the cache
// contents and the spill logs exactly as they were, so a retry after the
// fault clears succeeds using the accumulated counts.
func TestRotationFailureLeavesStateIntact(t *testing.T) {
	mem := testBackend()
	want := bytes.Repeat([]byte{0xA7}, block.Size)
	if err := mem.WriteAt(0, 0, want, 0); err != nil {
		t.Fatal(err)
	}
	faulty := store.NewFaulty(mem)
	clk := newFakeClock()
	st := openD(t, clk, faulty, 2, t.TempDir())

	buf := make([]byte, block.Size)
	// Epoch 1: blocks 0 and 1 become the cached set.
	for i := 0; i < 2; i++ {
		for blk := uint64(0); blk <= 1; blk++ {
			if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
	}
	clk.Advance(time.Hour + time.Minute)
	if err := st.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(0, 0, 0) || !st.Contains(0, 0, block.Size) {
		t.Fatalf("setup: %+v", st.Stats())
	}

	// Epoch 2: block 2 qualifies, but the backend fails mid-rotation.
	for i := 0; i < 2; i++ {
		if err := st.ReadAt(0, 0, buf, 2*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	faulty.FailReads(true)
	clk.Advance(time.Hour)
	// The triggering access is a cache hit: the failed rotation is absorbed
	// (counted, not propagated) and the hit is served from the intact cache.
	if err := st.ReadAt(0, 0, buf, 0); err != nil {
		t.Fatalf("cache hit failed because an unrelated rotation failed: %v", err)
	}
	if !bytes.Equal(buf, want) {
		t.Error("hit served wrong data after failed rotation")
	}
	st1 := st.Stats()
	if st1.RotateFailures != 1 || st1.Epochs != 1 {
		t.Errorf("after failed rotation: RotateFailures=%d Epochs=%d", st1.RotateFailures, st1.Epochs)
	}
	if !st.Contains(0, 0, 0) || !st.Contains(0, 0, block.Size) || st.Contains(0, 0, 2*block.Size) {
		t.Error("failed rotation changed the cache contents")
	}

	// A manual retry with the fault still armed surfaces the error.
	if err := st.RotateEpoch(); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("RotateEpoch with faulty backend = %v, want ErrInjected", err)
	}
	if st.Stats().RotateFailures != 2 {
		t.Errorf("RotateFailures = %d, want 2", st.Stats().RotateFailures)
	}

	// Fault cleared: the retry succeeds off the preserved logs.
	faulty.FailReads(false)
	if err := st.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !st.Contains(0, 0, 2*block.Size) {
		t.Error("retry after fault did not select block 2: epoch logs were lost")
	}
	if st.Stats().Epochs != 2 {
		t.Errorf("Epochs = %d, want 2", st.Stats().Epochs)
	}
}

// TestRotationAbortsWhenEvicteeFlushFails covers the write-back side of
// failure-atomicity: if a dirty block about to be evicted by the swap
// cannot be written back, the rotation must abort with the block still
// dirty and resident (its frame holds the only current copy).
func TestRotationAbortsWhenEvicteeFlushFails(t *testing.T) {
	mem := testBackend()
	faulty := store.NewFaulty(mem)
	clk := newFakeClock()
	s, err := Open(faulty, Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 2,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
		WriteBack:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !s.Contains(0, 0, 0) {
		t.Fatal("setup: block 0 not rotated in")
	}
	// Dirty the resident block, then make a different block the next
	// epoch's selection so the swap wants to evict block 0.
	data := bytes.Repeat([]byte{0x5A}, block.Size)
	if err := s.WriteAt(0, 0, data, 0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().DirtyBlocks != 1 {
		t.Fatalf("setup: %+v", s.Stats())
	}
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, block.Size); err != nil {
			t.Fatal(err)
		}
	}

	faulty.FailWrites(true)
	if err := s.RotateEpoch(); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("RotateEpoch = %v, want ErrInjected from the evictee write-back", err)
	}
	st := s.Stats()
	if st.RotateFailures != 1 || st.Epochs != 1 {
		t.Errorf("RotateFailures=%d Epochs=%d", st.RotateFailures, st.Epochs)
	}
	if !s.Contains(0, 0, 0) || st.DirtyBlocks != 1 {
		t.Fatal("aborted rotation evicted (or cleaned) the unflushed dirty block")
	}

	// Fault cleared: the rotation completes, flushing the evictee first.
	faulty.FailWrites(false)
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if s.Contains(0, 0, 0) || !s.Contains(0, 0, block.Size) {
		t.Error("retried rotation did not install the new set")
	}
	got := make([]byte, block.Size)
	if err := mem.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("evicted dirty block never reached the backend")
	}
	if s.Stats().DirtyBlocks != 0 {
		t.Error("dirty block survived the successful rotation")
	}
}

// TestRestartResumesEpochLogs: with a caller-supplied spill directory the
// epoch access counts are durable state — a store reopened over the same
// directory must select blocks whose accesses happened before the restart.
func TestRestartResumesEpochLogs(t *testing.T) {
	dir := t.TempDir()
	be := testBackend()
	clk := newFakeClock()
	st := openD(t, clk, be, 2, dir)
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := st.ReadAt(0, 0, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openD(t, clk, be, 2, dir)
	if err := st2.RotateEpoch(); err != nil {
		t.Fatal(err)
	}
	if !st2.Contains(0, 0, 0) {
		t.Fatal("epoch access counts were lost across the restart")
	}
}

// TestSnapshotSaveUnderConcurrentWrites takes snapshots while writers
// hammer the store (write-back, so the save also drains dirty blocks
// concurrently). Every writer writes whole uniform blocks, so any torn
// frame copy in the snapshot shows up as a non-uniform block on restore.
func TestSnapshotSaveUnderConcurrentWrites(t *testing.T) {
	const writers = 4
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	st, err := Open(mem, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve(), WriteBack: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, block.Size)
			for v := byte(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				for i := range buf {
					buf[i] = v
				}
				blk := uint64(w*8) + uint64(v%8)
				if err := st.WriteAt(0, 0, buf, blk*block.Size); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	// Let the writers populate the cache before the first save.
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().CachedBlocks < 16 {
		if time.Now().After(deadline) {
			t.Fatal("writers never populated the cache")
		}
		time.Sleep(time.Millisecond)
	}
	var snap bytes.Buffer
	for i := 0; i < 5; i++ {
		snap.Reset()
		if err := st.SaveSnapshot(&snap); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	st2, err := Open(mem, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if err := st2.LoadSnapshot(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	if st2.Stats().CachedBlocks == 0 {
		t.Fatal("snapshot restored nothing; test ineffective")
	}
	got := make([]byte, block.Size)
	for blk := uint64(0); blk < writers*8; blk++ {
		if err := st2.ReadAt(0, 0, got, blk*block.Size); err != nil {
			t.Fatal(err)
		}
		for _, b := range got {
			if b != got[0] {
				t.Fatalf("block %d restored torn (mixed %d and %d): snapshot copied a frame mid-write", blk, got[0], b)
			}
		}
	}
}

// TestVictimFlushFailureDoesNotFailRead: a read whose admission would
// evict a dirty block must not fail (or lose data) when that victim's
// write-back fails — the victim stays dirty and resident, the failure is
// counted, and the read is served.
func TestVictimFlushFailureDoesNotFailRead(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	want := bytes.Repeat([]byte{0xC3}, block.Size)
	if err := mem.WriteAt(0, 0, want, 10*block.Size); err != nil {
		t.Fatal(err)
	}
	faulty := store.NewFaulty(mem)
	st, err := Open(faulty, Options{CacheBytes: 4 * block.Size, SieveC: smallSieve(), WriteBack: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Fill the 4-block cache with dirty blocks (smallSieve admits on the
	// first miss, and admitted write-back writes never reach the backend).
	for blk := uint64(0); blk < 4; blk++ {
		data := bytes.Repeat([]byte{byte(blk + 1)}, block.Size)
		if err := st.WriteAt(0, 0, data, blk*block.Size); err != nil {
			t.Fatal(err)
		}
	}
	if s := st.Stats(); s.DirtyBlocks != 4 || s.BackendWrites != 0 {
		t.Fatalf("setup: %+v", s)
	}

	faulty.FailWrites(true)
	got := make([]byte, block.Size)
	if err := st.ReadAt(0, 0, got, 10*block.Size); err != nil {
		t.Fatalf("read failed because an unrelated victim's flush failed: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Error("read served wrong data")
	}
	s := st.Stats()
	if s.FlushErrors != 1 {
		t.Errorf("FlushErrors = %d, want 1", s.FlushErrors)
	}
	if s.DirtyBlocks != 4 {
		t.Errorf("DirtyBlocks = %d, want 4 (victim must stay dirty)", s.DirtyBlocks)
	}
	if !st.Contains(0, 0, 0) {
		t.Error("dirty victim was evicted despite its failed write-back")
	}
	if st.Contains(0, 0, 10*block.Size) {
		t.Error("new block was installed over an unflushable victim")
	}

	// Fault cleared: nothing was lost.
	faulty.FailWrites(false)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadAt(0, 0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, block.Size)) {
		t.Error("dirty victim's data lost")
	}
}

// TestAwaitFlightAdmitsWithFreshTimestamp: a coalesced reader that ends up
// re-fetching (because the flight it joined failed) consults the sieve
// after an arbitrarily long wait. It must use the post-wait clock — with
// the pre-block timestamp the sieve would see an access inside a window
// that has in fact long expired, and wrongly admit.
func TestAwaitFlightAdmitsWithFreshTimestamp(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	flaky := &nthFailBackend{Backend: mem, failCall: 2}
	gate := newGateBackend(flaky)
	clk := newFakeClock()
	// T1=1,T2=2 with a 1 h window: the 1st miss warms the sieve; a 2nd
	// consultation within the window admits, after the window it does not.
	st, err := Open(gate, Options{
		CacheBytes: 64 * block.Size,
		SieveC:     sieve.CConfig{IMCTSize: 1 << 12, T1: 1, T2: 2, Window: time.Hour, Subwindows: 4},
		Now:        clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	buf := make([]byte, block.Size)
	go func() { <-gate.entered; close(gate.release) }()
	if err := st.ReadAt(0, 0, buf, 0); err != nil { // 1st miss: sieve warms
		t.Fatal(err)
	}
	gate.release = make(chan struct{})

	// Leader misses and parks in the backend; its fetch will fail.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 0); !errors.Is(err, store.ErrInjected) {
			t.Errorf("leader: %v, want ErrInjected", err)
		}
	}()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the backend")
	}
	// Follower joins the leader's flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 0); err != nil { // re-fetches, succeeds
			t.Errorf("follower: %v", err)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().CoalescedReads < 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never coalesced")
		}
		time.Sleep(time.Millisecond)
	}

	// The sieve window expires while both callers are parked.
	clk.Advance(2 * time.Hour)
	close(gate.release)
	wg.Wait()

	if st.Contains(0, 0, 0) {
		t.Error("re-fetch admitted with a stale pre-wait timestamp: the sieve window had expired")
	}
}

// gateWriteBackend blocks every WriteAt until released; reads pass
// through. It lets tests hold a backend write "in the air" while the
// store does something else.
type gateWriteBackend struct {
	store.Backend
	entered chan struct{}
	release chan struct{}
}

func (g *gateWriteBackend) WriteAt(server, volume int, p []byte, off uint64) error {
	g.entered <- struct{}{}
	<-g.release
	return g.Backend.WriteAt(server, volume, p, off)
}

// TestWriteDuringRotationNotOverwrittenByStaleFetch: in write-back mode a
// write to a non-resident block goes straight to the backend while its
// reservation sits in the in-flight table. If an epoch rotation's batch
// fetch read the block's old contents and its commit runs before the
// writer re-acquires the lock, the commit must not install the pre-write
// copy — unlike write-through, the write-back path never folds
// through-written data into the cache afterwards, so a stale install
// would serve old data until the next epoch.
func TestWriteDuringRotationNotOverwrittenByStaleFetch(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)
	old := bytes.Repeat([]byte{0x11}, block.Size)
	if err := mem.WriteAt(0, 0, old, 7*block.Size); err != nil {
		t.Fatal(err)
	}
	gate := &gateWriteBackend{
		Backend: mem,
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	clk := newFakeClock()
	s, err := Open(gate, Options{
		CacheBytes: 64 * block.Size,
		Variant:    VariantD,
		DThreshold: 2,
		Epoch:      time.Hour,
		Now:        clk.Now,
		SpillDir:   t.TempDir(),
		WriteBack:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Make block 7 hot so the next rotation selects it (VariantD admits
	// only at epoch boundaries, so it is not resident yet).
	buf := make([]byte, block.Size)
	for i := 0; i < 2; i++ {
		if err := s.ReadAt(0, 0, buf, 7*block.Size); err != nil {
			t.Fatal(err)
		}
	}

	// Park a write to block 7 in the backend, its reservation still held.
	newData := bytes.Repeat([]byte{0x22}, block.Size)
	done := make(chan error, 1)
	go func() { done <- s.WriteAt(0, 0, newData, 7*block.Size) }()
	select {
	case <-gate.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("write never reached the backend")
	}

	// Rotate while the write is in the air: the batch fetch reads the old
	// contents from the backend; the commit must skip the reserved key.
	if err := s.RotateEpoch(); err != nil {
		t.Fatal(err)
	}

	close(gate.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	got := make([]byte, block.Size)
	if err := s.ReadAt(0, 0, got, 7*block.Size); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, newData) {
		t.Fatal("read served the rotation's pre-write fetched copy: stale data")
	}
}

// TestLoadSnapshotWaitsForRotation: a snapshot load arriving while an
// epoch rotation is staging must wait for the rotation's commit — the
// commit's tag swap was computed before the load and would otherwise
// evict most of the just-restored (trusted) set.
func TestLoadSnapshotWaitsForRotation(t *testing.T) {
	mem := store.NewMem()
	mem.AddVolume(0, 0, 1<<20)

	// Build a snapshot of blocks 10..13 with a scratch store.
	src, err := Open(mem, Options{CacheBytes: 64 * block.Size, SieveC: smallSieve()})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, block.Size)
	for blk := uint64(10); blk <= 13; blk++ {
		for i := 0; i < 3; i++ {
			if err := src.ReadAt(0, 0, buf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
		if !src.Contains(0, 0, blk*block.Size) {
			t.Fatalf("setup: block %d not admitted", blk)
		}
	}
	var snap bytes.Buffer
	if err := src.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}

	gate := newGateBackend(mem)
	clk := newFakeClock()
	st := openD(t, clk, gate, 2, t.TempDir())
	close(gate.release) // gate open for the warm-up phase

	// Epoch 1: blocks 1 and 2 get hot.
	for i := 0; i < 2; i++ {
		for blk := uint64(1); blk <= 2; blk++ {
			if err := st.ReadAt(0, 0, buf, blk*block.Size); err != nil {
				t.Fatal(err)
			}
		}
	}
	gate.release = make(chan struct{})
	gate.drain()
	clk.Advance(time.Hour + time.Minute)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // trips the due rotation and rides it out
		defer wg.Done()
		b := make([]byte, block.Size)
		if err := st.ReadAt(0, 0, b, 3*block.Size); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-gate.entered: // the rotation's batch fetch is now in the air
	case <-time.After(5 * time.Second):
		t.Fatal("rotation never reached the backend")
	}

	// Load the snapshot while the rotation is staging.
	loadDone := make(chan error, 1)
	go func() { loadDone <- st.LoadSnapshot(bytes.NewReader(snap.Bytes())) }()

	// Give a buggy load a chance to install before the rotation commits,
	// then let the rotation (and with it the load) finish.
	time.Sleep(20 * time.Millisecond)
	close(gate.release)
	wg.Wait()
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}

	for blk := uint64(10); blk <= 13; blk++ {
		if !st.Contains(0, 0, blk*block.Size) {
			t.Fatalf("snapshot block %d was discarded by the concurrent rotation's commit", blk)
		}
	}
}

// nthFailBackend fails exactly its n-th ReadAt (1-based), passing all
// other requests through.
type nthFailBackend struct {
	store.Backend
	mu       sync.Mutex
	calls    int
	failCall int
}

func (b *nthFailBackend) ReadAt(server, volume int, p []byte, off uint64) error {
	b.mu.Lock()
	b.calls++
	fail := b.calls == b.failCall
	b.mu.Unlock()
	if fail {
		return store.ErrInjected
	}
	return b.Backend.ReadAt(server, volume, p, off)
}
