package resilience

import (
	"fmt"
	"sync"
	"time"
)

// ioBufs recycles the private transfer buffers the deadline wrapper I/Os
// through. Buffers abandoned by a timed-out request stay referenced by
// the straggling goroutine and are dropped to the GC when it finishes —
// never recycled while a hung backend might still be writing into them.
var ioBufs = sync.Pool{New: func() any { b := make([]byte, 0, 64<<10); return &b }}

func getBuf(n int) []byte {
	bp := ioBufs.Get().(*[]byte)
	if cap(*bp) < n {
		return make([]byte, n)
	}
	return (*bp)[:n]
}

func putBuf(b []byte) {
	b = b[:0]
	ioBufs.Put(&b)
}

// DeadlineBackend bounds every request to the wrapped Backend with a
// fixed timeout. A request that misses its deadline returns
// ErrBackendTimeout (wrapped in a DeviceError); the backend call itself
// is abandoned, not cancelled — the Backend interface has no cancellation
// — so each timeout leaks one goroutine until the device finally answers.
// That is the correct trade: the alternative is the caller (and, in the
// SieveStore core, every reader coalesced onto its in-flight entry)
// hanging with it.
//
// Reads and writes go through a private copy of the caller's buffer, so a
// late-completing request can never scribble into memory the caller has
// already reused.
type DeadlineBackend struct {
	backend Backend
	timeout time.Duration
}

// WithDeadline wraps backend with a per-request timeout. A timeout ≤ 0
// returns backend unchanged (deadlines disabled).
func WithDeadline(backend Backend, timeout time.Duration) Backend {
	if timeout <= 0 {
		return backend
	}
	return &DeadlineBackend{backend: backend, timeout: timeout}
}

// outcome carries a completed call's result and its transfer buffer (so
// the receiver can recycle it; abandoned outcomes are left to the GC).
type outcome struct {
	err error
	buf []byte
}

// ReadAt implements Backend.
func (d *DeadlineBackend) ReadAt(server, volume int, p []byte, off uint64) error {
	buf := getBuf(len(p))
	done := make(chan outcome, 1) // buffered: the straggler never blocks
	go func() {
		err := d.backend.ReadAt(server, volume, buf, off)
		done <- outcome{err: err, buf: buf}
	}()
	t := time.NewTimer(d.timeout)
	defer t.Stop()
	select {
	case out := <-done:
		if out.err == nil {
			copy(p, out.buf)
		}
		putBuf(out.buf)
		return out.err
	case <-t.C:
		return &DeviceError{Server: server, Volume: volume,
			Err: fmt.Errorf("read %d bytes at %d: %w", len(p), off, ErrBackendTimeout)}
	}
}

// WriteAt implements Backend.
func (d *DeadlineBackend) WriteAt(server, volume int, p []byte, off uint64) error {
	buf := getBuf(len(p))
	copy(buf, p)
	done := make(chan outcome, 1)
	go func() {
		err := d.backend.WriteAt(server, volume, buf, off)
		done <- outcome{err: err, buf: buf}
	}()
	t := time.NewTimer(d.timeout)
	defer t.Stop()
	select {
	case out := <-done:
		putBuf(out.buf)
		return out.err
	case <-t.C:
		return &DeviceError{Server: server, Volume: volume,
			Err: fmt.Errorf("write %d bytes at %d: %w", len(p), off, ErrBackendTimeout)}
	}
}
