package resilience

import (
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy retries transient failures with capped exponential backoff
// and full jitter. The zero value retries nothing.
type RetryPolicy struct {
	// Max is the retry budget per operation: how many attempts may follow
	// the first (0 = never retry).
	Max int
	// Base is the backoff before the first retry (default 10 ms when Max
	// > 0); attempt n waits up to Base·2ⁿ.
	Base time.Duration
	// Cap bounds any single backoff (default 1 s).
	Cap time.Duration
	// Sleep is injectable for tests; nil means time.Sleep.
	Sleep func(time.Duration)
	// Rand is injectable for tests: a uniform [0,1) source; nil means a
	// locked package-level source.
	Rand func() float64
}

// withDefaults fills the unset knobs.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Max > 0 && p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = time.Second
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Rand == nil {
		p.Rand = lockedFloat64
	}
	return p
}

var randMu sync.Mutex

// lockedFloat64 is math/rand's global Float64 under a private lock (the
// global source is already locked, but keeping our own makes the
// dependency explicit and swappable).
func lockedFloat64() float64 {
	randMu.Lock()
	defer randMu.Unlock()
	return rand.Float64()
}

// backoff returns the jittered delay before retry attempt n (0-based):
// uniform in (0, min(Cap, Base·2ⁿ)]. Full jitter desynchronizes the
// retry herds of concurrent requests that failed together.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Base << uint(n)
	if d <= 0 || d > p.Cap {
		d = p.Cap
	}
	j := time.Duration(p.Rand() * float64(d))
	if j <= 0 {
		j = time.Nanosecond
	}
	return j
}

// Do runs op, retrying transient failures until it succeeds, fails
// permanently, or exhausts the budget. The last error is returned.
func (p RetryPolicy) Do(op func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil || attempt >= p.Max || !Transient(err) {
			return err
		}
		p.Sleep(p.backoff(attempt))
	}
}
