package resilience

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// Config composes the full fault-tolerant I/O stack for Wrap.
type Config struct {
	// Timeout bounds each backend request attempt (0 = no deadline).
	Timeout time.Duration
	// Retry is the per-op retry policy (zero value = no retries).
	Retry RetryPolicy
	// Breaker configures the per-(server, volume) circuit breakers; set
	// Threshold to a negative value to disable breaking entirely.
	Breaker BreakerConfig
}

// devKey identifies one volume of the ensemble.
type devKey struct{ server, volume int }

// Resilient is a Backend hardened with deadlines, retries, and
// per-device circuit breakers (see the package comment). It is safe for
// concurrent use and adds two atomic loads and one small mutex hold per
// request on the happy path.
type Resilient struct {
	inner Backend // deadline-wrapped
	cfg   Config

	mu       sync.Mutex
	breakers map[devKey]*Breaker

	retries   atomic.Int64
	timeouts  atomic.Int64
	fastFails atomic.Int64
	transient atomic.Int64
	permanent atomic.Int64
}

// Wrap hardens backend with cfg. The layering per request is: breaker
// check → [attempt with deadline → breaker record] → classify → maybe
// back off and repeat. Every attempt (not just every op) feeds the
// breaker, so a device failing mid-retry trips as fast as one failing
// distinct requests.
func Wrap(backend Backend, cfg Config) *Resilient {
	cfg.Retry = cfg.Retry.withDefaults()
	cfg.Breaker = cfg.Breaker.withDefaults()
	return &Resilient{
		inner:    WithDeadline(backend, cfg.Timeout),
		cfg:      cfg,
		breakers: make(map[devKey]*Breaker),
	}
}

// breaker returns (creating on first use) the device's breaker.
func (r *Resilient) breaker(server, volume int) *Breaker {
	k := devKey{server, volume}
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.breakers[k]
	if !ok {
		b = NewBreaker(r.cfg.Breaker)
		r.breakers[k] = b
	}
	return b
}

// do runs one op under the breaker + retry envelope.
func (r *Resilient) do(server, volume int, op func() error) error {
	br := r.breaker(server, volume)
	var err error
	for attempt := 0; ; attempt++ {
		if aerr := br.Allow(); aerr != nil {
			r.fastFails.Add(1)
			return &DeviceError{Server: server, Volume: volume, Err: aerr}
		}
		err = op()
		br.Record(err)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrBackendTimeout) {
			r.timeouts.Add(1)
		}
		if !Transient(err) {
			r.permanent.Add(1)
			return err
		}
		r.transient.Add(1)
		if attempt >= r.cfg.Retry.Max {
			return err
		}
		r.retries.Add(1)
		r.cfg.Retry.Sleep(r.cfg.Retry.backoff(attempt))
	}
}

// ReadAt implements Backend.
func (r *Resilient) ReadAt(server, volume int, p []byte, off uint64) error {
	return r.do(server, volume, func() error {
		return r.inner.ReadAt(server, volume, p, off)
	})
}

// WriteAt implements Backend.
func (r *Resilient) WriteAt(server, volume int, p []byte, off uint64) error {
	return r.do(server, volume, func() error {
		return r.inner.WriteAt(server, volume, p, off)
	})
}

// Snapshot is a point-in-time copy of the layer's counters.
type Snapshot struct {
	Retries          int64 // attempts issued beyond each op's first
	Timeouts         int64 // attempts abandoned at their deadline
	BreakerFastFails int64 // requests rejected without touching the device
	BreakerTrips     int64 // closed/half-open → open transitions, all devices
	OpenDevices      int   // breakers currently fast-failing
	TransientErrors  int64 // attempt failures classified retryable
	PermanentErrors  int64 // op failures classified permanent
	// Transitions accumulates every breaker state-machine edge across all
	// devices (monotonic; see BreakerTransitions).
	Transitions BreakerTransitions
}

// Stats snapshots the layer's counters.
func (r *Resilient) Stats() Snapshot {
	s := Snapshot{
		Retries:          r.retries.Load(),
		Timeouts:         r.timeouts.Load(),
		BreakerFastFails: r.fastFails.Load(),
		TransientErrors:  r.transient.Load(),
		PermanentErrors:  r.permanent.Load(),
	}
	r.mu.Lock()
	brs := make([]*Breaker, 0, len(r.breakers))
	for _, b := range r.breakers {
		brs = append(brs, b)
	}
	r.mu.Unlock()
	for _, b := range brs {
		s.BreakerTrips += b.Trips()
		s.Transitions.add(b.Transitions())
		if b.Open() {
			s.OpenDevices++
		}
	}
	return s
}
