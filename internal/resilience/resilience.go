// Package resilience is the fault-tolerant I/O layer between the
// SieveStore core and its storage ensemble. It wraps any Backend with,
// from the inside out:
//
//   - per-request deadlines — a hung origin volume returns
//     ErrBackendTimeout instead of wedging the caller (and every
//     coalesced waiter parked behind its in-flight entry);
//   - a retry policy — transient failures (timeouts, connection resets,
//     errors that declare themselves retryable) are retried with capped
//     exponential backoff and jitter under a per-op attempt budget, while
//     permanent errors fail fast;
//   - per-(server, volume) circuit breakers — a device that keeps
//     failing trips its breaker and fast-fails subsequent requests with
//     ErrCircuitOpen instead of eating the full timeout on every one,
//     with half-open probing to detect recovery.
//
// Use Wrap to compose all three; each layer is also usable alone.
package resilience

import (
	"errors"
	"fmt"
)

// Backend matches core.Backend / store.Backend structurally: a
// byte-addressable multi-volume storage ensemble.
type Backend interface {
	ReadAt(server, volume int, p []byte, off uint64) error
	WriteAt(server, volume int, p []byte, off uint64) error
}

// ErrBackendTimeout reports a backend request abandoned at its deadline.
// The request may still complete on the device; the caller's buffer is
// untouched either way (the deadline wrapper I/Os through a private copy).
var ErrBackendTimeout = errors.New("resilience: backend request timed out")

// ErrCircuitOpen reports a request fast-failed because its device's
// circuit breaker is open (the device recently failed repeatedly and has
// not yet passed a recovery probe).
var ErrCircuitOpen = errors.New("resilience: circuit open")

// transient tags an error as retryable for Transient(). Any layer can
// mark its own error types by implementing `Transient() bool`;
// classification composes across wrapping layers via errors.Unwrap.
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() error   { return e.err }
func (e transientErr) Transient() bool { return true }

// MarkTransient wraps err so Transient reports it retryable. A nil err
// stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err}
}

// Transient classifies err: true means a retry may succeed (the failure
// was a timeout or declared itself transient), false means retrying is
// wasted work (the device rejected the request deterministically — bad
// geometry, unknown volume, data error). Unknown errors classify as
// permanent: retrying a misdirected write is worse than failing it.
//
// An error anywhere in the Unwrap chain can decide: the first
// `Transient() bool` method wins; otherwise a true `Timeout() bool`
// (net.Error and friends) means transient.
func Transient(err error) bool {
	for e := err; e != nil; e = errors.Unwrap(e) {
		if e == ErrBackendTimeout {
			return true
		}
		if t, ok := e.(interface{ Transient() bool }); ok {
			return t.Transient()
		}
		if t, ok := e.(interface{ Timeout() bool }); ok && t.Timeout() {
			return true
		}
	}
	return false
}

// DeviceError wraps a backend failure with the device it came from, so
// ensemble-level callers can tell which of the 13 servers is sick.
type DeviceError struct {
	Server, Volume int
	Err            error
}

// Error implements error.
func (e *DeviceError) Error() string {
	return fmt.Sprintf("device %d:%d: %v", e.Server, e.Volume, e.Err)
}

// Unwrap exposes the underlying failure (preserving its classification).
func (e *DeviceError) Unwrap() error { return e.Err }
