package resilience

import (
	"bytes"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingBackend hangs every request on a channel until released.
type blockingBackend struct {
	release chan struct{}
	entered atomic.Int64
}

func (b *blockingBackend) ReadAt(server, volume int, p []byte, off uint64) error {
	b.entered.Add(1)
	<-b.release
	for i := range p {
		p[i] = 0xAB
	}
	return nil
}

func (b *blockingBackend) WriteAt(server, volume int, p []byte, off uint64) error {
	b.entered.Add(1)
	<-b.release
	return nil
}

// scriptBackend fails according to a per-call error script (nil = ok).
type scriptBackend struct {
	mu     sync.Mutex
	script []error
	calls  int
	data   byte // fill for successful reads
}

func (s *scriptBackend) next() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.calls < len(s.script) {
		err = s.script[s.calls]
	}
	s.calls++
	return err
}

func (s *scriptBackend) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptBackend) ReadAt(server, volume int, p []byte, off uint64) error {
	if err := s.next(); err != nil {
		return err
	}
	for i := range p {
		p[i] = s.data
	}
	return nil
}

func (s *scriptBackend) WriteAt(server, volume int, p []byte, off uint64) error {
	return s.next()
}

func TestDeadlineTimesOutHungRead(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{})}
	defer close(bb.release)
	d := WithDeadline(bb, 20*time.Millisecond)
	p := make([]byte, 16)
	start := time.Now()
	err := d.ReadAt(3, 0, p, 512)
	if !errors.Is(err, ErrBackendTimeout) {
		t.Fatalf("err = %v, want ErrBackendTimeout", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("timeout took %v", el)
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Server != 3 {
		t.Fatalf("err = %v, want DeviceError for server 3", err)
	}
	if !Transient(err) {
		t.Fatal("timeout should classify transient")
	}
}

func TestDeadlineAbandonedReadCannotScribble(t *testing.T) {
	bb := &blockingBackend{release: make(chan struct{})}
	d := WithDeadline(bb, 10*time.Millisecond)
	p := make([]byte, 32)
	if err := d.ReadAt(0, 0, p, 0); !errors.Is(err, ErrBackendTimeout) {
		t.Fatalf("err = %v, want timeout", err)
	}
	// Let the straggler complete: it must write into its private copy,
	// never the caller's (possibly reused) buffer.
	close(bb.release)
	for i := 0; i < 100 && bb.entered.Load() < 1; i++ {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if !bytes.Equal(p, make([]byte, 32)) {
		t.Fatal("late completion scribbled into the caller's buffer")
	}
}

func TestDeadlinePassthroughAndSuccess(t *testing.T) {
	sb := &scriptBackend{data: 7}
	if d := WithDeadline(sb, 0); d != Backend(sb) {
		t.Fatal("timeout 0 should return the backend unchanged")
	}
	d := WithDeadline(sb, time.Second)
	p := make([]byte, 8)
	if err := d.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if p[0] != 7 || p[7] != 7 {
		t.Fatalf("read did not copy out: %v", p)
	}
}

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{MarkTransient(errors.New("flaky")), true},
		{ErrBackendTimeout, true},
		{&DeviceError{Err: ErrBackendTimeout}, true},
		{ErrCircuitOpen, false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	flaky := MarkTransient(errors.New("blip"))
	sb := &scriptBackend{script: []error{flaky, flaky, nil}}
	var slept int
	p := RetryPolicy{Max: 3, Base: time.Millisecond, Sleep: func(time.Duration) { slept++ }}
	err := p.Do(func() error { return sb.next() })
	if err != nil {
		t.Fatalf("err = %v, want nil after retries", err)
	}
	if sb.Calls() != 3 || slept != 2 {
		t.Fatalf("calls=%d slept=%d, want 3/2", sb.Calls(), slept)
	}
}

func TestRetryFailsFastOnPermanent(t *testing.T) {
	perm := errors.New("volume does not exist")
	sb := &scriptBackend{script: []error{perm, nil}}
	p := RetryPolicy{Max: 5, Base: time.Millisecond, Sleep: func(time.Duration) { t.Fatal("slept on a permanent error") }}
	if err := p.Do(func() error { return sb.next() }); !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the permanent error", err)
	}
	if sb.Calls() != 1 {
		t.Fatalf("calls=%d, want exactly 1", sb.Calls())
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	flaky := MarkTransient(errors.New("blip"))
	sb := &scriptBackend{script: []error{flaky, flaky, flaky, flaky, flaky}}
	p := RetryPolicy{Max: 2, Base: time.Millisecond, Sleep: func(time.Duration) {}}
	if err := p.Do(func() error { return sb.next() }); !errors.Is(err, flaky) {
		t.Fatalf("err = %v, want the transient error after budget", err)
	}
	if sb.Calls() != 3 { // 1 + 2 retries
		t.Fatalf("calls=%d, want 3", sb.Calls())
	}
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: 4, OpenFor: time.Second, Now: clock})

	fail := errors.New("dead device")
	// Three failures within the window trip it.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d: %v", i, err)
		}
		b.Record(fail)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after trip: Allow = %v, want ErrCircuitOpen", err)
	}
	if !b.Open() || b.Trips() != 1 {
		t.Fatalf("open=%v trips=%d, want true/1", b.Open(), b.Trips())
	}

	// Cool-down elapses → half-open: exactly one probe allowed.
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second concurrent probe allowed, want ErrCircuitOpen")
	}

	// Probe fails → re-open.
	b.Record(fail)
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatal("failed probe should re-open the circuit")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips=%d, want 2", b.Trips())
	}

	// Next cool-down: probe succeeds → closed, and one later failure does
	// not immediately re-trip (the window restarted).
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(nil)
	if b.Open() {
		t.Fatal("successful probe should close the circuit")
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed-after-recovery breaker rejected: %v", err)
	}
	b.Record(fail)
	if err := b.Allow(); err != nil {
		t.Fatalf("one failure after recovery re-tripped: %v", err)
	}
	b.Record(nil)
}

func TestBreakerToleratesIsolatedFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: 6})
	fail := MarkTransient(errors.New("blip"))
	// Alternate failure/success: never 3 failures in the last 6.
	for i := 0; i < 20; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("breaker tripped on isolated failures at i=%d", i)
		}
		if i%3 == 0 {
			b.Record(fail)
		} else {
			b.Record(nil)
		}
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: -1})
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("disabled breaker rejected a request")
		}
		b.Record(errors.New("fail"))
	}
}

func TestWrapRetriesAndCountsTimeouts(t *testing.T) {
	flaky := MarkTransient(errors.New("blip"))
	sb := &scriptBackend{script: []error{flaky, nil}, data: 9}
	r := Wrap(sb, Config{
		Retry:   RetryPolicy{Max: 2, Base: time.Millisecond, Sleep: func(time.Duration) {}},
		Breaker: BreakerConfig{Threshold: 5},
	})
	p := make([]byte, 4)
	if err := r.ReadAt(0, 0, p, 0); err != nil {
		t.Fatalf("read: %v", err)
	}
	if p[0] != 9 {
		t.Fatalf("read data %v", p)
	}
	s := r.Stats()
	if s.Retries != 1 || s.TransientErrors != 1 || s.PermanentErrors != 0 {
		t.Fatalf("stats = %+v, want 1 retry / 1 transient", s)
	}
}

func TestWrapDeadDeviceFastFails(t *testing.T) {
	dead := MarkTransient(errors.New("no response"))
	var script []error
	for i := 0; i < 100; i++ {
		script = append(script, dead)
	}
	sb := &scriptBackend{script: script}
	now := time.Unix(0, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	r := Wrap(sb, Config{
		Retry:   RetryPolicy{Max: 1, Base: time.Millisecond, Sleep: func(time.Duration) {}},
		Breaker: BreakerConfig{Threshold: 4, OpenFor: time.Minute, Now: clock},
	})
	p := make([]byte, 4)
	// Drive until the breaker trips, then verify fast-fail without
	// touching the backend.
	for i := 0; i < 4; i++ {
		r.ReadAt(1, 2, p, 0)
	}
	calls := sb.Calls()
	err := r.ReadAt(1, 2, p, 0)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if sb.Calls() != calls {
		t.Fatal("fast-fail touched the backend")
	}
	var de *DeviceError
	if !errors.As(err, &de) || de.Server != 1 || de.Volume != 2 {
		t.Fatalf("err = %v, want DeviceError 1:2", err)
	}
	s := r.Stats()
	if s.BreakerFastFails == 0 || s.BreakerTrips == 0 || s.OpenDevices != 1 {
		t.Fatalf("stats = %+v, want fast-fails/trips/open", s)
	}
	// A healthy other device is unaffected.
	healthy := &scriptBackend{data: 3}
	r2 := Wrap(healthy, Config{Breaker: BreakerConfig{Threshold: 4, Now: clock}})
	if err := r2.ReadAt(9, 9, p, 0); err != nil {
		t.Fatalf("healthy device: %v", err)
	}
	// And on the same wrapper, a different device's breaker is separate.
	if err := r.WriteAt(5, 5, p, 0); err != nil {
		// scriptBackend's shared script still yields `dead` — but it must
		// NOT be a circuit-open error: the 5:5 breaker is closed.
		if errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("device 5:5 shares 1:2's breaker: %v", err)
		}
	}
}

func TestWrapConcurrentSmoke(t *testing.T) {
	flaky := MarkTransient(errors.New("blip"))
	script := make([]error, 0, 600)
	for i := 0; i < 600; i++ {
		if i%7 == 0 {
			script = append(script, flaky)
		} else {
			script = append(script, nil)
		}
	}
	sb := &scriptBackend{script: script}
	r := Wrap(sb, Config{
		Timeout: time.Second,
		Retry:   RetryPolicy{Max: 2, Base: time.Microsecond},
		Breaker: BreakerConfig{Threshold: 50},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := make([]byte, 8)
			for i := 0; i < 50; i++ {
				r.ReadAt(g%3, 0, p, uint64(i)*512)
				r.WriteAt(g%3, 0, p, uint64(i)*512)
			}
		}(g)
	}
	wg.Wait()
	r.Stats() // must not race
}
