package resilience

import (
	"errors"
	"testing"
	"time"
)

// TestBreakerTransitionCounters walks the breaker through every edge of
// its state machine and checks each transition is counted exactly once
// per traversal — the monotonic counters /metrics exports as
// sievestore_resilience_breaker_transitions_*.
func TestBreakerTransitionCounters(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	b := NewBreaker(BreakerConfig{Threshold: 3, Window: 4, OpenFor: time.Second, Now: clock})
	fail := errors.New("dead device")

	if tr := b.Transitions(); tr != (BreakerTransitions{}) {
		t.Fatalf("fresh breaker has transitions %+v", tr)
	}

	// closed → open.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed Allow: %v", err)
		}
		b.Record(fail)
	}
	want := BreakerTransitions{ClosedOpen: 1}
	if tr := b.Transitions(); tr != want {
		t.Fatalf("after trip: %+v, want %+v", tr, want)
	}

	// open → half-open (cool-down expiry), then the probe fails:
	// half-open → open.
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	b.Record(fail)
	want = BreakerTransitions{ClosedOpen: 1, OpenHalfOpen: 1, HalfOpenOpen: 1}
	if tr := b.Transitions(); tr != want {
		t.Fatalf("after failed probe: %+v, want %+v", tr, want)
	}

	// Second cool-down: probe succeeds: half-open → closed.
	now = now.Add(1100 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(nil)
	want = BreakerTransitions{ClosedOpen: 1, OpenHalfOpen: 2, HalfOpenClosed: 1, HalfOpenOpen: 1}
	if tr := b.Transitions(); tr != want {
		t.Fatalf("after recovery: %+v, want %+v", tr, want)
	}

	// A fast-failed request while open must not count as a transition.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow after recovery: %v", err)
		}
		b.Record(fail)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("expected open circuit, got %v", err)
	}
	want = BreakerTransitions{ClosedOpen: 2, OpenHalfOpen: 2, HalfOpenClosed: 1, HalfOpenOpen: 1}
	if tr := b.Transitions(); tr != want {
		t.Fatalf("after re-trip: %+v, want %+v", tr, want)
	}
	// Consistency with the trip counter: trips = closed→open + half-open→open.
	if got := b.Trips(); got != want.ClosedOpen+want.HalfOpenOpen {
		t.Fatalf("Trips=%d, want %d", got, want.ClosedOpen+want.HalfOpenOpen)
	}
}

// TestResilientStatsAggregatesTransitions drives two devices through
// trips via the Wrap envelope and checks Snapshot.Transitions sums both
// breakers.
func TestResilientStatsAggregatesTransitions(t *testing.T) {
	dead := errors.New("io error")
	be := backendFunc(func(server, volume int, p []byte, off uint64) error {
		return MarkTransient(dead)
	})
	r := Wrap(be, Config{
		Retry:   RetryPolicy{Max: 0},
		Breaker: BreakerConfig{Threshold: 2, Window: 4, OpenFor: time.Hour},
	})
	for dev := 0; dev < 2; dev++ {
		for i := 0; i < 2; i++ {
			if err := r.ReadAt(dev, 0, make([]byte, 8), 0); err == nil {
				t.Fatal("expected injected failure")
			}
		}
	}
	s := r.Stats()
	if s.Transitions.ClosedOpen != 2 {
		t.Fatalf("ClosedOpen=%d, want 2 (one per device)", s.Transitions.ClosedOpen)
	}
	if s.Transitions.OpenHalfOpen != 0 || s.Transitions.HalfOpenClosed != 0 || s.Transitions.HalfOpenOpen != 0 {
		t.Fatalf("unexpected half-open activity: %+v", s.Transitions)
	}
	if s.BreakerTrips != 2 {
		t.Fatalf("BreakerTrips=%d, want 2", s.BreakerTrips)
	}
}

// backendFunc adapts a function to the Backend interface for tests.
type backendFunc func(server, volume int, p []byte, off uint64) error

func (f backendFunc) ReadAt(server, volume int, p []byte, off uint64) error {
	return f(server, volume, p, off)
}

func (f backendFunc) WriteAt(server, volume int, p []byte, off uint64) error {
	return f(server, volume, p, off)
}
